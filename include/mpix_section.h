/* mpix_section.h — the stable, C-linkage MPI Sections interface.
 *
 * This is the one public header of the section API (paper Figs. 1 and 2):
 *
 *   int MPIX_Section_enter(MPIX_Comm comm, const char *label);
 *   int MPIX_Section_exit (MPIX_Comm comm, const char *label);
 *
 * plus the tool-side callback pair a profiler registers to observe every
 * section boundary, each receiving MPIX_SECTION_DATA_BYTES of mutable
 * storage preserved from enter to exit:
 *
 *   MPIX_Section_enter_cb / MPIX_Section_exit_cb
 *
 * The paper spells the second callback MPIX_Section_leave_cb; that
 * spelling is kept as an alias. C++ callers inside this repository may
 * keep using the typed overloads in core/sections/api.hpp — those are the
 * same functions; this header is the ABI boundary for plain-C tools.
 *
 * MPIX_Comm is an opaque handle. Inside the simulator it wraps
 * mpisect::mpisim::Comm; a C++ caller converts with
 * mpisect::sections::mpix_handle(comm).
 */
#ifndef MPIX_SECTION_H
#define MPIX_SECTION_H

/* Tool payload bytes carried across a section's lifetime (Fig. 2). */
#define MPIX_SECTION_DATA_BYTES 32

/* Result codes (mirror mpisect::sections::SectionResult; checked by
 * static_assert in the implementation). */
#define MPIX_SECTION_OK 0
#define MPIX_SECTION_ERR_NO_RUNTIME 1  /* runtime not installed */
#define MPIX_SECTION_ERR_BAD_LABEL 2   /* null/empty label */
#define MPIX_SECTION_ERR_NOT_NESTED 3  /* exit label != stack top */
#define MPIX_SECTION_ERR_EMPTY_STACK 4 /* exit with no open section */
#define MPIX_SECTION_ERR_MISMATCH 5    /* ranks disagree on label/depth */
#define MPIX_SECTION_ERR_COMM 6        /* invalid communicator */
#define MPIX_SECTION_ERR_LEAKED 7      /* still open at MPI_Finalize */

/* Opaque communicator handle. */
typedef struct MPIX_Comm_s* MPIX_Comm;

#ifdef __cplusplus
extern "C" {
#endif

/* Enter an MPI Section — non-blocking collective on `comm`.
 * Returns MPIX_SECTION_OK or an MPIX_SECTION_ERR_* code. */
int MPIX_Section_enter(MPIX_Comm comm, const char* label);

/* Leave an MPI Section — non-blocking collective on `comm`. */
int MPIX_Section_exit(MPIX_Comm comm, const char* label);

/* Tool callbacks, fired on every rank at each section boundary. `data`
 * points to MPIX_SECTION_DATA_BYTES of storage owned by the runtime and
 * preserved from the enter callback to the matching exit callback. */
typedef void (*MPIX_Section_enter_cb)(MPIX_Comm comm, const char* label,
                                      char* data);
typedef void (*MPIX_Section_exit_cb)(MPIX_Comm comm, const char* label,
                                     char* data);
/* Paper spelling of the exit callback (Fig. 2). */
typedef MPIX_Section_exit_cb MPIX_Section_leave_cb;

/* Register (or, with NULLs, reset) the callback pair on the world that
 * owns `comm`. Returns MPIX_SECTION_OK or MPIX_SECTION_ERR_COMM. */
int MPIX_Section_set_callbacks(MPIX_Comm comm, MPIX_Section_enter_cb on_enter,
                               MPIX_Section_exit_cb on_exit);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* MPIX_SECTION_H */
