// Hex geometry: volumes, analytic volume gradients, characteristic length,
// and the Domain's initial state.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/lulesh/domain.hpp"
#include "apps/lulesh/kernels.hpp"
#include "apps/lulesh/mesh.hpp"

namespace {

using namespace mpisect::apps::lulesh;

HexCorners unit_cube() {
  HexCorners c;
  for (int i = 0; i < 8; ++i) {
    c[static_cast<std::size_t>(i)] = Vec3{
        static_cast<double>(i & 1), static_cast<double>((i >> 1) & 1),
        static_cast<double>((i >> 2) & 1)};
  }
  return c;
}

TEST(Vec3Test, Algebra) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const Vec3 c = cross(Vec3{1, 0, 0}, Vec3{0, 1, 0});
  EXPECT_DOUBLE_EQ(c.z, 1.0);
  EXPECT_DOUBLE_EQ(c.x, 0.0);
  const Vec3 scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.y, 4.0);
}

TEST(HexVolume, UnitCube) {
  EXPECT_NEAR(hex_volume(unit_cube()), 1.0, 1e-14);
}

TEST(HexVolume, ScaledBox) {
  HexCorners c = unit_cube();
  for (auto& p : c) {
    p.x *= 2.0;
    p.y *= 3.0;
    p.z *= 0.5;
  }
  EXPECT_NEAR(hex_volume(c), 3.0, 1e-14);
}

TEST(HexVolume, TranslationInvariant) {
  HexCorners c = unit_cube();
  for (auto& p : c) p += Vec3{10.0, -5.0, 2.0};
  EXPECT_NEAR(hex_volume(c), 1.0, 1e-12);
}

TEST(HexVolume, ShearedHexKeepsVolume) {
  // A pure shear (x += 0.3 z) has unit Jacobian: volume preserved.
  HexCorners c = unit_cube();
  for (auto& p : c) p.x += 0.3 * p.z;
  EXPECT_NEAR(hex_volume(c), 1.0, 1e-12);
}

TEST(HexVolume, InvertedCellIsNegative) {
  HexCorners c = unit_cube();
  for (auto& p : c) p.x = -p.x;  // mirror flips orientation
  EXPECT_NEAR(hex_volume(c), -1.0, 1e-12);
}

TEST(HexGradient, MatchesFiniteDifferences) {
  // Perturbed hex: compare the analytic gradient against central FD.
  HexCorners c = unit_cube();
  c[3] += Vec3{0.1, -0.05, 0.08};
  c[6] += Vec3{-0.04, 0.07, 0.02};
  const auto grad = hex_volume_gradient(c);
  const double h = 1e-6;
  for (std::size_t n = 0; n < 8; ++n) {
    for (int axis = 0; axis < 3; ++axis) {
      HexCorners plus = c;
      HexCorners minus = c;
      auto& pp = axis == 0 ? plus[n].x : axis == 1 ? plus[n].y : plus[n].z;
      auto& pm = axis == 0 ? minus[n].x : axis == 1 ? minus[n].y : minus[n].z;
      pp += h;
      pm -= h;
      const double fd = (hex_volume(plus) - hex_volume(minus)) / (2.0 * h);
      const double an =
          axis == 0 ? grad[n].x : axis == 1 ? grad[n].y : grad[n].z;
      EXPECT_NEAR(an, fd, 1e-8) << "corner " << n << " axis " << axis;
    }
  }
}

TEST(HexGradient, SumOfGradientsIsZero) {
  // Translating all corners together cannot change the volume, so the
  // gradients must sum to zero componentwise.
  HexCorners c = unit_cube();
  c[1] += Vec3{0.2, 0.1, -0.1};
  const auto grad = hex_volume_gradient(c);
  Vec3 sum{};
  for (const auto& g : grad) sum += g;
  EXPECT_NEAR(sum.x, 0.0, 1e-14);
  EXPECT_NEAR(sum.y, 0.0, 1e-14);
  EXPECT_NEAR(sum.z, 0.0, 1e-14);
}

TEST(CharacteristicLength, CubeRootOfVolume) {
  EXPECT_DOUBLE_EQ(characteristic_length(8.0), 2.0);
  EXPECT_DOUBLE_EQ(characteristic_length(-8.0), 2.0);  // magnitude
}

TEST(DomainInit, GridGeometry) {
  DomainConfig dc;
  dc.s = 4;
  const Domain d(dc);
  EXPECT_EQ(d.elem_count(), 64u);
  EXPECT_EQ(d.node_count(), 125u);
  // Uniform grid spacing 1/4: every element volume (1/4)^3.
  for (const double v : d.vol) EXPECT_NEAR(v, 1.0 / 64.0, 1e-14);
  // Far corner node sits at (1,1,1).
  const auto idx = d.node_index(4, 4, 4);
  EXPECT_DOUBLE_EQ(d.x[idx], 1.0);
  EXPECT_DOUBLE_EQ(d.y[idx], 1.0);
  EXPECT_DOUBLE_EQ(d.z[idx], 1.0);
}

TEST(DomainInit, MassConservation) {
  DomainConfig dc;
  dc.s = 3;
  dc.rho0 = 2.0;
  const Domain d(dc);
  double elem_mass = 0.0;
  for (const double m : d.emass) elem_mass += m;
  double node_mass = 0.0;
  for (const double m : d.nmass) node_mass += m;
  EXPECT_NEAR(elem_mass, 2.0, 1e-12);  // rho * unit cube
  EXPECT_NEAR(node_mass, elem_mass, 1e-12);
}

TEST(DomainInit, SedovEnergyAtOriginOnly) {
  DomainConfig dc;
  dc.s = 4;
  dc.e0 = 0.25;
  const Domain d(dc);
  EXPECT_DOUBLE_EQ(d.e[d.elem_index(0, 0, 0)], 0.25);
  EXPECT_GT(d.press[d.elem_index(0, 0, 0)], 0.0);
  double total = 0.0;
  for (const double e : d.e) total += e;
  EXPECT_DOUBLE_EQ(total, 0.25);
  EXPECT_DOUBLE_EQ(d.total_internal_energy(), 0.25);
  EXPECT_DOUBLE_EQ(d.total_kinetic_energy(), 0.0);
}

TEST(DomainInit, NonOriginRankHasNoBlast) {
  DomainConfig dc;
  dc.s = 3;
  dc.rx = 1;
  dc.pgrid = 2;
  const Domain d(dc);
  EXPECT_DOUBLE_EQ(d.total_internal_energy(), 0.0);
  EXPECT_FALSE(d.on_symmetry_face(0));
  EXPECT_TRUE(d.on_symmetry_face(1));
  EXPECT_TRUE(d.on_symmetry_face(2));
  // Its x origin is shifted by half the global cube.
  EXPECT_DOUBLE_EQ(d.x[d.node_index(0, 0, 0)], 0.5);
}

TEST(DomainInit, ElemNodesBitOrder) {
  DomainConfig dc;
  dc.s = 2;
  const Domain d(dc);
  const auto nodes = d.elem_nodes(1, 0, 1);
  EXPECT_EQ(nodes[0], d.node_index(1, 0, 1));
  EXPECT_EQ(nodes[1], d.node_index(2, 0, 1));
  EXPECT_EQ(nodes[2], d.node_index(1, 1, 1));
  EXPECT_EQ(nodes[7], d.node_index(2, 1, 2));
}


TEST(Hourglass, UniformVelocityFieldProducesNoForce) {
  // Rigid translation must not excite any hourglass mode.
  DomainConfig dc;
  dc.s = 3;
  Domain d(dc);
  for (std::size_t n = 0; n < d.xd.size(); ++n) {
    d.xd[n] = 1.0;
    d.yd[n] = -2.0;
    d.zd[n] = 0.5;
  }
  for (auto& e : d.press) e = 0.1;  // pressurized so coef != 0
  mpisect::mpisim::WorldOptions opts;
  opts.machine = mpisect::mpisim::MachineModel::ideal();
  mpisect::mpisim::World world(1, opts);
  world.run([&](mpisect::mpisim::Ctx& ctx) {
    mpisect::minomp::Team team(ctx, 1);
    std::fill(d.fx.begin(), d.fx.end(), 0.0);
    std::fill(d.fy.begin(), d.fy.end(), 0.0);
    std::fill(d.fz.begin(), d.fz.end(), 0.0);
    HydroParams hp;
    kernel_hourglass(&d, team, 0, hp);
  });
  for (std::size_t n = 0; n < d.fx.size(); ++n) {
    EXPECT_NEAR(d.fx[n], 0.0, 1e-12);
    EXPECT_NEAR(d.fy[n], 0.0, 1e-12);
    EXPECT_NEAR(d.fz[n], 0.0, 1e-12);
  }
}

TEST(Hourglass, LinearVelocityFieldProducesNoForce) {
  // A linear field v = grad . x is physical (uniform strain); the filter
  // must leave it alone too.
  DomainConfig dc;
  dc.s = 2;
  Domain d(dc);
  for (std::size_t n = 0; n < d.xd.size(); ++n) {
    d.xd[n] = 2.0 * d.x[n] - d.y[n];
    d.yd[n] = 0.5 * d.z[n];
    d.zd[n] = d.x[n] + d.y[n] + d.z[n];
  }
  for (auto& e : d.press) e = 0.2;
  mpisect::mpisim::WorldOptions opts;
  opts.machine = mpisect::mpisim::MachineModel::ideal();
  mpisect::mpisim::World world(1, opts);
  world.run([&](mpisect::mpisim::Ctx& ctx) {
    mpisect::minomp::Team team(ctx, 1);
    std::fill(d.fx.begin(), d.fx.end(), 0.0);
    std::fill(d.fy.begin(), d.fy.end(), 0.0);
    std::fill(d.fz.begin(), d.fz.end(), 0.0);
    HydroParams hp;
    kernel_hourglass(&d, team, 0, hp);
  });
  for (std::size_t n = 0; n < d.fx.size(); ++n) {
    EXPECT_NEAR(d.fx[n], 0.0, 1e-10);
    EXPECT_NEAR(d.fy[n], 0.0, 1e-10);
    EXPECT_NEAR(d.fz[n], 0.0, 1e-10);
  }
}

TEST(Hourglass, CheckerboardModeDampedWithZeroNetForce) {
  // Excite the xi*eta hourglass mode in one element: forces must oppose the
  // modal velocity and sum to zero (momentum conservation).
  DomainConfig dc;
  dc.s = 1;  // single element
  Domain d(dc);
  const double mode[8] = {+1, -1, -1, +1, +1, -1, -1, +1};
  for (int n = 0; n < 8; ++n) {
    d.xd[static_cast<std::size_t>(n)] = mode[n];
  }
  d.press[0] = 0.3;
  mpisect::mpisim::WorldOptions opts;
  opts.machine = mpisect::mpisim::MachineModel::ideal();
  mpisect::mpisim::World world(1, opts);
  world.run([&](mpisect::mpisim::Ctx& ctx) {
    mpisect::minomp::Team team(ctx, 1);
    std::fill(d.fx.begin(), d.fx.end(), 0.0);
    HydroParams hp;
    kernel_hourglass(&d, team, 0, hp);
  });
  double net = 0.0;
  double dissipation = 0.0;
  for (int n = 0; n < 8; ++n) {
    const double f = d.fx[static_cast<std::size_t>(n)];
    net += f;
    dissipation += f * d.xd[static_cast<std::size_t>(n)];
    // Every node's force opposes its modal velocity.
    EXPECT_LT(f * mode[n], 0.0);
  }
  EXPECT_NEAR(net, 0.0, 1e-12);
  EXPECT_LT(dissipation, 0.0);  // the filter removes energy from the mode
}

}  // namespace
