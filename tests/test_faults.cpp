// Fault-injection engine behaviour: plan parsing, the empty-plan
// bit-identity guarantee, same-seed byte-reproducibility across scheduler
// backends, transport resilience under drops, checker classification of
// injected kills/losses, and what-if replay under a fault plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "checker/checker.hpp"
#include "mpisim/error.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/faults/engine.hpp"
#include "mpisim/faults/injector.hpp"
#include "mpisim/faults/plan.hpp"
#include "mpisim/runtime.hpp"
#include "profiler/report.hpp"
#include "profiler/section_profiler.hpp"
#include "telemetry/export.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/timeline.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

using namespace mpisect;
using mpisim::faults::FaultPlan;

// ---------------------------------------------------------------------------
// Plan parsing

TEST(FaultPlan, EmptySpecParsesToEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlan, DescribeRoundTripsThroughParse) {
  const char* spec =
      "drop:p=0.05,src=3,dst=4; dup:p=0.01; delay:t=1e-4,p=0.5; "
      "degrade:factor=4,from=0.1,until=0.2; stall:rank=2,at=0.1,for=0.05; "
      "slow:rank=2,factor=2; kill:rank=3,at=0.5; "
      "retransmit:rto=1e-4,backoff=2,max=8,dedup=1";
  const FaultPlan plan = FaultPlan::parse(spec);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.describe(), FaultPlan::parse(plan.describe()).describe());
}

TEST(FaultPlan, MalformedSpecsThrowPointedErrors) {
  EXPECT_THROW((void)FaultPlan::parse("drop"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop:p=2"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("frobnicate:p=0.1"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("kill:rank=x"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Differential runs: every observable artifact of a convolution run.

struct RunArtifacts {
  std::vector<double> final_times;
  std::string profile_csv;
  std::vector<std::uint8_t> trace_bytes;
  std::string telemetry_csv;
};

RunArtifacts run_convolution(const FaultPlan& plan, mpisim::ExecBackend exec,
                             int workers, int ranks = 4, int steps = 6) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0xBEEF;
  opts.exec = exec;
  opts.workers = workers;
  opts.faults = plan;
  mpisim::World world(ranks, opts);
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world, {});
  auto rec = trace::TraceRecorder::install(world, {.app = "convolution"});
  telemetry::SamplerOptions sopts;
  sopts.dt = 0.05;
  auto sampler = telemetry::TelemetrySampler::install(world, sopts);

  apps::conv::ConvolutionConfig cfg;
  cfg.width = 512;
  cfg.height = 256;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));

  RunArtifacts a;
  a.final_times = world.final_times();
  a.profile_csv = profiler::render_csv(prof);
  a.trace_bytes = rec->finish().encode();
  a.telemetry_csv = telemetry::timeline_csv(telemetry::build_timeline(*sampler));
  return a;
}

void expect_identical(const RunArtifacts& a, const RunArtifacts& b,
                      const char* what) {
  EXPECT_EQ(a.final_times, b.final_times) << what;
  EXPECT_EQ(a.profile_csv, b.profile_csv) << what;
  EXPECT_EQ(a.trace_bytes, b.trace_bytes) << what;
  EXPECT_EQ(a.telemetry_csv, b.telemetry_csv) << what;
}

TEST(FaultDeterminism, EmptyPlanIsBitIdenticalToFaultFreeRun) {
  const auto bare = run_convolution(FaultPlan{}, mpisim::ExecBackend::Cooperative, 1);
  // A plan with a non-default resilience policy but no rules is still
  // empty(): no engine is constructed, nothing can differ.
  FaultPlan policy_only;
  policy_only.retransmit.rto = 1e-3;
  policy_only.retransmit.max_retries = 2;
  ASSERT_TRUE(policy_only.empty());
  expect_identical(bare,
                   run_convolution(policy_only,
                                   mpisim::ExecBackend::Cooperative, 1),
                   "empty plan, coop workers=1");
  expect_identical(bare,
                   run_convolution(FaultPlan{},
                                   mpisim::ExecBackend::Cooperative, 4),
                   "coop workers=4");
  expect_identical(bare,
                   run_convolution(FaultPlan{}, mpisim::ExecBackend::Threads, 0),
                   "threads backend");
}

TEST(FaultDeterminism, SameSeedFaultRunsAreByteReproducible) {
  const FaultPlan plan =
      FaultPlan::parse("drop:p=0.05; dup:p=0.02; delay:t=1e-5,p=0.2");
  const auto coop1 = run_convolution(plan, mpisim::ExecBackend::Cooperative, 1);
  const auto coop4 = run_convolution(plan, mpisim::ExecBackend::Cooperative, 4);
  const auto threads = run_convolution(plan, mpisim::ExecBackend::Threads, 0);
  expect_identical(coop1, coop4, "coop workers=1 vs 4");
  expect_identical(coop1, threads, "coop vs threads");
}

TEST(FaultDeterminism, FaultsActuallyPerturbTheRun) {
  const auto bare = run_convolution(FaultPlan{}, mpisim::ExecBackend::Cooperative, 1);
  const auto dropped = run_convolution(FaultPlan::parse("drop:p=0.1"),
                                       mpisim::ExecBackend::Cooperative, 1);
  // Retransmits cost wire time: the faulted run must finish strictly later.
  ASSERT_EQ(bare.final_times.size(), dropped.final_times.size());
  double bare_max = 0.0, dropped_max = 0.0;
  for (const double t : bare.final_times) bare_max = std::max(bare_max, t);
  for (const double t : dropped.final_times) {
    dropped_max = std::max(dropped_max, t);
  }
  EXPECT_GT(dropped_max, bare_max);
}

// ---------------------------------------------------------------------------
// Resilient transport

TEST(FaultResilience, Conv64RanksCompletesUnderFivePercentDrop) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0x5EED;
  opts.faults = FaultPlan::parse("drop:p=0.05");
  mpisim::World world(64, opts);
  sections::SectionRuntime::install(world);
  auto injector = mpisim::faults::FaultInjector::install(world);
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = 5;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));  // must complete: retransmit recovers every drop

  ASSERT_NE(world.fault_engine(), nullptr);
  std::uint64_t drops = 0, lost = 0;
  for (int r = 0; r < world.size(); ++r) {
    const auto c = world.fault_engine()->counters(r);
    drops += c.drops;
    lost += c.lost;
  }
  EXPECT_GT(drops, 0u) << "5% drop over a 64-rank halo exchange must fire";
  EXPECT_EQ(lost, 0u) << "default retry budget must recover every drop";
  EXPECT_GT(injector->total_events(), 0u);
  EXPECT_NE(injector->summary(), "no faults injected");
}

TEST(FaultResilience, StallChargesLostProgress) {
  auto elapsed = [](const FaultPlan& plan) {
    mpisim::WorldOptions opts;
    opts.machine = mpisim::MachineModel::nehalem_cluster();
    opts.faults = plan;
    mpisim::World world(2, opts);
    world.run([](mpisim::Ctx& ctx) {
      mpisim::Comm comm = ctx.world_comm();
      for (int i = 0; i < 4; ++i) {
        ctx.compute_exact(1e-3);
        comm.barrier();
      }
    });
    return world.elapsed();
  };
  const double bare = elapsed(FaultPlan{});
  const double stalled =
      elapsed(FaultPlan::parse("stall:rank=0,at=0,for=0.05"));
  // The straggler charge serializes behind the barrier: everyone pays.
  // Allow a sliver of slack — the shifted arrival times re-draw the
  // model's wire jitter, which can shave microseconds off the barriers.
  EXPECT_GE(stalled, bare + 0.049);
}

TEST(FaultResilience, SlowRuleScalesComputeCharges) {
  auto elapsed = [](const FaultPlan& plan) {
    mpisim::WorldOptions opts;
    opts.faults = plan;
    mpisim::World world(1, opts);
    world.run([](mpisim::Ctx& ctx) { ctx.compute_exact(1e-2); });
    return world.elapsed();
  };
  const double bare = elapsed(FaultPlan{});
  const double slowed = elapsed(FaultPlan::parse("slow:rank=0,factor=3"));
  EXPECT_NEAR(slowed, 3.0 * bare, 1e-9);
}

TEST(FaultResilience, DuplicatesAreSuppressedByDefault) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.faults = FaultPlan::parse("dup:p=0.5");
  mpisim::World world(2, opts);
  world.run([](mpisim::Ctx& ctx) {
    mpisim::Comm comm = ctx.world_comm();
    char buf[64] = {};
    for (int i = 0; i < 20; ++i) {
      if (comm.rank() == 0) {
        comm.send(buf, sizeof buf, 1, /*tag=*/i);
      } else {
        comm.recv(buf, sizeof buf, 0, /*tag=*/i);
      }
    }
  });  // with dedup on, the extra copies must not clog matching
  std::uint64_t dups = 0;
  for (int r = 0; r < world.size(); ++r) {
    dups += world.fault_engine()->counters(r).duplicates;
  }
  EXPECT_GT(dups, 0u);
}

// ---------------------------------------------------------------------------
// Checker classification

TEST(FaultChecker, InjectedKillIsClassifiedNamingTheRank) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.faults = FaultPlan::parse("kill:rank=1,at=1e-6");
  mpisim::World world(4, opts);
  sections::SectionRuntime::install(world);
  auto check = checker::MpiChecker::install(world, {});
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = 4;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  try {
    world.run(std::ref(app));
  } catch (const mpisim::MpiError&) {
    // Survivors are woken with Err::Aborted once quiescence is proven.
  }
  check->analyze();
  bool found = false;
  for (const auto& d : check->diagnostics()) {
    if (d.category != checker::Category::InjectedFault) continue;
    found = true;
    EXPECT_EQ(d.rank, 1);
    EXPECT_NE(d.message.find("rank 1"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("killed"), std::string::npos) << d.message;
  }
  EXPECT_TRUE(found) << "kill must surface as INJECTED_FAULT";
  for (const auto& d : check->diagnostics()) {
    EXPECT_NE(d.category, checker::Category::Deadlock)
        << "an injected hang must never be reported as a native deadlock: "
        << d.message;
  }
}

TEST(FaultChecker, ExhaustedRetryBudgetIsClassifiedAsInjectedLoss) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.faults = FaultPlan::parse("drop:p=1; retransmit:rto=1e-5,max=2");
  mpisim::World world(2, opts);
  auto check = checker::MpiChecker::install(world, {});
  try {
    world.run([](mpisim::Ctx& ctx) {
      mpisim::Comm comm = ctx.world_comm();
      char buf[16] = {};
      if (comm.rank() == 0) {
        comm.send(buf, sizeof buf, 1, /*tag=*/0);
      } else {
        comm.recv(buf, sizeof buf, 0, /*tag=*/0);  // can never match: lost
      }
    });
  } catch (const mpisim::MpiError&) {
  }
  check->analyze();
  bool found = false;
  for (const auto& d : check->diagnostics()) {
    if (d.category != checker::Category::InjectedFault) continue;
    found = true;
    EXPECT_NE(d.message.find("loss"), std::string::npos) << d.message;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Replay re-costing

trace::TraceFile record_conv_trace() {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0xBEEF;
  mpisim::World world(4, opts);
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "convolution"});
  apps::conv::ConvolutionConfig cfg;
  cfg.width = 512;
  cfg.height = 256;
  cfg.steps = 6;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  return rec->finish();
}

TEST(FaultReplay, EmptyPlanMatchesPlainReplayExactly) {
  const trace::TraceFile tf = record_conv_trace();
  const auto plain = trace::replay(tf, tf.header.machine, {});
  trace::ReplayOptions ropts;
  ropts.faults = FaultPlan{};
  const auto empty = trace::replay(tf, tf.header.machine, ropts);
  EXPECT_EQ(plain.makespan, empty.makespan);  // bitwise, not approx
}

TEST(FaultReplay, DropPlanSlowsTheWhatIfFrameDeterministically) {
  const trace::TraceFile tf = record_conv_trace();
  const auto plain = trace::replay(tf, tf.header.machine, {});
  trace::ReplayOptions ropts;
  ropts.faults = FaultPlan::parse("drop:p=0.2");
  const auto faulted = trace::replay(tf, tf.header.machine, ropts);
  EXPECT_GT(faulted.makespan, plain.makespan);
  const auto again = trace::replay(tf, tf.header.machine, ropts);
  EXPECT_EQ(faulted.makespan, again.makespan);
}

TEST(FaultReplay, KillRulesAreNotReplayable) {
  const trace::TraceFile tf = record_conv_trace();
  trace::ReplayOptions ropts;
  ropts.faults = FaultPlan::parse("kill:rank=1,at=0.1");
  EXPECT_THROW((void)trace::replay(tf, tf.header.machine, ropts),
               trace::TraceError);
}

}  // namespace
