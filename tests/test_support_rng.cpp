// Unit + property tests for the deterministic counter-based RNG.
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace {

using namespace mpisect::support;

TEST(CounterRng, DeterministicAcrossInstances) {
  const CounterRng a(123);
  const CounterRng b(123);
  for (std::uint64_t c = 0; c < 100; ++c) {
    EXPECT_EQ(a.bits(7, c), b.bits(7, c));
    EXPECT_DOUBLE_EQ(a.uniform(9, c), b.uniform(9, c));
    EXPECT_DOUBLE_EQ(a.gaussian(11, c), b.gaussian(11, c));
  }
}

TEST(CounterRng, SeedChangesStream) {
  const CounterRng a(1);
  const CounterRng b(2);
  int same = 0;
  for (std::uint64_t c = 0; c < 64; ++c) {
    if (a.bits(0, c) == b.bits(0, c)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, StreamsIndependent) {
  const CounterRng rng(99);
  std::set<std::uint64_t> values;
  for (std::uint64_t s = 0; s < 32; ++s) {
    for (std::uint64_t c = 0; c < 32; ++c) {
      values.insert(rng.bits(s, c));
    }
  }
  EXPECT_EQ(values.size(), 32u * 32u);  // no collisions expected
}

TEST(CounterRng, UniformInUnitInterval) {
  const CounterRng rng(4);
  for (std::uint64_t c = 0; c < 1000; ++c) {
    const double u = rng.uniform(1, c);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, UniformRange) {
  const CounterRng rng(4);
  for (std::uint64_t c = 0; c < 200; ++c) {
    const double u = rng.uniform(2, c, -3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(CounterRng, GaussianMoments) {
  const CounterRng rng(31337);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int c = 0; c < n; ++c) {
    const double g = rng.gaussian(5, static_cast<std::uint64_t>(c));
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(CounterRng, LognormalMedianIsExpMu) {
  const CounterRng rng(7);
  std::vector<double> xs;
  const int n = 10001;
  for (int c = 0; c < n; ++c) {
    xs.push_back(rng.lognormal(3, static_cast<std::uint64_t>(c), 0.0, 0.5));
  }
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[static_cast<std::size_t>(n / 2)], 1.0, 0.05);
  for (const double x : xs) EXPECT_GT(x, 0.0);
}

TEST(CounterRng, ExponentialMean) {
  const CounterRng rng(55);
  double sum = 0.0;
  const int n = 20000;
  for (int c = 0; c < n; ++c) {
    const double x = rng.exponential(1, static_cast<std::uint64_t>(c), 2.5);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(CounterRng, BelowInRange) {
  const CounterRng rng(8);
  std::set<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < 1000; ++c) {
    const auto v = rng.below(1, c, 10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(StreamId, OrderSensitive) {
  EXPECT_NE(stream_id(1, 2), stream_id(2, 1));
  EXPECT_NE(stream_id(1, 2, 3), stream_id(1, 3, 2));
  EXPECT_EQ(stream_id(4, 5), stream_id(4, 5));
}

TEST(Splitmix, AvalancheOnSingleBit) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t a = splitmix64(0x1234);
  const std::uint64_t b = splitmix64(0x1235);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(SequentialRng, Deterministic) {
  SequentialRng a(77);
  SequentialRng b(77);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SequentialRng, UniformBounds) {
  SequentialRng r(3);
  for (int i = 0; i < 500; ++i) {
    const double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, GaussianStaysCentered) {
  const CounterRng rng(GetParam());
  double sum = 0.0;
  const int n = 4000;
  for (int c = 0; c < n; ++c) {
    sum += rng.gaussian(17, static_cast<std::uint64_t>(c));
  }
  EXPECT_NEAR(sum / n, 0.0, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1ULL, 42ULL, 0xDEADBEEFULL,
                                           0xFFFFFFFFFFFFFFFFULL, 31337ULL));

}  // namespace
