// World lifecycle, hook dispatch, abort propagation, determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect::mpisim;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(WorldBasics, SizeAndRanks) {
  World world(7, ideal_options());
  EXPECT_EQ(world.size(), 7);
  std::vector<int> seen(7, 0);
  world.run([&](Ctx& ctx) {
    EXPECT_EQ(ctx.size(), 7);
    seen[static_cast<std::size_t>(ctx.rank())] = 1;
    EXPECT_EQ(ctx.world_comm().rank(), ctx.rank());
    EXPECT_EQ(ctx.world_comm().size(), 7);
  });
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(WorldBasics, RejectsNonPositiveSize) {
  EXPECT_THROW(World(0, ideal_options()), MpiError);
  EXPECT_THROW(World(-3, ideal_options()), MpiError);
}

TEST(WorldBasics, FinalTimesAndElapsed) {
  World world(3, ideal_options());
  world.run([](Ctx& ctx) {
    ctx.compute_exact(static_cast<double>(ctx.rank()) + 1.0);
  });
  const auto& t = world.final_times();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0], 1.0);
  EXPECT_DOUBLE_EQ(t[2], 3.0);
  EXPECT_DOUBLE_EQ(world.elapsed(), 3.0);
}

TEST(WorldBasics, RunTwiceResetsClocks) {
  World world(2, ideal_options());
  world.run([](Ctx& ctx) { ctx.compute_exact(5.0); });
  EXPECT_DOUBLE_EQ(world.elapsed(), 5.0);
  world.run([](Ctx& ctx) { ctx.compute_exact(1.0); });
  EXPECT_DOUBLE_EQ(world.elapsed(), 1.0);
}

TEST(WorldBasics, SecondRunUsesFreshCommunicator) {
  World world(2, ideal_options());
  // Leave a stray message queued in run 1; run 2 must not see it.
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      const int v = 99;
      comm.send(&v, sizeof v, 1, 0);
    }
    // rank 1 never receives it.
  });
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      const int v = 7;
      comm.send(&v, sizeof v, 1, 0);
    } else {
      int v = 0;
      comm.recv(&v, sizeof v, 0, 0);
      EXPECT_EQ(v, 7);  // not the stale 99
    }
  });
}

TEST(WorldAbort, RankExceptionPropagatesAndUnblocksPeers) {
  World world(3, ideal_options());
  EXPECT_THROW(world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      throw MpiError(Err::Internal, "deliberate failure");
    }
    // Other ranks block forever on a message that never comes; the abort
    // must wake them instead of deadlocking the join.
    int v = 0;
    comm.recv(&v, sizeof v, 0, 0);
  }),
               MpiError);
  EXPECT_TRUE(world.aborted());
}

TEST(WorldAbort, AbortedWorldRefusesNewRuns) {
  World world(2, ideal_options());
  EXPECT_THROW(world.run([](Ctx& ctx) {
    if (ctx.rank() == 0) throw MpiError(Err::Internal, "boom");
    ctx.world_comm().barrier();
  }),
               MpiError);
  EXPECT_THROW(world.run([](Ctx&) {}), MpiError);
}

TEST(Hooks, CallBeginEndBracketsOperations) {
  World world(2, ideal_options());
  std::atomic<int> begins{0};
  std::atomic<int> ends{0};
  std::atomic<int> sends{0};
  world.hooks().on_call_begin = [&](Ctx&, const CallInfo& info) {
    ++begins;
    if (info.call == MpiCall::Send) ++sends;
  };
  world.hooks().on_call_end = [&](Ctx&, const CallInfo&) { ++ends; };
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      const int v = 1;
      comm.send(&v, sizeof v, 1, 0);
    } else {
      int v = 0;
      comm.recv(&v, sizeof v, 0, 0);
    }
    comm.barrier();
  });
  EXPECT_EQ(begins.load(), ends.load());
  EXPECT_EQ(sends.load(), 1);
  // Init + Finalize per rank (4) + send + recv + 2 barriers = 8.
  EXPECT_EQ(begins.load(), 8);
}

TEST(Hooks, CallInfoCarriesContext) {
  World world(2, ideal_options());
  std::vector<CallInfo> infos;
  std::mutex mu;
  world.hooks().on_call_begin = [&](Ctx&, const CallInfo& info) {
    if (info.call == MpiCall::Send) {
      const std::lock_guard lock(mu);
      infos.push_back(info);
    }
  };
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      const char payload[10] = {};
      comm.send(payload, sizeof payload, 1, 42);
    } else {
      char buf[10];
      comm.recv(buf, sizeof buf, 0, 42);
    }
  });
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].peer, 1);
  EXPECT_EQ(infos[0].tag, 42);
  EXPECT_EQ(infos[0].bytes, 10u);
  EXPECT_EQ(infos[0].comm_size, 2);
}

TEST(Hooks, InternalCollectiveTrafficInvisible) {
  // A bcast over 8 ranks does several internal sends; tools must see only
  // the bcast itself.
  World world(8, ideal_options());
  std::atomic<int> p2p_calls{0};
  std::atomic<int> bcasts{0};
  world.hooks().on_call_begin = [&](Ctx&, const CallInfo& info) {
    if (is_point_to_point(info.call)) ++p2p_calls;
    if (info.call == MpiCall::Bcast) ++bcasts;
  };
  world.run([](Ctx& ctx) {
    double v = 0.0;
    ctx.world_comm().bcast(&v, sizeof v, 0);
  });
  EXPECT_EQ(p2p_calls.load(), 0);
  EXPECT_EQ(bcasts.load(), 8);
}

TEST(Determinism, SameSeedSameVirtualTimeline) {
  auto timeline = [](std::uint64_t seed) {
    WorldOptions opts;
    opts.machine = MachineModel::nehalem_cluster();  // jitter enabled
    opts.seed = seed;
    World world(8, opts);
    world.run([](Ctx& ctx) {
      Comm comm = ctx.world_comm();
      for (int i = 0; i < 20; ++i) {
        ctx.compute(1e-3);
        const int right = (ctx.rank() + 1) % ctx.size();
        const int left = (ctx.rank() - 1 + ctx.size()) % ctx.size();
        comm.sendrecv(nullptr, 1024, right, 0, nullptr, 1024, left, 0);
      }
    });
    return world.final_times();
  };
  const auto a = timeline(11);
  const auto b = timeline(11);
  const auto c = timeline(12);
  EXPECT_EQ(a, b);  // bit-for-bit reproducible
  EXPECT_NE(a, c);  // seed changes the timeline
}

TEST(Determinism, ComputeNoiseKeyedPerRank) {
  WorldOptions opts = ideal_options();
  opts.machine.compute_noise_sigma = 0.1;
  World world(4, opts);
  world.run([](Ctx& ctx) { ctx.compute(1.0); });
  const auto t = world.final_times();
  // Noise differs between ranks but stays near 1s.
  for (const double x : t) {
    EXPECT_GT(x, 0.5);
    EXPECT_LT(x, 1.5);
  }
  EXPECT_NE(t[0], t[1]);
}

TEST(StartSkew, AppliedWhenConfigured) {
  WorldOptions opts = ideal_options();
  opts.start_skew_sigma = 0.1;
  World world(6, opts);
  world.run([](Ctx&) {});
  const auto t = world.final_times();
  bool any_nonzero = false;
  for (const double x : t) any_nonzero = any_nonzero || x > 0.0;
  EXPECT_TRUE(any_nonzero);
}

TEST(Pcontrol, DispatchesToHook) {
  World world(2, ideal_options());
  std::atomic<int> count{0};
  world.hooks().on_pcontrol = [&](Ctx&, int level, const char* label) {
    if (level == 1 && std::string(label) == "phase") ++count;
  };
  world.run([](Ctx& ctx) {
    ctx.pcontrol(1, "phase");
    ctx.pcontrol(-1, "phase");
  });
  EXPECT_EQ(count.load(), 2);
}

TEST(Extensions, InitFinalizeOrdering) {
  class Recorder : public Extension {
   public:
    std::atomic<int> inits{0};
    std::atomic<int> finis{0};
    void on_rank_init(Ctx&) override { ++inits; }
    void on_rank_finalize(Ctx&) override { ++finis; }
  };
  World world(3, ideal_options());
  auto rec = std::make_shared<Recorder>();
  world.attach_extension(rec);
  EXPECT_EQ(world.find_extension<Recorder>(), rec);
  world.run([&](Ctx&) {
    EXPECT_GE(rec->inits.load(), 1);  // own rank's init already ran
  });
  EXPECT_EQ(rec->inits.load(), 3);
  EXPECT_EQ(rec->finis.load(), 3);
}

}  // namespace
