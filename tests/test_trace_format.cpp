// Wire-format coverage for the .mpst container: primitive round-trips,
// property-style encode/decode equality on randomized event streams, and
// every corrupt-input error path (truncation at each byte offset, version
// skew, bad/byte-swapped magic, trailing garbage).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "trace/file.hpp"

namespace {

using namespace mpisect;
using trace::ByteReader;
using trace::ByteWriter;
using trace::Event;
using trace::EventKind;
using trace::TraceError;
using trace::TraceFile;

TEST(TraceWire, ZigzagRoundTrip) {
  const std::int64_t cases[] = {0,  1,  -1, 2,  -2,  63, -64, 1000000,
                                -1000000,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : cases) {
    EXPECT_EQ(trace::zigzag_decode(trace::zigzag_encode(v)), v);
  }
  // Small magnitudes map to small codes (the varint-size property).
  EXPECT_EQ(trace::zigzag_encode(0), 0u);
  EXPECT_EQ(trace::zigzag_encode(-1), 1u);
  EXPECT_EQ(trace::zigzag_encode(1), 2u);
}

TEST(TraceWire, VarintRoundTrip) {
  ByteWriter w;
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 std::uint64_t{1} << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) w.varint(v);
  ByteReader r(w.bytes());
  for (const std::uint64_t v : cases) EXPECT_EQ(r.varint(), v);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(TraceWire, F64RoundTripIsBitExact) {
  ByteWriter w;
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.5,
                          1e-308,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::infinity(),
                          0.1 + 0.2};
  for (const double v : cases) w.f64(v);
  ByteReader r(w.bytes());
  for (const double v : cases) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(TraceWire, ReaderThrowsOnOverrun) {
  ByteWriter w;
  w.varint(300);
  const auto bytes = w.bytes();
  ByteReader r{std::span(bytes).first(1)};
  EXPECT_THROW((void)r.varint(), TraceError);
  ByteReader r2(bytes);
  EXPECT_THROW((void)r2.f64(), TraceError);
}

TEST(TraceWire, OverlongVarintIsRejected) {
  std::vector<std::uint8_t> bytes(11, 0x80);
  ByteReader r(bytes);
  EXPECT_THROW((void)r.varint(), TraceError);
}

Event random_event(support::SequentialRng& rng) {
  Event ev;
  ev.kind = static_cast<EventKind>(rng.next() % trace::kEventKindCount);
  ev.has_time = rng.next() % 2 == 0;
  if (ev.has_time) ev.t_before = rng.uniform(0.0, 1e6);
  switch (ev.kind) {
    case EventKind::SendPost:
      ev.comm = static_cast<int>(rng.next() % 64);
      ev.peer = static_cast<int>(rng.next() % 1024);
      ev.tag = static_cast<int>(rng.next() % 2001) - 1000;
      ev.bytes = rng.next() % (std::uint64_t{1} << 30);
      ev.seq = rng.next();
      ev.op = rng.next();
      break;
    case EventKind::SendWait:
      ev.op = rng.next() % 100;  // backref
      break;
    case EventKind::RecvPost:
      ev.comm = static_cast<int>(rng.next() % 64);
      ev.peer = rng.next() % 8 == 0 ? Event::kUnmatched
                                    : static_cast<int>(rng.next() % 1024);
      ev.seq = rng.next();
      ev.post_src = rng.next() % 4 == 0 ? -1  // kAnySource
                                        : static_cast<int>(rng.next() % 1024);
      ev.tag = static_cast<int>(rng.next() % 2001) - 1000;
      break;
    case EventKind::RecvWait:
      ev.seq = rng.next() % 100;  // backref
      ev.op = rng.next();
      break;
    case EventKind::Probe:
      ev.comm = static_cast<int>(rng.next() % 64);
      ev.peer = static_cast<int>(rng.next() % 1024);
      ev.seq = rng.next();
      ev.post_src = rng.next() % 4 == 0 ? -1  // kAnySource
                                        : static_cast<int>(rng.next() % 1024);
      ev.tag = static_cast<int>(rng.next() % 2001) - 1000;
      break;
    case EventKind::CollBegin:
      ev.comm = static_cast<int>(rng.next() % 64);
      ev.label = static_cast<std::uint32_t>(rng.next() % 17);
      ev.peer = static_cast<int>(rng.next() % 10) - 1;
      ev.bytes = rng.next() % (std::uint64_t{1} << 24);
      ev.op = rng.next();
      break;
    case EventKind::CollEnd:
      break;
    case EventKind::SectionEnter:
    case EventKind::SectionExit:
      ev.comm = static_cast<int>(rng.next() % 64);
      ev.label = static_cast<std::uint32_t>(rng.next() % 5000);
      break;
    case EventKind::CommSync:
      ev.comm = static_cast<int>(rng.next() % 64);
      ev.peer = 1 + static_cast<int>(rng.next() % 512);
      ev.seq = rng.next() % 16;
      break;
    case EventKind::Pcontrol:
      ev.peer = static_cast<int>(rng.next() % 11) - 5;
      ev.label = static_cast<std::uint32_t>(rng.next() % 5000);
      break;
    case EventKind::NbcPost:
      ev.comm = static_cast<int>(rng.next() % 64);
      ev.label = static_cast<std::uint32_t>(rng.next() % 17);
      ev.peer = 1 + static_cast<int>(rng.next() % 512);
      ev.bytes = rng.next() % (std::uint64_t{1} << 24);
      ev.seq = rng.next() % 4096;
      ev.op = rng.next();
      break;
    case EventKind::NbcComplete:
      ev.comm = static_cast<int>(rng.next() % 64);
      ev.seq = rng.next() % 4096;
      break;
    case EventKind::Finalize:
      ev.has_time = true;
      ev.t_before = rng.uniform(0.0, 1e6);
      break;
  }
  return ev;
}

void expect_event_eq(const Event& a, const Event& b, std::size_t i) {
  EXPECT_EQ(a.kind, b.kind) << "event " << i;
  EXPECT_EQ(a.has_time, b.has_time) << "event " << i;
  if (a.has_time) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.t_before),
              std::bit_cast<std::uint64_t>(b.t_before))
        << "event " << i;
  }
  EXPECT_EQ(a.comm, b.comm) << "event " << i;
  EXPECT_EQ(a.peer, b.peer) << "event " << i;
  EXPECT_EQ(a.post_src, b.post_src) << "event " << i;
  EXPECT_EQ(a.tag, b.tag) << "event " << i;
  EXPECT_EQ(a.bytes, b.bytes) << "event " << i;
  EXPECT_EQ(a.seq, b.seq) << "event " << i;
  EXPECT_EQ(a.op, b.op) << "event " << i;
  EXPECT_EQ(a.label, b.label) << "event " << i;
}

TraceFile random_trace(std::uint64_t seed, int nranks, int events_per_rank) {
  support::SequentialRng rng(seed);
  TraceFile tf;
  tf.header.app = "random-app --seed " + std::to_string(seed);
  tf.header.seed = rng.next();
  tf.header.scatter_algo = 1;
  tf.header.gather_algo = 0;
  tf.header.start_skew_sigma = rng.uniform(0.0, 1e-3);
  tf.header.nranks = nranks;
  tf.header.machine = mpisim::MachineModel::nehalem_cluster();
  tf.labels = {"", "A \"quoted\" label", "HALO\n", "MPI_MAIN", "z\\path"};
  for (int r = 0; r < nranks; ++r) {
    trace::RankStream rs;
    rs.rank = r;
    rs.t0 = rng.uniform(0.0, 1e-3);
    rs.t_final = rng.uniform(1.0, 2.0);
    for (int e = 0; e < events_per_rank; ++e) {
      rs.events.push_back(random_event(rng));
    }
    rs.totals.push_back(
        {0, static_cast<std::uint32_t>(r % 5), rng.next() % 1000,
         rng.uniform(0.0, 10.0)});
    tf.ranks.push_back(std::move(rs));
  }
  return tf;
}

TEST(TraceFormat, RandomizedStreamsRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TraceFile tf = random_trace(seed, 4, 200);
    const auto bytes = tf.encode();
    const TraceFile back = TraceFile::decode(bytes);
    EXPECT_EQ(back.header.app, tf.header.app);
    EXPECT_EQ(back.header.seed, tf.header.seed);
    EXPECT_EQ(back.header.scatter_algo, tf.header.scatter_algo);
    EXPECT_EQ(back.header.gather_algo, tf.header.gather_algo);
    EXPECT_EQ(back.header.nranks, tf.header.nranks);
    EXPECT_EQ(back.header.machine.name, tf.header.machine.name);
    EXPECT_EQ(back.header.machine.net.eager_threshold,
              tf.header.machine.net.eager_threshold);
    EXPECT_EQ(back.labels, tf.labels);
    ASSERT_EQ(back.ranks.size(), tf.ranks.size());
    for (std::size_t r = 0; r < tf.ranks.size(); ++r) {
      ASSERT_EQ(back.ranks[r].events.size(), tf.ranks[r].events.size());
      for (std::size_t e = 0; e < tf.ranks[r].events.size(); ++e) {
        expect_event_eq(back.ranks[r].events[e], tf.ranks[r].events[e], e);
      }
      ASSERT_EQ(back.ranks[r].totals.size(), tf.ranks[r].totals.size());
      for (std::size_t t = 0; t < tf.ranks[r].totals.size(); ++t) {
        EXPECT_EQ(back.ranks[r].totals[t].comm, tf.ranks[r].totals[t].comm);
        EXPECT_EQ(back.ranks[r].totals[t].label, tf.ranks[r].totals[t].label);
        EXPECT_EQ(back.ranks[r].totals[t].count, tf.ranks[r].totals[t].count);
        EXPECT_EQ(back.ranks[r].totals[t].inclusive,
                  tf.ranks[r].totals[t].inclusive);
      }
    }
  }
}

TEST(TraceFormat, EncodeIsDeterministic) {
  const TraceFile a = random_trace(42, 3, 100);
  const TraceFile b = random_trace(42, 3, 100);
  EXPECT_EQ(a.encode(), b.encode());
}

TEST(TraceFormat, MultiRankOrderIsPreserved) {
  const TraceFile tf = random_trace(7, 8, 20);
  const TraceFile back = TraceFile::decode(tf.encode());
  ASSERT_EQ(back.ranks.size(), 8u);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(back.ranks[static_cast<std::size_t>(r)].rank, r);
  }
}

TEST(TraceFormat, EveryTruncationThrowsTraceError) {
  const TraceFile tf = random_trace(3, 2, 25);
  const auto bytes = tf.encode();
  ASSERT_GT(bytes.size(), 16u);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW((void)TraceFile::decode(std::span(bytes).first(cut)),
                 TraceError)
        << "prefix of " << cut << " bytes decoded without error";
  }
}

TEST(TraceFormat, TrailingGarbageIsRejected) {
  auto bytes = random_trace(4, 2, 10).encode();
  bytes.push_back(0x00);
  EXPECT_THROW((void)TraceFile::decode(bytes), TraceError);
}

TEST(TraceFormat, VersionMismatchIsRejected) {
  auto bytes = random_trace(5, 1, 5).encode();
  bytes[4] = 99;  // version field, little-endian u32 at offset 4
  try {
    (void)TraceFile::decode(bytes);
    FAIL() << "decode accepted a future version";
  } catch (const TraceError& err) {
    EXPECT_NE(std::string(err.what()).find("version"), std::string::npos);
  }
}

TEST(TraceFormat, BadMagicIsRejected) {
  auto bytes = random_trace(6, 1, 5).encode();
  bytes[0] = 'X';
  EXPECT_THROW((void)TraceFile::decode(bytes), TraceError);
}

TEST(TraceFormat, ByteSwappedMagicGetsEndianDiagnostic) {
  auto bytes = random_trace(8, 1, 5).encode();
  std::swap(bytes[0], bytes[3]);
  std::swap(bytes[1], bytes[2]);
  try {
    (void)TraceFile::decode(bytes);
    FAIL() << "decode accepted a byte-swapped magic";
  } catch (const TraceError& err) {
    EXPECT_NE(std::string(err.what()).find("byte order"), std::string::npos);
  }
}

TEST(TraceFormat, SaveLoadRoundTrip) {
  const TraceFile tf = random_trace(11, 2, 30);
  const std::string path =
      testing::TempDir() + "/mpisect_format_roundtrip.mpst";
  tf.save(path);
  const TraceFile back = TraceFile::load(path);
  EXPECT_EQ(back.encode(), tf.encode());
  std::remove(path.c_str());
}

TEST(TraceFormat, LoadMissingFileThrows) {
  EXPECT_THROW((void)TraceFile::load("/nonexistent/definitely_missing.mpst"),
               TraceError);
}

}  // namespace
