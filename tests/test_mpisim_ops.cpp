// Tests for MiniMPI datatypes, reduction operators and error machinery.
#include <gtest/gtest.h>

#include <vector>

#include "mpisim/datatype.hpp"
#include "mpisim/error.hpp"
#include "mpisim/op.hpp"

namespace {

using namespace mpisect::mpisim;

TEST(Datatypes, SizesMatchCpp) {
  EXPECT_EQ(datatype_size(Datatype::Byte), sizeof(std::byte));
  EXPECT_EQ(datatype_size(Datatype::Int), sizeof(int));
  EXPECT_EQ(datatype_size(Datatype::Double), sizeof(double));
  EXPECT_EQ(datatype_size(Datatype::DoubleInt), sizeof(DoubleInt));
}

TEST(Datatypes, TraitsMapping) {
  EXPECT_EQ(datatype_of<int>, Datatype::Int);
  EXPECT_EQ(datatype_of<double>, Datatype::Double);
  EXPECT_EQ(datatype_of<DoubleInt>, Datatype::DoubleInt);
}

TEST(Datatypes, Names) {
  EXPECT_STREQ(datatype_name(Datatype::Double), "MPI_DOUBLE");
  EXPECT_STREQ(datatype_name(Datatype::Byte), "MPI_BYTE");
}

TEST(Ops, SumDouble) {
  const double in[3] = {1.0, 2.0, 3.0};
  double inout[3] = {10.0, 20.0, 30.0};
  apply_op(ReduceOp::Sum, Datatype::Double, in, inout, 3);
  EXPECT_DOUBLE_EQ(inout[0], 11.0);
  EXPECT_DOUBLE_EQ(inout[2], 33.0);
}

TEST(Ops, MaxMinInt) {
  const int in[2] = {5, -7};
  int inout[2] = {3, -2};
  apply_op(ReduceOp::Max, Datatype::Int, in, inout, 2);
  EXPECT_EQ(inout[0], 5);
  EXPECT_EQ(inout[1], -2);
  int inout2[2] = {3, -2};
  apply_op(ReduceOp::Min, Datatype::Int, in, inout2, 2);
  EXPECT_EQ(inout2[0], 3);
  EXPECT_EQ(inout2[1], -7);
}

TEST(Ops, ProdFloat) {
  const float in[1] = {2.5f};
  float inout[1] = {4.0f};
  apply_op(ReduceOp::Prod, Datatype::Float, in, inout, 1);
  EXPECT_FLOAT_EQ(inout[0], 10.0f);
}

TEST(Ops, LogicalOps) {
  const int in[4] = {1, 0, 1, 0};
  int land[4] = {1, 1, 0, 0};
  apply_op(ReduceOp::LAnd, Datatype::Int, in, land, 4);
  EXPECT_EQ(land[0], 1);
  EXPECT_EQ(land[1], 0);
  EXPECT_EQ(land[2], 0);
  EXPECT_EQ(land[3], 0);
  int lor[4] = {1, 1, 0, 0};
  apply_op(ReduceOp::LOr, Datatype::Int, in, lor, 4);
  EXPECT_EQ(lor[0], 1);
  EXPECT_EQ(lor[1], 1);
  EXPECT_EQ(lor[2], 1);
  EXPECT_EQ(lor[3], 0);
}

TEST(Ops, BitwiseOnIntegers) {
  const int in[1] = {0b1100};
  int band[1] = {0b1010};
  apply_op(ReduceOp::BAnd, Datatype::Int, in, band, 1);
  EXPECT_EQ(band[0], 0b1000);
  int bor[1] = {0b1010};
  apply_op(ReduceOp::BOr, Datatype::Int, in, bor, 1);
  EXPECT_EQ(bor[0], 0b1110);
}

TEST(Ops, MaxLocPicksValueThenLowestIndex) {
  const DoubleInt in[2] = {{5.0, 3}, {7.0, 9}};
  DoubleInt inout[2] = {{5.0, 1}, {7.0, 2}};
  apply_op(ReduceOp::MaxLoc, Datatype::DoubleInt, in, inout, 2);
  EXPECT_EQ(inout[0].index, 1);  // tie: keep lower index
  EXPECT_EQ(inout[1].index, 2);  // tie: lower index wins
  const DoubleInt bigger[1] = {{9.0, 5}};
  DoubleInt target[1] = {{7.0, 2}};
  apply_op(ReduceOp::MaxLoc, Datatype::DoubleInt, bigger, target, 1);
  EXPECT_DOUBLE_EQ(target[0].value, 9.0);
  EXPECT_EQ(target[0].index, 5);
}

TEST(Ops, MinLoc) {
  const DoubleInt in[1] = {{-2.0, 7}};
  DoubleInt inout[1] = {{3.0, 1}};
  apply_op(ReduceOp::MinLoc, Datatype::DoubleInt, in, inout, 1);
  EXPECT_DOUBLE_EQ(inout[0].value, -2.0);
  EXPECT_EQ(inout[0].index, 7);
}

TEST(Ops, ValidityMatrix) {
  EXPECT_TRUE(op_valid(ReduceOp::Sum, Datatype::Double));
  EXPECT_TRUE(op_valid(ReduceOp::BAnd, Datatype::Int));
  EXPECT_FALSE(op_valid(ReduceOp::BAnd, Datatype::Double));
  EXPECT_FALSE(op_valid(ReduceOp::MaxLoc, Datatype::Double));
  EXPECT_TRUE(op_valid(ReduceOp::MaxLoc, Datatype::DoubleInt));
  EXPECT_FALSE(op_valid(ReduceOp::Sum, Datatype::DoubleInt));
  EXPECT_TRUE(op_valid(ReduceOp::BOr, Datatype::Byte));
  EXPECT_FALSE(op_valid(ReduceOp::Sum, Datatype::Byte));
}

TEST(Ops, InvalidCombinationThrows) {
  double in = 1.0;
  double inout = 2.0;
  EXPECT_THROW(apply_op(ReduceOp::BAnd, Datatype::Double, &in, &inout, 1),
               MpiError);
  EXPECT_THROW(apply_op(ReduceOp::Sum, Datatype::Double, &in, &inout, -1),
               MpiError);
}

TEST(Errors, CodeAndMessagePreserved) {
  try {
    throw MpiError(Err::Truncate, "boom");
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Err::Truncate);
    EXPECT_NE(std::string(e.what()).find("MPI_ERR_TRUNCATE"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Errors, RequireThrowsOnlyWhenFalse) {
  EXPECT_NO_THROW(require(true, Err::Arg, "ok"));
  EXPECT_THROW(require(false, Err::Rank, "bad"), MpiError);
}

TEST(Errors, AllCodesNamed) {
  for (const Err e :
       {Err::Success, Err::Comm, Err::Count, Err::Rank, Err::Tag, Err::Type,
        Err::Op, Err::Truncate, Err::Buffer, Err::Arg, Err::Pending,
        Err::Section, Err::Aborted, Err::Internal}) {
    EXPECT_NE(std::string(err_name(e)), "MPI_ERR_UNKNOWN");
  }
}

}  // namespace
