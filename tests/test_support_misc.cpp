// Tests for strings, tables, CSV, CLI parsing and ASCII charts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>

#include "support/chart.hpp"
#include "support/cli.hpp"
#include "support/crc32.hpp"
#include "support/csv.hpp"
#include "support/digest.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace mpisect::support;

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitEmpty) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, Formatting) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-1.0, 0), "-1");
  EXPECT_EQ(fmt_auto(0.0), "0");
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(1536), "1.50 KiB");
  EXPECT_EQ(fmt_seconds(2.5), "2.500 s");
  EXPECT_EQ(fmt_seconds(0.0025), "2.500 ms");
  EXPECT_EQ(fmt_seconds(2.5e-6), "2.500 us");
  EXPECT_EQ(fmt_seconds(2.5e-8), "25 ns");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // no truncation
}

TEST(Strings, JoinAndCase) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

TEST(Table, RendersAlignedRows) {
  TextTable t;
  t.set_header({"name", "value"});
  t.set_align({TextTable::Align::Left, TextTable::Align::Right});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("|    22 |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumericRowHelper) {
  TextTable t;
  t.set_header({"label", "x", "y"});
  t.add_row_numeric("row", {1.234, 5.678}, 1);
  EXPECT_NE(t.render_csv().find("row,1.2,5.7"), std::string::npos);
}

TEST(Csv, WriteParseRoundtrip) {
  CsvWriter w({"p", "time"});
  w.add_row(std::vector<std::string>{"1", "2.5"});
  w.add_row(std::vector<double>{2.0, 1.25});
  const auto rows = parse_csv(w.str());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], "p");
  EXPECT_EQ(rows[1][1], "2.5");
  EXPECT_EQ(rows[2][0], "2");
}

TEST(Csv, RowArityEnforced) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Cli, ParsesTypesAndDefaults) {
  ArgParser args("prog", "test");
  args.add_int("n", 5, "count");
  args.add_double("x", 1.5, "factor");
  args.add_string("name", "none", "label");
  args.add_flag("verbose", "chatty");
  const char* argv[] = {"prog", "--n", "10", "--x=2.5", "--verbose"};
  ASSERT_TRUE(args.parse(5, argv));
  EXPECT_EQ(args.get_int("n"), 10);
  EXPECT_DOUBLE_EQ(args.get_double("x"), 2.5);
  EXPECT_EQ(args.get_string("name"), "none");
  EXPECT_TRUE(args.get_flag("verbose"));
}

TEST(Cli, RejectsUnknownOption) {
  ArgParser args("prog", "test");
  args.add_int("n", 5, "count");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(args.parse(3, argv));
}

TEST(Cli, RejectsMissingValue) {
  ArgParser args("prog", "test");
  args.add_int("n", 5, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  ArgParser args("prog", "test");
  args.add_flag("v", "verbose");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(args.parse(2, argv));
  EXPECT_NE(args.usage().find("--v"), std::string::npos);
}

TEST(Cli, ThrowsOnUndeclaredGet) {
  ArgParser args("prog", "test");
  EXPECT_THROW((void)args.get_int("nope"), std::logic_error);
}

TEST(Cli, DeprecatedAliasStillParses) {
  ArgParser args("prog", "test");
  args.add_string("model", "ideal", "machine model");
  args.add_alias("machine", "model");
  const char* argv[] = {"prog", "--machine", "knl"};
  ASSERT_TRUE(args.parse(3, argv));
  EXPECT_EQ(args.get_string("model"), "knl");
}

TEST(Cli, DeprecationMessageNamesExactReplacement) {
  // The warning must tell the user precisely which flag to type now —
  // "deprecated" alone is not actionable. This is the text parse() prints
  // to stderr when an alias is used (also asserted end-to-end by the
  // tools.deprecated_* ctest smoke tests).
  const std::string msg = deprecation_message("mpisect-report", "machine",
                                              "model");
  EXPECT_EQ(msg,
            "mpisect-report: warning: '--machine' is deprecated, "
            "use '--model' instead");
  EXPECT_NE(msg.find("'--model'"), std::string::npos)
      << "suggestion must name the replacement flag";
}

std::span<const std::uint8_t> as_bytes(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s), std::strlen(s)};
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32({}), 0u);
  // The classic check value for CRC-32/IEEE.
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32, SeedChainsIncrementalUpdates) {
  const auto all = as_bytes("chunked trace payload");
  const std::uint32_t whole = crc32(all);
  const std::uint32_t chained =
      crc32(all.subspan(7), crc32(all.subspan(0, 7)));
  EXPECT_EQ(whole, chained);
}

TEST(Digest, Fnv1a64KnownVectors) {
  EXPECT_EQ(fnv1a64({}), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a64(as_bytes("a")), 0xAF63DC4C8601EC8Cull);
}

TEST(Digest, FormatIsStable) {
  EXPECT_EQ(format_digest(0), "mpst1-0000000000000000");
  EXPECT_EQ(format_digest(0xDEADBEEF01234567ull), "mpst1-deadbeef01234567");
}

TEST(Chart, LineChartContainsSeriesGlyphsAndLegend) {
  Series s1{"alpha", {1, 2, 3, 4}, {1, 2, 3, 4}};
  Series s2{"beta", {1, 2, 3, 4}, {4, 3, 2, 1}};
  ChartOptions opts;
  opts.title = "test chart";
  const std::string out = line_chart({s1, s2}, opts);
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find("* = alpha"), std::string::npos);
  EXPECT_NE(out.find("o = beta"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(Chart, EmptySeries) {
  EXPECT_EQ(line_chart({}, {}), "(empty chart)\n");
}

TEST(Chart, LogScalesDoNotCrash) {
  Series s{"s", {1, 2, 4, 8, 16}, {1, 10, 100, 1000, 10000}};
  ChartOptions opts;
  opts.log_x = true;
  opts.log_y = true;
  EXPECT_FALSE(line_chart({s}, opts).empty());
}

TEST(Chart, BarChartProportions) {
  const std::string out =
      bar_chart({"big", "small"}, {100.0, 50.0}, 20, "bars");
  // "big" bar should be about twice the "small" bar.
  const auto big_pos = out.find("big");
  const auto small_pos = out.find("small");
  ASSERT_NE(big_pos, std::string::npos);
  ASSERT_NE(small_pos, std::string::npos);
  const auto count_hashes = [&](std::size_t from) {
    std::size_t n = 0;
    for (std::size_t i = from; i < out.size() && out[i] != '\n'; ++i) {
      if (out[i] == '#') ++n;
    }
    return n;
  };
  EXPECT_EQ(count_hashes(big_pos), 2 * count_hashes(small_pos));
}

}  // namespace
