// Partial speedup bounding (Eq. 6), inflexion detection, and the report
// renderers — the paper's core analysis machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "core/speedup/inflexion.hpp"
#include "core/speedup/partial_bound.hpp"
#include "core/speedup/report.hpp"

namespace {

using namespace mpisect::speedup;

TEST(PartialBound, BasicFormula) {
  // B = T_seq / t_section_per_process.
  EXPECT_DOUBLE_EQ(partial_bound(5589.84, 47.272), 5589.84 / 47.272);
  EXPECT_TRUE(std::isinf(partial_bound(100.0, 0.0)));
}

TEST(PartialBound, PaperFig6Numbers) {
  // Fig. 6: with 64 processes, total HALO = 3025.44 s, per-process =
  // 3025.44/64, and B = 5589.84 / (3025.44/64) = 118.25.
  const double b64 = partial_bound(5589.84, 3025.44 / 64.0);
  EXPECT_NEAR(b64, 118.25, 0.05);
  // 112 processes: 1822.38 total -> B = 343.54.
  const double b112 = partial_bound(5589.84, 1822.38 / 112.0);
  EXPECT_NEAR(b112, 343.54, 0.1);
  // 128 processes: 14135.56 total -> B = 50.61.
  const double b128 = partial_bound(5589.84, 14135.56 / 128.0);
  EXPECT_NEAR(b128, 50.61, 0.05);
}

TEST(PartialBound, PaperFig10LuleshNumbers) {
  // Sec 5.2: sequential 882.48s; at the inflexion (24 threads) the two
  // Lagrange sections cost 43.84 + 64.29 -> bound 8.16x; and
  // LagrangeElements alone bounds at 882.48/64.29 = 13.72x.
  EXPECT_NEAR(partial_bound(882.48, 43.84 + 64.29), 8.16, 0.01);
  EXPECT_NEAR(partial_bound(882.48, 64.29), 13.72, 0.01);
}

BoundAnalysis make_analysis() {
  // Sequential total 100s: COMPUTE 90s, COMM 10s.
  BoundAnalysis analysis(100.0);
  SectionScaling compute;
  compute.label = "COMPUTE";
  SectionScaling comm;
  comm.label = "COMM";
  for (const int p : {1, 2, 4, 8, 16, 32}) {
    const double tc = 90.0 / p;          // scales perfectly
    const double tm = p == 1 ? 10.0 : 10.0 / std::sqrt(p);  // scales poorly
    compute.per_process.add(p, tc);
    compute.total.add(p, tc * p);
    comm.per_process.add(p, tm);
    comm.total.add(p, tm * p);
  }
  analysis.add_section(compute);
  analysis.add_section(comm);
  return analysis;
}

TEST(BoundAnalysisTest, BoundSeries) {
  const auto analysis = make_analysis();
  const auto b = analysis.bound_series("COMM");
  EXPECT_DOUBLE_EQ(*b.at(1), 10.0);           // 100/10
  EXPECT_DOUBLE_EQ(*b.at(16), 100.0 / 2.5);   // 100/(10/4)
  EXPECT_TRUE(analysis.bound_series("NOPE").empty());
}

TEST(BoundAnalysisTest, BindingBoundIsMinOverSections) {
  const auto analysis = make_analysis();
  const auto binding = analysis.binding_bounds();
  ASSERT_EQ(binding.size(), 6u);
  // At p=1 COMM bounds at 10 while COMPUTE bounds at 100/90 = 1.11: the
  // binding section is COMPUTE (it has the LOWEST bound).
  EXPECT_EQ(binding[0].label, "COMPUTE");
  EXPECT_NEAR(binding[0].bound, 100.0 / 90.0, 1e-12);
  // At p=32 COMPUTE's bound is 100/(90/32)=35.6 but COMM's is
  // 100/(10/sqrt(32)) = 56.6 -> COMPUTE still binding.
  EXPECT_EQ(binding[5].label, "COMPUTE");
  // The overall bound grows with p but sub-linearly vs the COMM section.
  EXPECT_GT(binding[5].bound, binding[0].bound);
}

TEST(BoundAnalysisTest, RowsCoverAllSectionsAndScales) {
  const auto analysis = make_analysis();
  const auto rows = analysis.rows();
  EXPECT_EQ(rows.size(), 12u);
  int comm_rows = 0;
  for (const auto& r : rows) {
    if (r.label == "COMM") {
      ++comm_rows;
      EXPECT_NEAR(r.total_time, r.per_process_time * r.p, 1e-9);
      EXPECT_DOUBLE_EQ(r.bound, partial_bound(100.0, r.per_process_time));
    }
  }
  EXPECT_EQ(comm_rows, 6);
}

TEST(BoundAnalysisTest, TranspositionHoldsForNonScalingSection) {
  // The paper's transposition claim applies to a section that has STOPPED
  // scaling: its per-process time never drops below the value at p_low, so
  // the bound computed there keeps holding at larger p.
  BoundAnalysis analysis(100.0);
  SectionScaling compute;
  compute.label = "COMPUTE";
  SectionScaling comm;
  comm.label = "COMM";
  ScalingSeries measured("S");
  for (const int p : {1, 2, 4, 8, 16, 32}) {
    const double tc = 90.0 / p;
    const double tm = 10.0;  // flat: exhausted its parallelism budget
    compute.per_process.add(p, tc);
    compute.total.add(p, tc * p);
    comm.per_process.add(p, tm);
    comm.total.add(p, tm * p);
    measured.add(p, 100.0 / (tc + tm));
  }
  analysis.add_section(compute);
  analysis.add_section(comm);
  const auto trans = analysis.transpose_bound("COMM", 4, measured);
  EXPECT_TRUE(trans.holds);
  EXPECT_DOUBLE_EQ(trans.bound, 10.0);  // 100/10
}

TEST(BoundAnalysisTest, TranspositionViolationDetected) {
  BoundAnalysis analysis(100.0);
  SectionScaling s;
  s.label = "X";
  s.per_process.add(2, 50.0);  // implies B(2) = 2
  s.total.add(2, 100.0);
  analysis.add_section(s);
  ScalingSeries measured("S");
  measured.add(2, 1.8);
  measured.add(4, 3.5);  // exceeds the bound of 2 -> the bound was wrong
  const auto trans = analysis.transpose_bound("X", 2, measured);
  EXPECT_FALSE(trans.holds);
  EXPECT_EQ(trans.first_violation_p, 4);
}

TEST(BoundAnalysisTest, TranspositionMissingSample) {
  const auto analysis = make_analysis();
  ScalingSeries measured("S");
  const auto trans = analysis.transpose_bound("COMM", 3, measured);
  EXPECT_FALSE(trans.holds);  // p=3 never sampled
}

TEST(Inflexion, DetectsMinimumBeforeRise) {
  ScalingSeries s("Lagrange");
  s.add(1, 100.0);
  s.add(2, 52.0);
  s.add(4, 28.0);
  s.add(8, 16.0);
  s.add(16, 11.0);
  s.add(24, 9.0);   // the minimum
  s.add(32, 10.0);
  s.add(64, 14.0);
  const auto ip = find_inflexion(s);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->p, 24);
  EXPECT_DOUBLE_EQ(ip->time, 9.0);
  EXPECT_NEAR(ip->rise, 14.0 / 9.0 - 1.0, 1e-12);
}

TEST(Inflexion, MonotoneDecreasingHasNone) {
  ScalingSeries s("ok");
  for (int p = 1; p <= 64; p *= 2) s.add(p, 100.0 / p);
  EXPECT_FALSE(find_inflexion(s).has_value());
}

TEST(Inflexion, NoiseBelowToleranceIgnored) {
  ScalingSeries s("noisy");
  s.add(1, 100.0);
  s.add(2, 50.0);
  s.add(4, 25.0);
  s.add(8, 25.2);  // 0.8% wiggle
  EXPECT_FALSE(find_inflexion(s, 0.02).has_value());
  EXPECT_TRUE(find_inflexion(s, 0.001).has_value());  // tighter tolerance
}

TEST(Inflexion, ShortSeriesHasNone) {
  ScalingSeries s("short");
  s.add(1, 2.0);
  s.add(2, 3.0);
  EXPECT_FALSE(find_inflexion(s).has_value());
}

TEST(Inflexion, BoundAtInflexion) {
  ScalingSeries s("sect");
  s.add(1, 50.0);
  s.add(8, 10.0);
  s.add(16, 8.0);
  s.add(32, 12.0);
  const auto b = inflexion_bound(s, 100.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(*b, 100.0 / 8.0);
  ScalingSeries mono("m");
  for (int p = 1; p <= 8; p *= 2) mono.add(p, 8.0 / p);
  EXPECT_FALSE(inflexion_bound(mono, 100.0).has_value());
}

TEST(Inflexion, MaxUsefulScale) {
  ScalingSeries s("sect");
  s.add(1, 50.0);
  s.add(8, 10.0);
  s.add(16, 8.0);
  s.add(32, 12.0);
  EXPECT_EQ(*max_useful_scale(s), 16);
  ScalingSeries mono("m");
  mono.add(1, 4.0);
  mono.add(2, 2.0);
  mono.add(4, 1.0);
  EXPECT_EQ(*max_useful_scale(mono), 4);  // best sampled point
  EXPECT_FALSE(max_useful_scale(ScalingSeries("e")).has_value());
}

TEST(Report, BoundTableContainsRows) {
  const auto analysis = make_analysis();
  const std::string table =
      render_bound_table(analysis, "COMM", {2, 8, 32});
  EXPECT_NE(table.find("#Processes"), std::string::npos);
  EXPECT_NE(table.find("Tot. COMM Time"), std::string::npos);
  EXPECT_NE(table.find("Speedup Bound (B)"), std::string::npos);
  EXPECT_NE(table.find("32"), std::string::npos);
}

TEST(Report, BindingTable) {
  const auto analysis = make_analysis();
  const std::string table = render_binding_table(analysis);
  EXPECT_NE(table.find("COMPUTE"), std::string::npos);
}

TEST(Report, SeriesCsvAlignsByP) {
  ScalingSeries a("a");
  a.add(1, 1.0);
  a.add(2, 2.0);
  ScalingSeries b("b");
  b.add(2, 20.0);
  const std::string csv = series_csv({a, b});
  EXPECT_NE(csv.find("p,a,b"), std::string::npos);
  EXPECT_NE(csv.find("1,1,"), std::string::npos);
  EXPECT_NE(csv.find("2,2,20"), std::string::npos);
}

TEST(Report, SpeedupSummary) {
  ScalingSeries t("walltime");
  t.add(1, 16.0);
  t.add(8, 4.0);
  const std::string line = summarize_speedup(t);
  EXPECT_NE(line.find("4.00x"), std::string::npos);
  EXPECT_NE(line.find("Karp-Flatt"), std::string::npos);
  EXPECT_EQ(summarize_speedup(ScalingSeries("x")), "(insufficient data)\n");
}

}  // namespace
