// Cross-module integration: the full paper pipeline in miniature —
// run an instrumented app at several scales, feed profiler output into the
// partial-speedup-bound analysis, and check the bound actually bounds.
#include <gtest/gtest.h>

#include <map>

#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "core/speedup/inflexion.hpp"
#include "core/speedup/partial_bound.hpp"
#include "core/speedup/report.hpp"
#include "profiler/report.hpp"
#include "profiler/section_profiler.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::apps;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

struct SweepPoint {
  double walltime = 0.0;
  std::map<std::string, double> mean_per_process;
  std::map<std::string, double> total;
};

SweepPoint run_convolution(int p, const MachineModel& machine) {
  WorldOptions opts;
  opts.machine = machine;
  World world(p, opts);
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  conv::ConvolutionConfig cfg;
  cfg.width = 256;
  cfg.height = 192;
  cfg.steps = 40;
  cfg.full_fidelity = false;
  conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  SweepPoint pt;
  pt.walltime = world.elapsed();
  for (const auto& t : prof.totals()) {
    pt.mean_per_process[t.label] = t.mean_per_process;
    pt.total[t.label] = t.total_time;
  }
  return pt;
}

TEST(IntegrationConvolution, PartialBoundsCoverMeasuredSpeedup) {
  const auto machine = MachineModel::nehalem_cluster();
  const std::vector<int> ps{1, 2, 4, 8, 16};
  std::map<int, SweepPoint> sweep;
  for (const int p : ps) sweep[p] = run_convolution(p, machine);

  const double t_seq = sweep[1].walltime;
  speedup::BoundAnalysis analysis(t_seq);
  for (const char* label :
       {conv::labels::kConvolve, conv::labels::kHalo, conv::labels::kScatter,
        conv::labels::kGather}) {
    speedup::SectionScaling s;
    s.label = label;
    for (const int p : ps) {
      const auto it = sweep[p].mean_per_process.find(label);
      if (it != sweep[p].mean_per_process.end() && it->second > 0.0) {
        s.per_process.add(p, it->second);
        s.total.add(p, sweep[p].total[label]);
      }
    }
    analysis.add_section(s);
  }

  // Eq. 6: for EVERY section and every p, B_i(p) >= measured S(p).
  speedup::ScalingSeries measured("S");
  for (const int p : ps) measured.add(p, t_seq / sweep[p].walltime);
  for (const auto& row : analysis.rows()) {
    const auto s = measured.at(row.p);
    ASSERT_TRUE(s.has_value());
    EXPECT_GE(row.bound * 1.02, *s)
        << "section " << row.label << " bound violated at p=" << row.p;
  }

  // And the binding-bound report renders.
  const std::string table = speedup::render_binding_table(analysis);
  EXPECT_NE(table.find("CONVOLVE"), std::string::npos);
}

TEST(IntegrationConvolution, CommunicationShareGrowsWithScale) {
  const auto machine = MachineModel::nehalem_cluster();
  const auto small = run_convolution(2, machine);
  const auto large = run_convolution(16, machine);
  const auto share = [](const SweepPoint& pt) {
    const auto convolve = pt.mean_per_process.at(conv::labels::kConvolve);
    const auto halo = pt.mean_per_process.at(conv::labels::kHalo);
    return halo / (halo + convolve);
  };
  EXPECT_GT(share(large), share(small));
}

TEST(IntegrationLulesh, OpenMPInflexionDetectedFromSectionsOnly) {
  // The paper's headline demo: sweep OpenMP threads on the KNL model,
  // measure ONLY MPI sections, find the inflexion point and check that the
  // partial bound at that point covers the best measured speedup.
  speedup::ScalingSeries nodal("LagrangeNodal");
  speedup::ScalingSeries walltime("walltime");
  for (const int threads : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    WorldOptions opts;
    opts.machine = MachineModel::knl();
    opts.machine.compute_noise_sigma = 0.0;
    World world(1, opts);
    sections::SectionRuntime::install(world);
    profiler::SectionProfiler prof(world);
    apps::lulesh::LuleshConfig cfg;
    cfg.s = 16;
    cfg.steps = 4;
    cfg.omp_threads = threads;
    cfg.full_fidelity = false;
    apps::lulesh::LuleshApp app(cfg);
    world.run(std::ref(app));
    nodal.add(threads, prof.totals_for("LagrangeNodal").mean_per_process);
    walltime.add(threads, world.elapsed());
  }
  const auto ip = speedup::find_inflexion(nodal);
  ASSERT_TRUE(ip.has_value()) << "KNL model must show an OpenMP inflexion";
  EXPECT_GE(ip->p, 8);
  EXPECT_LE(ip->p, 64);

  // The walltime-derived speedup never exceeds the nodal section's bound.
  const double t_seq = *walltime.sequential();
  const auto bound = speedup::inflexion_bound(nodal, t_seq);
  ASSERT_TRUE(bound.has_value());
  const auto best = walltime.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_GE(*bound * 1.02, t_seq / best->time);
}

TEST(IntegrationProfiler, ReportPipelineOnLulesh) {
  WorldOptions wopts;
  wopts.machine = MachineModel::ideal();
  wopts.seed = 3;
  World world(8, wopts);
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world, {.keep_instances = true});
  apps::lulesh::LuleshConfig cfg;
  cfg.s = 4;
  cfg.steps = 2;
  apps::lulesh::LuleshApp app(cfg);
  world.run(std::ref(app));

  // Full report stack renders and agrees with itself.
  const auto shares = profiler::execution_shares(prof);
  EXPECT_FALSE(shares.empty());
  // Shares are exclusive: pure container sections ("timeloop") contribute
  // ~nothing while leaf kernels carry the weight.
  double timeloop_share = 1.0;
  double stress_share = 0.0;
  for (const auto& s : shares) {
    if (s.label == "timeloop") timeloop_share = s.share;
    if (s.label == "IntegrateStressForElems") stress_share = s.share;
  }
  EXPECT_NEAR(timeloop_share, 0.0, 1e-9);
  EXPECT_GT(stress_share, 0.0);
  EXPECT_FALSE(profiler::render_text(prof).empty());
  EXPECT_FALSE(profiler::render_json(prof).empty());
  // Cross-rank Fig. 3 metrics exist for a per-step section.
  const auto t = prof.totals_for("CommForce");
  const auto m = prof.instance_metrics(t.comm_context, "CommForce", 0);
  EXPECT_EQ(m.nranks, 8);
  EXPECT_GE(m.imbalance, -1e-12);
}

TEST(IntegrationValidation, WholeAppUnderValidationMode) {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  opts.validate_sections = true;
  World world(8, opts);
  auto rt = sections::SectionRuntime::install(world);
  apps::lulesh::LuleshConfig cfg;
  cfg.s = 3;
  cfg.steps = 2;
  apps::lulesh::LuleshApp app(cfg);
  world.run(std::ref(app));
  EXPECT_GT(rt->counters().validation_rounds, 0u);
  EXPECT_EQ(rt->counters().errors, 0u);  // the app is a correct MPI program
}

}  // namespace
