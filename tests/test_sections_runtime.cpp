// MPI_Section runtime semantics: nesting invariants, MPI_MAIN bracketing,
// callbacks with the 32-byte payload, validation mode, stack inspection.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::sections;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(SectionApi, EnterExitBalancedOk) {
  World world(2, ideal_options());
  auto rt = SectionRuntime::install(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    EXPECT_EQ(MPIX_Section_enter(comm, "A"), kSectionOk);
    EXPECT_EQ(MPIX_Section_enter(comm, "B"), kSectionOk);
    EXPECT_EQ(MPIX_Section_exit(comm, "B"), kSectionOk);
    EXPECT_EQ(MPIX_Section_exit(comm, "A"), kSectionOk);
  });
  const auto counters = rt->counters();
  // 2 ranks x (MPI_MAIN + A + B).
  EXPECT_EQ(counters.enters, 6u);
  EXPECT_EQ(counters.exits, 6u);
  EXPECT_EQ(counters.errors, 0u);
}

TEST(SectionApi, NoRuntimeInstalled) {
  World world(1, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    EXPECT_EQ(MPIX_Section_enter(comm, "X"), kSectionErrNoRuntime);
  });
}

TEST(SectionApi, BadLabelRejected) {
  World world(1, ideal_options());
  SectionRuntime::install(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    EXPECT_EQ(MPIX_Section_enter(comm, nullptr), kSectionErrBadLabel);
    EXPECT_EQ(MPIX_Section_enter(comm, ""), kSectionErrBadLabel);
  });
}

TEST(SectionApi, MismatchedExitRejected) {
  World world(1, ideal_options());
  auto rt = SectionRuntime::install(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    EXPECT_EQ(MPIX_Section_enter(comm, "outer"), kSectionOk);
    EXPECT_EQ(MPIX_Section_exit(comm, "inner"), kSectionErrNotNested);
    EXPECT_EQ(MPIX_Section_exit(comm, "outer"), kSectionOk);
  });
  EXPECT_GE(rt->counters().errors, 1u);
}

TEST(SectionApi, ExitWithoutEnterIsEmptyStackAfterMainExit) {
  // Inside the app, the stack always holds MPI_MAIN; popping a wrong label
  // is NotNested, and only a truly empty stack gives EmptyStack.
  World world(1, ideal_options());
  auto rt = SectionRuntime::install(world);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    EXPECT_EQ(MPIX_Section_exit(comm, "ghost"), kSectionErrNotNested);
    // Drain MPI_MAIN manually, then the stack really is empty.
    EXPECT_EQ(MPIX_Section_exit(comm, kMainSectionLabel), kSectionOk);
    EXPECT_EQ(MPIX_Section_exit(comm, "ghost"), kSectionErrEmptyStack);
    // Restore MPI_MAIN so finalize's implicit exit stays balanced.
    EXPECT_EQ(MPIX_Section_enter(comm, kMainSectionLabel), kSectionOk);
  });
  EXPECT_GE(rt->counters().errors, 2u);
}

TEST(SectionApi, MainSectionAutomatic) {
  World world(2, ideal_options());
  auto rt = SectionRuntime::install(world);
  std::atomic<int> saw_main{0};
  world.hooks().section_enter_cb = [&](Ctx&, Comm&, const char* label,
                                       char*) {
    if (std::string(label) == kMainSectionLabel) ++saw_main;
  };
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // Inside the app we are exactly one level deep: MPI_MAIN.
    EXPECT_EQ(rt->stack_string(ctx, comm), kMainSectionLabel);
  });
  EXPECT_EQ(saw_main.load(), 2);
  EXPECT_EQ(rt->counters().enters, rt->counters().exits);
}

TEST(SectionApi, LeakedSectionsForceUnwoundAtFinalize) {
  World world(1, ideal_options());
  auto rt = SectionRuntime::install(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "leaky");
    MPIX_Section_enter(comm, "leakier");
    // never exited — finalize must unwind them and still close MPI_MAIN
  });
  EXPECT_EQ(rt->counters().enters, rt->counters().exits);
}

TEST(SectionCallbacks, PayloadPreservedEnterToLeave) {
  World world(2, ideal_options());
  SectionRuntime::install(world);
  std::atomic<int> checked{0};
  world.hooks().section_enter_cb = [](Ctx& ctx, Comm&, const char* label,
                                      char* data) {
    if (std::string(label) == "work") {
      const double stamp = ctx.now() + 1000.0;
      std::memcpy(data, &stamp, sizeof stamp);
    }
  };
  world.hooks().section_leave_cb = [&](Ctx& ctx, Comm&, const char* label,
                                       char* data) {
    if (std::string(label) == "work") {
      double stamp = 0.0;
      std::memcpy(&stamp, data, sizeof stamp);
      EXPECT_GE(stamp, 1000.0);  // the payload written at enter survived
      EXPECT_LE(stamp, ctx.now() + 1000.0);
      ++checked;
    }
  };
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "work");
    ctx.compute_exact(0.5);
    MPIX_Section_exit(comm, "work");
  });
  EXPECT_EQ(checked.load(), 2);
}

TEST(SectionCallbacks, NestedPayloadsIndependent) {
  World world(1, ideal_options());
  SectionRuntime::install(world);
  std::vector<int> leave_order;
  world.hooks().section_enter_cb = [](Ctx&, Comm&, const char* label,
                                      char* data) {
    const int v = label[0];
    std::memcpy(data, &v, sizeof v);
  };
  world.hooks().section_leave_cb = [&](Ctx&, Comm&, const char*, char* data) {
    int v = 0;
    std::memcpy(&v, data, sizeof v);
    leave_order.push_back(v);
  };
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "a");
    MPIX_Section_enter(comm, "b");
    MPIX_Section_exit(comm, "b");
    MPIX_Section_exit(comm, "a");
  });
  // leave order: b, a, MPI_MAIN ('M').
  ASSERT_EQ(leave_order.size(), 3u);
  EXPECT_EQ(leave_order[0], 'b');
  EXPECT_EQ(leave_order[1], 'a');
  EXPECT_EQ(leave_order[2], 'M');
}

TEST(SectionScoped, RaiiBalances) {
  World world(1, ideal_options());
  auto rt = SectionRuntime::install(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    {
      const ScopedSection s(comm, "scope");
      EXPECT_EQ(s.enter_result(), kSectionOk);
    }
  });
  EXPECT_EQ(rt->counters().enters, rt->counters().exits);
  EXPECT_EQ(rt->counters().errors, 0u);
}

TEST(SectionStacks, PerCommunicatorIndependence) {
  World world(2, ideal_options());
  auto rt = SectionRuntime::install(world);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    Comm sub = comm.dup();
    MPIX_Section_enter(comm, "on-world");
    MPIX_Section_enter(sub, "on-sub");
    // The stacks are independent: exiting on one comm does not disturb
    // the other.
    EXPECT_EQ(MPIX_Section_exit(comm, "on-world"), kSectionOk);
    EXPECT_EQ(MPIX_Section_exit(sub, "on-sub"), kSectionOk);
  });
  EXPECT_EQ(rt->counters().errors, 0u);
}

TEST(SectionStacks, SnapshotShowsNesting) {
  World world(1, ideal_options());
  auto rt = SectionRuntime::install(world);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "communication");
    MPIX_Section_enter(comm, "load-balancing");
    // The "debugger" use case: where am I?
    EXPECT_EQ(rt->stack_string(ctx, comm),
              "MPI_MAIN / communication / load-balancing");
    const auto snap = rt->stack_snapshot(ctx, comm);
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[2].depth, 2);
    MPIX_Section_exit(comm, "load-balancing");
    MPIX_Section_exit(comm, "communication");
  });
}

TEST(SectionValidation, AgreementPasses) {
  WorldOptions opts = ideal_options();
  opts.validate_sections = true;
  World world(4, opts);
  auto rt = SectionRuntime::install(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(MPIX_Section_enter(comm, "agreed"), kSectionOk);
      EXPECT_EQ(MPIX_Section_exit(comm, "agreed"), kSectionOk);
    }
  });
  EXPECT_GT(rt->counters().validation_rounds, 0u);
  EXPECT_EQ(rt->counters().errors, 0u);
}

TEST(SectionValidation, DisagreementDetected) {
  WorldOptions opts = ideal_options();
  opts.validate_sections = true;
  World world(2, opts);
  SectionRuntime::install(world);
  std::atomic<int> mismatches{0};
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const char* label = ctx.rank() == 0 ? "alpha" : "beta";
    if (MPIX_Section_enter(comm, label) == kSectionErrMismatch) ++mismatches;
    MPIX_Section_exit(comm, label);
  });
  EXPECT_EQ(mismatches.load(), 2);  // both ranks detect the divergence
}

TEST(SectionValidation, CanBeToggledOff) {
  WorldOptions opts = ideal_options();
  opts.validate_sections = true;
  World world(2, opts);
  auto rt = SectionRuntime::install(world);
  rt->set_validation(false);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // Divergent labels are NOT caught without validation — the calls are
    // purely local ("non-blocking collective").
    const char* label = ctx.rank() == 0 ? "a" : "b";
    EXPECT_EQ(MPIX_Section_enter(comm, label), kSectionOk);
    EXPECT_EQ(MPIX_Section_exit(comm, label), kSectionOk);
  });
  EXPECT_EQ(rt->counters().errors, 0u);
}

TEST(SectionEnterIsNonBlocking, NoVirtualTimeCost) {
  World world(2, ideal_options());
  SectionRuntime::install(world);
  std::vector<double> costs(2);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // Rank 1 is far behind rank 0; entering a section must NOT synchronize
    // them (unlike a barrier).
    if (ctx.rank() == 0) ctx.compute_exact(100.0);
    const double before = ctx.now();
    MPIX_Section_enter(comm, "free");
    MPIX_Section_exit(comm, "free");
    costs[static_cast<std::size_t>(ctx.rank())] = ctx.now() - before;
  });
  EXPECT_DOUBLE_EQ(costs[0], 0.0);
  EXPECT_DOUBLE_EQ(costs[1], 0.0);
}

TEST(SectionLabels, InterningStableAndShared) {
  LabelRegistry reg;
  const auto a = reg.intern("HALO");
  const auto b = reg.intern("CONVOLVE");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.intern("HALO"), a);
  EXPECT_EQ(reg.name(a), "HALO");
  EXPECT_EQ(reg.lookup("CONVOLVE"), b);
  EXPECT_EQ(reg.lookup("missing"), kInvalidLabel);
  EXPECT_EQ(reg.name(12345), "?");
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.all().size(), 2u);
}

TEST(SectionLabels, HashDiffersByContent) {
  EXPECT_NE(label_hash("HALO"), label_hash("HALp"));
  EXPECT_EQ(label_hash("X"), label_hash("X"));
}

TEST(SectionResultNames, AllNamed) {
  for (int code = 0; code <= 6; ++code) {
    EXPECT_NE(std::string(section_result_name(code)), "MPIX_ERR_SECTION_UNKNOWN");
  }
}

}  // namespace
