// Asynchronous-progress engine coverage: spec parsing, blocking-only
// bit-compatibility across backends, the test()-loop regression (a poll
// loop must not starve its peer under a cooperative scheduler), waitall
// index-order independence under progress engines, nonblocking-collective
// correctness and overlap, the checker's test-loop livelock classification,
// and the v4 trace / replay / fold plumbing that carries the model.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "checker/checker.hpp"
#include "checker/report.hpp"
#include "codec/mpstz.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/progress.hpp"
#include "mpisim/runtime.hpp"
#include "serve/queries.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"
#include "trace/report.hpp"

namespace {

using namespace mpisect;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::ExecBackend;
using mpisim::MachineModel;
using mpisim::MpiError;
using mpisim::ProgressMode;
using mpisim::ProgressModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions nehalem_options(ExecBackend exec = ExecBackend::Cooperative,
                             int workers = 0,
                             ProgressModel progress = {}) {
  WorldOptions opts;
  opts.machine = MachineModel::nehalem_cluster();
  opts.exec = exec;
  opts.workers = workers;
  opts.progress = progress;
  return opts;
}

std::vector<double> convolution_finals(const WorldOptions& opts, int ranks,
                                       int steps) {
  World world(ranks, opts);
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  return world.final_times();
}

// ---------------------------------------------------------------- spec ---

TEST(ProgressSpec, ParseRoundTripsEveryPreset) {
  for (const std::string spec :
       {"blocking-only", "opportunistic", "progress-thread"}) {
    const ProgressModel m = ProgressModel::parse(spec);
    EXPECT_EQ(m.name(), spec);
    EXPECT_EQ(ProgressModel::parse(m.spec()), m) << m.spec();
  }
  const ProgressModel opp = ProgressModel::parse("opportunistic:entry=1e-7");
  EXPECT_EQ(opp.mode, ProgressMode::Opportunistic);
  EXPECT_DOUBLE_EQ(opp.entry_overhead, 1e-7);
  EXPECT_EQ(ProgressModel::parse(opp.spec()), opp);

  const ProgressModel pt =
      ProgressModel::parse("progress-thread:tax=0.1,lat=1e-6");
  EXPECT_EQ(pt.mode, ProgressMode::ProgressThread);
  EXPECT_DOUBLE_EQ(pt.core_tax, 0.1);
  EXPECT_DOUBLE_EQ(pt.thread_latency, 1e-6);
  EXPECT_EQ(ProgressModel::parse(pt.spec()), pt);
}

TEST(ProgressSpec, ParseRejectsGarbage) {
  EXPECT_THROW((void)ProgressModel::parse("eager"), MpiError);
  EXPECT_THROW((void)ProgressModel::parse("opportunistic:zap=1"), MpiError);
  EXPECT_THROW((void)ProgressModel::parse("progress-thread:tax=bogus"),
               MpiError);
  EXPECT_THROW((void)ProgressModel::parse("blocking-only:entry=1"), MpiError);
}

TEST(ProgressSpec, SweepCsvCarriesProgressColumn) {
  EXPECT_NE(trace::sweep_csv_header().find(",drop_rate,progress,makespan"),
            std::string::npos)
      << trace::sweep_csv_header();
}

// --------------------------------------------------------- bit compat ---

TEST(ProgressBitCompat, BlockingOnlyIdenticalAcrossBackendsAndWorkers) {
  const std::vector<double> base =
      convolution_finals(nehalem_options(ExecBackend::Cooperative, 1), 8, 6);
  const std::vector<double> pooled =
      convolution_finals(nehalem_options(ExecBackend::Cooperative, 4), 8, 6);
  const std::vector<double> threads =
      convolution_finals(nehalem_options(ExecBackend::Threads), 8, 6);
  EXPECT_EQ(base, pooled);
  EXPECT_EQ(base, threads);
  // Passing the default model explicitly changes nothing either.
  const std::vector<double> explicit_model = convolution_finals(
      nehalem_options(ExecBackend::Cooperative, 4,
                      ProgressModel::parse("blocking-only")),
      8, 6);
  EXPECT_EQ(base, explicit_model);
}

/// A small SPMD body mixing point-to-point, a test() poll, and both
/// nonblocking collectives — the surface the progress engines touch.
void progress_mix(Ctx& ctx) {
  Comm world = ctx.world_comm();
  const int r = world.rank();
  const int n = world.size();
  std::vector<char> big(64 * 1024, static_cast<char>(r));
  std::vector<char> in(big.size());
  auto sreq = world.isend(big.data(), big.size(), (r + 1) % n, 3);
  auto rreq = world.irecv(in.data(), in.size(), (r + n - 1) % n, 3);
  ctx.compute(2e-5 * (r + 1));
  double v = r + 1.0;
  double acc = 0.0;
  auto nbc = world.iallreduce(&v, &acc, 1, mpisim::datatype_of<double>,
                              mpisim::ReduceOp::Sum);
  (void)nbc.test();
  ctx.compute(5e-5);
  nbc.wait();
  std::array<Comm::Request, 2> reqs{std::move(sreq), std::move(rreq)};
  mpisim::waitall(reqs);
  auto nbb = world.ibarrier();
  while (!nbb.test()) {
  }
}

TEST(ProgressBitCompat, EveryModelDeterministicAcrossBackends) {
  for (const std::string spec :
       {"blocking-only", "opportunistic", "progress-thread"}) {
    const ProgressModel pm = ProgressModel::parse(spec);
    std::array<std::vector<double>, 3> finals;
    int i = 0;
    for (const WorldOptions& opts :
         {nehalem_options(ExecBackend::Cooperative, 1, pm),
          nehalem_options(ExecBackend::Cooperative, 4, pm),
          nehalem_options(ExecBackend::Threads, 0, pm)}) {
      World world(4, opts);
      world.run(progress_mix);
      finals[static_cast<std::size_t>(i++)] = world.final_times();
    }
    EXPECT_EQ(finals[0], finals[1]) << spec;
    EXPECT_EQ(finals[0], finals[2]) << spec;
  }
}

// ---------------------------------------------- the test() regression ---

// The historical bug: a cooperative-backend test() loop spun forever
// because polling never yielded the worker to the rank that would complete
// the request. The fix yields per failed poll and parks past a spin
// budget, so the loop completes in a bounded number of polls even with a
// single worker — and the peer only ever *posts* the receive; it does not
// have to be blocking for the sender's poll to succeed.
TEST(ProgressRegression, TestLoopOnRendezvousSendCompletesWithOneWorker) {
  for (const std::string spec :
       {"blocking-only", "opportunistic", "progress-thread"}) {
    WorldOptions opts = nehalem_options(ExecBackend::Cooperative, 1,
                                        ProgressModel::parse(spec));
    World world(2, opts);
    std::atomic<int> spins{0};
    world.run([&spins](Ctx& ctx) {
      Comm world_comm = ctx.world_comm();
      std::vector<char> buf(64 * 1024);  // > eager threshold: rendezvous
      if (world_comm.rank() == 0) {
        auto req = world_comm.isend(buf.data(), buf.size(), 1, 1);
        int n = 0;
        while (!req.test()) ++n;
        spins.store(n);
      } else {
        auto req = world_comm.irecv(buf.data(), buf.size(), 0, 1);
        ctx.compute(1e-3);  // peer stays busy, never blocks before the wait
        req.wait();
      }
    });
    // Spin budget (64) + a handful of post-park polls, not unbounded.
    EXPECT_LT(spins.load(), 1000) << spec;
  }
}

// Under a progress engine waitall completes receives before rendezvous
// sends, so the request index order cannot change charged time; the
// blocking-only default keeps the historical strict index-order loop.
TEST(ProgressRegression, WaitallOrderIndependentUnderProgressEngines) {
  const auto run_order = [](const ProgressModel& pm, bool send_first) {
    World world(2, nehalem_options(ExecBackend::Cooperative, 0, pm));
    world.run([send_first](Ctx& ctx) {
      Comm world_comm = ctx.world_comm();
      std::vector<char> big(64 * 1024);
      char small = 0;
      if (world_comm.rank() == 0) {
        auto sreq = world_comm.isend(big.data(), big.size(), 1, 1);
        auto rreq = world_comm.irecv(&small, 1, 1, 2);
        std::array<Comm::Request, 2> reqs =
            send_first
                ? std::array<Comm::Request, 2>{std::move(sreq),
                                               std::move(rreq)}
                : std::array<Comm::Request, 2>{std::move(rreq),
                                               std::move(sreq)};
        mpisim::waitall(reqs);
      } else {
        world_comm.send(&small, 1, 0, 2);  // eager: completes early
        ctx.compute(1e-3);                 // rendezvous recv happens late
        world_comm.recv(big.data(), big.size(), 0, 1);
      }
    });
    return world.final_times();
  };
  for (const std::string spec : {"opportunistic", "progress-thread"}) {
    const ProgressModel pm = ProgressModel::parse(spec);
    EXPECT_EQ(run_order(pm, true), run_order(pm, false)) << spec;
  }
}

// ------------------------------------------------- NBC and overlap ---

void nbc_overlap_body(Ctx& ctx, std::vector<double>* sums) {
  Comm world = ctx.world_comm();
  double v = world.rank() + 1.0;
  double acc = 0.0;
  auto req = world.iallreduce(&v, &acc, 1, mpisim::datatype_of<double>,
                              mpisim::ReduceOp::Sum);
  ctx.compute(1e-3);  // background algorithm hides under this
  req.wait();
  (*sums)[static_cast<std::size_t>(world.rank())] = acc;
}

TEST(ProgressOverlap, IallreduceReducesCorrectlyUnderEveryModel) {
  for (const std::string spec :
       {"blocking-only", "opportunistic", "progress-thread"}) {
    WorldOptions opts;
    opts.machine = MachineModel::ideal();
    opts.progress = ProgressModel::parse(spec);
    World world(4, opts);
    std::vector<double> sums(4, 0.0);
    world.run([&sums](Ctx& ctx) { nbc_overlap_body(ctx, &sums); });
    for (const double s : sums) EXPECT_DOUBLE_EQ(s, 1.0 + 2 + 3 + 4) << spec;
  }
}

// Overlap charging: blocking-only serializes the collective's algorithm
// after the wait fence; an asynchronous engine runs it in the background,
// so a compute phase longer than the algorithm absorbs it entirely.
TEST(ProgressOverlap, AsyncModelsHideAlgorithmBehindCompute) {
  const auto makespan_under = [](const std::string& spec) {
    WorldOptions opts;
    opts.machine = MachineModel::ideal();
    opts.progress = ProgressModel::parse(spec);
    World world(4, opts);
    std::vector<double> sums(4, 0.0);
    world.run([&sums](Ctx& ctx) { nbc_overlap_body(ctx, &sums); });
    return world.elapsed();
  };
  const double blocking = makespan_under("blocking-only");
  EXPECT_LT(makespan_under("opportunistic"), blocking);
  EXPECT_LT(makespan_under("progress-thread:tax=0"), blocking);
}

// The progress thread owns a core: every compute charge pays the tax.
TEST(ProgressOverlap, ProgressThreadTaxesCompute) {
  const auto final_under = [](const ProgressModel& pm) {
    WorldOptions opts;
    opts.machine = MachineModel::ideal();
    opts.progress = pm;
    World world(2, opts);
    world.run([](Ctx& ctx) { ctx.compute(1e-3); });
    return world.elapsed();
  };
  const double base = final_under(ProgressModel::parse("blocking-only"));
  const double taxed =
      final_under(ProgressModel::parse("progress-thread:tax=0.25"));
  EXPECT_NEAR(taxed / base, 1.25, 1e-9);
}

// ------------------------------------------------------ livelock ---

TEST(ProgressLivelock, CheckerClassifiesTestLoopLivelock) {
  // One rank, so the quiescent wait graph has no edges at all: no cycle,
  // no orphan — only the parked MPI_Test poll names the failure mode.
  World world(1, [] {
    WorldOptions opts;
    opts.machine = MachineModel::ideal();
    return opts;
  }());
  checker::CheckerOptions copts;
  copts.deadlock_timeout_ms = 250;
  copts.poll_interval_ms = 10;
  auto check = checker::MpiChecker::install(world, copts);

  bool aborted = false;
  try {
    world.run([](Ctx& ctx) {
      Comm world_comm = ctx.world_comm();
      char buf[8];
      // Nothing can ever arrive: this poll loop can never succeed.
      auto req = world_comm.irecv(buf, sizeof buf, mpisim::kAnySource, 7);
      while (!req.test()) {
      }
    });
  } catch (const MpiError& err) {
    aborted = err.code() == mpisim::Err::Aborted;
  }
  EXPECT_TRUE(aborted);
  EXPECT_TRUE(check->deadlock_reported());
  const auto diags = check->diagnostics();
  ASSERT_FALSE(diags.empty());
  bool classified = false;
  for (const auto& d : diags) {
    if (d.message.find("test-loop livelock") != std::string::npos) {
      classified = true;
    }
  }
  EXPECT_TRUE(classified) << diags.front().message;
}

// ------------------------------------------- trace, fold and replay ---

trace::TraceFile record_mix(const ProgressModel& pm) {
  World world(4, nehalem_options(ExecBackend::Cooperative, 0, pm));
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "progress-mix"});
  world.run(progress_mix);
  return rec->finish();
}

TEST(ProgressTrace, V4RoundTripPreservesModelAndNbcEvents) {
  const ProgressModel pm = ProgressModel::parse("progress-thread:tax=0.1");
  const trace::TraceFile tf = record_mix(pm);
  EXPECT_EQ(tf.header.progress, pm);

  // iallreduce + ibarrier posted on 4 ranks; only the iallreduce is
  // completed by wait(), so only it records a fence. (test() polls are
  // deliberately not recorded: poll counts depend on scheduling, recorded
  // events must not.)
  std::size_t posts = 0;
  std::size_t completes = 0;
  for (const auto& rs : tf.ranks) {
    for (const auto& ev : rs.events) {
      posts += ev.kind == trace::EventKind::NbcPost;
      completes += ev.kind == trace::EventKind::NbcComplete;
    }
  }
  EXPECT_EQ(posts, 8u);
  EXPECT_EQ(completes, 4u);

  const std::vector<std::uint8_t> wire = tf.encode();
  const trace::TraceFile back = trace::TraceFile::decode(wire);
  EXPECT_EQ(back.header.progress, pm);
  EXPECT_EQ(back.encode(), wire);
  // The compressed container carries v4 payloads unchanged too.
  EXPECT_EQ(codec::decompress(codec::compress(tf)).encode(), wire);
}

TEST(ProgressTrace, EveryModelReplaysBitIdentically) {
  for (const std::string spec :
       {"blocking-only", "opportunistic", "progress-thread"}) {
    const trace::TraceFile tf = record_mix(ProgressModel::parse(spec));
    const trace::VerifyResult v = trace::verify_roundtrip(tf);
    EXPECT_TRUE(v.ok) << spec << ": " << v.detail;
  }
}

TEST(ProgressTrace, FoldProgressMovesEntryOverheadBothWays) {
  const MachineModel m = MachineModel::nehalem_cluster();
  const ProgressModel blocking;  // default
  const ProgressModel opp = ProgressModel::parse("opportunistic:entry=1e-7");

  // Pristine preset -> opportunistic what-if: the poll cost is added.
  const MachineModel folded = trace::fold_progress(m, blocking, opp, false);
  EXPECT_DOUBLE_EQ(folded.net.send_overhead, m.net.send_overhead + 1e-7);
  EXPECT_DOUBLE_EQ(folded.net.recv_overhead, m.net.recv_overhead + 1e-7);

  // A recorded opportunistic header already carries the fold: replaying
  // under blocking-only removes it again.
  const MachineModel back = trace::fold_progress(folded, opp, blocking, true);
  EXPECT_DOUBLE_EQ(back.net.send_overhead, m.net.send_overhead);
  EXPECT_DOUBLE_EQ(back.net.recv_overhead, m.net.recv_overhead);
  // Same-model fold is the identity.
  const MachineModel same = trace::fold_progress(folded, opp, opp, true);
  EXPECT_DOUBLE_EQ(same.net.send_overhead, folded.net.send_overhead);
}

// The serve layer threads the axis too: "recorded" and the header's own
// spec are the same query, so they must render byte-identical results
// (the cache-key contract), while a different model changes both the
// canonical key and the result.
TEST(ProgressTrace, ServeTreatsRecordedAndExplicitModelAsSameQuery) {
  const trace::TraceFile tf = record_mix(ProgressModel{});  // blocking-only

  serve::ReplayQuery recorded;
  serve::ReplayQuery explicit_spec;
  explicit_spec.model.progress = tf.header.progress.spec();
  EXPECT_EQ(serve::run_replay(tf, recorded),
            serve::run_replay(tf, explicit_spec));

  serve::ReplayQuery threaded;
  threaded.model.progress = "progress-thread:tax=0.3";
  EXPECT_NE(canonical(recorded), canonical(threaded));
  EXPECT_NE(serve::run_replay(tf, recorded), serve::run_replay(tf, threaded));

  serve::SweepQuery plain;
  serve::SweepQuery multi;
  multi.progress = {"recorded", "opportunistic"};
  EXPECT_NE(canonical(plain), canonical(multi));
  const std::string csv = serve::run_sweep(tf, multi);
  EXPECT_NE(csv.find(",opportunistic:entry=5e-08,"), std::string::npos);
}

// A blocking-only recording re-modelled under a progress thread must show
// the model's signature: compute pays the core tax, so the what-if
// makespan grows on a compute-bound trace.
TEST(ProgressTrace, WhatIfProgressThreadTaxShowsInReplay) {
  const trace::TraceFile tf = record_mix(ProgressModel{});
  const trace::ReplayResult base = trace::replay(tf, tf.header.machine, {});

  const ProgressModel pt = ProgressModel::parse("progress-thread:tax=0.3");
  trace::ReplayOptions opts;
  opts.progress = pt;
  const MachineModel folded =
      trace::fold_progress(tf.header.machine, tf.header.progress, pt, true);
  const trace::ReplayResult taxed = trace::replay(tf, folded, opts);
  EXPECT_GT(taxed.makespan, base.makespan);
}

}  // namespace
