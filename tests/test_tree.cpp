// Section-tree reconstruction from retained instance spans.
#include <gtest/gtest.h>

#include "core/sections/api.hpp"
#include "profiler/tree.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::profiler;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(SectionTree, ReconstructsNesting) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world, {.keep_instances = true});
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    sections::MPIX_Section_enter(comm, "outer");
    ctx.compute_exact(1.0);
    for (int i = 0; i < 3; ++i) {
      sections::MPIX_Section_enter(comm, "inner");
      ctx.compute_exact(0.5);
      sections::MPIX_Section_exit(comm, "inner");
    }
    sections::MPIX_Section_exit(comm, "outer");
  });
  const auto forest = build_section_tree(prof);
  ASSERT_EQ(forest.size(), 1u);
  EXPECT_EQ(forest[0]->label, sections::kMainSectionLabel);

  const TreeNode* outer = find_node(forest, "MPI_MAIN / outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_NEAR(outer->inclusive, 2.5, 1e-9);
  EXPECT_NEAR(outer->exclusive, 1.0, 1e-9);
  EXPECT_EQ(outer->instances, 1);

  const TreeNode* inner = find_node(forest, "MPI_MAIN / outer / inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->instances, 3);  // merged repeated instances
  EXPECT_NEAR(inner->inclusive, 1.5, 1e-9);
  EXPECT_NEAR(inner->share_of_parent, 1.5 / 2.5, 1e-9);
  EXPECT_EQ(inner->children.size(), 0u);
  EXPECT_EQ(find_node(forest, "MPI_MAIN / nope"), nullptr);
}

TEST(SectionTree, SameLabelDifferentParentsStaySeparate) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world, {.keep_instances = true});
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    sections::MPIX_Section_enter(comm, "a");
    sections::MPIX_Section_enter(comm, "comm");
    ctx.compute_exact(1.0);
    sections::MPIX_Section_exit(comm, "comm");
    sections::MPIX_Section_exit(comm, "a");
    sections::MPIX_Section_enter(comm, "b");
    sections::MPIX_Section_enter(comm, "comm");
    ctx.compute_exact(3.0);
    sections::MPIX_Section_exit(comm, "comm");
    sections::MPIX_Section_exit(comm, "b");
  });
  const auto forest = build_section_tree(prof);
  const TreeNode* under_a = find_node(forest, "MPI_MAIN / a / comm");
  const TreeNode* under_b = find_node(forest, "MPI_MAIN / b / comm");
  ASSERT_NE(under_a, nullptr);
  ASSERT_NE(under_b, nullptr);
  EXPECT_NEAR(under_a->inclusive, 1.0, 1e-9);
  EXPECT_NEAR(under_b->inclusive, 3.0, 1e-9);
}

TEST(SectionTree, ChildrenSortedByInclusiveTime) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world, {.keep_instances = true});
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    for (const auto& [label, t] :
         std::initializer_list<std::pair<const char*, double>>{
             {"small", 0.5}, {"big", 3.0}, {"mid", 1.0}}) {
      sections::MPIX_Section_enter(comm, label);
      ctx.compute_exact(t);
      sections::MPIX_Section_exit(comm, label);
    }
  });
  const auto forest = build_section_tree(prof);
  ASSERT_EQ(forest.size(), 1u);
  const auto& kids = forest[0]->children;
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(kids[0]->label, "big");
  EXPECT_EQ(kids[1]->label, "mid");
  EXPECT_EQ(kids[2]->label, "small");
}

TEST(SectionTree, AveragesOverRanks) {
  World world(4, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world, {.keep_instances = true});
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    sections::MPIX_Section_enter(comm, "work");
    ctx.compute_exact(static_cast<double>(ctx.rank() + 1));  // 1..4 s
    sections::MPIX_Section_exit(comm, "work");
  });
  const auto forest = build_section_tree(prof);
  const TreeNode* work = find_node(forest, "MPI_MAIN / work");
  ASSERT_NE(work, nullptr);
  EXPECT_NEAR(work->inclusive, 2.5, 1e-9);  // mean of 1..4
}

TEST(SectionTree, RenderContainsIndentedLabels) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world, {.keep_instances = true});
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const sections::ScopedSection outer(comm, "phase");
    ctx.compute_exact(0.1);
  });
  const auto forest = build_section_tree(prof);
  const std::string text = render_tree(forest);
  EXPECT_NE(text.find("MPI_MAIN"), std::string::npos);
  EXPECT_NE(text.find("\n  phase"), std::string::npos);  // indented child
  EXPECT_NE(text.find("% of parent"), std::string::npos);
}

TEST(SectionTree, EmptyWithoutKeepInstances) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);  // aggregate mode: no spans retained
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    sections::MPIX_Section_enter(comm, "x");
    sections::MPIX_Section_exit(comm, "x");
  });
  EXPECT_TRUE(build_section_tree(prof).empty());
}

}  // namespace
