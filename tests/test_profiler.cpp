// SectionProfiler: attachment through hooks only, timing attribution,
// instance metrics, and report rendering.
#include <gtest/gtest.h>

#include <string>

#include "core/sections/api.hpp"
#include "profiler/report.hpp"
#include "profiler/section_profiler.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::profiler;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;
using sections::MPIX_Section_enter;
using sections::MPIX_Section_exit;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(Profiler, MeasuresSectionDurations) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "compute");
    ctx.compute_exact(2.0);
    MPIX_Section_exit(comm, "compute");
  });
  const auto t = prof.totals_for("compute");
  EXPECT_EQ(t.ranks_seen, 2);
  EXPECT_EQ(t.instances, 1);
  EXPECT_NEAR(t.mean_per_process, 2.0, 1e-9);
  EXPECT_NEAR(prof.main_time(), 2.0, 1e-6);
}

TEST(Profiler, ExclusiveExcludesChildren) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "outer");
    ctx.compute_exact(1.0);
    MPIX_Section_enter(comm, "inner");
    ctx.compute_exact(3.0);
    MPIX_Section_exit(comm, "inner");
    MPIX_Section_exit(comm, "outer");
  });
  const auto outer = prof.totals_for("outer");
  const auto inner = prof.totals_for("inner");
  EXPECT_NEAR(outer.total_time, 4.0, 1e-9);
  EXPECT_NEAR(outer.exclusive_total, 1.0, 1e-9);
  EXPECT_NEAR(inner.exclusive_total, 3.0, 1e-9);
}

TEST(Profiler, RepeatedInstancesAccumulate) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    for (int i = 0; i < 10; ++i) {
      MPIX_Section_enter(comm, "step");
      ctx.compute_exact(0.1);
      MPIX_Section_exit(comm, "step");
    }
  });
  const auto t = prof.totals_for("step");
  EXPECT_EQ(t.instances, 10);
  EXPECT_NEAR(t.total_time, 1.0, 1e-9);
  const auto* rs = prof.rank_stats(0, t.comm_context, "step");
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->count, 10);
  EXPECT_NEAR(rs->min_instance, 0.1, 1e-9);
  EXPECT_NEAR(rs->max_instance, 0.1, 1e-9);
}

TEST(Profiler, MpiTimeAttributedToEnclosingSection) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "comm-heavy");
    // Rank 1 waits ~5s for rank 0's message: that waiting is MPI time.
    if (ctx.rank() == 0) {
      ctx.compute_exact(5.0);
      comm.send(nullptr, 8, 1, 0);
    } else {
      comm.recv(nullptr, 8, 0, 0);
    }
    MPIX_Section_exit(comm, "comm-heavy");
  });
  const auto t = prof.totals_for("comm-heavy");
  const auto* r1 = prof.rank_stats(1, t.comm_context, "comm-heavy");
  ASSERT_NE(r1, nullptr);
  EXPECT_NEAR(r1->mpi_time, 5.0, 0.1);      // receive wait dominated
  EXPECT_EQ(r1->p2p_calls, 1);
  const auto* r0 = prof.rank_stats(0, t.comm_context, "comm-heavy");
  ASSERT_NE(r0, nullptr);
  EXPECT_LT(r0->mpi_time, 0.1);             // the sender barely waited
}

TEST(Profiler, CollectiveCallsCounted) {
  World world(4, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "sync");
    comm.barrier();
    comm.barrier();
    MPIX_Section_exit(comm, "sync");
  });
  const auto t = prof.totals_for("sync");
  const auto* rs = prof.rank_stats(2, t.comm_context, "sync");
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->collective_calls, 2);
}

TEST(Profiler, InstanceMetricsCrossRank) {
  World world(3, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world, {.keep_instances = true});
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // Skew entries: rank r arrives r seconds late.
    ctx.compute_exact(static_cast<double>(ctx.rank()));
    MPIX_Section_enter(comm, "skewed");
    ctx.compute_exact(1.0);
    MPIX_Section_exit(comm, "skewed");
  });
  const auto t = prof.totals_for("skewed");
  EXPECT_EQ(prof.instance_count(t.comm_context, "skewed"), 1u);
  const auto m = prof.instance_metrics(t.comm_context, "skewed", 0);
  EXPECT_EQ(m.nranks, 3);
  EXPECT_NEAR(m.t_min, 0.0, 1e-9);
  EXPECT_NEAR(m.t_max, 3.0, 1e-9);
  EXPECT_NEAR(m.entry_imb_max, 2.0, 1e-9);
  EXPECT_NEAR(m.entry_imb_mean, 1.0, 1e-9);
}

TEST(Profiler, AggregatedMetricsOverInstances) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world, {.keep_instances = true});
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    for (int i = 0; i < 5; ++i) {
      MPIX_Section_enter(comm, "loop");
      ctx.compute_exact(0.2);
      MPIX_Section_exit(comm, "loop");
    }
  });
  const auto t = prof.totals_for("loop");
  const auto agg = prof.aggregated_metrics(t.comm_context, "loop");
  EXPECT_EQ(agg.instances, 5);
  EXPECT_NEAR(agg.total_section_mean, 1.0, 1e-9);
}

TEST(Profiler, TraceOrderedPerRank) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world, {.keep_instances = true});
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "a");
    MPIX_Section_enter(comm, "b");
    MPIX_Section_exit(comm, "b");
    MPIX_Section_exit(comm, "a");
  });
  const auto& spans = prof.trace(0);
  // Exit order: b closes before a, MPI_MAIN last.
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(prof.labels().name(spans[0].label), "b");
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_EQ(prof.labels().name(spans[1].label), "a");
  EXPECT_EQ(prof.labels().name(spans[2].label),
            sections::kMainSectionLabel);
}

TEST(Profiler, DetachStopsRecording) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  prof.detach();
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "invisible");
    MPIX_Section_exit(comm, "invisible");
  });
  EXPECT_EQ(prof.totals_for("invisible").ranks_seen, 0);
}

TEST(ProfilerReport, TextContainsSectionsAndPercent) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "phase-a");
    ctx.compute_exact(1.0);
    MPIX_Section_exit(comm, "phase-a");
  });
  const std::string text = render_text(prof);
  EXPECT_NE(text.find("phase-a"), std::string::npos);
  EXPECT_NE(text.find("MPI_MAIN"), std::string::npos);
  const std::string csv = render_csv(prof);
  EXPECT_NE(csv.find("phase-a"), std::string::npos);
  const std::string json = render_json(prof);
  EXPECT_NE(json.find("\"section\": \"phase-a\""), std::string::npos);
}

TEST(ProfilerReport, ExecutionSharesSumSensibly) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "big");
    ctx.compute_exact(3.0);
    MPIX_Section_exit(comm, "big");
    MPIX_Section_enter(comm, "small");
    ctx.compute_exact(1.0);
    MPIX_Section_exit(comm, "small");
  });
  const auto shares = execution_shares(prof);
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0].label, "big");  // sorted descending
  EXPECT_NEAR(shares[0].share, 0.75, 1e-6);
  EXPECT_NEAR(shares[1].share, 0.25, 1e-6);
}

TEST(ProfilerReport, TraceRendering) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world, {.keep_instances = true});
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "traced");
    ctx.compute_exact(0.5);
    MPIX_Section_exit(comm, "traced");
  });
  const std::string trace = render_trace(prof, 0);
  EXPECT_NE(trace.find("traced #0"), std::string::npos);
}


TEST(ProfilerReport, ChromeTraceExport) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world, {.keep_instances = true});
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "boxed");
    ctx.compute_exact(0.25);
    MPIX_Section_exit(comm, "boxed");
  });
  const std::string json = render_chrome_trace(prof);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\": \"boxed\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
  // One event per rank for "boxed" + one per rank for MPI_MAIN = 4 events.
  std::size_t events = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\"", pos)) != std::string::npos; ++pos) ++events;
  EXPECT_EQ(events, 4u);
}

}  // namespace
