// mpicheck section lint: unbalanced, misnested and cross-rank-divergent
// MPIX_Section usage is reported; correct usage (including under a stacked
// profiler) reports nothing.
#include <gtest/gtest.h>

#include <string>

#include "checker/checker.hpp"
#include "checker/report.hpp"
#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/runtime.hpp"
#include "profiler/section_profiler.hpp"

namespace {

using namespace mpisect;
using checker::Category;
using checker::MpiChecker;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;
using sections::MPIX_Section_enter;
using sections::MPIX_Section_exit;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(CheckerSections, SectionLeftOpenAtFinalizeIsReported) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  auto check = MpiChecker::install(world);

  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    MPIX_Section_enter(world_comm, "HALO");
    if (world_comm.rank() == 0) MPIX_Section_exit(world_comm, "HALO");
    // Rank 1 leaks the section.
  });

  check->analyze();
  bool leaked = false;
  for (const auto& d : check->diagnostics()) {
    if (d.category == Category::SectionMisuse && d.rank == 1 &&
        d.message.find("MPI_Finalize") != std::string::npos) {
      leaked = true;
    }
  }
  EXPECT_TRUE(leaked) << checker::render_text(check->diagnostics());
}

TEST(CheckerSections, WrongExitLabelIsReported) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  auto check = MpiChecker::install(world);

  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    MPIX_Section_enter(world_comm, "COMPUTE");
    if (world_comm.rank() == 1) {
      MPIX_Section_exit(world_comm, "EXCHANGE");  // rejected: not nested
      MPIX_Section_exit(world_comm, "COMPUTE");
    } else {
      MPIX_Section_exit(world_comm, "COMPUTE");
    }
  });

  check->analyze();
  bool misnested = false;
  for (const auto& d : check->diagnostics()) {
    if (d.category == Category::SectionMisuse && d.rank == 1 &&
        d.site == "EXCHANGE" &&
        d.message.find("does not match") != std::string::npos) {
      misnested = true;
    }
  }
  EXPECT_TRUE(misnested) << checker::render_text(check->diagnostics());
}

TEST(CheckerSections, LabelDivergenceAcrossRanksIsReported) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  auto check = MpiChecker::install(world);

  // Balanced on every rank — the runtime itself is happy — but the ranks
  // disagree on what the section is called.
  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    const char* label = world_comm.rank() == 0 ? "SOLVE" : "IO";
    MPIX_Section_enter(world_comm, label);
    MPIX_Section_exit(world_comm, label);
  });

  check->analyze();
  bool diverged = false;
  for (const auto& d : check->diagnostics()) {
    if (d.category == Category::SectionMisuse && d.rank == 1 &&
        d.message.find("SOLVE") != std::string::npos &&
        d.message.find("IO") != std::string::npos) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged) << checker::render_text(check->diagnostics());
}

TEST(CheckerSections, BalancedNestedSectionsAreClean) {
  World world(4, ideal_options());
  sections::SectionRuntime::install(world);
  auto check = MpiChecker::install(world);

  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    for (int step = 0; step < 3; ++step) {
      MPIX_Section_enter(world_comm, "STEP");
      MPIX_Section_enter(world_comm, "INNER");
      MPIX_Section_exit(world_comm, "INNER");
      MPIX_Section_exit(world_comm, "STEP");
    }
  });

  check->analyze();
  EXPECT_EQ(check->sink().count(), 0u)
      << checker::render_text(check->diagnostics());
}

TEST(CheckerSections, ChainsUnderneathTheProfiler) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  // Stack order: profiler first, checker on top — the checker must forward
  // every event so the profiler still sees the sections.
  profiler::SectionProfiler prof(world, {});
  auto check = MpiChecker::install(world);

  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    MPIX_Section_enter(world_comm, "WORK");
    ctx.compute_exact(0.25);
    MPIX_Section_exit(world_comm, "WORK");
  });

  check->analyze();
  EXPECT_EQ(check->sink().count(), 0u)
      << checker::render_text(check->diagnostics());

  // The profiler, reached only through the checker's chained hooks, still
  // observed the WORK section on both ranks.
  const auto totals = prof.totals_for("WORK");
  EXPECT_EQ(totals.ranks_seen, 2);
  EXPECT_EQ(totals.instances, 1);
  EXPECT_GT(totals.total_time, 0.0);
}

}  // namespace
