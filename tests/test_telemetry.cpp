// Telemetry subsystem: registry scopes, interval-sampler window splitting,
// cross-backend byte determinism, the zero-perturbation contract, replay
// re-binning, Eq. 6 attribution convergence, and exporter round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"
#include "profiler/section_profiler.hpp"
#include "support/log.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/timeline.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

using namespace mpisect;
using sections::MPIX_Section_enter;
using sections::MPIX_Section_exit;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::ExecBackend;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;
using telemetry::Registry;
using telemetry::SamplerOptions;
using telemetry::Scope;
using telemetry::TelemetrySampler;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

// ---------------------------------------------------------------------------
// Registry

TEST(TelemetryRegistry, RankScopeScalarsAndTotals) {
  Registry reg(2);
  const auto msgs = reg.add_counter("mpi.msgs_sent", Scope::Rank, "msgs");
  const auto depth = reg.add_gauge("queue.depth", Scope::Rank, "depth");
  reg.inc(msgs, 0);
  reg.inc(msgs, 0, 2.0);
  reg.inc(msgs, 1, 0.5);
  reg.set(depth, 1, 7.0);
  EXPECT_DOUBLE_EQ(reg.value(msgs, 0), 3.0);
  EXPECT_DOUBLE_EQ(reg.value(msgs, 1), 0.5);
  EXPECT_DOUBLE_EQ(reg.total(msgs), 3.5);
  EXPECT_DOUBLE_EQ(reg.value(depth, 1), 7.0);
  ASSERT_TRUE(reg.find("mpi.msgs_sent").has_value());
  EXPECT_EQ(*reg.find("mpi.msgs_sent"), msgs);
  EXPECT_FALSE(reg.find("nope").has_value());
}

TEST(TelemetryRegistry, ProcessScopeAndDistributions) {
  Registry reg(4);
  const auto p = reg.add_counter("sched.events", Scope::Process, "events");
  reg.inc(p, -1);
  reg.inc(p, -1, 4.0);
  EXPECT_DOUBLE_EQ(reg.value(p, -1), 5.0);
  EXPECT_DOUBLE_EQ(reg.total(p), 5.0);

  const auto d = reg.add_distribution("q.depth", Scope::Process, 0.0, 16.0, 4,
                                      "depth");
  reg.observe(d, -1, 1.0);
  reg.observe(d, -1, 9.0);
  const auto* hist = reg.histogram(d, -1);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 2u);
  EXPECT_EQ(reg.histogram(p, -1), nullptr);  // scalars have no histogram
}

TEST(TelemetryRegistry, RankScalarSnapshotOrderIsRegistrationOrder) {
  Registry reg(1);
  const auto a = reg.add_counter("a", Scope::Rank, "");
  reg.add_counter("proc", Scope::Process, "");  // not a rank scalar
  const auto b = reg.add_gauge("b", Scope::Rank, "");
  ASSERT_EQ(reg.rank_scalars().size(), 2u);
  EXPECT_EQ(reg.rank_scalars()[0], a);
  EXPECT_EQ(reg.rank_scalars()[1], b);
  reg.inc(a, 0, 2.0);
  reg.set(b, 0, 9.0);
  std::vector<double> snap;
  reg.snapshot_rank(0, snap);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0], 2.0);
  EXPECT_DOUBLE_EQ(snap[1], 9.0);
}

// ---------------------------------------------------------------------------
// Sampler window splitting

TEST(TelemetrySampler, SplitsComputeAcrossWindowBoundaries) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  SamplerOptions sopts;
  sopts.dt = 1.0;
  auto sampler = TelemetrySampler::install(world, sopts);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "A");
    ctx.compute_exact(2.5);  // spans windows 0, 1 and half of 2
    MPIX_Section_exit(comm, "A");
    MPIX_Section_enter(comm, "B");
    ctx.compute_exact(0.5);  // the other half of window 2
    MPIX_Section_exit(comm, "B");
  });

  const auto tl = telemetry::build_timeline(*sampler);
  ASSERT_GE(tl.windows.size(), 3u);
  EXPECT_EQ(tl.nranks, 2);

  // busy-per-section map of one window, keyed by name.
  auto busy = [&](std::size_t i) {
    std::map<std::string, double> m;
    for (const auto& s : tl.windows[i].sections) m[s.label] = s.total;
    return m;
  };
  // Windows 0/1: A only, 1.0 s per rank => total 2.0.
  EXPECT_DOUBLE_EQ(busy(0)["A"], 2.0);
  EXPECT_DOUBLE_EQ(busy(1)["A"], 2.0);
  EXPECT_EQ(busy(0).count("B"), 0u);
  // Window 2: the split — half a second of each, per rank.
  EXPECT_DOUBLE_EQ(busy(2)["A"], 1.0);
  EXPECT_DOUBLE_EQ(busy(2)["B"], 1.0);

  // Whole-run totals: exclusive attribution, so A = 2 x 2.5, B = 2 x 0.5.
  std::map<std::string, double> totals;
  for (const auto& st : tl.section_totals) totals[st.label] = st.total;
  EXPECT_DOUBLE_EQ(totals["A"], 5.0);
  EXPECT_DOUBLE_EQ(totals["B"], 1.0);

  // Eq. 6: A dominates (MPI_MAIN is excluded by default).
  EXPECT_EQ(tl.binding, "A");
  ASSERT_TRUE(std::isfinite(tl.bound));
  // Window 0 is perfectly balanced: bound = busy_total / max_per_process.
  EXPECT_DOUBLE_EQ(tl.windows[0].bound, 2.0);
  EXPECT_EQ(tl.windows[0].binding, "A");
}

TEST(TelemetrySampler, NestedSectionsUseExclusiveAttribution) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  SamplerOptions sopts;
  sopts.dt = 10.0;  // one window
  auto sampler = TelemetrySampler::install(world, sopts);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    MPIX_Section_enter(comm, "outer");
    ctx.compute_exact(1.0);
    MPIX_Section_enter(comm, "inner");
    ctx.compute_exact(2.0);
    MPIX_Section_exit(comm, "inner");
    ctx.compute_exact(0.5);
    MPIX_Section_exit(comm, "outer");
  });
  const auto tl = telemetry::build_timeline(*sampler);
  std::map<std::string, double> totals;
  for (const auto& st : tl.section_totals) totals[st.label] = st.total;
  EXPECT_DOUBLE_EQ(totals["outer"], 1.5);  // inner's 2.0 not double-counted
  EXPECT_DOUBLE_EQ(totals["inner"], 2.0);
}

// ---------------------------------------------------------------------------
// Determinism and perturbation

struct ConvRunResult {
  std::vector<double> final_times;
  std::string timeline_csv;
  std::string counters_csv;
  std::string timeline_json;
};

ConvRunResult run_conv_with_sampler(ExecBackend exec, int workers) {
  WorldOptions opts;
  opts.machine = MachineModel::nehalem_cluster();
  opts.seed = 0xBEEF;
  opts.exec = exec;
  opts.workers = workers;
  World world(4, opts);
  sections::SectionRuntime::install(world);
  SamplerOptions sopts;
  sopts.dt = 0.05;
  auto sampler = TelemetrySampler::install(world, sopts);
  apps::conv::ConvolutionConfig cfg;
  cfg.width = 512;
  cfg.height = 256;
  cfg.steps = 6;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  const auto tl = telemetry::build_timeline(*sampler);
  ConvRunResult r;
  r.final_times = world.final_times();
  r.timeline_csv = telemetry::timeline_csv(tl);
  r.counters_csv = telemetry::counters_csv(tl);
  r.timeline_json = telemetry::timeline_json(tl);
  return r;
}

TEST(TelemetryDeterminism, ExportsByteIdenticalAcrossBackendsAndWorkers) {
  const auto coop1 = run_conv_with_sampler(ExecBackend::Cooperative, 1);
  const auto coop4 = run_conv_with_sampler(ExecBackend::Cooperative, 4);
  const auto threads = run_conv_with_sampler(ExecBackend::Threads, 0);

  EXPECT_EQ(coop1.final_times, coop4.final_times);
  EXPECT_EQ(coop1.final_times, threads.final_times);
  EXPECT_EQ(coop1.timeline_csv, coop4.timeline_csv);
  EXPECT_EQ(coop1.timeline_csv, threads.timeline_csv);
  EXPECT_EQ(coop1.counters_csv, coop4.counters_csv);
  EXPECT_EQ(coop1.counters_csv, threads.counters_csv);
  EXPECT_EQ(coop1.timeline_json, coop4.timeline_json);
  EXPECT_EQ(coop1.timeline_json, threads.timeline_json);
}

TEST(TelemetryPerturbation, SamplerLeavesRunBitIdentical) {
  auto run = [](bool with_sampler) {
    WorldOptions opts;
    opts.machine = MachineModel::knl();
    opts.seed = 0x515;
    World world(8, opts);  // lulesh requires a perfect cube
    sections::SectionRuntime::install(world);
    profiler::SectionProfiler prof(world);
    auto rec = trace::TraceRecorder::install(world, {.app = "perturbation"});
    std::shared_ptr<TelemetrySampler> sampler;
    if (with_sampler) sampler = TelemetrySampler::install(world, {});
    apps::lulesh::LuleshConfig cfg;
    cfg.s = 6;
    cfg.steps = 2;
    cfg.omp_threads = 2;
    cfg.full_fidelity = false;
    apps::lulesh::LuleshApp app(cfg);
    world.run(std::ref(app));
    struct Out {
      std::vector<double> final_times;
      std::vector<std::uint8_t> trace_bytes;
      std::map<std::string, double> profile;
    } out;
    out.final_times = world.final_times();
    out.trace_bytes = rec->finish().encode();
    for (const auto& t : prof.totals()) {
      out.profile[t.label] = t.mean_per_process;
    }
    return out;
  };

  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(off.final_times, on.final_times);      // bit-identical times
  EXPECT_EQ(off.trace_bytes, on.trace_bytes);      // identical .mpst bytes
  EXPECT_EQ(off.profile, on.profile);              // identical profiler view
}

// ---------------------------------------------------------------------------
// Replay re-binning

TEST(TelemetryTimeline, ReplayRebinMatchesLiveSampling) {
  const double dt = 0.1;
  WorldOptions opts;
  opts.machine = MachineModel::nehalem_cluster();
  opts.seed = 0xABC;
  World world(4, opts);
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "rebin"});
  SamplerOptions sopts;
  sopts.dt = dt;
  auto sampler = TelemetrySampler::install(world, sopts);
  apps::conv::ConvolutionConfig cfg;
  cfg.width = 512;
  cfg.height = 256;
  cfg.steps = 5;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));

  const auto live = telemetry::build_timeline(*sampler);

  trace::ReplayOptions ropts;
  ropts.timeline = true;
  const auto res = trace::replay(rec->finish(), opts.machine, ropts);
  const auto rebinned = telemetry::timeline_from_replay(res, dt);

  EXPECT_EQ(rebinned.nranks, live.nranks);
  EXPECT_EQ(rebinned.binding, live.binding);
  // Per-section whole-run busy totals line up. Compute-bounded spans are
  // anchored by recorded gaps and reproduce exactly; spans bordered by
  // collective interiors shift by the replay engine's sync approximation
  // (endpoint-exact, interior-approximate), hence the loose tolerance.
  std::map<std::string, double> live_totals, rebin_totals;
  for (const auto& st : live.section_totals) live_totals[st.label] = st.total;
  for (const auto& st : rebinned.section_totals) {
    rebin_totals[st.label] = st.total;
  }
  for (const auto& [label, total] : live_totals) {
    ASSERT_TRUE(rebin_totals.count(label)) << label;
    EXPECT_NEAR(rebin_totals[label], total, 1e-6 + total * 0.25) << label;
  }
  // The dominant compute section must agree to fp precision.
  EXPECT_NEAR(rebin_totals["CONVOLVE"], live_totals["CONVOLVE"],
              1e-9 + live_totals["CONVOLVE"] * 1e-12);
}

// ---------------------------------------------------------------------------
// Eq. 6 attribution on the paper's Lulesh/KNL configuration

TEST(TelemetryTimeline, LuleshKnlAttributionConvergesToLagrangeSections) {
  WorldOptions opts;
  opts.machine = MachineModel::knl();
  opts.seed = 0x10113;
  World world(8, opts);
  sections::SectionRuntime::install(world);
  SamplerOptions sopts;
  sopts.dt = 0.05;
  // Depth-2 rollup = the paper's phase view: MPI_MAIN (0) >
  // LagrangeLeapFrog (1) > LagrangeNodal / LagrangeElements (2).
  sopts.phase_depth = 2;
  auto sampler = TelemetrySampler::install(world, sopts);
  apps::lulesh::LuleshConfig cfg;
  cfg.s = 8;
  cfg.steps = 3;
  cfg.omp_threads = 2;
  cfg.full_fidelity = false;
  apps::lulesh::LuleshApp app(cfg);
  world.run(std::ref(app));

  const auto tl = telemetry::build_timeline(*sampler);
  ASSERT_FALSE(tl.windows.empty());
  // The paper's bounding sections (Fig. 10 analysis): one of the two
  // Lagrange phases must carry the Eq. 6 attribution.
  EXPECT_TRUE(tl.binding == "LagrangeNodal" ||
              tl.binding == "LagrangeElements")
      << "binding = " << tl.binding;
  EXPECT_TRUE(std::isfinite(tl.bound));
  EXPECT_GE(tl.bound, 1.0);
  // The binding section is the per-process argmax among the sampled
  // sections (excluding MPI_MAIN) — Eq. 6's argmax definition.
  std::string argmax;
  double best = -1.0;
  for (const auto& st : tl.section_totals) {
    if (st.label == "MPI_MAIN") continue;
    if (st.per_process > best) {
      best = st.per_process;
      argmax = st.label;
    }
  }
  EXPECT_EQ(tl.binding, argmax);
}

// ---------------------------------------------------------------------------
// Exporters

class ExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_.emplace(2, ideal_options());
    sections::SectionRuntime::install(*world_);
    SamplerOptions sopts;
    sopts.dt = 0.5;
    sampler_ = TelemetrySampler::install(*world_, sopts);
    world_->run([](Ctx& ctx) {
      Comm comm = ctx.world_comm();
      MPIX_Section_enter(comm, "PHASE");
      ctx.compute_exact(1.25);
      MPIX_Section_exit(comm, "PHASE");
      comm.barrier();
    });
    tl_ = telemetry::build_timeline(*sampler_);
  }
  // Declared before sampler_: ~TelemetrySampler restores the world's hook
  // tables, so the world must outlive it.
  std::optional<World> world_;
  std::shared_ptr<TelemetrySampler> sampler_;
  telemetry::Timeline tl_;
};

TEST_F(ExporterTest, CsvRoundTripsThroughParser) {
  const std::string csv = telemetry::timeline_csv(tl_);
  EXPECT_EQ(csv.rfind("# mpisect", 0), 0u);  // provenance comment leads
  const auto back = telemetry::timeline_from_csv(csv);
  EXPECT_EQ(back.nranks, tl_.nranks);
  EXPECT_DOUBLE_EQ(back.dt, tl_.dt);
  ASSERT_EQ(back.windows.size(), tl_.windows.size());
  EXPECT_EQ(back.binding, tl_.binding);
  for (std::size_t i = 0; i < tl_.windows.size(); ++i) {
    ASSERT_EQ(back.windows[i].sections.size(),
              tl_.windows[i].sections.size());
    EXPECT_DOUBLE_EQ(back.windows[i].sections[0].total,
                     tl_.windows[i].sections[0].total);
  }
}

TEST_F(ExporterTest, CsvParserRejectsGarbage) {
  EXPECT_THROW(telemetry::timeline_from_csv("not,a,timeline\n1,2,3\n"),
               std::runtime_error);
}

TEST_F(ExporterTest, JsonAndChromeAndPrometheusCarryTheSeries) {
  const std::string json = telemetry::timeline_json(tl_);
  EXPECT_NE(json.find("\"provenance\""), std::string::npos);
  EXPECT_NE(json.find("\"PHASE\""), std::string::npos);
  EXPECT_NE(json.find("\"windows\""), std::string::npos);

  const std::string chrome = telemetry::chrome_counters(tl_);
  EXPECT_EQ(chrome.rfind("{\"traceEvents\"", 0), 0u);
  EXPECT_NE(chrome.find("\"ph\""), std::string::npos);
  EXPECT_NE(chrome.find("section PHASE"), std::string::npos);

  const std::string prom = telemetry::prometheus_text(sampler_->registry());
  EXPECT_NE(prom.find("# HELP mpisect_mpi_msgs_sent"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE mpisect_mpi_msgs_sent counter"),
            std::string::npos);
  EXPECT_NE(prom.find("{rank=\"0\"}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MPISECT_LOG parsing (satellite c)

TEST(LogEnv, ParseLogLevelAcceptsAliases) {
  using support::LogLevel;
  EXPECT_EQ(support::parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(support::parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(support::parse_log_level(" info "), LogLevel::Info);
  EXPECT_EQ(support::parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(support::parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(support::parse_log_level("none"), LogLevel::Off);
  EXPECT_EQ(support::parse_log_level("bogus"), std::nullopt);
}

}  // namespace
