// C ABI of the section interface (include/mpix_section.h): the extern "C"
// entry points round-trip through a real world, the callback pair fires
// with its persistent 32-byte payload, error codes match the C++ enum, and
// the header itself compiles under a plain C compiler (capi_c_smoke.c, a
// C11 translation unit linked into this binary).
#include <gtest/gtest.h>

#include <string>

#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"
#include "mpix_section.h"

extern "C" {
int mpix_c_smoke_register(MPIX_Comm comm);
int mpix_c_smoke_roundtrip(MPIX_Comm comm, const char* label);
int mpix_c_smoke_enter_count(void);
int mpix_c_smoke_exit_count(void);
int mpix_c_smoke_null_comm(void);
}

namespace {

using namespace mpisect;

TEST(SectionCApi, ErrorCodesMatchTheCxxEnum) {
  EXPECT_EQ(MPIX_SECTION_OK, sections::kSectionOk);
  EXPECT_EQ(MPIX_SECTION_ERR_NO_RUNTIME, sections::kSectionErrNoRuntime);
  EXPECT_EQ(MPIX_SECTION_ERR_BAD_LABEL, sections::kSectionErrBadLabel);
  EXPECT_EQ(MPIX_SECTION_ERR_NOT_NESTED, sections::kSectionErrNotNested);
  EXPECT_EQ(MPIX_SECTION_ERR_EMPTY_STACK, sections::kSectionErrEmptyStack);
  EXPECT_EQ(MPIX_SECTION_ERR_MISMATCH, sections::kSectionErrMismatch);
  EXPECT_EQ(MPIX_SECTION_ERR_COMM, sections::kSectionErrComm);
  EXPECT_EQ(MPIX_SECTION_ERR_LEAKED, sections::kSectionErrLeaked);
  EXPECT_EQ(MPIX_SECTION_DATA_BYTES,
            static_cast<int>(mpisim::kSectionDataBytes));
}

TEST(SectionCApi, NullCommIsRejectedFromPlainC) {
  EXPECT_EQ(mpix_c_smoke_null_comm(), 0);
}

TEST(SectionCApi, EnterExitRoundTripsThroughTheCAbi) {
  mpisim::World world(2, {});
  sections::SectionRuntime::install(world);
  world.run([](mpisim::Ctx& ctx) {
    mpisim::Comm comm = ctx.world_comm();
    const MPIX_Comm h = sections::mpix_handle(comm);
    EXPECT_EQ(mpix_c_smoke_roundtrip(h, "C_PHASE"), MPIX_SECTION_OK);
    // Exit without enter surfaces the C++ error code across the ABI: the
    // runtime's implicit MPI_MAIN root is still open, so this is a
    // nesting mismatch rather than an empty stack.
    EXPECT_EQ(MPIX_Section_exit(h, "C_PHASE"),
              MPIX_SECTION_ERR_NOT_NESTED);
    EXPECT_EQ(MPIX_Section_enter(h, ""), MPIX_SECTION_ERR_BAD_LABEL);
  });
}

TEST(SectionCApi, CallbackPairFiresWithPersistentPayload) {
  mpisim::World world(1, {});
  sections::SectionRuntime::install(world);
  world.run([](mpisim::Ctx& ctx) {
    mpisim::Comm comm = ctx.world_comm();
    const MPIX_Comm h = sections::mpix_handle(comm);
    ASSERT_EQ(mpix_c_smoke_register(h), MPIX_SECTION_OK);
    ASSERT_EQ(mpix_c_smoke_roundtrip(h, "CB"), MPIX_SECTION_OK);
    ASSERT_EQ(mpix_c_smoke_roundtrip(h, "CB"), MPIX_SECTION_OK);
    // Unregister: later sections must not fire the C callbacks.
    ASSERT_EQ(MPIX_Section_set_callbacks(h, nullptr, nullptr),
              MPIX_SECTION_OK);
    ASSERT_EQ(mpix_c_smoke_roundtrip(h, "CB"), MPIX_SECTION_OK);
  });
  EXPECT_EQ(mpix_c_smoke_enter_count(), 2);
  EXPECT_EQ(mpix_c_smoke_exit_count(), 2);  // -1000 if the payload was lost
}

}  // namespace
