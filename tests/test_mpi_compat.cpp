// The C-style MPI facade: textbook signatures, status handling, error
// codes, MPI_PROC_NULL, and the paper's MPIX_Section calls spelled as in
// Figure 1.
#include <gtest/gtest.h>

#include <vector>

#include "core/compat/mpi_compat.hpp"
#include "core/sections/runtime.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::mpix;
using mpisim::Ctx;

mpisim::WorldOptions ideal_options() {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::ideal();
  return opts;
}

TEST(Compat, RankSizeWtime) {
  mpisim::World world(3, ideal_options());
  world.run([](Ctx& ctx) {
    MPI_Comm comm = ctx.world_comm();
    int rank = -1;
    int size = -1;
    EXPECT_EQ(MPI_Comm_rank(comm, &rank), MPI_SUCCESS);
    EXPECT_EQ(MPI_Comm_size(comm, &size), MPI_SUCCESS);
    EXPECT_EQ(rank, ctx.rank());
    EXPECT_EQ(size, 3);
    EXPECT_GE(MPI_Wtime(comm), 0.0);
  });
}

TEST(Compat, SendRecvWithStatusAndGetCount) {
  mpisim::World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    MPI_Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      const double payload[3] = {1.0, 2.0, 3.0};
      EXPECT_EQ(MPI_Send(payload, 3, MPI_DOUBLE, 1, 5, comm), MPI_SUCCESS);
    } else {
      double payload[8] = {};
      MPI_Status status;
      EXPECT_EQ(MPI_Recv(payload, 8, MPI_DOUBLE, MPI_ANY_SOURCE, MPI_ANY_TAG,
                         comm, &status),
                MPI_SUCCESS);
      EXPECT_EQ(status.MPI_SOURCE, 0);
      EXPECT_EQ(status.MPI_TAG, 5);
      int count = -1;
      EXPECT_EQ(MPI_Get_count(&status, MPI_DOUBLE, &count), MPI_SUCCESS);
      EXPECT_EQ(count, 3);
      EXPECT_DOUBLE_EQ(payload[2], 3.0);
    }
  });
}

TEST(Compat, ProcNullIsNoop) {
  mpisim::World world(1, ideal_options());
  world.run([](Ctx& ctx) {
    MPI_Comm comm = ctx.world_comm();
    const int v = 7;
    EXPECT_EQ(MPI_Send(&v, 1, MPI_INT, MPI_PROC_NULL, 0, comm), MPI_SUCCESS);
    int r = -1;
    MPI_Status st;
    EXPECT_EQ(MPI_Recv(&r, 1, MPI_INT, MPI_PROC_NULL, 0, comm, &st),
              MPI_SUCCESS);
    EXPECT_EQ(r, -1);  // untouched
    EXPECT_EQ(st.MPI_SOURCE, MPI_PROC_NULL);
  });
}

TEST(Compat, ErrorsReturnCodesInsteadOfThrowing) {
  mpisim::World world(1, ideal_options());
  world.run([](Ctx& ctx) {
    MPI_Comm comm = ctx.world_comm();
    const int v = 1;
    // Invalid destination: MPI_ERR_RANK-equivalent code, no exception.
    EXPECT_NE(MPI_Send(&v, 1, MPI_INT, 99, 0, comm), MPI_SUCCESS);
    EXPECT_NE(MPI_Comm_rank(comm, nullptr), MPI_SUCCESS);
  });
}

TEST(Compat, NonblockingAndWaitall) {
  mpisim::World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    MPI_Comm comm = ctx.world_comm();
    const int peer = 1 - ctx.rank();
    int out[2] = {ctx.rank() * 2, ctx.rank() * 2 + 1};
    int in[2] = {-1, -1};
    MPI_Request reqs[4];
    ASSERT_EQ(MPI_Irecv(&in[0], 1, MPI_INT, peer, 0, comm, &reqs[0]),
              MPI_SUCCESS);
    ASSERT_EQ(MPI_Irecv(&in[1], 1, MPI_INT, peer, 1, comm, &reqs[1]),
              MPI_SUCCESS);
    ASSERT_EQ(MPI_Isend(&out[0], 1, MPI_INT, peer, 0, comm, &reqs[2]),
              MPI_SUCCESS);
    ASSERT_EQ(MPI_Isend(&out[1], 1, MPI_INT, peer, 1, comm, &reqs[3]),
              MPI_SUCCESS);
    MPI_Status statuses[4];
    ASSERT_EQ(MPI_Waitall(4, reqs, statuses), MPI_SUCCESS);
    EXPECT_EQ(in[0], peer * 2);
    EXPECT_EQ(in[1], peer * 2 + 1);
    EXPECT_EQ(statuses[0].MPI_SOURCE, peer);
  });
}

TEST(Compat, CollectivesAndSplit) {
  mpisim::World world(4, ideal_options());
  world.run([](Ctx& ctx) {
    MPI_Comm comm = ctx.world_comm();
    double v = ctx.rank() + 1.0;
    double sum = 0.0;
    EXPECT_EQ(MPI_Allreduce(&v, &sum, 1, MPI_DOUBLE, MPI_SUM, comm),
              MPI_SUCCESS);
    EXPECT_DOUBLE_EQ(sum, 10.0);

    int data[4] = {};
    if (ctx.rank() == 0) {
      for (int i = 0; i < 4; ++i) data[i] = i * 11;
    }
    int mine = -1;
    EXPECT_EQ(MPI_Scatter(data, 1, MPI_INT, &mine, 1, MPI_INT, 0, comm),
              MPI_SUCCESS);
    EXPECT_EQ(mine, ctx.rank() * 11);

    int gathered[4] = {};
    EXPECT_EQ(MPI_Gather(&mine, 1, MPI_INT,
                         ctx.rank() == 0 ? gathered : nullptr, 1, MPI_INT, 0,
                         comm),
              MPI_SUCCESS);
    if (ctx.rank() == 0) {
      EXPECT_EQ(gathered[3], 33);
    }

    MPI_Comm half;
    EXPECT_EQ(MPI_Comm_split(comm, ctx.rank() % 2, ctx.rank(), &half),
              MPI_SUCCESS);
    int hsize = 0;
    MPI_Comm_size(half, &hsize);
    EXPECT_EQ(hsize, 2);
    EXPECT_EQ(MPI_Barrier(half), MPI_SUCCESS);
  });
}

TEST(Compat, MismatchedExtentsRejected) {
  mpisim::World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    MPI_Comm comm = ctx.world_comm();
    int send[3] = {};
    double recv[1] = {};
    // 3 ints (12 B) != 1 double (8 B) per rank: extents differ.
    EXPECT_NE(MPI_Scatter(send, 3, MPI_INT, recv, 1, MPI_DOUBLE, 0, comm),
              MPI_SUCCESS);
    // Matching extents (1 double == 2 ints in bytes) are fine, even with
    // mixed nominal datatypes.
    EXPECT_EQ(MPI_Allgather(send, 2, MPI_INT, nullptr, 1, MPI_DOUBLE, comm),
              MPI_SUCCESS);
  });
}

TEST(Compat, PaperFigureOneTranscription) {
  // The paper's Figure 1 usage, almost verbatim.
  mpisim::World world(4, ideal_options());
  auto rt = sections::SectionRuntime::install(world);
  world.run([](Ctx& ctx) {
    MPI_Comm comm = ctx.world_comm();
    EXPECT_EQ(MPIX_Section_enter(comm, "HALO"), MPI_SUCCESS);
    MPI_Barrier(comm);
    EXPECT_EQ(MPIX_Section_exit(comm, "HALO"), MPI_SUCCESS);
  });
  EXPECT_EQ(rt->counters().errors, 0u);
}

TEST(Compat, PcontrolRoutedToHook) {
  mpisim::World world(1, ideal_options());
  int calls = 0;
  world.hooks().on_pcontrol = [&](Ctx&, int, const char*) { ++calls; };
  world.run([](Ctx& ctx) {
    MPI_Comm comm = ctx.world_comm();
    MPI_Pcontrol(comm, 1, "phase");
    MPI_Pcontrol(comm, -1, "phase");
  });
  EXPECT_EQ(calls, 2);
}

}  // namespace
