// Unit tests for support/stats: Welford accumulator, batch statistics,
// linear fits.
#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace mpisect::support;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; unbiased sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.37) * 10.0 + i * 0.01;
    ((i % 2 == 0) ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, CoefficientOfVariation) {
  RunningStats s;
  s.add(9.0);
  s.add(11.0);
  EXPECT_NEAR(s.cv(), std::sqrt(2.0) / 10.0, 1e-12);
  RunningStats zero_mean;
  zero_mean.add(-1.0);
  zero_mean.add(1.0);
  EXPECT_DOUBLE_EQ(zero_mean.cv(), 0.0);
}

TEST(BatchStats, MeanVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(BatchStats, EmptyInputs) {
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(mean(none), 0.0);
  EXPECT_DOUBLE_EQ(variance(none), 0.0);
  EXPECT_DOUBLE_EQ(percentile(none, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ci95_halfwidth(none), 0.0);
  EXPECT_DOUBLE_EQ(mad(none), 0.0);
}

TEST(BatchStats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  // Quantile clamped outside [0,1].
  EXPECT_DOUBLE_EQ(percentile(xs, -3.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 7.0), 40.0);
}

TEST(BatchStats, PercentileUnsortedInput) {
  const std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(BatchStats, MedianAbsoluteDeviation) {
  const std::vector<double> xs{1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0};
  // median = 2, |x - 2| = {1,1,0,0,2,4,7}, median of that = 1.
  EXPECT_DOUBLE_EQ(mad(xs), 1.0);
}

TEST(LinearFitTest, PerfectLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const LinearFit f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 3.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, DegenerateInputs) {
  const std::vector<double> one{1.0};
  EXPECT_DOUBLE_EQ(fit_line(one, one).slope, 0.0);
  const std::vector<double> x{2.0, 2.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(fit_line(x, y).slope, 0.0);  // vertical data: no fit
}

class Ci95Test : public ::testing::TestWithParam<int> {};

TEST_P(Ci95Test, ShrinksWithSampleCount) {
  const int n = GetParam();
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) xs.push_back((i % 7) * 1.0);
  std::vector<double> xs4 = xs;
  for (int r = 0; r < 3; ++r) {
    for (int i = 0; i < n; ++i) xs4.push_back((i % 7) * 1.0);
  }
  EXPECT_GT(ci95_halfwidth(xs), ci95_halfwidth(xs4));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Ci95Test, ::testing::Values(8, 16, 64, 256));

}  // namespace
