// Replay-engine coverage: same-model replays are bit-identical to the
// recording (final times, section totals, Fig. 3 metrics), cross-preset
// replays predict a direct run within 5%, what-if knobs move results the
// right way, and inconsistent traces fail loudly instead of hanging.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"
#include "profiler/section_profiler.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

using namespace mpisect;

mpisim::WorldOptions options_for(const mpisim::MachineModel& m,
                                 std::uint64_t seed = 0x5EED) {
  mpisim::WorldOptions opts;
  opts.machine = m;
  opts.seed = seed;
  return opts;
}

void run_convolution(mpisim::World& world, int steps) {
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
}

trace::TraceFile record_convolution(const mpisim::MachineModel& m, int ranks,
                                    int steps) {
  mpisim::World world(ranks, options_for(m));
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "convolution"});
  run_convolution(world, steps);
  return rec->finish();
}

/// Sum a label's inclusive time over all ranks, straight from the recorded
/// footer (i.e. as measured during the original run).
double footer_total(const trace::TraceFile& tf, const std::string& label) {
  double total = 0.0;
  for (std::size_t id = 0; id < tf.labels.size(); ++id) {
    if (tf.labels[id] != label) continue;
    for (const auto& rs : tf.ranks) {
      for (const auto& t : rs.totals) {
        if (t.label == id) total += t.inclusive;
      }
    }
  }
  return total;
}

double replayed_total(const trace::ReplayResult& res,
                      const std::string& label) {
  double total = 0.0;
  for (const auto& s : res.sections) {
    if (s.label == label) total += s.total_inclusive;
  }
  return total;
}

// A deliberately messy SPMD body touching every traced construct: compute
// gaps, isend/irecv/wait, eager and rendezvous sends, probe, sendrecv,
// collectives, split + dup subcommunicators, nested sections, pcontrol.
void kitchen_sink(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  const int r = world.rank();
  const int n = world.size();
  sections::MPIX_Section_enter(world, "PHASE");
  ctx.compute(1e-4 * (r + 1));

  std::vector<char> out(2048, static_cast<char>(r));
  std::vector<char> in(2048);
  auto sreq = world.isend(out.data(), out.size(), (r + 1) % n, 7);
  auto rreq = world.irecv(in.data(), in.size(), (r + n - 1) % n, 7);
  (void)rreq.wait();
  (void)sreq.wait();

  // Rendezvous-sized pairwise exchange with a probe on the receiver.
  std::vector<char> big(64 * 1024, static_cast<char>(r));
  if (r % 2 == 0) {
    world.send(big.data(), big.size(), r + 1, 9);
  } else {
    const mpisim::Status st = world.probe(r - 1, 9);
    std::vector<char> rbuf(st.bytes);
    (void)world.recv(rbuf.data(), rbuf.size(), r - 1, 9);
  }
  ctx.compute(3e-5);

  char a = static_cast<char>(r);
  char b = 0;
  (void)world.sendrecv(&a, 1, (r + 1) % n, 11, &b, 1, (r + n - 1) % n, 11);

  const double sum = world.allreduce_one(static_cast<double>(r),
                                         mpisim::ReduceOp::Sum);
  ctx.compute(sum * 1e-7);
  world.barrier();
  char payload[16] = {};
  world.bcast(payload, sizeof payload, 0);

  mpisim::Comm half = world.split(r % 2, r);
  sections::MPIX_Section_enter(half, "HALF");
  half.barrier();
  sections::MPIX_Section_exit(half, "HALF");
  mpisim::Comm copy = half.dup();
  copy.barrier();
  copy.free();
  half.free();

  ctx.pcontrol(1, "tail");
  ctx.compute(5e-5);
  ctx.pcontrol(-1, "tail");
  sections::MPIX_Section_exit(world, "PHASE");
}

TEST(TraceReplay, SameModelConvolutionVerifiesExactly) {
  const trace::TraceFile tf =
      record_convolution(mpisim::MachineModel::nehalem_cluster(), 8, 12);
  const trace::VerifyResult v = trace::verify_roundtrip(tf);
  EXPECT_TRUE(v.ok) << v.detail;
}

TEST(TraceReplay, SameModelKitchenSinkVerifiesExactly) {
  mpisim::World world(6,
                      options_for(mpisim::MachineModel::nehalem_cluster()));
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "kitchen-sink"});
  world.run(kitchen_sink);
  const trace::TraceFile tf = rec->finish();
  const trace::VerifyResult v = trace::verify_roundtrip(tf);
  EXPECT_TRUE(v.ok) << v.detail;

  // Encode -> decode -> replay must agree too (wire format preserves the
  // replay inputs exactly).
  const trace::TraceFile back = trace::TraceFile::decode(tf.encode());
  const trace::VerifyResult v2 = trace::verify_roundtrip(back);
  EXPECT_TRUE(v2.ok) << v2.detail;
}

TEST(TraceReplay, SameModelReproducesFig3MetricsBitwise) {
  mpisim::World world(8,
                      options_for(mpisim::MachineModel::nehalem_cluster()));
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world, {.keep_instances = true});
  auto rec = trace::TraceRecorder::install(world, {.app = "convolution"});
  run_convolution(world, 10);

  const trace::TraceFile tf = rec->finish();
  const trace::ReplayResult res =
      trace::replay(tf, tf.header.machine, {.collect_metrics = true});

  int compared = 0;
  for (const auto& s : res.sections) {
    const sections::AggregatedMetrics want =
        prof.aggregated_metrics(s.comm, s.label);
    if (want.instances == 0) continue;
    ++compared;
    EXPECT_EQ(s.agg.instances, want.instances) << s.label;
    EXPECT_EQ(s.agg.total_span, want.total_span) << s.label;
    EXPECT_EQ(s.agg.total_section_mean, want.total_section_mean) << s.label;
    EXPECT_EQ(s.agg.total_imbalance, want.total_imbalance) << s.label;
    EXPECT_EQ(s.agg.max_entry_imb, want.max_entry_imb) << s.label;
    EXPECT_EQ(s.agg.mean_entry_imb, want.mean_entry_imb) << s.label;
  }
  EXPECT_GE(compared, 4);  // LOAD/HALO/CONVOLVE/STORE at least
}

// The predictive acceptance criterion: record on Nehalem, replay on the KNL
// preset with the automatic compute rescale, and land within 5% of what a
// direct KNL run of the app measures for the step-phase sections.
//
// The two machines' compute-noise sigmas are equalized first: recorded
// compute gaps have the recording machine's multiplicative noise baked in,
// and no replay can un-draw it (wait-dominated sections like HALO expose
// exactly the sigma ratio otherwise). Network latency/bandwidth/jitter and
// compute rate DO differ between the presets — that is what the what-if
// re-models.
TEST(TraceReplay, CrossPresetPredictsDirectRunWithin5Percent) {
  const mpisim::MachineModel nehalem = mpisim::MachineModel::nehalem_cluster();
  mpisim::MachineModel knl = mpisim::MachineModel::knl();
  knl.compute_noise_sigma = nehalem.compute_noise_sigma;
  const int ranks = 8;
  const int steps = 30;

  const trace::TraceFile recorded = record_convolution(nehalem, ranks, steps);
  const trace::TraceFile direct = record_convolution(knl, ranks, steps);

  trace::ReplayOptions opts;
  opts.compute_scale = nehalem.flops_per_core / knl.flops_per_core;
  const trace::ReplayResult predicted = trace::replay(recorded, knl, opts);

  // LOAD/STORE model sequential I/O whose cost is not compute-rate bound,
  // so the flops rescale does not apply to them; the step-phase sections
  // (the ones the paper's bounds build on) and the walltime must transfer.
  for (const std::string label : {"CONVOLVE", "HALO", "MPI_MAIN"}) {
    const double want = footer_total(direct, label);
    const double got = replayed_total(predicted, label);
    ASSERT_GT(want, 0.0) << label;
    EXPECT_NEAR(got / want, 1.0, 0.05)
        << label << ": predicted " << got << " direct " << want;
  }
}

// With the true (unequalized) presets the noise-sigma mismatch perturbs
// wait sections, but the aggregate walltime must still predict closely —
// zero-mean noise washes out of gap sums.
TEST(TraceReplay, CrossPresetWalltimeSurvivesNoiseSigmaMismatch) {
  const mpisim::MachineModel nehalem = mpisim::MachineModel::nehalem_cluster();
  const mpisim::MachineModel knl = mpisim::MachineModel::knl();
  const trace::TraceFile recorded = record_convolution(nehalem, 8, 30);
  const trace::TraceFile direct = record_convolution(knl, 8, 30);
  trace::ReplayOptions opts;
  opts.compute_scale = nehalem.flops_per_core / knl.flops_per_core;
  const trace::ReplayResult predicted = trace::replay(recorded, knl, opts);
  const double want = footer_total(direct, "MPI_MAIN");
  const double got = replayed_total(predicted, "MPI_MAIN");
  ASSERT_GT(want, 0.0);
  EXPECT_NEAR(got / want, 1.0, 0.05)
      << "predicted " << got << " direct " << want;
}

TEST(TraceReplay, LatencyIncreaseInflatesHaloAndMakespan) {
  const trace::TraceFile tf =
      record_convolution(mpisim::MachineModel::nehalem_cluster(), 8, 12);
  const trace::ReplayResult base = trace::replay(tf, tf.header.machine, {});
  mpisim::MachineModel slow = tf.header.machine;
  slow.net.intra_node.latency *= 8.0;
  slow.net.inter_node.latency *= 8.0;
  const trace::ReplayResult slowed = trace::replay(tf, slow, {});
  EXPECT_GT(replayed_total(slowed, "HALO"), replayed_total(base, "HALO"));
  EXPECT_GT(slowed.makespan, base.makespan);
}

TEST(TraceReplay, ComputeScaleShrinksComputeSections) {
  const trace::TraceFile tf =
      record_convolution(mpisim::MachineModel::nehalem_cluster(), 8, 12);
  const trace::ReplayResult base = trace::replay(tf, tf.header.machine, {});
  const trace::ReplayResult fast =
      trace::replay(tf, tf.header.machine, {.compute_scale = 0.5});
  const double base_conv = replayed_total(base, "CONVOLVE");
  const double fast_conv = replayed_total(fast, "CONVOLVE");
  EXPECT_LT(fast_conv, base_conv);
  EXPECT_NEAR(fast_conv / base_conv, 0.5, 0.1);
  EXPECT_LT(fast.makespan, base.makespan);
}

TEST(TraceReplay, TimelineIsMergedAndTimeOrdered) {
  const trace::TraceFile tf =
      record_convolution(mpisim::MachineModel::nehalem_cluster(), 4, 6);
  const trace::ReplayResult res =
      trace::replay(tf, tf.header.machine, {.timeline = true});
  ASSERT_FALSE(res.timeline.empty());
  std::map<int, int> depth;
  for (std::size_t i = 1; i < res.timeline.size(); ++i) {
    const auto& prev = res.timeline[i - 1];
    const auto& cur = res.timeline[i];
    EXPECT_TRUE(prev.t < cur.t || (prev.t == cur.t && prev.rank <= cur.rank))
        << "entry " << i << " out of order";
  }
  for (const auto& e : res.timeline) {
    depth[e.rank] += e.enter ? 1 : -1;
    EXPECT_GE(depth[e.rank], 0);
  }
  for (const auto& [rank, d] : depth) EXPECT_EQ(d, 0) << "rank " << rank;
}

TEST(TraceReplay, MissingSendCausesDiagnosedStall) {
  trace::TraceFile tf =
      record_convolution(mpisim::MachineModel::nehalem_cluster(), 4, 4);
  auto& events = tf.ranks[0].events;
  const auto it = std::find_if(events.begin(), events.end(),
                               [](const trace::Event& ev) {
                                 return ev.kind == trace::EventKind::SendPost;
                               });
  ASSERT_NE(it, events.end());
  // Divert the message to a sequence number nobody waits for: the receiver
  // blocks forever and the round-robin scheduler must diagnose the stall
  // (erasing the event instead would trip the backref check first).
  it->seq += 1000000;
  try {
    (void)trace::replay(tf, tf.header.machine, {});
    FAIL() << "replay of an inconsistent trace did not throw";
  } catch (const trace::TraceError& err) {
    EXPECT_NE(std::string(err.what()).find("stall"), std::string::npos)
        << err.what();
  }
}

TEST(TraceReplay, ClockRegressionIsDetected) {
  trace::TraceFile tf =
      record_convolution(mpisim::MachineModel::nehalem_cluster(), 4, 4);
  bool tampered = false;
  for (auto& ev : tf.ranks[2].events) {
    if (ev.has_time && ev.t_before > 0.0 &&
        ev.kind != trace::EventKind::Finalize) {
      ev.t_before = -1.0;
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  EXPECT_THROW((void)trace::replay(tf, tf.header.machine, {}),
               trace::TraceError);
}

TEST(TraceReplay, VerifyDetectsTamperedFooter) {
  trace::TraceFile tf =
      record_convolution(mpisim::MachineModel::nehalem_cluster(), 4, 4);
  ASSERT_FALSE(tf.ranks[1].totals.empty());
  tf.ranks[1].totals[0].inclusive += 1e-9;
  const trace::VerifyResult v = trace::verify_roundtrip(tf);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.detail.find("rank 1"), std::string::npos) << v.detail;
}

TEST(TraceReplay, RankCountMismatchIsRejected) {
  trace::TraceFile tf =
      record_convolution(mpisim::MachineModel::nehalem_cluster(), 4, 4);
  tf.ranks.pop_back();
  EXPECT_THROW((void)trace::replay(tf, tf.header.machine, {}),
               trace::TraceError);
}

}  // namespace
