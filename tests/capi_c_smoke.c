/* Compile-as-C proof for include/mpix_section.h: this translation unit is
 * built by the C compiler (C11, no C++ anywhere) and touches every public
 * name the header exports. mpix_c_smoke() is called from test_capi.cpp. */
#include "mpix_section.h"

static int g_enter_count;
static int g_exit_count;

static void count_enter(MPIX_Comm comm, const char* label, char* data) {
  (void)comm;
  (void)label;
  data[0] = 'C'; /* the 32-byte payload is writable */
  ++g_enter_count;
}

static void count_exit(MPIX_Comm comm, const char* label, char* data) {
  (void)comm;
  (void)label;
  ++g_exit_count;
  if (data[0] != 'C') g_exit_count = -1000; /* payload must persist */
}

/* Register the counting callbacks on the world owning `comm`. */
int mpix_c_smoke_register(MPIX_Comm comm) {
  g_enter_count = 0;
  g_exit_count = 0;
  /* The paper's spelling is an alias of the exit-callback type. */
  MPIX_Section_leave_cb leave = count_exit;
  return MPIX_Section_set_callbacks(comm, count_enter, leave);
}

/* Enter + exit one section through the C ABI. */
int mpix_c_smoke_roundtrip(MPIX_Comm comm, const char* label) {
  int rc = MPIX_Section_enter(comm, label);
  if (rc != MPIX_SECTION_OK) return rc;
  return MPIX_Section_exit(comm, label);
}

int mpix_c_smoke_enter_count(void) { return g_enter_count; }
int mpix_c_smoke_exit_count(void) { return g_exit_count; }

/* Error paths reachable without a runtime. */
int mpix_c_smoke_null_comm(void) {
  if (MPIX_Section_enter(0, "X") != MPIX_SECTION_ERR_COMM) return 1;
  if (MPIX_Section_exit(0, "X") != MPIX_SECTION_ERR_COMM) return 2;
  if (MPIX_Section_set_callbacks(0, 0, 0) != MPIX_SECTION_ERR_COMM) return 3;
  return 0;
}
