// Communicator management: groups, split, dup, context isolation.
#include <gtest/gtest.h>

#include <vector>

#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect::mpisim;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(Group, Mapping) {
  const Group g({5, 2, 9});
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.world_rank(0), 5);
  EXPECT_EQ(g.world_rank(2), 9);
  EXPECT_EQ(g.rank_of_world(2), 1);
  EXPECT_EQ(g.rank_of_world(7), -1);
  EXPECT_THROW((void)g.world_rank(3), MpiError);
}

TEST(CommSplit, EvenOddColors) {
  const int p = 6;
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const int color = ctx.rank() % 2;
    Comm sub = comm.split(color, ctx.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), p / 2);
    EXPECT_EQ(sub.rank(), ctx.rank() / 2);  // order preserved within color
    EXPECT_EQ(sub.world_rank_of(sub.rank()), ctx.rank());
    // The sub-communicator works: reduce within the color group.
    const int sum = sub.allreduce_one(ctx.rank(), ReduceOp::Sum);
    EXPECT_EQ(sum, color == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(CommSplit, KeyReversesOrder) {
  const int p = 4;
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    Comm sub = comm.split(0, -ctx.rank());  // descending keys
    EXPECT_EQ(sub.rank(), p - 1 - ctx.rank());
  });
}

TEST(CommSplit, NegativeColorExcluded) {
  World world(4, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const int color = ctx.rank() == 0 ? -1 : 7;
    Comm sub = comm.split(color, 0);
    if (ctx.rank() == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
    }
  });
}

TEST(CommSplit, ContextIsolation) {
  // A message sent on the parent must not match a receive on the child.
  World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    Comm sub = comm.dup();
    EXPECT_NE(sub.context_id(), comm.context_id());
    if (ctx.rank() == 0) {
      const int a = 1;
      const int b = 2;
      comm.send(&a, sizeof a, 1, 0);  // parent context
      sub.send(&b, sizeof b, 1, 0);   // child context
    } else {
      int v = 0;
      sub.recv(&v, sizeof v, 0, 0);
      EXPECT_EQ(v, 2);  // got the child message even though parent's is queued
      comm.recv(&v, sizeof v, 0, 0);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(CommDup, PreservesRankAndSize) {
  const int p = 5;
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    Comm dup = comm.dup();
    EXPECT_EQ(dup.rank(), comm.rank());
    EXPECT_EQ(dup.size(), p);
    const int sum = dup.allreduce_one(1, ReduceOp::Sum);
    EXPECT_EQ(sum, p);
  });
}

TEST(CommSplit, NestedSplits) {
  const int p = 8;
  World world(p, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    Comm half = comm.split(ctx.rank() / 4, ctx.rank());  // two halves of 4
    Comm quarter = half.split(half.rank() / 2, half.rank());  // pairs
    EXPECT_EQ(quarter.size(), 2);
    const int peer_world =
        quarter.world_rank_of(1 - quarter.rank());
    // Pairs are adjacent world ranks: {0,1},{2,3},...
    EXPECT_EQ(peer_world / 2, ctx.rank() / 2);
  });
}

TEST(CommSplit, RepeatedSplitsDoNotInterfere) {
  World world(4, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    for (int round = 0; round < 5; ++round) {
      Comm sub = comm.split(ctx.rank() % 2, ctx.rank());
      const int sum = sub.allreduce_one(1, ReduceOp::Sum);
      EXPECT_EQ(sum, 2);
    }
  });
}

TEST(CommSplit, SynchronizesTime) {
  World world(3, ideal_options());
  std::vector<double> t(3);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    ctx.compute_exact(ctx.rank() == 1 ? 4.0 : 0.0);
    Comm sub = comm.split(0, ctx.rank());
    (void)sub;
    t[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  for (const double x : t) EXPECT_GE(x, 4.0);
}

TEST(CollSyncU64, ExchangesValues) {
  const int p = 4;
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    auto [values, t_max] =
        comm.collsync_u64(static_cast<std::uint64_t>(ctx.rank()) * 11);
    (void)t_max;
    ASSERT_EQ(values.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(values[static_cast<std::size_t>(r)],
                static_cast<std::uint64_t>(r) * 11);
    }
  });
}

}  // namespace
