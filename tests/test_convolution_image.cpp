// Image container, PPM codec, stencil kernels and row decomposition.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/convolution/decomp.hpp"
#include "apps/convolution/image.hpp"
#include "apps/convolution/stencil.hpp"
#include "mpisim/error.hpp"

namespace {

using namespace mpisect::apps::conv;

TEST(ImageTest, DimensionsAndIndexing) {
  Image img(4, 3);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.pixel_count(), 12u);
  EXPECT_EQ(img.value_count(), 36u);
  EXPECT_EQ(img.bytes(), 36u * sizeof(double));
  img.at(2, 1, 1) = 0.5;
  EXPECT_DOUBLE_EQ(img.at(2, 1, 1), 0.5);
  EXPECT_DOUBLE_EQ(img.row(1)[2 * kChannels + 1], 0.5);
}

TEST(ImageTest, ChecksumAndDiff) {
  Image a(2, 2);
  a.at(0, 0, 0) = 1.0;
  a.at(1, 1, 2) = 2.0;
  EXPECT_DOUBLE_EQ(a.checksum(), 3.0);
  Image b(2, 2);
  EXPECT_DOUBLE_EQ(a.mean_abs_diff(b), 3.0 / 12.0);
  Image c(3, 2);
  EXPECT_TRUE(std::isinf(a.mean_abs_diff(c)));
}

TEST(ImageTest, ProceduralImageDeterministic) {
  const Image a = make_test_image(32, 24, 7);
  const Image b = make_test_image(32, 24, 7);
  const Image c = make_test_image(32, 24, 8);
  EXPECT_DOUBLE_EQ(a.mean_abs_diff(b), 0.0);
  EXPECT_GT(a.mean_abs_diff(c), 0.0);
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 32; ++x) {
      for (int ch = 0; ch < kChannels; ++ch) {
        EXPECT_GE(a.at(x, y, ch), 0.0);
        EXPECT_LE(a.at(x, y, ch), 1.0);
      }
    }
  }
}

TEST(PpmCodec, Roundtrip8Bit) {
  const Image original = make_test_image(17, 11, 3);
  const Image decoded = decode_ppm(encode_ppm(original));
  EXPECT_EQ(decoded.width(), 17);
  EXPECT_EQ(decoded.height(), 11);
  // 8-bit quantization: max error 1/255 per value (~0.002 mean).
  EXPECT_LT(original.mean_abs_diff(decoded), 1.0 / 255.0);
}

TEST(PpmCodec, RejectsGarbage) {
  EXPECT_THROW(decode_ppm({'P', '5', '\n'}), std::runtime_error);
  EXPECT_THROW(decode_ppm({}), std::runtime_error);
  // Truncated pixel data.
  auto bytes = encode_ppm(make_test_image(4, 4));
  bytes.resize(bytes.size() - 10);
  EXPECT_THROW(decode_ppm(bytes), std::runtime_error);
}

TEST(Kernels, Normalization) {
  for (const auto& k : {Kernel3x3::mean_filter(), Kernel3x3::gaussian(),
                        Kernel3x3::identity()}) {
    double sum = 0.0;
    for (const double w : k.w) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Stencil, IdentityKernelPreservesImage) {
  const Image img = make_test_image(16, 12, 9);
  Image out(16, 12);
  apply_stencil_rows(img, out, 0, 12, Kernel3x3::identity());
  EXPECT_NEAR(img.mean_abs_diff(out), 0.0, 1e-15);
}

TEST(Stencil, MeanFilterSmoothesConstantImageExactly) {
  Image img(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      for (int c = 0; c < kChannels; ++c) img.at(x, y, c) = 0.7;
    }
  }
  Image out(8, 8);
  apply_stencil_rows(img, out, 0, 8, Kernel3x3::mean_filter());
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_NEAR(out.at(x, y, 0), 0.7, 1e-12);
    }
  }
}

TEST(Stencil, MeanFilterAverages) {
  Image img(3, 3);
  img.at(1, 1, 0) = 9.0;  // single bright pixel
  Image out(3, 3);
  apply_stencil_rows(img, out, 0, 3, Kernel3x3::mean_filter());
  EXPECT_NEAR(out.at(1, 1, 0), 1.0, 1e-12);  // 9/9
  // Corner pixel: clamped neighborhood still sums 9 taps; the bright pixel
  // is counted once.
  EXPECT_NEAR(out.at(0, 0, 0), 1.0, 1e-12);
}

TEST(Stencil, ReferenceConvolutionConservesEnergyOfMeanFilter) {
  // Repeated mean filtering keeps values within [min, max] of the input.
  const Image img = make_test_image(20, 20, 5);
  const Image result = convolve_reference(img, 10, Kernel3x3::mean_filter());
  for (int y = 0; y < 20; ++y) {
    for (int x = 0; x < 20; ++x) {
      for (int c = 0; c < kChannels; ++c) {
        EXPECT_GE(result.at(x, y, c), 0.0);
        EXPECT_LE(result.at(x, y, c), 1.0);
      }
    }
  }
  // And smoothing shrinks total variation vs the original.
  auto variation = [](const Image& im) {
    double v = 0.0;
    for (int y = 0; y < im.height(); ++y) {
      for (int x = 1; x < im.width(); ++x) {
        v += std::fabs(im.at(x, y, 0) - im.at(x - 1, y, 0));
      }
    }
    return v;
  };
  EXPECT_LT(variation(result), variation(img));
}

TEST(Decomp, EvenSplit) {
  const RowDecomposition d(100, 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(d.rows_of(r), 25);
    EXPECT_EQ(d.row_start(r), 25 * r);
  }
}

TEST(Decomp, RemainderToEarlyRanks) {
  const RowDecomposition d(10, 3);
  EXPECT_EQ(d.rows_of(0), 4);
  EXPECT_EQ(d.rows_of(1), 3);
  EXPECT_EQ(d.rows_of(2), 3);
  EXPECT_EQ(d.row_start(0), 0);
  EXPECT_EQ(d.row_start(1), 4);
  EXPECT_EQ(d.row_start(2), 7);
}

TEST(Decomp, OwnerInverseOfStart) {
  const RowDecomposition d(37, 5);
  for (int row = 0; row < 37; ++row) {
    const int owner = d.owner_of(row);
    EXPECT_GE(row, d.row_start(owner));
    EXPECT_LT(row, d.row_start(owner) + d.rows_of(owner));
  }
}

TEST(Decomp, Neighbors) {
  const RowDecomposition d(10, 3);
  EXPECT_EQ(d.up_neighbor(0), -1);
  EXPECT_EQ(d.down_neighbor(0), 1);
  EXPECT_EQ(d.up_neighbor(2), 1);
  EXPECT_EQ(d.down_neighbor(2), -1);
}

TEST(Decomp, ByteCountsAndDispls) {
  const RowDecomposition d(10, 3);
  const auto counts = d.byte_counts(8);
  const auto displs = d.byte_displs(8);
  EXPECT_EQ(counts[0], 32u);
  EXPECT_EQ(counts[1], 24u);
  EXPECT_EQ(displs[2], 56u);
  std::size_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, 80u);
}

TEST(Decomp, InvalidArguments) {
  EXPECT_THROW(RowDecomposition(10, 0), mpisect::mpisim::MpiError);
  EXPECT_THROW(RowDecomposition(4, 8), mpisect::mpisim::MpiError);
}

class DecompSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DecompSweep, RowsPartitionExactly) {
  const auto [height, ranks] = GetParam();
  const RowDecomposition d(height, ranks);
  int total = 0;
  int cursor = 0;
  for (int r = 0; r < ranks; ++r) {
    EXPECT_EQ(d.row_start(r), cursor);
    total += d.rows_of(r);
    cursor += d.rows_of(r);
    EXPECT_GE(d.rows_of(r), 1);
  }
  EXPECT_EQ(total, height);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecompSweep,
    ::testing::Values(std::pair{10, 3}, std::pair{3744, 456},
                      std::pair{3744, 64}, std::pair{7, 7},
                      std::pair{100, 1}));

}  // namespace
