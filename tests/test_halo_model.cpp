// Halo-ratio analytics backing the paper's Section 3 argument.
#include <gtest/gtest.h>

#include <cmath>

#include "core/speedup/halo_model.hpp"

namespace {

using namespace mpisect::speedup;

TEST(HaloModel, OneDimensionalSplitOfAPlane) {
  // The paper's convolution: 2D data, 1D split, 1-cell halo. A band of
  // n x n cells stores two extra rows: ratio = 2/n.
  const auto st = halo_stats(100, /*total_dims=*/2, /*decomp_dims=*/1);
  EXPECT_DOUBLE_EQ(st.interior_cells, 10000.0);
  EXPECT_DOUBLE_EQ(st.halo_cells, 2.0 * 100.0);
  EXPECT_DOUBLE_EQ(st.ratio, 0.02);
  EXPECT_DOUBLE_EQ(st.surface_cells, 2.0 * 100.0);
}

TEST(HaloModel, FullySplitCube) {
  // 3D data, 3D split: padded (n+2)^3.
  const auto st = halo_stats(10, 3, 3);
  EXPECT_DOUBLE_EQ(st.interior_cells, 1000.0);
  EXPECT_DOUBLE_EQ(st.halo_cells, 12.0 * 12.0 * 12.0 - 1000.0);
  EXPECT_NEAR(st.ratio, 0.728, 1e-12);
}

TEST(HaloModel, RatioShrinksWithLocalSize) {
  // "the halo-cells ratio ... is smaller for large memory areas".
  double prev = 1e9;
  for (const std::int64_t n : {4, 8, 16, 32, 64, 128}) {
    const double r = halo_stats(n, 3, 3).ratio;
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(HaloModel, HigherDimensionalSplitCostsMore) {
  // At the same local edge, splitting more dimensions stores more halo.
  const double r1 = halo_stats(32, 3, 1).ratio;
  const double r2 = halo_stats(32, 3, 2).ratio;
  const double r3 = halo_stats(32, 3, 3).ratio;
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
}

TEST(HaloModel, WiderHaloScales) {
  const auto h1 = halo_stats(50, 2, 1, 1);
  const auto h2 = halo_stats(50, 2, 1, 2);
  EXPECT_NEAR(h2.ratio, 2.0 * h1.ratio, 1e-12);
  EXPECT_DOUBLE_EQ(h2.surface_cells, 2.0 * h1.surface_cells);
}

TEST(HaloModel, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(halo_stats(0, 2, 1).ratio, 0.0);
  EXPECT_DOUBLE_EQ(halo_stats(10, 2, 3).ratio, 0.0);  // decomp > total
  EXPECT_DOUBLE_EQ(halo_stats(10, 2, 0).halo_cells, 0.0);  // no split
}

TEST(HaloModel, LocalEdgeFromGlobal) {
  // 3D cube of 110592 cells (48^3) over 8 ranks in 3D: edge 24.
  EXPECT_NEAR(local_edge(110592.0, 3, 3, 8), 24.0, 1e-9);
  // Same over 27 ranks: 16.
  EXPECT_NEAR(local_edge(110592.0, 3, 3, 27), 16.0, 1e-9);
  // Non-cube rank count for a 3D split: rejected.
  EXPECT_LT(local_edge(110592.0, 3, 3, 10), 0.0);
  // 2D split of a 2D image.
  EXPECT_NEAR(local_edge(1024.0 * 1024.0, 2, 2, 16), 256.0, 1e-9);
}

TEST(HaloModel, MinEdgeForBudget) {
  // 3D/3D with a 10% halo budget: (n+2)^3/n^3 - 1 <= 0.1 -> n >= 62.
  const auto n = min_edge_for_budget(3, 3, 0.1);
  EXPECT_GE(n, 2);
  EXPECT_LE(halo_stats(n, 3, 3).ratio, 0.1);
  EXPECT_GT(halo_stats(n - 1, 3, 3).ratio, 0.1);
  // 1D split of 2D data tolerates much smaller blocks for the same budget.
  const auto n1 = min_edge_for_budget(2, 1, 0.1);
  EXPECT_LT(n1, n);
  EXPECT_EQ(min_edge_for_budget(3, 3, 0.0), -1);  // impossible budget
}

TEST(HaloModel, PaperNarrativeNumbers) {
  // The Sec. 3 storyline quantified: to keep halo overhead under 5%, a 3D
  // decomposition needs a local edge > 100, i.e. > 1M cells per rank
  // (about two orders of magnitude more memory than a 1D split of 2D data
  // requires) — shrinking memory per rank forces fewer, fatter ranks.
  const auto n3 = min_edge_for_budget(3, 3, 0.05);
  const auto n1 = min_edge_for_budget(2, 1, 0.05);
  EXPECT_GT(n3, 100);
  EXPECT_LT(n1, 50);
  EXPECT_GT(std::pow(static_cast<double>(n3), 3.0), 1e6);
}

}  // namespace
