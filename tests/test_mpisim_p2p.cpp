// Point-to-point semantics of MiniMPI: matching, ordering, wildcards,
// truncation, rendezvous vs eager, and virtual-time propagation.
#include <gtest/gtest.h>

#include <vector>

#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect::mpisim;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(P2P, PayloadDelivered) {
  World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      const std::vector<int> data{1, 2, 3, 4};
      comm.send(data.data(), data.size() * sizeof(int), 1, 7);
    } else {
      std::vector<int> data(4, 0);
      const Status st = comm.recv(data.data(), data.size() * sizeof(int), 0, 7);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 16u);
      EXPECT_EQ(data[0], 1);
      EXPECT_EQ(data[3], 4);
    }
  });
}

TEST(P2P, NonOvertakingSameSourceSameTag) {
  World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.send(&i, sizeof i, 1, 3);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        comm.recv(&v, sizeof v, 0, 3);
        EXPECT_EQ(v, i);  // program order preserved
      }
    }
  });
}

TEST(P2P, TagSelectsMessage) {
  World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      const int a = 100;
      const int b = 200;
      comm.send(&a, sizeof a, 1, 1);
      comm.send(&b, sizeof b, 1, 2);
    } else {
      int v = 0;
      comm.recv(&v, sizeof v, 0, 2);  // request the later tag first
      EXPECT_EQ(v, 200);
      comm.recv(&v, sizeof v, 0, 1);
      EXPECT_EQ(v, 100);
    }
  });
}

TEST(P2P, AnySourceAnyTag) {
  World world(3, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() != 0) {
      const int v = ctx.rank() * 10;
      comm.send(&v, sizeof v, 0, ctx.rank());
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        const Status st = comm.recv(&v, sizeof v, kAnySource, kAnyTag);
        EXPECT_EQ(v, st.source * 10);
        EXPECT_EQ(st.tag, st.source);
        seen += st.source;
      }
      EXPECT_EQ(seen, 3);  // both senders matched exactly once
    }
  });
}

TEST(P2P, TruncationThrows) {
  World world(2, ideal_options());
  EXPECT_THROW(world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      const std::vector<char> big(128, 'x');
      comm.send(big.data(), big.size(), 1, 0);
    } else {
      char small[16];
      comm.recv(small, sizeof small, 0, 0);
    }
  }),
               MpiError);
}

TEST(P2P, ShorterMessageThanBufferIsFine) {
  World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      const int v = 5;
      comm.send(&v, sizeof v, 1, 0);
    } else {
      char buf[64] = {};
      const Status st = comm.recv(buf, sizeof buf, 0, 0);
      EXPECT_EQ(st.bytes, sizeof(int));
    }
  });
}

TEST(P2P, ModeledMessagesCarryOnlySize) {
  World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      comm.send(nullptr, 1 << 20, 1, 0);  // 1 MiB modelled
    } else {
      const Status st = comm.recv(nullptr, 1 << 20, 0, 0);
      EXPECT_EQ(st.bytes, static_cast<std::size_t>(1 << 20));
    }
  });
}

TEST(P2P, VirtualTimeAdvancesByTransferCost) {
  WorldOptions opts = ideal_options();
  World world(2, opts);
  // inter-node: ranks 0 and 8 would differ, but world of 2 shares node 0 ->
  // intra link: latency 1us, bw 10 GB/s.
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const std::size_t bytes = 1000;
    if (ctx.rank() == 0) {
      comm.send(nullptr, bytes, 1, 0);
    } else {
      const Status st = comm.recv(nullptr, bytes, 0, 0);
      // Receiver time >= wire latency + bytes/bw.
      EXPECT_GE(st.t_complete, 1e-6 + 1000.0 / 10.0e9);
      EXPECT_LT(st.t_complete, 1e-4);  // and not absurdly large
    }
  });
}

TEST(P2P, ReceiverWaitsForLateSender) {
  World world(2, ideal_options());
  std::vector<double> recv_time(1);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      ctx.compute_exact(5.0);  // sender is busy for 5 virtual seconds
      comm.send(nullptr, 8, 1, 0);
    } else {
      const Status st = comm.recv(nullptr, 8, 0, 0);
      recv_time[0] = st.t_complete;
    }
  });
  EXPECT_GE(recv_time[0], 5.0);  // delivery can't precede the send
}

TEST(P2P, EagerSenderDoesNotWaitForReceiver) {
  World world(2, ideal_options());
  std::vector<double> sender_done(1);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      comm.send(nullptr, 64, 1, 0);  // 64B << eager threshold
      sender_done[0] = ctx.now();
    } else {
      ctx.compute_exact(9.0);  // receiver very late
      comm.recv(nullptr, 64, 0, 0);
    }
  });
  EXPECT_LT(sender_done[0], 1.0);  // returned immediately
}

TEST(P2P, RendezvousSenderWaitsForReceiver) {
  World world(2, ideal_options());
  std::vector<double> sender_done(1);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const std::size_t big = 1 << 20;  // over the 16 KiB eager threshold
    if (ctx.rank() == 0) {
      comm.send(nullptr, big, 1, 0);
      sender_done[0] = ctx.now();
    } else {
      ctx.compute_exact(9.0);
      comm.recv(nullptr, big, 0, 0);
    }
  });
  EXPECT_GE(sender_done[0], 9.0);  // completion tied to the receive
}

TEST(P2P, SendrecvExchanges) {
  World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const int peer = 1 - ctx.rank();
    const int mine = ctx.rank() + 100;
    int theirs = -1;
    comm.sendrecv(&mine, sizeof mine, peer, 0, &theirs, sizeof theirs, peer,
                  0);
    EXPECT_EQ(theirs, peer + 100);
  });
}

TEST(P2P, SendrecvRingDoesNotDeadlock) {
  const int p = 8;
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const int right = (ctx.rank() + 1) % p;
    const int left = (ctx.rank() - 1 + p) % p;
    int in = -1;
    const int out = ctx.rank();
    comm.sendrecv(&out, sizeof out, right, 0, &in, sizeof in, left, 0);
    EXPECT_EQ(in, left);
  });
}

TEST(P2P, IsendIrecvWaitall) {
  World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const int peer = 1 - ctx.rank();
    std::vector<int> out{ctx.rank() * 2, ctx.rank() * 2 + 1};
    std::vector<int> in(2, -1);
    std::vector<Comm::Request> reqs;
    reqs.push_back(comm.irecv(&in[0], sizeof(int), peer, 0));
    reqs.push_back(comm.irecv(&in[1], sizeof(int), peer, 1));
    reqs.push_back(comm.isend(&out[0], sizeof(int), peer, 0));
    reqs.push_back(comm.isend(&out[1], sizeof(int), peer, 1));
    waitall(reqs);
    EXPECT_EQ(in[0], peer * 2);
    EXPECT_EQ(in[1], peer * 2 + 1);
  });
}

TEST(P2P, RequestWaitIdempotent) {
  World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      const int v = 1;
      auto req = comm.isend(&v, sizeof v, 1, 0);
      const Status a = req.wait();
      const Status b = req.wait();
      EXPECT_DOUBLE_EQ(a.t_complete, b.t_complete);
    } else {
      int v = 0;
      auto req = comm.irecv(&v, sizeof v, 0, 0);
      req.wait();
      EXPECT_TRUE(req.test());
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(P2P, ProbeSeesEnvelopeWithoutConsuming) {
  World world(2, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      const double v = 2.5;
      comm.send(&v, sizeof v, 1, 9);
    } else {
      const Status st = comm.probe(0, 9);
      EXPECT_EQ(st.bytes, sizeof(double));
      EXPECT_EQ(st.source, 0);
      double v = 0.0;
      comm.recv(&v, sizeof v, 0, 9);  // still receivable
      EXPECT_DOUBLE_EQ(v, 2.5);
    }
  });
}

TEST(P2P, InvalidArgumentsThrow) {
  World world(2, ideal_options());
  EXPECT_THROW(world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    comm.send(nullptr, 0, 99, 0);  // no such rank
  }),
               MpiError);
  World world2(2, ideal_options());
  EXPECT_THROW(world2.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    comm.send(nullptr, 0, 0, kInternalTagBase + 5);  // reserved tag
  }),
               MpiError);
}

class P2PSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(P2PSizeSweep, RoundtripAnySize) {
  const std::size_t bytes = GetParam();
  World world(2, ideal_options());
  world.run([bytes](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      std::vector<std::uint8_t> data(bytes);
      for (std::size_t i = 0; i < bytes; ++i) {
        data[i] = static_cast<std::uint8_t>(i * 13);
      }
      comm.send(data.data(), bytes, 1, 0);
    } else {
      std::vector<std::uint8_t> data(bytes, 0);
      const Status st = comm.recv(data.data(), bytes, 0, 0);
      EXPECT_EQ(st.bytes, bytes);
      bool ok = true;
      for (std::size_t i = 0; i < bytes; ++i) {
        ok = ok && data[i] == static_cast<std::uint8_t>(i * 13);
      }
      EXPECT_TRUE(ok);
    }
  });
}

// Sizes straddle the eager/rendezvous threshold (16 KiB).
INSTANTIATE_TEST_SUITE_P(Sizes, P2PSizeSweep,
                         ::testing::Values(0u, 1u, 128u, 16383u, 16384u,
                                           16385u, 1u << 18));

}  // namespace
