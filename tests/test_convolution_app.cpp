// End-to-end convolution benchmark: distributed result equals the serial
// reference, sections appear with the right instance counts, and the
// modelled mode exercises the identical control flow.
#include <gtest/gtest.h>

#include "apps/convolution/convolution.hpp"
#include "core/sections/runtime.hpp"
#include "profiler/section_profiler.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::apps::conv;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

ConvolutionConfig small_config(int steps, bool full) {
  ConvolutionConfig cfg;
  cfg.width = 24;
  cfg.height = 18;
  cfg.steps = steps;
  cfg.full_fidelity = full;
  return cfg;
}

class ConvolutionRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConvolutionRankSweep, DistributedMatchesSerialReference) {
  const int p = GetParam();
  const int steps = 5;
  World world(p, ideal_options());
  sections::SectionRuntime::install(world);
  ConvolutionApp app(small_config(steps, /*full=*/true));
  world.run(std::ref(app));
  ASSERT_TRUE(app.has_result());

  // Serial reference on the same "loaded" image (PPM round-trip included).
  const Image loaded =
      decode_ppm(encode_ppm(make_test_image(24, 18, app.config().image_seed)));
  const Image expected =
      convolve_reference(loaded, steps, Kernel3x3::mean_filter());
  EXPECT_LT(app.result().mean_abs_diff(expected), 1e-12)
      << "distributed stencil diverged from the serial reference at p=" << p;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ConvolutionRankSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 9));

TEST(ConvolutionSections, AllPhasesObservedWithCorrectInstanceCounts) {
  const int p = 4;
  const int steps = 7;
  World world(p, ideal_options());
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  ConvolutionApp app(small_config(steps, /*full=*/true));
  world.run(std::ref(app));

  EXPECT_EQ(prof.totals_for(labels::kLoad).instances, 1);
  EXPECT_EQ(prof.totals_for(labels::kScatter).instances, 1);
  EXPECT_EQ(prof.totals_for(labels::kHalo).instances, steps);
  EXPECT_EQ(prof.totals_for(labels::kConvolve).instances, steps);
  EXPECT_EQ(prof.totals_for(labels::kGather).instances, 1);
  EXPECT_EQ(prof.totals_for(labels::kStore).instances, 1);
  for (const char* label :
       {labels::kLoad, labels::kScatter, labels::kHalo, labels::kConvolve,
        labels::kGather, labels::kStore}) {
    EXPECT_EQ(prof.totals_for(label).ranks_seen, p) << label;
  }
}

TEST(ConvolutionSections, ConvolveTimeDominatedByComputeCharge) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  ConvolutionConfig cfg = small_config(10, /*full=*/false);
  ConvolutionApp app(cfg);
  world.run(std::ref(app));
  const auto convolve = prof.totals_for(labels::kConvolve);
  // Charge model: rows*width*flops_per_pixel per step per rank at 1 GF/s.
  const double expected =
      (18.0 / 2.0) * 24.0 * cfg.flops_per_pixel * 10.0 / 1e9;
  EXPECT_NEAR(convolve.mean_per_process, expected, expected * 0.05);
}

TEST(ConvolutionModes, ModeledAndFullShareSectionStructure) {
  const int p = 3;
  const int steps = 4;
  auto run_mode = [&](bool full) {
    World world(p, ideal_options());
    sections::SectionRuntime::install(world);
    profiler::SectionProfiler prof(world);
    ConvolutionApp app(small_config(steps, full));
    world.run(std::ref(app));
    std::vector<std::pair<std::string, long>> shape;
    for (const auto& t : prof.totals()) {
      shape.emplace_back(t.label, t.instances);
    }
    return shape;
  };
  EXPECT_EQ(run_mode(true), run_mode(false));
}

TEST(ConvolutionModes, RootDoesSequentialIo) {
  World world(4, ideal_options());
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  ConvolutionApp app(small_config(2, /*full=*/false));
  world.run(std::ref(app));
  const auto load = prof.totals_for(labels::kLoad);
  // Rank 0 pays the I/O; other ranks pass straight through, so the mean is
  // dominated by a single rank's contribution.
  const auto* r0 = prof.rank_stats(0, load.comm_context, labels::kLoad);
  const auto* r3 = prof.rank_stats(3, load.comm_context, labels::kLoad);
  ASSERT_NE(r0, nullptr);
  ASSERT_NE(r3, nullptr);
  EXPECT_GT(r0->inclusive, 1e-6);
  EXPECT_LT(r3->inclusive, r0->inclusive * 0.01);
}

TEST(ConvolutionScaling, MoreRanksLessConvolveTimePerProcess) {
  auto convolve_time = [](int p) {
    World world(p, ideal_options());
    sections::SectionRuntime::install(world);
    profiler::SectionProfiler prof(world);
    ConvolutionConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    cfg.steps = 3;
    cfg.full_fidelity = false;
    ConvolutionApp app(cfg);
    world.run(std::ref(app));
    return prof.totals_for(labels::kConvolve).mean_per_process;
  };
  const double t1 = convolve_time(1);
  const double t4 = convolve_time(4);
  const double t16 = convolve_time(16);
  EXPECT_NEAR(t4, t1 / 4.0, t1 * 0.05);
  EXPECT_NEAR(t16, t1 / 16.0, t1 * 0.05);
}

TEST(ConvolutionScaling, HaloAbsentForSingleRank) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  ConvolutionApp app(small_config(3, /*full=*/true));
  world.run(std::ref(app));
  const auto halo = prof.totals_for(labels::kHalo);
  EXPECT_EQ(halo.instances, 3);
  EXPECT_EQ(halo.mpi_calls, 0);  // no neighbors, no messages
}

TEST(ConvolutionStore, WritesRequestedFile) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  ConvolutionConfig cfg = small_config(1, /*full=*/true);
  cfg.store_path = "/tmp/mpisect_conv_test.ppm";
  ConvolutionApp app(cfg);
  world.run(std::ref(app));
  FILE* f = std::fopen(cfg.store_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[2] = {};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  std::fclose(f);
  EXPECT_EQ(magic[0], 'P');
  EXPECT_EQ(magic[1], '6');
  std::remove(cfg.store_path.c_str());
}


class Convolution2DSweep : public ::testing::TestWithParam<int> {};

TEST_P(Convolution2DSweep, TileDecompositionMatchesSerialReference) {
  const int p = GetParam();
  const int steps = 5;
  World world(p, ideal_options());
  sections::SectionRuntime::install(world);
  ConvolutionConfig cfg = small_config(steps, /*full=*/true);
  cfg.decomp_dims = 2;
  ConvolutionApp app(cfg);
  world.run(std::ref(app));
  ASSERT_TRUE(app.has_result());
  const Image loaded =
      decode_ppm(encode_ppm(make_test_image(24, 18, app.config().image_seed)));
  const Image expected =
      convolve_reference(loaded, steps, Kernel3x3::mean_filter());
  EXPECT_LT(app.result().mean_abs_diff(expected), 1e-12)
      << "2D tile stencil diverged from the serial reference at p=" << p;
}

// 6 ranks -> 2x3 grid, 9 -> 3x3 (corners + all faces), 5 -> 1x5 degenerate.
INSTANTIATE_TEST_SUITE_P(Grids, Convolution2DSweep,
                         ::testing::Values(1, 2, 4, 6, 9, 12, 5));

TEST(Convolution2D, MatchesOneDimensionalResultExactly) {
  const int steps = 4;
  auto run_dims = [&](int dims) {
    World world(6, ideal_options());
    sections::SectionRuntime::install(world);
    ConvolutionConfig cfg = small_config(steps, /*full=*/true);
    cfg.decomp_dims = dims;
    ConvolutionApp app(cfg);
    world.run(std::ref(app));
    return app.result().checksum();
  };
  EXPECT_DOUBLE_EQ(run_dims(1), run_dims(2));
}

TEST(Convolution2D, HaloBytesSmallerThan1D) {
  // Sec. 3's point: at 16 ranks on a square-ish image, a tile's halo is a
  // perimeter, not two full rows.
  const GridDecomposition grid(1024, 1024, 16);  // 4x4 grid
  const RowDecomposition rows(1024, 16);
  const std::size_t pixel = kChannels * sizeof(double);
  // Interior tile: 4 faces of 256 px + 4 corners vs 2 rows of 1024 px.
  const std::size_t tile_bytes = grid.halo_bytes(5, pixel);
  const std::size_t row_bytes = 2u * 1024u * pixel;
  EXPECT_LT(tile_bytes, row_bytes);
  EXPECT_EQ(tile_bytes, (4u * 256u + 4u) * pixel);
  (void)rows;
}

TEST(Convolution2D, GridGeometry) {
  int px = 0;
  int py = 0;
  GridDecomposition::squarest_grid(12, px, py);
  EXPECT_EQ(px, 3);
  EXPECT_EQ(py, 4);
  GridDecomposition::squarest_grid(7, px, py);
  EXPECT_EQ(px, 1);
  EXPECT_EQ(py, 7);
  const GridDecomposition grid(100, 90, 6);  // 2x3
  EXPECT_EQ(grid.px(), 2);
  EXPECT_EQ(grid.py(), 3);
  // Tiles partition the image exactly.
  long area = 0;
  for (int r = 0; r < 6; ++r) {
    const auto t = grid.tile_of(r);
    area += static_cast<long>(t.width) * t.height;
    EXPECT_GT(t.width, 0);
    EXPECT_GT(t.height, 0);
  }
  EXPECT_EQ(area, 100L * 90L);
  EXPECT_EQ(grid.neighbor(0, -1, 0), -1);
  EXPECT_EQ(grid.neighbor(0, 1, 0), 1);
  EXPECT_EQ(grid.neighbor(0, 0, 1), 2);
  EXPECT_EQ(grid.neighbor(3, 1, 1), -1);  // (1,1)+(1,1) leaves the 2x3 grid
}

}  // namespace
