// ToolStack registration semantics: attach order controls observation
// nesting (ascending on begin events, descending on end events), raw
// HookTable users installed before the stack keep firing as the innermost
// base layer, detach is symmetric, and the stack never perturbs virtual
// time.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/toolstack.hpp"

namespace {

using namespace mpisect;
using mpisim::hooks::Tool;

/// Appends "<name>+" on begin events and "<name>-" on end events to a
/// shared log (mutex-guarded: tool methods run on rank threads).
class LoggingTool final : public Tool {
 public:
  LoggingTool(std::string name, std::vector<std::string>& log)
      : name_(std::move(name)), log_(&log) {}

  void on_call_begin(mpisim::Ctx&, const mpisim::CallInfo&) override {
    push(name_ + "+");
  }
  void on_call_end(mpisim::Ctx&, const mpisim::CallInfo&) override {
    push(name_ + "-");
  }
  void on_section_enter(mpisim::Ctx&, mpisim::Comm&, const char* label,
                        char*) override {
    push(name_ + "+enter:" + label);
  }
  void on_section_leave(mpisim::Ctx&, mpisim::Comm&, const char* label,
                        char*) override {
    push(name_ + "-leave:" + label);
  }

 private:
  void push(std::string entry) {
    static std::mutex mu;
    const std::lock_guard<std::mutex> lock(mu);
    log_->push_back(std::move(entry));
  }

  std::string name_;
  std::vector<std::string>* log_;
};

void run_barrier(mpisim::World& world) {
  world.run([](mpisim::Ctx& ctx) { ctx.world_comm().barrier(); });
}

TEST(ToolStack, BeginAscendingEndDescending) {
  mpisim::World world(1, {});
  std::vector<std::string> log;
  LoggingTool outer("outer", log);
  LoggingTool inner("inner", log);
  world.tool_stack().attach(&inner, /*order=*/20);
  world.tool_stack().attach(&outer, /*order=*/10);  // order beats attach time
  run_barrier(world);
  world.tool_stack().detach(&outer);
  world.tool_stack().detach(&inner);

  // Find the barrier call bracket: outer must bracket inner, PMPI-style.
  std::vector<std::string> calls;
  for (const auto& e : log) {
    if (e == "outer+" || e == "inner+" || e == "outer-" || e == "inner-") {
      calls.push_back(e);
    }
  }
  ASSERT_GE(calls.size(), 4u);
  EXPECT_EQ(calls[0], "outer+");
  EXPECT_EQ(calls[1], "inner+");
  EXPECT_EQ(calls[calls.size() - 2], "inner-");
  EXPECT_EQ(calls[calls.size() - 1], "outer-");
}

TEST(ToolStack, SectionCallbacksNestTheSameWay) {
  mpisim::World world(1, {});
  sections::SectionRuntime::install(world);
  std::vector<std::string> log;
  LoggingTool a("a", log);
  LoggingTool b("b", log);
  world.tool_stack().attach(&a, 10);
  world.tool_stack().attach(&b, 20);
  world.run([](mpisim::Ctx& ctx) {
    mpisim::Comm comm = ctx.world_comm();
    sections::MPIX_Section_enter(comm, "PHASE");
    sections::MPIX_Section_exit(comm, "PHASE");
  });
  world.tool_stack().detach(&a);
  world.tool_stack().detach(&b);

  std::vector<std::string> sec;
  for (const auto& e : log) {
    if (e.find("enter:PHASE") != std::string::npos ||
        e.find("leave:PHASE") != std::string::npos) {
      sec.push_back(e);
    }
  }
  ASSERT_EQ(sec.size(), 4u);
  EXPECT_EQ(sec[0], "a+enter:PHASE");
  EXPECT_EQ(sec[1], "b+enter:PHASE");
  EXPECT_EQ(sec[2], "b-leave:PHASE");
  EXPECT_EQ(sec[3], "a-leave:PHASE");
}

TEST(ToolStack, RawHookUsersStayInstalledAsTheBaseLayer) {
  mpisim::World world(1, {});
  std::vector<std::string> log;
  // An application installing plain hooks before any tool attaches.
  world.hooks().on_call_begin = [&log](mpisim::Ctx&,
                                       const mpisim::CallInfo&) {
    log.push_back("base+");
  };
  world.hooks().on_call_end = [&log](mpisim::Ctx&, const mpisim::CallInfo&) {
    log.push_back("base-");
  };
  LoggingTool tool("tool", log);
  world.tool_stack().attach(&tool, 10);
  run_barrier(world);
  world.tool_stack().detach(&tool);

  std::vector<std::string> calls;
  for (const auto& e : log) {
    if (e == "base+" || e == "tool+" || e == "base-" || e == "tool-") {
      calls.push_back(e);
    }
  }
  ASSERT_GE(calls.size(), 4u);
  // Base is the innermost-begin layer (it fired first historically) and the
  // outermost-end layer, matching the old hand-chaining.
  EXPECT_EQ(calls[0], "base+");
  EXPECT_EQ(calls[1], "tool+");
  EXPECT_EQ(calls[calls.size() - 2], "tool-");
  EXPECT_EQ(calls[calls.size() - 1], "base-");
}

TEST(ToolStack, DetachStopsDeliveryAndShrinksTheStack) {
  mpisim::World world(1, {});
  std::vector<std::string> log;
  LoggingTool tool("tool", log);
  world.tool_stack().attach(&tool, 10);
  EXPECT_EQ(world.tool_stack().size(), 1u);
  world.tool_stack().detach(&tool);
  EXPECT_EQ(world.tool_stack().size(), 0u);
  world.tool_stack().detach(&tool);  // idempotent
  run_barrier(world);
  EXPECT_TRUE(log.empty());
}

TEST(ToolStack, AttachedToolsDoNotPerturbVirtualTime) {
  double bare = 0.0;
  {
    mpisim::WorldOptions opts;
    opts.machine = mpisim::MachineModel::nehalem_cluster();
    mpisim::World world(4, opts);
    world.run([](mpisim::Ctx& ctx) {
      for (int i = 0; i < 8; ++i) ctx.world_comm().barrier();
    });
    bare = world.elapsed();
  }
  {
    mpisim::WorldOptions opts;
    opts.machine = mpisim::MachineModel::nehalem_cluster();
    mpisim::World world(4, opts);
    std::vector<std::string> log;
    LoggingTool tool("tool", log);
    world.tool_stack().attach(&tool, 10);
    world.run([](mpisim::Ctx& ctx) {
      for (int i = 0; i < 8; ++i) ctx.world_comm().barrier();
    });
    world.tool_stack().detach(&tool);
    EXPECT_EQ(world.elapsed(), bare);  // bitwise
  }
}

}  // namespace
