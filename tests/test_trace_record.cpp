// Recorder behaviour: same-seed determinism (byte-identical files), zero
// virtual-time perturbation, tool stacking with the profiler and checker in
// either order, and the delta/varint size bound for paper-scale runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "checker/checker.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"
#include "profiler/section_profiler.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

using namespace mpisect;

mpisim::WorldOptions jittery_options(std::uint64_t seed = 0x5EED) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = seed;
  return opts;
}

void run_convolution(mpisim::World& world, int steps) {
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
}

trace::TraceFile record_convolution(std::uint64_t seed, int ranks,
                                    int steps) {
  mpisim::World world(ranks, jittery_options(seed));
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "convolution"});
  run_convolution(world, steps);
  return rec->finish();
}

TEST(TraceRecord, SameSeedRunsProduceByteIdenticalFiles) {
  const auto a = record_convolution(0x1234, 8, 15).encode();
  const auto b = record_convolution(0x1234, 8, 15).encode();
  EXPECT_EQ(a, b);
}

TEST(TraceRecord, DifferentSeedsProduceDifferentFiles) {
  const auto a = record_convolution(0x1234, 8, 15).encode();
  const auto b = record_convolution(0x9999, 8, 15).encode();
  EXPECT_NE(a, b);
}

TEST(TraceRecord, RecordingPerturbsVirtualTimeByExactlyZero) {
  std::vector<double> bare;
  {
    mpisim::World world(8, jittery_options());
    sections::SectionRuntime::install(world);
    run_convolution(world, 15);
    bare = world.final_times();
  }
  std::vector<double> recorded;
  {
    mpisim::World world(8, jittery_options());
    sections::SectionRuntime::install(world);
    auto rec = trace::TraceRecorder::install(world, {});
    run_convolution(world, 15);
    recorded = world.final_times();
  }
  ASSERT_EQ(bare.size(), recorded.size());
  for (std::size_t r = 0; r < bare.size(); ++r) {
    EXPECT_EQ(bare[r], recorded[r]) << "rank " << r;  // bitwise, not approx
  }
}

TEST(TraceRecord, InstallIsIdempotent) {
  mpisim::World world(2, jittery_options());
  sections::SectionRuntime::install(world);
  auto a = trace::TraceRecorder::install(world, {});
  auto b = trace::TraceRecorder::install(world, {});
  EXPECT_EQ(a.get(), b.get());
}

// The recorder chains the previous HookTable like a PMPI wrapper library,
// so profiler + checker + tracer stack in any install order, and each tool
// still sees every event.
void check_stacked(bool recorder_last) {
  mpisim::World world(4, jittery_options());
  sections::SectionRuntime::install(world);
  std::shared_ptr<trace::TraceRecorder> rec;
  std::unique_ptr<profiler::SectionProfiler> prof;
  std::shared_ptr<checker::MpiChecker> chk;
  if (recorder_last) {
    prof = std::make_unique<profiler::SectionProfiler>(world);
    chk = checker::MpiChecker::install(world);
    rec = trace::TraceRecorder::install(world, {});
  } else {
    rec = trace::TraceRecorder::install(world, {});
    prof = std::make_unique<profiler::SectionProfiler>(world);
    chk = checker::MpiChecker::install(world);
  }
  run_convolution(world, 8);

  const trace::TraceFile tf = rec->finish();
  EXPECT_GT(tf.total_events(), 0u);
  const auto verdict = trace::verify_roundtrip(tf);
  EXPECT_TRUE(verdict.ok) << verdict.detail;

  EXPECT_GT(prof->main_time(), 0.0);  // profiler still observed sections
  chk->analyze();
  EXPECT_TRUE(chk->diagnostics().empty());  // checker still saw clean run
}

TEST(TraceRecord, StacksWithProfilerAndCheckerRecorderLast) {
  check_stacked(/*recorder_last=*/true);
}

TEST(TraceRecord, StacksWithProfilerAndCheckerRecorderFirst) {
  check_stacked(/*recorder_last=*/false);
}

TEST(TraceRecord, HeaderCarriesProvenance) {
  const trace::TraceFile tf = record_convolution(0xABCD, 4, 5);
  EXPECT_EQ(tf.header.app, "convolution");
  EXPECT_EQ(tf.header.seed, 0xABCDu);
  EXPECT_EQ(tf.header.nranks, 4);
  EXPECT_EQ(tf.header.machine.name, "nehalem-cluster");
  EXPECT_EQ(tf.ranks.size(), 4u);
}

TEST(TraceRecord, LabelTableIsLexicographic) {
  const trace::TraceFile tf = record_convolution(0x5EED, 4, 5);
  ASSERT_GT(tf.labels.size(), 1u);
  for (std::size_t i = 1; i < tf.labels.size(); ++i) {
    EXPECT_LT(tf.labels[i - 1], tf.labels[i]);
  }
}

// Acceptance bound: a 64-rank x 1000-step convolution trace stays "a few
// MB" thanks to delta/varint encoding — and well under 10 bytes/event.
TEST(TraceRecord, PaperScaleTraceStaysSmall) {
  const trace::TraceFile tf = record_convolution(0x5EED, 64, 1000);
  const auto bytes = tf.encode();
  const std::uint64_t events = tf.total_events();
  ASSERT_GT(events, 0u);
  EXPECT_LT(bytes.size(), 8u * 1024 * 1024)
      << events << " events, " << bytes.size() << " bytes";
  EXPECT_LT(static_cast<double>(bytes.size()) / static_cast<double>(events),
            10.0);
}

}  // namespace
