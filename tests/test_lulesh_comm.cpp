// Cube decomposition and the sum-combine halo exchange.
#include <gtest/gtest.h>

#include <vector>

#include "apps/lulesh/comm.hpp"
#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::apps::lulesh;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(Cube, IsCube) {
  EXPECT_TRUE(CubeDecomposition::is_cube(1));
  EXPECT_TRUE(CubeDecomposition::is_cube(8));
  EXPECT_TRUE(CubeDecomposition::is_cube(27));
  EXPECT_TRUE(CubeDecomposition::is_cube(64));
  EXPECT_FALSE(CubeDecomposition::is_cube(2));
  EXPECT_FALSE(CubeDecomposition::is_cube(9));
  EXPECT_FALSE(CubeDecomposition::is_cube(0));
  EXPECT_FALSE(CubeDecomposition::is_cube(-8));
}

TEST(Cube, RejectsNonCube) {
  EXPECT_THROW(CubeDecomposition(10), mpisim::MpiError);
}

TEST(Cube, CoordsRoundtrip) {
  const CubeDecomposition cube(27);
  EXPECT_EQ(cube.pgrid(), 3);
  for (int r = 0; r < 27; ++r) {
    const auto c = cube.coords_of(r);
    EXPECT_EQ(cube.rank_of(c.rx, c.ry, c.rz), r);
  }
}

TEST(Cube, NeighborsAndBounds) {
  const CubeDecomposition cube(27);
  const int center = cube.rank_of(1, 1, 1);
  EXPECT_EQ(cube.neighbor_count(center), 26);
  const int corner = cube.rank_of(0, 0, 0);
  EXPECT_EQ(cube.neighbor_count(corner), 7);
  EXPECT_EQ(cube.neighbor(corner, -1, 0, 0), -1);
  EXPECT_EQ(cube.neighbor(corner, 1, 0, 0), cube.rank_of(1, 0, 0));
  const int face = cube.rank_of(1, 1, 0);
  EXPECT_EQ(cube.neighbor_count(face), 17);
}

TEST(Cube, SingleRankHasNoNeighbors) {
  const CubeDecomposition cube(1);
  EXPECT_EQ(cube.neighbor_count(0), 0);
}

TEST(ExchangeSumNodal, SharedNodesGetGlobalSum) {
  // 8 ranks, 2x2x2. Every rank fills its boundary field with 1.0
  // everywhere; after the exchange, a node's value equals the number of
  // ranks that share it (2 on faces, 4 on edges, 8 on the center corner).
  const int s = 3;  // nodes per edge = 4
  World world(8, ideal_options());
  std::vector<int> failures(8, 0);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const CubeDecomposition cube(8);
    const int n = s + 1;
    std::vector<double> field(static_cast<std::size_t>(n) * n * n, 1.0);
    exchange_sum_nodal(comm, cube, n, &field, nullptr, nullptr, 500);
    const auto c = cube.coords_of(ctx.rank());
    auto has = [&](int dx, int dy, int dz) {
      return cube.neighbor(ctx.rank(), dx, dy, dz) >= 0;
    };
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          int expect = 1;
          if ((i == 0 && has(-1, 0, 0)) || (i == n - 1 && has(1, 0, 0))) {
            expect *= 2;
          }
          if ((j == 0 && has(0, -1, 0)) || (j == n - 1 && has(0, 1, 0))) {
            expect *= 2;
          }
          if ((k == 0 && has(0, 0, -1)) || (k == n - 1 && has(0, 0, 1))) {
            expect *= 2;
          }
          const auto idx =
              (static_cast<std::size_t>(k) * n + static_cast<std::size_t>(j)) *
                  n +
              static_cast<std::size_t>(i);
          if (field[idx] != static_cast<double>(expect)) {
            ++failures[static_cast<std::size_t>(ctx.rank())];
          }
        }
      }
    }
    (void)c;
  });
  for (const int f : failures) EXPECT_EQ(f, 0);
}

TEST(ExchangeSumNodal, ThreeFieldsExchangedTogether) {
  World world(8, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const CubeDecomposition cube(8);
    const int n = 3;
    const auto size = static_cast<std::size_t>(n) * n * n;
    std::vector<double> fx(size, 1.0);
    std::vector<double> fy(size, 10.0);
    std::vector<double> fz(size, 100.0);
    const auto stats =
        exchange_sum_nodal(comm, cube, n, &fx, &fy, &fz, 600);
    EXPECT_EQ(stats.messages, cube.neighbor_count(ctx.rank()));
    // Center-corner node of the 2x2x2 cube is shared by all 8 ranks.
    const auto c = cube.coords_of(ctx.rank());
    const int ci = c.rx == 0 ? n - 1 : 0;
    const int cj = c.ry == 0 ? n - 1 : 0;
    const int ck = c.rz == 0 ? n - 1 : 0;
    const auto idx =
        (static_cast<std::size_t>(ck) * n + static_cast<std::size_t>(cj)) * n +
        static_cast<std::size_t>(ci);
    EXPECT_DOUBLE_EQ(fx[idx], 8.0);
    EXPECT_DOUBLE_EQ(fy[idx], 80.0);
    EXPECT_DOUBLE_EQ(fz[idx], 800.0);
  });
}

TEST(ExchangeSumNodal, SingleRankNoop) {
  World world(1, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const CubeDecomposition cube(1);
    std::vector<double> f(27, 3.0);
    const auto stats = exchange_sum_nodal(comm, cube, 3, &f, nullptr,
                                          nullptr, 700);
    EXPECT_EQ(stats.messages, 0);
    for (const double v : f) EXPECT_DOUBLE_EQ(v, 3.0);
  });
}

TEST(ExchangeSumNodal, ModeledModeMovesBytesOnly) {
  World world(8, ideal_options());
  std::vector<double> times(8);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const CubeDecomposition cube(8);
    const auto stats = exchange_sum_nodal(comm, cube, 49, nullptr, nullptr,
                                          nullptr, 800);
    EXPECT_EQ(stats.messages, 7);
    EXPECT_GT(stats.bytes, 0u);
    times[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  for (const double t : times) EXPECT_GT(t, 0.0);
}

TEST(ExchangeElemFaces, FaceLayersShipped) {
  World world(8, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const CubeDecomposition cube(8);
    const int s = 4;
    std::vector<double> field(static_cast<std::size_t>(s) * s * s,
                              static_cast<double>(ctx.rank()));
    const auto stats = exchange_elem_faces(comm, cube, s, &field, 900);
    EXPECT_EQ(stats.messages, 3);  // corner rank of a 2x2x2 cube: 3 faces
    EXPECT_EQ(stats.bytes, 3u * s * s * sizeof(double));
  });
}

TEST(ExchangeElemFaces, ModeledMode) {
  World world(27, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const CubeDecomposition cube(27);
    const auto stats = exchange_elem_faces(comm, cube, 16, nullptr, 950);
    int faces = 0;
    for (const auto [dx, dy, dz] :
         {std::array{-1, 0, 0}, std::array{1, 0, 0}, std::array{0, -1, 0},
          std::array{0, 1, 0}, std::array{0, 0, -1}, std::array{0, 0, 1}}) {
      if (cube.neighbor(ctx.rank(), dx, dy, dz) >= 0) ++faces;
    }
    EXPECT_EQ(stats.messages, faces);
  });
}

}  // namespace
