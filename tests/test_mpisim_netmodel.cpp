// Tests for the network model and the machine presets.
#include <gtest/gtest.h>

#include "mpisim/machine.hpp"
#include "mpisim/netmodel.hpp"

namespace {

using namespace mpisect::mpisim;

NetworkModel plain_net() {
  NetworkModel net;
  net.intra_node = LinkParams{1e-6, 1e9};
  net.inter_node = LinkParams{5e-6, 0.5e9};
  net.cores_per_node = 4;
  net.jitter.kind = JitterModel::Kind::None;
  return net;
}

TEST(LinkParams, CostIsLatencyPlusBandwidth) {
  const LinkParams link{2e-6, 1e9};
  EXPECT_DOUBLE_EQ(link.cost(0), 2e-6);
  EXPECT_DOUBLE_EQ(link.cost(1000), 2e-6 + 1e-6);
}

TEST(NetworkModel, NodePlacementBlocks) {
  const NetworkModel net = plain_net();
  EXPECT_EQ(net.node_of(0), 0);
  EXPECT_EQ(net.node_of(3), 0);
  EXPECT_EQ(net.node_of(4), 1);
  EXPECT_TRUE(net.same_node(0, 3));
  EXPECT_FALSE(net.same_node(3, 4));
}

TEST(NetworkModel, IntraVsInterCost) {
  const NetworkModel net = plain_net();
  const double intra = net.transfer_cost(0, 1, 1024, 0);
  const double inter = net.transfer_cost(0, 5, 1024, 0);
  EXPECT_LT(intra, inter);
  EXPECT_DOUBLE_EQ(intra, 1e-6 + 1024.0 / 1e9);
  EXPECT_DOUBLE_EQ(inter, 5e-6 + 1024.0 / 0.5e9);
}

TEST(NetworkModel, NoJitterIsDeterministicAndExact) {
  const NetworkModel net = plain_net();
  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    EXPECT_DOUBLE_EQ(net.transfer_cost(0, 1, 100, seq),
                     net.transfer_cost(0, 1, 100, seq));
    EXPECT_DOUBLE_EQ(net.transfer_cost(0, 1, 100, seq), 1e-6 + 1e-7);
  }
}

TEST(NetworkModel, JitterDeterministicPerSeq) {
  NetworkModel net = plain_net();
  net.jitter.kind = JitterModel::Kind::Lognormal;
  net.jitter.rel_sigma = 0.3;
  const double a = net.transfer_cost(0, 1, 1000, 7);
  const double b = net.transfer_cost(0, 1, 1000, 7);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = net.transfer_cost(0, 1, 1000, 8);
  EXPECT_NE(a, c);  // different sequence, different draw
}

TEST(NetworkModel, JitterNeverNegative) {
  NetworkModel net = plain_net();
  net.jitter.kind = JitterModel::Kind::Gaussian;
  net.jitter.rel_sigma = 0.9;  // extreme: clamp must hold
  net.jitter.add_sigma = 1e-5;
  for (std::uint64_t seq = 0; seq < 2000; ++seq) {
    EXPECT_GE(net.transfer_cost(0, 5, 100, seq), 0.0);
  }
}

TEST(NetworkModel, EdgeIdentityMatters) {
  NetworkModel net = plain_net();
  net.jitter.kind = JitterModel::Kind::Lognormal;
  net.jitter.rel_sigma = 0.3;
  // Same locality class, different edges: independent draws.
  EXPECT_NE(net.transfer_cost(0, 1, 1000, 3), net.transfer_cost(1, 2, 1000, 3));
}

TEST(NetworkModel, SpikesAreRareButLarge) {
  NetworkModel net = plain_net();
  net.jitter.kind = JitterModel::Kind::Lognormal;
  net.jitter.rel_sigma = 0.0;
  net.jitter.spike_prob = 0.05;
  net.jitter.spike_mean = 1.0;  // huge vs the 1us base
  int spikes = 0;
  const int n = 4000;
  for (std::uint64_t seq = 0; seq < n; ++seq) {
    if (net.transfer_cost(0, 1, 0, seq) > 0.1) ++spikes;
  }
  const double rate = static_cast<double>(spikes) / n;
  EXPECT_GT(rate, 0.02);
  EXPECT_LT(rate, 0.09);
}

TEST(NetworkModel, CpuOverheadScalesBase) {
  NetworkModel net = plain_net();
  EXPECT_DOUBLE_EQ(net.cpu_overhead(3, 1e-7, 0, 0), 1e-7);  // no jitter
}

TEST(MachinePresets, Topologies) {
  const auto nehalem = MachineModel::nehalem_cluster();
  EXPECT_EQ(nehalem.total_cores(), 456);
  EXPECT_EQ(nehalem.hw_threads_per_core, 1);

  const auto knl = MachineModel::knl();
  EXPECT_EQ(knl.total_cores(), 68);
  EXPECT_EQ(knl.total_hw_threads(), 272);

  const auto bdw = MachineModel::broadwell_2s();
  EXPECT_EQ(bdw.total_cores(), 36);
  EXPECT_EQ(bdw.total_hw_threads(), 72);
}

TEST(MachinePresets, ComputeSeconds) {
  const auto m = MachineModel::ideal();
  EXPECT_DOUBLE_EQ(m.compute_seconds(1e9), 1.0);
  EXPECT_DOUBLE_EQ(m.compute_seconds(0.0), 0.0);
}

TEST(MachineCapacity, LinearWithinCores) {
  const auto m = MachineModel::ideal();
  EXPECT_DOUBLE_EQ(m.thread_capacity(1, 8.0), 1.0);
  EXPECT_DOUBLE_EQ(m.thread_capacity(4, 8.0), 4.0);
  EXPECT_DOUBLE_EQ(m.thread_capacity(8, 8.0), 8.0);
}

TEST(MachineCapacity, SmtLayersAddMarginalYield) {
  auto m = MachineModel::knl();
  const double c68 = m.thread_capacity(68, 68.0);
  const double c136 = m.thread_capacity(136, 68.0);
  const double c272 = m.thread_capacity(272, 68.0);
  EXPECT_DOUBLE_EQ(c68, 68.0);
  EXPECT_NEAR(c136, 68.0 * (1.0 + 0.32), 1e-9);
  EXPECT_GT(c272, c136);
  // 4th layer contributes least.
  EXPECT_LT(c272 - m.thread_capacity(204, 68.0),
            c136 - c68);
}

TEST(MachineCapacity, SharedCoresShrinkCapacity) {
  const auto m = MachineModel::knl();
  // A rank confined to 2.5 cores cannot exceed ~2.5 + SMT layers.
  const double cap = m.thread_capacity(4, 2.5);
  EXPECT_LT(cap, 4.0);
  EXPECT_GT(cap, 2.5);
}

TEST(MachineCapacity, DegenerateInputs) {
  const auto m = MachineModel::ideal();
  EXPECT_DOUBLE_EQ(m.thread_capacity(0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(m.thread_capacity(4, 0.0), 0.0);
  EXPECT_GT(m.thread_capacity(1000, 1.0), 0.0);  // never zero for t>0,c>0
}

}  // namespace
