// Offline happens-before analyzer: recorded-frame interpretation must be
// bit-identical to the replay's recorded frame (critical-path total ==
// replay makespan exactly), match sets must flag the seeded wildcard race
// with the concrete alternate sender, the latent-deadlock pass must find
// the wait-for cycle an alternate matching produces in a run that
// completed, and deterministic traces must analyze to zero findings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/report.hpp"
#include "apps/convolution/convolution.hpp"
#include "checker/diagnostics.hpp"
#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/message.hpp"
#include "mpisim/runtime.hpp"
#include "telemetry/registry.hpp"
#include "trace/events.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

using namespace mpisect;

mpisim::WorldOptions jittery_options(std::uint64_t seed = 0x5EED) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = seed;
  return opts;
}

trace::TraceFile record_body(int ranks,
                             const std::function<void(mpisim::Ctx&)>& body,
                             std::uint64_t seed = 0x5EED) {
  mpisim::World world(ranks, jittery_options(seed));
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "fixture"});
  world.run(body);
  return rec->finish();
}

trace::TraceFile record_convolution(int ranks, int steps) {
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  return record_body(ranks, std::ref(app));
}

// Rank 0's wildcard receive has two concurrent eligible senders (rank 1,
// recorded, and the causally independent rank 2). Both matchings complete.
void race_body(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  char buf[4] = {};
  static const char payload[4] = {};
  switch (world.rank()) {
    case 0:
      world.recv(buf, sizeof buf, mpisim::kAnySource, 5);
      world.recv(buf, sizeof buf, mpisim::kAnySource, 5);
      break;
    case 1:
      world.send(payload, sizeof payload, 0, 5);
      world.send(payload, sizeof payload, 2, 9);
      break;
    case 2:
      world.recv(buf, sizeof buf, 1, 9);
      world.send(payload, sizeof payload, 0, 5);
      break;
    default:
      break;
  }
}

// Same race, but the alternate matching starves rank 0's second receive
// while rank 2 waits on rank 0: a latent 0 <-> 2 wait-for cycle.
void latent_body(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  char buf[4] = {};
  static const char payload[4] = {};
  switch (world.rank()) {
    case 0:
      world.recv(buf, sizeof buf, mpisim::kAnySource, 5);
      world.recv(buf, sizeof buf, 2, 5);
      world.send(payload, sizeof payload, 2, 6);
      break;
    case 1:
      world.send(payload, sizeof payload, 0, 5);
      world.send(payload, sizeof payload, 2, 9);
      break;
    case 2:
      world.recv(buf, sizeof buf, 1, 9);
      world.send(payload, sizeof payload, 0, 5);
      world.recv(buf, sizeof buf, 0, 6);
      break;
    default:
      break;
  }
}

TEST(AnalysisInterp, ReproducesRecordedFinalTimesBitExactly) {
  const trace::TraceFile tf = record_convolution(8, 10);
  const analysis::InterpResult in = analysis::interpret(tf);
  ASSERT_EQ(in.final_times.size(), tf.ranks.size());
  for (std::size_t r = 0; r < tf.ranks.size(); ++r) {
    EXPECT_EQ(in.final_times[r], tf.ranks[r].t_final) << "rank " << r;
  }
}

TEST(AnalysisInterp, MakespanMatchesReplayBitExactly) {
  const trace::TraceFile tf = record_convolution(8, 10);
  const analysis::InterpResult in = analysis::interpret(tf);
  const trace::ReplayResult rr = trace::replay(tf, tf.header.machine);
  EXPECT_EQ(in.makespan, rr.makespan);  // bitwise, not approx
}

TEST(AnalysisInterp, DeterministicTraceSkipsVectorClocks) {
  const trace::TraceFile tf = record_convolution(4, 5);
  const analysis::InterpResult in = analysis::interpret(tf);
  EXPECT_FALSE(in.has_wildcard);
  EXPECT_TRUE(in.envelopes_recorded);
  EXPECT_TRUE(in.clocks.empty());
}

TEST(AnalysisCriticalPath, TotalEqualsReplayMakespanBitExactly) {
  const trace::TraceFile tf = record_convolution(8, 10);
  const analysis::AnalysisResult res = analysis::analyze(tf);
  const trace::ReplayResult rr = trace::replay(tf, tf.header.machine);
  EXPECT_EQ(res.critical_path.t_total, rr.makespan);  // bitwise
  EXPECT_EQ(res.critical_path.end_rank, res.interp.last_rank);
  EXPECT_GT(res.critical_path.length, 0u);
}

TEST(AnalysisCriticalPath, SlackOfLastRankIsZero) {
  const trace::TraceFile tf = record_convolution(8, 10);
  const analysis::AnalysisResult res = analysis::analyze(tf);
  ASSERT_GE(res.critical_path.end_rank, 0);
  EXPECT_EQ(res.critical_path.rank_slack[static_cast<std::size_t>(
                res.critical_path.end_rank)],
            0.0);
}

TEST(AnalysisRaces, FlagsWildcardRaceWithConcreteAlternate) {
  const trace::TraceFile tf = record_body(3, race_body);
  const analysis::AnalysisResult res = analysis::analyze(tf);
  ASSERT_EQ(res.races.size(), 1u);
  const analysis::RaceFinding& rf = res.races[0];
  const analysis::RecvInfo& rv = res.interp.recvs[rf.recv_slot];
  EXPECT_EQ(rv.rank, 0);
  EXPECT_EQ(rv.post_src, mpisim::kAnySource);
  ASSERT_EQ(rf.alternates.size(), 1u);
  // The recorded match is rank 1 (causally first); the alternate is the
  // concurrent rank 2 send.
  EXPECT_EQ(rv.matched_src, 1);
  EXPECT_EQ(rf.alternates[0].src, 2);
  EXPECT_EQ(rf.alternates[0].tag, 5);
  // Both matchings complete: no latent deadlock.
  EXPECT_TRUE(res.latent.empty());
}

TEST(AnalysisRaces, RaceDiagnosticNamesAllAlternateSenders) {
  const trace::TraceFile tf = record_body(3, race_body);
  const analysis::AnalysisResult res = analysis::analyze(tf);
  ASSERT_EQ(res.diagnostics.size(), 1u);
  const checker::Diagnostic& d = res.diagnostics[0];
  EXPECT_EQ(d.category, checker::Category::MessageRace);
  EXPECT_EQ(d.severity, checker::Severity::Warning);
  EXPECT_EQ(d.rank, 0);
  EXPECT_NE(d.message.find("rank 2"), std::string::npos);
  EXPECT_NE(d.site.find("ANY_SOURCE"), std::string::npos);
}

TEST(AnalysisLatent, FindsWaitForCycleInAlternateMatching) {
  const trace::TraceFile tf = record_body(3, latent_body);
  const analysis::AnalysisResult res = analysis::analyze(tf);
  ASSERT_EQ(res.races.size(), 1u);
  ASSERT_EQ(res.latent.size(), 1u);
  const analysis::LatentDeadlock& ld = res.latent[0];
  EXPECT_EQ(ld.forced.src, 2);
  ASSERT_EQ(ld.analysis.cycles.size(), 1u);
  const auto& cyc = ld.analysis.cycles[0].ranks;
  EXPECT_EQ(cyc.size(), 2u);
  EXPECT_NE(std::find(cyc.begin(), cyc.end(), 0), cyc.end());
  EXPECT_NE(std::find(cyc.begin(), cyc.end(), 2), cyc.end());
  // Lowered as an error diagnostic (races are warnings).
  ASSERT_EQ(res.diagnostics.size(), 2u);
  EXPECT_EQ(res.diagnostics[1].category, checker::Category::LatentDeadlock);
  EXPECT_EQ(res.diagnostics[1].severity, checker::Severity::Error);
  EXPECT_EQ(res.error_count(), 1u);
}

TEST(AnalysisLatent, CompletedAlternateMatchingIsNotReported) {
  const trace::TraceFile tf = record_body(3, race_body);
  const analysis::AnalysisResult res = analysis::analyze(tf);
  EXPECT_EQ(res.races.size(), 1u);
  EXPECT_TRUE(res.latent.empty());
  EXPECT_EQ(res.error_count(), 0u);
}

TEST(AnalysisClean, DeterministicTraceHasZeroFindings) {
  const trace::TraceFile tf = record_convolution(8, 10);
  const analysis::AnalysisResult res = analysis::analyze(tf);
  EXPECT_TRUE(res.diagnostics.empty());
  EXPECT_TRUE(res.races.empty());
  EXPECT_TRUE(res.latent.empty());
  EXPECT_EQ(res.finding_count(), 0u);
}

TEST(AnalysisCompat, MissingEnvelopesSkipRacePassesWithInfoDiag) {
  trace::TraceFile tf = record_body(3, race_body);
  // Simulate a pre-v3 trace: strip the posted envelopes.
  for (auto& rs : tf.ranks) {
    for (auto& ev : rs.events) {
      if (ev.kind == trace::EventKind::RecvPost ||
          ev.kind == trace::EventKind::Probe) {
        ev.post_src = trace::Event::kNotRecorded;
        ev.tag = 0;
      }
    }
  }
  const analysis::AnalysisResult res = analysis::analyze(tf);
  EXPECT_FALSE(res.interp.envelopes_recorded);
  EXPECT_TRUE(res.races.empty());
  EXPECT_TRUE(res.latent.empty());
  ASSERT_EQ(res.diagnostics.size(), 1u);
  EXPECT_EQ(res.diagnostics[0].severity, checker::Severity::Info);
  EXPECT_EQ(res.finding_count(), 0u);  // Info is not a finding: exit 0
  // The critical path is still available — it needs no envelopes.
  const trace::ReplayResult rr = trace::replay(tf, tf.header.machine);
  EXPECT_EQ(res.critical_path.t_total, rr.makespan);
}

TEST(AnalysisDeterminism, SameTraceAnalyzesToByteIdenticalReports) {
  const trace::TraceFile tf = record_body(3, latent_body);
  const analysis::AnalysisResult a = analysis::analyze(tf);
  const analysis::AnalysisResult b = analysis::analyze(tf);
  EXPECT_EQ(analysis::render_json(a), analysis::render_json(b));
  EXPECT_EQ(analysis::render_text(a), analysis::render_text(b));
}

TEST(AnalysisSections, CriticalPathAttributesSectionTime) {
  const auto body = [](mpisim::Ctx& ctx) {
    mpisim::Comm world = ctx.world_comm();
    sections::MPIX_Section_enter(world, "RING");
    char buf[8] = {};
    static const char payload[8] = {};
    const int next = (world.rank() + 1) % world.size();
    const int prev = (world.rank() + world.size() - 1) % world.size();
    for (int i = 0; i < 4; ++i) {
      if (world.rank() == 0) {
        world.send(payload, sizeof payload, next, 3);
        world.recv(buf, sizeof buf, prev, 3);
      } else {
        world.recv(buf, sizeof buf, prev, 3);
        world.send(payload, sizeof payload, next, 3);
      }
    }
    sections::MPIX_Section_exit(world, "RING");
  };
  const trace::TraceFile tf = record_body(3, body);
  const analysis::AnalysisResult res = analysis::analyze(tf);
  EXPECT_TRUE(res.diagnostics.empty());
  double ring_s = 0.0;
  double total_s = 0.0;
  for (const auto& sec : res.critical_path.sections) {
    total_s += sec.seconds;
    if (sec.label < res.labels.size() && res.labels[sec.label] == "RING") {
      ring_s += sec.seconds;
    }
  }
  EXPECT_GT(ring_s, 0.0);
  EXPECT_GE(ring_s / total_s, 0.9);  // the ring dominates the path
}

TEST(AnalysisTelemetry, CountersMatchFindingsAndPath) {
  const trace::TraceFile tf = record_body(3, latent_body);
  const analysis::AnalysisResult res = analysis::analyze(tf);
  telemetry::Registry reg(res.nranks);
  analysis::fill_telemetry(res, reg);
  const auto races = reg.find("analysis.races");
  const auto latent = reg.find("analysis.latent_deadlocks");
  const auto pev = reg.find("analysis.path_events");
  ASSERT_TRUE(races && latent && pev);
  EXPECT_EQ(reg.value(*races, 0), 1.0);  // the race is at rank 0
  EXPECT_EQ(reg.total(*races), 1.0);
  EXPECT_EQ(reg.total(*latent), 1.0);
  EXPECT_EQ(reg.total(*pev),
            static_cast<double>(res.critical_path.length));
}

}  // namespace
