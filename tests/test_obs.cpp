// Self-observability contracts: the span tracer is free when disabled,
// drops oldest (never UB) on overflow, renders well-formed exports, and —
// the load-bearing property — enabling it changes nothing about the
// simulation: final virtual times, trace bytes and telemetry CSV are
// bit-identical across backends and worker counts. Plus the MPISECT_LOG
// parse edge cases, the per-rank memory accountant, and the serve
// {"op":"metrics"} scrape surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"
#include "obs/counters.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "serve/service.hpp"
#include "support/log.hpp"
#include "telemetry/export.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/timeline.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace mpisect;

// --- MPISECT_LOG parsing edge cases (satellite 3) ------------------------

TEST(ObsLog, ParseLogLevelAcceptsCanonicalNames) {
  using support::LogLevel;
  EXPECT_EQ(support::parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(support::parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(support::parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(support::parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(support::parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(support::parse_log_level("off"), LogLevel::Off);
}

TEST(ObsLog, ParseLogLevelAcceptsAliasesAndMixedCase) {
  using support::LogLevel;
  EXPECT_EQ(support::parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(support::parse_log_level("none"), LogLevel::Off);
  EXPECT_EQ(support::parse_log_level("WARN"), LogLevel::Warn);
  EXPECT_EQ(support::parse_log_level("WaRnInG"), LogLevel::Warn);
  EXPECT_EQ(support::parse_log_level("  info  "), LogLevel::Info);
  EXPECT_EQ(support::parse_log_level("\tERROR\n"), LogLevel::Error);
}

TEST(ObsLog, ParseLogLevelRejectsUnknownAndEmpty) {
  EXPECT_FALSE(support::parse_log_level("").has_value());
  EXPECT_FALSE(support::parse_log_level("   ").has_value());
  EXPECT_FALSE(support::parse_log_level("verbose").has_value());
  EXPECT_FALSE(support::parse_log_level("warn ing").has_value());
  EXPECT_FALSE(support::parse_log_level("2").has_value());
}

// --- span tracer ---------------------------------------------------------

TEST(ObsSpans, DisabledCostsNoRecording) {
  obs::set_enabled_for_test(false);
  obs::reset_spans_for_test();
  {
    const obs::Span s("should.not.appear");
  }
  EXPECT_EQ(obs::spans_recorded(), 0u);
  EXPECT_TRUE(obs::snapshot_spans().empty());
}

TEST(ObsSpans, EnabledRecordsNamedSpans) {
  obs::set_enabled_for_test(true);
  obs::reset_spans_for_test();
  {
    const obs::Span s("unit.test.span");
  }
  obs::record_span("unit.manual.span", 10, 5);
  const auto spans = obs::snapshot_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "unit.test.span");
  EXPECT_STREQ(spans[1].name, "unit.manual.span");
  EXPECT_EQ(spans[1].t0_ns, 10u);
  EXPECT_EQ(spans[1].dur_ns, 5u);
  EXPECT_EQ(obs::spans_dropped(), 0u);
  obs::set_enabled_for_test(false);
}

TEST(ObsSpans, OverflowKeepsNewestAndCountsDrops) {
  obs::set_enabled_for_test(true);
  obs::set_ring_capacity(8);
  obs::reset_spans_for_test();
  for (std::uint64_t i = 0; i < 20; ++i) {
    obs::record_span("overflow.span", /*t0_ns=*/i, /*dur_ns=*/1);
  }
  const auto spans = obs::snapshot_spans();
  ASSERT_EQ(spans.size(), 8u);  // ring keeps the newest `capacity` spans
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].t0_ns, 12 + i);  // oldest surviving span is #12
  }
  EXPECT_EQ(obs::spans_recorded(), 20u);
  EXPECT_EQ(obs::spans_dropped(), 12u);
  obs::set_ring_capacity(8192);
  obs::reset_spans_for_test();
  obs::set_enabled_for_test(false);
}

TEST(ObsSpans, ChromeJsonAndCsvRendersAreWellFormed) {
  std::vector<obs::SpanRecord> spans;
  spans.push_back({"a.b", 1000, 2000, 0});
  spans.push_back({"c \"quoted\"", 5000, 1, 3});
  const std::string json = obs::render_chrome_json(spans);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"a.b\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("spans_dropped"), std::string::npos);

  const std::string csv = obs::render_csv(spans);
  EXPECT_NE(csv.find("name,tid,t0_ns,dur_ns\n"), std::string::npos);
  EXPECT_NE(csv.find("a.b,0,1000,2000\n"), std::string::npos);
}

TEST(ObsSpans, WriteSelfTracePicksFormatByExtension) {
  obs::set_enabled_for_test(true);
  obs::reset_spans_for_test();
  obs::record_span("write.span", 1, 2);
  const std::string json_path = "test_obs_trace.json";
  const std::string csv_path = "test_obs_trace.csv";
  ASSERT_TRUE(obs::write_self_trace(json_path));
  ASSERT_TRUE(obs::write_self_trace(csv_path));
  const auto slurp = [](const std::string& p) {
    std::string out;
    if (std::FILE* f = std::fopen(p.c_str(), "rb")) {
      char buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
      std::fclose(f);
    }
    return out;
  };
  EXPECT_NE(slurp(json_path).find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(slurp(csv_path).find("write.span,"), std::string::npos);
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
  obs::reset_spans_for_test();
  obs::set_enabled_for_test(false);
}

// --- bit-identity: tracing must not perturb the simulation ---------------

struct RunResult {
  std::vector<double> final_times;
  std::vector<std::uint8_t> trace_bytes;
  std::string telemetry_csv;
};

RunResult run_conv(mpisim::ExecBackend exec, int workers) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0x5EED;
  opts.exec = exec;
  opts.workers = workers;
  mpisim::World world(8, opts);
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "convolution"});
  telemetry::SamplerOptions sopts;
  sopts.dt = 0.01;
  auto sampler = telemetry::TelemetrySampler::install(world, sopts);

  apps::conv::ConvolutionConfig cfg;
  cfg.steps = 10;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));

  RunResult r;
  r.final_times = world.final_times();
  r.trace_bytes = rec->finish().encode();
  r.telemetry_csv =
      telemetry::timeline_csv(telemetry::build_timeline(*sampler));
  return r;
}

TEST(ObsSpans, SelfTracePerturbsNothingAcrossBackends) {
  struct Config {
    mpisim::ExecBackend exec;
    int workers;
  };
  const Config configs[] = {
      {mpisim::ExecBackend::Cooperative, 1},
      {mpisim::ExecBackend::Cooperative, 4},
      {mpisim::ExecBackend::Threads, 0},
  };
  for (const Config& c : configs) {
    obs::set_enabled_for_test(false);
    const RunResult off = run_conv(c.exec, c.workers);
    obs::set_enabled_for_test(true);
    const RunResult on = run_conv(c.exec, c.workers);
    obs::set_enabled_for_test(false);
    EXPECT_EQ(off.final_times, on.final_times);
    EXPECT_EQ(off.trace_bytes, on.trace_bytes);
    EXPECT_EQ(off.telemetry_csv, on.telemetry_csv);
    EXPECT_GT(obs::spans_recorded(), 0u);  // the on-run actually traced
    obs::reset_spans_for_test();
  }
}

// --- per-rank memory accounting ------------------------------------------

TEST(ObsMem, ChannelChargesReachHighWaterThenDrain) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0x5EED;
  mpisim::World world(4, opts);
  world.run([](mpisim::Ctx& ctx) {
    mpisim::Comm comm = ctx.world_comm();
    std::vector<double> buf(256, static_cast<double>(ctx.rank()));
    const std::size_t bytes = buf.size() * sizeof(double);
    const int peer = ctx.rank() ^ 1;
    if ((ctx.rank() & 1) == 0) {
      comm.send(buf.data(), bytes, peer, /*tag=*/7);
      comm.recv(buf.data(), bytes, peer, /*tag=*/9);
    } else {
      comm.recv(buf.data(), bytes, peer, /*tag=*/7);
      comm.send(buf.data(), bytes, peer, /*tag=*/9);
    }
  });
  const obs::MemAccount& mem = world.mem_account();
  // Every rank queued at least one entry at some point...
  EXPECT_GT(mem.total_hwm(), 0u);
  EXPECT_GT(mem.bytes_per_rank(), 0.0);
  EXPECT_GE(mem.peak_rank_hwm(),
            static_cast<std::uint64_t>(256 * sizeof(double)));
  // ...and everything matched: nothing is still charged after the run.
  EXPECT_EQ(mem.total_current(), 0u);
}

TEST(ObsMem, UpdateMaxIsMonotone) {
  std::atomic<std::uint64_t> hwm{10};
  obs::update_max(hwm, 5);
  EXPECT_EQ(hwm.load(), 10u);
  obs::update_max(hwm, 25);
  EXPECT_EQ(hwm.load(), 25u);
}

// --- metrics surfaces ----------------------------------------------------

TEST(ObsMetrics, PrometheusTextExposesCoreSeries) {
  const std::string text = obs::prometheus_text();
  for (const char* name :
       {"obs_spans_recorded", "obs_spans_dropped", "obs_self_trace_enabled",
        "obs_codec_compress_bytes_in", "obs_sched_parks",
        "obs_mem_channel_bytes_hwm", "obs_mem_bytes_per_rank"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  // Exposition format: every series has a TYPE line.
  EXPECT_NE(text.find("# TYPE obs_spans_recorded counter"),
            std::string::npos);
}

TEST(ObsMetrics, WorldRunFoldsSchedulerAndMemoryCounters) {
  obs::counters().reset();
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0x5EED;
  mpisim::World world(4, opts);
  world.run([](mpisim::Ctx& ctx) {
    mpisim::Comm comm = ctx.world_comm();
    const double mine = static_cast<double>(ctx.rank());
    double sum = 0.0;
    comm.allreduce(&mine, &sum, 1, mpisim::Datatype::Double,
                   mpisim::ReduceOp::Sum);
  });
  EXPECT_GT(obs::counters().sched_parks.load(), 0u);
  EXPECT_GT(obs::counters().sched_wakes.load(), 0u);
  EXPECT_EQ(obs::counters().mem_ranks.load(), 4u);
  EXPECT_GT(obs::counters().mem_stack_bytes_hwm.load(), 0u);
}

TEST(ObsServe, MetricsOpMergesServeAndObsSeries) {
  serve::Service svc;
  const std::string resp = svc.handle_line("{\"id\":1,\"op\":\"metrics\"}");
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(resp.find("mpisect_serve_requests"), std::string::npos);
  EXPECT_NE(resp.find("obs_spans_recorded"), std::string::npos);
  // Unknown ops must now advertise the metrics surface.
  const std::string err = svc.handle_line(
      "{\"id\":2,\"op\":\"nope\",\"trace\":\"x.mpst\",\"params\":{}}");
  EXPECT_NE(err.find("metrics"), std::string::npos);
}

}  // namespace
