// The cooperative rank scheduler: differential equivalence against the
// thread-per-rank backend (virtual time is a pure function of program
// order + seeded draws, never of scheduling), worker-count independence,
// scale (256 ranks on a fixed worker pool), exact deadlock quiescence,
// and the max-accumulator / multi-run lifecycle fixes that rode along.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/collsync.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/scheduler.hpp"
#include "profiler/section_profiler.hpp"
#include "telemetry/export.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/timeline.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace mpisect;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::Err;
using mpisim::ExecBackend;
using mpisim::MachineModel;
using mpisim::MpiError;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions nehalem_options(ExecBackend exec, int workers = 0) {
  WorldOptions opts;
  opts.machine = MachineModel::nehalem_cluster();
  opts.start_skew_sigma = 1e-4;  // exercise the seeded jitter draws
  opts.exec = exec;
  opts.workers = workers;
  return opts;
}

apps::conv::ConvolutionConfig conv_config(int steps) {
  apps::conv::ConvolutionConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  return cfg;
}

struct ConvRun {
  std::vector<double> final_times;
  std::vector<profiler::SectionProfiler::SectionTotals> profile;
  std::vector<std::uint8_t> trace_bytes;
  std::string telemetry_csv;
};

ConvRun run_convolution(ExecBackend exec, int workers = 0, int ranks = 8) {
  World world(ranks, nehalem_options(exec, workers));
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "convolution"});
  // All four PMPI tools stacked; the sampled series must be a pure
  // function of per-rank program order, like everything else compared
  // below.
  telemetry::SamplerOptions sopts;
  sopts.dt = 1e-3;
  auto sampler = telemetry::TelemetrySampler::install(world, sopts);
  apps::conv::ConvolutionApp app(conv_config(10));
  world.run(std::ref(app));
  const telemetry::Timeline tl = telemetry::build_timeline(*sampler);
  return ConvRun{world.final_times(), prof.totals(), rec->finish().encode(),
                 telemetry::timeline_csv(tl)};
}

TEST(Scheduler, DefaultBackendIsCooperative) {
  World world(2, WorldOptions{});
  EXPECT_STREQ(world.executor().backend_name(), "cooperative");
  World threads(2, nehalem_options(ExecBackend::Threads));
  EXPECT_STREQ(threads.executor().backend_name(), "threads");
}

// The property the whole trace/replay layer depends on: both backends
// produce bit-identical virtual time, per-section profiles, and trace
// bytes for the same seed.
TEST(Scheduler, DifferentialConvolutionBitIdentical) {
  const ConvRun coop = run_convolution(ExecBackend::Cooperative, 4);
  const ConvRun thr = run_convolution(ExecBackend::Threads);

  ASSERT_EQ(coop.final_times.size(), thr.final_times.size());
  for (std::size_t r = 0; r < coop.final_times.size(); ++r) {
    EXPECT_EQ(coop.final_times[r], thr.final_times[r]) << "rank " << r;
  }

  ASSERT_EQ(coop.profile.size(), thr.profile.size());
  for (std::size_t i = 0; i < coop.profile.size(); ++i) {
    EXPECT_EQ(coop.profile[i].label, thr.profile[i].label);
    EXPECT_EQ(coop.profile[i].instances, thr.profile[i].instances);
    EXPECT_EQ(coop.profile[i].total_time, thr.profile[i].total_time)
        << coop.profile[i].label;
    EXPECT_EQ(coop.profile[i].mpi_time, thr.profile[i].mpi_time)
        << coop.profile[i].label;
  }

  EXPECT_EQ(coop.trace_bytes, thr.trace_bytes)
      << "recorded .mpst bytes must not depend on the scheduler";
  EXPECT_EQ(coop.telemetry_csv, thr.telemetry_csv)
      << "exported telemetry series must not depend on the scheduler";
}

TEST(Scheduler, DifferentialLuleshBitIdentical) {
  auto run = [](ExecBackend exec) {
    World world(8, nehalem_options(exec));
    sections::SectionRuntime::install(world);
    apps::lulesh::LuleshConfig cfg;
    cfg.s = 4;
    cfg.steps = 3;
    apps::lulesh::LuleshApp app(cfg);
    world.run(std::ref(app));
    return std::make_pair(world.final_times(), app.result().total_energy());
  };
  const auto coop = run(ExecBackend::Cooperative);
  const auto thr = run(ExecBackend::Threads);
  ASSERT_EQ(coop.first.size(), thr.first.size());
  for (std::size_t r = 0; r < coop.first.size(); ++r) {
    EXPECT_EQ(coop.first[r], thr.first[r]) << "rank " << r;
  }
  EXPECT_EQ(coop.second, thr.second);
}

// Virtual time must also be independent of how many workers multiplex the
// fibers — 1 worker serializes every rank, 4 interleave them.
TEST(Scheduler, WorkerCountDoesNotAffectVirtualTime) {
  const ConvRun one = run_convolution(ExecBackend::Cooperative, 1);
  const ConvRun four = run_convolution(ExecBackend::Cooperative, 4);
  EXPECT_EQ(one.final_times, four.final_times);
  EXPECT_EQ(one.trace_bytes, four.trace_bytes);
  EXPECT_EQ(one.telemetry_csv, four.telemetry_csv);
}

// Paper-scale world on a fixed worker pool: 256 ranks was impractical with
// one OS thread per rank; the fiber scheduler runs it as a unit test.
TEST(Scheduler, ConvolutionScalesTo256Ranks) {
  World world(256, nehalem_options(ExecBackend::Cooperative));
  sections::SectionRuntime::install(world);
  apps::conv::ConvolutionConfig cfg;
  cfg.width = 512;
  cfg.height = 512;
  cfg.steps = 3;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  EXPECT_GT(world.elapsed(), 0.0);
  EXPECT_EQ(world.final_times().size(), 256u);
}

TEST(Scheduler, ResolveWorkersHonorsEnvironment) {
  EXPECT_EQ(mpisim::resolve_workers(5), 5);
  ::setenv("MPISECT_WORKERS", "3", 1);
  EXPECT_EQ(mpisim::resolve_workers(0), 3);
  EXPECT_EQ(mpisim::resolve_workers(7), 7);  // explicit beats env
  ::unsetenv("MPISECT_WORKERS");
  EXPECT_GE(mpisim::resolve_workers(0), 1);
}

// Head-to-head receives with no checker attached: the scheduler itself
// proves quiescence (every rank parked, no wake pending) and aborts —
// deterministic, no watchdog timeout involved.
TEST(Scheduler, QuiescenceAbortsDeadlockedWorld) {
  for (const ExecBackend exec :
       {ExecBackend::Cooperative, ExecBackend::Threads}) {
    World world(2, nehalem_options(exec));
    bool aborted = false;
    try {
      world.run([](Ctx& ctx) {
        Comm comm = ctx.world_comm();
        std::array<char, 4> buf{};
        comm.recv(buf.data(), buf.size(), 1 - comm.rank(), 0);
      });
    } catch (const MpiError& err) {
      aborted = err.code() == Err::Aborted;
    }
    EXPECT_TRUE(aborted) << world.executor().backend_name();
    EXPECT_TRUE(world.aborted());
  }
}

// elapsed() seeds with -infinity: a run whose clocks end up negative (here
// via exact negative compute, in practice via replay rescaling) must not
// report a clamped 0.0 makespan.
TEST(Scheduler, ElapsedHandlesNegativeFinalTimes) {
  World world(2, WorldOptions{});
  world.run([](Ctx& ctx) { ctx.clock().reset(-2.0 - ctx.rank()); });
  EXPECT_DOUBLE_EQ(world.elapsed(), -2.0);
}

// Same fix inside CollSync: the round's max-entry-time must not clamp
// negative virtual times to 0.0.
TEST(Scheduler, CollSyncMaxEntryHandlesNegativeTimes) {
  auto exec = mpisim::make_executor(ExecBackend::Threads);
  std::atomic<bool> abort{false};
  mpisim::CollSync<int> sync(2, *exec, &abort);
  double max0 = 0.0;
  std::thread peer([&] {
    auto [values, t_max] = sync.exchange(0, 1, -3.0, 11);
    (void)values;
    (void)t_max;
  });
  auto [values, t_max] = sync.exchange(0, 0, -5.0, 7);
  peer.join();
  max0 = t_max;
  EXPECT_DOUBLE_EQ(max0, -3.0);
  EXPECT_EQ(values[0], 7);
  EXPECT_EQ(values[1], 11);
}

// Repeated World::run builds a fresh world communicator; the previous one
// must get its on_comm_free so comm-lifecycle accounting stays paired.
TEST(Scheduler, MultiRunEmitsWorldCommFree) {
  World world(2, WorldOptions{});
  std::vector<int> created;
  std::vector<std::pair<int, int>> freed;  // (rank, context)
  std::mutex mu;
  world.hooks().on_comm_create = [&](Ctx&, const mpisim::CommLifecycle& info) {
    const std::lock_guard lock(mu);
    created.push_back(info.context);
  };
  world.hooks().on_comm_free = [&](Ctx& ctx, int context) {
    const std::lock_guard lock(mu);
    freed.emplace_back(ctx.rank(), context);
  };

  auto noop = [](Ctx& ctx) { ctx.compute_exact(1.0); };
  world.run(noop);
  ASSERT_EQ(created.size(), 2u);
  const int first_context = created.front();
  EXPECT_TRUE(freed.empty());  // comm still alive between runs

  world.run(noop);
  ASSERT_EQ(freed.size(), 2u);
  for (const auto& [rank, context] : freed) {
    EXPECT_EQ(context, first_context);
  }
  EXPECT_EQ(created.size(), 4u);
  EXPECT_NE(created.back(), first_context);
}

// A failed second run must not leave the first run's final times behind.
TEST(Scheduler, FailedRunClearsFinalTimes) {
  World world(2, WorldOptions{});
  world.run([](Ctx& ctx) { ctx.compute_exact(1.0); });
  for (const double t : world.final_times()) EXPECT_DOUBLE_EQ(t, 1.0);

  EXPECT_THROW(world.run([](Ctx&) {
    throw std::runtime_error("rank failure");
  }),
               std::runtime_error);
  for (const double t : world.final_times()) EXPECT_DOUBLE_EQ(t, 0.0);
}

}  // namespace
