// Adaptive parallelism restraint (paper Sec. 8 future work): advisor math
// and the mini-Lulesh per-phase team plumbing.
#include <gtest/gtest.h>

#include "apps/lulesh/lulesh.hpp"
#include "core/sections/runtime.hpp"
#include "core/speedup/adaptive.hpp"
#include "profiler/section_profiler.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::speedup;

ScalingSeries series_of(const char* name,
                        std::initializer_list<std::pair<int, double>> pts) {
  ScalingSeries s(name);
  for (const auto& [p, t] : pts) s.add(p, t);
  return s;
}

TEST(Advisor, EmptyAdvisor) {
  const AdaptiveAdvisor advisor;
  EXPECT_FALSE(advisor.best_uniform().has_value());
  EXPECT_FALSE(advisor.predicted_uniform(4).has_value());
  EXPECT_DOUBLE_EQ(advisor.improvement(), 1.0);
  EXPECT_TRUE(advisor.recommend().empty());
}

TEST(Advisor, UniformPredictionSumsSections) {
  AdaptiveAdvisor advisor;
  advisor.add_section(series_of("a", {{1, 10.0}, {2, 6.0}, {4, 5.0}}));
  advisor.add_section(series_of("b", {{1, 8.0}, {2, 5.0}, {4, 7.0}}));
  EXPECT_DOUBLE_EQ(*advisor.predicted_uniform(1), 18.0);
  EXPECT_DOUBLE_EQ(*advisor.predicted_uniform(2), 11.0);
  EXPECT_DOUBLE_EQ(*advisor.predicted_uniform(4), 12.0);
  EXPECT_FALSE(advisor.predicted_uniform(8).has_value());  // unsampled
  EXPECT_EQ(*advisor.best_uniform(), 2);
}

TEST(Advisor, RecommendsPerSectionOptima) {
  AdaptiveAdvisor advisor;
  // a peaks at 4, b peaks at 1: a uniform team must compromise (best
  // uniform is t=2: 6+5=11 < t=1: 14 < t=4: 13).
  advisor.add_section(series_of("a", {{1, 10.0}, {2, 6.0}, {4, 4.0}}));
  advisor.add_section(series_of("b", {{1, 4.0}, {2, 5.0}, {4, 9.0}}));
  EXPECT_EQ(*advisor.best_uniform(), 2);
  const auto recs = advisor.recommend();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].label, "a");
  EXPECT_EQ(recs[0].threads, 4);
  EXPECT_FALSE(recs[0].restrained);  // at/above the uniform choice
  EXPECT_EQ(recs[1].threads, 1);
  EXPECT_TRUE(recs[1].restrained);   // capped below uniform
  // adaptive = 4 + 4 = 8 < best uniform 11.
  EXPECT_DOUBLE_EQ(advisor.predicted_adaptive(), 8.0);
  EXPECT_DOUBLE_EQ(advisor.improvement(), 11.0 / 8.0);
}

TEST(Advisor, NeverWorseThanUniformInModel) {
  // Property: for any section shapes, adaptive <= best uniform.
  for (int scenario = 0; scenario < 30; ++scenario) {
    AdaptiveAdvisor advisor;
    for (int sec = 0; sec < 3; ++sec) {
      ScalingSeries s("s" + std::to_string(sec));
      for (const int t : {1, 2, 4, 8, 16}) {
        const double noise =
            ((scenario * 7919 + sec * 104729 + t * 31) % 100) / 100.0;
        s.add(t, 10.0 / t + noise * t * 0.3);
      }
      advisor.add_section(std::move(s));
    }
    EXPECT_GE(advisor.improvement(), 1.0 - 1e-12) << "scenario " << scenario;
  }
}

TEST(LuleshRestraint, PerPhaseTeamsChangeOnlyTheirPhases) {
  auto run_cfg = [](int base, int nodal, int elems) {
    mpisim::WorldOptions opts;
    opts.machine = mpisim::MachineModel::knl();
    opts.machine.compute_noise_sigma = 0.0;
    mpisim::World world(1, opts);
    sections::SectionRuntime::install(world);
    profiler::SectionProfiler prof(world);
    apps::lulesh::LuleshConfig cfg;
    cfg.s = 12;
    cfg.steps = 5;
    cfg.omp_threads = base;
    cfg.nodal_threads = nodal;
    cfg.element_threads = elems;
    cfg.full_fidelity = false;
    apps::lulesh::LuleshApp app(cfg);
    world.run(std::ref(app));
    return std::pair{prof.totals_for("LagrangeNodal").mean_per_process,
                     prof.totals_for("LagrangeElements").mean_per_process};
  };
  const auto [nodal_base, elems_base] = run_cfg(8, 0, 0);
  const auto [nodal_restrained, elems_same] = run_cfg(8, 2, 0);
  // Restraining nodal to 2 threads slows ONLY the nodal phase (2 < optimum
  // here); elements keep the 8-thread time.
  EXPECT_GT(nodal_restrained, nodal_base * 1.5);
  EXPECT_NEAR(elems_same, elems_base, elems_base * 1e-9);
  const auto [nodal_same2, elems_boosted] = run_cfg(2, 2, 16);
  EXPECT_NEAR(nodal_same2, nodal_restrained, nodal_restrained * 1e-9);
  EXPECT_LT(elems_boosted, elems_base);  // 16 > 8 threads helps here
}

}  // namespace
