// End-to-end mini-Lulesh: physical sanity (stability, energy balance,
// octant symmetry), decomposition consistency (p=1 vs p=8), the 21-section
// instrumentation, and Table 7's strong-scaling arithmetic.
#include <gtest/gtest.h>

#include <set>

#include "apps/lulesh/lulesh.hpp"
#include "core/sections/runtime.hpp"
#include "profiler/section_profiler.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::apps::lulesh;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

LuleshResult run_lulesh(int p, int s, int steps, bool full = true) {
  World world(p, ideal_options());
  sections::SectionRuntime::install(world);
  LuleshConfig cfg;
  cfg.s = s;
  cfg.steps = steps;
  cfg.full_fidelity = full;
  LuleshApp app(cfg);
  world.run(std::ref(app));
  return app.result();
}

TEST(EdgeForTotalElements, Table7Configurations) {
  // Paper Table 7: 110 592 elements across the cube counts.
  EXPECT_EQ(edge_for_total_elements(110592, 1), 48);
  EXPECT_EQ(edge_for_total_elements(110592, 8), 24);
  EXPECT_EQ(edge_for_total_elements(110592, 27), 16);
  EXPECT_EQ(edge_for_total_elements(110592, 64), 12);
  EXPECT_EQ(edge_for_total_elements(110592, 2), -1);    // not a cube
  EXPECT_EQ(edge_for_total_elements(110592, 125), -1);  // no integer edge
}

TEST(LuleshPhysics, StableAndEnergyBalanced) {
  const auto r = run_lulesh(1, 6, 30);
  EXPECT_EQ(r.steps_run, 30);
  EXPECT_GT(r.sim_time, 0.0);
  EXPECT_GT(r.final_dt, 0.0);
  EXPECT_GT(r.min_volume, 0.0);  // no inverted elements
  // Internal + kinetic stays near the deposited blast energy. The scheme
  // is explicit with velocity damping, so allow a loose band.
  EXPECT_GT(r.total_energy(), 0.05);
  EXPECT_LT(r.total_energy(), 0.12);
  EXPECT_GT(r.kinetic_energy, 0.0);  // the shock is moving
}

TEST(LuleshPhysics, BlastExpandsOverTime) {
  const auto early = run_lulesh(1, 6, 5);
  const auto late = run_lulesh(1, 6, 40);
  // Kinetic energy rises as the shock expands into the quiescent gas.
  EXPECT_GT(late.kinetic_energy, early.kinetic_energy);
  EXPECT_LT(late.internal_energy, early.internal_energy + 1e-12);
}

TEST(LuleshPhysics, OctantSymmetry) {
  // The Sedov blast at the origin of the octant must stay symmetric under
  // coordinate permutation: check velocity magnitudes at permuted nodes.
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  LuleshConfig cfg;
  cfg.s = 6;
  cfg.steps = 20;
  LuleshApp app(cfg);
  // Reach into the run via a custom main that keeps the domain alive.
  DomainConfig dc;
  dc.s = cfg.s;
  dc.e0 = cfg.e0;
  world.run([&](mpisim::Ctx& ctx) {
    Domain dom(dc);
    minomp::Team team(ctx, 1);
    HydroParams hp;
    std::vector<double> vnew;
    double dt = kernel_time_constraints(&dom, team, 0, hp);
    for (int step = 0; step < cfg.steps; ++step) {
      kernel_integrate_stress(&dom, team, 0);
      kernel_hourglass(&dom, team, 0, hp);
      kernel_acceleration(&dom, team, 0);
      kernel_acceleration_bc(&dom, team, 0);
      kernel_velocity(&dom, team, 0, dt);
      kernel_position(&dom, team, 0, dt);
      kernel_kinematics(&dom, team, 0, &vnew);
      kernel_calc_q(&dom, team, 0, &vnew, dt, hp);
      kernel_eos(&dom, team, 0, &vnew, hp);
      kernel_update_volumes(&dom, team, 0, &vnew);
      dt = std::min(dt * hp.dt_growth,
                    kernel_time_constraints(&dom, team, 0, hp));
    }
    // Permutation symmetry: node (i,j,k) vs (j,i,k): |v| equal, and the
    // x/y velocity components swap.
    for (int k = 0; k < 3; ++k) {
      for (int j = 0; j < 3; ++j) {
        for (int i = 0; i < 3; ++i) {
          const auto a = dom.node_index(i, j, k);
          const auto b = dom.node_index(j, i, k);
          EXPECT_NEAR(dom.xd[a], dom.yd[b], 1e-9);
          EXPECT_NEAR(dom.yd[a], dom.xd[b], 1e-9);
          EXPECT_NEAR(dom.zd[a], dom.zd[b], 1e-9);
        }
      }
    }
  });
}

TEST(LuleshDecomposition, EightRanksMatchSingleRank) {
  // Same global problem (12^3 elements): p=1 with s=12 vs p=8 with s=6.
  const auto single = run_lulesh(1, 12, 15);
  const auto eight = run_lulesh(8, 6, 15);
  EXPECT_NEAR(eight.internal_energy, single.internal_energy,
              std::abs(single.internal_energy) * 1e-6 + 1e-9);
  EXPECT_NEAR(eight.kinetic_energy, single.kinetic_energy,
              std::abs(single.kinetic_energy) * 1e-6 + 1e-9);
  EXPECT_NEAR(eight.sim_time, single.sim_time,
              single.sim_time * 1e-9);
  EXPECT_NEAR(eight.min_volume, single.min_volume,
              std::abs(single.min_volume) * 1e-6);
}

TEST(LuleshDecomposition, TwentySevenRanks) {
  const auto single = run_lulesh(1, 6, 8);
  const auto cube27 = run_lulesh(27, 2, 8);
  EXPECT_NEAR(cube27.total_energy(), single.total_energy(),
              single.total_energy() * 1e-6);
}

TEST(LuleshSections, TwentyOneSectionsInsideTimeloop) {
  World world(8, ideal_options());
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  LuleshConfig cfg;
  cfg.s = 4;
  cfg.steps = 3;
  LuleshApp app(cfg);
  world.run(std::ref(app));

  std::set<std::string> seen;
  for (const auto& t : prof.totals()) seen.insert(t.label);
  const std::set<std::string> expected{
      "timeloop",
      "TimeIncrement",
      "LagrangeLeapFrog",
      "LagrangeNodal",
      "CalcForceForNodes",
      "IntegrateStressForElems",
      "CalcHourglassControlForElems",
      "CommForce",
      "CalcAccelerationForNodes",
      "ApplyAccelerationBC",
      "CalcVelocityForNodes",
      "CalcPositionForNodes",
      "LagrangeElements",
      "CalcLagrangeElements",
      "CalcKinematicsForElems",
      "CalcQForElems",
      "CommMonoQ",
      "ApplyMaterialPropertiesForElems",
      "EvalEOSForElems",
      "UpdateVolumesForElems",
      "CalcTimeConstraints",
  };
  EXPECT_EQ(expected.size(), 21u);  // the paper's count
  for (const auto& label : expected) {
    EXPECT_TRUE(seen.count(label)) << "missing section " << label;
  }
  // Per-step sections ran once per step on every rank.
  EXPECT_EQ(prof.totals_for("LagrangeNodal").instances, 3);
  EXPECT_EQ(prof.totals_for("timeloop").instances, 1);
  EXPECT_EQ(prof.totals_for("LagrangeNodal").ranks_seen, 8);
}

TEST(LuleshSections, TimeloopDominatesMain) {
  // Paper: "the timeloop section was accounting for 99% of the main
  // function time".
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  LuleshConfig cfg;
  cfg.s = 8;
  cfg.steps = 10;
  cfg.full_fidelity = false;
  LuleshApp app(cfg);
  world.run(std::ref(app));
  EXPECT_GT(prof.totals_for("timeloop").mean_per_process,
            0.95 * prof.main_time());
}

TEST(LuleshSections, LagrangePhasesDominateTimeloop) {
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  LuleshConfig cfg;
  cfg.s = 8;
  cfg.steps = 10;
  cfg.full_fidelity = false;
  LuleshApp app(cfg);
  world.run(std::ref(app));
  const double loop = prof.totals_for("timeloop").mean_per_process;
  const double nodal = prof.totals_for("LagrangeNodal").mean_per_process;
  const double elems = prof.totals_for("LagrangeElements").mean_per_process;
  EXPECT_GT(nodal + elems, 0.85 * loop);
  // Calibration: LagrangeElements ~1.4-1.5x LagrangeNodal (paper ratio).
  EXPECT_GT(elems / nodal, 1.2);
  EXPECT_LT(elems / nodal, 1.8);
}

TEST(LuleshModes, ModeledSharesSectionStructure) {
  auto structure = [](bool full) {
    World world(8, ideal_options());
    sections::SectionRuntime::install(world);
    profiler::SectionProfiler prof(world);
    LuleshConfig cfg;
    cfg.s = 4;
    cfg.steps = 2;
    cfg.full_fidelity = full;
    LuleshApp app(cfg);
    world.run(std::ref(app));
    std::vector<std::pair<std::string, long>> shape;
    for (const auto& t : prof.totals()) shape.emplace_back(t.label, t.instances);
    return shape;
  };
  EXPECT_EQ(structure(true), structure(false));
}

TEST(LuleshConfigTest, NonCubeRankCountRejected) {
  World world(5, ideal_options());
  sections::SectionRuntime::install(world);
  LuleshApp app(LuleshConfig{});
  EXPECT_THROW(world.run(std::ref(app)), mpisim::MpiError);
}

TEST(LuleshThreads, MoreThreadsFasterInModeledMode) {
  auto walltime = [](int threads) {
    WorldOptions opts;
    opts.machine = MachineModel::broadwell_2s();
    opts.machine.compute_noise_sigma = 0.0;
    World world(1, opts);
    sections::SectionRuntime::install(world);
    LuleshConfig cfg;
    cfg.s = 16;
    cfg.steps = 5;
    cfg.omp_threads = threads;
    cfg.full_fidelity = false;
    LuleshApp app(cfg);
    world.run(std::ref(app));
    return world.elapsed();
  };
  const double t1 = walltime(1);
  const double t8 = walltime(8);
  EXPECT_LT(t8, t1 * 0.35);  // solid OpenMP speedup at 8 threads
}

}  // namespace
