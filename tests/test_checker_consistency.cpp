// mpicheck call-consistency analysis: collective call/root/size agreement
// across ranks and send/receive size pairing.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "checker/checker.hpp"
#include "checker/report.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect;
using checker::Category;
using checker::MpiChecker;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::MpiError;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(CheckerConsistency, BcastRootMismatchIsReported) {
  World world(2, ideal_options());
  auto check = MpiChecker::install(world);

  // Zero-byte broadcast: the disagreeing roots both send eagerly, so the
  // mismatch does not hang and the run completes.
  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    world_comm.bcast(nullptr, 0, world_comm.rank() == 0 ? 0 : 1);
  });

  check->analyze();
  ASSERT_EQ(check->sink().count(Category::CollectiveMismatch), 1u)
      << checker::render_text(check->diagnostics());
  const auto diags = check->diagnostics();
  const auto& d = diags[0];
  EXPECT_EQ(d.rank, 1);
  EXPECT_NE(d.message.find("root"), std::string::npos) << d.message;
}

TEST(CheckerConsistency, CollectiveCallTypeMismatchIsReported) {
  World world(2, ideal_options());
  auto check = MpiChecker::install(world);

  // Rank 0 broadcasts while rank 1 reduces. Both are pure eager sends at
  // zero payload, so the run completes and the logs can be compared.
  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    if (world_comm.rank() == 0) {
      world_comm.bcast(nullptr, 0, 0);
    } else {
      world_comm.reduce(nullptr, nullptr, 0, mpisim::datatype_of<double>,
                        mpisim::ReduceOp::Sum, 0);
    }
  });

  check->analyze();
  ASSERT_GE(check->sink().count(Category::CollectiveMismatch), 1u)
      << checker::render_text(check->diagnostics());
  bool found = false;
  for (const auto& d : check->diagnostics()) {
    if (d.category == Category::CollectiveMismatch && d.rank == 1 &&
        d.message.find("MPI_Reduce") != std::string::npos &&
        d.message.find("MPI_Bcast") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CheckerConsistency, AllreduceCountMismatchIsReported) {
  World world(2, ideal_options());
  auto check = MpiChecker::install(world);

  // Rank 1 contributes half the elements. The runtime may fault on the
  // mismatched transfer; the checker still compares what both ranks issued.
  try {
    world.run([](Ctx& ctx) {
      Comm world_comm = ctx.world_comm();
      std::array<double, 4> in{};
      std::array<double, 4> out{};
      const int count = world_comm.rank() == 0 ? 4 : 2;
      world_comm.allreduce(in.data(), out.data(), count,
                           mpisim::datatype_of<double>, mpisim::ReduceOp::Sum);
    });
  } catch (const MpiError&) {
  }

  check->analyze();
  ASSERT_GE(check->sink().count(Category::CollectiveMismatch), 1u)
      << checker::render_text(check->diagnostics());
  bool found = false;
  for (const auto& d : check->diagnostics()) {
    if (d.category == Category::CollectiveMismatch &&
        d.message.find("bytes") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CheckerConsistency, ReceiveBufferSmallerThanMessageIsReported) {
  World world(2, ideal_options());
  auto check = MpiChecker::install(world);

  try {
    world.run([](Ctx& ctx) {
      Comm world_comm = ctx.world_comm();
      if (world_comm.rank() == 0) {
        std::array<char, 8> payload{};
        world_comm.send(payload.data(), payload.size(), 1, 7);
      } else {
        std::array<char, 4> buf{};  // half the message: Err::Truncate
        world_comm.recv(buf.data(), buf.size(), 0, 7);
      }
    });
  } catch (const MpiError&) {
  }

  check->analyze();
  ASSERT_EQ(check->sink().count(Category::P2PMismatch), 1u)
      << checker::render_text(check->diagnostics());
  const auto diags = check->diagnostics();
  const auto& d = diags[0];
  EXPECT_EQ(d.rank, 1);
  EXPECT_NE(d.message.find("8 bytes"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("4-byte"), std::string::npos) << d.message;
}

TEST(CheckerConsistency, SendrecvAndWildcardPairsAreNotFlagged) {
  World world(2, ideal_options());
  auto check = MpiChecker::install(world);

  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    const int r = world_comm.rank();
    std::array<char, 8> out{};
    std::array<char, 16> in{};  // larger buffer — legal, must not be flagged
    // Sendrecv taints the pair, so the conservative pass skips it.
    world_comm.sendrecv(out.data(), out.size(), 1 - r, 2, in.data(),
                        in.size(), 1 - r, 2);
    // Wildcard receive: also exempt from pairing.
    if (r == 0) {
      world_comm.send(out.data(), out.size(), 1, 6);
    } else {
      world_comm.recv(in.data(), in.size(), mpisim::kAnySource, 6);
    }
  });

  check->analyze();
  EXPECT_EQ(check->sink().count(), 0u)
      << checker::render_text(check->diagnostics());
}

TEST(CheckerConsistency, MatchedTrafficIsClean) {
  World world(4, ideal_options());
  auto check = MpiChecker::install(world);

  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    const int r = world_comm.rank();
    const int n = world_comm.size();
    std::array<double, 8> v{};
    std::array<double, 8> acc{};
    world_comm.bcast(v.data(), sizeof v, 0);
    world_comm.allreduce(v.data(), acc.data(), 8, mpisim::datatype_of<double>,
                         mpisim::ReduceOp::Max);
    std::array<char, 32> buf{};
    if (r % 2 == 0) {
      world_comm.send(buf.data(), buf.size(), (r + 1) % n, 1);
    } else {
      world_comm.recv(buf.data(), buf.size(), (r + n - 1) % n, 1);
    }
    world_comm.barrier();
  });

  check->analyze();
  EXPECT_EQ(check->sink().count(), 0u)
      << checker::render_text(check->diagnostics());
}

}  // namespace
