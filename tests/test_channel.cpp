// Direct unit tests of the matching engine (Channel) — below the Comm
// layer, exercising matching rules and virtual-time math in isolation.
// Channels block through an Executor; these tests use the thread backend
// so plain test threads can poke at the channel from outside a World.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "mpisim/channel.hpp"
#include "mpisim/error.hpp"
#include "mpisim/scheduler.hpp"
#include "support/rng.hpp"

namespace {

using namespace mpisect::mpisim;

struct ChannelFixture {
  std::atomic<bool> abort{false};
  std::unique_ptr<Executor> exec = make_executor(ExecBackend::Threads);
  Channel ch{*exec, &abort};
};

MessagePtr make_msg(int src, int tag, double t_send, double cost,
                    bool rendezvous = false, std::size_t bytes = 8) {
  auto msg = std::make_shared<Message>();
  msg->src = src;
  msg->tag = tag;
  msg->bytes = bytes;
  msg->t_send_start = t_send;
  msg->wire_cost = cost;
  msg->t_avail = t_send + cost;
  msg->rendezvous = rendezvous;
  return msg;
}

PostedRecvPtr make_recv(int src, int tag, double t_post,
                        std::size_t max_bytes = 64) {
  auto pr = std::make_shared<PostedRecv>();
  pr->src = src;
  pr->tag = tag;
  pr->t_post = t_post;
  pr->max_bytes = max_bytes;
  return pr;
}

TEST(Channel, DepositThenPostMatches) {
  ChannelFixture f;
  f.ch.deposit(make_msg(0, 5, 1.0, 0.25));
  EXPECT_EQ(f.ch.pending_messages(), 1u);
  auto pr = make_recv(0, 5, 2.0);
  f.ch.post(pr);
  EXPECT_EQ(f.ch.pending_messages(), 0u);
  const Status st = f.ch.wait_recv(pr);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 5);
  // Eager: delivery at max(t_post, t_avail) = max(2.0, 1.25) = 2.0.
  EXPECT_DOUBLE_EQ(st.t_complete, 2.0);
}

TEST(Channel, PostThenDepositMatches) {
  ChannelFixture f;
  auto pr = make_recv(0, 5, 0.5);
  f.ch.post(pr);
  EXPECT_EQ(f.ch.pending_recvs(), 1u);
  f.ch.deposit(make_msg(0, 5, 1.0, 0.25));
  EXPECT_EQ(f.ch.pending_recvs(), 0u);
  // Receiver was early: delivery at t_avail = 1.25.
  EXPECT_DOUBLE_EQ(f.ch.wait_recv(pr).t_complete, 1.25);
}

TEST(Channel, RendezvousDeliveryFromMatchPoint) {
  ChannelFixture f;
  auto msg = make_msg(0, 1, 1.0, 0.5, /*rendezvous=*/true);
  f.ch.deposit(msg);
  auto pr = make_recv(0, 1, 3.0);
  f.ch.post(pr);
  // Rendezvous: transfer starts at max(t_send, t_post) = 3.0 -> 3.5.
  EXPECT_DOUBLE_EQ(f.ch.wait_recv(pr).t_complete, 3.5);
  EXPECT_DOUBLE_EQ(f.ch.wait_delivered(msg), 3.5);
}

TEST(Channel, TagFiltering) {
  ChannelFixture f;
  f.ch.deposit(make_msg(0, 1, 1.0, 0.1));
  f.ch.deposit(make_msg(0, 2, 1.0, 0.1));
  auto pr = make_recv(0, 2, 1.0);
  f.ch.post(pr);
  EXPECT_EQ(f.ch.wait_recv(pr).tag, 2);
  EXPECT_EQ(f.ch.pending_messages(), 1u);  // the tag-1 message remains
}

TEST(Channel, WildcardsMatchFirstArrived) {
  ChannelFixture f;
  f.ch.deposit(make_msg(3, 7, 1.0, 0.1));
  f.ch.deposit(make_msg(1, 9, 1.0, 0.1));
  auto pr = make_recv(kAnySource, kAnyTag, 1.0);
  f.ch.post(pr);
  const Status st = f.ch.wait_recv(pr);
  EXPECT_EQ(st.source, 3);  // queue order
  EXPECT_EQ(st.tag, 7);
}

TEST(Channel, PostedRecvOrderRespected) {
  ChannelFixture f;
  auto pr1 = make_recv(0, kAnyTag, 1.0);
  auto pr2 = make_recv(0, kAnyTag, 2.0);
  f.ch.post(pr1);
  f.ch.post(pr2);
  f.ch.deposit(make_msg(0, 4, 0.0, 0.1));
  EXPECT_TRUE(f.ch.test_recv(pr1));   // earliest posted matches first
  EXPECT_FALSE(f.ch.test_recv(pr2));
}

TEST(Channel, PayloadCopiedOnMatch) {
  ChannelFixture f;
  auto msg = make_msg(0, 0, 0.0, 0.0, false, 4);
  const std::byte payload[4] = {std::byte{1}, std::byte{2}, std::byte{3},
                                std::byte{4}};
  msg->payload.assign(payload, payload + 4);
  f.ch.deposit(msg);
  std::byte out[4] = {};
  auto pr = make_recv(0, 0, 0.0);
  pr->buf = out;
  pr->max_bytes = 4;
  f.ch.post(pr);
  f.ch.wait_recv(pr);
  EXPECT_EQ(out[3], std::byte{4});
}

TEST(Channel, TruncationFlaggedAtWait) {
  ChannelFixture f;
  f.ch.deposit(make_msg(0, 0, 0.0, 0.0, false, /*bytes=*/128));
  auto pr = make_recv(0, 0, 0.0, /*max_bytes=*/16);
  f.ch.post(pr);
  EXPECT_THROW(f.ch.wait_recv(pr), MpiError);
}

TEST(Channel, ProbeDoesNotConsume) {
  ChannelFixture f;
  f.ch.deposit(make_msg(2, 6, 1.0, 0.5));
  const Status st = f.ch.probe(2, 6, 0.0);
  EXPECT_EQ(st.bytes, 8u);
  EXPECT_DOUBLE_EQ(st.t_complete, 1.5);  // availability
  EXPECT_EQ(f.ch.pending_messages(), 1u);
}

TEST(Channel, RendezvousProbeMatchesRecvDeliveryModel) {
  // Regression: probe used to report max(t_send_start, t_probe) for a
  // rendezvous message — earlier than any matching recv could complete,
  // because complete_match charges the wire after the handshake. A probe
  // at time t must report what a recv posted at t would see.
  ChannelFixture f;
  f.ch.deposit(make_msg(0, 1, 1.0, 0.5, /*rendezvous=*/true));
  const Status probed = f.ch.probe(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(probed.t_complete, 3.5);  // max(1.0, 3.0) + 0.5

  auto pr = make_recv(0, 1, 3.0);
  f.ch.post(pr);
  EXPECT_DOUBLE_EQ(f.ch.wait_recv(pr).t_complete, probed.t_complete);
}

TEST(Channel, ProbeThenRecvNeverEarlierThanDirectRecv) {
  // Probe-then-recv completes at the recv's own delivery time, which can
  // never undercut a direct recv posted at the probe time (rendezvous pays
  // the wire twice — once hypothetically at probe, once for real).
  for (const bool rendezvous : {false, true}) {
    ChannelFixture direct;
    direct.ch.deposit(make_msg(0, 1, 1.0, 0.5, rendezvous));
    auto pr_direct = make_recv(0, 1, 3.0);
    direct.ch.post(pr_direct);
    const double t_direct = direct.ch.wait_recv(pr_direct).t_complete;

    ChannelFixture probed;
    probed.ch.deposit(make_msg(0, 1, 1.0, 0.5, rendezvous));
    const Status st = probed.ch.probe(0, 1, 3.0);
    auto pr = make_recv(0, 1, st.t_complete);  // recv after the probe
    probed.ch.post(pr);
    const double t_probed = probed.ch.wait_recv(pr).t_complete;

    EXPECT_GE(t_probed, t_direct);
    if (!rendezvous) {
      // Eager availability is a property of the message alone, so probing
      // first costs nothing.
      EXPECT_DOUBLE_EQ(t_probed, t_direct);
    }
  }
}

TEST(Channel, ProbeAnySourceAnyTagEarliestQueuedWins) {
  ChannelFixture f;
  f.ch.deposit(make_msg(3, 7, 1.0, 0.1));
  f.ch.deposit(make_msg(1, 9, 0.5, 0.1));
  const Status st = f.ch.probe(kAnySource, kAnyTag, 2.0);
  // Queue order decides, not timestamps: the (3, 7) message arrived first.
  EXPECT_EQ(st.source, 3);
  EXPECT_EQ(st.tag, 7);
  EXPECT_EQ(f.ch.pending_messages(), 2u);
  // A wildcard recv agrees with what the probe reported.
  auto pr = make_recv(kAnySource, kAnyTag, 2.0);
  f.ch.post(pr);
  const Status recv_st = f.ch.wait_recv(pr);
  EXPECT_EQ(recv_st.source, st.source);
  EXPECT_EQ(recv_st.tag, st.tag);
  EXPECT_DOUBLE_EQ(recv_st.t_complete, st.t_complete);
}

TEST(Channel, AbortWakesBlockedWaiter) {
  ChannelFixture f;
  auto pr = make_recv(0, 0, 0.0);
  f.ch.post(pr);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    f.abort.store(true);
    f.exec->wake_all();  // no polling: abort must wake waiters explicitly
  });
  EXPECT_THROW(f.ch.wait_recv(pr), MpiError);
  killer.join();
}

TEST(Channel, AbortWakesRendezvousSender) {
  ChannelFixture f;
  auto msg = make_msg(0, 0, 0.0, 1.0, /*rendezvous=*/true);
  f.ch.deposit(msg);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    f.abort.store(true);
    f.exec->wake_all();
  });
  EXPECT_THROW((void)f.ch.wait_delivered(msg), MpiError);
  killer.join();
}

// ---------------------------------------------------------------------------
// Matching engines: hashed vs legacy differential coverage
// ---------------------------------------------------------------------------

struct EngineFixture {
  std::atomic<bool> abort{false};
  std::unique_ptr<Executor> exec = make_executor(ExecBackend::Threads);
  Channel hashed{*exec, &abort, 0.0, nullptr,
                 MatchModel{MatchMode::Hashed}};
  Channel legacy{*exec, &abort, 0.0, nullptr,
                 MatchModel{MatchMode::Legacy}};
};

TEST(ChannelEngines, SpecVocabularyRoundTrips) {
  EXPECT_EQ(MatchModel{}.spec(), "hashed");
  EXPECT_EQ(MatchModel::parse("hashed:buckets=64").buckets, 64u);
  EXPECT_EQ(MatchModel::parse("hashed:buckets=64").spec(),
            "hashed:buckets=64");
  EXPECT_EQ(MatchModel::parse("legacy").mode, MatchMode::Legacy);
  EXPECT_THROW(MatchModel::parse("btree"), MpiError);
  EXPECT_THROW(MatchModel::parse("legacy:buckets=2"), MpiError);
}

// A deposit must take the minimum post ordinal ACROSS wildcard lanes, not
// just the head of its exact-(src,tag) lane — post order is global.
TEST(ChannelEngines, WildcardLanesRespectGlobalPostOrder) {
  EngineFixture f;
  for (Channel* ch : {&f.hashed, &f.legacy}) {
    auto any_any = make_recv(kAnySource, kAnyTag, 1.0);   // ordinal 0
    auto exact = make_recv(2, 5, 1.0);                    // ordinal 1
    auto any_tag = make_recv(kAnySource, 5, 1.0);         // ordinal 2
    ch->post(any_any);
    ch->post(exact);
    ch->post(any_tag);
    ch->deposit(make_msg(2, 5, 0.0, 0.1));  // compatible with all three
    EXPECT_TRUE(ch->test_recv(any_any));    // earliest ordinal wins
    EXPECT_FALSE(ch->test_recv(exact));
    EXPECT_FALSE(ch->test_recv(any_tag));
    ch->deposit(make_msg(2, 5, 0.0, 0.1));
    EXPECT_TRUE(ch->test_recv(exact));      // then post order again
    EXPECT_FALSE(ch->test_recv(any_tag));
    ch->deposit(make_msg(2, 5, 0.0, 0.1));
    EXPECT_TRUE(ch->test_recv(any_tag));
  }
}

// A (src, ANY) receive must find the earliest-ARRIVAL message from that
// source even when other sources' messages interleave the queue.
TEST(ChannelEngines, SourceWildcardFindsEarliestArrivalFromSource) {
  EngineFixture f;
  for (Channel* ch : {&f.hashed, &f.legacy}) {
    ch->deposit(make_msg(1, 10, 1.0, 0.1));
    ch->deposit(make_msg(2, 20, 1.0, 0.1));
    ch->deposit(make_msg(1, 30, 1.0, 0.1));
    auto pr = make_recv(1, kAnyTag, 2.0);
    ch->post(pr);
    EXPECT_EQ(ch->wait_recv(pr).tag, 10);  // first arrival from source 1
    auto pr2 = make_recv(1, kAnyTag, 2.0);
    ch->post(pr2);
    EXPECT_EQ(ch->wait_recv(pr2).tag, 30);
    EXPECT_EQ(ch->pending_messages(), 1u);  // source 2 untouched
  }
}

TEST(ChannelEngines, ProbeSeesEarliestCompatibleInBothEngines) {
  EngineFixture f;
  for (Channel* ch : {&f.hashed, &f.legacy}) {
    ch->deposit(make_msg(4, 1, 1.0, 0.1));
    ch->deposit(make_msg(3, 1, 0.5, 0.1));
    const Status by_tag = ch->probe(kAnySource, 1, 2.0);
    EXPECT_EQ(by_tag.source, 4);  // arrival order, not timestamps
    const Status by_src = ch->probe(3, kAnyTag, 2.0);
    EXPECT_EQ(by_src.source, 3);
    EXPECT_EQ(ch->pending_messages(), 2u);
  }
}

// Randomized differential: any interleaving of deposits and posts across
// sources, tags, and wildcard classes must produce identical match results
// (source, tag, completion time, leftover queues) in both engines.
TEST(ChannelEngines, RandomizedHistoriesAgree) {
  const mpisect::support::CounterRng rng(0xD1FF);
  std::uint64_t ctr = 0;
  for (int round = 0; round < 50; ++round) {
    EngineFixture f;
    std::vector<PostedRecvPtr> hashed_recvs;
    std::vector<PostedRecvPtr> legacy_recvs;
    for (int op = 0; op < 40; ++op) {
      const bool is_post = rng.below(0, ctr++, 2) == 1;
      const int src = static_cast<int>(rng.below(1, ctr++, 4));
      const int tag = static_cast<int>(rng.below(2, ctr++, 3));
      const double t = 0.25 * static_cast<double>(op);
      if (is_post) {
        const bool any_src = rng.below(3, ctr, 3) == 0;
        const bool any_tag = rng.below(4, ctr++, 3) == 0;
        hashed_recvs.push_back(make_recv(any_src ? kAnySource : src,
                                         any_tag ? kAnyTag : tag, t));
        legacy_recvs.push_back(make_recv(any_src ? kAnySource : src,
                                         any_tag ? kAnyTag : tag, t));
        f.hashed.post(hashed_recvs.back());
        f.legacy.post(legacy_recvs.back());
      } else {
        f.hashed.deposit(make_msg(src, tag, t, 0.125));
        f.legacy.deposit(make_msg(src, tag, t, 0.125));
      }
    }
    EXPECT_EQ(f.hashed.pending_messages(), f.legacy.pending_messages());
    EXPECT_EQ(f.hashed.pending_recvs(), f.legacy.pending_recvs());
    for (std::size_t i = 0; i < hashed_recvs.size(); ++i) {
      const bool done = f.hashed.test_recv(hashed_recvs[i]);
      ASSERT_EQ(done, f.legacy.test_recv(legacy_recvs[i]))
          << "round " << round << " recv " << i;
      if (!done) continue;
      const Status a = f.hashed.wait_recv(hashed_recvs[i]);
      const Status b = f.legacy.wait_recv(legacy_recvs[i]);
      EXPECT_EQ(a.source, b.source) << "round " << round << " recv " << i;
      EXPECT_EQ(a.tag, b.tag) << "round " << round << " recv " << i;
      EXPECT_EQ(a.t_complete, b.t_complete)
          << "round " << round << " recv " << i;
    }
  }
}

}  // namespace
