// Direct unit tests of the matching engine (Channel) — below the Comm
// layer, exercising matching rules and virtual-time math in isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "mpisim/channel.hpp"
#include "mpisim/error.hpp"

namespace {

using namespace mpisect::mpisim;

MessagePtr make_msg(int src, int tag, double t_send, double cost,
                    bool rendezvous = false, std::size_t bytes = 8) {
  auto msg = std::make_shared<Message>();
  msg->src = src;
  msg->tag = tag;
  msg->bytes = bytes;
  msg->t_send_start = t_send;
  msg->wire_cost = cost;
  msg->t_avail = t_send + cost;
  msg->rendezvous = rendezvous;
  return msg;
}

PostedRecvPtr make_recv(int src, int tag, double t_post,
                        std::size_t max_bytes = 64) {
  auto pr = std::make_shared<PostedRecv>();
  pr->src = src;
  pr->tag = tag;
  pr->t_post = t_post;
  pr->max_bytes = max_bytes;
  return pr;
}

TEST(Channel, DepositThenPostMatches) {
  std::atomic<bool> abort{false};
  Channel ch(&abort);
  ch.deposit(make_msg(0, 5, 1.0, 0.25));
  EXPECT_EQ(ch.pending_messages(), 1u);
  auto pr = make_recv(0, 5, 2.0);
  ch.post(pr);
  EXPECT_EQ(ch.pending_messages(), 0u);
  const Status st = ch.wait_recv(pr);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 5);
  // Eager: delivery at max(t_post, t_avail) = max(2.0, 1.25) = 2.0.
  EXPECT_DOUBLE_EQ(st.t_complete, 2.0);
}

TEST(Channel, PostThenDepositMatches) {
  std::atomic<bool> abort{false};
  Channel ch(&abort);
  auto pr = make_recv(0, 5, 0.5);
  ch.post(pr);
  EXPECT_EQ(ch.pending_recvs(), 1u);
  ch.deposit(make_msg(0, 5, 1.0, 0.25));
  EXPECT_EQ(ch.pending_recvs(), 0u);
  // Receiver was early: delivery at t_avail = 1.25.
  EXPECT_DOUBLE_EQ(ch.wait_recv(pr).t_complete, 1.25);
}

TEST(Channel, RendezvousDeliveryFromMatchPoint) {
  std::atomic<bool> abort{false};
  Channel ch(&abort);
  auto msg = make_msg(0, 1, 1.0, 0.5, /*rendezvous=*/true);
  ch.deposit(msg);
  auto pr = make_recv(0, 1, 3.0);
  ch.post(pr);
  // Rendezvous: transfer starts at max(t_send, t_post) = 3.0 -> 3.5.
  EXPECT_DOUBLE_EQ(ch.wait_recv(pr).t_complete, 3.5);
  EXPECT_DOUBLE_EQ(ch.wait_delivered(msg), 3.5);
}

TEST(Channel, TagFiltering) {
  std::atomic<bool> abort{false};
  Channel ch(&abort);
  ch.deposit(make_msg(0, 1, 1.0, 0.1));
  ch.deposit(make_msg(0, 2, 1.0, 0.1));
  auto pr = make_recv(0, 2, 1.0);
  ch.post(pr);
  EXPECT_EQ(ch.wait_recv(pr).tag, 2);
  EXPECT_EQ(ch.pending_messages(), 1u);  // the tag-1 message remains
}

TEST(Channel, WildcardsMatchFirstArrived) {
  std::atomic<bool> abort{false};
  Channel ch(&abort);
  ch.deposit(make_msg(3, 7, 1.0, 0.1));
  ch.deposit(make_msg(1, 9, 1.0, 0.1));
  auto pr = make_recv(kAnySource, kAnyTag, 1.0);
  ch.post(pr);
  const Status st = ch.wait_recv(pr);
  EXPECT_EQ(st.source, 3);  // queue order
  EXPECT_EQ(st.tag, 7);
}

TEST(Channel, PostedRecvOrderRespected) {
  std::atomic<bool> abort{false};
  Channel ch(&abort);
  auto pr1 = make_recv(0, kAnyTag, 1.0);
  auto pr2 = make_recv(0, kAnyTag, 2.0);
  ch.post(pr1);
  ch.post(pr2);
  ch.deposit(make_msg(0, 4, 0.0, 0.1));
  EXPECT_TRUE(ch.test_recv(pr1));   // earliest posted matches first
  EXPECT_FALSE(ch.test_recv(pr2));
}

TEST(Channel, PayloadCopiedOnMatch) {
  std::atomic<bool> abort{false};
  Channel ch(&abort);
  auto msg = make_msg(0, 0, 0.0, 0.0, false, 4);
  const std::byte payload[4] = {std::byte{1}, std::byte{2}, std::byte{3},
                                std::byte{4}};
  msg->payload.assign(payload, payload + 4);
  ch.deposit(msg);
  std::byte out[4] = {};
  auto pr = make_recv(0, 0, 0.0);
  pr->buf = out;
  pr->max_bytes = 4;
  ch.post(pr);
  ch.wait_recv(pr);
  EXPECT_EQ(out[3], std::byte{4});
}

TEST(Channel, TruncationFlaggedAtWait) {
  std::atomic<bool> abort{false};
  Channel ch(&abort);
  ch.deposit(make_msg(0, 0, 0.0, 0.0, false, /*bytes=*/128));
  auto pr = make_recv(0, 0, 0.0, /*max_bytes=*/16);
  ch.post(pr);
  EXPECT_THROW(ch.wait_recv(pr), MpiError);
}

TEST(Channel, ProbeDoesNotConsume) {
  std::atomic<bool> abort{false};
  Channel ch(&abort);
  ch.deposit(make_msg(2, 6, 1.0, 0.5));
  const Status st = ch.probe(2, 6, 0.0);
  EXPECT_EQ(st.bytes, 8u);
  EXPECT_DOUBLE_EQ(st.t_complete, 1.5);  // availability
  EXPECT_EQ(ch.pending_messages(), 1u);
}

TEST(Channel, AbortWakesBlockedWaiter) {
  std::atomic<bool> abort{false};
  Channel ch(&abort);
  auto pr = make_recv(0, 0, 0.0);
  ch.post(pr);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    abort.store(true);
  });
  EXPECT_THROW(ch.wait_recv(pr), MpiError);
  killer.join();
}

TEST(Channel, AbortWakesRendezvousSender) {
  std::atomic<bool> abort{false};
  Channel ch(&abort);
  auto msg = make_msg(0, 0, 0.0, 1.0, /*rendezvous=*/true);
  ch.deposit(msg);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    abort.store(true);
  });
  EXPECT_THROW((void)ch.wait_delivered(msg), MpiError);
  killer.join();
}

}  // namespace
