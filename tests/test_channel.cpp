// Direct unit tests of the matching engine (Channel) — below the Comm
// layer, exercising matching rules and virtual-time math in isolation.
// Channels block through an Executor; these tests use the thread backend
// so plain test threads can poke at the channel from outside a World.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "mpisim/channel.hpp"
#include "mpisim/error.hpp"
#include "mpisim/scheduler.hpp"

namespace {

using namespace mpisect::mpisim;

struct ChannelFixture {
  std::atomic<bool> abort{false};
  std::unique_ptr<Executor> exec = make_executor(ExecBackend::Threads);
  Channel ch{*exec, &abort};
};

MessagePtr make_msg(int src, int tag, double t_send, double cost,
                    bool rendezvous = false, std::size_t bytes = 8) {
  auto msg = std::make_shared<Message>();
  msg->src = src;
  msg->tag = tag;
  msg->bytes = bytes;
  msg->t_send_start = t_send;
  msg->wire_cost = cost;
  msg->t_avail = t_send + cost;
  msg->rendezvous = rendezvous;
  return msg;
}

PostedRecvPtr make_recv(int src, int tag, double t_post,
                        std::size_t max_bytes = 64) {
  auto pr = std::make_shared<PostedRecv>();
  pr->src = src;
  pr->tag = tag;
  pr->t_post = t_post;
  pr->max_bytes = max_bytes;
  return pr;
}

TEST(Channel, DepositThenPostMatches) {
  ChannelFixture f;
  f.ch.deposit(make_msg(0, 5, 1.0, 0.25));
  EXPECT_EQ(f.ch.pending_messages(), 1u);
  auto pr = make_recv(0, 5, 2.0);
  f.ch.post(pr);
  EXPECT_EQ(f.ch.pending_messages(), 0u);
  const Status st = f.ch.wait_recv(pr);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 5);
  // Eager: delivery at max(t_post, t_avail) = max(2.0, 1.25) = 2.0.
  EXPECT_DOUBLE_EQ(st.t_complete, 2.0);
}

TEST(Channel, PostThenDepositMatches) {
  ChannelFixture f;
  auto pr = make_recv(0, 5, 0.5);
  f.ch.post(pr);
  EXPECT_EQ(f.ch.pending_recvs(), 1u);
  f.ch.deposit(make_msg(0, 5, 1.0, 0.25));
  EXPECT_EQ(f.ch.pending_recvs(), 0u);
  // Receiver was early: delivery at t_avail = 1.25.
  EXPECT_DOUBLE_EQ(f.ch.wait_recv(pr).t_complete, 1.25);
}

TEST(Channel, RendezvousDeliveryFromMatchPoint) {
  ChannelFixture f;
  auto msg = make_msg(0, 1, 1.0, 0.5, /*rendezvous=*/true);
  f.ch.deposit(msg);
  auto pr = make_recv(0, 1, 3.0);
  f.ch.post(pr);
  // Rendezvous: transfer starts at max(t_send, t_post) = 3.0 -> 3.5.
  EXPECT_DOUBLE_EQ(f.ch.wait_recv(pr).t_complete, 3.5);
  EXPECT_DOUBLE_EQ(f.ch.wait_delivered(msg), 3.5);
}

TEST(Channel, TagFiltering) {
  ChannelFixture f;
  f.ch.deposit(make_msg(0, 1, 1.0, 0.1));
  f.ch.deposit(make_msg(0, 2, 1.0, 0.1));
  auto pr = make_recv(0, 2, 1.0);
  f.ch.post(pr);
  EXPECT_EQ(f.ch.wait_recv(pr).tag, 2);
  EXPECT_EQ(f.ch.pending_messages(), 1u);  // the tag-1 message remains
}

TEST(Channel, WildcardsMatchFirstArrived) {
  ChannelFixture f;
  f.ch.deposit(make_msg(3, 7, 1.0, 0.1));
  f.ch.deposit(make_msg(1, 9, 1.0, 0.1));
  auto pr = make_recv(kAnySource, kAnyTag, 1.0);
  f.ch.post(pr);
  const Status st = f.ch.wait_recv(pr);
  EXPECT_EQ(st.source, 3);  // queue order
  EXPECT_EQ(st.tag, 7);
}

TEST(Channel, PostedRecvOrderRespected) {
  ChannelFixture f;
  auto pr1 = make_recv(0, kAnyTag, 1.0);
  auto pr2 = make_recv(0, kAnyTag, 2.0);
  f.ch.post(pr1);
  f.ch.post(pr2);
  f.ch.deposit(make_msg(0, 4, 0.0, 0.1));
  EXPECT_TRUE(f.ch.test_recv(pr1));   // earliest posted matches first
  EXPECT_FALSE(f.ch.test_recv(pr2));
}

TEST(Channel, PayloadCopiedOnMatch) {
  ChannelFixture f;
  auto msg = make_msg(0, 0, 0.0, 0.0, false, 4);
  const std::byte payload[4] = {std::byte{1}, std::byte{2}, std::byte{3},
                                std::byte{4}};
  msg->payload.assign(payload, payload + 4);
  f.ch.deposit(msg);
  std::byte out[4] = {};
  auto pr = make_recv(0, 0, 0.0);
  pr->buf = out;
  pr->max_bytes = 4;
  f.ch.post(pr);
  f.ch.wait_recv(pr);
  EXPECT_EQ(out[3], std::byte{4});
}

TEST(Channel, TruncationFlaggedAtWait) {
  ChannelFixture f;
  f.ch.deposit(make_msg(0, 0, 0.0, 0.0, false, /*bytes=*/128));
  auto pr = make_recv(0, 0, 0.0, /*max_bytes=*/16);
  f.ch.post(pr);
  EXPECT_THROW(f.ch.wait_recv(pr), MpiError);
}

TEST(Channel, ProbeDoesNotConsume) {
  ChannelFixture f;
  f.ch.deposit(make_msg(2, 6, 1.0, 0.5));
  const Status st = f.ch.probe(2, 6, 0.0);
  EXPECT_EQ(st.bytes, 8u);
  EXPECT_DOUBLE_EQ(st.t_complete, 1.5);  // availability
  EXPECT_EQ(f.ch.pending_messages(), 1u);
}

TEST(Channel, RendezvousProbeMatchesRecvDeliveryModel) {
  // Regression: probe used to report max(t_send_start, t_probe) for a
  // rendezvous message — earlier than any matching recv could complete,
  // because complete_match charges the wire after the handshake. A probe
  // at time t must report what a recv posted at t would see.
  ChannelFixture f;
  f.ch.deposit(make_msg(0, 1, 1.0, 0.5, /*rendezvous=*/true));
  const Status probed = f.ch.probe(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(probed.t_complete, 3.5);  // max(1.0, 3.0) + 0.5

  auto pr = make_recv(0, 1, 3.0);
  f.ch.post(pr);
  EXPECT_DOUBLE_EQ(f.ch.wait_recv(pr).t_complete, probed.t_complete);
}

TEST(Channel, ProbeThenRecvNeverEarlierThanDirectRecv) {
  // Probe-then-recv completes at the recv's own delivery time, which can
  // never undercut a direct recv posted at the probe time (rendezvous pays
  // the wire twice — once hypothetically at probe, once for real).
  for (const bool rendezvous : {false, true}) {
    ChannelFixture direct;
    direct.ch.deposit(make_msg(0, 1, 1.0, 0.5, rendezvous));
    auto pr_direct = make_recv(0, 1, 3.0);
    direct.ch.post(pr_direct);
    const double t_direct = direct.ch.wait_recv(pr_direct).t_complete;

    ChannelFixture probed;
    probed.ch.deposit(make_msg(0, 1, 1.0, 0.5, rendezvous));
    const Status st = probed.ch.probe(0, 1, 3.0);
    auto pr = make_recv(0, 1, st.t_complete);  // recv after the probe
    probed.ch.post(pr);
    const double t_probed = probed.ch.wait_recv(pr).t_complete;

    EXPECT_GE(t_probed, t_direct);
    if (!rendezvous) {
      // Eager availability is a property of the message alone, so probing
      // first costs nothing.
      EXPECT_DOUBLE_EQ(t_probed, t_direct);
    }
  }
}

TEST(Channel, ProbeAnySourceAnyTagEarliestQueuedWins) {
  ChannelFixture f;
  f.ch.deposit(make_msg(3, 7, 1.0, 0.1));
  f.ch.deposit(make_msg(1, 9, 0.5, 0.1));
  const Status st = f.ch.probe(kAnySource, kAnyTag, 2.0);
  // Queue order decides, not timestamps: the (3, 7) message arrived first.
  EXPECT_EQ(st.source, 3);
  EXPECT_EQ(st.tag, 7);
  EXPECT_EQ(f.ch.pending_messages(), 2u);
  // A wildcard recv agrees with what the probe reported.
  auto pr = make_recv(kAnySource, kAnyTag, 2.0);
  f.ch.post(pr);
  const Status recv_st = f.ch.wait_recv(pr);
  EXPECT_EQ(recv_st.source, st.source);
  EXPECT_EQ(recv_st.tag, st.tag);
  EXPECT_DOUBLE_EQ(recv_st.t_complete, st.t_complete);
}

TEST(Channel, AbortWakesBlockedWaiter) {
  ChannelFixture f;
  auto pr = make_recv(0, 0, 0.0);
  f.ch.post(pr);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    f.abort.store(true);
    f.exec->wake_all();  // no polling: abort must wake waiters explicitly
  });
  EXPECT_THROW(f.ch.wait_recv(pr), MpiError);
  killer.join();
}

TEST(Channel, AbortWakesRendezvousSender) {
  ChannelFixture f;
  auto msg = make_msg(0, 0, 0.0, 1.0, /*rendezvous=*/true);
  f.ch.deposit(msg);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    f.abort.store(true);
    f.exec->wake_all();
  });
  EXPECT_THROW((void)f.ch.wait_delivered(msg), MpiError);
  killer.join();
}

}  // namespace
