// Shared diagnostic JSON schema: mpisect-check and mpisect-analyze render
// findings through the same reporter, so one set of schema assertions must
// hold for both documents — parsed back with support::json_parse rather
// than regex-matched, and round-tripped field by field.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/report.hpp"
#include "checker/diagnostics.hpp"
#include "checker/report.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/message.hpp"
#include "mpisim/runtime.hpp"
#include "support/json.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace mpisect;
using support::JsonValue;

const std::set<std::string>& known_categories() {
  static const std::set<std::string> cats = [] {
    std::set<std::string> s;
    for (int c = 0; c < checker::kCategoryCount; ++c) {
      s.insert(checker::category_name(static_cast<checker::Category>(c)));
    }
    return s;
  }();
  return cats;
}

/// The one schema both tools' diagnostics arrays must satisfy.
void assert_diag_schema(const JsonValue& arr) {
  ASSERT_TRUE(arr.is_array());
  for (const JsonValue& d : arr.array) {
    ASSERT_TRUE(d.is_object());
    EXPECT_EQ(d.object.size(), 7u) << "diagnostic has exactly 7 fields";
    const JsonValue* category = d.find("category");
    const JsonValue* severity = d.find("severity");
    const JsonValue* rank = d.find("rank");
    const JsonValue* comm = d.find("comm");
    const JsonValue* t_virtual = d.find("t_virtual");
    const JsonValue* site = d.find("site");
    const JsonValue* message = d.find("message");
    ASSERT_TRUE(category && severity && rank && comm && t_virtual && site &&
                message);
    ASSERT_TRUE(category->is_string());
    EXPECT_TRUE(known_categories().count(category->string) == 1)
        << "unknown category " << category->string;
    ASSERT_TRUE(severity->is_string());
    EXPECT_TRUE(severity->string == "info" || severity->string == "warning" ||
                severity->string == "error")
        << severity->string;
    EXPECT_TRUE(rank->is_number());
    EXPECT_TRUE(comm->is_number());
    EXPECT_TRUE(t_virtual->is_number());
    EXPECT_TRUE(site->is_string());
    EXPECT_TRUE(message->is_string());
  }
}

std::vector<checker::Diagnostic> sample_diags() {
  std::vector<checker::Diagnostic> diags;
  for (int c = 0; c < checker::kCategoryCount; ++c) {
    checker::Diagnostic d;
    d.category = static_cast<checker::Category>(c);
    d.severity = static_cast<checker::Severity>(c % 3);
    d.rank = c;
    d.comm_context = c * 7;
    d.t_virtual = 0.125 * c;
    d.site = "site #" + std::to_string(c);
    d.message = "quote \" backslash \\ newline \n tab \t unicode \x01 done";
    diags.push_back(std::move(d));
  }
  return diags;
}

TEST(DiagSchema, CheckerJsonSatisfiesSchemaForEveryCategory) {
  const auto diags = sample_diags();
  const JsonValue doc = support::json_parse(checker::render_json(diags));
  assert_diag_schema(doc);
  ASSERT_EQ(doc.array.size(), diags.size());
}

TEST(DiagSchema, CheckerJsonRoundTripsFieldByField) {
  const auto diags = sample_diags();
  const JsonValue doc = support::json_parse(checker::render_json(diags));
  ASSERT_EQ(doc.array.size(), diags.size());
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const JsonValue& d = doc.array[i];
    EXPECT_EQ(d.find("category")->string,
              checker::category_name(diags[i].category));
    EXPECT_EQ(d.find("severity")->string,
              checker::severity_name(diags[i].severity));
    EXPECT_EQ(d.find("rank")->number, diags[i].rank);
    EXPECT_EQ(d.find("comm")->number, diags[i].comm_context);
    EXPECT_NEAR(d.find("t_virtual")->number, diags[i].t_virtual, 1e-6);
    EXPECT_EQ(d.find("site")->string, diags[i].site);
    // The message crosses json_escape and the parser's unescape: an exact
    // round-trip including quotes, backslashes, and control characters.
    EXPECT_EQ(d.find("message")->string, diags[i].message);
  }
}

TEST(DiagSchema, EmptyDiagnosticsRenderAsEmptyArray) {
  const JsonValue doc = support::json_parse(checker::render_json({}));
  ASSERT_TRUE(doc.is_array());
  EXPECT_TRUE(doc.array.empty());
}

TEST(DiagSchema, AnalyzerJsonEmbedsTheSameDiagnosticSchema) {
  // Record the race fixture and render the full analyzer document: its
  // "diagnostics" member must satisfy the checker schema unchanged.
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0x5EED;
  mpisim::World world(3, opts);
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "schema-fixture"});
  world.run([](mpisim::Ctx& ctx) {
    mpisim::Comm wc = ctx.world_comm();
    char buf[4] = {};
    static const char payload[4] = {};
    switch (wc.rank()) {
      case 0:
        wc.recv(buf, sizeof buf, mpisim::kAnySource, 5);
        wc.recv(buf, sizeof buf, mpisim::kAnySource, 5);
        break;
      case 1:
        wc.send(payload, sizeof payload, 0, 5);
        wc.send(payload, sizeof payload, 2, 9);
        break;
      case 2:
        wc.recv(buf, sizeof buf, 1, 9);
        wc.send(payload, sizeof payload, 0, 5);
        break;
      default:
        break;
    }
  });
  const trace::TraceFile tf = rec->finish();
  const analysis::AnalysisResult res = analysis::analyze(tf);
  ASSERT_FALSE(res.diagnostics.empty());

  const JsonValue doc = support::json_parse(analysis::render_json(res));
  ASSERT_TRUE(doc.is_object());
  const JsonValue* diags = doc.find("diagnostics");
  ASSERT_NE(diags, nullptr);
  assert_diag_schema(*diags);
  ASSERT_EQ(diags->array.size(), res.diagnostics.size());
  EXPECT_EQ(diags->array[0].find("category")->string, "MESSAGE_RACE");

  // Top-level analyzer document schema.
  ASSERT_NE(doc.find("app"), nullptr);
  EXPECT_TRUE(doc.find("app")->is_string());
  ASSERT_NE(doc.find("nranks"), nullptr);
  EXPECT_EQ(doc.find("nranks")->number, 3.0);
  ASSERT_NE(doc.find("total_events"), nullptr);
  ASSERT_NE(doc.find("makespan"), nullptr);
  const JsonValue* cp = doc.find("critical_path");
  ASSERT_NE(cp, nullptr);
  ASSERT_TRUE(cp->is_object());
  for (const char* key : {"t_total", "t_start", "start_rank", "end_rank",
                          "length", "cross_rank_hops"}) {
    ASSERT_NE(cp->find(key), nullptr) << key;
    EXPECT_TRUE(cp->find(key)->is_number()) << key;
  }
  ASSERT_NE(cp->find("sections"), nullptr);
  EXPECT_TRUE(cp->find("sections")->is_array());
  ASSERT_NE(cp->find("rank_onpath"), nullptr);
  EXPECT_EQ(cp->find("rank_onpath")->array.size(), 3u);
  ASSERT_NE(cp->find("rank_slack"), nullptr);
  EXPECT_EQ(cp->find("rank_slack")->array.size(), 3u);

  // %.17g round-trips doubles exactly: the bit-exact makespan property
  // survives the JSON export.
  EXPECT_EQ(doc.find("makespan")->number, res.interp.makespan);
  EXPECT_EQ(cp->find("t_total")->number, res.critical_path.t_total);
  EXPECT_EQ(cp->find("t_total")->number, doc.find("makespan")->number);
}

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_THROW((void)support::json_parse("{"), std::runtime_error);
  EXPECT_THROW((void)support::json_parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)support::json_parse("[1] trailing"),
               std::runtime_error);
  EXPECT_THROW((void)support::json_parse("\"unterminated"),
               std::runtime_error);
  EXPECT_THROW((void)support::json_parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)support::json_parse("nul"), std::runtime_error);
  EXPECT_THROW((void)support::json_parse(""), std::runtime_error);
}

TEST(JsonParser, ParsesNestedStructures) {
  const JsonValue v = support::json_parse(
      R"({"a": [1, 2.5, -3e-2], "b": {"c": true, "d": null}, "e": "xA"})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_TRUE(a && a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].number, -0.03);
  const JsonValue* b = v.find("b");
  ASSERT_TRUE(b && b->is_object());
  EXPECT_TRUE(b->find("c")->boolean);
  EXPECT_TRUE(b->find("d")->is_null());
  EXPECT_EQ(v.find("e")->string, "xA");
}

}  // namespace
