// Classical scaling laws: Amdahl, Gustafson-Barsis, Karp-Flatt and the
// algebraic identities connecting them.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/speedup/laws.hpp"
#include "core/speedup/series.hpp"

namespace {

using namespace mpisect::speedup;

TEST(Laws, SpeedupAndEfficiency) {
  EXPECT_DOUBLE_EQ(speedup(10.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(speedup(10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(efficiency(10.0, 2.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(efficiency(10.0, 2.0, 10), 0.5);
  EXPECT_DOUBLE_EQ(efficiency(10.0, 2.0, 0), 0.0);
}

TEST(Laws, AmdahlKnownValues) {
  // fs = 0.1: S(10) = 1/(0.1 + 0.9/10) ~ 5.263.
  EXPECT_NEAR(amdahl_bound(0.1, 10), 1.0 / 0.19, 1e-12);
  EXPECT_DOUBLE_EQ(amdahl_bound(0.0, 16), 16.0);  // embarrassingly parallel
  EXPECT_DOUBLE_EQ(amdahl_bound(1.0, 64), 1.0);   // fully serial
}

TEST(Laws, AmdahlMonotoneInP) {
  double prev = 0.0;
  for (int p = 1; p <= 4096; p *= 2) {
    const double s = amdahl_bound(0.05, p);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_LT(prev, amdahl_limit(0.05));
}

TEST(Laws, AmdahlLimit) {
  EXPECT_DOUBLE_EQ(amdahl_limit(0.25), 4.0);
  EXPECT_TRUE(std::isinf(amdahl_limit(0.0)));
  EXPECT_DOUBLE_EQ(amdahl_limit(1.0), 1.0);
}

TEST(Laws, GustafsonScaled) {
  EXPECT_DOUBLE_EQ(gustafson_scaled(0.0, 8), 8.0);
  EXPECT_DOUBLE_EQ(gustafson_scaled(1.0, 8), 1.0);
  EXPECT_DOUBLE_EQ(gustafson_scaled(0.5, 9), 5.0);
}

TEST(Laws, GustafsonExceedsAmdahlForLargeP) {
  // Scaled speedup grows linearly; fixed-size speedup saturates.
  EXPECT_GT(gustafson_scaled(0.1, 1000), amdahl_bound(0.1, 1000));
}

TEST(Laws, KarpFlattRecoversAmdahlFraction) {
  // If the measured speedup exactly follows Amdahl with fraction fs, the
  // Karp-Flatt metric recovers fs at every p.
  for (const double fs : {0.01, 0.05, 0.2, 0.5}) {
    for (const int p : {2, 4, 16, 128}) {
      const double s = amdahl_bound(fs, p);
      EXPECT_NEAR(karp_flatt(s, p), fs, 1e-10)
          << "fs=" << fs << " p=" << p;
    }
  }
}

TEST(Laws, KarpFlattEdgeCases) {
  EXPECT_DOUBLE_EQ(karp_flatt(5.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(karp_flatt(0.0, 8), 0.0);
  // Perfect linear speedup -> zero experimentally determined serial part.
  EXPECT_NEAR(karp_flatt(8.0, 8), 0.0, 1e-12);
  // Slowdown (S < 1) yields fraction > 1 — a red flag the tool surfaces.
  EXPECT_GT(karp_flatt(0.5, 8), 1.0);
}

TEST(Laws, ImpliedSerialFractionAlias) {
  EXPECT_DOUBLE_EQ(implied_serial_fraction(4.0, 8), karp_flatt(4.0, 8));
}

TEST(Series, AddAndLookup) {
  ScalingSeries s("walltime");
  s.add(4, 2.5);
  s.add(1, 10.0);
  s.add(2, 5.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.points()[0].p, 1);  // kept sorted
  EXPECT_EQ(s.points()[2].p, 4);
  EXPECT_DOUBLE_EQ(*s.at(2), 5.0);
  EXPECT_FALSE(s.at(3).has_value());
  EXPECT_DOUBLE_EQ(*s.sequential(), 10.0);
}

TEST(Series, ResampleOverwrites) {
  ScalingSeries s("x");
  s.add(2, 5.0);
  s.add(2, 4.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(*s.at(2), 4.0);
}

TEST(Series, BestPoint) {
  ScalingSeries s("x");
  s.add(1, 10.0);
  s.add(8, 2.0);
  s.add(64, 3.0);
  const auto best = s.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->p, 8);
  EXPECT_DOUBLE_EQ(best->time, 2.0);
  EXPECT_FALSE(ScalingSeries("empty").best().has_value());
}

TEST(Series, SpeedupDerivation) {
  ScalingSeries s("t");
  s.add(1, 12.0);
  s.add(4, 3.0);
  s.add(8, 2.0);
  const auto sp = s.to_speedup();
  EXPECT_DOUBLE_EQ(*sp.at(1), 1.0);
  EXPECT_DOUBLE_EQ(*sp.at(4), 4.0);
  EXPECT_DOUBLE_EQ(*sp.at(8), 6.0);
  const auto eff = s.to_efficiency();
  EXPECT_DOUBLE_EQ(*eff.at(4), 1.0);
  EXPECT_DOUBLE_EQ(*eff.at(8), 0.75);
}

TEST(Series, SpeedupWithExplicitReference) {
  ScalingSeries s("t");
  s.add(4, 3.0);  // no p=1 sample
  EXPECT_TRUE(s.to_speedup().empty());  // no reference -> empty
  const auto sp = s.to_speedup(12.0);
  EXPECT_DOUBLE_EQ(*sp.at(4), 4.0);
}

TEST(Series, XsYsForCharting) {
  ScalingSeries s("t");
  s.add(1, 5.0);
  s.add(2, 3.0);
  EXPECT_EQ(s.xs(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.ys(), (std::vector<double>{5.0, 3.0}));
}

class AmdahlGustafsonCross : public ::testing::TestWithParam<double> {};

TEST_P(AmdahlGustafsonCross, BothReduceToTrivialAtP1) {
  const double fs = GetParam();
  EXPECT_DOUBLE_EQ(amdahl_bound(fs, 1), 1.0);
  EXPECT_DOUBLE_EQ(gustafson_scaled(fs, 1), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Fractions, AmdahlGustafsonCross,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

}  // namespace
