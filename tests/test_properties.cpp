// Randomized property tests across modules, checked against independent
// reference models. All randomness is seeded (deterministic failures).
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "core/sections/api.hpp"
#include "mpisim/runtime.hpp"
#include "support/rng.hpp"

namespace {

using namespace mpisect;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

// --------------------------------------------------------------------------
// Property 1: random balanced nesting sequences — the section runtime must
// agree with a plain reference stack on every operation's outcome.
// --------------------------------------------------------------------------

class NestingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NestingProperty, RuntimeAgreesWithReferenceStack) {
  const std::uint64_t seed = GetParam();
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  world.run([seed](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    support::SequentialRng rng(seed);
    std::vector<std::string> reference;  // the model: a simple stack
    const char* labels[4] = {"alpha", "beta", "gamma", "delta"};
    for (int op = 0; op < 400; ++op) {
      const bool do_enter =
          reference.empty() ? true : rng.uniform() < 0.55;
      if (do_enter) {
        const auto* label = labels[rng.next() % 4];
        EXPECT_EQ(sections::MPIX_Section_enter(comm, label),
                  sections::kSectionOk);
        reference.emplace_back(label);
      } else {
        // Half the time exit correctly, half the time attempt a wrong
        // label and verify rejection without state damage.
        if (rng.uniform() < 0.5) {
          EXPECT_EQ(sections::MPIX_Section_exit(comm,
                                                reference.back().c_str()),
                    sections::kSectionOk);
          reference.pop_back();
        } else {
          std::string wrong = reference.back() + "-x";
          EXPECT_EQ(sections::MPIX_Section_exit(comm, wrong.c_str()),
                    sections::kSectionErrNotNested);
        }
      }
    }
    // Drain what's left.
    while (!reference.empty()) {
      EXPECT_EQ(sections::MPIX_Section_exit(comm, reference.back().c_str()),
                sections::kSectionOk);
      reference.pop_back();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestingProperty,
                         ::testing::Values(1u, 17u, 42u, 1234u, 99999u));

// --------------------------------------------------------------------------
// Property 2: random same-(src,dst,tag) traffic — receive order must equal
// send order (non-overtaking), whatever the payload sizes (eager and
// rendezvous mixed).
// --------------------------------------------------------------------------

class OrderingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingProperty, MixedSizeTrafficNeverOvertakes) {
  const std::uint64_t seed = GetParam();
  World world(2, ideal_options());
  world.run([seed](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    support::SequentialRng rng(seed);
    const int n = 60;
    // Pre-generate the same size sequence on both ranks.
    std::vector<std::size_t> sizes;
    for (int i = 0; i < n; ++i) {
      // Mix far below and far above the 16 KiB eager threshold.
      sizes.push_back(rng.uniform() < 0.5
                          ? 16 + (rng.next() % 512)
                          : 32768 + (rng.next() % 4096));
    }
    if (ctx.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        std::vector<std::uint32_t> buf(sizes[static_cast<std::size_t>(i)] /
                                           sizeof(std::uint32_t) +
                                       1);
        buf[0] = static_cast<std::uint32_t>(i);
        comm.send(buf.data(), sizes[static_cast<std::size_t>(i)], 1, 0);
      }
    } else {
      for (int i = 0; i < n; ++i) {
        std::vector<std::uint32_t> buf(sizes[static_cast<std::size_t>(i)] /
                                           sizeof(std::uint32_t) +
                                       1);
        const auto st =
            comm.recv(buf.data(), sizes[static_cast<std::size_t>(i)], 0, 0);
        EXPECT_EQ(st.bytes, sizes[static_cast<std::size_t>(i)]);
        EXPECT_EQ(buf[0], static_cast<std::uint32_t>(i));  // strict order
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingProperty,
                         ::testing::Values(7u, 21u, 333u));

// --------------------------------------------------------------------------
// Property 3: virtual time is monotone along every rank's program order,
// regardless of traffic pattern.
// --------------------------------------------------------------------------

class MonotonicityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonotonicityProperty, ClockNeverGoesBackwards) {
  const std::uint64_t seed = GetParam();
  WorldOptions opts;
  opts.machine = MachineModel::nehalem_cluster();  // jitter active
  opts.seed = seed;
  const int p = 6;
  World world(p, opts);
  std::vector<int> violations(static_cast<std::size_t>(p), 0);
  world.run([&, seed](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    support::SequentialRng rng(seed ^ 0xABCDu);  // same schedule every rank
    double last = ctx.now();
    auto check = [&] {
      if (ctx.now() < last) ++violations[static_cast<std::size_t>(ctx.rank())];
      last = ctx.now();
    };
    for (int i = 0; i < 80; ++i) {
      const double pick = rng.uniform();
      if (pick < 0.3) {
        ctx.compute(1e-4 * rng.uniform());
      } else if (pick < 0.6) {
        const int right = (ctx.rank() + 1) % p;
        const int left = (ctx.rank() - 1 + p) % p;
        comm.sendrecv(nullptr, 2048, right, 1, nullptr, 2048, left, 1);
      } else if (pick < 0.8) {
        comm.barrier();
      } else {
        comm.allreduce_one(1.0, mpisim::ReduceOp::Sum);
      }
      check();
    }
  });
  for (const int v : violations) EXPECT_EQ(v, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityProperty,
                         ::testing::Values(3u, 1337u, 777777u));

// --------------------------------------------------------------------------
// Property 4: collective results are independent of the chosen algorithm
// and of jitter — data and timing concerns must not mix.
// --------------------------------------------------------------------------

TEST(AlgorithmIndependence, ScatterGatherDataIdenticalUnderJitter) {
  for (const mpisim::CollAlgo algo :
       {mpisim::CollAlgo::Linear, mpisim::CollAlgo::Binomial}) {
    WorldOptions opts;
    opts.machine = MachineModel::nehalem_cluster();  // heavy jitter
    opts.scatter_algo = algo;
    opts.gather_algo = algo;
    World world(9, opts);
    world.run([](Ctx& ctx) {
      Comm comm = ctx.world_comm();
      std::vector<int> all;
      if (ctx.rank() == 4) {  // non-zero root, too
        all.resize(9 * 5);
        for (std::size_t i = 0; i < all.size(); ++i) {
          all[i] = static_cast<int>(i * 3);
        }
      }
      int mine[5] = {};
      comm.scatter(ctx.rank() == 4 ? all.data() : nullptr, sizeof mine, mine,
                   4);
      for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(mine[i], (ctx.rank() * 5 + i) * 3);
      }
    });
  }
}

}  // namespace
