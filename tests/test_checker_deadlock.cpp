// mpicheck deadlock detection: wait-for cycles and orphaned waits are
// reported with the right ranks and the world is aborted; deadlock-free
// communication patterns produce no findings.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "checker/checker.hpp"
#include "checker/report.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect;
using checker::Category;
using checker::MpiChecker;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::Err;
using mpisim::MachineModel;
using mpisim::MpiError;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

checker::CheckerOptions fast_watchdog() {
  checker::CheckerOptions opts;
  opts.deadlock_timeout_ms = 250;
  opts.poll_interval_ms = 10;
  return opts;
}

TEST(CheckerDeadlock, CrossReceiveCycleIsReportedAndAborted) {
  World world(2, ideal_options());
  auto check = MpiChecker::install(world, fast_watchdog());

  bool aborted = false;
  try {
    world.run([](Ctx& ctx) {
      Comm world_comm = ctx.world_comm();
      std::array<char, 4> buf{};
      // Head-to-head receives: the classic deadlock.
      world_comm.recv(buf.data(), buf.size(), 1 - world_comm.rank(), 0);
    });
  } catch (const MpiError& err) {
    aborted = err.code() == Err::Aborted;
  }
  EXPECT_TRUE(aborted) << "the checker should abort a deadlocked world";
  EXPECT_TRUE(check->deadlock_reported());

  check->analyze();
  const auto diags = check->diagnostics();
  ASSERT_EQ(check->sink().count(Category::Deadlock), 1u);
  const auto& d = diags.front();
  EXPECT_EQ(d.category, Category::Deadlock);
  EXPECT_EQ(d.rank, 0);  // cycles are reported from their smallest rank
  EXPECT_NE(d.message.find("0->1->0"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("MPI_Recv"), std::string::npos) << d.message;
}

TEST(CheckerDeadlock, OrphanedWaitOnFinishedRankIsReported) {
  World world(2, ideal_options());
  auto check = MpiChecker::install(world, fast_watchdog());

  bool aborted = false;
  try {
    world.run([](Ctx& ctx) {
      Comm world_comm = ctx.world_comm();
      if (world_comm.rank() == 0) {
        std::array<char, 4> buf{};
        world_comm.recv(buf.data(), buf.size(), 1, /*tag=*/5);
      }
      // Rank 1 finishes immediately: rank 0's receive can never complete.
    });
  } catch (const MpiError& err) {
    aborted = err.code() == Err::Aborted;
  }
  EXPECT_TRUE(aborted);
  EXPECT_TRUE(check->deadlock_reported());

  bool found = false;
  for (const auto& d : check->diagnostics()) {
    if (d.category == Category::Deadlock && d.rank == 0 &&
        d.message.find("MPI_Finalize") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CheckerDeadlock, CollectiveVsReceiveCycleIsReported) {
  World world(2, ideal_options());
  auto check = MpiChecker::install(world, fast_watchdog());

  try {
    world.run([](Ctx& ctx) {
      Comm world_comm = ctx.world_comm();
      if (world_comm.rank() == 0) {
        std::array<char, 4> buf{};
        world_comm.recv(buf.data(), buf.size(), 1, 0);  // never sent
      } else {
        world_comm.barrier();  // rank 0 never arrives
      }
    });
  } catch (const MpiError&) {
  }
  EXPECT_TRUE(check->deadlock_reported());
  EXPECT_GE(check->sink().count(Category::Deadlock), 1u);
}

TEST(CheckerDeadlock, CleanExchangePatternHasNoFindings) {
  World world(4, ideal_options());
  auto check = MpiChecker::install(world, fast_watchdog());

  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    const int r = world_comm.rank();
    const int n = world_comm.size();
    std::array<char, 16> buf{};
    for (int step = 0; step < 3; ++step) {
      world_comm.sendrecv(buf.data(), buf.size(), (r + 1) % n, 0, buf.data(),
                          buf.size(), (r + n - 1) % n, 0);
      world_comm.barrier();
      world_comm.bcast(buf.data(), buf.size(), 0);
    }
  });

  EXPECT_FALSE(check->deadlock_reported());
  check->analyze();
  EXPECT_EQ(check->sink().count(), 0u)
      << checker::render_text(check->diagnostics());
}

}  // namespace
