// Sessions-style world construction — the API redesign's contract:
//
//   * Session process-set queries mirror MPI_Session_get_num_psets and
//     friends (two built-ins: mpi://WORLD, mpi://SELF);
//   * WorldBuilder specs round-trip (describe() strings feed back through
//     the matching setters) and reject unknown presets/options;
//   * the deprecated eager World(nranks, options) constructor warns exactly
//     once per process and stays observably identical to the lazy path:
//     same final virtual times, same .mpst bytes, same telemetry CSVs;
//   * both matching engines and all execution backends produce bit-identical
//     artifacts — the differential matrix behind the hashed engine;
//   * streaming trace writes (TraceRecorder::save, codec::compress_stream)
//     are byte-identical to the monolithic finish().encode()/compress();
//   * the v5 trace format round-trips the hierarchical-NBC machine flag;
//   * a 65,536-rank world builds in O(1) and (gated: MPISECT_SCALE_TESTS=1,
//     Release only) completes a convolution step.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "codec/mpstz.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/error.hpp"
#include "mpisim/progress.hpp"
#include "mpisim/session.hpp"
#include "support/log.hpp"
#include "telemetry/export.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/timeline.hpp"
#include "trace/file.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace mpisect;
using mpisim::Session;
using mpisim::World;
using mpisim::WorldBuilder;
using mpisim::WorldOptions;

// ---------------------------------------------------------------------------
// Process-set queries
// ---------------------------------------------------------------------------

TEST(Session, PsetQueriesFollowTheSessionsShape) {
  Session s(16);
  EXPECT_EQ(s.num_psets(), 2);
  EXPECT_EQ(s.pset_name(0), "mpi://WORLD");
  EXPECT_EQ(s.pset_name(1), "mpi://SELF");
  EXPECT_EQ(s.pset_size("mpi://WORLD"), 16);
  EXPECT_EQ(s.pset_size("mpi://SELF"), 1);
  EXPECT_TRUE(s.has_pset("mpi://WORLD"));
  EXPECT_FALSE(s.has_pset("mpi://unknown"));
  EXPECT_THROW(s.pset_name(2), mpisim::MpiError);
  EXPECT_THROW((void)s.pset_size("mpi://unknown"), mpisim::MpiError);
}

TEST(Session, RejectsNonPositiveSizes) {
  EXPECT_THROW(Session(0), mpisim::MpiError);
  EXPECT_THROW(Session(-4), mpisim::MpiError);
}

// ---------------------------------------------------------------------------
// Spec vocabulary round-trips
// ---------------------------------------------------------------------------

TEST(WorldBuilder, DescribeUsesCanonicalRoundTripSpecs) {
  Session s(8);
  auto b = s.world_builder()
               .exec_spec("cooperative:workers=4,stack=256")
               .match_spec("hashed:buckets=64")
               .progress_spec("blocking-only")
               .seed(7);
  EXPECT_EQ(b.describe(),
            "ranks=8 exec=cooperative:workers=4,stack=256 "
            "match=hashed:buckets=64 progress=blocking-only seed=7");
  // Feed every spec back through its setter: a fixed point.
  const auto& o = b.peek_options();
  mpisim::ExecModel em;
  em.backend = o.exec;
  em.workers = o.workers;
  em.stack_kb = o.stack_kb;
  EXPECT_EQ(mpisim::ExecModel::parse(em.spec()), em);
  EXPECT_EQ(mpisim::MatchModel::parse(o.match.spec()), o.match);
  EXPECT_EQ(mpisim::ProgressModel::parse(o.progress.spec()), o.progress);
}

TEST(WorldBuilder, SpecsRejectUnknownPresetsAndOptions) {
  Session s(4);
  EXPECT_THROW(s.world_builder().exec_spec("fibers"), mpisim::MpiError);
  EXPECT_THROW(s.world_builder().exec_spec("threads:workers=2"),
               mpisim::MpiError);
  EXPECT_THROW(s.world_builder().exec_spec("cooperative:bogus=1"),
               mpisim::MpiError);
  EXPECT_THROW(s.world_builder().match_spec("btree"), mpisim::MpiError);
  EXPECT_THROW(s.world_builder().match_spec("legacy:buckets=8"),
               mpisim::MpiError);
}

// ---------------------------------------------------------------------------
// Deprecated eager constructor: warn-once shim
// ---------------------------------------------------------------------------

TEST(Session, EagerCtorWarnsExactlyOncePerProcess) {
  World::reset_eager_ctor_warning_for_test();
  std::string log;
  support::set_log_capture(&log);
  {
    WorldOptions opts;
    World first(2, opts);
    World second(2, opts);
  }
  support::set_log_capture(nullptr);
  EXPECT_NE(log.find("deprecated"), std::string::npos) << log;
  EXPECT_NE(log.find("Session"), std::string::npos) << log;
  // One warning for two constructions.
  EXPECT_EQ(log.find("deprecated"), log.rfind("deprecated")) << log;

  // The lazy path never warns.
  World::reset_eager_ctor_warning_for_test();
  log.clear();
  support::set_log_capture(&log);
  { const auto w = Session(2).world_builder().build(); }
  support::set_log_capture(nullptr);
  EXPECT_EQ(log.find("deprecated"), std::string::npos) << log;
}

// ---------------------------------------------------------------------------
// Differential bit-identity: eager/lazy x backends x matching engines
// ---------------------------------------------------------------------------

struct RunArtifacts {
  std::vector<double> final_times;
  std::vector<std::uint8_t> trace;
  std::string timeline_csv;
  std::string counters_csv;
};

RunArtifacts run_convolution(World& world) {
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "session-diff"});
  telemetry::SamplerOptions sopts;
  sopts.dt = 0.05;
  auto sampler = telemetry::TelemetrySampler::install(world, sopts);
  apps::conv::ConvolutionConfig cfg;
  cfg.width = 512;
  cfg.height = 256;
  cfg.steps = 6;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  const auto tl = telemetry::build_timeline(*sampler);
  RunArtifacts a;
  a.final_times = world.final_times();
  a.trace = rec->finish().encode();
  a.timeline_csv = telemetry::timeline_csv(tl);
  a.counters_csv = telemetry::counters_csv(tl);
  return a;
}

RunArtifacts run_spec(const std::string& exec, const std::string& match) {
  WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0xBEEF;
  const auto world = Session(8, opts)
                         .world_builder()
                         .exec_spec(exec)
                         .match_spec(match)
                         .build();
  return run_convolution(*world);
}

void expect_identical(const RunArtifacts& a, const RunArtifacts& b,
                      const std::string& what) {
  EXPECT_EQ(a.final_times, b.final_times) << what;
  EXPECT_EQ(a.trace, b.trace) << what;
  EXPECT_EQ(a.timeline_csv, b.timeline_csv) << what;
  EXPECT_EQ(a.counters_csv, b.counters_csv) << what;
}

TEST(SessionDifferential, EagerShimMatchesLazyBuild) {
  WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0xBEEF;
  World eager(8, opts);
  const RunArtifacts a = run_convolution(eager);
  const auto lazy = Session(8, opts).world_builder().build();
  const RunArtifacts b = run_convolution(*lazy);
  expect_identical(a, b, "eager vs lazy");
}

TEST(SessionDifferential, BackendsAndEnginesAreBitIdentical) {
  const RunArtifacts ref = run_spec("cooperative:workers=1", "hashed");
  ASSERT_EQ(ref.final_times.size(), 8u);
  const char* execs[] = {"cooperative:workers=1", "cooperative:workers=4",
                         "threads"};
  const char* matches[] = {"hashed", "legacy"};
  for (const char* e : execs) {
    for (const char* m : matches) {
      const RunArtifacts cur = run_spec(e, m);
      expect_identical(ref, cur,
                       std::string("exec=") + e + " match=" + m);
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming trace writes are byte-identical to monolithic assembly
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(SessionStreaming, RecorderSaveMatchesFinishEncode) {
  const auto world = Session(4).world_builder().seed(0x5EED).build();
  sections::SectionRuntime::install(*world);
  auto rec = trace::TraceRecorder::install(*world, {.app = "stream"});
  apps::conv::ConvolutionConfig cfg;
  cfg.width = 256;
  cfg.height = 128;
  cfg.steps = 4;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world->run(std::ref(app));

  const trace::TraceFile tf = rec->finish();
  const std::vector<std::uint8_t> monolithic = tf.encode();
  EXPECT_GT(rec->total_events(), 0u);

  const std::string path = ::testing::TempDir() + "session_stream.mpst";
  rec->save(path);
  EXPECT_EQ(slurp(path), monolithic);
  std::remove(path.c_str());

  // skeleton() + finish_rank() compose to finish().
  const trace::TraceFile skel = rec->skeleton();
  ASSERT_EQ(skel.ranks.size(), tf.ranks.size());
  for (std::size_t r = 0; r < skel.ranks.size(); ++r) {
    EXPECT_TRUE(skel.ranks[r].events.empty());
    const trace::RankStream rs = rec->finish_rank(static_cast<int>(r));
    EXPECT_EQ(rs.events.size(), tf.ranks[r].events.size());
  }

  // compress_stream over the skeleton matches the whole-file compress.
  const std::vector<std::uint8_t> whole = codec::compress(tf);
  trace::RankStream scratch;
  const std::vector<std::uint8_t> streamed = codec::compress_stream(
      skel, [&](int r) -> const trace::RankStream& {
        scratch = rec->finish_rank(r);
        return scratch;
      });
  EXPECT_EQ(streamed, whole);
}

// ---------------------------------------------------------------------------
// Trace v5: hierarchical-NBC flag round-trips
// ---------------------------------------------------------------------------

TEST(SessionTraceV5, HierarchicalNbcFlagRoundTrips) {
  const auto world = Session(2).world_builder().seed(1).build();
  sections::SectionRuntime::install(*world);
  auto rec = trace::TraceRecorder::install(*world, {.app = "v5"});
  world->run([](mpisim::Ctx& ctx) {
    ctx.world_comm().bcast(nullptr, 64, 0);
  });
  trace::TraceFile tf = rec->finish();
  static_assert(trace::kTraceVersion == 5);

  for (const bool flag : {false, true}) {
    tf.header.machine.net.hierarchical_nbc = flag;
    const trace::TraceFile back = trace::TraceFile::decode(tf.encode());
    EXPECT_EQ(back.header.machine.net.hierarchical_nbc, flag);
  }
}

TEST(SessionTraceV5, HierarchicalNbcCostSplitsIntraAndInter) {
  mpisim::NetworkModel net;
  net.cores_per_node = 8;
  net.hierarchical_nbc = false;
  // Flat: exactly the historical single-tree formula on the fabric links.
  EXPECT_EQ(net.nbc_cost(64, 1024),
            mpisim::nbc_algo_cost(net.inter_node.latency,
                                  net.inter_node.bandwidth, 64, 1024));
  net.hierarchical_nbc = true;
  // Hierarchical: intra-node stage over 8 + inter-node stage over 8 nodes.
  EXPECT_EQ(net.nbc_cost(64, 1024),
            mpisim::nbc_algo_cost(net.intra_node.latency,
                                  net.intra_node.bandwidth, 8, 1024) +
                mpisim::nbc_algo_cost(net.inter_node.latency,
                                      net.inter_node.bandwidth, 8, 1024));
  // A single node never pays fabric rounds.
  EXPECT_EQ(net.nbc_cost(8, 1024),
            mpisim::nbc_algo_cost(net.intra_node.latency,
                                  net.intra_node.bandwidth, 8, 1024));
}

// ---------------------------------------------------------------------------
// Extreme scale
// ---------------------------------------------------------------------------

TEST(SessionScale, SixtyFiveKWorldBuildsLazily) {
  // Construction alone must be cheap at 65,536 ranks — this is the lazy
  // path's contract; running it is the gated smoke below.
  const auto world = Session(65536).world_builder().build();
  EXPECT_EQ(world->size(), 65536);
}

TEST(SessionScale, SixtyFiveKConvolutionStepCompletes) {
  if (std::getenv("MPISECT_SCALE_TESTS") == nullptr) {
    GTEST_SKIP() << "set MPISECT_SCALE_TESTS=1 to run the 65k smoke";
  }
#ifndef NDEBUG
  GTEST_SKIP() << "65k smoke is Release-only";
#else
  const auto world = Session(65536)
                         .world_builder()
                         .machine(mpisim::MachineModel::nehalem_cluster())
                         .seed(1)
                         .match_spec("hashed")
                         .build();
  sections::SectionRuntime::install(*world);
  apps::conv::ConvolutionConfig cfg;
  cfg.width = 256;
  cfg.height = 65536;  // row decomposition needs nranks <= height
  cfg.steps = 1;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world->run(std::ref(app));
  EXPECT_EQ(world->final_times().size(), 65536u);
  EXPECT_GT(world->elapsed(), 0.0);
#endif
}

}  // namespace
