// mpicheck resource-leak analysis: pending nonblocking operations and
// never-freed communicators are reported at finalize; disciplined code
// reports nothing.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "checker/checker.hpp"
#include "checker/report.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect;
using checker::Category;
using checker::MpiChecker;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(CheckerLeaks, PendingIsendAtFinalizeIsReported) {
  World world(2, ideal_options());
  auto check = MpiChecker::install(world);

  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    if (world_comm.rank() == 0) {
      static const std::array<char, 8> payload{};
      auto req = world_comm.isend(payload.data(), payload.size(), 1, 9);
      (void)req;  // never waited
    }
  });

  check->analyze();
  ASSERT_EQ(check->sink().count(Category::ResourceLeak), 1u)
      << checker::render_text(check->diagnostics());
  const auto diags = check->diagnostics();
  EXPECT_EQ(diags[0].rank, 0);
  EXPECT_NE(diags[0].message.find("MPI_Isend"), std::string::npos);
  EXPECT_NE(diags[0].message.find("never completed"), std::string::npos);
}

TEST(CheckerLeaks, PendingIrecvAtFinalizeIsReported) {
  World world(2, ideal_options());
  auto check = MpiChecker::install(world);

  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    if (world_comm.rank() == 1) {
      std::array<char, 8> buf{};
      auto req = world_comm.irecv(buf.data(), buf.size(), 0, 3);
      (void)req;  // no matching send; never waited
    }
  });

  check->analyze();
  ASSERT_EQ(check->sink().count(Category::ResourceLeak), 1u);
  const auto diags = check->diagnostics();
  EXPECT_EQ(diags[0].rank, 1);
}

TEST(CheckerLeaks, UnfreedCommunicatorIsReportedWithLeakingRanks) {
  World world(4, ideal_options());
  auto check = MpiChecker::install(world);

  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    Comm dup = world_comm.dup();
    // Ranks 0 and 2 free their handle; 1 and 3 leak it.
    if (world_comm.rank() % 2 == 0) dup.free();
  });

  check->analyze();
  ASSERT_EQ(check->sink().count(Category::ResourceLeak), 1u)
      << checker::render_text(check->diagnostics());
  const auto diags = check->diagnostics();
  const auto& d = diags[0];
  EXPECT_EQ(d.rank, 1);  // first leaking rank
  EXPECT_NE(d.message.find("never freed by 2 rank(s): 1,3"),
            std::string::npos)
      << d.message;
}

TEST(CheckerLeaks, CompletedRequestsAndFreedCommsAreClean) {
  World world(2, ideal_options());
  auto check = MpiChecker::install(world);

  world.run([](Ctx& ctx) {
    Comm world_comm = ctx.world_comm();
    const int peer = 1 - world_comm.rank();
    std::array<char, 8> out{};
    std::array<char, 8> in{};
    auto sreq = world_comm.isend(out.data(), out.size(), peer, 4);
    auto rreq = world_comm.irecv(in.data(), in.size(), peer, 4);
    rreq.wait();
    sreq.wait();
    Comm dup = world_comm.dup();
    dup.free();
  });

  check->analyze();
  EXPECT_EQ(check->sink().count(), 0u)
      << checker::render_text(check->diagnostics());
}

}  // namespace
