// Shape-regression tests: the qualitative paper claims recorded in
// EXPERIMENTS.md, pinned as assertions on reduced-size modeled runs so a
// calibration change that breaks a figure's *shape* fails CI rather than
// silently drifting. (Absolute values are free to move; orderings,
// crossovers and inflexions are not.)
#include <gtest/gtest.h>

#include <map>

#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "core/sections/runtime.hpp"
#include "core/speedup/inflexion.hpp"
#include "profiler/section_profiler.hpp"

namespace {

using namespace mpisect;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

struct Sample {
  double walltime = 0.0;
  std::map<std::string, double> per_process;
};

Sample run_convolution(int p, int steps) {
  WorldOptions opts;
  opts.machine = MachineModel::nehalem_cluster();
  World world(p, opts);
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  Sample s;
  s.walltime = world.elapsed();
  for (const auto& t : prof.totals()) {
    s.per_process[t.label] = t.mean_per_process;
  }
  return s;
}

Sample run_lulesh(const MachineModel& machine, int p, int s_edge, int threads,
                  int steps) {
  WorldOptions opts;
  opts.machine = machine;
  World world(p, opts);
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  apps::lulesh::LuleshConfig cfg;
  cfg.s = s_edge;
  cfg.steps = steps;
  cfg.omp_threads = threads;
  cfg.full_fidelity = false;
  apps::lulesh::LuleshApp app(cfg);
  world.run(std::ref(app));
  Sample out;
  out.walltime = world.elapsed();
  for (const auto& t : prof.totals()) {
    out.per_process[t.label] = t.mean_per_process;
  }
  return out;
}

TEST(ShapeFig5, CommunicationOvertakesComputeAtScale) {
  // Paper Fig. 5(a): CONVOLVE dominates at low p; HALO overtakes by ~128.
  const auto p8 = run_convolution(8, 150);
  const auto p128 = run_convolution(128, 150);
  EXPECT_GT(p8.per_process.at("CONVOLVE"), p8.per_process.at("HALO") * 4.0);
  EXPECT_GT(p128.per_process.at("HALO"), p128.per_process.at("CONVOLVE"));
}

TEST(ShapeFig5, SpeedupSaturates) {
  // Paper Fig. 5(d): near-linear at 8, far below linear by 128.
  const auto p1 = run_convolution(1, 120);
  const auto p8 = run_convolution(8, 120);
  const auto p128 = run_convolution(128, 120);
  const double s8 = p1.walltime / p8.walltime;
  const double s128 = p1.walltime / p128.walltime;
  EXPECT_GT(s8, 6.0);
  EXPECT_LT(s128, 70.0);   // << 128
  EXPECT_GT(s128, s8);     // still faster in absolute terms
}

TEST(ShapeFig8, MpiBeatsOpenMpInStrongScalingOnBroadwell) {
  // Paper Fig. 8: p=8,t=1 beats p=1,t=8 at the same total element count.
  const auto mpi8 =
      run_lulesh(MachineModel::broadwell_2s(), 8, 24, 1, 60);
  const auto omp8 =
      run_lulesh(MachineModel::broadwell_2s(), 1, 48, 8, 60);
  EXPECT_LT(mpi8.walltime, omp8.walltime);
}

TEST(ShapeFig8, OpenMpStillHelpsAtSingleProcess) {
  const auto t1 = run_lulesh(MachineModel::broadwell_2s(), 1, 32, 1, 40);
  const auto t16 = run_lulesh(MachineModel::broadwell_2s(), 1, 32, 16, 40);
  EXPECT_LT(t16.walltime, t1.walltime * 0.25);
}

TEST(ShapeFig9, ThreadsHarmKnlAtHighRankCounts) {
  // Paper Fig. 9: at p=27 on KNL, adding threads gives no acceleration and
  // eventually slows the code down.
  const auto t1 = run_lulesh(MachineModel::knl(), 27, 16, 1, 40);
  const auto t4 = run_lulesh(MachineModel::knl(), 27, 16, 4, 40);
  const auto t32 = run_lulesh(MachineModel::knl(), 27, 16, 32, 40);
  EXPECT_GT(t4.walltime, t1.walltime * 0.95);  // no real acceleration
  EXPECT_GT(t32.walltime, t1.walltime * 2.0);  // clear slowdown
}

TEST(ShapeFig10, InflexionPointInPaperRange) {
  // Paper Fig. 10: pure-OpenMP walltime on KNL bottoms out around 24
  // threads (we accept 16..32) and clearly rises at 256.
  speedup::ScalingSeries wall("walltime");
  for (const int t : {1, 4, 8, 16, 24, 32, 64, 128, 256}) {
    wall.add(t, run_lulesh(MachineModel::knl(), 1, 32, t, 40).walltime);
  }
  const auto ip = speedup::find_inflexion(wall);
  ASSERT_TRUE(ip.has_value());
  EXPECT_GE(ip->p, 16);
  EXPECT_LE(ip->p, 32);
  EXPECT_GT(*wall.at(256), ip->time * 1.3);
}

TEST(ShapeFig10, PartialBoundTightAtInflexion) {
  // The headline: bound from the two Lagrange sections ~ measured speedup.
  speedup::ScalingSeries wall("walltime");
  std::map<int, Sample> samples;
  for (const int t : {1, 8, 16, 24, 32, 64}) {
    samples[t] = run_lulesh(MachineModel::knl(), 1, 32, t, 60);
    wall.add(t, samples[t].walltime);
  }
  const auto ip = speedup::find_inflexion(wall);
  ASSERT_TRUE(ip.has_value());
  const auto& at = samples[ip->p];
  const double t_seq = *wall.sequential();
  const double bound =
      t_seq / (at.per_process.at("LagrangeNodal") +
               at.per_process.at("LagrangeElements"));
  const double measured = t_seq / at.walltime;
  EXPECT_GE(bound * 1.02, measured);        // it IS a bound
  EXPECT_LT(bound, measured * 1.25);        // and a tight one (paper: 1.01)
}

TEST(ShapeSec3, TwoDTilesShipFewerBytesPerRank) {
  const apps::conv::GridDecomposition grid(5616, 3744, 64);
  const apps::conv::RowDecomposition rows(3744, 64);
  const std::size_t pixel = apps::conv::kChannels * sizeof(double);
  const std::size_t tile = grid.halo_bytes(64 / 2, pixel);
  const std::size_t band = 2u * 5616u * pixel;
  EXPECT_LT(tile, band / 2);
  (void)rows;
}

}  // namespace
