// Profile snapshots: capture, CSV round-trip, and section-wise diffing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/sections/api.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "profiler/diff.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::profiler;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

ProfileSnapshot run_and_capture(double solve_seconds,
                                const std::string& name) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([solve_seconds](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    sections::MPIX_Section_enter(comm, "solve");
    ctx.compute_exact(solve_seconds);
    sections::MPIX_Section_exit(comm, "solve");
    sections::MPIX_Section_enter(comm, "io");
    ctx.compute_exact(0.5);
    sections::MPIX_Section_exit(comm, "io");
  });
  return ProfileSnapshot::capture(prof, name);
}

TEST(Snapshot, CaptureContainsSections) {
  const auto snap = run_and_capture(1.0, "base");
  EXPECT_EQ(snap.name(), "base");
  const auto* solve = snap.find("solve");
  ASSERT_NE(solve, nullptr);
  EXPECT_NEAR(solve->mean_per_process, 1.0, 1e-9);
  EXPECT_EQ(solve->ranks, 2);
  EXPECT_EQ(snap.find("nonexistent"), nullptr);
}

TEST(Snapshot, CsvRoundTrip) {
  const auto snap = run_and_capture(2.0, "base");
  const std::string csv = snap.to_csv();
  const auto parsed = ProfileSnapshot::from_csv(csv, "reloaded");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->entries().size(), snap.entries().size());
  const auto* solve = parsed->find("solve");
  ASSERT_NE(solve, nullptr);
  EXPECT_NEAR(solve->mean_per_process, 2.0, 1e-6);
  EXPECT_EQ(solve->instances, 1);
}

TEST(Snapshot, FromCsvRejectsGarbage) {
  EXPECT_FALSE(ProfileSnapshot::from_csv("not,a,snapshot\n1,2,3\n").has_value());
  EXPECT_FALSE(ProfileSnapshot::from_csv("").has_value());
  EXPECT_FALSE(
      ProfileSnapshot::from_csv("section,instances,ranks,mean_per_process,"
                                "mpi_time\nbad,row\n")
          .has_value());
}

TEST(Diff, IdentifiesTheMover) {
  const auto before = run_and_capture(4.0, "before");
  const auto after = run_and_capture(1.0, "after");  // solve got 4x faster
  const auto deltas = diff_profiles(before, after);
  ASSERT_FALSE(deltas.empty());
  // Biggest mover first; "solve" beats "io" (unchanged) and MPI_MAIN moves
  // by the same amount as solve, so both lead. Find solve explicitly.
  const auto solve =
      std::find_if(deltas.begin(), deltas.end(),
                   [](const SectionDelta& d) { return d.label == "solve"; });
  ASSERT_NE(solve, deltas.end());
  EXPECT_NEAR(solve->speedup, 4.0, 1e-6);
  EXPECT_NEAR(solve->abs_delta, -3.0, 1e-6);
  const auto io =
      std::find_if(deltas.begin(), deltas.end(),
                   [](const SectionDelta& d) { return d.label == "io"; });
  ASSERT_NE(io, deltas.end());
  EXPECT_NEAR(io->speedup, 1.0, 1e-6);
  // Sorted by |delta| descending.
  for (std::size_t i = 1; i < deltas.size(); ++i) {
    EXPECT_GE(std::fabs(deltas[i - 1].abs_delta),
              std::fabs(deltas[i].abs_delta));
  }
}

TEST(Diff, HandlesAsymmetricSections) {
  ProfileSnapshot a("a");
  a.add({"common", 1, 2, 1.0, 0.0});
  a.add({"gone", 1, 2, 0.5, 0.0});
  ProfileSnapshot b("b");
  b.add({"common", 1, 2, 2.0, 0.0});
  b.add({"fresh", 1, 2, 0.25, 0.0});
  const auto deltas = diff_profiles(a, b);
  ASSERT_EQ(deltas.size(), 3u);
  for (const auto& d : deltas) {
    if (d.label == "gone") {
      EXPECT_TRUE(d.only_in_before);
      EXPECT_DOUBLE_EQ(d.speedup, 0.0);
    }
    if (d.label == "fresh") {
      EXPECT_TRUE(d.only_in_after);
    }
    if (d.label == "common") {
      EXPECT_DOUBLE_EQ(d.speedup, 0.5);  // got slower
      EXPECT_DOUBLE_EQ(d.abs_delta, 1.0);
    }
  }
  const std::string table = render_diff(deltas, "a", "b");
  EXPECT_NE(table.find("(removed)"), std::string::npos);
  EXPECT_NE(table.find("(new)"), std::string::npos);
  EXPECT_NE(table.find("0.50x"), std::string::npos);
}

TEST(Diff, RealisticWorkflowAcrossConfigurations) {
  // The intended use: same app, two thread counts, where did time move?
  auto profile_at = [](int threads) {
    WorldOptions opts;
    opts.machine = MachineModel::knl();
    opts.machine.compute_noise_sigma = 0.0;
    World world(1, opts);
    sections::SectionRuntime::install(world);
    SectionProfiler prof(world);
    apps::lulesh::LuleshConfig cfg;
    cfg.s = 12;
    cfg.steps = 3;
    cfg.omp_threads = threads;
    cfg.full_fidelity = false;
    apps::lulesh::LuleshApp app(cfg);
    world.run(std::ref(app));
    return ProfileSnapshot::capture(prof, "t" + std::to_string(threads));
  };
  const auto t1 = profile_at(1);
  const auto t16 = profile_at(16);
  const auto deltas = diff_profiles(t1, t16);
  // Compute-heavy sections sped up; exchanges did not regress much.
  const auto stress = std::find_if(
      deltas.begin(), deltas.end(), [](const SectionDelta& d) {
        return d.label == "IntegrateStressForElems";
      });
  ASSERT_NE(stress, deltas.end());
  EXPECT_GT(stress->speedup, 3.0);
}

}  // namespace
