// Collective algorithm selection: binomial scatter/gather must be
// byte-identical to the linear algorithms for every rank count and root,
// and show the expected latency structure.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect::mpisim;

WorldOptions options_with(CollAlgo scatter, CollAlgo gather) {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  opts.scatter_algo = scatter;
  opts.gather_algo = gather;
  return opts;
}

struct Case {
  int p;
  int root;
};

class BinomialSweep : public ::testing::TestWithParam<Case> {};

TEST_P(BinomialSweep, ScatterMatchesLinearSemantics) {
  const auto [p, root] = GetParam();
  World world(p, options_with(CollAlgo::Binomial, CollAlgo::Binomial));
  world.run([p = p, root = root](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const int chunk = 3;
    std::vector<int> all;
    if (ctx.rank() == root) {
      all.resize(static_cast<std::size_t>(p) * chunk);
      std::iota(all.begin(), all.end(), 500);
    }
    std::vector<int> mine(chunk, -1);
    comm.scatter(ctx.rank() == root ? all.data() : nullptr,
                 chunk * sizeof(int), mine.data(), root);
    for (int i = 0; i < chunk; ++i) {
      EXPECT_EQ(mine[static_cast<std::size_t>(i)],
                500 + ctx.rank() * chunk + i)
          << "p=" << p << " root=" << root << " rank=" << ctx.rank();
    }
  });
}

TEST_P(BinomialSweep, GatherMatchesLinearSemantics) {
  const auto [p, root] = GetParam();
  World world(p, options_with(CollAlgo::Binomial, CollAlgo::Binomial));
  world.run([p = p, root = root](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const long mine[2] = {ctx.rank() * 10L, ctx.rank() * 10L + 1};
    std::vector<long> all;
    if (ctx.rank() == root) all.assign(static_cast<std::size_t>(p) * 2, -1);
    comm.gather(mine, sizeof mine, ctx.rank() == root ? all.data() : nullptr,
                root);
    if (ctx.rank() == root) {
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r) * 2], r * 10L);
        EXPECT_EQ(all[static_cast<std::size_t>(r) * 2 + 1], r * 10L + 1);
      }
    }
  });
}

TEST_P(BinomialSweep, ScatterGatherRoundtrip) {
  const auto [p, root] = GetParam();
  World world(p, options_with(CollAlgo::Binomial, CollAlgo::Binomial));
  world.run([p = p, root = root](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    std::vector<double> all;
    if (ctx.rank() == root) {
      all.resize(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) all[static_cast<std::size_t>(r)] = r * 1.5;
    }
    double mine = -1.0;
    comm.scatter(ctx.rank() == root ? all.data() : nullptr, sizeof(double),
                 &mine, root);
    mine += 100.0;
    std::vector<double> back;
    if (ctx.rank() == root) back.assign(static_cast<std::size_t>(p), -1.0);
    comm.gather(&mine, sizeof mine,
                ctx.rank() == root ? back.data() : nullptr, root);
    if (ctx.rank() == root) {
      for (int r = 0; r < p; ++r) {
        EXPECT_DOUBLE_EQ(back[static_cast<std::size_t>(r)], r * 1.5 + 100.0);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndRoots, BinomialSweep,
    ::testing::Values(Case{1, 0}, Case{2, 0}, Case{2, 1}, Case{3, 1},
                      Case{4, 0}, Case{5, 4}, Case{7, 3}, Case{8, 0},
                      Case{13, 7}, Case{16, 15}));

TEST(BinomialAlgo, ModeledModeAdvancesTime) {
  World world(8, options_with(CollAlgo::Binomial, CollAlgo::Binomial));
  std::vector<double> t(8);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    comm.scatter(nullptr, 1 << 18, nullptr, 0);
    comm.gather(nullptr, 1 << 18, nullptr, 0);
    t[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  for (const double x : t) EXPECT_GT(x, 0.0);
}

TEST(BinomialAlgo, RootSendsLogarithmicallyManyMessages) {
  // With 16 ranks, linear scatter makes the root send 15 messages;
  // binomial only log2(16) = 4 (counted via internal send sequences is not
  // exposed, so compare the roots' virtual *exit* times: fewer sequential
  // sends = earlier exit for small eager chunks where only the per-send
  // overhead matters).
  auto root_exit = [](CollAlgo algo) {
    WorldOptions opts = options_with(algo, CollAlgo::Linear);
    World world(16, opts);
    std::vector<double> t(16);
    world.run([&](Ctx& ctx) {
      Comm comm = ctx.world_comm();
      comm.scatter(nullptr, 64, nullptr, 0);  // 64 B eager chunks
      t[static_cast<std::size_t>(ctx.rank())] = ctx.now();
    });
    return t[0];
  };
  EXPECT_LT(root_exit(CollAlgo::Binomial), root_exit(CollAlgo::Linear));
}

TEST(BinomialAlgo, ConvergesToSameDataAsLinearLargePayload) {
  // Rendezvous-size chunks across both algorithms.
  for (const CollAlgo algo : {CollAlgo::Linear, CollAlgo::Binomial}) {
    World world(6, options_with(algo, algo));
    world.run([](Ctx& ctx) {
      Comm comm = ctx.world_comm();
      const std::size_t chunk = 32 * 1024;  // over the eager threshold
      std::vector<std::uint8_t> all;
      if (ctx.rank() == 0) {
        all.resize(6 * chunk);
        for (std::size_t i = 0; i < all.size(); ++i) {
          all[i] = static_cast<std::uint8_t>(i * 31);
        }
      }
      std::vector<std::uint8_t> mine(chunk, 0);
      comm.scatter(ctx.rank() == 0 ? all.data() : nullptr, chunk,
                   mine.data(), 0);
      bool ok = true;
      const std::size_t base = static_cast<std::size_t>(ctx.rank()) * chunk;
      for (std::size_t i = 0; i < chunk; ++i) {
        ok = ok && mine[i] == static_cast<std::uint8_t>((base + i) * 31);
      }
      EXPECT_TRUE(ok);
    });
  }
}

}  // namespace
