// Fig. 3 derived-metric math: Tmin/Tmax/Tsection/imbalance identities.
#include <gtest/gtest.h>

#include <vector>

#include "core/sections/metrics.hpp"

namespace {

using namespace mpisect::sections;

TEST(Metrics, EmptyInput) {
  const auto m = compute_metrics({});
  EXPECT_EQ(m.nranks, 0);
  EXPECT_DOUBLE_EQ(m.span(), 0.0);
}

TEST(Metrics, SingleRank) {
  const std::vector<RankSpan> spans{{0, 1.0, 3.0}};
  const auto m = compute_metrics(spans);
  EXPECT_EQ(m.nranks, 1);
  EXPECT_DOUBLE_EQ(m.t_min, 1.0);
  EXPECT_DOUBLE_EQ(m.t_max, 3.0);
  EXPECT_DOUBLE_EQ(m.section_mean, 2.0);  // Tout - Tmin
  EXPECT_DOUBLE_EQ(m.entry_imb_mean, 0.0);
  EXPECT_DOUBLE_EQ(m.imbalance, 0.0);
}

TEST(Metrics, PaperDefinitions) {
  // Rank 0 enters at 0 and leaves at 10; rank 1 enters at 4, leaves at 8.
  const std::vector<RankSpan> spans{{0, 0.0, 10.0}, {1, 4.0, 8.0}};
  const auto m = compute_metrics(spans);
  EXPECT_DOUBLE_EQ(m.t_min, 0.0);   // first entry
  EXPECT_DOUBLE_EQ(m.t_max, 10.0);  // last exit
  // Tsection_r = Tout_r - Tmin: 10 and 8 -> mean 9.
  EXPECT_DOUBLE_EQ(m.section_mean, 9.0);
  EXPECT_DOUBLE_EQ(m.section_min, 8.0);
  EXPECT_DOUBLE_EQ(m.section_max, 10.0);
  // imb_in: 0 and 4 -> mean 2, var 4, max 4.
  EXPECT_DOUBLE_EQ(m.entry_imb_mean, 2.0);
  EXPECT_DOUBLE_EQ(m.entry_imb_var, 4.0);
  EXPECT_DOUBLE_EQ(m.entry_imb_max, 4.0);
  // imb = (Tmax - Tmin) - mean(Tsection) = 10 - 9 = 1.
  EXPECT_DOUBLE_EQ(m.imbalance, 1.0);
}

TEST(Metrics, PerfectlySynchronizedRanksHaveZeroImbalance) {
  std::vector<RankSpan> spans;
  for (int r = 0; r < 16; ++r) spans.push_back({r, 5.0, 7.5});
  const auto m = compute_metrics(spans);
  EXPECT_DOUBLE_EQ(m.entry_imb_mean, 0.0);
  EXPECT_DOUBLE_EQ(m.entry_imb_var, 0.0);
  EXPECT_DOUBLE_EQ(m.imbalance, 0.0);
  EXPECT_DOUBLE_EQ(m.section_mean, 2.5);
}

TEST(Metrics, ImbalanceNonNegativeProperty) {
  // For any span set, Tmax - Tmin >= mean(Tsection) because every
  // Tsection_r = Tout_r - Tmin <= Tmax - Tmin.
  for (int scenario = 0; scenario < 50; ++scenario) {
    std::vector<RankSpan> spans;
    double seedling = scenario * 0.37;
    for (int r = 0; r < 8; ++r) {
      const double t_in = seedling + ((r * 2654435761u) % 100) * 0.01;
      const double dur = ((r * 40503u + scenario) % 100) * 0.02 + 0.01;
      spans.push_back({r, t_in, t_in + dur});
    }
    const auto m = compute_metrics(spans);
    EXPECT_GE(m.imbalance, -1e-12) << "scenario " << scenario;
    EXPECT_GE(m.entry_imb_var, 0.0);
    EXPECT_LE(m.section_max, m.span() + 1e-12);
  }
}

TEST(Metrics, WaitingRanksShowAsEntryImbalance) {
  // The paper's LOAD phase: rank 0 works 10s, other ranks arrive instantly
  // but wait. All enter the *next* section late -> big imb_in there; within
  // LOAD, rank 0 enters first and others enter at ~0 too (they enter, then
  // idle). Model the case where ranks enter a section very skewed:
  std::vector<RankSpan> spans{{0, 0.0, 10.0}, {1, 9.0, 10.0}, {2, 9.5, 10.0}};
  const auto m = compute_metrics(spans);
  EXPECT_GT(m.entry_imb_max, 9.0);
  EXPECT_NEAR(m.imbalance, 0.0, 1e-12);  // everyone leaves together
}

TEST(AggregatedMetricsTest, AccumulatesInstances) {
  AggregatedMetrics agg;
  const std::vector<RankSpan> inst1{{0, 0.0, 1.0}, {1, 0.0, 1.0}};
  const std::vector<RankSpan> inst2{{0, 2.0, 4.0}, {1, 3.0, 4.0}};
  agg.add(compute_metrics(inst1));
  agg.add(compute_metrics(inst2));
  EXPECT_EQ(agg.instances, 2);
  EXPECT_DOUBLE_EQ(agg.total_span, 1.0 + 2.0);
  // inst1 section mean 1.0; inst2: Tsection = {2,2} -> mean 2 -> total 3.
  EXPECT_DOUBLE_EQ(agg.total_section_mean, 3.0);
  EXPECT_DOUBLE_EQ(agg.max_entry_imb, 1.0);
  EXPECT_DOUBLE_EQ(agg.mean_entry_imb, (0.0 + 0.5) / 2.0);
}

}  // namespace
