// Exhaustive hook-coverage test: every MpiCall value fires a begin and an
// end notification carrying a correct CallInfo, and the comm-lifecycle and
// pcontrol hooks fire where expected. This is the contract correctness
// tools (src/checker) build on.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <mutex>
#include <vector>

#include "mpisim/comm.hpp"
#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect::mpisim;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

struct Recorder {
  std::mutex mu;
  std::vector<std::pair<int, CallInfo>> begins;  ///< (world rank, info)
  std::vector<std::pair<int, CallInfo>> ends;
  std::vector<std::pair<int, CommLifecycle>> comm_creates;
  std::vector<std::pair<int, int>> comm_frees;  ///< (world rank, context)
  std::vector<std::pair<int, int>> pcontrols;   ///< (world rank, level)

  void install(World& world) {
    world.hooks().on_call_begin = [this](Ctx& ctx, const CallInfo& info) {
      const std::lock_guard lock(mu);
      begins.emplace_back(ctx.rank(), info);
    };
    world.hooks().on_call_end = [this](Ctx& ctx, const CallInfo& info) {
      const std::lock_guard lock(mu);
      ends.emplace_back(ctx.rank(), info);
    };
    world.hooks().on_comm_create = [this](Ctx& ctx,
                                          const CommLifecycle& info) {
      const std::lock_guard lock(mu);
      CommLifecycle copy = info;
      copy.world_ranks = nullptr;  // borrowed; not valid after the callback
      comm_creates.emplace_back(ctx.rank(), copy);
    };
    world.hooks().on_comm_free = [this](Ctx& ctx, int context) {
      const std::lock_guard lock(mu);
      comm_frees.emplace_back(ctx.rank(), context);
    };
    world.hooks().on_pcontrol = [this](Ctx& ctx, int level, const char*) {
      const std::lock_guard lock(mu);
      pcontrols.emplace_back(ctx.rank(), level);
    };
  }

  std::vector<CallInfo> begins_of(int rank, MpiCall call) {
    const std::lock_guard lock(mu);
    std::vector<CallInfo> out;
    for (const auto& [r, info] : begins) {
      if (r == rank && info.call == call) out.push_back(info);
    }
    return out;
  }
  std::size_t count(const std::vector<std::pair<int, CallInfo>>& v,
                    MpiCall call) {
    const std::lock_guard lock(mu);
    return static_cast<std::size_t>(
        std::count_if(v.begin(), v.end(),
                      [call](const auto& e) { return e.second.call == call; }));
  }
};

/// Drive every MpiCall at least once on a 4-rank world.
void exercise_every_call(Ctx& ctx) {
  Comm world = ctx.world_comm();
  const int r = world.rank();
  const int n = world.size();
  std::array<char, 64> buf{};

  // Send / Recv / Probe: 0 -> 1 (probed first), 2 -> 3.
  if (r == 0) world.send(buf.data(), 8, 1, /*tag=*/1);
  if (r == 1) {
    world.probe(0, 1);
    world.recv(buf.data(), 8, 0, 1);
  }
  if (r == 2) world.send(buf.data(), 8, 3, 1);
  if (r == 3) world.recv(buf.data(), 8, 2, 1);

  // Isend / Irecv / Wait in a ring.
  auto sreq = world.isend(buf.data(), 16, (r + 1) % n, /*tag=*/2);
  auto rreq = world.irecv(buf.data(), 16, (r + n - 1) % n, 2);
  rreq.wait();
  sreq.wait();

  // Sendrecv ring.
  world.sendrecv(buf.data(), 4, (r + 1) % n, /*tag=*/3, buf.data(), 4,
                 (r + n - 1) % n, 3);

  // Every collective.
  world.barrier();
  world.bcast(buf.data(), 32, /*root=*/0);
  double v = 1.0;
  double acc = 0.0;
  world.reduce(&v, &acc, 1, datatype_of<double>, ReduceOp::Sum, 0);
  world.allreduce(&v, &acc, 1, datatype_of<double>, ReduceOp::Sum);
  std::array<char, 16> chunk{};
  world.scatter(buf.data(), 4, chunk.data(), 0);
  const std::array<std::size_t, 4> counts{4, 4, 4, 4};
  const std::array<std::size_t, 4> displs{0, 4, 8, 12};
  world.scatterv(buf.data(), counts, displs, chunk.data(), 4, 0);
  world.gather(chunk.data(), 4, buf.data(), 0);
  world.gatherv(chunk.data(), 4, buf.data(), counts, displs, 0);
  world.allgather(chunk.data(), 4, buf.data());
  world.alltoall(chunk.data(), 4, buf.data());

  // Nonblocking collectives + a completion poll (test may observe either
  // state; both fire the Test begin/end pair).
  auto nbc = world.iallreduce(&v, &acc, 1, datatype_of<double>,
                              ReduceOp::Sum);
  (void)nbc.test();
  nbc.wait();
  auto nbb = world.ibarrier();
  nbb.wait();

  // Comm management: split into pairs, dup, free both.
  Comm half = world.split(r % 2, r);
  Comm copy = world.dup();
  half.free();
  copy.free();

  // Pcontrol.
  ctx.pcontrol(1, "phase");
}

TEST(HookCoverage, EveryMpiCallFiresBeginAndEnd) {
  World world(4, ideal_options());
  Recorder rec;
  rec.install(world);
  world.run(exercise_every_call);

  for (int c = 0; c < kMpiCallCount; ++c) {
    const auto call = static_cast<MpiCall>(c);
    EXPECT_GT(rec.count(rec.begins, call), 0u)
        << "no begin event for " << mpi_call_name(call);
    EXPECT_EQ(rec.count(rec.begins, call), rec.count(rec.ends, call))
        << "unbalanced begin/end for " << mpi_call_name(call);
  }
}

TEST(HookCoverage, CallInfoFieldsAreAccurate) {
  World world(4, ideal_options());
  Recorder rec;
  rec.install(world);
  world.run(exercise_every_call);

  // Send 0->1: peer, tag, bytes, communicator.
  const auto sends = rec.begins_of(0, MpiCall::Send);
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].peer, 1);
  EXPECT_EQ(sends[0].tag, 1);
  EXPECT_EQ(sends[0].bytes, 8u);
  EXPECT_EQ(sends[0].comm_size, 4);
  EXPECT_EQ(sends[0].rank, 0);

  // Isend carries a nonzero per-rank request id; the Wait that completes
  // it repeats the id.
  const auto isends = rec.begins_of(2, MpiCall::Isend);
  const auto irecvs = rec.begins_of(2, MpiCall::Irecv);
  ASSERT_EQ(isends.size(), 1u);
  ASSERT_EQ(irecvs.size(), 1u);
  EXPECT_NE(isends[0].request, 0u);
  EXPECT_NE(irecvs[0].request, 0u);
  EXPECT_NE(isends[0].request, irecvs[0].request);
  // Four waits: isend, irecv, iallreduce, ibarrier completions.
  const auto waits = rec.begins_of(2, MpiCall::Wait);
  ASSERT_EQ(waits.size(), 4u);
  std::vector<std::uint64_t> wait_ids;
  for (const auto& w : waits) wait_ids.push_back(w.request);
  std::sort(wait_ids.begin(), wait_ids.end());
  for (const std::uint64_t id : {isends[0].request, irecvs[0].request}) {
    EXPECT_TRUE(std::binary_search(wait_ids.begin(), wait_ids.end(), id))
        << "no Wait carried request id " << id;
  }

  // Rooted collective: peer names the root, bytes the payload.
  const auto bcasts = rec.begins_of(3, MpiCall::Bcast);
  ASSERT_EQ(bcasts.size(), 1u);
  EXPECT_EQ(bcasts[0].peer, 0);
  EXPECT_EQ(bcasts[0].bytes, 32u);

  // Init and Finalize bracket the run on every rank.
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(rec.begins_of(r, MpiCall::Init).size(), 1u);
    EXPECT_EQ(rec.begins_of(r, MpiCall::Finalize).size(), 1u);
  }

  // Pcontrol surfaces both as a generic call and as the dedicated hook.
  EXPECT_EQ(rec.begins_of(1, MpiCall::Pcontrol).size(), 1u);
  {
    const std::lock_guard lock(rec.mu);
    EXPECT_EQ(rec.pcontrols.size(), 4u);
    for (const auto& [rank, level] : rec.pcontrols) EXPECT_EQ(level, 1);
  }
}

TEST(HookCoverage, CommLifecycleEventsFire) {
  World world(4, ideal_options());
  Recorder rec;
  rec.install(world);
  world.run(exercise_every_call);

  const std::lock_guard lock(rec.mu);
  // World creation: one create per rank with parent -1. split + dup: one
  // create per rank each with the world as parent.
  std::map<int, int> creates_per_parent;
  for (const auto& [rank, info] : rec.comm_creates) {
    (void)rank;
    ++creates_per_parent[info.parent_context];
  }
  EXPECT_EQ(creates_per_parent[-1], 4);
  int derived = 0;
  for (const auto& [parent, count] : creates_per_parent) {
    if (parent >= 0) derived += count;
  }
  EXPECT_EQ(derived, 8);  // split + dup on every rank
  // Both derived communicators are freed on every rank.
  EXPECT_EQ(rec.comm_frees.size(), 8u);
}

}  // namespace
