// .mpstz codec: bit-exact roundtrips, chunked random access with the
// bytes-decoded accounting, compression-pipeline unit coverage (RLE,
// canonical Huffman), and integrity rejection of corrupted containers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "codec/huffman.hpp"
#include "codec/mpstz.hpp"
#include "codec/rle.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"
#include "support/rng.hpp"
#include "trace/event_wire.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

using namespace mpisect;

trace::TraceFile record_convolution(int ranks, int steps) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0x5EED;
  mpisim::World world(ranks, opts);
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "codec-fixture"});
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  return rec->finish();
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// ---------------------------------------------------------------- RLE --

TEST(Rle, RoundtripsRunsAndLiterals) {
  std::vector<std::uint8_t> raw = bytes_of("abc");
  raw.insert(raw.end(), 300, 0);
  raw.push_back(7);
  raw.insert(raw.end(), 2, 9);  // short run stays literal
  const auto coded = codec::rle_encode(raw);
  EXPECT_LT(coded.size(), raw.size());
  EXPECT_EQ(codec::rle_decode(coded, raw.size()), raw);
}

TEST(Rle, RoundtripsEmptyAndIncompressible) {
  EXPECT_TRUE(codec::rle_decode(codec::rle_encode({}), 0).empty());
  std::vector<std::uint8_t> raw;
  for (int i = 0; i < 500; ++i) raw.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(codec::rle_decode(codec::rle_encode(raw), raw.size()), raw);
}

TEST(Rle, RejectsCorruptStreams) {
  const std::vector<std::uint8_t> reserved = {128};
  EXPECT_THROW((void)codec::rle_decode(reserved, 1), trace::TraceError);
  const std::vector<std::uint8_t> overrun = {10};  // 11 literals, none given
  EXPECT_THROW((void)codec::rle_decode(overrun, 11), trace::TraceError);
  const auto coded = codec::rle_encode(bytes_of("xyzzy"));
  EXPECT_THROW((void)codec::rle_decode(coded, 3), trace::TraceError);  // short
  EXPECT_THROW((void)codec::rle_decode(coded, 9), trace::TraceError);  // long
}

// ------------------------------------------------------------ Huffman --

TEST(Huffman, RoundtripsSkewedAndUniformInputs) {
  support::SequentialRng rng(0xC0DEC);
  std::vector<std::uint8_t> skewed;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t r = rng.next();
    skewed.push_back(r % 10 == 0 ? static_cast<std::uint8_t>(r) : 0);
  }
  for (const auto& raw : {skewed, bytes_of("aaaaaaab"), bytes_of("z")}) {
    const codec::HuffmanEncoded enc = codec::huffman_encode(raw);
    EXPECT_EQ(codec::huffman_decode(enc.lengths, enc.bits, enc.nbits,
                                    raw.size()),
              raw);
  }
  // Heavily skewed input entropy-codes well below 8 bits/symbol.
  const codec::HuffmanEncoded enc = codec::huffman_encode(skewed);
  EXPECT_LT(enc.bits.size(), skewed.size() / 2);
}

TEST(Huffman, EmptyInput) {
  const codec::HuffmanEncoded enc = codec::huffman_encode({});
  EXPECT_EQ(enc.nbits, 0u);
  EXPECT_TRUE(
      codec::huffman_decode(enc.lengths, enc.bits, enc.nbits, 0).empty());
}

TEST(Huffman, RejectsInvalidTablesAndTruncatedBits) {
  const auto raw = bytes_of("canonical huffman canonical huffman");
  codec::HuffmanEncoded enc = codec::huffman_encode(raw);
  // Over-full table: shortening a code length breaks the Kraft equality.
  auto bad = enc.lengths;
  for (auto& len : bad) {
    if (len > 1) {
      len = static_cast<std::uint8_t>(len - 1);
      break;
    }
  }
  EXPECT_THROW(
      (void)codec::huffman_decode(bad, enc.bits, enc.nbits, raw.size()),
      trace::TraceError);
  // Truncated bitstream.
  EXPECT_THROW((void)codec::huffman_decode(enc.lengths, enc.bits,
                                           enc.nbits / 2, raw.size()),
               trace::TraceError);
  // Bit count exceeding the payload.
  EXPECT_THROW((void)codec::huffman_decode(enc.lengths, enc.bits,
                                           8 * enc.bits.size() + 9,
                                           raw.size()),
               trace::TraceError);
}

// ------------------------------------------------------------- .mpstz --

TEST(Mpstz, RoundtripIsBitExact) {
  const trace::TraceFile tf = record_convolution(8, 20);
  const std::vector<std::uint8_t> mpst = tf.encode();
  const std::vector<std::uint8_t> mpstz = codec::compress(tf);
  const trace::TraceFile back = codec::decompress(mpstz);
  EXPECT_EQ(back.encode(), mpst) << "decode(encode(t)) must be byte-exact";
}

TEST(Mpstz, RoundtripIsBitExactAcrossChunkBoundaries) {
  const trace::TraceFile tf = record_convolution(4, 30);
  const std::vector<std::uint8_t> mpst = tf.encode();
  for (const std::uint64_t chunk_events :
       {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{64},
        std::uint64_t{1} << 20}) {
    const auto mpstz = codec::compress(tf, {.chunk_events = chunk_events});
    EXPECT_EQ(codec::decompress(mpstz).encode(), mpst)
        << "chunk_events=" << chunk_events;
  }
}

TEST(Mpstz, CompressesRealTraces) {
  const trace::TraceFile tf = record_convolution(16, 40);
  const std::vector<std::uint8_t> mpst = tf.encode();
  const std::vector<std::uint8_t> mpstz = codec::compress(tf);
  const double ratio = static_cast<double>(mpst.size()) /
                       static_cast<double>(mpstz.size());
  // The acceptance bar (>= 3x on the 64-rank traces) is enforced by
  // bench_codec / CI; the smaller fixture clears it too.
  EXPECT_GE(ratio, 3.0) << mpst.size() << " -> " << mpstz.size();
}

TEST(Mpstz, SeekedWindowDecodesOnlyNeededChunks) {
  const trace::TraceFile tf = record_convolution(4, 40);
  const auto mpstz = codec::compress(tf, {.chunk_events = 64});
  codec::MpstzReader full(mpstz);
  const trace::TraceFile all = full.all();
  const std::uint64_t full_bytes = full.bytes_decoded();
  ASSERT_GT(full_bytes, 0u);
  EXPECT_EQ(all.encode(), tf.encode());

  // A window over the middle fifth of rank 1's run.
  const trace::RankStream& rs = tf.ranks[1];
  const double span = rs.t_final - rs.t0;
  const double t0 = rs.t0 + 0.4 * span;
  const double t1 = rs.t0 + 0.6 * span;
  codec::MpstzReader seek(mpstz);
  const std::vector<trace::Event> events = seek.window(1, t0, t1);
  EXPECT_FALSE(events.empty());
  EXPECT_LT(seek.bytes_decoded(), full_bytes / 2)
      << "a narrow window must not decode most of the payload";

  // The window is a contiguous slice of the rank's stream: every covered
  // chunk decodes to exactly the recorded events.
  bool found = false;
  for (std::size_t start = 0;
       start + events.size() <= rs.events.size() && !found; ++start) {
    bool match = true;
    for (std::size_t i = 0; i < events.size() && match; ++i) {
      trace::ByteWriter a, b;
      std::uint64_t pa = 0, pb = 0;
      trace::encode_event(a, events[i], pa);
      trace::encode_event(b, rs.events[start + i], pb);
      match = a.bytes() == b.bytes();
    }
    found = match;
  }
  EXPECT_TRUE(found) << "window events must be a slice of the rank stream";
}

TEST(Mpstz, DigestIsFormatIndependent) {
  const trace::TraceFile tf = record_convolution(4, 10);
  const std::string dir = ::testing::TempDir();
  const std::string mpst_path = dir + "codec_digest.mpst";
  const std::string mpstz_path = dir + "codec_digest.mpstz";
  tf.save(mpst_path);
  const auto z = codec::compress(tf);
  {
    std::FILE* f = std::fopen(mpstz_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(z.data(), 1, z.size(), f), z.size());
    std::fclose(f);
  }
  const trace::TraceFile a = codec::load_trace(mpst_path);
  const trace::TraceFile b = codec::load_trace(mpstz_path);
  EXPECT_EQ(codec::trace_digest(a), codec::trace_digest(b));
  EXPECT_EQ(a.encode(), b.encode());
  std::remove(mpst_path.c_str());
  std::remove(mpstz_path.c_str());
}

TEST(Mpstz, ReplayOfDecompressedTraceVerifies) {
  const trace::TraceFile tf = record_convolution(4, 10);
  const trace::TraceFile back = codec::decompress(codec::compress(tf));
  const trace::VerifyResult v = trace::verify_roundtrip(back);
  EXPECT_TRUE(v.ok) << v.detail;
}

TEST(Mpstz, CorruptionIsRejectedNotUB) {
  const trace::TraceFile tf = record_convolution(3, 8);
  const auto mpstz = codec::compress(tf, {.chunk_events = 32});
  // Payload CRC: flip one bit in the last quarter (chunk payload bytes).
  {
    auto mutant = mpstz;
    mutant[mutant.size() - mutant.size() / 4] ^= 0x01;
    EXPECT_THROW((void)codec::decompress(mutant), trace::TraceError);
  }
  // Metadata CRC: flip a byte just past the fixed header.
  {
    auto mutant = mpstz;
    mutant[16] ^= 0x10;
    EXPECT_THROW((void)codec::decompress(mutant), trace::TraceError);
  }
  // Bad magic and version.
  {
    auto mutant = mpstz;
    mutant[0] ^= 0xFF;
    EXPECT_THROW((void)codec::decompress(mutant), trace::TraceError);
    mutant = mpstz;
    mutant[4] = 0x7F;
    EXPECT_THROW((void)codec::decompress(mutant), trace::TraceError);
  }
  // The raw .mpst reader names the right remedy for .mpstz input.
  try {
    (void)trace::TraceFile::decode(mpstz);
    FAIL() << "raw reader must reject compressed containers";
  } catch (const trace::TraceError& err) {
    EXPECT_NE(std::string(err.what()).find("mpstz"), std::string::npos);
  }
}

TEST(Mpstz, EveryTruncationIsRejected) {
  const trace::TraceFile tf = record_convolution(3, 6);
  const auto mpstz = codec::compress(tf, {.chunk_events = 16});
  support::SequentialRng rng(0x7A12);
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < 48 && n < mpstz.size(); ++n) lengths.push_back(n);
  for (std::size_t n = mpstz.size() - 48; n < mpstz.size(); ++n) {
    lengths.push_back(n);
  }
  for (int i = 0; i < 150; ++i) lengths.push_back(rng.next() % mpstz.size());
  for (const std::size_t n : lengths) {
    const std::vector<std::uint8_t> prefix(mpstz.begin(),
                                           mpstz.begin() + n);
    EXPECT_THROW((void)codec::decompress(prefix), trace::TraceError)
        << "prefix length " << n;
  }
}

}  // namespace
