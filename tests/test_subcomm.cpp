// Behaviour on split/dup'ed communicators: p2p, collectives, sections,
// validation and profiling all must work identically on sub-communicators
// (the paper defines sections per communicator).
#include <gtest/gtest.h>

#include <atomic>

#include "core/sections/api.hpp"
#include "profiler/section_profiler.hpp"

namespace {

using namespace mpisect;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(SubComm, PointToPointUsesSubRanks) {
  World world(6, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // Two halves of 3; exchange inside each half using half-local ranks.
    Comm half = comm.split(ctx.rank() / 3, ctx.rank());
    ASSERT_EQ(half.size(), 3);
    if (half.rank() == 0) {
      const int payload = ctx.rank();  // world rank travels
      half.send(&payload, sizeof payload, 2, 0);
    } else if (half.rank() == 2) {
      int payload = -1;
      const auto st = half.recv(&payload, sizeof payload, 0, 0);
      EXPECT_EQ(st.source, 0);  // SUB-communicator rank, not world rank
      // The sender was the world-rank-0 of my half.
      EXPECT_EQ(payload, (ctx.rank() / 3) * 3);
    }
  });
}

TEST(SubComm, CollectivesScopedToMembers) {
  World world(8, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    Comm quarter = comm.split(ctx.rank() % 4, ctx.rank());
    ASSERT_EQ(quarter.size(), 2);
    // Sum within pairs: {0,4}, {1,5}, {2,6}, {3,7}.
    const int sum = quarter.allreduce_one(ctx.rank(), mpisim::ReduceOp::Sum);
    EXPECT_EQ(sum, (ctx.rank() % 4) * 2 + 4);
    // Gather within the pair.
    int both[2] = {-1, -1};
    const int mine = ctx.rank();
    quarter.gather(&mine, sizeof mine,
                   quarter.rank() == 0 ? both : nullptr, 0);
    if (quarter.rank() == 0) {
      EXPECT_EQ(both[0], ctx.rank());
      EXPECT_EQ(both[1], ctx.rank() + 4);
    }
  });
}

TEST(SubComm, SectionsIndependentPerCommunicator) {
  World world(4, ideal_options());
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    Comm half = comm.split(ctx.rank() / 2, ctx.rank());
    // A section on the sub-communicator while one is open on the world.
    sections::MPIX_Section_enter(comm, "world-phase");
    sections::MPIX_Section_enter(half, "half-phase");
    ctx.compute_exact(1.0);
    EXPECT_EQ(sections::MPIX_Section_exit(half, "half-phase"),
              sections::kSectionOk);
    EXPECT_EQ(sections::MPIX_Section_exit(comm, "world-phase"),
              sections::kSectionOk);
  });
  // The world section spans all four ranks on one context.
  EXPECT_EQ(prof.totals_for("world-phase").ranks_seen, 4);
  // The halves are two DISTINCT contexts of 2 ranks each; per-context
  // totals show 2 ranks at 1 s, and the label-level aggregate sums both
  // contexts' time (4 rank-seconds) over the per-context rank count.
  const auto half_totals = prof.totals_for("half-phase");
  EXPECT_EQ(half_totals.ranks_seen, 2);
  EXPECT_NEAR(half_totals.total_time, 4.0, 1e-9);
  int contexts_seen = 0;
  for (const auto& t : prof.totals()) {
    if (t.label != "half-phase") continue;
    ++contexts_seen;
    EXPECT_EQ(t.ranks_seen, 2);
    EXPECT_NEAR(t.mean_per_process, 1.0, 1e-9);
  }
  EXPECT_EQ(contexts_seen, 2);
}

TEST(SubComm, ValidationScopedToCommunicator) {
  WorldOptions opts = ideal_options();
  opts.validate_sections = true;
  World world(4, opts);
  auto rt = sections::SectionRuntime::install(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    Comm half = comm.split(ctx.rank() / 2, ctx.rank());
    // Different halves legally run DIFFERENT section labels concurrently —
    // validation is per communicator, so this must pass.
    const char* label = ctx.rank() / 2 == 0 ? "first-half" : "second-half";
    EXPECT_EQ(sections::MPIX_Section_enter(half, label), sections::kSectionOk);
    EXPECT_EQ(sections::MPIX_Section_exit(half, label), sections::kSectionOk);
  });
  EXPECT_EQ(rt->counters().errors, 0u);
}

TEST(SubComm, ValidationCatchesDivergenceInsideSubComm) {
  WorldOptions opts = ideal_options();
  opts.validate_sections = true;
  World world(4, opts);
  sections::SectionRuntime::install(world);
  std::atomic<int> mismatches{0};
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    Comm half = comm.split(ctx.rank() / 2, ctx.rank());
    // Within the first half, the two members disagree.
    const char* label = "ok";
    if (ctx.rank() / 2 == 0) label = ctx.rank() == 0 ? "a" : "b";
    if (sections::MPIX_Section_enter(half, label) ==
        sections::kSectionErrMismatch) {
      ++mismatches;
    }
    sections::MPIX_Section_exit(half, label);
  });
  EXPECT_EQ(mismatches.load(), 2);  // both members of the bad half
}

TEST(SubComm, DupOfSplitWorks) {
  World world(4, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    Comm half = comm.split(ctx.rank() % 2, ctx.rank());
    Comm dup = half.dup();
    EXPECT_EQ(dup.size(), 2);
    EXPECT_EQ(dup.rank(), half.rank());
    EXPECT_NE(dup.context_id(), half.context_id());
    dup.barrier();
  });
}

TEST(SubComm, WorldRankMappingOnSubComms) {
  World world(6, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // Reverse-ordered odd/even split.
    Comm sub = comm.split(ctx.rank() % 2, -ctx.rank());
    // Highest world rank got sub-rank 0.
    const int expect_first = ctx.rank() % 2 == 0 ? 4 : 5;
    EXPECT_EQ(sub.world_rank_of(0), expect_first);
  });
}

}  // namespace
