// mpisect-serve subsystem tests: the LRU result cache, the deterministic
// trace-path sharding, the shared query engine's canonical cache keys,
// the JSON-over-lines Service dispatcher (including its error contract),
// and the localhost TCP server — scripted sessions must be byte-identical
// across worker-pool sizes, and served results byte-identical to the
// offline engine output.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "codec/mpstz.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"
#include "serve/cache.hpp"
#include "serve/queries.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "support/digest.hpp"
#include "support/json.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace mpisect;

trace::TraceFile record_fixture(int ranks = 4, int steps = 10) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0x5EED;
  mpisim::World world(ranks, opts);
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "serve-fixture"});
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  return rec->finish();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// The fixture saved in both container formats; recorded once per binary.
struct Fixture {
  trace::TraceFile tf;
  std::string mpst_path;
  std::string mpstz_path;
};

const Fixture& fixture() {
  static const Fixture* fx = [] {
    auto* f = new Fixture;
    f->tf = record_fixture();
    f->mpst_path = temp_path("serve_fixture.mpst");
    f->mpstz_path = temp_path("serve_fixture.mpstz");
    write_bytes(f->mpst_path, f->tf.encode());
    write_bytes(f->mpstz_path, codec::compress(f->tf));
    return f;
  }();
  return *fx;
}

support::JsonValue parse_response(const std::string& line) {
  return support::json_parse(line);
}

// ---------------------------------------------------------------- cache --

TEST(LruCache, GetReturnsPutValueAndRefreshesRecency) {
  serve::LruCache cache(/*max_entries=*/2, /*max_bytes=*/0);
  cache.put("a", "1");
  cache.put("b", "2");
  EXPECT_EQ(cache.get("a").value_or(""), "1");  // "a" now most recent
  cache.put("c", "3");                          // evicts "b"
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
}

TEST(LruCache, EvictsInLruOrder) {
  serve::LruCache cache(2, 0);
  cache.put("a", "1");
  cache.put("b", "2");
  cache.put("c", "3");  // "a" is the least recent
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(LruCache, ByteBudgetEvicts) {
  serve::LruCache cache(/*max_entries=*/100, /*max_bytes=*/10);
  cache.put("a", "12345");
  cache.put("b", "12345");
  EXPECT_EQ(cache.bytes(), 10u);
  cache.put("c", "12345");  // pushes "a" out
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_LE(cache.bytes(), 10u);
}

TEST(LruCache, OversizedValueIsNotCached) {
  serve::LruCache cache(100, 4);
  cache.put("big", "123456789");
  EXPECT_FALSE(cache.get("big").has_value());
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(LruCache, PutSameKeyReplacesValue) {
  serve::LruCache cache(4, 0);
  cache.put("k", "old");
  cache.put("k", "new");
  EXPECT_EQ(cache.get("k").value_or(""), "new");
  EXPECT_EQ(cache.entries(), 1u);
}

// ------------------------------------------------------------- sharding --

TEST(ShardFor, DeterministicAndInRange) {
  for (const char* path : {"a.mpst", "b.mpstz", "/tmp/x/y.mpst", ""}) {
    const int s = serve::shard_for(path, 4);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
    EXPECT_EQ(s, serve::shard_for(path, 4)) << path;
  }
  EXPECT_EQ(serve::shard_for("anything", 1), 0);
  EXPECT_EQ(serve::shard_for("anything", 0), 0);
}

TEST(ShardFor, SpreadsDistinctPaths) {
  // Not a distribution test, just "not everything lands on one shard".
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 64; ++i) {
    ++hits[static_cast<std::size_t>(
        serve::shard_for("trace_" + std::to_string(i) + ".mpst", 4))];
  }
  int used = 0;
  for (const int h : hits) used += h > 0 ? 1 : 0;
  EXPECT_GE(used, 2);
}

// ------------------------------------------------------- canonical keys --

TEST(CanonicalKeys, DistinguishEveryParameter) {
  serve::ReplayQuery a;
  serve::ReplayQuery b = a;
  EXPECT_EQ(canonical(a), canonical(b));
  b.model.latency_scale = 2.0;
  EXPECT_NE(canonical(a), canonical(b));
  b = a;
  b.faults = "drop:p=0.05";
  EXPECT_NE(canonical(a), canonical(b));
  b = a;
  b.format = "csv";
  EXPECT_NE(canonical(a), canonical(b));

  serve::SweepQuery s1, s2;
  s2.drop_rates = {0.0, 0.01};
  EXPECT_NE(canonical(s1), canonical(s2));

  // Replay and timeline queries with identical models must not collide.
  serve::TimelineQuery t;
  EXPECT_NE(canonical(a), canonical(t));
}

TEST(CanonicalKeys, DoubleRenderingRoundTrips) {
  serve::ModelParams p;
  p.latency_scale = 0.1;  // not exactly representable: rendering must
                          // still be stable and exact-match on re-render
  const std::string once = canonical(p);
  p.latency_scale = 0.1;
  EXPECT_EQ(once, canonical(p));
  p.latency_scale = 0.1 + 1e-12;
  EXPECT_NE(once, canonical(p));
}

// --------------------------------------------------------------- engine --

TEST(QueryEngine, InfoMatchesDigestAcrossFormats) {
  const Fixture& fx = fixture();
  const trace::TraceFile from_mpst = codec::load_trace(fx.mpst_path);
  const trace::TraceFile from_mpstz = codec::load_trace(fx.mpstz_path);
  EXPECT_EQ(serve::run_info(from_mpst), serve::run_info(from_mpstz));
  EXPECT_EQ(codec::trace_digest(from_mpst), codec::trace_digest(from_mpstz));
}

TEST(QueryEngine, ReplayIdenticalAcrossContainerFormats) {
  const Fixture& fx = fixture();
  serve::ReplayQuery q;
  q.model.model = "knl";
  q.format = "csv";
  EXPECT_EQ(serve::run_replay(codec::load_trace(fx.mpst_path), q),
            serve::run_replay(codec::load_trace(fx.mpstz_path), q));
}

TEST(QueryEngine, UnknownModelThrowsTraceError) {
  serve::ReplayQuery q;
  q.model.model = "not-a-machine";
  EXPECT_THROW((void)serve::run_replay(fixture().tf, q), trace::TraceError);
}

TEST(QueryEngine, BadComputeScaleThrows) {
  serve::ReplayQuery q;
  q.model.compute_scale = "-3";
  EXPECT_THROW((void)serve::run_replay(fixture().tf, q), trace::TraceError);
}

// -------------------------------------------------------------- service --

TEST(Service, InfoResponseCarriesDigestAndEngineBytes) {
  const Fixture& fx = fixture();
  serve::Service svc;
  const std::string resp = svc.handle_line(
      "{\"id\":7,\"op\":\"info\",\"trace\":\"" + fx.mpst_path + "\"}");
  const support::JsonValue v = parse_response(resp);
  ASSERT_TRUE(v.find("ok") != nullptr && v.find("ok")->boolean);
  EXPECT_EQ(v.find("id")->number, 7.0);
  EXPECT_EQ(v.find("digest")->string,
            support::format_digest(codec::trace_digest(fx.tf)));
  EXPECT_EQ(v.find("result")->string, serve::run_info(fx.tf));
}

TEST(Service, SecondIdenticalQueryIsCachedAndByteIdentical) {
  const Fixture& fx = fixture();
  serve::Service svc;
  const std::string req =
      "{\"id\":1,\"op\":\"replay\",\"trace\":\"" + fx.mpstz_path +
      "\",\"params\":{\"model\":\"knl\",\"format\":\"csv\"}}";
  const support::JsonValue cold = parse_response(svc.handle_line(req));
  const support::JsonValue warm = parse_response(svc.handle_line(req));
  ASSERT_TRUE(cold.find("ok")->boolean);
  ASSERT_TRUE(warm.find("ok")->boolean);
  EXPECT_FALSE(cold.find("cached")->boolean);
  EXPECT_TRUE(warm.find("cached")->boolean);
  EXPECT_EQ(cold.find("result")->string, warm.find("result")->string);
}

TEST(Service, CacheIsKeyedByContentDigestNotPath) {
  // The same trace under both container formats: the second path's first
  // query must already hit the cache (same digest, same canonical form).
  const Fixture& fx = fixture();
  serve::Service svc;
  const std::string params =
      "\"params\":{\"model\":\"knl\",\"format\":\"csv\"}}";
  const support::JsonValue first = parse_response(svc.handle_line(
      "{\"id\":1,\"op\":\"replay\",\"trace\":\"" + fx.mpst_path + "\"," +
      params));
  const support::JsonValue second = parse_response(svc.handle_line(
      "{\"id\":2,\"op\":\"replay\",\"trace\":\"" + fx.mpstz_path + "\"," +
      params));
  ASSERT_TRUE(first.find("ok")->boolean);
  ASSERT_TRUE(second.find("ok")->boolean);
  EXPECT_FALSE(first.find("cached")->boolean);
  EXPECT_TRUE(second.find("cached")->boolean);
  EXPECT_EQ(first.find("digest")->string, second.find("digest")->string);
}

TEST(Service, SweepAndAnalyzeAndTimelineMatchEngine) {
  const Fixture& fx = fixture();
  serve::Service svc;

  serve::SweepQuery sq;
  sq.drop_rates = {0.0, 0.01};
  const support::JsonValue sweep = parse_response(svc.handle_line(
      "{\"id\":1,\"op\":\"sweep\",\"trace\":\"" + fx.mpstz_path +
      "\",\"params\":{\"drop_rates\":[0,0.01]}}"));
  ASSERT_TRUE(sweep.find("ok")->boolean);
  EXPECT_EQ(sweep.find("result")->string, serve::run_sweep(fx.tf, sq));

  const support::JsonValue an = parse_response(
      svc.handle_line("{\"id\":2,\"op\":\"analyze\",\"trace\":\"" +
                      fx.mpstz_path + "\",\"params\":{\"format\":\"json\"}}"));
  ASSERT_TRUE(an.find("ok")->boolean);
  serve::AnalyzeQuery aq;
  aq.format = "json";
  EXPECT_EQ(an.find("result")->string, serve::run_analyze(fx.tf, aq));

  const support::JsonValue tl = parse_response(
      svc.handle_line("{\"id\":3,\"op\":\"timeline\",\"trace\":\"" +
                      fx.mpstz_path + "\"}"));
  ASSERT_TRUE(tl.find("ok")->boolean);
  serve::TimelineQuery tq;
  EXPECT_EQ(tl.find("result")->string, serve::run_timeline(fx.tf, tq));
}

TEST(Service, ErrorContract) {
  const Fixture& fx = fixture();
  serve::Service svc;
  const auto expect_error = [&](const std::string& line,
                                const std::string& needle) {
    const support::JsonValue v = parse_response(svc.handle_line(line));
    ASSERT_TRUE(v.find("ok") != nullptr) << line;
    EXPECT_FALSE(v.find("ok")->boolean) << line;
    EXPECT_NE(v.find("error")->string.find(needle), std::string::npos)
        << line << " -> " << v.find("error")->string;
  };
  expect_error("this is not json", "");
  expect_error("{\"id\":1}", "missing 'op'");
  expect_error("{\"id\":1,\"op\":\"frobnicate\",\"trace\":\"x\"}",
               "unknown op");
  expect_error("{\"id\":1,\"op\":\"replay\"}", "missing 'trace'");
  expect_error("{\"id\":1,\"op\":\"replay\",\"trace\":\"/no/such/file\"}",
               "cannot open");
  expect_error("{\"id\":1,\"op\":\"replay\",\"trace\":\"" + fx.mpst_path +
                   "\",\"params\":{\"typo_key\":1}}",
               "unknown param");
  expect_error("{\"id\":1,\"op\":\"replay\",\"trace\":\"" + fx.mpst_path +
                   "\",\"params\":{\"model\":\"bogus\"}}",
               "unknown model");
}

TEST(Service, StatsReportsCounters) {
  const Fixture& fx = fixture();
  serve::Service svc;
  (void)svc.handle_line("{\"id\":1,\"op\":\"info\",\"trace\":\"" +
                        fx.mpst_path + "\"}");
  (void)svc.handle_line("{\"id\":2,\"op\":\"info\",\"trace\":\"" +
                        fx.mpst_path + "\"}");
  const support::JsonValue v = parse_response(
      svc.handle_line("{\"id\":3,\"op\":\"stats\"}"));
  ASSERT_TRUE(v.find("ok")->boolean);
  const std::string stats = v.find("result")->string;
  EXPECT_NE(stats.find("serve_requests"), std::string::npos);
  EXPECT_NE(stats.find("serve_cache_hits"), std::string::npos);
  EXPECT_NE(stats.find("serve_cache_misses"), std::string::npos);
  EXPECT_NE(stats.find("serve_bytes_decoded"), std::string::npos);
  EXPECT_NE(stats.find("serve_latency_cold"), std::string::npos);
}

TEST(Service, CorruptContainerIsACleanError) {
  const std::string path = temp_path("serve_corrupt.mpstz");
  std::vector<std::uint8_t> bytes = codec::compress(fixture().tf);
  bytes[bytes.size() / 2] ^= 0xFF;
  write_bytes(path, bytes);
  serve::Service svc;
  const support::JsonValue v = parse_response(svc.handle_line(
      "{\"id\":1,\"op\":\"info\",\"trace\":\"" + path + "\"}"));
  ASSERT_TRUE(v.find("ok") != nullptr);
  // Either the flip landed in a checked structure (error) or in a spot
  // the CRC caught — never a crash; most flips land mid-payload and are
  // rejected.
  if (!v.find("ok")->boolean) {
    EXPECT_FALSE(v.find("error")->string.empty());
  }
}

// ---------------------------------------------------------------- server --

/// Minimal synchronous client: send each line, wait for its response.
/// Failures surface as ADD_FAILURE plus a short response list.
std::vector<std::string> tcp_session(int port,
                                     const std::vector<std::string>& lines) {
  std::vector<std::string> responses;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    ADD_FAILURE() << "socket() failed";
    return responses;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ADD_FAILURE() << "connect() failed";
    ::close(fd);
    return responses;
  }
  std::string buffer;
  char chunk[4096];
  for (const std::string& line : lines) {
    const std::string msg = line + "\n";
    std::size_t off = 0;
    while (off < msg.size()) {
      const ssize_t n = ::write(fd, msg.data() + off, msg.size() - off);
      if (n <= 0) {
        ADD_FAILURE() << "write failed";
        ::close(fd);
        return responses;
      }
      off += static_cast<std::size_t>(n);
    }
    bool got_line = false;
    while (!got_line) {
      const std::size_t nl = buffer.find('\n');
      if (nl != std::string::npos) {
        responses.push_back(buffer.substr(0, nl));
        buffer.erase(0, nl + 1);
        got_line = true;
        continue;
      }
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed early";
        ::close(fd);
        return responses;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return responses;
}

std::vector<std::string> serve_session(int workers,
                                       const std::vector<std::string>& lines) {
  serve::Service svc;
  serve::Server server(svc, workers);
  const int port = server.listen(0);
  std::thread runner([&] { server.run(); });
  std::vector<std::string> responses = tcp_session(port, lines);
  server.stop();
  runner.join();
  return responses;
}

TEST(Server, SessionByteIdenticalAcrossWorkerCounts) {
  const Fixture& fx = fixture();
  const std::vector<std::string> script = {
      "{\"id\":1,\"op\":\"info\",\"trace\":\"" + fx.mpstz_path + "\"}",
      "{\"id\":2,\"op\":\"replay\",\"trace\":\"" + fx.mpstz_path +
          "\",\"params\":{\"model\":\"knl\",\"format\":\"csv\"}}",
      "{\"id\":3,\"op\":\"replay\",\"trace\":\"" + fx.mpst_path +
          "\",\"params\":{\"model\":\"knl\",\"format\":\"csv\"}}",
      "{\"id\":4,\"op\":\"sweep\",\"trace\":\"" + fx.mpstz_path +
          "\",\"params\":{\"latency_scales\":[1,2]}}",
  };
  const std::vector<std::string> one = serve_session(1, script);
  const std::vector<std::string> four = serve_session(4, script);
  ASSERT_EQ(one.size(), script.size());
  EXPECT_EQ(one, four);
}

TEST(Server, ConcurrentClientsGetConsistentAnswers) {
  const Fixture& fx = fixture();
  serve::Service svc;
  serve::Server server(svc, 2);
  const int port = server.listen(0);
  std::thread runner([&] { server.run(); });

  const std::vector<std::string> script = {
      "{\"id\":1,\"op\":\"replay\",\"trace\":\"" + fx.mpstz_path +
      "\",\"params\":{\"format\":\"csv\"}}"};
  std::vector<std::vector<std::string>> results(3);
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < 3; ++i) {
      clients.emplace_back(
          [&, i] { results[static_cast<std::size_t>(i)] = tcp_session(port, script); });
    }
    for (auto& c : clients) c.join();
  }
  server.stop();
  runner.join();

  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(results[static_cast<std::size_t>(i)].size(), 1u);
    const support::JsonValue v =
        parse_response(results[static_cast<std::size_t>(i)][0]);
    ASSERT_TRUE(v.find("ok")->boolean) << results[static_cast<std::size_t>(i)][0];
    // All three sessions agree on the rendered bytes (one may be the cold
    // miss, the others cache hits — the result text is the same).
    EXPECT_EQ(v.find("result")->string,
              parse_response(results[0][0]).find("result")->string);
  }
}

}  // namespace
