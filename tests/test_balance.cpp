// Load-balancing analysis interface (paper Sec. 8 future work).
#include <gtest/gtest.h>

#include "core/sections/api.hpp"
#include "profiler/balance.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::profiler;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(Balance, PerfectlyBalancedSection) {
  World world(4, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    sections::MPIX_Section_enter(comm, "even");
    ctx.compute_exact(1.0);
    sections::MPIX_Section_exit(comm, "even");
  });
  const auto b = section_balance(prof, "even");
  EXPECT_EQ(b.ranks, 4);
  EXPECT_NEAR(b.mean_time, 1.0, 1e-9);
  EXPECT_NEAR(b.imbalance_pct, 0.0, 1e-6);
  EXPECT_NEAR(b.imbalance_cost, 0.0, 1e-6);
  EXPECT_NEAR(b.gini, 0.0, 1e-9);
}

TEST(Balance, SkewedSectionIdentifiesCulprit) {
  World world(4, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    sections::MPIX_Section_enter(comm, "skewed");
    ctx.compute_exact(ctx.rank() == 2 ? 4.0 : 1.0);
    sections::MPIX_Section_exit(comm, "skewed");
  });
  const auto b = section_balance(prof, "skewed");
  EXPECT_EQ(b.heaviest_rank, 2);
  EXPECT_NE(b.lightest_rank, 2);
  EXPECT_NEAR(b.mean_time, 1.75, 1e-9);
  // max/mean - 1 = 4/1.75 - 1 ~ 128.6%.
  EXPECT_NEAR(b.imbalance_pct, (4.0 / 1.75 - 1.0) * 100.0, 1e-6);
  // (max - mean) * ranks = 2.25 * 4 = 9 processor-seconds lost.
  EXPECT_NEAR(b.imbalance_cost, 9.0, 1e-6);
  EXPECT_GT(b.gini, 0.2);
}

TEST(Balance, GiniApproachesOneForConcentration) {
  World world(8, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    sections::MPIX_Section_enter(comm, "solo");
    if (ctx.rank() == 0) ctx.compute_exact(10.0);
    sections::MPIX_Section_exit(comm, "solo");
  });
  const auto b = section_balance(prof, "solo");
  EXPECT_GT(b.gini, 0.8);  // one rank does everything
}

TEST(Balance, ReportSortedByCost) {
  World world(4, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    sections::MPIX_Section_enter(comm, "mild");
    ctx.compute_exact(ctx.rank() == 0 ? 1.2 : 1.0);
    sections::MPIX_Section_exit(comm, "mild");
    sections::MPIX_Section_enter(comm, "severe");
    ctx.compute_exact(ctx.rank() == 0 ? 8.0 : 1.0);
    sections::MPIX_Section_exit(comm, "severe");
  });
  const auto report = balance_report(prof);
  ASSERT_GE(report.size(), 3u);  // mild, severe, MPI_MAIN
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_LE(report[i].imbalance_cost, report[i - 1].imbalance_cost);
  }
  // "severe" costs more processor-seconds than "mild" and sorts earlier
  // (MPI_MAIN, which absorbs both, may legitimately rank first).
  std::size_t severe_pos = report.size();
  std::size_t mild_pos = report.size();
  for (std::size_t i = 0; i < report.size(); ++i) {
    if (report[i].label == "severe") severe_pos = i;
    if (report[i].label == "mild") mild_pos = i;
  }
  EXPECT_LT(severe_pos, mild_pos);
  const std::string text = render_balance(report);
  EXPECT_NE(text.find("severe"), std::string::npos);
  EXPECT_NE(text.find("rank 0"), std::string::npos);
}

TEST(Balance, UnknownLabelEmpty) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  world.run([](Ctx&) {});
  const auto b = section_balance(prof, "never-entered");
  EXPECT_EQ(b.ranks, 0);
}

}  // namespace
