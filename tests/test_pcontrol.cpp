// The IPM-style MPI_Pcontrol baseline: local phase intervals, protocol
// misuse that sections would have rejected, and the contrast with the
// collective section semantics.
#include <gtest/gtest.h>

#include "core/sections/api.hpp"
#include "profiler/pcontrol.hpp"
#include "profiler/section_profiler.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::profiler;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

TEST(PcontrolPhasesTest, MeasuresBalancedPhases) {
  World world(2, ideal_options());
  PcontrolPhases phases(world);
  world.run([](Ctx& ctx) {
    ctx.pcontrol(1, "solve");
    ctx.compute_exact(2.0);
    ctx.pcontrol(-1, "solve");
  });
  const auto total = phases.total_phase("solve");
  EXPECT_EQ(total.count, 2);
  EXPECT_NEAR(total.total, 4.0, 1e-9);
  EXPECT_EQ(phases.protocol_errors(), 0);
}

TEST(PcontrolPhasesTest, PerRankStats) {
  World world(2, ideal_options());
  PcontrolPhases phases(world);
  world.run([](Ctx& ctx) {
    ctx.pcontrol(1, "phase");
    ctx.compute_exact(ctx.rank() == 0 ? 1.0 : 3.0);
    ctx.pcontrol(-1, "phase");
  });
  const auto* r0 = phases.rank_phase(0, "phase");
  const auto* r1 = phases.rank_phase(1, "phase");
  ASSERT_NE(r0, nullptr);
  ASSERT_NE(r1, nullptr);
  EXPECT_NEAR(r0->total, 1.0, 1e-9);
  EXPECT_NEAR(r1->total, 3.0, 1e-9);
  EXPECT_EQ(phases.rank_phase(0, "missing"), nullptr);
}

TEST(PcontrolPhasesTest, UnmatchedEndCounted) {
  World world(1, ideal_options());
  PcontrolPhases phases(world);
  world.run([](Ctx& ctx) {
    ctx.pcontrol(-1, "never-started");
  });
  EXPECT_EQ(phases.protocol_errors(), 1);
  EXPECT_EQ(phases.total_phase("never-started").count, 0);
}

TEST(PcontrolPhasesTest, DuplicateStartRestartsInterval) {
  World world(1, ideal_options());
  PcontrolPhases phases(world);
  world.run([](Ctx& ctx) {
    ctx.pcontrol(1, "p");
    ctx.compute_exact(5.0);
    ctx.pcontrol(1, "p");  // misuse: restarts the interval
    ctx.compute_exact(1.0);
    ctx.pcontrol(-1, "p");
  });
  const auto total = phases.total_phase("p");
  EXPECT_EQ(total.count, 1);
  EXPECT_NEAR(total.total, 1.0, 1e-9);  // the first 5 s were silently lost
  EXPECT_EQ(phases.protocol_errors(), 1);
}

TEST(PcontrolPhasesTest, LevelZeroIgnored) {
  World world(1, ideal_options());
  PcontrolPhases phases(world);
  world.run([](Ctx& ctx) {
    ctx.pcontrol(0, "trace-toggle");
  });
  EXPECT_TRUE(phases.phase_labels().empty());
}

TEST(PcontrolPhasesTest, AnonymousLabel) {
  World world(1, ideal_options());
  PcontrolPhases phases(world);
  world.run([](Ctx& ctx) {
    ctx.pcontrol(1, nullptr);
    ctx.compute_exact(1.0);
    ctx.pcontrol(-1, nullptr);
  });
  EXPECT_EQ(phases.total_phase("(anonymous)").count, 1);
}

TEST(PcontrolVsSections, SectionsCatchWhatPcontrolMisses) {
  // The same mistake — a mismatched close — is an explicit error through
  // MPI_Sections but silent mismeasurement through Pcontrol.
  World world(1, ideal_options());
  sections::SectionRuntime::install(world);
  PcontrolPhases phases(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // Pcontrol: open A, close B -> 1 lost interval + 1 unmatched end,
    // nobody tells the user.
    ctx.pcontrol(1, "A");
    ctx.pcontrol(-1, "B");
    // Sections: the same mistake is rejected immediately.
    EXPECT_EQ(sections::MPIX_Section_enter(comm, "A"), sections::kSectionOk);
    EXPECT_EQ(sections::MPIX_Section_exit(comm, "B"),
              sections::kSectionErrNotNested);
    sections::MPIX_Section_exit(comm, "A");
  });
  EXPECT_EQ(phases.protocol_errors(), 1);
  EXPECT_EQ(phases.total_phase("A").count, 0);  // interval lost silently
}

TEST(PcontrolVsSections, BothToolsCoexistOnOneRun) {
  World world(2, ideal_options());
  sections::SectionRuntime::install(world);
  SectionProfiler prof(world);
  PcontrolPhases phases(world);
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    ctx.pcontrol(1, "work");
    sections::MPIX_Section_enter(comm, "work");
    ctx.compute_exact(1.0);
    sections::MPIX_Section_exit(comm, "work");
    ctx.pcontrol(-1, "work");
  });
  EXPECT_NEAR(prof.totals_for("work").mean_per_process, 1.0, 1e-9);
  EXPECT_NEAR(phases.total_phase("work").total, 2.0, 1e-9);
}

}  // namespace
