// Histogram binning, quantiles and rendering.
#include <gtest/gtest.h>

#include "support/histogram.hpp"

namespace {

using mpisect::support::Histogram;

TEST(HistogramTest, BinsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  for (const double x : {0.5, 1.5, 2.5, 2.6, 9.9}) h.add(x);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.bin_count(0), 2);  // [0,2)
  EXPECT_EQ(h.bin_count(1), 2);  // [2,4)
  EXPECT_EQ(h.bin_count(4), 1);  // [8,10)
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 1.0, 2);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(1), 1);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(HistogramTest, FromSamplesCoversRange) {
  const std::vector<double> xs{3.0, 7.0, 5.0, 4.0, 6.0};
  const auto h = Histogram::from_samples(xs, 4);
  EXPECT_EQ(h.count(), 5);
  EXPECT_LT(h.bin_lo(0), 3.0);       // padded below min
  EXPECT_GT(h.bin_hi(3), 7.0);       // padded above max
  long total = 0;
  for (int b = 0; b < h.bins(); ++b) total += h.bin_count(b);
  EXPECT_EQ(total, 5);
}

TEST(HistogramTest, FromEmptySamples) {
  const auto h = Histogram::from_samples({}, 3);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.bins(), 3);
}

TEST(HistogramTest, QuantilesBracketMedian) {
  std::vector<double> xs;
  for (int i = 1; i <= 1000; ++i) xs.push_back(static_cast<double>(i));
  const auto h = Histogram::from_samples(xs, 50);
  EXPECT_NEAR(h.quantile(0.5), 500.0, 30.0);
  EXPECT_NEAR(h.quantile(0.1), 100.0, 30.0);
  EXPECT_LT(h.quantile(0.05), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.0), 1.0 + 50.0);
}

TEST(HistogramTest, RenderShowsBars) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("##########"), std::string::npos);  // full-width bin
  EXPECT_NE(text.find(" 2\n"), std::string::npos);
  EXPECT_NE(text.find(" 1\n"), std::string::npos);
}

}  // namespace
