// MiniOMP: schedules, the region-time model, and Team charging.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "minomp/team.hpp"
#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::minomp;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions options_for(const MachineModel& m) {
  WorldOptions opts;
  opts.machine = m;
  opts.machine.compute_noise_sigma = 0.0;  // exact charges for assertions
  return opts;
}

TEST(Schedules, Names) {
  EXPECT_STREQ(schedule_name(Schedule::Static), "static");
  EXPECT_STREQ(schedule_name(Schedule::Dynamic), "dynamic");
  EXPECT_STREQ(schedule_name(Schedule::Guided), "guided");
}

TEST(Schedules, StaticChunkCount) {
  EXPECT_EQ(chunk_count(Schedule::Static, 100, 4, 0), 4);
  EXPECT_EQ(chunk_count(Schedule::Static, 100, 4, 10), 10);
  EXPECT_EQ(chunk_count(Schedule::Static, 3, 8, 0), 3);  // n < threads
  EXPECT_EQ(chunk_count(Schedule::Static, 0, 4, 0), 0);
}

TEST(Schedules, DynamicChunkCount) {
  EXPECT_EQ(chunk_count(Schedule::Dynamic, 100, 4, 0), 100);  // default 1
  EXPECT_EQ(chunk_count(Schedule::Dynamic, 100, 4, 25), 4);
  EXPECT_EQ(chunk_count(Schedule::Dynamic, 101, 4, 25), 5);
}

TEST(Schedules, GuidedBetweenStaticAndDynamic) {
  const auto s = chunk_count(Schedule::Static, 1000, 8, 0);
  const auto g = chunk_count(Schedule::Guided, 1000, 8, 0);
  const auto d = chunk_count(Schedule::Dynamic, 1000, 8, 0);
  EXPECT_LT(s, g);
  EXPECT_LT(g, d);
}

TEST(Schedules, ImbalanceOrdering) {
  const double base = 0.04;
  EXPECT_LT(imbalance_factor(Schedule::Dynamic, base),
            imbalance_factor(Schedule::Guided, base));
  EXPECT_LT(imbalance_factor(Schedule::Guided, base),
            imbalance_factor(Schedule::Static, base));
}

TEST(RegionModel, SingleThreadHasNoOverhead) {
  const auto m = MachineModel::ideal();
  const MemoryModel mem;
  const KernelProfile kern{1.0, 0.0};
  const auto c = region_time(m, mem, kern, 10.0, 1, 8.0, 1,
                             Schedule::Static, 0);
  EXPECT_DOUBLE_EQ(c.compute, 10.0);
  EXPECT_DOUBLE_EQ(c.overhead, 0.0);
  EXPECT_DOUBLE_EQ(c.imbalance, 0.0);
}

TEST(RegionModel, PerfectScalingWithinCores) {
  const auto m = MachineModel::ideal();
  const MemoryModel mem;  // no saturation
  const KernelProfile kern{1.0, 0.0};
  const auto c = region_time(m, mem, kern, 8.0, 8, 8.0, 1,
                             Schedule::Static, 0);
  EXPECT_NEAR(c.compute, 1.0, 1e-12);
}

TEST(RegionModel, AmdahlSerialFractionRespected) {
  const auto m = MachineModel::ideal();
  const MemoryModel mem;
  const KernelProfile kern{0.5, 0.0};  // half the region is serial
  const auto c = region_time(m, mem, kern, 10.0, 1000, 1000.0, 1,
                             Schedule::Static, 0);
  EXPECT_GE(c.compute, 5.0);  // bounded by the serial half
}

TEST(RegionModel, MemorySaturationCreatesInflexion) {
  // With saturation + contention, region time must eventually RISE with
  // thread count — the paper's Fig. 10 inflexion behaviour.
  const auto m = MachineModel::knl();
  const MemoryModel mem = memory_model_for(m);
  const KernelProfile kern{0.98, 0.6};
  double best = 1e300;
  int best_t = 0;
  std::vector<double> times;
  for (int t = 1; t <= 256; t *= 2) {
    const auto c =
        region_time(m, mem, kern, 1.0, t, 68.0, 1, Schedule::Static, 0);
    times.push_back(c.total());
    if (c.total() < best) {
      best = c.total();
      best_t = t;
    }
  }
  EXPECT_GT(best_t, 2);    // threading helps at first
  EXPECT_LT(best_t, 256);  // ...but not forever
  EXPECT_GT(times.back(), best * 1.02);  // visible rise past the optimum
}

TEST(RegionModel, OversubscriptionPenalizes) {
  const auto m = MachineModel::knl();
  const MemoryModel mem;
  const KernelProfile kern{1.0, 0.0};
  // 64 ranks x 8 threads = 512 demands > 272 hw threads.
  const auto over = region_time(m, mem, kern, 1.0, 8, 68.0 / 64.0, 64,
                                Schedule::Static, 0);
  const auto under = region_time(m, mem, kern, 1.0, 4, 68.0 / 64.0, 64,
                                 Schedule::Static, 0);
  EXPECT_GT(over.compute, under.compute * 0.9);  // extra threads stop paying
}

TEST(RegionModel, OverheadGrowsWithThreads) {
  const auto m = MachineModel::knl();
  const MemoryModel mem;
  const KernelProfile kern{1.0, 0.0};
  const auto t8 = region_time(m, mem, kern, 1.0, 8, 68.0, 1,
                              Schedule::Static, 0);
  const auto t128 = region_time(m, mem, kern, 1.0, 128, 68.0, 1,
                                Schedule::Static, 0);
  EXPECT_GT(t128.overhead, t8.overhead);
}

TEST(RegionModel, DynamicScheduleTradesImbalanceForDispatch) {
  const auto m = MachineModel::broadwell_2s();
  const MemoryModel mem;
  const KernelProfile kern{1.0, 0.0};
  const auto stat = region_time(m, mem, kern, 1.0, 16, 36.0, 1,
                                Schedule::Static, 16);
  const auto dyn = region_time(m, mem, kern, 1.0, 16, 36.0, 1,
                               Schedule::Dynamic, 100000);
  EXPECT_LT(dyn.imbalance, stat.imbalance);
  EXPECT_GT(dyn.overhead, stat.overhead);
}

TEST(MemoryModels, PresetsDiffer) {
  const auto knl = memory_model_for(MachineModel::knl());
  const auto bdw = memory_model_for(MachineModel::broadwell_2s());
  EXPECT_LT(knl.saturation_capacity, bdw.saturation_capacity);
  EXPECT_GT(knl.contention, bdw.contention);
  const auto generic = memory_model_for(MachineModel::ideal());
  EXPECT_GT(generic.saturation_capacity, 1e6);  // effectively unlimited
}

TEST(Team, ExecutesBodyExactlyOncePerIteration) {
  World world(1, options_for(MachineModel::ideal()));
  world.run([](Ctx& ctx) {
    Team team(ctx, 4);
    std::vector<int> hits(100, 0);
    team.parallel_for(0, 100, 1.0, KernelProfile{},
                      [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
    for (const int h : hits) EXPECT_EQ(h, 1);
  });
}

TEST(Team, ParallelReduce) {
  World world(1, options_for(MachineModel::ideal()));
  world.run([](Ctx& ctx) {
    Team team(ctx, 8);
    const long sum = team.parallel_reduce(
        0, 101, 1.0, KernelProfile{}, 0L,
        [](long a, long b) { return a + b; },
        [](std::int64_t i) { return static_cast<long>(i); });
    EXPECT_EQ(sum, 5050);
  });
}

TEST(Team, ChargesVirtualTime) {
  World world(1, options_for(MachineModel::ideal()));
  world.run([](Ctx& ctx) {
    Team team(ctx, 1);
    const double before = ctx.now();
    // 1e9 flops at 1 GF/s = 1 virtual second on one thread.
    team.charge_loop(1000, 1e6, KernelProfile{});
    EXPECT_NEAR(ctx.now() - before, 1.0, 1e-9);
  });
}

TEST(Team, MoreThreadsChargeLess) {
  World world(1, options_for(MachineModel::ideal(8, 1)));
  world.run([](Ctx& ctx) {
    Team t1(ctx, 1);
    Team t8(ctx, 8);
    const auto c1 = t1.preview_region(8.0, KernelProfile{}, 1);
    const auto c8 = t8.preview_region(8.0, KernelProfile{}, 8);
    EXPECT_LT(c8.total(), c1.total());
    EXPECT_NEAR(c8.compute, 1.0, 1e-9);
  });
}

TEST(Team, RanksShareNodeCores) {
  // 4 ranks on one 8-core node: each team sees 2 cores.
  World world(4, options_for(MachineModel::ideal(8, 1)));
  world.run([](Ctx& ctx) {
    Team team(ctx, 4);
    EXPECT_EQ(team.ranks_on_node(), 4);
    EXPECT_DOUBLE_EQ(team.cores_available(), 2.0);
  });
}

TEST(Team, BlockPlacementAcrossNodes) {
  // 16 ranks on 8-core nodes: two full nodes.
  World world(16, options_for(MachineModel::ideal(8, 2)));
  world.run([](Ctx& ctx) {
    Team team(ctx, 1);
    EXPECT_EQ(team.ranks_on_node(), 8);
    EXPECT_DOUBLE_EQ(team.cores_available(), 1.0);
  });
}

TEST(Team, ThreadCountClamped) {
  World world(1, options_for(MachineModel::ideal()));
  world.run([](Ctx& ctx) {
    Team team(ctx, -5);
    EXPECT_EQ(team.num_threads(), 1);
    Team big(ctx, 1 << 20);
    EXPECT_EQ(big.num_threads(), 1024);
  });
}

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, ChargeAlwaysPositiveAndFinite) {
  const int threads = GetParam();
  World world(1, options_for(MachineModel::knl()));
  world.run([threads](Ctx& ctx) {
    Team team(ctx, threads);
    const auto c = team.preview_region(1.0, KernelProfile{0.97, 0.5}, threads);
    EXPECT_GT(c.total(), 0.0);
    EXPECT_TRUE(std::isfinite(c.total()));
  });
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 68, 136, 272, 512));

}  // namespace
