// Trace-format corruption fuzzing (deterministic, seeded): random byte
// flips and truncations of a valid encoded trace must either decode
// successfully or throw trace::TraceError — never crash, never trip
// ASan/UBSan, never abort. Traces that *do* decode are then pushed
// through the offline analyzer, which must likewise either finish or
// reject with TraceError: corrupt backrefs, impossible clocks and
// truncated streams are all structural errors, not undefined behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "analysis/analyzer.hpp"
#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/message.hpp"
#include "mpisim/runtime.hpp"
#include "support/rng.hpp"
#include "trace/file.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

using namespace mpisect;

/// A small but representative trace: wildcard receives (so the analyzer's
/// vector-clock and match-set paths run), sections, and a barrier-free
/// p2p mesh across 3 ranks.
trace::TraceFile record_fixture() {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0x5EED;
  mpisim::World world(3, opts);
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "fuzz-fixture"});
  world.run([](mpisim::Ctx& ctx) {
    mpisim::Comm world_comm = ctx.world_comm();
    sections::MPIX_Section_enter(world_comm, "FUZZ");
    char buf[4] = {};
    static const char payload[4] = {};
    switch (world_comm.rank()) {
      case 0:
        world_comm.recv(buf, sizeof buf, mpisim::kAnySource, 5);
        world_comm.recv(buf, sizeof buf, mpisim::kAnySource, 5);
        break;
      case 1:
        world_comm.send(payload, sizeof payload, 0, 5);
        world_comm.send(payload, sizeof payload, 2, 9);
        break;
      case 2:
        world_comm.recv(buf, sizeof buf, 1, 9);
        world_comm.send(payload, sizeof payload, 0, 5);
        break;
      default:
        break;
    }
    sections::MPIX_Section_exit(world_comm, "FUZZ");
  });
  return rec->finish();
}

/// Decode + analyze, accepting only clean success or TraceError.
/// Returns true if the mutant decoded (for coverage accounting).
bool exercise(std::span<const std::uint8_t> bytes) {
  trace::TraceFile tf;
  try {
    tf = trace::TraceFile::decode(bytes);
  } catch (const trace::TraceError&) {
    return false;  // rejected cleanly — the expected common case
  }
  try {
    (void)analysis::analyze(tf);
  } catch (const trace::TraceError&) {
    // Structurally inconsistent but decodable: also a clean rejection.
  }
  return true;
}

TEST(TraceFuzz, SingleByteFlipsNeverCrash) {
  const std::vector<std::uint8_t> bytes = record_fixture().encode();
  support::SequentialRng rng(0xF1E2);
  int decoded = 0;
  constexpr int kFlips = 400;
  for (int i = 0; i < kFlips; ++i) {
    std::vector<std::uint8_t> mutant = bytes;
    const std::size_t pos = rng.next() % mutant.size();
    mutant[pos] ^= static_cast<std::uint8_t>(1u << (rng.next() % 8));
    if (exercise(mutant)) ++decoded;
  }
  // Some flips land in slack bits and still decode; the point is that
  // every outcome was either success or TraceError.
  SUCCEED() << decoded << "/" << kFlips << " mutants decoded";
}

TEST(TraceFuzz, MultiByteCorruptionNeverCrashes) {
  const std::vector<std::uint8_t> bytes = record_fixture().encode();
  support::SequentialRng rng(0xBEEF);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> mutant = bytes;
    const int burst = 2 + static_cast<int>(rng.next() % 15);
    for (int b = 0; b < burst; ++b) {
      mutant[rng.next() % mutant.size()] =
          static_cast<std::uint8_t>(rng.next());
    }
    exercise(mutant);
  }
}

TEST(TraceFuzz, EveryTruncationLengthIsRejectedOrSafe) {
  const std::vector<std::uint8_t> bytes = record_fixture().encode();
  // Every prefix length: dense near the ends (header/footer), sampled in
  // the middle to keep the test fast.
  support::SequentialRng rng(0x7A11);
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < 64 && n < bytes.size(); ++n) lengths.push_back(n);
  for (std::size_t n = bytes.size() - 64; n < bytes.size(); ++n) {
    lengths.push_back(n);
  }
  for (int i = 0; i < 200; ++i) lengths.push_back(rng.next() % bytes.size());
  for (const std::size_t n : lengths) {
    const std::vector<std::uint8_t> mutant(bytes.begin(),
                                           bytes.begin() + n);
    // A strict prefix must never decode as a complete trace.
    EXPECT_THROW((void)trace::TraceFile::decode(mutant), trace::TraceError)
        << "prefix length " << n;
  }
}

TEST(TraceFuzz, AppendedGarbageIsRejected) {
  std::vector<std::uint8_t> bytes = record_fixture().encode();
  bytes.push_back(0x42);
  EXPECT_THROW((void)trace::TraceFile::decode(bytes), trace::TraceError);
}

TEST(TraceFuzz, ReplayAndAnalysisAgreeOnMutantAcceptance) {
  // Any mutant the analyzer accepts, the replayer's recorded frame also
  // accepts (both rebuild the same arithmetic): a divergence would mean
  // the analyzer's mirror drifted from trace/replay.cpp.
  const std::vector<std::uint8_t> bytes = record_fixture().encode();
  support::SequentialRng rng(0xD1CE);
  for (int i = 0; i < 60; ++i) {
    std::vector<std::uint8_t> mutant = bytes;
    mutant[rng.next() % mutant.size()] ^=
        static_cast<std::uint8_t>(1u << (rng.next() % 8));
    trace::TraceFile tf;
    try {
      tf = trace::TraceFile::decode(mutant);
    } catch (const trace::TraceError&) {
      continue;
    }
    bool analysis_ok = true;
    try {
      (void)analysis::analyze(tf);
    } catch (const trace::TraceError&) {
      analysis_ok = false;
    }
    bool replay_ok = true;
    try {
      (void)trace::replay(tf, tf.header.machine);
    } catch (const trace::TraceError&) {
      replay_ok = false;
    }
    EXPECT_EQ(analysis_ok, replay_ok) << "mutant " << i;
  }
}

}  // namespace
