// Trace-format corruption fuzzing (deterministic, seeded): random byte
// flips and truncations of a valid encoded trace must either decode
// successfully or throw trace::TraceError — never crash, never trip
// ASan/UBSan, never abort. Traces that *do* decode are then pushed
// through the offline analyzer, which must likewise either finish or
// reject with TraceError: corrupt backrefs, impossible clocks and
// truncated streams are all structural errors, not undefined behaviour.
//
// The same contract covers the compressed .mpstz container: flips in the
// chunk index, Huffman length tables and payloads, and truncations at
// every chunk boundary, all through both the eager decompressor and the
// random-access reader.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "analysis/analyzer.hpp"
#include "codec/mpstz.hpp"
#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/message.hpp"
#include "mpisim/runtime.hpp"
#include "support/rng.hpp"
#include "trace/file.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

using namespace mpisect;

/// A small but representative trace: wildcard receives (so the analyzer's
/// vector-clock and match-set paths run), sections, and a barrier-free
/// p2p mesh across 3 ranks.
trace::TraceFile record_fixture() {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0x5EED;
  mpisim::World world(3, opts);
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "fuzz-fixture"});
  world.run([](mpisim::Ctx& ctx) {
    mpisim::Comm world_comm = ctx.world_comm();
    sections::MPIX_Section_enter(world_comm, "FUZZ");
    char buf[4] = {};
    static const char payload[4] = {};
    switch (world_comm.rank()) {
      case 0:
        world_comm.recv(buf, sizeof buf, mpisim::kAnySource, 5);
        world_comm.recv(buf, sizeof buf, mpisim::kAnySource, 5);
        break;
      case 1:
        world_comm.send(payload, sizeof payload, 0, 5);
        world_comm.send(payload, sizeof payload, 2, 9);
        break;
      case 2:
        world_comm.recv(buf, sizeof buf, 1, 9);
        world_comm.send(payload, sizeof payload, 0, 5);
        break;
      default:
        break;
    }
    sections::MPIX_Section_exit(world_comm, "FUZZ");
  });
  return rec->finish();
}

/// Decode + analyze, accepting only clean success or TraceError.
/// Returns true if the mutant decoded (for coverage accounting).
bool exercise(std::span<const std::uint8_t> bytes) {
  trace::TraceFile tf;
  try {
    tf = trace::TraceFile::decode(bytes);
  } catch (const trace::TraceError&) {
    return false;  // rejected cleanly — the expected common case
  }
  try {
    (void)analysis::analyze(tf);
  } catch (const trace::TraceError&) {
    // Structurally inconsistent but decodable: also a clean rejection.
  }
  return true;
}

TEST(TraceFuzz, SingleByteFlipsNeverCrash) {
  const std::vector<std::uint8_t> bytes = record_fixture().encode();
  support::SequentialRng rng(0xF1E2);
  int decoded = 0;
  constexpr int kFlips = 400;
  for (int i = 0; i < kFlips; ++i) {
    std::vector<std::uint8_t> mutant = bytes;
    const std::size_t pos = rng.next() % mutant.size();
    mutant[pos] ^= static_cast<std::uint8_t>(1u << (rng.next() % 8));
    if (exercise(mutant)) ++decoded;
  }
  // Some flips land in slack bits and still decode; the point is that
  // every outcome was either success or TraceError.
  SUCCEED() << decoded << "/" << kFlips << " mutants decoded";
}

TEST(TraceFuzz, MultiByteCorruptionNeverCrashes) {
  const std::vector<std::uint8_t> bytes = record_fixture().encode();
  support::SequentialRng rng(0xBEEF);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> mutant = bytes;
    const int burst = 2 + static_cast<int>(rng.next() % 15);
    for (int b = 0; b < burst; ++b) {
      mutant[rng.next() % mutant.size()] =
          static_cast<std::uint8_t>(rng.next());
    }
    exercise(mutant);
  }
}

TEST(TraceFuzz, EveryTruncationLengthIsRejectedOrSafe) {
  const std::vector<std::uint8_t> bytes = record_fixture().encode();
  // Every prefix length: dense near the ends (header/footer), sampled in
  // the middle to keep the test fast.
  support::SequentialRng rng(0x7A11);
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < 64 && n < bytes.size(); ++n) lengths.push_back(n);
  for (std::size_t n = bytes.size() - 64; n < bytes.size(); ++n) {
    lengths.push_back(n);
  }
  for (int i = 0; i < 200; ++i) lengths.push_back(rng.next() % bytes.size());
  for (const std::size_t n : lengths) {
    const std::vector<std::uint8_t> mutant(bytes.begin(),
                                           bytes.begin() + n);
    // A strict prefix must never decode as a complete trace.
    EXPECT_THROW((void)trace::TraceFile::decode(mutant), trace::TraceError)
        << "prefix length " << n;
  }
}

TEST(TraceFuzz, AppendedGarbageIsRejected) {
  std::vector<std::uint8_t> bytes = record_fixture().encode();
  bytes.push_back(0x42);
  EXPECT_THROW((void)trace::TraceFile::decode(bytes), trace::TraceError);
}

// ------------------------------------------------------ .mpstz container --

/// Decode a .mpstz mutant through both the eager path and the
/// random-access reader, accepting only success or TraceError. The two
/// paths must agree on acceptance: a mutant one rejects, both reject.
bool exercise_mpstz(const std::vector<std::uint8_t>& bytes) {
  bool eager_ok = true;
  trace::TraceFile tf;
  try {
    tf = codec::decompress(bytes);
  } catch (const trace::TraceError&) {
    eager_ok = false;
  }
  bool reader_ok = true;
  try {
    codec::MpstzReader reader(bytes);
    for (std::size_t c = 0; c < reader.chunks().size(); ++c) {
      (void)reader.chunk_events(c);
    }
  } catch (const trace::TraceError&) {
    reader_ok = false;
  }
  EXPECT_EQ(eager_ok, reader_ok) << "eager and random-access decode disagree";
  if (eager_ok) {
    try {
      (void)analysis::analyze(tf);
    } catch (const trace::TraceError&) {
    }
  }
  return eager_ok;
}

TEST(TraceFuzz, MpstzSingleByteFlipsNeverCrash) {
  const std::vector<std::uint8_t> bytes =
      codec::compress(record_fixture(), {.chunk_events = 16});
  support::SequentialRng rng(0xC0DE);
  int decoded = 0;
  constexpr int kFlips = 400;
  for (int i = 0; i < kFlips; ++i) {
    std::vector<std::uint8_t> mutant = bytes;
    const std::size_t pos = rng.next() % mutant.size();
    mutant[pos] ^= static_cast<std::uint8_t>(1u << (rng.next() % 8));
    if (exercise_mpstz(mutant)) ++decoded;
  }
  // Chunk CRCs catch nearly every payload flip; index/metadata flips are
  // structural rejects. Either way, no UB.
  SUCCEED() << decoded << "/" << kFlips << " mutants decoded";
}

TEST(TraceFuzz, MpstzIndexAndTableCorruptionNeverCrashes) {
  // Bias the bursts toward the front of the container, where the
  // metadata blob, per-rank counts and chunk index live — the structures
  // most likely to send a naive decoder out of bounds.
  const std::vector<std::uint8_t> bytes =
      codec::compress(record_fixture(), {.chunk_events = 16});
  support::SequentialRng rng(0xAB1E);
  const std::size_t front = bytes.size() / 3 + 1;
  for (int i = 0; i < 150; ++i) {
    std::vector<std::uint8_t> mutant = bytes;
    const int burst = 1 + static_cast<int>(rng.next() % 8);
    for (int b = 0; b < burst; ++b) {
      mutant[rng.next() % front] = static_cast<std::uint8_t>(rng.next());
    }
    exercise_mpstz(mutant);
  }
}

TEST(TraceFuzz, MpstzEveryTruncationIsRejected) {
  const std::vector<std::uint8_t> bytes =
      codec::compress(record_fixture(), {.chunk_events = 16});
  // Dense near both ends plus a sample of interior prefixes: every chunk
  // boundary lands in one of these ranges for the 16-event chunking.
  support::SequentialRng rng(0x7A12);
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < 96 && n < bytes.size(); ++n) lengths.push_back(n);
  for (std::size_t n = bytes.size() - 96; n < bytes.size(); ++n) {
    lengths.push_back(n);
  }
  for (int i = 0; i < 300; ++i) lengths.push_back(rng.next() % bytes.size());
  for (const std::size_t n : lengths) {
    const std::vector<std::uint8_t> mutant(bytes.begin(), bytes.begin() + n);
    EXPECT_THROW((void)codec::decompress(mutant), trace::TraceError)
        << "prefix length " << n;
  }
}

TEST(TraceFuzz, MpstzTruncationAtEveryChunkBoundaryIsRejected) {
  const trace::TraceFile tf = record_fixture();
  const std::vector<std::uint8_t> bytes =
      codec::compress(tf, {.chunk_events = 8});
  // Recover each chunk's end offset within the payload section from the
  // reader's index, then truncate the container exactly there: the
  // payload-size check or a chunk bounds check must reject every one.
  codec::MpstzReader reader(bytes);
  ASSERT_GT(reader.chunks().size(), 1u);
  for (const codec::ChunkInfo& c : reader.chunks()) {
    const std::size_t payload_end_of_chunk =
        bytes.size() - reader.chunks().back().offset -
        reader.chunks().back().size + c.offset + c.size;
    // The last chunk's end is the full container — that's the valid file,
    // not a truncation.
    if (payload_end_of_chunk >= bytes.size()) continue;
    const std::vector<std::uint8_t> mutant(
        bytes.begin(),
        bytes.begin() + static_cast<std::ptrdiff_t>(payload_end_of_chunk));
    EXPECT_THROW((void)codec::decompress(mutant), trace::TraceError)
        << "truncated after chunk at offset " << c.offset;
  }
}

TEST(TraceFuzz, MpstzReplayAndServeLoadAgreeOnMutantAcceptance) {
  // The serve daemon and the offline CLIs funnel through the same two
  // decode paths (decompress / MpstzReader); a mutant accepted by one
  // loader and rejected by the other would let a served answer diverge
  // from the CLI. exercise_mpstz asserts the agreement per mutant.
  const std::vector<std::uint8_t> bytes =
      codec::compress(record_fixture(), {.chunk_events = 16});
  support::SequentialRng rng(0xD1CF);
  for (int i = 0; i < 80; ++i) {
    std::vector<std::uint8_t> mutant = bytes;
    const int burst = 1 + static_cast<int>(rng.next() % 4);
    for (int b = 0; b < burst; ++b) {
      mutant[rng.next() % mutant.size()] ^=
          static_cast<std::uint8_t>(1u << (rng.next() % 8));
    }
    exercise_mpstz(mutant);
  }
}

TEST(TraceFuzz, ReplayAndAnalysisAgreeOnMutantAcceptance) {
  // Any mutant the analyzer accepts, the replayer's recorded frame also
  // accepts (both rebuild the same arithmetic): a divergence would mean
  // the analyzer's mirror drifted from trace/replay.cpp.
  const std::vector<std::uint8_t> bytes = record_fixture().encode();
  support::SequentialRng rng(0xD1CE);
  for (int i = 0; i < 60; ++i) {
    std::vector<std::uint8_t> mutant = bytes;
    mutant[rng.next() % mutant.size()] ^=
        static_cast<std::uint8_t>(1u << (rng.next() % 8));
    trace::TraceFile tf;
    try {
      tf = trace::TraceFile::decode(mutant);
    } catch (const trace::TraceError&) {
      continue;
    }
    bool analysis_ok = true;
    try {
      (void)analysis::analyze(tf);
    } catch (const trace::TraceError&) {
      analysis_ok = false;
    }
    bool replay_ok = true;
    try {
      (void)trace::replay(tf, tf.header.machine);
    } catch (const trace::TraceError&) {
      replay_ok = false;
    }
    EXPECT_EQ(analysis_ok, replay_ok) << "mutant " << i;
  }
}

}  // namespace
