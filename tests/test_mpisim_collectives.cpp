// Collective correctness against serial references, across rank counts,
// plus modelled-only variants and synchronization timing properties.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpisim/runtime.hpp"

namespace {

using namespace mpisect::mpisim;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BarrierSynchronizesVirtualTime) {
  const int p = GetParam();
  World world(p, ideal_options());
  std::vector<double> after(static_cast<std::size_t>(p));
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // Rank r is busy r virtual seconds; after the barrier everyone must be
    // at least as late as the slowest rank.
    ctx.compute_exact(static_cast<double>(ctx.rank()));
    comm.barrier();
    after[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  for (const double t : after) EXPECT_GE(t, static_cast<double>(p - 1));
}

TEST_P(CollectiveSweep, BcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; root += (p > 4 ? 3 : 1)) {
    World world(p, ideal_options());
    world.run([root](Ctx& ctx) {
      Comm comm = ctx.world_comm();
      std::vector<int> data(5, -1);
      if (ctx.rank() == root) {
        std::iota(data.begin(), data.end(), 100);
      }
      comm.bcast(data.data(), data.size() * sizeof(int), root);
      for (int i = 0; i < 5; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], 100 + i);
    });
  }
}

TEST_P(CollectiveSweep, ReduceSumToRoot) {
  const int p = GetParam();
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const double mine[2] = {static_cast<double>(ctx.rank()), 1.0};
    double out[2] = {0.0, 0.0};
    comm.reduce(mine, out, 2, Datatype::Double, ReduceOp::Sum, 0);
    if (ctx.rank() == 0) {
      EXPECT_DOUBLE_EQ(out[0], p * (p - 1) / 2.0);
      EXPECT_DOUBLE_EQ(out[1], static_cast<double>(p));
    }
  });
}

TEST_P(CollectiveSweep, AllreduceMinMaxEverywhere) {
  const int p = GetParam();
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const double mine = static_cast<double>(ctx.rank()) + 0.5;
    double mn = 0.0;
    double mx = 0.0;
    comm.allreduce(&mine, &mn, 1, Datatype::Double, ReduceOp::Min);
    comm.allreduce(&mine, &mx, 1, Datatype::Double, ReduceOp::Max);
    EXPECT_DOUBLE_EQ(mn, 0.5);
    EXPECT_DOUBLE_EQ(mx, p - 0.5);
  });
}

TEST_P(CollectiveSweep, AllreduceMaxLocFindsOwner) {
  const int p = GetParam();
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // Values peak at rank p/2.
    const DoubleInt mine{
        static_cast<double>(ctx.rank() == p / 2 ? 1000 : ctx.rank()),
        ctx.rank()};
    DoubleInt best{};
    comm.allreduce(&mine, &best, 1, Datatype::DoubleInt, ReduceOp::MaxLoc);
    EXPECT_EQ(best.index, p / 2);
    EXPECT_DOUBLE_EQ(best.value, 1000.0);
  });
}

TEST_P(CollectiveSweep, ScatterGatherRoundtrip) {
  const int p = GetParam();
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    std::vector<int> all;
    if (ctx.rank() == 0) {
      all.resize(static_cast<std::size_t>(p) * 4);
      std::iota(all.begin(), all.end(), 0);
    }
    std::vector<int> mine(4, -1);
    comm.scatter(ctx.rank() == 0 ? all.data() : nullptr, 4 * sizeof(int),
                 mine.data(), 0);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(mine[static_cast<std::size_t>(i)], ctx.rank() * 4 + i);
    }
    for (auto& v : mine) v += 1000;
    std::vector<int> back;
    if (ctx.rank() == 0) back.assign(static_cast<std::size_t>(p) * 4, -1);
    comm.gather(mine.data(), 4 * sizeof(int),
                ctx.rank() == 0 ? back.data() : nullptr, 0);
    if (ctx.rank() == 0) {
      for (int i = 0; i < p * 4; ++i) {
        EXPECT_EQ(back[static_cast<std::size_t>(i)], i + 1000);
      }
    }
  });
}

TEST_P(CollectiveSweep, ScattervGathervVariableChunks) {
  const int p = GetParam();
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // Rank r gets r+1 ints.
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    std::vector<std::size_t> displs(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      counts[static_cast<std::size_t>(r)] = (static_cast<std::size_t>(r) + 1) * sizeof(int);
      displs[static_cast<std::size_t>(r)] = total;
      total += counts[static_cast<std::size_t>(r)];
    }
    std::vector<int> all;
    if (ctx.rank() == 0) {
      all.resize(total / sizeof(int));
      std::iota(all.begin(), all.end(), 0);
    }
    std::vector<int> mine(static_cast<std::size_t>(ctx.rank()) + 1, -1);
    comm.scatterv(ctx.rank() == 0 ? all.data() : nullptr, counts, displs,
                  mine.data(), mine.size() * sizeof(int), 0);
    const int my_start = ctx.rank() * (ctx.rank() + 1) / 2;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(mine[i], my_start + static_cast<int>(i));
    }
    std::vector<int> back;
    if (ctx.rank() == 0) back.assign(total / sizeof(int), -1);
    comm.gatherv(mine.data(), mine.size() * sizeof(int),
                 ctx.rank() == 0 ? back.data() : nullptr, counts, displs, 0);
    if (ctx.rank() == 0) {
      for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i], static_cast<int>(i));
      }
    }
  });
}

TEST_P(CollectiveSweep, AllgatherEveryRankSeesAll) {
  const int p = GetParam();
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const long mine = 1000 + ctx.rank();
    std::vector<long> all(static_cast<std::size_t>(p), -1);
    comm.allgather(&mine, sizeof mine, all.data());
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], 1000 + r);
    }
  });
}

TEST_P(CollectiveSweep, AlltoallTransposes) {
  const int p = GetParam();
  World world(p, ideal_options());
  world.run([p](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // send[j] = rank * 100 + j; after alltoall recv[j] = j * 100 + rank.
    std::vector<int> send(static_cast<std::size_t>(p));
    std::vector<int> recv(static_cast<std::size_t>(p), -1);
    for (int j = 0; j < p; ++j) {
      send[static_cast<std::size_t>(j)] = ctx.rank() * 100 + j;
    }
    comm.alltoall(send.data(), sizeof(int), recv.data());
    for (int j = 0; j < p; ++j) {
      EXPECT_EQ(recv[static_cast<std::size_t>(j)], j * 100 + ctx.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(Collectives, ModeledVariantsAdvanceTimeOnly) {
  World world(4, ideal_options());
  std::vector<double> times(4);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    comm.bcast(nullptr, 1 << 20, 0);
    comm.scatter(nullptr, 1 << 18, nullptr, 0);
    comm.gather(nullptr, 1 << 18, nullptr, 0);
    comm.allgather(nullptr, 1 << 16, nullptr);
    comm.alltoall(nullptr, 1 << 16, nullptr);
    comm.reduce(nullptr, nullptr, 1024, Datatype::Double, ReduceOp::Sum, 0);
    comm.allreduce(nullptr, nullptr, 1024, Datatype::Double, ReduceOp::Sum);
    times[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  for (const double t : times) EXPECT_GT(t, 0.0);
}

TEST(Collectives, AllreduceOneConvenience) {
  World world(5, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    const double sum = comm.allreduce_one(1.5, ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(sum, 7.5);
    const int max = comm.allreduce_one(ctx.rank(), ReduceOp::Max);
    EXPECT_EQ(max, 4);
  });
}

TEST(Collectives, InPlaceAliasingSafeForAllreduce) {
  World world(4, ideal_options());
  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    double v = 1.0;
    comm.allreduce(&v, &v, 1, Datatype::Double, ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(v, 4.0);
  });
}

TEST(Collectives, RootedCollectiveBadRootThrows) {
  World world(2, ideal_options());
  EXPECT_THROW(world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    comm.bcast(nullptr, 8, 5);
  }),
               MpiError);
}

TEST(Collectives, BcastCostGrowsLogarithmically) {
  // Binomial broadcast: time grows like ceil(log2 p), not linearly.
  auto bcast_time = [](int p) {
    WorldOptions opts;
    opts.machine = MachineModel::ideal(p, 1);
    opts.seed = 1;
    World world(p, opts);
    std::vector<double> t(static_cast<std::size_t>(p));
    world.run([&](Ctx& ctx) {
      Comm comm = ctx.world_comm();
      comm.bcast(nullptr, 8, 0);
      t[static_cast<std::size_t>(ctx.rank())] = ctx.now();
    });
    double mx = 0.0;
    for (const double x : t) mx = std::max(mx, x);
    return mx;
  };
  const double t4 = bcast_time(4);
  const double t64 = bcast_time(64);
  // log2(64)/log2(4) = 3; allow generous headroom but reject linear (16x).
  EXPECT_LT(t64, t4 * 8.0);
  EXPECT_GT(t64, t4);
}

TEST(Collectives, GatherRootLeavesLast) {
  World world(4, ideal_options());
  std::vector<double> t(4);
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 2) ctx.compute_exact(3.0);  // one late contributor
    long v = ctx.rank();
    std::vector<long> all(4);
    comm.gather(&v, sizeof v, ctx.rank() == 0 ? all.data() : nullptr, 0);
    t[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  EXPECT_GE(t[0], 3.0);  // root must wait for the late rank
  EXPECT_LT(t[1], 3.0);  // early non-root ranks are not held back
}

}  // namespace
