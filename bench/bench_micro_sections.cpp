// Microbenchmarks (google-benchmark) of the section primitives and the
// MiniMPI fast paths — quantifying the paper's implicit claim that
// MPIX_Section_enter/exit is cheap enough to leave in production codes
// ("minimal code addition", "non-blocking collective").
//
// Measured in *host* time: these are the real CPU costs of the runtime
// machinery, not modelled virtual durations.
#include <benchmark/benchmark.h>

#include "core/sections/api.hpp"
#include "core/sections/metrics.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/session.hpp"
#include "profiler/section_profiler.hpp"

namespace {

using namespace mpisect;
using mpisim::Comm;
using mpisim::Ctx;
using mpisim::MachineModel;
using mpisim::World;
using mpisim::WorldOptions;

WorldOptions ideal_options() {
  WorldOptions opts;
  opts.machine = MachineModel::ideal();
  return opts;
}

/// Single-rank world kept alive across iterations; the benchmark body runs
/// inside one World::run invocation.
template <typename Body>
void run_on_world(benchmark::State& state, int nranks, bool with_tool,
                  Body&& body) {
  const auto world_ptr =
      mpisim::Session(nranks, ideal_options()).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  std::unique_ptr<profiler::SectionProfiler> prof;
  if (with_tool) {
    prof = std::make_unique<profiler::SectionProfiler>(world);
  }
  world.run([&](Ctx& ctx) {
    if (ctx.rank() != 0) return;  // time only rank 0's loop
    Comm comm = ctx.world_comm();
    for (auto _ : state) {
      body(ctx, comm);
    }
  });
}

void BM_SectionEnterExit(benchmark::State& state) {
  run_on_world(state, 1, /*with_tool=*/false, [](Ctx&, Comm& comm) {
    sections::MPIX_Section_enter(comm, "bench");
    sections::MPIX_Section_exit(comm, "bench");
  });
}
BENCHMARK(BM_SectionEnterExit);

void BM_SectionEnterExitWithProfiler(benchmark::State& state) {
  run_on_world(state, 1, /*with_tool=*/true, [](Ctx&, Comm& comm) {
    sections::MPIX_Section_enter(comm, "bench");
    sections::MPIX_Section_exit(comm, "bench");
  });
}
BENCHMARK(BM_SectionEnterExitWithProfiler);

void BM_SectionNested4Deep(benchmark::State& state) {
  run_on_world(state, 1, false, [](Ctx&, Comm& comm) {
    sections::MPIX_Section_enter(comm, "a");
    sections::MPIX_Section_enter(comm, "b");
    sections::MPIX_Section_enter(comm, "c");
    sections::MPIX_Section_enter(comm, "d");
    sections::MPIX_Section_exit(comm, "d");
    sections::MPIX_Section_exit(comm, "c");
    sections::MPIX_Section_exit(comm, "b");
    sections::MPIX_Section_exit(comm, "a");
  });
}
BENCHMARK(BM_SectionNested4Deep);

void BM_ScopedSection(benchmark::State& state) {
  run_on_world(state, 1, false, [](Ctx&, Comm& comm) {
    const sections::ScopedSection s(comm, "scoped");
    benchmark::DoNotOptimize(&s);
  });
}
BENCHMARK(BM_ScopedSection);

void BM_EagerSendRecvSelfWorld(benchmark::State& state) {
  // Two-rank world: rank 0 ping-pongs with rank 1; we time rank 0's loop
  // (each iteration is one round trip of `bytes`).
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto world_ptr2 =
      mpisim::Session(2, ideal_options()).world_builder().build();
  mpisim::World& world = *world_ptr2;
  std::vector<std::byte> buf(std::max<std::size_t>(bytes, 1));
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      for (auto _ : state) {
        comm.send(buf.data(), bytes, 1, 0);
        comm.recv(buf.data(), bytes, 1, 0);
      }
      comm.send(nullptr, 0, 1, 1);  // stop marker
    } else {
      for (;;) {
        const mpisim::Status st = comm.probe(0, mpisim::kAnyTag);
        if (st.tag == 1) {
          comm.recv(nullptr, 0, 0, 1);
          break;
        }
        comm.recv(buf.data(), bytes, 0, 0);
        comm.send(buf.data(), bytes, 0, 0);
      }
    }
  });
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes) * 2);
}
BENCHMARK(BM_EagerSendRecvSelfWorld)->Arg(8)->Arg(1024)->Arg(8192);

void BM_Barrier8Ranks(benchmark::State& state) {
  // All ranks iterate the same number of times; we time rank 0.
  // Fixed iteration budget so the non-timed ranks can mirror rank 0's
  // barrier count exactly.
  constexpr int kIters = 1 << 12;
  const auto world_ptr3 =
      mpisim::Session(8, ideal_options()).world_builder().build();
  mpisim::World& world = *world_ptr3;
  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    if (ctx.rank() == 0) {
      for (auto _ : state) {
        comm.barrier();
      }
    } else {
      for (int i = 0; i < kIters; ++i) comm.barrier();
    }
  });
}
BENCHMARK(BM_Barrier8Ranks)->Iterations(1 << 12);

void BM_MetricsCompute(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  std::vector<sections::RankSpan> spans;
  for (int r = 0; r < nranks; ++r) {
    spans.push_back({r, 0.001 * r, 1.0 + 0.002 * r});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sections::compute_metrics(spans));
  }
}
BENCHMARK(BM_MetricsCompute)->Arg(8)->Arg(64)->Arg(456);

void BM_LabelIntern(benchmark::State& state) {
  sections::LabelRegistry reg;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.intern(i % 2 == 0 ? "HALO" : "CONVOLVE"));
    ++i;
  }
}
BENCHMARK(BM_LabelIntern);

}  // namespace
