// Shared sweep drivers for the figure-regeneration benches.
//
// Every bench binary regenerates one table or figure of the paper by
// running the instrumented apps on the calibrated machine models and
// post-processing profiler output. The drivers here own the repetition /
// averaging protocol (the paper: "runs were done twenty times and
// averaged") and return plain series keyed by section label.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/speedup/partial_bound.hpp"
#include "core/speedup/series.hpp"
#include "minomp/schedule.hpp"
#include "mpisim/faults/plan.hpp"
#include "mpisim/machine.hpp"

namespace mpisect::bench {

/// Result of one app execution, averaged over repetitions.
struct RunPoint {
  double walltime = 0.0;      ///< virtual makespan (max rank finish time)
  double walltime_stddev = 0.0;
  /// label -> mean time per process (inclusive).
  std::map<std::string, double> per_process;
  /// label -> sum over processes.
  std::map<std::string, double> total;
  /// label -> attributed MPI time per process.
  std::map<std::string, double> mpi_time;
};

struct ConvolutionSweepOptions {
  int width = 5616;
  int height = 3744;
  int steps = 1000;
  int reps = 3;        ///< averaged repetitions (paper used 20)
  std::uint64_t seed = 0xC0FFEE;
  mpisim::MachineModel machine = mpisim::MachineModel::nehalem_cluster();
  /// Deterministic fault plan applied to every repetition (empty = none).
  mpisim::faults::FaultPlan faults;
  /// Execution backend spec, e.g. "cooperative:workers=4,stack=128".
  std::string exec = "cooperative";
  /// Matching engine spec, e.g. "hashed:buckets=64" or "legacy".
  std::string match = "hashed";
};

/// Run the Modeled-fidelity convolution benchmark at one rank count,
/// averaged over reps (distinct seeds), returning section timings.
RunPoint run_convolution_point(int nranks, const ConvolutionSweepOptions& o);

struct LuleshRunOptions {
  int s = 48;           ///< per-rank edge (set from Table 7 helper)
  int steps = 1000;
  int omp_threads = 1;
  int reps = 1;
  std::uint64_t seed = 0x10113;
  minomp::Schedule schedule = minomp::Schedule::Static;
  mpisim::MachineModel machine = mpisim::MachineModel::knl();
  /// Execution backend / matching engine specs (see WorldBuilder).
  std::string exec = "cooperative";
  std::string match = "hashed";
};

/// Run the Modeled-fidelity mini-Lulesh at one (ranks, threads) point.
RunPoint run_lulesh_point(int nranks, const LuleshRunOptions& o);

/// Assemble a BoundAnalysis from a p -> RunPoint sweep for the given
/// section labels (numerator = sequential walltime of the p=1 point).
speedup::BoundAnalysis make_bound_analysis(
    const std::map<int, RunPoint>& sweep,
    const std::vector<std::string>& labels);

/// Convenience: section series (per-process time vs p or threads).
speedup::ScalingSeries section_series(const std::map<int, RunPoint>& sweep,
                                      const std::string& label);
speedup::ScalingSeries walltime_series(const std::map<int, RunPoint>& sweep);

/// Standard header every bench prints (experiment id, protocol, machine).
void print_banner(const std::string& experiment, const std::string& paper_ref,
                  const std::string& protocol);

/// Machine-readable bench results: google-benchmark-compatible JSON with an
/// mpisect provenance context (git describe, build type, machine preset,
/// seed). Every figure bench accepts `--json_out BENCH_<name>.json` and
/// funnels its sweep through one of these so CI can archive and diff runs.
///
///   BenchJson out("knl", seed);
///   out.add("fig10/threads:24", walltime, {{"bound", 8.16}});
///   out.write(args.get_string("json_out"));
class BenchJson {
 public:
  BenchJson(std::string machine, std::uint64_t seed);

  /// Record one result row. `real_time_s` lands in google-benchmark's
  /// real_time/cpu_time fields (time_unit "s"); counters become extra keys.
  void add(const std::string& name, double real_time_s,
           const std::map<std::string, double>& counters = {});

  [[nodiscard]] std::string str() const;
  /// Write to `path` ("" = no-op returning true). False + stderr on error.
  [[nodiscard]] bool write(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    double real_time = 0.0;
    std::map<std::string, double> counters;
  };
  std::string machine_;
  std::uint64_t seed_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace mpisect::bench
