// Codec acceptance bench — the .mpstz compression ratio and decode
// throughput on the two paper workloads (64-rank convolution, 64-rank
// Lulesh), plus the random-access contract: decoding a seeked virtual-time
// window must touch only that window's chunks, not the whole payload.
//
// Emits BENCH_codec.json via --json_out. In full mode the 3x ratio bar is
// enforced (nonzero exit on regression); --quick shrinks the workloads for
// smoke testing and reports without enforcing.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "codec/mpstz.hpp"
#include "common.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/session.hpp"
#include "support/cli.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace mpisect;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

trace::TraceFile record_convolution(int ranks, int steps) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0x5EED;
  const auto world_ptr =
      mpisim::Session(ranks, opts).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "bench-codec-conv"});
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  return rec->finish();
}

trace::TraceFile record_lulesh(int ranks, int steps) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::knl();
  opts.seed = 0x5EED;
  const auto world_ptr2 =
      mpisim::Session(ranks, opts).world_builder().build();
  mpisim::World& world = *world_ptr2;
  sections::SectionRuntime::install(world);
  auto rec =
      trace::TraceRecorder::install(world, {.app = "bench-codec-lulesh"});
  apps::lulesh::LuleshConfig cfg;
  cfg.steps = steps;
  cfg.s = 4;
  cfg.full_fidelity = false;
  apps::lulesh::LuleshApp app(cfg);
  world.run(std::ref(app));
  return rec->finish();
}

struct CodecPoint {
  double ratio = 0.0;
  double compress_mb_s = 0.0;
  double decode_gb_s = 0.0;       ///< flat bytes reproduced per second
  double window_byte_frac = 0.0;  ///< payload fraction a 10% window costs
};

CodecPoint measure(const trace::TraceFile& tf) {
  CodecPoint p;
  const std::vector<std::uint8_t> flat = tf.encode();

  const double t0 = now_s();
  const std::vector<std::uint8_t> packed = codec::compress(tf);
  const double t1 = now_s();
  const trace::TraceFile back = codec::decompress(packed);
  const double t2 = now_s();
  if (back.encode() != flat) {
    std::fprintf(stderr, "bench_codec: roundtrip is not bit-exact!\n");
    std::exit(1);
  }

  p.ratio = static_cast<double>(flat.size()) /
            static_cast<double>(packed.size());
  p.compress_mb_s =
      static_cast<double>(flat.size()) / 1e6 / std::max(t1 - t0, 1e-9);
  p.decode_gb_s =
      static_cast<double>(flat.size()) / 1e9 / std::max(t2 - t1, 1e-9);

  // Seek a 10% virtual-time window on rank 0: the bytes-decoded counter
  // must stay well below the full payload.
  codec::MpstzReader reader(packed);
  std::uint64_t payload = 0;
  for (const auto& c : reader.chunks()) payload += c.size;
  const double t_begin = tf.ranks.front().t0;
  const double t_end = tf.ranks.front().t_final;
  const double w0 = t_begin + 0.45 * (t_end - t_begin);
  const double w1 = t_begin + 0.55 * (t_end - t_begin);
  (void)reader.window(0, w0, w1);
  p.window_byte_frac = payload > 0 ? static_cast<double>(
                                         reader.bytes_decoded()) /
                                         static_cast<double>(payload)
                                   : 0.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("bench_codec",
                          ".mpstz compression ratio / decode throughput on "
                          "the paper workloads");
  args.add_flag("quick", "reduced run for smoke testing (bar not enforced)");
  args.add_string("json_out", "", "write BENCH_codec.json here");
  if (!args.parse(argc, argv)) return 1;
  const bool quick = args.get_flag("quick");

  bench::print_banner("codec", "sec. 4 (trace container)",
                      quick ? "quick: conv 16r/60s, lulesh 27r/4s"
                            : "conv 64r/200s, lulesh 64r/10s; 3x bar");

  struct Case {
    const char* name;
    trace::TraceFile tf;
  };
  std::vector<Case> cases;
  if (quick) {
    cases.push_back({"conv16", record_convolution(16, 60)});
    cases.push_back({"lulesh27", record_lulesh(27, 4)});
  } else {
    cases.push_back({"conv64", record_convolution(64, 200)});
    cases.push_back({"lulesh64", record_lulesh(64, 10)});
  }

  bench::BenchJson json("recorded", 0x5EED);
  bool ok = true;
  for (const Case& c : cases) {
    const CodecPoint p = measure(c.tf);
    std::printf(
        "%-10s ratio %.2fx  compress %.1f MB/s  decode %.2f GB/s  "
        "10%%-window cost %.1f%% of payload\n",
        c.name, p.ratio, p.compress_mb_s, p.decode_gb_s,
        100.0 * p.window_byte_frac);
    json.add(std::string("codec/") + c.name, 0.0,
             {{"ratio", p.ratio},
              {"compress_MBps", p.compress_mb_s},
              {"decode_GBps", p.decode_gb_s},
              {"window_byte_frac", p.window_byte_frac}});
    if (!quick && p.ratio < 3.0) {
      std::fprintf(stderr, "bench_codec: %s ratio %.2fx is below the 3x bar\n",
                   c.name, p.ratio);
      ok = false;
    }
    if (!quick && p.window_byte_frac > 0.5) {
      std::fprintf(stderr,
                   "bench_codec: %s window decode read %.0f%% of the payload "
                   "(seek is not selective)\n",
                   c.name, 100.0 * p.window_byte_frac);
      ok = false;
    }
  }
  if (!json.write(args.get_string("json_out"))) return 1;
  return ok ? 0 : 1;
}
