// Figure 9 — "Lulesh MPI Sections on an Intel KNL in various MPI+OpenMP
// configurations" (68 cores x 4 hyper-threads), same Table 7 strong-scaling
// protocol as Fig. 8, with a wider thread sweep (up to 256).
//
// Shape criteria from the paper: results comparable to Broadwell with
// LagrangeElements providing most of the OpenMP acceleration, BUT
// (1) OpenMP overhead grows more rapidly than on Broadwell, and
// (2) at p = 27 and p = 64, adding OpenMP threads provides no acceleration
//     and on the contrary tends to slow the code down.
#include <cstdio>

#include "common.hpp"
#include "lulesh_grid.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace mpisect;
  using namespace mpisect::bench;
  support::ArgParser args("bench_fig9_lulesh_knl",
                          "Reproduce paper Fig. 9 (Lulesh on Intel KNL)");
  args.add_int("steps", 300, "timesteps per configuration");
  args.add_int("elements", 110592, "total element count (Table 7)");
  args.add_flag("quick", "reduced sweep for smoke testing");
  if (!args.parse(argc, argv)) return 1;
  int steps = static_cast<int>(args.get_int("steps"));
  std::vector<int> ps{1, 8, 27, 64};
  std::vector<int> threads{1, 2, 4, 8, 16, 32, 64, 128, 256};
  if (args.get_flag("quick")) {
    steps = 50;
    ps = {1, 27};
    threads = {1, 8, 64};
  }

  print_banner("Fig. 9 — Lulesh MPI Sections, Intel KNL (68 cores x 4 HT)",
               "Besnard et al., ICPPW'17, Figure 9",
               "strong scaling at " + std::to_string(args.get_int("elements")) +
                   " elements, " + std::to_string(steps) + " steps");

  run_lulesh_grid(mpisim::MachineModel::knl(), ps, threads, steps,
                  args.get_int("elements"));

  std::printf(
      "\nshape criteria (paper Sec. 5.2): (1) OpenMP overhead rises faster\n"
      "than on Broadwell; (2) at p=27 and p=64 threads give no speedup and\n"
      "eventually a slowdown; (3) the same code behaves differently on the\n"
      "two machines — the paper's argument for measuring, not guessing.\n");
  return 0;
}
