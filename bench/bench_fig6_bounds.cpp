// Figure 6 — "Inferred partial Speedup boundaries from ghost-cell exchange
// time (HALO section) on the convolution benchmark": the table of
// (#Processes, Tot. HALO Time, Speedup Bound B) at p in {64, 80, 112, 128,
// 144}, where B(p) = T_seq / (HALO_total(p) / p) per Equation 6.
//
// The paper's own numbers wobble non-monotonically (3025 s at 64 procs,
// 14135 s at 128) because the HALO section is dominated by propagated noise
// — the same wobble emerges here from the seeded heavy-tail jitter.
#include <cstdio>
#include <map>

#include "common.hpp"
#include "core/speedup/report.hpp"
#include "support/cli.hpp"
#include "support/histogram.hpp"
#include "support/strings.hpp"

namespace {
using namespace mpisect;
using namespace mpisect::bench;
}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("bench_fig6_bounds",
                          "Reproduce paper Fig. 6 HALO bound table");
  args.add_int("steps", 1000, "convolution time-steps");
  args.add_int("reps", 3, "averaged repetitions");
  args.add_flag("quick", "reduced sweep for smoke testing");
  args.add_flag("spread", "also show per-seed spread of B at one scale");
  if (!args.parse(argc, argv)) return 1;

  ConvolutionSweepOptions o;
  o.steps = static_cast<int>(args.get_int("steps"));
  o.reps = static_cast<int>(args.get_int("reps"));
  std::vector<int> ps{64, 80, 112, 128, 144};
  if (args.get_flag("quick")) {
    o.steps = 50;
    o.reps = 1;
    ps = {8, 16, 24};
  }

  print_banner("Fig. 6 — partial speedup bounds from the HALO section",
               "Besnard et al., ICPPW'17, Figure 6",
               "B(p) = T_seq / (HALO_total(p)/p), Eq. 6; " +
                   std::to_string(o.steps) + " steps, " +
                   std::to_string(o.reps) + " reps");

  std::map<int, RunPoint> sweep;
  std::printf("  running sequential reference ...\n");
  std::fflush(stdout);
  sweep[1] = run_convolution_point(1, o);
  for (const int p : ps) {
    std::printf("  running p=%d ...\n", p);
    std::fflush(stdout);
    sweep[p] = run_convolution_point(p, o);
  }
  std::printf("  T_seq (total sequential section time) = %.2f s\n\n",
              sweep[1].walltime);

  auto analysis = make_bound_analysis(sweep, {"HALO"});
  std::fputs(
      speedup::render_bound_table(analysis, "HALO", ps).c_str(), stdout);

  if (args.get_flag("spread")) {
    // Per-seed spread of the bound at p = 112 (or the middle quick point):
    // the analogue of the paper's wild non-monotone Fig. 6 wobble.
    const int p_spread = args.get_flag("quick") ? ps[ps.size() / 2] : 112;
    std::printf("\nper-seed spread of B(%d) over 12 seeds:\n", p_spread);
    std::vector<double> bounds;
    for (int seed = 0; seed < 12; ++seed) {
      ConvolutionSweepOptions so = o;
      so.reps = 1;
      so.seed = 0xF16u + static_cast<std::uint64_t>(seed) * 7919u;
      const auto pt = run_convolution_point(p_spread, so);
      const auto it = pt.per_process.find("HALO");
      if (it != pt.per_process.end() && it->second > 0.0) {
        bounds.push_back(sweep[1].walltime / it->second);
      }
    }
    std::fputs(support::Histogram::from_samples(bounds, 6).render().c_str(),
               stdout);
  }

  std::printf(
      "\npaper reference values (their cluster):\n"
      "  64 -> 3025.44 s total, B = 118.25;  112 -> 1822.38, B = 343.54;\n"
      "  128 -> 14135.56, B = 50.61 (their single-config values wobble\n"
      "  wildly; averaging over reps smooths ours — rerun with --reps 1 to\n"
      "  see per-seed spread).\n"
      "Shape criteria: total HALO time grows with p while per-process\n"
      "compute shrinks; B values are O(10^1..10^2) and each bound exceeds\n"
      "the measured speedup at its own scale (cross-checked in Fig. 5(d)).\n");
  return 0;
}
