// Ablation — network jitter (DESIGN.md decision 1/2): rerun the Fig. 5/6
// convolution points with the Nehalem model's noise switched off, showing
// that the paper's observations (HALO growth with p, noisy non-monotone
// bounds, speedup saturation) are *produced by propagated jitter*, not by
// the deterministic latency/bandwidth terms.
#include <cstdio>
#include <map>

#include "common.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mpisect;
  using namespace mpisect::bench;
  support::ArgParser args("bench_ablation_jitter",
                          "Effect of the jitter model on Fig. 5/6 shapes");
  args.add_int("steps", 1000, "convolution steps");
  args.add_flag("quick", "reduced sweep");
  if (!args.parse(argc, argv)) return 1;
  const bool quick = args.get_flag("quick");
  const int steps = quick ? 100 : static_cast<int>(args.get_int("steps"));
  const std::vector<int> ps = quick ? std::vector<int>{1, 16, 64}
                                    : std::vector<int>{1, 16, 64, 128, 256};

  print_banner("Ablation — propagated network jitter on/off",
               "DESIGN.md decision: jitter as the source of Fig. 5/6 noise",
               std::to_string(steps) + " steps, Nehalem model");

  for (const bool jitter_on : {true, false}) {
    ConvolutionSweepOptions o;
    o.steps = steps;
    o.reps = 1;
    o.machine = mpisim::MachineModel::nehalem_cluster();
    if (!jitter_on) {
      o.machine.net.jitter = mpisim::JitterModel{};
      o.machine.compute_noise_sigma = 0.0;
    }
    std::map<int, RunPoint> sweep;
    for (const int p : ps) sweep[p] = run_convolution_point(p, o);
    const double t_seq = sweep[1].walltime;

    std::printf("\njitter %s:\n", jitter_on ? "ON (calibrated)" : "OFF");
    support::TextTable table;
    table.set_header({"#procs", "HALO total (s)", "HALO/proc (s)",
                      "walltime (s)", "speedup"});
    for (const int p : ps) {
      table.add_row({std::to_string(p),
                     support::fmt_double(sweep[p].total.at("HALO"), 2),
                     support::fmt_double(sweep[p].per_process.at("HALO"), 3),
                     support::fmt_double(sweep[p].walltime, 2),
                     support::fmt_double(t_seq / sweep[p].walltime, 1)});
    }
    std::fputs(table.render().c_str(), stdout);
  }

  std::printf(
      "\nreading: with jitter OFF the HALO cost is the pure wire time\n"
      "(microseconds/step — 1D halos have constant size, as the paper\n"
      "notes), and speedup keeps climbing; with jitter ON the HALO section\n"
      "absorbs propagated noise, grows with p and caps the speedup — the\n"
      "effect the paper measures on its cluster.\n");
  return 0;
}
