// Self-observability overhead and scaling — the span tracer's always-on
// contract, measured:
//
//   * overhead: running the 64-rank convolution with self-tracing enabled
//     (spans recorded, scheduler busy/idle timing armed) must leave every
//     rank's final virtual time bit-identical to the disabled run and cost
//     < 2% extra CPU on the full-fidelity workload. Bit-identity failures
//     and (unless --no-enforce) overhead above the bar exit nonzero.
//     Emits BENCH_obs.json.
//   * scale: how many simulated ranks the scheduler hosts per wall-clock
//     second, and the exact channel bytes/rank high-water mark, as p grows
//     64 -> 4096 (strong scaling: fixed 4096-row grid split ever thinner).
//     Emits BENCH_scale.json; CI floors the p=256 ranks/s against a
//     committed baseline.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "common.hpp"
#include "core/sections/runtime.hpp"
#include "obs/counters.hpp"
#include "obs/memory.hpp"
#include "obs/spans.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

namespace {

using namespace mpisect;

struct Workload {
  int width = 0;
  int height = 0;
  int steps = 0;
  bool full_fidelity = false;
};

struct Measurement {
  double wall_s = 0.0;
  double cpu_s = 0.0;
  double virtual_s = 0.0;
  std::vector<double> final_times;
  double bytes_per_rank = 0.0;
  std::uint64_t spans = 0;
};

Measurement run_once(int nranks, const Workload& w, std::uint64_t seed,
                     bool traced) {
  obs::set_enabled_for_test(traced);
  if (traced) obs::reset_spans_for_test();
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = seed;
  mpisim::World world(nranks, opts);
  sections::SectionRuntime::install(world);
  apps::conv::ConvolutionConfig cfg;
  cfg.width = w.width;
  cfg.height = w.height;
  cfg.steps = w.steps;
  cfg.full_fidelity = w.full_fidelity;
  apps::conv::ConvolutionApp app(cfg);
  timespec c0{}, c1{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c0);
  const auto t0 = std::chrono::steady_clock::now();
  world.run(std::ref(app));
  const auto t1 = std::chrono::steady_clock::now();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c1);
  Measurement m;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.cpu_s = static_cast<double>(c1.tv_sec - c0.tv_sec) +
            static_cast<double>(c1.tv_nsec - c0.tv_nsec) * 1e-9;
  m.virtual_s = world.elapsed();
  m.final_times = world.final_times();
  m.bytes_per_rank = world.mem_account().bytes_per_rank();
  m.spans = obs::spans_recorded();
  obs::set_enabled_for_test(false);
  return m;
}

/// Best-of-N by CPU time; verifies bit-identity of virtual time every rep.
bool measure(int nranks, const Workload& w, std::uint64_t seed, int reps,
             Measurement& off, Measurement& on) {
  for (int rep = 0; rep < reps; ++rep) {
    Measurement a = run_once(nranks, w, seed, /*traced=*/false);
    Measurement b = run_once(nranks, w, seed, /*traced=*/true);
    if (rep == 0 || a.cpu_s < off.cpu_s) off = a;
    if (rep == 0 || b.cpu_s < on.cpu_s) on = b;
    if (a.final_times != b.final_times) {
      std::fprintf(stderr,
                   "FAIL: self-trace perturbed virtual time (rep %d): "
                   "makespan off=%.17g on=%.17g\n",
                   rep, a.virtual_s, b.virtual_s);
      return false;
    }
  }
  return true;
}

double overhead_pct(const Measurement& off, const Measurement& on) {
  return off.cpu_s > 0.0 ? (on.cpu_s - off.cpu_s) / off.cpu_s * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpisect::bench;
  support::ArgParser args(
      "bench_obs",
      "Measure the self-observability layer: span-tracer overhead at 64 "
      "ranks (bit-identity enforced) and ranks/s + bytes/rank scaling "
      "curves to 4096 ranks");
  args.add_int("ranks", 64, "MPI ranks for the overhead measurement");
  args.add_int("steps", 200, "modeled-fidelity convolution time-steps");
  args.add_int("full-steps", 30, "full-fidelity time-steps");
  args.add_int("full-size", 768, "full-fidelity image edge (square)");
  args.add_int("reps", 3, "repetitions (best CPU time is reported)");
  args.add_string("scale-ranks", "64,256,1024,4096",
                  "comma list of rank counts for the scaling curve");
  args.add_int("scale-steps", 10, "time-steps per scaling point");
  args.add_flag("quick", "reduced run for smoke testing");
  args.add_flag("no-enforce",
                "report the overhead bar without failing on it "
                "(bit-identity always enforced)");
  args.add_string("json_out", "", "write BENCH_obs.json here");
  args.add_string("scale_out", "", "write BENCH_scale.json here");
  if (!args.parse(argc, argv)) return 1;

  const int nranks = static_cast<int>(args.get_int("ranks"));
  Workload modeled{5616, 3744, static_cast<int>(args.get_int("steps")),
                   false};
  const int edge = static_cast<int>(args.get_int("full-size"));
  Workload full{edge, edge, static_cast<int>(args.get_int("full-steps")),
                true};
  int reps = static_cast<int>(args.get_int("reps"));
  int scale_steps = static_cast<int>(args.get_int("scale-steps"));
  std::vector<int> scale_ranks;
  for (const auto& tok : support::split(args.get_string("scale-ranks"), ',')) {
    const int p = std::atoi(tok.c_str());
    if (p > 0) scale_ranks.push_back(p);
  }
  if (args.get_flag("quick")) {
    modeled.steps = 20;
    full.steps = 4;
    full.width = full.height = 256;
    reps = 1;
    scale_steps = 2;
    scale_ranks = {64, 256};
  }
  const std::uint64_t seed = 0xC0FFEE;

  print_banner("Self-observability overhead & scaling",
               "observing the simulator must not change the simulation",
               std::to_string(nranks) + " ranks overhead, best of " +
                   std::to_string(reps) + "; scale to " +
                   std::to_string(scale_ranks.empty()
                                      ? 0
                                      : scale_ranks.back()) +
                   " ranks");

  // ---- overhead: full fidelity is the acceptance number -------------------
  Measurement full_off, full_on;
  if (!measure(nranks, full, seed, reps, full_off, full_on)) return 1;
  const double full_oh = overhead_pct(full_off, full_on);
  std::printf("\nfull fidelity (%dx%d, %d steps — real stencil work):\n",
              full.width, full.height, full.steps);
  std::printf("  tracing off: %9.3f ms cpu (%8.3f ms wall)\n",
              full_off.cpu_s * 1e3, full_off.wall_s * 1e3);
  std::printf("  tracing on:  %9.3f ms cpu (%8.3f ms wall, %llu spans)\n",
              full_on.cpu_s * 1e3, full_on.wall_s * 1e3,
              static_cast<unsigned long long>(full_on.spans));
  const bool bar_ok = full_oh < 2.0;
  std::printf("  overhead:    %+.2f%% cpu (target < 2%%)  %s\n", full_oh,
              bar_ok ? "PASS" : "ABOVE TARGET");

  Measurement mod_off, mod_on;
  if (!measure(nranks, modeled, seed, reps, mod_off, mod_on)) return 1;
  std::printf("\nmodeled fidelity (%dx%d, %d steps — hollow baseline, "
              "diagnostic only):\n",
              modeled.width, modeled.height, modeled.steps);
  std::printf("  tracing off: %9.3f ms cpu\n", mod_off.cpu_s * 1e3);
  std::printf("  tracing on:  %9.3f ms cpu (%+.2f%%, %llu spans)\n",
              mod_on.cpu_s * 1e3, overhead_pct(mod_off, mod_on),
              static_cast<unsigned long long>(mod_on.spans));
  std::printf("\nperturbation: none — per-rank virtual times bit-identical "
              "in both modes\n");

  BenchJson json("nehalem-cluster", seed);
  json.add("obs/full_fidelity/tracing_off", full_off.wall_s,
           {{"cpu_time_s", full_off.cpu_s},
            {"virtual_makespan_s", full_off.virtual_s}});
  json.add("obs/full_fidelity/tracing_on", full_on.wall_s,
           {{"cpu_time_s", full_on.cpu_s},
            {"virtual_makespan_s", full_on.virtual_s},
            {"spans", static_cast<double>(full_on.spans)},
            {"overhead_pct", full_oh}});
  json.add("obs/modeled/tracing_off", mod_off.wall_s,
           {{"cpu_time_s", mod_off.cpu_s}});
  json.add("obs/modeled/tracing_on", mod_on.wall_s,
           {{"cpu_time_s", mod_on.cpu_s},
            {"spans", static_cast<double>(mod_on.spans)},
            {"overhead_pct", overhead_pct(mod_off, mod_on)}});
  if (!json.write(args.get_string("json_out"))) return 1;

  // ---- scaling curve: ranks/s and bytes/rank vs p -------------------------
  // One fixed 4096-row grid split across ever more ranks (strong scaling;
  // RowDecomposition requires nranks <= height). Tracing stays on: the
  // curve is the cost of the observed simulator, the thing CI floors.
  std::printf("\nscaling (256x4096 grid, %d steps, tracing on):\n",
              scale_steps);
  std::printf("  %6s %12s %14s %12s\n", "p", "wall ms", "ranks/s",
              "bytes/rank");
  BenchJson scale_json("nehalem-cluster", seed);
  for (const int p : scale_ranks) {
    const Workload w{256, 4096, scale_steps, false};
    const Measurement m = run_once(p, w, seed, /*traced=*/true);
    const double ranks_per_s =
        m.wall_s > 0.0 ? static_cast<double>(p) / m.wall_s : 0.0;
    std::printf("  %6d %12.3f %14.0f %12.0f\n", p, m.wall_s * 1e3,
                ranks_per_s, m.bytes_per_rank);
    scale_json.add("obs/scale/p:" + std::to_string(p), m.wall_s,
                   {{"ranks", static_cast<double>(p)},
                    {"ranks_per_s", ranks_per_s},
                    {"bytes_per_rank", m.bytes_per_rank},
                    {"virtual_makespan_s", m.virtual_s},
                    {"spans", static_cast<double>(m.spans)}});
  }
  if (!scale_json.write(args.get_string("scale_out"))) return 1;

  if (!bar_ok && !args.get_flag("no-enforce")) {
    std::fprintf(stderr,
                 "FAIL: self-trace overhead %.2f%% exceeds the 2%% bar\n",
                 full_oh);
    return 1;
  }
  return 0;
}
