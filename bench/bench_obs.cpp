// Self-observability overhead and scaling — the span tracer's always-on
// contract, measured:
//
//   * overhead: running the 64-rank convolution with self-tracing enabled
//     (spans recorded, scheduler busy/idle timing armed) must leave every
//     rank's final virtual time bit-identical to the disabled run and cost
//     < 2% extra CPU on the full-fidelity workload. Bit-identity failures
//     and (unless --no-enforce) overhead above the bar exit nonzero.
//     Emits BENCH_obs.json.
//   * scale: how many simulated ranks the scheduler hosts per wall-clock
//     second, and the exact channel bytes/rank high-water mark, as p grows
//     64 -> 4096 and beyond (strong scaling: the grid is 256 x max(4096,p)
//     rows so the row decomposition stays valid up to 65,536 ranks).
//     Emits BENCH_scale.json; CI floors the p=256 ranks/s against a
//     committed baseline.
//   * init: Session/WorldBuilder construction time vs the deprecated eager
//     World(nranks, options) constructor, 1k -> 65k ranks. Lazy
//     construction is O(1) per unstarted rank; the curve proves it.
//   * matching: hashed vs legacy engine on the adversarial funnel (rank 0
//     posts p-1 descending-source receives, every other rank sends one
//     message), where the legacy scan is O(p^2). Virtual times must be
//     bit-identical between engines; at p >= 16384 the hashed engine must
//     be >= 2x faster (enforced unless --no-enforce).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "common.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/session.hpp"
#include "obs/counters.hpp"
#include "obs/memory.hpp"
#include "obs/spans.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

namespace {

using namespace mpisect;

struct Workload {
  int width = 0;
  int height = 0;
  int steps = 0;
  bool full_fidelity = false;
};

struct Measurement {
  double wall_s = 0.0;
  double cpu_s = 0.0;
  double virtual_s = 0.0;
  std::vector<double> final_times;
  double bytes_per_rank = 0.0;
  std::uint64_t spans = 0;
};

Measurement run_once(int nranks, const Workload& w, std::uint64_t seed,
                     bool traced) {
  obs::set_enabled_for_test(traced);
  if (traced) obs::reset_spans_for_test();
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = seed;
  const auto world_ptr =
      mpisim::Session(nranks, opts).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  apps::conv::ConvolutionConfig cfg;
  cfg.width = w.width;
  cfg.height = w.height;
  cfg.steps = w.steps;
  cfg.full_fidelity = w.full_fidelity;
  apps::conv::ConvolutionApp app(cfg);
  timespec c0{}, c1{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c0);
  const auto t0 = std::chrono::steady_clock::now();
  world.run(std::ref(app));
  const auto t1 = std::chrono::steady_clock::now();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c1);
  Measurement m;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.cpu_s = static_cast<double>(c1.tv_sec - c0.tv_sec) +
            static_cast<double>(c1.tv_nsec - c0.tv_nsec) * 1e-9;
  m.virtual_s = world.elapsed();
  m.final_times = world.final_times();
  m.bytes_per_rank = world.mem_account().bytes_per_rank();
  m.spans = obs::spans_recorded();
  obs::set_enabled_for_test(false);
  return m;
}

/// Best-of-N by CPU time; verifies bit-identity of virtual time every rep.
bool measure(int nranks, const Workload& w, std::uint64_t seed, int reps,
             Measurement& off, Measurement& on) {
  for (int rep = 0; rep < reps; ++rep) {
    Measurement a = run_once(nranks, w, seed, /*traced=*/false);
    Measurement b = run_once(nranks, w, seed, /*traced=*/true);
    if (rep == 0 || a.cpu_s < off.cpu_s) off = a;
    if (rep == 0 || b.cpu_s < on.cpu_s) on = b;
    if (a.final_times != b.final_times) {
      std::fprintf(stderr,
                   "FAIL: self-trace perturbed virtual time (rep %d): "
                   "makespan off=%.17g on=%.17g\n",
                   rep, a.virtual_s, b.virtual_s);
      return false;
    }
  }
  return true;
}

double overhead_pct(const Measurement& off, const Measurement& on) {
  return off.cpu_s > 0.0 ? (on.cpu_s - off.cpu_s) / off.cpu_s * 100.0 : 0.0;
}

double now_wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Adversarial matching funnel: rank 0 posts p-1 explicit-source receives
/// in DESCENDING source order, then every other rank sends one eager
/// message. Deposits arrive in ascending source order (cooperative
/// scheduling), so the legacy engine scans past every not-yet-matched
/// posted receive on each deposit — Theta(p^2) compares — while the hashed
/// engine finds the (src,tag) lane head in O(1).
void funnel_body(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  const int p = world.size();
  static const char payload[8] = {};
  if (world.rank() == 0) {
    std::vector<char> bufs(static_cast<std::size_t>(p - 1) * 8);
    std::vector<mpisim::Comm::Request> reqs;
    reqs.reserve(static_cast<std::size_t>(p - 1));
    for (int src = p - 1; src >= 1; --src) {
      reqs.push_back(
          world.irecv(&bufs[static_cast<std::size_t>(src - 1) * 8], 8, src,
                      /*tag=*/7));
    }
    mpisim::waitall(reqs);
  } else {
    world.send(payload, sizeof payload, 0, /*tag=*/7);
  }
}

struct FunnelResult {
  double wall_s = 0.0;
  std::vector<double> final_times;
};

FunnelResult funnel_once(int p, const std::string& match) {
  const auto world_ptr = mpisim::Session(p)
                             .world_builder()
                             .machine(mpisim::MachineModel::nehalem_cluster())
                             .seed(0xC0FFEE)
                             .match_spec(match)
                             .build();
  mpisim::World& world = *world_ptr;
  FunnelResult r;
  const double t0 = now_wall_s();
  world.run(funnel_body);
  r.wall_s = now_wall_s() - t0;
  r.final_times = world.final_times();
  return r;
}

/// Construction-only timings (no run): the Sessions-style lazy path vs the
/// deprecated eager constructor, same options.
double init_lazy_s(int p) {
  const double t0 = now_wall_s();
  const auto world_ptr =
      mpisim::Session(p)
          .world_builder()
          .machine(mpisim::MachineModel::nehalem_cluster())
          .build();
  return now_wall_s() - t0;
}

double init_eager_s(int p) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  const double t0 = now_wall_s();
  mpisim::World world(p, opts);
  return now_wall_s() - t0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpisect::bench;
  support::ArgParser args(
      "bench_obs",
      "Measure the self-observability layer: span-tracer overhead at 64 "
      "ranks (bit-identity enforced) and ranks/s + bytes/rank scaling "
      "curves to 4096 ranks");
  args.add_int("ranks", 64, "MPI ranks for the overhead measurement");
  args.add_int("steps", 200, "modeled-fidelity convolution time-steps");
  args.add_int("full-steps", 30, "full-fidelity time-steps");
  args.add_int("full-size", 768, "full-fidelity image edge (square)");
  args.add_int("reps", 3, "repetitions (best CPU time is reported)");
  args.add_string("scale-ranks", "64,256,1024,4096",
                  "comma list of rank counts for the scaling curve "
                  "(up to 65536)");
  args.add_int("scale-steps", 10, "time-steps per scaling point");
  args.add_string("init-ranks", "1024,4096,16384,65536",
                  "comma list of rank counts for the Session-init curve");
  args.add_int("funnel-ranks", 16384,
               "rank count for the hashed-vs-legacy matching funnel "
               "(0 = skip)");
  args.add_flag("quick", "reduced run for smoke testing");
  args.add_flag("no-enforce",
                "report the overhead bar without failing on it "
                "(bit-identity always enforced)");
  args.add_string("json_out", "", "write BENCH_obs.json here");
  args.add_string("scale_out", "", "write BENCH_scale.json here");
  if (!args.parse(argc, argv)) return 1;

  const int nranks = static_cast<int>(args.get_int("ranks"));
  Workload modeled{5616, 3744, static_cast<int>(args.get_int("steps")),
                   false};
  const int edge = static_cast<int>(args.get_int("full-size"));
  Workload full{edge, edge, static_cast<int>(args.get_int("full-steps")),
                true};
  int reps = static_cast<int>(args.get_int("reps"));
  int scale_steps = static_cast<int>(args.get_int("scale-steps"));
  std::vector<int> scale_ranks;
  for (const auto& tok : support::split(args.get_string("scale-ranks"), ',')) {
    const int p = std::atoi(tok.c_str());
    if (p > 0) scale_ranks.push_back(p);
  }
  std::vector<int> init_ranks;
  for (const auto& tok : support::split(args.get_string("init-ranks"), ',')) {
    const int p = std::atoi(tok.c_str());
    if (p > 0) init_ranks.push_back(p);
  }
  int funnel_ranks = static_cast<int>(args.get_int("funnel-ranks"));
  if (args.get_flag("quick")) {
    modeled.steps = 20;
    full.steps = 4;
    full.width = full.height = 256;
    reps = 1;
    scale_steps = 2;
    scale_ranks = {64, 256};
    init_ranks = {1024, 4096};
    funnel_ranks = std::min(funnel_ranks, 1024);
  }
  const std::uint64_t seed = 0xC0FFEE;

  print_banner("Self-observability overhead & scaling",
               "observing the simulator must not change the simulation",
               std::to_string(nranks) + " ranks overhead, best of " +
                   std::to_string(reps) + "; scale to " +
                   std::to_string(scale_ranks.empty()
                                      ? 0
                                      : scale_ranks.back()) +
                   " ranks");

  // ---- overhead: full fidelity is the acceptance number -------------------
  Measurement full_off, full_on;
  if (!measure(nranks, full, seed, reps, full_off, full_on)) return 1;
  const double full_oh = overhead_pct(full_off, full_on);
  std::printf("\nfull fidelity (%dx%d, %d steps — real stencil work):\n",
              full.width, full.height, full.steps);
  std::printf("  tracing off: %9.3f ms cpu (%8.3f ms wall)\n",
              full_off.cpu_s * 1e3, full_off.wall_s * 1e3);
  std::printf("  tracing on:  %9.3f ms cpu (%8.3f ms wall, %llu spans)\n",
              full_on.cpu_s * 1e3, full_on.wall_s * 1e3,
              static_cast<unsigned long long>(full_on.spans));
  const bool bar_ok = full_oh < 2.0;
  std::printf("  overhead:    %+.2f%% cpu (target < 2%%)  %s\n", full_oh,
              bar_ok ? "PASS" : "ABOVE TARGET");

  Measurement mod_off, mod_on;
  if (!measure(nranks, modeled, seed, reps, mod_off, mod_on)) return 1;
  std::printf("\nmodeled fidelity (%dx%d, %d steps — hollow baseline, "
              "diagnostic only):\n",
              modeled.width, modeled.height, modeled.steps);
  std::printf("  tracing off: %9.3f ms cpu\n", mod_off.cpu_s * 1e3);
  std::printf("  tracing on:  %9.3f ms cpu (%+.2f%%, %llu spans)\n",
              mod_on.cpu_s * 1e3, overhead_pct(mod_off, mod_on),
              static_cast<unsigned long long>(mod_on.spans));
  std::printf("\nperturbation: none — per-rank virtual times bit-identical "
              "in both modes\n");

  BenchJson json("nehalem-cluster", seed);
  json.add("obs/full_fidelity/tracing_off", full_off.wall_s,
           {{"cpu_time_s", full_off.cpu_s},
            {"virtual_makespan_s", full_off.virtual_s}});
  json.add("obs/full_fidelity/tracing_on", full_on.wall_s,
           {{"cpu_time_s", full_on.cpu_s},
            {"virtual_makespan_s", full_on.virtual_s},
            {"spans", static_cast<double>(full_on.spans)},
            {"overhead_pct", full_oh}});
  json.add("obs/modeled/tracing_off", mod_off.wall_s,
           {{"cpu_time_s", mod_off.cpu_s}});
  json.add("obs/modeled/tracing_on", mod_on.wall_s,
           {{"cpu_time_s", mod_on.cpu_s},
            {"spans", static_cast<double>(mod_on.spans)},
            {"overhead_pct", overhead_pct(mod_off, mod_on)}});
  if (!json.write(args.get_string("json_out"))) return 1;

  // ---- scaling curve: ranks/s and bytes/rank vs p -------------------------
  // One fixed 4096-row grid split across ever more ranks (strong scaling;
  // RowDecomposition requires nranks <= height). Tracing stays on: the
  // curve is the cost of the observed simulator, the thing CI floors.
  std::printf("\nscaling (256 x max(4096,p) grid, %d steps, tracing on):\n",
              scale_steps);
  std::printf("  %6s %12s %14s %12s\n", "p", "wall ms", "ranks/s",
              "bytes/rank");
  BenchJson scale_json("nehalem-cluster", seed);
  for (const int p : scale_ranks) {
    const Workload w{256, std::max(4096, p), scale_steps, false};
    const Measurement m = run_once(p, w, seed, /*traced=*/true);
    const double ranks_per_s =
        m.wall_s > 0.0 ? static_cast<double>(p) / m.wall_s : 0.0;
    std::printf("  %6d %12.3f %14.0f %12.0f\n", p, m.wall_s * 1e3,
                ranks_per_s, m.bytes_per_rank);
    scale_json.add("obs/scale/p:" + std::to_string(p), m.wall_s,
                   {{"ranks", static_cast<double>(p)},
                    {"ranks_per_s", ranks_per_s},
                    {"bytes_per_rank", m.bytes_per_rank},
                    {"virtual_makespan_s", m.virtual_s},
                    {"spans", static_cast<double>(m.spans)}});
  }

  // ---- Session init: lazy WorldBuilder vs deprecated eager ctor ----------
  std::printf("\nworld construction (no run — ctor cost only):\n");
  std::printf("  %6s %14s %14s %8s\n", "p", "lazy ms", "eager ms", "ratio");
  for (const int p : init_ranks) {
    const double lazy_s = init_lazy_s(p);
    const double eager_s = init_eager_s(p);
    const double ratio = lazy_s > 0.0 ? eager_s / lazy_s : 0.0;
    std::printf("  %6d %14.3f %14.3f %7.1fx\n", p, lazy_s * 1e3,
                eager_s * 1e3, ratio);
    scale_json.add("obs/init/p:" + std::to_string(p), lazy_s,
                   {{"ranks", static_cast<double>(p)},
                    {"init_lazy_s", lazy_s},
                    {"init_eager_s", eager_s},
                    {"eager_over_lazy", ratio}});
  }

  // ---- matching engines: hashed vs legacy on the O(p^2) funnel -----------
  bool match_ok = true;
  if (funnel_ranks > 1) {
    const FunnelResult hashed = funnel_once(funnel_ranks, "hashed");
    const FunnelResult legacy = funnel_once(funnel_ranks, "legacy");
    if (hashed.final_times != legacy.final_times) {
      std::fprintf(stderr,
                   "FAIL: hashed and legacy matching disagree on virtual "
                   "time at p=%d\n",
                   funnel_ranks);
      return 1;
    }
    const double speedup =
        hashed.wall_s > 0.0 ? legacy.wall_s / hashed.wall_s : 0.0;
    const double hashed_rps =
        hashed.wall_s > 0.0 ? funnel_ranks / hashed.wall_s : 0.0;
    const double legacy_rps =
        legacy.wall_s > 0.0 ? funnel_ranks / legacy.wall_s : 0.0;
    std::printf("\nmatching funnel (p=%d, %d descending-source receives):\n",
                funnel_ranks, funnel_ranks - 1);
    std::printf("  hashed: %9.3f ms (%12.0f ranks/s)\n", hashed.wall_s * 1e3,
                hashed_rps);
    std::printf("  legacy: %9.3f ms (%12.0f ranks/s)\n", legacy.wall_s * 1e3,
                legacy_rps);
    match_ok = funnel_ranks < 16384 || speedup >= 2.0;
    std::printf("  hashed speedup: %.1fx%s  %s\n", speedup,
                funnel_ranks >= 16384 ? " (target >= 2x)" : "",
                match_ok ? "PASS" : "BELOW TARGET");
    std::printf("  virtual times bit-identical across engines\n");
    scale_json.add("obs/funnel/p:" + std::to_string(funnel_ranks),
                   hashed.wall_s,
                   {{"ranks", static_cast<double>(funnel_ranks)},
                    {"legacy_time_s", legacy.wall_s},
                    {"hashed_ranks_per_s", hashed_rps},
                    {"legacy_ranks_per_s", legacy_rps},
                    {"hashed_speedup", speedup}});
  }
  if (!scale_json.write(args.get_string("scale_out"))) return 1;

  if (!match_ok && !args.get_flag("no-enforce")) {
    std::fprintf(stderr,
                 "FAIL: hashed matching below the 2x funnel bar at p=%d\n",
                 funnel_ranks);
    return 1;
  }
  if (!bar_ok && !args.get_flag("no-enforce")) {
    std::fprintf(stderr,
                 "FAIL: self-trace overhead %.2f%% exceeds the 2%% bar\n",
                 full_oh);
    return 1;
  }
  return 0;
}
