// Figure 8 — "Lulesh MPI Sections on a dual Broadwell machine in various
// MPI+OpenMP configurations": average per-process time of the
// LagrangeNodal / LagrangeElements sections and the walltime, for
// p in {1, 8, 27} MPI processes crossed with OpenMP team sizes, at the
// constant 110 592-element strong-scaling problem of Table 7.
//
// Shape criteria from the paper: MPI provides more acceleration than
// OpenMP in this strong-scaling setup; OpenMP still helps when the
// per-rank problem is large (p = 1); LagrangeElements scales better under
// OpenMP than LagrangeNodal.
#include <cstdio>

#include "common.hpp"
#include "lulesh_grid.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace mpisect;
  using namespace mpisect::bench;
  support::ArgParser args("bench_fig8_lulesh_broadwell",
                          "Reproduce paper Fig. 8 (Lulesh on dual Broadwell)");
  args.add_int("steps", 300, "timesteps per configuration");
  args.add_int("elements", 110592, "total element count (Table 7)");
  args.add_flag("quick", "reduced sweep for smoke testing");
  if (!args.parse(argc, argv)) return 1;
  int steps = static_cast<int>(args.get_int("steps"));
  std::vector<int> ps{1, 8, 27};
  std::vector<int> threads{1, 2, 4, 8, 16, 32, 64};
  if (args.get_flag("quick")) {
    steps = 50;
    ps = {1, 8};
    threads = {1, 4, 16};
  }

  print_banner(
      "Fig. 8 — Lulesh MPI Sections, dual Broadwell (2 x 18 cores, 2 HT)",
      "Besnard et al., ICPPW'17, Figure 8",
      "strong scaling at " + std::to_string(args.get_int("elements")) +
          " elements, " + std::to_string(steps) + " steps");

  run_lulesh_grid(mpisim::MachineModel::broadwell_2s(), ps, threads, steps,
                  args.get_int("elements"));

  std::printf(
      "\nshape criteria (paper Sec. 5.2): (1) p=8,t=1 beats p=1,t=8 — MPI\n"
      "accelerates more than OpenMP in strong scaling; (2) OpenMP keeps\n"
      "helping at p=1 (large per-rank problem); (3) LagrangeElements\n"
      "benefits more from threads than LagrangeNodal.\n");
  return 0;
}
