// Figure 10 — "Lulesh Walltime and Speedup for pure OpenMP scalability on a
// KNL (s=48)": the single-process thread sweep in which the Lagrangian
// sections first shrink, reach their minimum at the *inflexion point*
// (paper: 24 threads), then grow — and the partial speedup bound computed
// from the two Lagrange sections at that point nearly equals the measured
// best speedup (paper: bound 8.16x vs measured 8.08x; LagrangeElements
// alone bounds at 13.72x).
#include <cmath>
#include <cstdio>
#include <map>

#include "apps/lulesh/lulesh.hpp"
#include "common.hpp"
#include "core/speedup/inflexion.hpp"
#include "core/speedup/laws.hpp"
#include "core/speedup/partial_bound.hpp"
#include "support/chart.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mpisect;
  using namespace mpisect::bench;
  support::ArgParser args(
      "bench_fig10_knl_inflexion",
      "Reproduce paper Fig. 10 (OpenMP inflexion point on KNL, s=48)");
  args.add_int("steps", 1000, "timesteps");
  args.add_int("s", 48, "per-rank edge (paper: 48)");
  args.add_flag("quick", "reduced sweep for smoke testing");
  args.add_string("json_out", "", "write BENCH_<name>.json results here");
  if (!args.parse(argc, argv)) return 1;
  int steps = static_cast<int>(args.get_int("steps"));
  int s = static_cast<int>(args.get_int("s"));
  std::vector<int> threads{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192,
                           256};
  if (args.get_flag("quick")) {
    steps = 100;
    s = 24;
    threads = {1, 4, 16, 32, 64, 256};
  }

  print_banner("Fig. 10 — pure OpenMP scalability and inflexion on KNL",
               "Besnard et al., ICPPW'17, Figure 10 + Sec. 5.2 analysis",
               "p=1, s=" + std::to_string(s) + ", " + std::to_string(steps) +
                   " steps, threads swept to 256");

  std::map<int, RunPoint> sweep;
  for (const int t : threads) {
    LuleshRunOptions o;
    o.s = s;
    o.steps = steps;
    o.omp_threads = t;
    o.machine = mpisim::MachineModel::knl();
    sweep[t] = run_lulesh_point(1, o);
  }

  const auto nodal = section_series(sweep, "LagrangeNodal");
  const auto elems = section_series(sweep, "LagrangeElements");
  const auto wall = walltime_series(sweep);
  const double t_seq = *wall.sequential();
  const auto measured = wall.to_speedup();

  support::TextTable table;
  table.set_header({"OMP threads", "walltime (s)", "LagrangeNodal (s)",
                    "LagrangeElements (s)", "speedup"});
  for (const int t : threads) {
    table.add_row({std::to_string(t),
                   support::fmt_double(sweep[t].walltime, 2),
                   support::fmt_double(*nodal.at(t), 2),
                   support::fmt_double(*elems.at(t), 2),
                   support::fmt_double(*measured.at(t), 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  {
    support::ChartOptions copt;
    copt.title = "Fig. 10 sketch: times vs threads (note the minimum)";
    copt.log_x = true;
    copt.log_y = true;
    copt.x_label = "OpenMP threads";
    copt.y_label = "seconds";
    std::vector<support::Series> series{
        {"walltime", wall.xs(), wall.ys()},
        {"LagrangeNodal", nodal.xs(), nodal.ys()},
        {"LagrangeElements", elems.xs(), elems.ys()},
    };
    std::fputs(support::line_chart(series, copt).c_str(), stdout);
  }

  // ---- inflexion analysis (paper Sec. 5.2 worked example) ------------------
  std::printf("\ninflexion analysis:\n");
  bool found_any = false;
  for (const auto* series : {&nodal, &elems, &wall}) {
    const auto ip = speedup::find_inflexion(*series);
    if (!ip) {
      std::printf("  %-18s still scaling at the largest sweep point\n",
                  series->name().c_str());
      continue;
    }
    found_any = true;
    std::printf("  %-18s inflexion at %3d threads (%.2f s, rises %.0f%% after)\n",
                series->name().c_str(), ip->p, ip->time, ip->rise * 100.0);
  }
  if (!found_any) {
    std::printf("  WARNING: no inflexion found — model drifted from paper\n");
  }

  const auto ip = speedup::find_inflexion(wall);
  if (ip) {
    const double nodal_t = *nodal.at(ip->p);
    const double elems_t = *elems.at(ip->p);
    const double bound_both = speedup::partial_bound(t_seq, nodal_t + elems_t);
    const double bound_elems = speedup::partial_bound(t_seq, elems_t);
    const double speedup_at = *measured.at(ip->p);
    std::printf(
        "\npartial speedup bounding at the inflexion (%d threads):\n"
        "  S <= T_seq / (T_nodal + T_elems) = %.2f / (%.2f + %.2f) = %.2fx\n"
        "  measured speedup there:            %.2fx\n"
        "  LagrangeElements alone bounds at:  %.2fx\n"
        "  (paper: bound 8.16x vs measured 8.08x; Elements alone 13.72x)\n",
        ip->p, t_seq, nodal_t, elems_t, bound_both, speedup_at, bound_elems);
    const double ratio = bound_both / std::max(speedup_at, 1e-9);
    std::printf("  bound/measured ratio: %.3f (paper: 1.010) — %s\n", ratio,
                ratio >= 0.99 && ratio < 1.5 ? "tight, as in the paper"
                                             : "check calibration");
  }
  std::printf(
      "\npaper conclusion reproduced: a section whose duration stops\n"
      "decreasing immediately upper-bounds the speedup; configurations\n"
      "beyond the inflexion waste resources.\n");

  BenchJson json("knl", LuleshRunOptions{}.seed);
  for (const int t : threads) {
    json.add("fig10_knl_inflexion/threads:" + std::to_string(t),
             sweep[t].walltime,
             {{"LagrangeNodal_s", *nodal.at(t)},
              {"LagrangeElements_s", *elems.at(t)},
              {"speedup", *measured.at(t)}});
  }
  if (!json.write(args.get_string("json_out"))) return 1;
  return 0;
}
