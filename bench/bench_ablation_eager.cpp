// Ablation — eager/rendezvous threshold: the convolution halo rows
// (~132 KiB at paper size) sit above the default 16 KiB threshold, so the
// exchange uses the rendezvous protocol (sender completion tied to the
// receiver). Sweeping the threshold shows how protocol choice shifts time
// between the HALO section and its neighbours — a transport-level knob the
// section-level measurement cleanly exposes.
#include <cstdio>
#include <map>

#include "common.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mpisect;
  using namespace mpisect::bench;
  support::ArgParser args("bench_ablation_eager",
                          "Eager/rendezvous threshold vs section times");
  args.add_int("ranks", 64, "MPI processes");
  args.add_int("steps", 500, "convolution steps");
  args.add_flag("quick", "reduced run");
  if (!args.parse(argc, argv)) return 1;
  const bool quick = args.get_flag("quick");
  const int p = quick ? 16 : static_cast<int>(args.get_int("ranks"));
  const int steps = quick ? 50 : static_cast<int>(args.get_int("steps"));

  print_banner("Ablation — eager threshold sweep",
               "DESIGN.md: MiniMPI transport protocols",
               "convolution, p=" + std::to_string(p) + ", " +
                   std::to_string(steps) + " steps, Nehalem model");

  support::TextTable table;
  table.set_header({"eager threshold", "protocol for 132 KiB halo",
                    "HALO/proc (s)", "SCATTER/proc (s)", "walltime (s)"});
  for (const std::size_t threshold :
       {std::size_t{0}, std::size_t{16} * 1024, std::size_t{256} * 1024,
        std::size_t{16} * 1024 * 1024}) {
    ConvolutionSweepOptions o;
    o.steps = steps;
    o.reps = 1;
    o.machine = mpisim::MachineModel::nehalem_cluster();
    o.machine.net.eager_threshold = threshold;
    const auto pt = run_convolution_point(p, o);
    const std::size_t halo_bytes = 5616u * 3u * sizeof(double);
    table.add_row({support::fmt_bytes(static_cast<double>(threshold)),
                   halo_bytes > threshold ? "rendezvous" : "eager",
                   support::fmt_double(pt.per_process.at("HALO"), 3),
                   support::fmt_double(pt.per_process.at("SCATTER"), 3),
                   support::fmt_double(pt.walltime, 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nreading: eager transfer decouples sender and receiver, so skew is\n"
      "absorbed where the *receive* happens; rendezvous couples both ranks\n"
      "and surfaces the skew as HALO time on the sender too. Either way the\n"
      "section outline localizes the cost — the tool-side view is protocol-\n"
      "agnostic, which is the point of phase-level instrumentation.\n");
  return 0;
}
