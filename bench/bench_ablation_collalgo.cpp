// Ablation — collective algorithm choice: linear vs binomial rooted
// scatter/gather, measured through MPI sections on a distribution
// microworkload (the convolution benchmark itself uses scatterv, whose
// per-rank counts are root-only — which is exactly why real MPI libraries
// implement scatterv linearly; the equal-chunk scatter/gather get the
// algorithm switch).
//
// Expectation: the root serializes p-1 sends in the linear algorithm while
// the binomial tree spreads forwarding over intermediates (log p depth);
// total bytes from the root are identical (a scatter lower bound), so the
// gains are latency/pipelining, not bandwidth.
#include <cstdio>

#include "core/sections/api.hpp"
#include "common.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/session.hpp"
#include "profiler/section_profiler.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace mpisect;

struct Point {
  double scatter = 0.0;
  double gather = 0.0;
  double walltime = 0.0;
};

Point run_with(mpisim::CollAlgo algo, int p, int rounds) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.scatter_algo = algo;
  opts.gather_algo = algo;
  const auto world_ptr =
      mpisim::Session(p, opts).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  // Equal chunks matching the paper image split: 5616*3744*3*8 bytes / p.
  const std::size_t chunk =
      (5616ull * 3744ull * 3ull * sizeof(double)) / static_cast<std::size_t>(p);
  world.run([&](mpisim::Ctx& ctx) {
    mpisim::Comm comm = ctx.world_comm();
    for (int r = 0; r < rounds; ++r) {
      sections::MPIX_Section_enter(comm, "SCATTER");
      comm.scatter(nullptr, chunk, nullptr, 0);
      sections::MPIX_Section_exit(comm, "SCATTER");
      sections::MPIX_Section_enter(comm, "GATHER");
      comm.gather(nullptr, chunk, nullptr, 0);
      sections::MPIX_Section_exit(comm, "GATHER");
    }
  });
  Point pt;
  pt.scatter = prof.totals_for("SCATTER").mean_per_process;
  pt.gather = prof.totals_for("GATHER").mean_per_process;
  pt.walltime = world.elapsed();
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("bench_ablation_collalgo",
                          "Linear vs binomial rooted collectives");
  args.add_int("rounds", 20, "scatter+gather rounds averaged");
  args.add_flag("quick", "reduced sweep");
  if (!args.parse(argc, argv)) return 1;
  const bool quick = args.get_flag("quick");
  const int rounds = quick ? 5 : static_cast<int>(args.get_int("rounds"));
  const std::vector<int> ps =
      quick ? std::vector<int>{16, 64} : std::vector<int>{16, 64, 144, 256};

  bench::print_banner(
      "Ablation — rooted collective algorithms (linear vs binomial)",
      "DESIGN.md: MiniMPI collective algorithms",
      "paper-image-sized chunks, " + std::to_string(rounds) +
          " rounds, Nehalem model");

  support::TextTable table;
  table.set_header({"#procs", "SCATTER linear (s)", "SCATTER binomial (s)",
                    "GATHER linear (s)", "GATHER binomial (s)"});
  for (const int p : ps) {
    const Point lin = run_with(mpisim::CollAlgo::Linear, p, rounds);
    const Point bin = run_with(mpisim::CollAlgo::Binomial, p, rounds);
    table.add_row({std::to_string(p), support::fmt_double(lin.scatter, 4),
                   support::fmt_double(bin.scatter, 4),
                   support::fmt_double(lin.gather, 4),
                   support::fmt_double(bin.gather, 4)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nreading: the tree is not uniformly better — with rendezvous-size\n"
      "chunks, binomial GATHER lets leaves hand off to nearby parents and\n"
      "leave early (large per-process win over the root-serialized linear\n"
      "gather), while binomial SCATTER makes intermediates receive and\n"
      "forward whole subtree blocks (more bytes per rank than the linear\n"
      "root-streams-everything plan). Algorithm choice is a runtime option;\n"
      "the section outline is what makes the trade-off measurable without\n"
      "touching application code.\n");
  return 0;
}
