// Table 7 — "Strong-scaling configurations used for Lulesh": the cube rank
// counts with the per-rank edge (-s) keeping the total at 110 592 elements,
// regenerated from the decomposition helper and verified live against the
// mini-Lulesh domain.
#include <cstdio>

#include "apps/lulesh/comm.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "common.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mpisect;
  support::ArgParser args("bench_table7_configs",
                          "Reproduce paper Table 7 (Lulesh configurations)");
  args.add_int("elements", 110592, "total element count");
  args.add_flag("quick", "no-op (kept for harness uniformity)");
  if (!args.parse(argc, argv)) return 1;
  const long total = args.get_int("elements");

  bench::print_banner("Table 7 — Lulesh strong-scaling configurations",
                      "Besnard et al., ICPPW'17, Table (Fig.) 7",
                      "s^3 * p = " + std::to_string(total) +
                          " elements, p must be a perfect cube");

  support::TextTable table;
  table.set_header({"#MPI Processes", "Lulesh size (-s)", "elements/rank",
                    "total elements", "cube grid"});
  for (const int p : {1, 8, 27, 64, 125, 216}) {
    const int s = apps::lulesh::edge_for_total_elements(total, p);
    if (s < 0) continue;
    const apps::lulesh::CubeDecomposition cube(p);
    const long per_rank = static_cast<long>(s) * s * s;
    table.add_row({std::to_string(p), std::to_string(s),
                   std::to_string(per_rank), std::to_string(per_rank * p),
                   std::to_string(cube.pgrid()) + "x" +
                       std::to_string(cube.pgrid()) + "x" +
                       std::to_string(cube.pgrid())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\npaper rows: (1, s=48), (8, s=24), (27, s=16), (64, s=12) — all at\n"
      "110 592 elements. Cube counts without an integer edge (here 125:\n"
      "110592/125 is not an integer cube) are correctly absent; 216 extends\n"
      "the paper's table one step further.\n");
  return 0;
}
