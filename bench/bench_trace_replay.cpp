// Microbenchmarks (google-benchmark) of the trace subsystem: host-time
// recording overhead per event, encode/decode throughput, and replay
// throughput in events/s — the costs that decide whether "record one run,
// replay thousands of what-ifs" is actually cheaper than re-running.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>

#include "apps/convolution/convolution.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/session.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

using namespace mpisect;

mpisim::WorldOptions nehalem_options() {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  return opts;
}

void run_convolution(mpisim::World& world, int steps) {
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
}

trace::TraceFile record_convolution(int ranks, int steps) {
  const auto world_ptr =
      mpisim::Session(ranks, nehalem_options()).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "convolution"});
  run_convolution(world, steps);
  return rec->finish();
}

/// Simulated ranks retired per wall-clock second — the scheduler-throughput
/// number BENCH_*.json tracks alongside events/s.
void add_ranks_per_second(benchmark::State& state, int ranks) {
  state.counters["ranks_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(ranks),
      benchmark::Counter::kIsRate);
}

/// Host cost of one instrumented run WITHOUT the recorder (baseline).
void BM_RunWithoutRecorder(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto world_ptr2 =
        mpisim::Session(8, nehalem_options()).world_builder().build();
    mpisim::World& world = *world_ptr2;
    sections::SectionRuntime::install(world);
    run_convolution(world, steps);
    benchmark::DoNotOptimize(world.elapsed());
  }
  add_ranks_per_second(state, 8);
}
BENCHMARK(BM_RunWithoutRecorder)->Arg(20)->Unit(benchmark::kMillisecond);

/// Host cost of the same run WITH the recorder attached; the per-event
/// overhead is (this - baseline) / events.
void BM_RunWithRecorder(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto world_ptr3 =
        mpisim::Session(8, nehalem_options()).world_builder().build();
    mpisim::World& world = *world_ptr3;
    sections::SectionRuntime::install(world);
    auto rec = trace::TraceRecorder::install(world, {.app = "convolution"});
    run_convolution(world, steps);
    const trace::TraceFile tf = rec->finish();
    events = tf.total_events();
    benchmark::DoNotOptimize(tf.ranks.size());
  }
  state.counters["events"] = static_cast<double>(events);
  add_ranks_per_second(state, 8);
}
BENCHMARK(BM_RunWithRecorder)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_Encode(benchmark::State& state) {
  const trace::TraceFile tf = record_convolution(8, 50);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto buf = tf.encode();
    bytes = buf.size();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.counters["bytes_per_event"] =
      static_cast<double>(bytes) / static_cast<double>(tf.total_events());
}
BENCHMARK(BM_Encode);

void BM_Decode(benchmark::State& state) {
  const auto bytes = record_convolution(8, 50).encode();
  for (auto _ : state) {
    const trace::TraceFile tf = trace::TraceFile::decode(bytes);
    benchmark::DoNotOptimize(tf.ranks.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_Decode);

/// Replay throughput: virtual what-if evaluation speed in events/s. This is
/// the number that makes parameter sweeps cheap — compare against
/// BM_RunWithoutRecorder for the speedup over re-running the app.
void BM_ReplaySameModel(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const trace::TraceFile tf = record_convolution(ranks, 50);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const trace::ReplayResult res = trace::replay(tf, tf.header.machine, {});
    events = res.events;
    benchmark::DoNotOptimize(res.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
  add_ranks_per_second(state, ranks);
}
BENCHMARK(BM_ReplaySameModel)->Arg(8)->Arg(32);

void BM_ReplayWhatIfSweepPoint(benchmark::State& state) {
  const trace::TraceFile tf = record_convolution(8, 50);
  mpisim::MachineModel knl = mpisim::MachineModel::knl();
  trace::ReplayOptions opts;
  opts.compute_scale =
      tf.header.machine.flops_per_core / knl.flops_per_core;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const trace::ReplayResult res = trace::replay(tf, knl, opts);
    events = res.events;
    benchmark::DoNotOptimize(res.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ReplayWhatIfSweepPoint);

}  // namespace
