// Figure 3 — "Illustration of the temporal layout of an MPI Section with
// associated derived metrics": runs a deliberately skewed section across
// ranks and prints Tmin / Tin / Tout / Tsection / Tmax plus the entry- and
// section-imbalance statistics the paper derives.
#include <cstdio>

#include "common.hpp"
#include "core/sections/api.hpp"
#include "mpisim/session.hpp"
#include "profiler/section_profiler.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace mpisect;
using mpisim::Comm;
using mpisim::Ctx;

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("bench_fig3_metrics",
                          "Reproduce paper Fig. 3 derived section metrics");
  args.add_int("ranks", 8, "MPI processes");
  args.add_flag("quick", "no-op (kept for harness uniformity)");
  if (!args.parse(argc, argv)) return 1;
  const int p = static_cast<int>(args.get_int("ranks"));

  bench::print_banner(
      "Fig. 3 — temporal layout of an MPI Section",
      "Besnard et al., ICPPW'17, Figure 3",
      "one skewed section instance across " + std::to_string(p) + " ranks");

  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::ideal();
  opts.machine.compute_noise_sigma = 0.0;
  const auto world_ptr =
      mpisim::Session(p, opts).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world, {.keep_instances = true});

  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();
    // Staggered arrival (rank r enters 0.1*r s late) and staggered work,
    // the exact situation sketched in the paper's figure.
    ctx.compute_exact(0.1 * ctx.rank());
    sections::MPIX_Section_enter(comm, "region-of-interest");
    ctx.compute_exact(1.0 + 0.05 * (ctx.size() - ctx.rank()));
    sections::MPIX_Section_exit(comm, "region-of-interest");
    comm.barrier();
  });

  const auto totals = prof.totals_for("region-of-interest");
  const auto m =
      prof.instance_metrics(totals.comm_context, "region-of-interest", 0);

  support::TextTable per_rank;
  per_rank.set_header({"rank", "Tin", "Tout", "Tsection = Tout-Tmin",
                       "imb_in = Tin-Tmin"});
  for (int r = 0; r < p; ++r) {
    for (const auto& span : prof.trace(r)) {
      if (prof.labels().name(span.label) != "region-of-interest") continue;
      per_rank.add_row({std::to_string(r),
                        support::fmt_double(span.t_in, 3),
                        support::fmt_double(span.t_out, 3),
                        support::fmt_double(span.t_out - m.t_min, 3),
                        support::fmt_double(span.t_in - m.t_min, 3)});
    }
  }
  std::fputs(per_rank.render().c_str(), stdout);

  support::TextTable derived;
  derived.set_header({"metric", "value"});
  derived.set_align({support::TextTable::Align::Left,
                     support::TextTable::Align::Right});
  derived.add_row({"Tmin (first entry)", support::fmt_double(m.t_min, 3)});
  derived.add_row({"Tmax (last exit)", support::fmt_double(m.t_max, 3)});
  derived.add_row({"mean Tsection", support::fmt_double(m.section_mean, 3)});
  derived.add_row({"entry imbalance mean", support::fmt_double(m.entry_imb_mean, 3)});
  derived.add_row({"entry imbalance var", support::fmt_double(m.entry_imb_var, 3)});
  derived.add_row({"entry imbalance max", support::fmt_double(m.entry_imb_max, 3)});
  derived.add_row({"imb = (Tmax-Tmin) - mean(Tsection)",
                   support::fmt_double(m.imbalance, 3)});
  std::fputs(derived.render().c_str(), stdout);

  std::printf("\nThese are exactly the quantities a function-level profile\n"
              "cannot express: the section is a *distributed* time slice.\n");
  return 0;
}
