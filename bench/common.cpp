#include "common.hpp"

#include <cmath>
#include <cstdio>

#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/session.hpp"
#include "profiler/section_profiler.hpp"
#include "support/provenance.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"

namespace mpisect::bench {
namespace {

/// One profiled execution of an SPMD app; folds results into `point`.
template <typename AppFactory>
void accumulate_run(int nranks, const mpisim::MachineModel& machine,
                    std::uint64_t seed, AppFactory&& make_app,
                    std::map<std::string, support::RunningStats>& per_process,
                    std::map<std::string, support::RunningStats>& total,
                    std::map<std::string, support::RunningStats>& mpi_time,
                    support::RunningStats& walltime,
                    const mpisim::faults::FaultPlan& faults = {},
                    const std::string& exec = "cooperative",
                    const std::string& match = "hashed") {
  const auto world_ptr = mpisim::Session(nranks)
                             .world_builder()
                             .machine(machine)
                             .seed(seed)
                             .faults(faults)
                             .exec_spec(exec)
                             .match_spec(match)
                             .build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  auto app = make_app();
  world.run(std::ref(*app));
  walltime.add(world.elapsed());
  for (const auto& t : prof.totals()) {
    per_process[t.label].add(t.mean_per_process);
    total[t.label].add(t.total_time);
    mpi_time[t.label].add(t.ranks_seen ? t.mpi_time / t.ranks_seen : 0.0);
  }
}

RunPoint finalize(const std::map<std::string, support::RunningStats>& pp,
                  const std::map<std::string, support::RunningStats>& tot,
                  const std::map<std::string, support::RunningStats>& mpi,
                  const support::RunningStats& wall) {
  RunPoint point;
  point.walltime = wall.mean();
  point.walltime_stddev = wall.stddev();
  for (const auto& [label, st] : pp) point.per_process[label] = st.mean();
  for (const auto& [label, st] : tot) point.total[label] = st.mean();
  for (const auto& [label, st] : mpi) point.mpi_time[label] = st.mean();
  return point;
}

}  // namespace

RunPoint run_convolution_point(int nranks, const ConvolutionSweepOptions& o) {
  std::map<std::string, support::RunningStats> pp;
  std::map<std::string, support::RunningStats> tot;
  std::map<std::string, support::RunningStats> mpi;
  support::RunningStats wall;
  for (int rep = 0; rep < o.reps; ++rep) {
    const std::uint64_t seed =
        support::stream_id(o.seed, static_cast<std::uint64_t>(nranks),
                           static_cast<std::uint64_t>(rep));
    accumulate_run(
        nranks, o.machine, seed,
        [&] {
          apps::conv::ConvolutionConfig cfg;
          cfg.width = o.width;
          cfg.height = o.height;
          cfg.steps = o.steps;
          cfg.full_fidelity = false;
          return std::make_unique<apps::conv::ConvolutionApp>(cfg);
        },
        pp, tot, mpi, wall, o.faults, o.exec, o.match);
  }
  return finalize(pp, tot, mpi, wall);
}

RunPoint run_lulesh_point(int nranks, const LuleshRunOptions& o) {
  std::map<std::string, support::RunningStats> pp;
  std::map<std::string, support::RunningStats> tot;
  std::map<std::string, support::RunningStats> mpi;
  support::RunningStats wall;
  for (int rep = 0; rep < o.reps; ++rep) {
    const std::uint64_t seed = support::stream_id(
        o.seed, static_cast<std::uint64_t>(nranks),
        support::stream_id(static_cast<std::uint64_t>(o.omp_threads),
                           static_cast<std::uint64_t>(rep)));
    accumulate_run(
        nranks, o.machine, seed,
        [&] {
          apps::lulesh::LuleshConfig cfg;
          cfg.s = o.s;
          cfg.steps = o.steps;
          cfg.omp_threads = o.omp_threads;
          cfg.schedule = o.schedule;
          cfg.full_fidelity = false;
          return std::make_unique<apps::lulesh::LuleshApp>(cfg);
        },
        pp, tot, mpi, wall, {}, o.exec, o.match);
  }
  return finalize(pp, tot, mpi, wall);
}

speedup::BoundAnalysis make_bound_analysis(
    const std::map<int, RunPoint>& sweep,
    const std::vector<std::string>& labels) {
  const auto seq = sweep.find(1);
  const double t_seq = seq != sweep.end() ? seq->second.walltime : 0.0;
  speedup::BoundAnalysis analysis(t_seq);
  for (const auto& label : labels) {
    speedup::SectionScaling s;
    s.label = label;
    for (const auto& [p, point] : sweep) {
      const auto it = point.per_process.find(label);
      if (it == point.per_process.end() || it->second <= 0.0) continue;
      s.per_process.add(p, it->second);
      const auto tt = point.total.find(label);
      s.total.add(p, tt != point.total.end() ? tt->second : it->second * p);
    }
    analysis.add_section(s);
  }
  return analysis;
}

speedup::ScalingSeries section_series(const std::map<int, RunPoint>& sweep,
                                      const std::string& label) {
  speedup::ScalingSeries out(label);
  for (const auto& [p, point] : sweep) {
    const auto it = point.per_process.find(label);
    if (it != point.per_process.end()) out.add(p, it->second);
  }
  return out;
}

speedup::ScalingSeries walltime_series(const std::map<int, RunPoint>& sweep) {
  speedup::ScalingSeries out("walltime");
  for (const auto& [p, point] : sweep) out.add(p, point.walltime);
  return out;
}

void print_banner(const std::string& experiment, const std::string& paper_ref,
                  const std::string& protocol) {
  std::printf("============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("protocol:   %s\n", protocol.c_str());
  std::printf("============================================================\n");
}

BenchJson::BenchJson(std::string machine, std::uint64_t seed)
    : machine_(std::move(machine)), seed_(seed) {}

void BenchJson::add(const std::string& name, double real_time_s,
                    const std::map<std::string, double>& counters) {
  entries_.push_back({name, real_time_s, counters});
}

std::string BenchJson::str() const {
  auto prov = support::build_provenance();
  prov.machine = machine_;
  prov.seed = std::to_string(seed_);
  std::string out = "{\n  \"context\": ";
  out += support::provenance_json(prov);
  out += ",\n  \"benchmarks\": [";
  bool first = true;
  for (const auto& e : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"name\": \"" + e.name + "\", \"run_type\": \"iteration\"";
    out += ", \"iterations\": 1";
    out += ", \"real_time\": " + support::fmt_double(e.real_time, 9);
    out += ", \"cpu_time\": " + support::fmt_double(e.real_time, 9);
    out += ", \"time_unit\": \"s\"";
    for (const auto& [key, value] : e.counters) {
      out += ", \"" + key + "\": " + support::fmt_double(value, 9);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool BenchJson::write(const std::string& path) const {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string body = str();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
  else std::printf("bench: wrote %s\n", path.c_str());
  return ok;
}

}  // namespace mpisect::bench
