// Asynchronous-progress study: what does each progress engine do to the
// paper's convolution workload, and how much of a nonblocking
// collective's cost can compute overlap hide?
//
// Three measurements, every one a deterministic virtual-time result:
//   * convolution makespan under blocking-only / opportunistic /
//     progress-thread (64 ranks, Nehalem model) — the sweep axis the
//     `--progress` flag exposes, measured directly;
//   * the bit-compat contract: blocking-only must leave every rank's
//     final virtual time identical to a run that never names a model
//     (FAIL + exit 1 otherwise — this is the regression the CI leg pins);
//   * overlap efficiency: p ranks post an iallreduce, compute W seconds,
//     then wait. blocking-only serializes the collective's algorithm
//     after the fence; the async engines hide it under the compute, so
//     the measured fence cost -> 0 as W grows.
// Emits BENCH_progress.json via --json_out for CI archival.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "common.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/progress.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/session.hpp"
#include "support/cli.hpp"

namespace {

using namespace mpisect;

constexpr const char* kModels[] = {"blocking-only", "opportunistic",
                                   "progress-thread"};

mpisim::WorldOptions options_for(const std::string& spec,
                                 std::uint64_t seed) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = seed;
  opts.progress = mpisim::ProgressModel::parse(spec);
  return opts;
}

std::vector<double> convolution_finals(const mpisim::WorldOptions& opts,
                                       int nranks, int steps,
                                       double* wall_s) {
  const auto world_ptr =
      mpisim::Session(nranks, opts).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  world.run(std::ref(app));
  *wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return world.final_times();
}

/// Virtual makespan of: iallreduce(1 double), compute(W), wait.
double overlap_makespan(const std::string& spec, int nranks, double w) {
  const auto world_ptr2 =
      mpisim::Session(nranks, options_for(spec, 0xC0FFEE)).world_builder().build();
  mpisim::World& world = *world_ptr2;
  world.run([w](mpisim::Ctx& ctx) {
    mpisim::Comm comm = ctx.world_comm();
    double v = comm.rank() + 1.0;
    double acc = 0.0;
    auto req = comm.iallreduce(&v, &acc, 1, mpisim::datatype_of<double>,
                               mpisim::ReduceOp::Sum);
    if (w > 0.0) ctx.compute(w);
    req.wait();
  });
  return world.elapsed();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpisect::bench;
  support::ArgParser args(
      "bench_progress",
      "Measure the asynchronous-progress engines on the 64-rank "
      "convolution and the NBC compute-overlap scenario");
  args.add_int("ranks", 64, "MPI ranks");
  args.add_int("steps", 100, "convolution time-steps (modeled fidelity)");
  args.add_flag("quick", "reduced run for smoke testing");
  args.add_string("json_out", "", "write BENCH_progress.json here");
  if (!args.parse(argc, argv)) return 1;
  int nranks = static_cast<int>(args.get_int("ranks"));
  int steps = static_cast<int>(args.get_int("steps"));
  if (args.get_flag("quick")) {
    nranks = 16;
    steps = 20;
  }
  const std::uint64_t seed = 0xC0FFEE;

  print_banner("Asynchronous-progress engines",
               "progress model as a sweep axis: makespan and NBC overlap",
               std::to_string(nranks) + " ranks, " + std::to_string(steps) +
                   " steps, Nehalem model");

  BenchJson json("nehalem-cluster", seed);

  // ---- convolution under each engine --------------------------------
  std::printf("\nconvolution makespan per progress model:\n");
  std::vector<double> blocking_finals;
  for (const char* spec : kModels) {
    double wall = 0.0;
    const std::vector<double> finals =
        convolution_finals(options_for(spec, seed), nranks, steps, &wall);
    double makespan = 0.0;
    for (const double t : finals) makespan = t > makespan ? t : makespan;
    if (std::string(spec) == "blocking-only") blocking_finals = finals;
    std::printf("  %-16s makespan %.6f s  (%7.1f ms host)\n", spec, makespan,
                wall * 1e3);
    json.add(std::string("progress/convolution/") + spec, wall,
             {{"virtual_makespan_s", makespan}});
  }

  // ---- bit-compat contract ------------------------------------------
  mpisim::WorldOptions defaults;
  defaults.machine = mpisim::MachineModel::nehalem_cluster();
  defaults.seed = seed;
  double wall = 0.0;
  const std::vector<double> default_finals =
      convolution_finals(defaults, nranks, steps, &wall);
  if (default_finals != blocking_finals) {
    std::fprintf(stderr,
                 "FAIL: blocking-only is not bit-identical to the "
                 "model-free default\n");
    return 1;
  }
  std::printf("\nbit-compat: blocking-only == model-free default, all %d "
              "ranks  PASS\n",
              nranks);

  // ---- NBC overlap ---------------------------------------------------
  std::printf("\niallreduce fence cost vs overlapped compute W "
              "(makespan - W, %d ranks):\n",
              nranks);
  std::printf("  %-12s", "W");
  for (const char* spec : kModels) std::printf("  %-16s", spec);
  std::printf("\n");
  for (const double w : {0.0, 1e-4, 1e-3}) {
    std::printf("  %-12g", w);
    for (const char* spec : kModels) {
      const double fence = overlap_makespan(spec, nranks, w) - w;
      std::printf("  %-16.3g", fence);
      char name[64];
      std::snprintf(name, sizeof name, "progress/overlap/%s/w=%g", spec, w);
      json.add(name, fence, {{"fence_cost_s", fence}});
    }
    std::printf("\n");
  }
  std::printf("\n(async engines hide the background algorithm under the "
              "compute; blocking-only pays it at the fence)\n");

  if (!json.write(args.get_string("json_out"))) return 1;
  return 0;
}
