// Ablation — section validation mode (paper Sec. 4: "the invariants
// relatively to section entry have to be verified using non-intrusive
// synchronization primitives which could for example be selectively
// enabled"). Measures:
//   (1) virtual-time cost: zero — validation runs outside the performance
//       model, so enabling it cannot distort the measurements it protects;
//   (2) real (host) time cost of the checking rendezvous;
//   (3) that it actually catches a rank diverging on section labels.
#include <chrono>
#include <cstdio>

#include "apps/lulesh/lulesh.hpp"
#include "common.hpp"
#include "core/sections/api.hpp"
#include "mpisim/session.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mpisect;
  using Clock = std::chrono::steady_clock;
  support::ArgParser args("bench_ablation_validation",
                          "Cost and value of section validation mode");
  args.add_int("ranks", 8, "MPI processes");
  args.add_int("steps", 100, "lulesh timesteps");
  args.add_flag("quick", "reduced run");
  if (!args.parse(argc, argv)) return 1;
  const int p = static_cast<int>(args.get_int("ranks"));
  const int steps =
      args.get_flag("quick") ? 20 : static_cast<int>(args.get_int("steps"));

  bench::print_banner("Ablation — section validation on/off",
                      "Besnard et al., ICPPW'17, Sec. 4",
                      "mini-Lulesh (21 sections/step), p=" +
                          std::to_string(p) + ", " + std::to_string(steps) +
                          " steps");

  support::TextTable table;
  table.set_header({"validation", "virtual walltime (s)", "host time (s)",
                    "rendezvous rounds", "errors"});
  for (const bool validate : {false, true}) {
    mpisim::WorldOptions opts;
    opts.machine = mpisim::MachineModel::ideal(p, 1);
    opts.validate_sections = validate;
    const auto world_ptr =
        mpisim::Session(p, opts).world_builder().build();
    mpisim::World& world = *world_ptr;
    auto rt = sections::SectionRuntime::install(world);
    apps::lulesh::LuleshConfig cfg;
    cfg.s = 6;
    cfg.steps = steps;
    cfg.full_fidelity = false;
    apps::lulesh::LuleshApp app(cfg);
    const auto t0 = Clock::now();
    world.run(std::ref(app));
    const double host =
        std::chrono::duration<double>(Clock::now() - t0).count();
    table.add_row({validate ? "on" : "off",
                   support::fmt_double(world.elapsed(), 4),
                   support::fmt_double(host, 3),
                   std::to_string(rt->counters().validation_rounds),
                   std::to_string(rt->counters().errors)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Demonstrate detection: one rank enters a differently-labelled section.
  {
    mpisim::WorldOptions opts;
    opts.machine = mpisim::MachineModel::ideal(4, 1);
    opts.validate_sections = true;
    const auto world_ptr2 =
        mpisim::Session(4, opts).world_builder().build();
    mpisim::World& world = *world_ptr2;
    auto rt = sections::SectionRuntime::install(world);
    world.run([](mpisim::Ctx& ctx) {
      mpisim::Comm comm = ctx.world_comm();
      const char* label = ctx.rank() == 2 ? "phase-B" : "phase-A";
      sections::MPIX_Section_enter(comm, label);
      sections::MPIX_Section_exit(comm, label);
    });
    std::printf(
        "\ndivergence drill: rank 2 entered 'phase-B' while others entered\n"
        "'phase-A' -> validation flagged %llu mismatches (one per rank per\n"
        "enter/exit), which silent phase markers would have mismeasured.\n",
        static_cast<unsigned long long>(rt->counters().errors));
  }

  std::printf(
      "\nreading: identical virtual walltime in both rows — the check is\n"
      "non-intrusive by construction; the host-time column is the price of\n"
      "the checking rendezvous, paid only when selectively enabled.\n");
  return 0;
}
