// Shared MPI x OpenMP grid driver for the Fig. 8 / Fig. 9 benches.
#pragma once

#include <cstdio>
#include <map>
#include <vector>

#include "apps/lulesh/lulesh.hpp"
#include "common.hpp"
#include "support/chart.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace mpisect::bench {

/// Run the Table 7 strong-scaling grid on one machine and print, per MPI
/// process count, the paper's (section time vs threads) table and chart.
inline void run_lulesh_grid(const mpisim::MachineModel& machine,
                            const std::vector<int>& ps,
                            const std::vector<int>& threads, int steps,
                            long elements) {
  for (const int p : ps) {
    const int s = apps::lulesh::edge_for_total_elements(elements, p);
    if (s < 0) {
      std::printf("  (skipping p=%d: no integer edge)\n", p);
      continue;
    }
    std::map<int, RunPoint> sweep;  // threads -> point
    for (const int t : threads) {
      LuleshRunOptions o;
      o.s = s;
      o.steps = steps;
      o.omp_threads = t;
      o.machine = machine;
      sweep[t] = run_lulesh_point(p, o);
    }
    std::printf("\np = %d MPI processes (s = %d):\n", p, s);
    support::TextTable table;
    table.set_header({"OMP threads", "LagrangeNodal (s)",
                      "LagrangeElements (s)", "walltime (s)"});
    for (const int t : threads) {
      const auto& pt = sweep.at(t);
      auto get = [&](const char* label) {
        const auto it = pt.per_process.find(label);
        return it == pt.per_process.end() ? 0.0 : it->second;
      };
      table.add_row({std::to_string(t),
                     support::fmt_double(get("LagrangeNodal"), 3),
                     support::fmt_double(get("LagrangeElements"), 3),
                     support::fmt_double(pt.walltime, 3)});
    }
    std::fputs(table.render().c_str(), stdout);

    support::ChartOptions copt;
    copt.title = "p=" + std::to_string(p) + ": section time vs OMP threads";
    copt.log_x = true;
    copt.log_y = true;
    copt.x_label = "OpenMP threads";
    copt.y_label = "seconds";
    std::vector<support::Series> series;
    for (const auto& label :
         {std::string("LagrangeNodal"), std::string("LagrangeElements")}) {
      const auto sries = section_series(sweep, label);
      series.push_back({label, sries.xs(), sries.ys()});
    }
    const auto wt = walltime_series(sweep);
    series.push_back({"walltime", wt.xs(), wt.ys()});
    std::fputs(support::line_chart(series, copt).c_str(), stdout);
  }
}

}  // namespace mpisect::bench
