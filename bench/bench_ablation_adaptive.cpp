// Extension — the paper's Section 8 future work, implemented and measured:
// "dynamically restraining parallelism for non-scalable sections —
// investigating potential improvements for the overall computation."
//
// Protocol on the KNL model (where sections peak at different team sizes):
//   1. sweep a uniform OpenMP team over the Lagrange phases (Fig. 10 style),
//   2. feed the per-section series into the AdaptiveAdvisor,
//   3. rerun with per-phase team sizes (mini-Lulesh's nodal_threads /
//      element_threads restraint) and compare against the best uniform team.
#include <cstdio>
#include <map>

#include "apps/lulesh/lulesh.hpp"
#include "common.hpp"
#include "core/speedup/adaptive.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/session.hpp"
#include "profiler/section_profiler.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::bench;

RunPoint run_restrained(int base_threads, int nodal_threads,
                        int element_threads, int s, int steps) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::knl();
  const auto world_ptr =
      mpisim::Session(1, opts).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  apps::lulesh::LuleshConfig cfg;
  cfg.s = s;
  cfg.steps = steps;
  cfg.omp_threads = base_threads;  // non-Lagrange kernels keep the team
  cfg.nodal_threads = nodal_threads;
  cfg.element_threads = element_threads;
  cfg.full_fidelity = false;
  apps::lulesh::LuleshApp app(cfg);
  world.run(std::ref(app));
  RunPoint pt;
  pt.walltime = world.elapsed();
  for (const auto& t : prof.totals()) {
    pt.per_process[t.label] = t.mean_per_process;
  }
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args(
      "bench_ablation_adaptive",
      "Per-section parallelism restraint (paper Sec. 8 future work)");
  args.add_int("steps", 500, "timesteps");
  args.add_int("s", 48, "per-rank edge");
  args.add_flag("quick", "reduced sweep");
  if (!args.parse(argc, argv)) return 1;
  const bool quick = args.get_flag("quick");
  const int steps = quick ? 60 : static_cast<int>(args.get_int("steps"));
  const int s = quick ? 20 : static_cast<int>(args.get_int("s"));
  const std::vector<int> threads = quick
                                       ? std::vector<int>{1, 8, 24, 64}
                                       : std::vector<int>{1, 2, 4, 8, 12, 16,
                                                          24, 32, 48, 64, 96};

  print_banner("Extension — adaptive per-section parallelism restraint",
               "Besnard et al., ICPPW'17, Sec. 8 (future work)",
               "mini-Lulesh, KNL, p=1, s=" + std::to_string(s) + ", " +
                   std::to_string(steps) + " steps");

  // Phase 1: uniform sweep.
  std::map<int, RunPoint> sweep;
  for (const int t : threads) {
    LuleshRunOptions o;
    o.s = s;
    o.steps = steps;
    o.omp_threads = t;
    o.machine = mpisim::MachineModel::knl();
    sweep[t] = run_lulesh_point(1, o);
  }

  speedup::AdaptiveAdvisor advisor;
  advisor.add_section(section_series(sweep, "LagrangeNodal"));
  advisor.add_section(section_series(sweep, "LagrangeElements"));

  const auto best_uniform = advisor.best_uniform();
  const auto recs = advisor.recommend();
  support::TextTable table;
  table.set_header({"section", "own optimum (threads)", "time there (s)",
                    "restrained vs uniform?"});
  table.set_align({support::TextTable::Align::Left,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right});
  for (const auto& rec : recs) {
    table.add_row({rec.label, std::to_string(rec.threads),
                   support::fmt_double(rec.time, 3),
                   rec.restrained ? "restrained" : "no"});
  }
  std::fputs(table.render().c_str(), stdout);
  if (best_uniform) {
    std::printf("best uniform team: %d threads\n", *best_uniform);
    std::printf("advisor-predicted improvement: %.3fx\n\n",
                advisor.improvement());

    // Phase 2: run what the advisor recommends and compare for real.
    int nodal_t = 1;
    int elem_t = 1;
    for (const auto& rec : recs) {
      if (rec.label == "LagrangeNodal") nodal_t = rec.threads;
      if (rec.label == "LagrangeElements") elem_t = rec.threads;
    }
    const auto uniform_run = sweep.at(*best_uniform);
    const auto adaptive_run = run_restrained(*best_uniform, nodal_t, elem_t, s, steps);
    support::TextTable cmp;
    cmp.set_header({"configuration", "walltime (s)", "LagrangeNodal (s)",
                    "LagrangeElements (s)"});
    cmp.set_align({support::TextTable::Align::Left,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right});
    cmp.add_row({"uniform x" + std::to_string(*best_uniform),
                 support::fmt_double(uniform_run.walltime, 3),
                 support::fmt_double(
                     uniform_run.per_process.at("LagrangeNodal"), 3),
                 support::fmt_double(
                     uniform_run.per_process.at("LagrangeElements"), 3)});
    cmp.add_row({"adaptive (" + std::to_string(nodal_t) + "/" +
                     std::to_string(elem_t) + ")",
                 support::fmt_double(adaptive_run.walltime, 3),
                 support::fmt_double(
                     adaptive_run.per_process.at("LagrangeNodal"), 3),
                 support::fmt_double(
                     adaptive_run.per_process.at("LagrangeElements"), 3)});
    std::fputs(cmp.render().c_str(), stdout);
    std::printf("measured improvement: %.3fx\n",
                uniform_run.walltime / adaptive_run.walltime);
  }

  std::printf(
      "\nreading: when sections exhaust their parallelism budgets at\n"
      "different team sizes, capping each at its own inflexion recovers the\n"
      "time a uniform team wastes pushing the weaker section past its\n"
      "optimum — the improvement the paper proposed to investigate.\n");
  return 0;
}
