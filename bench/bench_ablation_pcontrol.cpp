// Ablation / related-work baseline (paper Sec. 6): MPI_Section vs the
// IPM-style MPI_Pcontrol phase outlining, on the same convolution run.
//
// Both tools attach to one execution. The comparison shows what the
// standardized, collective section semantics buy:
//   * identical phase *durations* (Pcontrol can time local intervals too),
//   * but sections add cross-rank instance identity -> Fig. 3 imbalance
//     metrics, nesting enforcement, and tool-agnostic callbacks,
//   * while Pcontrol mis-measures silently on protocol misuse.
#include <cstdio>

#include "apps/convolution/convolution.hpp"
#include "common.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/session.hpp"
#include "profiler/pcontrol.hpp"
#include "profiler/section_profiler.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mpisect;
  support::ArgParser args(
      "bench_ablation_pcontrol",
      "Sections vs IPM-style MPI_Pcontrol phases (paper Sec. 6)");
  args.add_int("ranks", 16, "MPI processes");
  args.add_int("steps", 200, "convolution steps");
  args.add_flag("quick", "reduced run");
  if (!args.parse(argc, argv)) return 1;
  const int p = static_cast<int>(args.get_int("ranks"));
  const int steps =
      args.get_flag("quick") ? 30 : static_cast<int>(args.get_int("steps"));

  bench::print_banner("Ablation — MPI_Section vs MPI_Pcontrol phases",
                      "Besnard et al., ICPPW'17, Sec. 6 (IPM comparison)",
                      "one convolution run, both tools attached, p=" +
                          std::to_string(p));

  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  const auto world_ptr =
      mpisim::Session(p, opts).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world, {.keep_instances = true});
  profiler::PcontrolPhases phases(world);

  apps::conv::ConvolutionConfig cfg;
  cfg.width = 1024;
  cfg.height = 768;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  cfg.emit_pcontrol = true;  // the app marks phases through BOTH interfaces
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));

  support::TextTable table;
  table.set_header({"phase", "sections: mean/proc (s)",
                    "pcontrol: mean/proc (s)", "sections extra data"});
  table.set_align({support::TextTable::Align::Left,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Left});
  for (const char* label : {"LOAD", "SCATTER", "CONVOLVE", "HALO", "GATHER",
                            "STORE"}) {
    const auto st = prof.totals_for(label);
    const auto pc = phases.total_phase(label);
    const auto agg = prof.aggregated_metrics(st.comm_context, label);
    table.add_row(
        {label, support::fmt_double(st.mean_per_process, 3),
         support::fmt_double(pc.count > 0 ? pc.total / p : 0.0, 3),
         "imb=" + support::fmt_double(agg.total_imbalance, 3) + "s, max entry skew=" +
             support::fmt_double(agg.max_entry_imb, 3) + "s"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nDurations agree (both read the same clock); only sections provide\n"
      "the right-hand column — cross-rank imbalance needs the collective\n"
      "instance identity that Pcontrol's tool-defined encoding lacks.\n");
  std::printf("pcontrol protocol errors silently absorbed: %ld\n",
              phases.protocol_errors());
  return 0;
}
