// Ablation — MiniOMP worksharing schedules: static vs dynamic vs guided on
// the mini-Lulesh kernels (KNL, p=1). Dynamic trades residual imbalance for
// per-chunk dispatch cost; near the inflexion point the difference is
// visible in the Lagrange sections without any OpenMP-side instrumentation,
// reinforcing the paper's claim that MPI-level sections characterize the
// intra-node runtime.
#include <cstdio>
#include <map>

#include "apps/lulesh/lulesh.hpp"
#include "common.hpp"
#include "core/speedup/inflexion.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mpisect;
  using namespace mpisect::bench;
  support::ArgParser args("bench_ablation_schedule",
                          "MiniOMP schedule ablation on mini-Lulesh (KNL)");
  args.add_int("steps", 300, "timesteps");
  args.add_int("s", 32, "per-rank edge");
  args.add_flag("quick", "reduced sweep");
  if (!args.parse(argc, argv)) return 1;
  const bool quick = args.get_flag("quick");
  const int steps = quick ? 50 : static_cast<int>(args.get_int("steps"));
  const int s = quick ? 16 : static_cast<int>(args.get_int("s"));
  const std::vector<int> threads =
      quick ? std::vector<int>{1, 16, 64} : std::vector<int>{1, 4, 16, 32, 64};

  print_banner("Ablation — worksharing schedule (static/dynamic/guided)",
               "DESIGN.md: MiniOMP schedule model",
               "mini-Lulesh, KNL, p=1, s=" + std::to_string(s) + ", " +
                   std::to_string(steps) + " steps");

  using minomp::Schedule;
  for (const Schedule sched :
       {Schedule::Static, Schedule::Dynamic, Schedule::Guided}) {
    std::map<int, RunPoint> sweep;
    for (const int t : threads) {
      LuleshRunOptions o;
      o.s = s;
      o.steps = steps;
      o.omp_threads = t;
      o.schedule = sched;
      o.machine = mpisim::MachineModel::knl();
      sweep[t] = run_lulesh_point(1, o);
    }
    std::printf("\nschedule(%s):\n", minomp::schedule_name(sched));
    support::TextTable table;
    table.set_header({"threads", "walltime (s)", "LagrangeElements (s)"});
    for (const int t : threads) {
      table.add_row(
          {std::to_string(t), support::fmt_double(sweep[t].walltime, 3),
           support::fmt_double(sweep[t].per_process.at("LagrangeElements"),
                               3)});
    }
    std::fputs(table.render().c_str(), stdout);
    const auto wall = walltime_series(sweep);
    if (const auto best = wall.best()) {
      std::printf("  best: %.3f s at %d threads\n", best->time, best->p);
    }
  }
  std::printf(
      "\nreading: static has no dispatch cost but keeps its residual\n"
      "imbalance; dynamic pays per-chunk dispatch (visible at high thread\n"
      "counts) for lower imbalance; guided sits between. All read purely\n"
      "from MPI sections.\n");
  return 0;
}
