// Telemetry overhead — the sampler's zero-perturbation contract, measured:
// running the 64-rank convolution with the interval sampler attached must
// (a) leave every rank's final virtual time bit-identical to the
// sampler-off run and (b) cost little extra wall-clock.
//
// Two baselines, because "overhead" needs a denominator:
//   * full fidelity — the app executes the real stencil, the workload the
//     paper benchmarks. This is the acceptance number (< 5% at the default
//     interval): sampling cost relative to real work.
//   * modeled fidelity — compute is charged, not executed, so the baseline
//     is nearly hollow (~100 ns/event) and the same absolute cost looks
//     enormous in relative terms. Reported as an absolute per-event /
//     per-sample diagnostic, not a percentage target.
// Emits BENCH_telemetry.json via --json_out for CI archival.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <functional>
#include <memory>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "common.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/session.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "telemetry/sampler.hpp"

namespace {

using namespace mpisect;

struct Workload {
  int width = 0;
  int height = 0;
  int steps = 0;
  bool full_fidelity = false;
};

struct Measurement {
  double wall_s = 0.0;      ///< host wall-clock of World::run
  double cpu_s = 0.0;       ///< host process CPU time of World::run
  double virtual_s = 0.0;   ///< virtual makespan (must match across modes)
  std::vector<double> final_times;
  std::size_t samples = 0;  ///< ring entries across ranks (sampler on)
  std::uint64_t events = 0; ///< intercepted hook/tap events (sampler on)
};

Measurement run_once(int nranks, const Workload& w, std::uint64_t seed,
                     double dt, bool with_sampler) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = seed;
  const auto world_ptr =
      mpisim::Session(nranks, opts).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  std::shared_ptr<telemetry::TelemetrySampler> sampler;
  if (with_sampler) {
    telemetry::SamplerOptions sopts;
    if (dt > 0.0) sopts.dt = dt;  // 0 = the library default interval
    sampler = telemetry::TelemetrySampler::install(world, sopts);
  }
  apps::conv::ConvolutionConfig cfg;
  cfg.width = w.width;
  cfg.height = w.height;
  cfg.steps = w.steps;
  cfg.full_fidelity = w.full_fidelity;
  apps::conv::ConvolutionApp app(cfg);
  timespec c0{}, c1{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c0);
  const auto t0 = std::chrono::steady_clock::now();
  world.run(std::ref(app));
  const auto t1 = std::chrono::steady_clock::now();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c1);
  Measurement m;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.cpu_s = static_cast<double>(c1.tv_sec - c0.tv_sec) +
            static_cast<double>(c1.tv_nsec - c0.tv_nsec) * 1e-9;
  m.virtual_s = world.elapsed();
  m.final_times = world.final_times();
  if (sampler) {
    for (int r = 0; r < nranks; ++r) m.samples += sampler->samples(r).size();
    const auto& ins = sampler->instruments();
    const auto& reg = sampler->registry();
    m.events = static_cast<std::uint64_t>(
        reg.total(ins.mpi_calls) + reg.total(ins.section_enters) +
        reg.total(ins.msgs_sent) + reg.total(ins.recvs_posted) +
        reg.total(ins.msgs_received) + reg.total(ins.coll_entries));
  }
  return m;
}

/// Best-of-N (by CPU time — wall-clock on shared CI hosts is too noisy to
/// compare single-digit percentages); checks the perturbation contract
/// every rep.
bool measure(int nranks, const Workload& w, std::uint64_t seed, double dt,
             int reps, Measurement& off, Measurement& on) {
  for (int rep = 0; rep < reps; ++rep) {
    Measurement a = run_once(nranks, w, seed, dt, false);
    Measurement b = run_once(nranks, w, seed, dt, true);
    if (rep == 0 || a.cpu_s < off.cpu_s) off = a;
    if (rep == 0 || b.cpu_s < on.cpu_s) on = b;
    if (a.final_times != b.final_times) {
      std::fprintf(stderr,
                   "FAIL: sampler perturbed virtual time (rep %d): "
                   "makespan off=%.17g on=%.17g\n",
                   rep, a.virtual_s, b.virtual_s);
      return false;
    }
  }
  return true;
}

double overhead_pct(const Measurement& off, const Measurement& on) {
  return off.cpu_s > 0.0 ? (on.cpu_s - off.cpu_s) / off.cpu_s * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpisect::bench;
  support::ArgParser args(
      "bench_telemetry",
      "Measure the interval sampler's wall-clock overhead and verify its "
      "zero-virtual-time-perturbation contract (64-rank convolution)");
  args.add_int("ranks", 64, "MPI ranks");
  args.add_int("steps", 200, "modeled-fidelity convolution time-steps");
  args.add_int("full-steps", 30, "full-fidelity time-steps");
  args.add_int("full-size", 768, "full-fidelity image edge (square)");
  args.add_int("reps", 3, "repetitions (min wall-clock is reported)");
  args.add_double("dt", 0.0, "sampling interval (virtual seconds); 0 = the "
                             "sampler's default interval");
  args.add_flag("quick", "reduced run for smoke testing");
  args.add_string("json_out", "", "write BENCH_telemetry.json here");
  if (!args.parse(argc, argv)) return 1;
  const int nranks = static_cast<int>(args.get_int("ranks"));
  Workload modeled{5616, 3744, static_cast<int>(args.get_int("steps")), false};
  const int edge = static_cast<int>(args.get_int("full-size"));
  Workload full{edge, edge, static_cast<int>(args.get_int("full-steps")),
                true};
  int reps = static_cast<int>(args.get_int("reps"));
  const double dt = args.get_double("dt");
  if (args.get_flag("quick")) {
    modeled.steps = 20;
    full.steps = 4;
    full.width = full.height = 256;
    reps = 1;
  }
  const std::uint64_t seed = 0xC0FFEE;
  const double eff_dt = dt > 0.0 ? dt : telemetry::SamplerOptions{}.dt;

  print_banner("Telemetry sampler overhead",
               "observability contract: sampling must not perturb the model",
               std::to_string(nranks) + " ranks, dt=" +
                   support::fmt_double(eff_dt, 6) + "s, best of " +
                   std::to_string(reps));

  // ---- full fidelity: the acceptance number -------------------------------
  Measurement full_off, full_on;
  if (!measure(nranks, full, seed, dt, reps, full_off, full_on)) return 1;
  const double full_oh = overhead_pct(full_off, full_on);
  std::printf("\nfull fidelity (%dx%d, %d steps — real stencil work):\n",
              full.width, full.height, full.steps);
  std::printf("  sampler off: %9.3f ms cpu (%8.3f ms wall)\n",
              full_off.cpu_s * 1e3, full_off.wall_s * 1e3);
  std::printf("  sampler on:  %9.3f ms cpu (%8.3f ms wall, %zu samples, "
              "~%llu events)\n",
              full_on.cpu_s * 1e3, full_on.wall_s * 1e3, full_on.samples,
              static_cast<unsigned long long>(full_on.events));
  std::printf("  overhead:    %+.2f%% cpu (target < 5%%)  %s\n", full_oh,
              full_oh < 5.0 ? "PASS" : "ABOVE TARGET");

  // ---- modeled fidelity: absolute cost diagnostic -------------------------
  Measurement mod_off, mod_on;
  if (!measure(nranks, modeled, seed, dt, reps, mod_off, mod_on)) return 1;
  const double extra_s = mod_on.cpu_s - mod_off.cpu_s;
  const double ns_per_event =
      mod_on.events > 0
          ? extra_s / static_cast<double>(mod_on.events) * 1e9
          : 0.0;
  std::printf("\nmodeled fidelity (%dx%d, %d steps — hollow baseline):\n",
              modeled.width, modeled.height, modeled.steps);
  std::printf("  sampler off: %9.3f ms cpu, makespan %.6f s\n",
              mod_off.cpu_s * 1e3, mod_off.virtual_s);
  std::printf("  sampler on:  %9.3f ms cpu (%zu samples, ~%llu events)\n",
              mod_on.cpu_s * 1e3, mod_on.samples,
              static_cast<unsigned long long>(mod_on.events));
  std::printf("  absolute cost: %+.3f ms total, ~%.0f ns per event\n",
              extra_s * 1e3, ns_per_event);
  std::printf("\nperturbation: none — per-rank virtual times bit-identical "
              "in both modes\n");

  BenchJson json("nehalem-cluster", seed);
  json.add("telemetry/full_fidelity/sampler_off", full_off.wall_s,
           {{"cpu_time_s", full_off.cpu_s},
            {"virtual_makespan_s", full_off.virtual_s}});
  json.add("telemetry/full_fidelity/sampler_on", full_on.wall_s,
           {{"cpu_time_s", full_on.cpu_s},
            {"virtual_makespan_s", full_on.virtual_s},
            {"samples", static_cast<double>(full_on.samples)},
            {"overhead_pct", full_oh}});
  json.add("telemetry/modeled/sampler_off", mod_off.wall_s,
           {{"cpu_time_s", mod_off.cpu_s},
            {"virtual_makespan_s", mod_off.virtual_s}});
  json.add("telemetry/modeled/sampler_on", mod_on.wall_s,
           {{"cpu_time_s", mod_on.cpu_s},
            {"virtual_makespan_s", mod_on.virtual_s},
            {"samples", static_cast<double>(mod_on.samples)},
            {"events", static_cast<double>(mod_on.events)},
            {"overhead_pct", overhead_pct(mod_off, mod_on)},
            {"ns_per_event", ns_per_event}});
  if (!json.write(args.get_string("json_out"))) return 1;
  return 0;
}
