// Scheduler throughput microbenchmarks (google-benchmark): wall-clock cost
// of running a fixed seeded convolution world under the cooperative fiber
// backend vs the thread-per-rank reference, across rank counts and worker
// pool sizes. The ranks/s counter is the number BENCH_*.json tracks — the
// paper-scale worlds (64+ ranks, Table 7) are only practical when it stays
// roughly flat as ranks grow past the core count.
#include <benchmark/benchmark.h>

#include <functional>

#include "apps/convolution/convolution.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/session.hpp"

namespace {

using namespace mpisect;

mpisim::WorldOptions options(mpisim::ExecBackend exec, int workers) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.exec = exec;
  opts.workers = workers;
  return opts;
}

void run_world(int ranks, const mpisim::WorldOptions& opts, int steps) {
  const auto world_ptr =
      mpisim::Session(ranks, opts).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  apps::conv::ConvolutionConfig cfg;
  cfg.width = 256;
  cfg.height = 256;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  benchmark::DoNotOptimize(world.elapsed());
}

void with_rank_counter(benchmark::State& state, int ranks) {
  state.counters["ranks_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(ranks),
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ranks);
}

/// Cooperative fiber scheduler, default worker pool. Sweep rank counts past
/// anything the thread backend can sensibly host on this container.
void BM_SchedulerCooperative(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto opts = options(mpisim::ExecBackend::Cooperative, 0);
  for (auto _ : state) run_world(ranks, opts, /*steps=*/10);
  with_rank_counter(state, ranks);
}
BENCHMARK(BM_SchedulerCooperative)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Thread-per-rank reference: same work, one OS thread per virtual rank.
/// The 64-rank gap against BM_SchedulerCooperative/64 is the headline
/// speedup of the cooperative backend.
void BM_SchedulerThreads(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto opts = options(mpisim::ExecBackend::Threads, 0);
  for (auto _ : state) run_world(ranks, opts, /*steps=*/10);
  with_rank_counter(state, ranks);
}
BENCHMARK(BM_SchedulerThreads)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

/// Worker-pool sensitivity at a fixed 64-rank world: serialized (1 worker)
/// vs small pools. Virtual-time results are identical either way; only
/// wall-clock changes.
void BM_SchedulerWorkerSweep(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const auto opts = options(mpisim::ExecBackend::Cooperative, workers);
  for (auto _ : state) run_world(64, opts, /*steps=*/10);
  with_rank_counter(state, 64);
}
BENCHMARK(BM_SchedulerWorkerSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
