// Extension — the strong/weak scaling spectrum of the paper's Section 2:
// "In practice, simulation applications are between these two
// configurations ... posing problems of interpretation of the Speedup
// metric which dramatically varies, particularly in function of problem
// size."
//
// Runs the convolution benchmark both ways on the Nehalem model:
//   strong: fixed image, p grows (Amdahl regime — Fig. 5's setup)
//   weak:   image rows grow with p, constant work per rank
//            (Gustafson-Barsis regime)
// and prints the classic metrics side by side: speedup, efficiency,
// Karp-Flatt fraction, and the Gustafson scaled speedup the weak run
// actually achieves.
#include <cstdio>
#include <map>

#include "apps/lulesh/lulesh.hpp"
#include "common.hpp"
#include "core/speedup/laws.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mpisect;
  using namespace mpisect::bench;
  support::ArgParser args("bench_ablation_weakscaling",
                          "Strong vs weak scaling interpretation (Sec. 2)");
  args.add_int("steps", 400, "convolution steps");
  args.add_flag("quick", "reduced sweep");
  if (!args.parse(argc, argv)) return 1;
  const bool quick = args.get_flag("quick");
  const int steps = quick ? 60 : static_cast<int>(args.get_int("steps"));
  const std::vector<int> ps =
      quick ? std::vector<int>{1, 4, 16} : std::vector<int>{1, 4, 16, 64, 256};
  const int base_rows = 512;
  const int width = 1024;

  print_banner("Extension — strong vs weak scaling on one workload",
               "Besnard et al., ICPPW'17, Sec. 2 (speedup interpretation)",
               "convolution, Nehalem model, " + std::to_string(steps) +
                   " steps, base image " + std::to_string(width) + "x" +
                   std::to_string(base_rows));

  std::map<int, RunPoint> strong;
  std::map<int, RunPoint> weak;
  for (const int p : ps) {
    ConvolutionSweepOptions o;
    o.width = width;
    o.height = base_rows;
    o.steps = steps;
    o.reps = 1;
    strong[p] = run_convolution_point(p, o);
    o.height = base_rows * p;  // constant rows per rank
    weak[p] = run_convolution_point(p, o);
  }

  const double t_strong_seq = strong[1].walltime;
  const double t_weak_seq = weak[1].walltime;

  support::TextTable table;
  table.set_header({"p", "strong wall (s)", "S_strong", "E_strong",
                    "Karp-Flatt", "weak wall (s)", "scaled speedup",
                    "Gustafson @KF"});
  for (const int p : ps) {
    const double s_strong = t_strong_seq / strong[p].walltime;
    const double kf = speedup::karp_flatt(s_strong, p);
    // Weak scaling: scaled speedup = p * (T_seq / T_weak(p)) since the
    // problem is p times larger.
    const double scaled = p * t_weak_seq / weak[p].walltime;
    table.add_row({std::to_string(p),
                   support::fmt_double(strong[p].walltime, 2),
                   support::fmt_double(s_strong, 2),
                   support::fmt_double(s_strong / p, 2),
                   support::fmt_double(kf, 4),
                   support::fmt_double(weak[p].walltime, 2),
                   support::fmt_double(scaled, 2),
                   support::fmt_double(speedup::gustafson_scaled(kf, p), 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  // --- Lulesh: the paper notes its DEFAULT behaviour "scales problem size
  // with the number of MPI processes" (weak scaling), unlike the fixed
  // 110 592-element strong-scaling protocol of Table 7. Show both.
  std::printf("\nmini-Lulesh on KNL (s = per-rank edge):\n");
  support::TextTable lt;
  lt.set_header({"p", "strong: s(p)", "strong wall (s)", "S_strong",
                 "weak: s=16", "weak wall (s)", "weak efficiency"});
  const int lulesh_steps = quick ? 20 : 100;
  double strong_seq = 0.0;
  double weak_seq = 0.0;
  for (const int p : {1, 8, 27, 64}) {
    const int s_strong =
        apps::lulesh::edge_for_total_elements(110592, p);
    LuleshRunOptions strong_o;
    strong_o.s = s_strong;
    strong_o.steps = lulesh_steps;
    strong_o.machine = mpisim::MachineModel::knl();
    const auto strong_pt = run_lulesh_point(p, strong_o);
    LuleshRunOptions weak_o = strong_o;
    weak_o.s = 16;  // constant per-rank work
    const auto weak_pt = run_lulesh_point(p, weak_o);
    if (p == 1) {
      strong_seq = strong_pt.walltime;
      weak_seq = weak_pt.walltime;
    }
    lt.add_row({std::to_string(p), std::to_string(s_strong),
                support::fmt_double(strong_pt.walltime, 2),
                support::fmt_double(strong_seq / strong_pt.walltime, 2),
                "16",
                support::fmt_double(weak_pt.walltime, 2),
                support::fmt_double(weak_seq / weak_pt.walltime, 2)});
  }
  std::fputs(lt.render().c_str(), stdout);
  std::printf(
      "(weak efficiency = T(1)/T(p) at constant work per rank; close to 1\n"
      "means the communication layer absorbs the growing rank count.)\n");

  std::printf(
      "\nreading: the SAME code and machine report wildly different\n"
      "\"speedups\" depending on the scaling protocol — the strong run\n"
      "saturates (Amdahl regime, Karp-Flatt fraction grows with p as the\n"
      "HALO overhead bites) while the weak run tracks the Gustafson line.\n"
      "This interpretation gap is the paper's motivation for measuring\n"
      "per-section behaviour instead of one global number.\n");
  return 0;
}
