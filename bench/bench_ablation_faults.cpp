// Ablation — fault injection on the Fig. 5 convolution: rerun the paper's
// communication-bound workload under increasing message-drop rates and a
// straggler, showing how the resilient transport's retransmissions inflate
// HALO (the Eq. 6 binding section) while the run still completes, and what
// a deterministic straggler does to the same bound.
#include <cstdio>
#include <map>
#include <vector>

#include "common.hpp"
#include "mpisim/faults/plan.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mpisect;
  using namespace mpisect::bench;
  support::ArgParser args("bench_ablation_faults",
                          "Drop-rate and straggler sweep on the Fig. 5 "
                          "convolution");
  args.add_int("ranks", 64, "MPI processes");
  args.add_int("steps", 200, "convolution steps");
  args.add_flag("quick", "reduced sweep");
  if (!args.parse(argc, argv)) return 1;
  const bool quick = args.get_flag("quick");
  const int ranks = static_cast<int>(args.get_int("ranks"));
  const int steps = quick ? 50 : static_cast<int>(args.get_int("steps"));
  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.1};

  print_banner("Ablation — deterministic fault injection",
               "resilient transport under message drops (retransmit + "
               "backoff)",
               std::to_string(ranks) + " ranks, " + std::to_string(steps) +
                   " steps, Nehalem model");

  support::TextTable table;
  table.set_header({"drop rate", "walltime (s)", "HALO total (s)",
                    "HALO/proc (s)", "slowdown"});
  double t0 = 0.0;
  for (const double rate : rates) {
    ConvolutionSweepOptions o;
    o.steps = steps;
    o.reps = 1;
    if (rate > 0.0) {
      char spec[32];
      std::snprintf(spec, sizeof spec, "drop:p=%g", rate);
      o.faults = mpisim::faults::FaultPlan::parse(spec);
    }
    const RunPoint pt = run_convolution_point(ranks, o);
    if (rate == 0.0) t0 = pt.walltime;
    table.add_row({support::fmt_double(rate, 2),
                   support::fmt_double(pt.walltime, 2),
                   support::fmt_double(pt.total.count("HALO")
                                           ? pt.total.at("HALO")
                                           : 0.0,
                                       2),
                   support::fmt_double(pt.per_process.count("HALO")
                                           ? pt.per_process.at("HALO")
                                           : 0.0,
                                       3),
                   support::fmt_double(t0 > 0 ? pt.walltime / t0 : 1.0, 3)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Straggler: one rank loses 50 ms mid-run; the halo stencil spreads the
  // delay to its neighbours and the whole world pays once per sweep.
  ConvolutionSweepOptions o;
  o.steps = steps;
  o.reps = 1;
  o.faults = mpisim::faults::FaultPlan::parse("stall:rank=1,at=0.01,for=0.05");
  const RunPoint stalled = run_convolution_point(ranks, o);
  std::printf(
      "\nstraggler (rank 1 stalls 50 ms at t=10 ms): walltime %s s "
      "(+%.0f ms over fault-free)\n",
      support::fmt_double(stalled.walltime, 2).c_str(),
      (stalled.walltime - t0) * 1e3);
  std::printf(
      "\nreading: every drawn drop costs one retransmit backoff on the\n"
      "wire, so HALO absorbs the injected loss and the Eq. 6 bound\n"
      "tightens smoothly with the drop rate — the run never hangs, and the\n"
      "whole sweep is a pure function of (plan, seed).\n");
  return 0;
}
