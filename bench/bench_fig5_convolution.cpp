// Figure 5 — "Execution scattering for our convolution benchmark outlined
// with MPI Sections" on the Nehalem-cluster model:
//   (a) percentage of execution time per MPI Section vs process count
//   (b) total time per MPI Section
//   (c) average time per process for each MPI Section
//   (d) average Speedup and predicted partial speedup boundaries (B) for
//       the HALO section.
//
// Protocol mirrors the paper (Sec. 5.1): 5616x3744 RGB image, 1000
// convolution steps, up to 456 cores (8-core nodes), repetitions averaged.
#include <cstdio>
#include <map>

#include "common.hpp"
#include "core/speedup/laws.hpp"
#include "core/speedup/partial_bound.hpp"
#include "core/speedup/report.hpp"
#include "support/chart.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace mpisect;
using namespace mpisect::bench;

const std::vector<std::string> kSections{"LOAD",     "SCATTER", "CONVOLVE",
                                         "HALO",     "GATHER",  "STORE"};

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("bench_fig5_convolution",
                          "Reproduce paper Fig. 5 (a-d)");
  args.add_int("steps", 1000, "convolution time-steps");
  args.add_int("reps", 3, "averaged repetitions (paper: 20)");
  args.add_int("max-procs", 456, "largest process count");
  args.add_flag("csv", "emit CSV blocks after the tables");
  args.add_flag("quick", "reduced sweep for smoke testing");
  args.add_string("json_out", "", "write BENCH_<name>.json results here");
  if (!args.parse(argc, argv)) return 1;

  ConvolutionSweepOptions o;
  o.steps = static_cast<int>(args.get_int("steps"));
  o.reps = static_cast<int>(args.get_int("reps"));
  const bool quick = args.get_flag("quick");
  if (quick) {
    o.steps = 50;
    o.reps = 1;
  }

  std::vector<int> ps{1, 2, 4, 8, 16, 32, 64, 128, 256};
  const int maxp = static_cast<int>(args.get_int("max-procs"));
  if (!quick && maxp >= 456) ps.push_back(456);
  while (!ps.empty() && ps.back() > maxp) ps.pop_back();
  if (quick) ps = {1, 2, 4, 8, 16, 32, 64};

  print_banner("Fig. 5 — convolution benchmark section scattering",
               "Besnard et al., ICPPW'17, Figure 5(a-d)",
               "image 5616x3744, " + std::to_string(o.steps) +
                   " steps, Nehalem-cluster model, " +
                   std::to_string(o.reps) + " reps averaged");

  std::map<int, RunPoint> sweep;
  for (const int p : ps) {
    std::printf("  running p=%d ...\n", p);
    std::fflush(stdout);
    sweep[p] = run_convolution_point(p, o);
  }

  // ---- (a) percentage of execution per section ---------------------------
  std::printf("\nFig. 5(a): %% of execution time per MPI Section\n");
  support::TextTable pct;
  {
    std::vector<std::string> header{"#procs"};
    for (const auto& s : kSections) header.push_back(s);
    pct.set_header(header);
  }
  for (const int p : ps) {
    const double wall = sweep[p].walltime;
    std::vector<std::string> row{std::to_string(p)};
    for (const auto& s : kSections) {
      const auto it = sweep[p].per_process.find(s);
      const double share =
          (it != sweep[p].per_process.end() && wall > 0.0)
              ? it->second / wall * 100.0
              : 0.0;
      row.push_back(support::fmt_double(share, 1));
    }
    pct.add_row(row);
  }
  std::fputs(pct.render().c_str(), stdout);

  // ---- (b) total time per section ----------------------------------------
  std::printf("\nFig. 5(b): total time per MPI Section (sum over ranks, s)\n");
  support::TextTable tot;
  {
    std::vector<std::string> header{"#procs"};
    for (const auto& s : kSections) header.push_back(s);
    tot.set_header(header);
  }
  for (const int p : ps) {
    std::vector<std::string> row{std::to_string(p)};
    for (const auto& s : kSections) {
      const auto it = sweep[p].total.find(s);
      row.push_back(support::fmt_double(
          it != sweep[p].total.end() ? it->second : 0.0, 2));
    }
    tot.add_row(row);
  }
  std::fputs(tot.render().c_str(), stdout);

  // ---- (c) average time per process ---------------------------------------
  std::printf("\nFig. 5(c): average time per process per MPI Section (s)\n");
  support::TextTable avg;
  {
    std::vector<std::string> header{"#procs"};
    for (const auto& s : kSections) header.push_back(s);
    avg.set_header(header);
  }
  for (const int p : ps) {
    std::vector<std::string> row{std::to_string(p)};
    for (const auto& s : kSections) {
      const auto it = sweep[p].per_process.find(s);
      row.push_back(support::fmt_double(
          it != sweep[p].per_process.end() ? it->second : 0.0, 3));
    }
    avg.add_row(row);
  }
  std::fputs(avg.render().c_str(), stdout);

  {
    support::ChartOptions copt;
    copt.title = "Fig. 5(c) sketch: per-process section time vs p";
    copt.log_x = true;
    copt.log_y = true;
    copt.x_label = "#processes";
    copt.y_label = "seconds";
    std::vector<support::Series> series;
    for (const auto& label : {"CONVOLVE", "HALO"}) {
      support::Series s{label, {}, {}};
      const auto sect = section_series(sweep, label);
      for (const auto& pt : sect.points()) {
        if (pt.time > 0.0) {  // p=1 has no halo exchange
          s.x.push_back(pt.p);
          s.y.push_back(pt.time);
        }
      }
      series.push_back(std::move(s));
    }
    std::fputs(support::line_chart(series, copt).c_str(), stdout);
  }

  // ---- (d) speedup + HALO partial bounds ----------------------------------
  std::printf("\nFig. 5(d): speedup and HALO partial speedup bounds B(p)\n");
  const auto walltime = walltime_series(sweep);
  const auto measured = walltime.to_speedup();
  const auto analysis = make_bound_analysis(sweep, {"HALO", "CONVOLVE"});
  const auto halo_bounds = analysis.bound_series("HALO");
  support::TextTable sd;
  sd.set_header({"#procs", "walltime (s)", "speedup", "B_HALO(p)",
                 "bound holds later?"});
  for (const int p : ps) {
    const auto s = measured.at(p);
    const auto b = halo_bounds.at(p);
    std::string holds = "-";
    if (b) {
      const auto trans = analysis.transpose_bound("HALO", p, measured, 1.10);
      holds = trans.holds ? "yes" : "NO";
    }
    sd.add_row({std::to_string(p),
                support::fmt_double(sweep[p].walltime, 2),
                s ? support::fmt_double(*s, 2) : "-",
                b ? support::fmt_double(*b, 2) : "-", holds});
  }
  std::fputs(sd.render().c_str(), stdout);
  std::fputs(speedup::summarize_speedup(walltime).c_str(), stdout);

  {
    support::ChartOptions copt;
    copt.title = "Fig. 5(d) sketch: measured speedup vs p";
    copt.log_x = true;
    copt.x_label = "#processes";
    copt.y_label = "speedup";
    std::vector<support::Series> series;
    series.push_back({"speedup", measured.xs(), measured.ys()});
    std::fputs(support::line_chart(series, copt).c_str(), stdout);
  }

  if (args.get_flag("csv")) {
    std::printf("\nCSV (per-process section times):\n");
    std::vector<speedup::ScalingSeries> all;
    for (const auto& s : kSections) all.push_back(section_series(sweep, s));
    all.push_back(walltime);
    std::fputs(speedup::series_csv(all).c_str(), stdout);
  }

  BenchJson json("nehalem-cluster", o.seed);
  for (const int p : ps) {
    std::map<std::string, double> counters;
    for (const auto& s : kSections) {
      const auto it = sweep[p].per_process.find(s);
      counters[s + "_per_process_s"] =
          it != sweep[p].per_process.end() ? it->second : 0.0;
    }
    if (const auto sp = measured.at(p)) counters["speedup"] = *sp;
    if (const auto b = halo_bounds.at(p)) counters["B_HALO"] = *b;
    json.add("fig5_convolution/p:" + std::to_string(p), sweep[p].walltime,
             counters);
  }
  if (!json.write(args.get_string("json_out"))) return 1;
  return 0;
}
