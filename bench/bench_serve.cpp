// Serve-daemon latency bench — cold (engine run) vs warm (cache hit)
// latency of served replay and sweep queries, through the same Service
// dispatcher the TCP daemon uses. The acceptance bar: a cached answer is
// at least 10x faster than the cold one (enforced in full mode).
//
// Emits BENCH_serve.json via --json_out.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "codec/mpstz.hpp"
#include "common.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/session.hpp"
#include "serve/service.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace mpisect;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

trace::TraceFile record_convolution(int ranks, int steps) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  opts.seed = 0x5EED;
  const auto world_ptr =
      mpisim::Session(ranks, opts).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  auto rec = trace::TraceRecorder::install(world, {.app = "bench-serve"});
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  return rec->finish();
}

/// One timed request; returns (seconds, cached flag from the response).
std::pair<double, bool> timed(serve::Service& svc, const std::string& line) {
  const double t0 = now_s();
  const std::string resp = svc.handle_line(line);
  const double dt = now_s() - t0;
  const support::JsonValue v = support::json_parse(resp);
  const support::JsonValue* ok = v.find("ok");
  if (ok == nullptr || !ok->boolean) {
    std::fprintf(stderr, "bench_serve: request failed: %s\n", resp.c_str());
    std::exit(1);
  }
  const support::JsonValue* cached = v.find("cached");
  return {dt, cached != nullptr && cached->boolean};
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("bench_serve",
                          "cold vs warm latency of served what-if queries");
  args.add_flag("quick", "reduced run for smoke testing (bar not enforced)");
  args.add_string("json_out", "", "write BENCH_serve.json here");
  if (!args.parse(argc, argv)) return 1;
  const bool quick = args.get_flag("quick");

  bench::print_banner("serve", "cached what-if query daemon",
                      quick ? "quick: conv 8r/30s; 10x bar not enforced"
                            : "conv 64r/200s; warm >= 10x faster than cold");

  const trace::TraceFile tf =
      quick ? record_convolution(8, 30) : record_convolution(64, 200);
  const std::string path = "bench_serve_trace.mpstz";
  {
    const std::vector<std::uint8_t> packed = codec::compress(tf);
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(packed.data()),
              static_cast<std::streamsize>(packed.size()));
    if (!out) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n", path.c_str());
      return 1;
    }
  }

  struct Query {
    const char* name;
    std::string line;
  };
  const std::vector<Query> queries = {
      {"replay",
       "{\"id\":1,\"op\":\"replay\",\"trace\":\"" + path +
           "\",\"params\":{\"model\":\"knl\",\"format\":\"csv\"}}"},
      {"sweep",
       "{\"id\":2,\"op\":\"sweep\",\"trace\":\"" + path +
           "\",\"params\":{\"latency_scales\":[1,2,4]}}"},
      {"analyze", "{\"id\":3,\"op\":\"analyze\",\"trace\":\"" + path + "\"}"},
  };

  bench::BenchJson json("recorded", 0x5EED);
  bool ok = true;
  for (const Query& q : queries) {
    serve::Service svc;  // fresh service per query: cold includes the load
    const auto [cold_s, cold_cached] = timed(svc, q.line);
    // Median-of-5 warm samples — single warm hits are timer-noise bound.
    double warm_s = 0.0;
    for (int i = 0; i < 5; ++i) {
      const auto [w, warm_cached] = timed(svc, q.line);
      if (!warm_cached || cold_cached) {
        std::fprintf(stderr, "bench_serve: cache contract violated\n");
        return 1;
      }
      warm_s += w;
    }
    warm_s /= 5.0;
    const double speedup = warm_s > 0 ? cold_s / warm_s : 0.0;
    std::printf("%-8s cold %8.3f ms   warm %8.4f ms   speedup %8.1fx\n",
                q.name, cold_s * 1e3, warm_s * 1e3, speedup);
    json.add(std::string("serve/") + q.name, cold_s,
             {{"cold_ms", cold_s * 1e3},
              {"warm_ms", warm_s * 1e3},
              {"warm_speedup", speedup}});
    if (!quick && speedup < 10.0) {
      std::fprintf(stderr,
                   "bench_serve: %s cached speedup %.1fx is below the 10x "
                   "bar\n",
                   q.name, speedup);
      ok = false;
    }
  }
  std::remove(path.c_str());
  if (!json.write(args.get_string("json_out"))) return 1;
  return ok ? 0 : 1;
}
