// Section 3 — "Distributed-Memory Constraints", quantified two ways:
//
//  (1) analytically: the halo-cell ratio vs local domain size for 1D/2D/3D
//      decompositions (the paper: "higher dimension domain decompositions
//      require larger local domains to minimize this memory overhead"),
//      and the minimum local size meeting a memory-overhead budget;
//
//  (2) empirically: the convolution benchmark run with its 1D row split vs
//      the 2D tile split at the same rank count — halo *bytes* per rank
//      shrink with the 2D split while the neighbour count grows, and the
//      HALO section time shows where the trade lands on the Nehalem model.
#include <cstdio>
#include <map>

#include "apps/convolution/convolution.hpp"
#include "common.hpp"
#include "core/sections/runtime.hpp"
#include "core/speedup/halo_model.hpp"
#include "mpisim/session.hpp"
#include "profiler/section_profiler.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace mpisect;

struct Measured {
  double halo_per_proc = 0.0;
  double walltime = 0.0;
  std::size_t halo_bytes_interior = 0;
};

Measured run_conv(int dims, int p, int steps) {
  mpisim::WorldOptions opts;
  opts.machine = mpisim::MachineModel::nehalem_cluster();
  const auto world_ptr =
      mpisim::Session(p, opts).world_builder().build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  apps::conv::ConvolutionConfig cfg;
  cfg.steps = steps;
  cfg.decomp_dims = dims;
  cfg.full_fidelity = false;
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  Measured m;
  m.halo_per_proc =
      prof.totals_for(apps::conv::labels::kHalo).mean_per_process;
  m.walltime = world.elapsed();
  const std::size_t pixel =
      apps::conv::kChannels * sizeof(double);
  if (dims == 2) {
    const apps::conv::GridDecomposition grid(cfg.width, cfg.height, p);
    // An interior rank (middle of the grid) carries the full neighbour set.
    m.halo_bytes_interior = grid.halo_bytes(p / 2, pixel);
  } else {
    m.halo_bytes_interior = 2u * static_cast<std::size_t>(cfg.width) * pixel;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("bench_sec3_halo",
                          "Reproduce the paper's Sec. 3 halo-cell analysis");
  args.add_int("steps", 300, "convolution steps for the measured part");
  args.add_int("ranks", 64, "rank count for the 1D-vs-2D comparison");
  args.add_flag("quick", "reduced run");
  if (!args.parse(argc, argv)) return 1;
  const bool quick = args.get_flag("quick");
  const int steps = quick ? 40 : static_cast<int>(args.get_int("steps"));
  const int p = quick ? 16 : static_cast<int>(args.get_int("ranks"));

  bench::print_banner("Sec. 3 — halo-cell ratio and the case for MPI+X",
                      "Besnard et al., ICPPW'17, Section 3",
                      "analytic ratios + measured 1D vs 2D convolution");

  // ---- (1) analytic halo ratios -------------------------------------------
  std::printf("halo cells stored / interior cells (1-cell halo):\n");
  support::TextTable ratios;
  ratios.set_header({"local edge n", "2D data, 1D split", "2D data, 2D split",
                     "3D data, 3D split"});
  for (const std::int64_t n : {8, 16, 32, 64, 128, 256}) {
    ratios.add_row(
        {std::to_string(n),
         support::fmt_double(speedup::halo_stats(n, 2, 1).ratio * 100.0, 2) +
             " %",
         support::fmt_double(speedup::halo_stats(n, 2, 2).ratio * 100.0, 2) +
             " %",
         support::fmt_double(speedup::halo_stats(n, 3, 3).ratio * 100.0, 2) +
             " %"});
  }
  std::fputs(ratios.render().c_str(), stdout);

  std::printf(
      "\nminimum local edge to keep halo memory overhead under budget:\n");
  support::TextTable budget;
  budget.set_header({"budget", "2D/1D split", "2D/2D split", "3D/3D split",
                     "cells/rank at 3D edge"});
  for (const double b : {0.20, 0.10, 0.05, 0.02}) {
    const auto n3 = speedup::min_edge_for_budget(3, 3, b);
    budget.add_row(
        {support::fmt_double(b * 100.0, 0) + " %",
         std::to_string(speedup::min_edge_for_budget(2, 1, b)),
         std::to_string(speedup::min_edge_for_budget(2, 2, b)),
         std::to_string(n3),
         support::fmt_auto(static_cast<double>(n3) * n3 * n3)});
  }
  std::fputs(budget.render().c_str(), stdout);
  std::printf(
      "-> a 3D code needs ~10^6 cells per rank to amortize its halos; with\n"
      "   many-core nodes shrinking memory per rank, only threads inside a\n"
      "   fat rank keep the surface/volume ratio down. That is the paper's\n"
      "   Sec. 3 argument for the compulsory MPI+X shift.\n");

  // ---- (2) measured 1D vs 2D convolution ----------------------------------
  std::printf("\nmeasured on the convolution benchmark (p=%d, %d steps):\n",
              p, steps);
  const Measured m1 = run_conv(1, p, steps);
  const Measured m2 = run_conv(2, p, steps);
  support::TextTable meas;
  meas.set_header({"decomposition", "halo bytes/rank/step",
                   "HALO time/proc (s)", "walltime (s)"});
  meas.set_align({support::TextTable::Align::Left,
                  support::TextTable::Align::Right,
                  support::TextTable::Align::Right,
                  support::TextTable::Align::Right});
  meas.add_row({"1D rows",
                support::fmt_bytes(static_cast<double>(m1.halo_bytes_interior)),
                support::fmt_double(m1.halo_per_proc, 3),
                support::fmt_double(m1.walltime, 2)});
  meas.add_row({"2D tiles",
                support::fmt_bytes(static_cast<double>(m2.halo_bytes_interior)),
                support::fmt_double(m2.halo_per_proc, 3),
                support::fmt_double(m2.walltime, 2)});
  std::fputs(meas.render().c_str(), stdout);
  std::printf(
      "\nreading: the 2D split ships fewer bytes per rank (perimeter, not\n"
      "full rows) at the price of 8 neighbours instead of 2 — more messages\n"
      "into the jittery fabric. The section outline prices both effects.\n");
  return 0;
}
