#include "analysis/analyzer.hpp"

#include <array>
#include <cstdio>

#include "mpisim/hooks.hpp"
#include "mpisim/message.hpp"

namespace mpisect::analysis {

namespace {

std::string fmt_t(double t) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.6f", t);
  return buf.data();
}

std::string tag_str(int tag) {
  return tag == mpisim::kAnyTag ? std::string("ANY_TAG") : std::to_string(tag);
}

std::string src_str(int src) {
  return src == mpisim::kAnySource ? std::string("ANY_SOURCE")
                                   : std::to_string(src);
}

/// "recv-post #3 (src=ANY_SOURCE, tag=5)" — the site every race / latent
/// deadlock diagnostic anchors on.
std::string recv_site(const RecvInfo& rv) {
  return "recv-post #" + std::to_string(rv.post_idx) +
         " (src=" + src_str(rv.post_src) + ", tag=" + tag_str(rv.post_tag) +
         ")";
}

double recv_completion_time(const InterpResult& in, const RecvInfo& rv) {
  if (!rv.completed) return 0.0;
  return in.times[static_cast<std::size_t>(rv.rank)][rv.wait_idx].t;
}

std::string alt_str(const AltSender& a) {
  return "rank " + std::to_string(a.src) + " (seq " + std::to_string(a.seq) +
         ", tag " + std::to_string(a.tag) + ", posted t=" + fmt_t(a.t_post) +
         ")";
}

checker::Diagnostic race_diag(const InterpResult& in, const RaceFinding& rf) {
  const RecvInfo& rv = in.recvs[rf.recv_slot];
  checker::Diagnostic d;
  d.category = checker::Category::MessageRace;
  d.severity = checker::Severity::Warning;
  d.rank = rv.rank;
  d.comm_context = rv.comm;
  d.t_virtual = recv_completion_time(in, rv);
  d.site = recv_site(rv);
  d.message = "recorded match rank " + std::to_string(rv.matched_src) +
              " (seq " + std::to_string(rv.seq) + "); " +
              std::to_string(rf.alternates.size()) +
              " concurrent alternate sender(s): ";
  for (std::size_t i = 0; i < rf.alternates.size(); ++i) {
    if (i > 0) d.message += ", ";
    d.message += alt_str(rf.alternates[i]);
  }
  return d;
}

checker::Diagnostic latent_diag(const InterpResult& in,
                                const LatentDeadlock& ld) {
  const RecvInfo& rv = in.recvs[ld.recv_slot];
  checker::Diagnostic d;
  d.category = checker::Category::LatentDeadlock;
  d.severity = checker::Severity::Error;
  d.rank = rv.rank;
  d.comm_context = rv.comm;
  d.t_virtual = recv_completion_time(in, rv);
  d.site = recv_site(rv);
  d.message = "forcing the match with " + alt_str(ld.forced) +
              " wedges the run after " + std::to_string(ld.events_replayed) +
              " events:";
  for (const auto& cyc : ld.analysis.cycles) {
    d.message += " wait-for cycle";
    for (const int r : cyc.ranks) d.message += " " + std::to_string(r) + " ->";
    d.message += " " + std::to_string(cyc.ranks.empty() ? -1 : cyc.ranks[0]);
    d.message += ";";
  }
  for (const auto& [waiter, peer] : ld.analysis.orphans) {
    d.message += " orphaned wait rank " + std::to_string(waiter) +
                 " -> finished rank " + std::to_string(peer) + ";";
  }
  std::string blocked;
  for (std::size_t r = 0; r < ld.states.size(); ++r) {
    const auto& st = ld.states[r];
    if (st.phase != checker::RankWaitState::Phase::Blocked) continue;
    if (!blocked.empty()) blocked += ", ";
    blocked += "rank " + std::to_string(r) + " in " +
               mpisim::mpi_call_name(st.call);
  }
  if (!blocked.empty()) d.message += " (" + blocked + ")";
  return d;
}

}  // namespace

std::size_t AnalysisResult::error_count() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == checker::Severity::Error) ++n;
  }
  return n;
}

std::size_t AnalysisResult::finding_count() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity != checker::Severity::Info) ++n;
  }
  return n;
}

AnalysisResult analyze(const trace::TraceFile& tf, const AnalyzerOptions& opts) {
  AnalysisResult res;
  res.app = tf.header.app;
  res.nranks = tf.header.nranks;
  res.total_events = tf.total_events();
  res.labels = tf.labels;
  res.interp = interpret(tf);

  if ((opts.races || opts.latent) && !res.interp.envelopes_recorded) {
    checker::Diagnostic d;
    d.category = checker::Category::MessageRace;
    d.severity = checker::Severity::Info;
    d.site = "trace header";
    d.message =
        "posted receive envelopes not recorded (trace format < v3); "
        "message-race and latent-deadlock analysis skipped";
    res.diagnostics.push_back(std::move(d));
  }

  if (opts.races || opts.latent) {
    res.races = find_races(res.interp);
  }
  if (opts.latent && !res.races.empty()) {
    res.latent = find_latent_deadlocks(tf, res.interp, res.races);
  }
  if (opts.critical_path) {
    res.critical_path = extract_critical_path(res.interp);
  }

  if (opts.races) {
    for (const auto& rf : res.races) {
      res.diagnostics.push_back(race_diag(res.interp, rf));
    }
  }
  for (const auto& ld : res.latent) {
    res.diagnostics.push_back(latent_diag(res.interp, ld));
  }
  return res;
}

void fill_telemetry(const AnalysisResult& res, telemetry::Registry& reg) {
  using telemetry::Scope;
  const auto races = reg.add_counter(
      "analysis.races", Scope::Rank,
      "message races observed at the receiving rank", "findings");
  const auto latent = reg.add_counter(
      "analysis.latent_deadlocks", Scope::Rank,
      "alternate matchings that wedge, at the redirected receive's rank",
      "findings");
  const auto onpath = reg.add_counter(
      "analysis.onpath_seconds", Scope::Rank,
      "critical-path virtual seconds charged to the rank", "seconds");
  const auto slack = reg.add_counter(
      "analysis.slack_seconds", Scope::Rank,
      "makespan minus the rank's finish time", "seconds");
  const auto pev = reg.add_counter("analysis.path_events", Scope::Process,
                                   "events on the critical path", "events");
  const auto hops = reg.add_counter("analysis.path_hops", Scope::Process,
                                    "cross-rank hops on the critical path",
                                    "hops");
  for (const auto& rf : res.races) {
    reg.inc(races, res.interp.recvs[rf.recv_slot].rank);
  }
  for (const auto& ld : res.latent) {
    reg.inc(latent, res.interp.recvs[ld.recv_slot].rank);
  }
  const auto& cp = res.critical_path;
  for (std::size_t r = 0; r < cp.rank_onpath.size(); ++r) {
    reg.inc(onpath, static_cast<int>(r), cp.rank_onpath[r]);
    reg.inc(slack, static_cast<int>(r), cp.rank_slack[r]);
  }
  reg.inc(pev, -1, static_cast<double>(cp.length));
  reg.inc(hops, -1, static_cast<double>(cp.cross_rank_hops));
}

}  // namespace mpisect::analysis
