// Offline trace analyzer — the orchestrator behind mpisect-analyze.
//
// One pass over a recorded .mpst trace, no re-execution:
//
//   interpret()               recorded-frame times, binding predecessors,
//                             vector clocks, channel/receive databases
//   find_races()              ISP/MUST-style match sets per wildcard recv
//   find_latent_deadlocks()   greedy re-matching of every alternate match
//   extract_critical_path()   longest happens-before chain + Eq. 6-style
//                             per-section on-path attribution
//
// Findings are lowered into checker::Diagnostic (categories MESSAGE_RACE /
// LATENT_DEADLOCK) so mpisect-analyze and mpisect-check share one report
// schema, one JSON shape, and one summary line format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/critical_path.hpp"
#include "analysis/interp.hpp"
#include "analysis/latent.hpp"
#include "analysis/races.hpp"
#include "checker/diagnostics.hpp"
#include "telemetry/registry.hpp"
#include "trace/file.hpp"

namespace mpisect::analysis {

struct AnalyzerOptions {
  bool races = true;          ///< compute match sets (needs v3 envelopes)
  bool latent = true;         ///< simulate alternate matchings (needs races)
  bool critical_path = true;  ///< walk binding predecessors
};

struct AnalysisResult {
  // Trace provenance (copied so renderers need only the result).
  std::string app;
  int nranks = 0;
  std::uint64_t total_events = 0;
  std::vector<std::string> labels;  ///< section label id -> name

  InterpResult interp;
  std::vector<RaceFinding> races;
  std::vector<LatentDeadlock> latent;
  CriticalPath critical_path;

  /// Races and latent deadlocks lowered to the checker's diagnostic
  /// vocabulary (plus one Info entry when a pre-v3 trace forced the
  /// wildcard passes to be skipped). Emission order is deterministic:
  /// races by (rank, post), latent deadlocks by (recv_slot, src, seq).
  std::vector<checker::Diagnostic> diagnostics;

  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t finding_count() const;  ///< Warning + Error
};

/// Run the configured passes. Throws trace::TraceError on structurally
/// inconsistent traces.
[[nodiscard]] AnalysisResult analyze(const trace::TraceFile& tf,
                                     const AnalyzerOptions& opts = {});

/// Register and fill per-rank analysis counters on `reg` (sized
/// Registry(result.nranks)): analysis.races, analysis.latent_deadlocks,
/// analysis.onpath_seconds, analysis.slack_seconds and the process-scope
/// analysis.path_events / analysis.path_hops.
void fill_telemetry(const AnalysisResult& res, telemetry::Registry& reg);

}  // namespace mpisect::analysis
