#include "analysis/report.hpp"

#include <array>
#include <cstdio>

#include "checker/report.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace mpisect::analysis {

namespace {

/// Shortest-round-trip double: the JSON consumer re-reads the exact bits,
/// so "critical-path total == replay makespan" is checkable post-export.
std::string fmt_exact(double v) {
  std::array<char, 40> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", v);
  return buf.data();
}

std::string fmt_sec(double v) {
  std::array<char, 40> buf{};
  std::snprintf(buf.data(), buf.size(), "%.9f", v);
  return buf.data();
}

std::string fmt_pct(double v) {
  std::array<char, 40> buf{};
  std::snprintf(buf.data(), buf.size(), "%.1f%%", v * 100.0);
  return buf.data();
}

std::string section_name(const AnalysisResult& res, std::uint32_t label) {
  if (label == kNoSection) return "(none)";
  if (label < res.labels.size()) return res.labels[label];
  return "label#" + std::to_string(label);
}

double onpath_total(const CriticalPath& cp) {
  double s = 0.0;
  for (const auto& sec : cp.sections) s += sec.seconds;
  return s > 0.0 ? s : 1.0;  // avoid 0/0 on empty traces
}

}  // namespace

std::string render_text(const AnalysisResult& res) {
  std::string out = "trace: app=" + res.app +
                    " ranks=" + std::to_string(res.nranks) +
                    " events=" + std::to_string(res.total_events) + "\n";
  if (!res.diagnostics.empty()) {
    out += checker::render_text(res.diagnostics);
  }
  const auto& cp = res.critical_path;
  if (cp.end_rank >= 0) {
    out += "critical path: " + std::to_string(cp.length) + " event(s), " +
           std::to_string(cp.cross_rank_hops) + " cross-rank hop(s), rank " +
           std::to_string(cp.start_rank) + " -> rank " +
           std::to_string(cp.end_rank) + ", t_total=" + fmt_sec(cp.t_total) +
           " s (makespan " + fmt_sec(res.interp.makespan) + " s)\n";
    support::TextTable table;
    table.set_header({"comm", "section", "on_path_s", "hops", "share"});
    table.set_align({support::TextTable::Align::Right,
                     support::TextTable::Align::Left,
                     support::TextTable::Align::Right,
                     support::TextTable::Align::Right,
                     support::TextTable::Align::Right});
    const double total = onpath_total(cp);
    for (const auto& sec : cp.sections) {
      table.add_row({std::to_string(sec.comm), section_name(res, sec.label),
                     fmt_sec(sec.seconds), std::to_string(sec.hops),
                     fmt_pct(sec.seconds / total)});
    }
    out += table.render();
  }
  out += render_summary(res);
  out += "\n";
  return out;
}

std::string render_csv(const AnalysisResult& res) {
  return checker::render_csv(res.diagnostics);
}

std::string render_json(const AnalysisResult& res) {
  std::string diags = checker::render_json(res.diagnostics);
  while (!diags.empty() && (diags.back() == '\n' || diags.back() == ' ')) {
    diags.pop_back();
  }
  const auto& cp = res.critical_path;
  std::string out = "{\n";
  out += "  \"app\": \"" + support::json_escape(res.app) + "\",\n";
  out += "  \"nranks\": " + std::to_string(res.nranks) + ",\n";
  out += "  \"total_events\": " + std::to_string(res.total_events) + ",\n";
  out += "  \"makespan\": " + fmt_exact(res.interp.makespan) + ",\n";
  out += "  \"diagnostics\": " + diags + ",\n";
  out += "  \"critical_path\": {\n";
  out += "    \"t_total\": " + fmt_exact(cp.t_total) + ",\n";
  out += "    \"t_start\": " + fmt_exact(cp.t_start) + ",\n";
  out += "    \"start_rank\": " + std::to_string(cp.start_rank) + ",\n";
  out += "    \"end_rank\": " + std::to_string(cp.end_rank) + ",\n";
  out += "    \"length\": " + std::to_string(cp.length) + ",\n";
  out += "    \"cross_rank_hops\": " + std::to_string(cp.cross_rank_hops) +
         ",\n";
  out += "    \"sections\": [";
  for (std::size_t i = 0; i < cp.sections.size(); ++i) {
    const auto& sec = cp.sections[i];
    out += i > 0 ? ", " : "";
    out += "{\"comm\": " + std::to_string(sec.comm) + ", \"section\": \"" +
           support::json_escape(section_name(res, sec.label)) +
           "\", \"seconds\": " + fmt_exact(sec.seconds) +
           ", \"hops\": " + std::to_string(sec.hops) + "}";
  }
  out += "],\n";
  out += "    \"rank_onpath\": [";
  for (std::size_t r = 0; r < cp.rank_onpath.size(); ++r) {
    out += r > 0 ? ", " : "";
    out += fmt_exact(cp.rank_onpath[r]);
  }
  out += "],\n";
  out += "    \"rank_slack\": [";
  for (std::size_t r = 0; r < cp.rank_slack.size(); ++r) {
    out += r > 0 ? ", " : "";
    out += fmt_exact(cp.rank_slack[r]);
  }
  out += "]\n  }\n}\n";
  return out;
}

std::string render_summary(const AnalysisResult& res) {
  return checker::render_summary(res.diagnostics, "mpisect-analyze");
}

}  // namespace mpisect::analysis
