#include "analysis/latent.hpp"

#include <map>
#include <utility>

#include "checker/comm_registry.hpp"
#include "mpisim/message.hpp"

namespace mpisect::analysis {

namespace {

using trace::Event;
using trace::EventKind;

bool tag_compatible(int posted_tag, int tag) {
  if (posted_tag == mpisim::kAnyTag) return tag < mpisim::kInternalTagBase;
  return posted_tag == tag;
}

/// One deposited send during the simulation.
struct PendingSend {
  int src = -1;
  std::uint64_t seq = 0;
  int tag = 0;
  bool rendezvous = false;
  bool reserved = false;  ///< held for the forced receive only
  bool matched = false;
};

/// One posted receive during the simulation.
struct PostedRecv {
  std::size_t recv_slot = 0;  ///< InterpResult::recvs index
  int comm = 0;
  int post_src = 0;
  int post_tag = 0;
  bool forced = false;
  bool matched = false;
};

struct SyncPoint {
  int members = 0;
  int arrived = 0;
};

struct SimRank {
  std::size_t cursor = 0;
  /// Program-order send identities for SendWait backrefs.
  std::vector<std::pair<ChannelKey, std::uint64_t>> sends;
  std::vector<std::size_t> posted;  ///< posted-receive indices, post order
  std::map<int, std::uint64_t> sync_ordinal;
  std::map<int, std::uint64_t> sync_done;
  bool sync_entered = false;
  bool done = false;
};

/// Untimed greedy re-matching of the event skeleton with one forced pair.
struct Sim {
  const trace::TraceFile& tf;
  const InterpResult& in;
  std::size_t forced_slot;
  const AltSender& forced;

  std::vector<SimRank> ranks;
  std::map<ChannelKey, std::vector<PendingSend>> channels;
  std::vector<PostedRecv> posts;
  std::map<std::pair<int, std::uint64_t>, SyncPoint> syncs;
  /// Nonblocking-collective rounds keyed by (comm, generation): the post
  /// never blocks, the completion waits for every member's post.
  std::map<std::pair<int, std::uint64_t>, SyncPoint> nbc;
  std::vector<std::vector<std::size_t>> slot_index;  ///< rank -> recv slots
  std::uint64_t advanced = 0;

  Sim(const trace::TraceFile& t, const InterpResult& i, std::size_t slot,
      const AltSender& alt)
      : tf(t), in(i), forced_slot(slot), forced(alt) {
    ranks.resize(tf.ranks.size());
    slot_index.resize(tf.ranks.size());
    for (std::size_t k = 0; k < in.recvs.size(); ++k) {
      slot_index[static_cast<std::size_t>(in.recvs[k].rank)].push_back(k);
    }
  }

  PendingSend* find_send(const ChannelKey& key, std::uint64_t seq) {
    const auto it = channels.find(key);
    if (it == channels.end()) return nullptr;
    for (PendingSend& ps : it->second) {
      if (ps.seq == seq) return &ps;
    }
    return nullptr;
  }

  /// Greedy match policy: the forced receive takes only its reserved
  /// send; everything else prefers its recorded sender, then the lowest
  /// (src, seq) pending send — deterministic, so reports are byte-stable.
  bool try_match(int dst, PostedRecv& pr) {
    if (pr.forced) {
      PendingSend* ps =
          find_send(ChannelKey{pr.comm, forced.src, dst}, forced.seq);
      if (ps == nullptr || ps->matched) return false;
      ps->matched = true;
      pr.matched = true;
      return true;
    }
    auto eligible = [&](const PendingSend& ps) {
      return !ps.matched && !ps.reserved &&
             tag_compatible(pr.post_tag, ps.tag);
    };
    const RecvInfo& ri = in.recvs[pr.recv_slot];
    if (ri.matched_src >= 0) {
      PendingSend* ps =
          find_send(ChannelKey{pr.comm, ri.matched_src, dst}, ri.seq);
      if (ps != nullptr && eligible(*ps)) {
        ps->matched = true;
        pr.matched = true;
        return true;
      }
    }
    const bool any_src = pr.post_src == mpisim::kAnySource;
    PendingSend* best = nullptr;
    for (auto& [key, queue] : channels) {
      if (key.comm != pr.comm || key.dst != dst) continue;
      if (!any_src && key.src != pr.post_src) continue;
      for (PendingSend& ps : queue) {
        // Non-overtaking applies among matching envelopes only: consumed,
        // reserved, and tag-mismatched sends are scanned past.
        if (!eligible(ps)) continue;
        if (best == nullptr || ps.src < best->src ||
            (ps.src == best->src && ps.seq < best->seq)) {
          best = &ps;
        }
        break;  // FIFO: first compatible live send per channel
      }
    }
    if (best == nullptr) return false;
    best->matched = true;
    pr.matched = true;
    return true;
  }

  void match_rank(int dst) {
    for (const std::size_t p : ranks[static_cast<std::size_t>(dst)].posted) {
      if (!posts[p].matched) (void)try_match(dst, posts[p]);
    }
  }

  /// Advance rank r by one event; false = blocked (or finished).
  bool step(int r) {
    SimRank& st = ranks[static_cast<std::size_t>(r)];
    const auto& events = tf.ranks[static_cast<std::size_t>(r)].events;
    if (st.cursor >= events.size()) {
      st.done = true;
      return false;
    }
    const Event& ev = events[st.cursor];
    switch (ev.kind) {
      case EventKind::SendPost: {
        const ChannelKey key{ev.comm, r, ev.peer};
        const RecvInfo& fr = in.recvs[forced_slot];
        const bool reserved = r == forced.src && ev.seq == forced.seq &&
                              ev.comm == fr.comm && ev.peer == fr.rank;
        channels[key].push_back(PendingSend{
            r, ev.seq, ev.tag,
            ev.bytes > tf.header.machine.net.eager_threshold, reserved,
            false});
        st.sends.emplace_back(key, ev.seq);
        match_rank(ev.peer);
        break;
      }
      case EventKind::SendWait: {
        if (ev.op >= st.sends.size()) return false;  // corrupt backref
        const auto& [key, seq] = st.sends[st.sends.size() - 1 - ev.op];
        const PendingSend* ps = find_send(key, seq);
        if (ps != nullptr && ps->rendezvous && !ps->matched) return false;
        break;
      }
      case EventKind::RecvPost: {
        PostedRecv pr;
        pr.recv_slot =
            slot_index[static_cast<std::size_t>(r)][st.posted.size()];
        const RecvInfo& ri = in.recvs[pr.recv_slot];
        pr.comm = ri.comm;
        pr.post_src = ri.post_src;
        pr.post_tag = ri.post_tag;
        pr.forced = pr.recv_slot == forced_slot;
        posts.push_back(pr);
        st.posted.push_back(posts.size() - 1);
        match_rank(r);
        break;
      }
      case EventKind::RecvWait: {
        if (ev.seq >= st.posted.size()) return false;  // corrupt backref
        const std::size_t p = st.posted[st.posted.size() - 1 - ev.seq];
        if (!posts[p].matched) return false;
        break;
      }
      case EventKind::Probe: {
        // Pre-v3 probes carry no posted envelope; fall back to the
        // recorded matched identity.
        const bool recorded = ev.post_src != Event::kNotRecorded;
        const int post_src = recorded ? ev.post_src : ev.peer;
        const int post_tag = recorded ? ev.tag : mpisim::kAnyTag;
        bool found = false;
        for (const auto& [key, queue] : channels) {
          if (key.comm != ev.comm || key.dst != r) continue;
          if (post_src != mpisim::kAnySource && key.src != post_src) {
            continue;
          }
          for (const PendingSend& ps : queue) {
            if (!ps.matched && !ps.reserved &&
                tag_compatible(post_tag, ps.tag)) {
              found = true;
              break;
            }
          }
          if (found) break;
        }
        if (!found) return false;
        break;
      }
      case EventKind::CommSync: {
        const std::uint64_t ordinal = st.sync_ordinal.contains(ev.comm)
                                          ? st.sync_ordinal.at(ev.comm)
                                          : 0;
        SyncPoint& sy = syncs[{ev.comm, ordinal}];
        if (sy.members == 0) sy.members = ev.peer;
        if (!st.sync_entered) {
          ++sy.arrived;
          st.sync_entered = true;
        }
        if (sy.arrived < sy.members) return false;
        st.sync_entered = false;
        st.sync_ordinal[ev.comm] = ordinal + 1;
        ++st.sync_done[ev.comm];
        break;
      }
      case EventKind::NbcPost: {
        SyncPoint& nb = nbc[{ev.comm, ev.seq}];
        if (nb.members == 0) nb.members = ev.peer;
        ++nb.arrived;
        break;
      }
      case EventKind::NbcComplete: {
        const auto it = nbc.find({ev.comm, ev.seq});
        if (it == nbc.end() || it->second.arrived < it->second.members) {
          return false;
        }
        break;
      }
      case EventKind::CollBegin:
      case EventKind::CollEnd:
      case EventKind::SectionEnter:
      case EventKind::SectionExit:
      case EventKind::Pcontrol:
        break;
      case EventKind::Finalize:
        st.done = true;
        break;
    }
    ++st.cursor;
    ++advanced;
    return true;
  }

  /// Run to completion or quiescence; true = everyone finished.
  bool run() {
    for (;;) {
      bool progress = false;
      bool all_done = true;
      for (int r = 0; r < static_cast<int>(ranks.size()); ++r) {
        if (ranks[static_cast<std::size_t>(r)].done) continue;
        while (step(r)) progress = true;
        if (!ranks[static_cast<std::size_t>(r)].done) all_done = false;
      }
      if (all_done) return true;
      if (!progress) return false;
    }
  }

  /// Blocked-rank snapshot in checker::RankWaitState form.
  std::vector<checker::RankWaitState> snapshot() const {
    std::vector<checker::RankWaitState> states(ranks.size());
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      const SimRank& st = ranks[r];
      auto& ws = states[r];
      for (const auto& [ctx, n] : st.sync_done) ws.coll_done[ctx] = n;
      if (st.done) {
        ws.phase = checker::RankWaitState::Phase::Finished;
        continue;
      }
      ws.phase = checker::RankWaitState::Phase::Blocked;
      const auto& events = tf.ranks[r].events;
      const Event& ev = events[st.cursor];
      // Observation time: the recorded clock of the last completed event.
      ws.t_virtual = st.cursor > 0 ? in.times[r][st.cursor - 1].t
                                   : tf.ranks[r].t0;
      switch (ev.kind) {
        case EventKind::RecvWait: {
          if (ev.seq >= st.posted.size()) {
            ws.peer_world = -1;
            break;
          }
          const std::size_t p = st.posted[st.posted.size() - 1 - ev.seq];
          const PostedRecv& pr = posts[p];
          ws.call = mpisim::MpiCall::Recv;
          ws.comm_context = pr.comm;
          // The forced receive waits specifically for its reserved sender.
          ws.peer_world = pr.forced ? forced.src : pr.post_src;
          break;
        }
        case EventKind::SendWait: {
          if (ev.op >= st.sends.size()) {
            ws.peer_world = -1;
            break;
          }
          const auto& [key, seq] = st.sends[st.sends.size() - 1 - ev.op];
          ws.call = mpisim::MpiCall::Wait;
          ws.comm_context = key.comm;
          ws.peer_world = key.dst;
          break;
        }
        case EventKind::Probe: {
          ws.call = mpisim::MpiCall::Probe;
          ws.comm_context = ev.comm;
          ws.peer_world = ev.post_src == Event::kNotRecorded ? ev.peer
                                                             : ev.post_src;
          break;
        }
        case EventKind::CommSync: {
          ws.call = mpisim::MpiCall::CommSplit;
          ws.collective = true;
          ws.comm_context = ev.comm;
          ws.coll_ordinal = st.sync_ordinal.contains(ev.comm)
                                ? st.sync_ordinal.at(ev.comm)
                                : 0;
          break;
        }
        case EventKind::NbcComplete: {
          ws.call = mpisim::MpiCall::Wait;
          ws.collective = true;
          ws.comm_context = ev.comm;
          ws.coll_ordinal = ev.seq;
          break;
        }
        default:
          // A non-blocking event can only be "stuck" on a corrupt backref.
          ws.call = mpisim::MpiCall::Wait;
          ws.comm_context = -1;
          ws.peer_world = -1;
          break;
      }
    }
    return states;
  }
};

/// CommRegistry holds a mutex (non-movable), so it is filled in place.
void fill_registry(const InterpResult& in, checker::CommRegistry& comms) {
  for (const auto& [ctx, members] : in.comm_members) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      mpisim::CommLifecycle info;
      info.context = ctx;
      info.parent_context = -1;
      info.rank = static_cast<int>(i);
      info.size = static_cast<int>(members.size());
      info.world_ranks = &members;
      comms.on_create(info, 0.0);
    }
  }
}

}  // namespace

std::vector<LatentDeadlock> find_latent_deadlocks(
    const trace::TraceFile& tf, const InterpResult& in,
    const std::vector<RaceFinding>& races) {
  std::vector<LatentDeadlock> out;
  if (races.empty()) return out;
  checker::CommRegistry comms;
  fill_registry(in, comms);
  for (const RaceFinding& race : races) {
    for (const AltSender& alt : race.alternates) {
      Sim sim(tf, in, race.recv_slot, alt);
      if (sim.run()) continue;  // alternate matching still completes
      LatentDeadlock ld;
      ld.recv_slot = race.recv_slot;
      ld.forced = alt;
      ld.states = sim.snapshot();
      ld.analysis = checker::WaitGraph::analyze(ld.states, comms);
      ld.events_replayed = sim.advanced;
      out.push_back(std::move(ld));
    }
  }
  return out;
}

}  // namespace mpisect::analysis
