// Latent-deadlock detection: re-match the trace along an alternate path.
//
// For every message race (receive r, alternate sender s') the matching
// that *didn't* happen is simulated: an untimed greedy re-execution of the
// event skeleton in which r is forced to match s' and every other receive
// matches greedily (recorded sender first, then lowest (src, seq) — the
// deterministic tie-break keeps reports byte-identical across runs).
// Sends, receives, probes and comm-sync barriers block exactly as the
// runtime would; if the simulation reaches a state where no rank can
// advance, the blocked ranks are snapshotted as checker::RankWaitState and
// handed to the checker's WaitGraph — the same cycle/orphan analysis the
// runtime deadlock detector uses — so a matching that would have
// deadlocked is reported even though the recorded run completed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/interp.hpp"
#include "analysis/races.hpp"
#include "checker/waitgraph.hpp"

namespace mpisect::analysis {

/// Outcome of simulating one alternate matching.
struct LatentDeadlock {
  std::size_t recv_slot = 0;   ///< the redirected receive
  AltSender forced;            ///< the sender it was forced to match
  /// Wait-for cycles / orphaned waits found in the stuck state.
  checker::WaitGraph::Analysis analysis;
  /// Blocked-rank snapshot (for reporting which call each rank sat in).
  std::vector<checker::RankWaitState> states;
  std::uint64_t events_replayed = 0;  ///< progress before the stall
};

/// Simulate every alternate matching of every race; return those that
/// wedge. Deterministic: results ordered by (recv_slot, forced src, seq).
[[nodiscard]] std::vector<LatentDeadlock> find_latent_deadlocks(
    const trace::TraceFile& tf, const InterpResult& in,
    const std::vector<RaceFinding>& races);

}  // namespace mpisect::analysis
