#include "analysis/critical_path.hpp"

#include <algorithm>
#include <map>

namespace mpisect::analysis {

CriticalPath extract_critical_path(const InterpResult& in) {
  CriticalPath cp;
  cp.rank_slack.assign(in.final_times.size(), 0.0);
  cp.rank_onpath.assign(in.final_times.size(), 0.0);
  if (in.last_rank < 0) return cp;
  cp.end_rank = in.last_rank;
  cp.t_total = in.makespan;
  for (std::size_t r = 0; r < in.final_times.size(); ++r) {
    cp.rank_slack[r] = in.makespan - in.final_times[r];
  }

  std::map<std::pair<int, std::uint32_t>, SectionOnPath> sections;
  int rank = cp.end_rank;
  auto idx = static_cast<std::uint32_t>(
      in.times[static_cast<std::size_t>(rank)].size());
  if (idx == 0) return cp;  // empty stream
  --idx;
  for (;;) {
    const EventInfo& ev = in.times[static_cast<std::size_t>(rank)][idx];
    ++cp.length;
    // Predecessor: cross-rank binding if present, else program order.
    int prev_rank = rank;
    std::uint32_t prev_idx = 0;
    double t_prev = 0.0;
    bool at_origin = false;
    if (ev.parent_rank >= 0) {
      prev_rank = ev.parent_rank;
      prev_idx = ev.parent_idx;
      t_prev = in.times[static_cast<std::size_t>(prev_rank)][prev_idx].t;
      ++cp.cross_rank_hops;
    } else if (idx > 0) {
      prev_idx = idx - 1;
      t_prev = in.times[static_cast<std::size_t>(rank)][prev_idx].t;
    } else {
      at_origin = true;
      t_prev = in.t0[static_cast<std::size_t>(rank)];
    }
    const double dt = ev.t - t_prev;
    auto& sec = sections[{ev.section_comm, ev.section}];
    sec.comm = ev.section_comm;
    sec.label = ev.section;
    sec.seconds += dt;
    ++sec.hops;
    cp.rank_onpath[static_cast<std::size_t>(rank)] += dt;
    if (at_origin) {
      cp.start_rank = rank;
      cp.t_start = t_prev;
      break;
    }
    rank = prev_rank;
    idx = prev_idx;
  }
  cp.sections.reserve(sections.size());
  for (auto& [key, sec] : sections) cp.sections.push_back(sec);
  return cp;
}

}  // namespace mpisect::analysis
