// Recorded-frame interpretation of a .mpst trace for offline analysis.
//
// Re-derives, without re-execution, everything the happens-before passes
// need from the recorded event skeleton:
//
//   * per-event virtual completion times under the *recorded* machine
//     model, bit-identical to trace::replay's recorded frame (the critical
//     path's total time must equal the replay makespan exactly);
//   * the binding predecessor of every event — the (rank, event) whose
//     completion the event's time actually derives from when a cross-rank
//     term wins the max (message delivery, rendezvous sync, comm-sync
//     barrier). Walking binding predecessors backwards from the last rank
//     to finish yields the critical path;
//   * per-rank vector clocks (Lamport/Mattern) capturing the happens-before
//     partial order: program order, send -> receive completion, rendezvous
//     receive-post -> send-wait, probed send -> probe, and comm-sync
//     barrier joins. Collectives are already lowered to internal p2p in the
//     trace, so no extra edges are needed;
//   * the channel database: every send keyed by (comm, src, dst, seq) with
//     its recorded matching receive, and every receive with its *posted*
//     envelope (v3 traces) — the raw material of ISP/MUST-style match sets.
//
// Vector clocks are only materialized when the trace contains wildcard
// receives (the only consumers); deterministic traces skip the O(ranks)
// per-event cost entirely.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "trace/file.hpp"

namespace mpisect::analysis {

inline constexpr std::uint32_t kNoSection = 0xFFFFFFFFu;

/// Offline view of one recorded event after interpretation.
struct EventInfo {
  double t = 0.0;  ///< recorded-frame virtual clock after this event
  /// Cross-rank binding predecessor: the event this one's time derives
  /// from when a remote term won the max. parent_rank < 0 means the
  /// binding is local (program order).
  int parent_rank = -1;
  std::uint32_t parent_idx = 0;
  /// Innermost section label at this event (kNoSection outside sections).
  std::uint32_t section = kNoSection;
  int section_comm = -1;
};

/// FIFO channel identity: every (communicator, src, dst) triple carries an
/// independent sequence-numbered message stream.
struct ChannelKey {
  int comm = 0;
  int src = 0;
  int dst = 0;
  auto operator<=>(const ChannelKey&) const = default;
};

/// One recorded send and its recorded match.
struct SendInfo {
  std::uint64_t seq = 0;
  int tag = 0;
  std::uint64_t bytes = 0;
  std::uint32_t event_idx = 0;  ///< SendPost index in the sender's stream
  bool rendezvous = false;
  bool matched = false;          ///< a RecvPost claimed this message
  std::uint32_t recv_post_idx = 0;
  bool completed = false;        ///< the matching RecvWait was recorded
  std::uint32_t recv_wait_idx = 0;
};

/// One recorded receive (post + optional completion).
struct RecvInfo {
  int rank = -1;                 ///< destination world rank
  int comm = 0;
  std::uint32_t post_idx = 0;    ///< RecvPost index in the stream
  bool completed = false;
  std::uint32_t wait_idx = 0;    ///< RecvWait index (valid if completed)
  int post_src = 0;              ///< posted source (kAnySource = wildcard)
  int post_tag = 0;              ///< posted tag (kAnyTag = wildcard)
  int matched_src = 0;           ///< recorded matched source world rank
  std::uint64_t seq = 0;         ///< recorded matched wire sequence
};

struct InterpResult {
  /// times[rank][event] — parallel to TraceFile::ranks[rank].events.
  std::vector<std::vector<EventInfo>> times;
  std::vector<double> t0;  ///< per-rank clock at MPI_Init (start skew)
  std::vector<double> final_times;
  double makespan = 0.0;
  int last_rank = -1;  ///< argmax of final_times (smallest on ties)

  std::map<ChannelKey, std::vector<SendInfo>> channels;  ///< seq-ordered
  std::vector<RecvInfo> recvs;  ///< ordered by (rank, post_idx)

  /// clocks[rank][event] — vector clocks (empty unless wildcards present
  /// and the trace recorded posted envelopes, i.e. format v3).
  std::vector<std::vector<std::vector<std::uint64_t>>> clocks;
  bool has_wildcard = false;
  bool envelopes_recorded = true;  ///< false for pre-v3 traces

  /// context id -> member world ranks observed using it (sorted).
  std::map<int, std::vector<int>> comm_members;

  /// True iff event a (identified by rank+index) happens-before event b.
  /// Only valid when clocks are materialized.
  [[nodiscard]] bool happens_before(int rank_a, std::uint32_t idx_a,
                                    int rank_b, std::uint32_t idx_b) const;
};

/// Interpret the recorded frame. Throws trace::TraceError on structurally
/// inconsistent traces (bad backrefs, dependency stalls, footer mismatch).
[[nodiscard]] InterpResult interpret(const trace::TraceFile& tf);

}  // namespace mpisect::analysis
