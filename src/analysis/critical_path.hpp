// Critical-path extraction over the happens-before order.
//
// The recorded run's makespan is set by exactly one chain of events — the
// longest happens-before path in virtual time. Walking binding
// predecessors backwards from the last event of the last-finishing rank
// reconstructs it; every hop is attributed to the innermost MPIX_Section
// active at its tail, so per-section on-path time can be compared against
// windowed Eq. 6 attribution: a section with a large mean time but little
// on-path time is imbalance the partial-speedup bound overstates, and
// optimizing it cannot move the makespan.
//
// The path's terminal time IS the makespan (bit-exact by construction:
// the interpreter reproduces trace::replay's recorded frame); per-rank
// slack is makespan minus the rank's finish time.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/interp.hpp"

namespace mpisect::analysis {

/// On-path share of one (comm, section-label) pair.
struct SectionOnPath {
  int comm = -1;
  std::uint32_t label = kNoSection;  ///< kNoSection = outside any section
  double seconds = 0.0;
  std::uint64_t hops = 0;  ///< path events attributed to this section
};

struct CriticalPath {
  double t_total = 0.0;  ///< absolute end time of the path (== makespan)
  double t_start = 0.0;  ///< clock at the path's first event's rank start
  int end_rank = -1;     ///< last rank to finish
  int start_rank = -1;   ///< rank the path originates on
  std::uint64_t length = 0;          ///< events on the path
  std::uint64_t cross_rank_hops = 0;  ///< message/barrier-bound switches
  std::vector<SectionOnPath> sections;  ///< sorted by (comm, label)
  std::vector<double> rank_onpath;  ///< on-path seconds charged per rank
  std::vector<double> rank_slack;   ///< makespan - final_time[rank]
};

/// Walk binding predecessors from the makespan-setting event.
[[nodiscard]] CriticalPath extract_critical_path(const InterpResult& in);

}  // namespace mpisect::analysis
