// Reporters for mpisect-analyze.
//
// The diagnostics table/CSV/JSON are rendered by the checker's reporters
// (checker/report.hpp) so both tools emit one schema — the satellite
// schema tests parse either tool's --json output with the same assertions.
// The analyzer adds a critical-path block: totals, per-section on-path
// attribution (named via the trace's label table) and per-rank
// on-path/slack vectors. Path times are printed with %.17g so the
// "t_total == replay makespan bit-exactly" property survives a JSON
// round-trip.
#pragma once

#include <string>

#include "analysis/analyzer.hpp"

namespace mpisect::analysis {

[[nodiscard]] std::string render_text(const AnalysisResult& res);
/// Shared-schema findings CSV (identical columns to mpisect-check --export
/// csv). The critical path is a JSON/text-only artifact.
[[nodiscard]] std::string render_csv(const AnalysisResult& res);
[[nodiscard]] std::string render_json(const AnalysisResult& res);

/// "mpisect-analyze: 2 finding(s): MESSAGE_RACE=1 LATENT_DEADLOCK=1".
[[nodiscard]] std::string render_summary(const AnalysisResult& res);

}  // namespace mpisect::analysis
