#include "analysis/races.hpp"

#include "mpisim/message.hpp"

namespace mpisect::analysis {

namespace {

/// Does the posted envelope of `r` accept a send with tag `tag`?
/// ANY_TAG deliberately never matches collective-internal traffic.
bool tag_compatible(int posted_tag, int tag) {
  if (posted_tag == mpisim::kAnyTag) return tag < mpisim::kInternalTagBase;
  return posted_tag == tag;
}

}  // namespace

std::vector<RaceFinding> find_races(const InterpResult& in) {
  std::vector<RaceFinding> out;
  if (in.clocks.empty()) return out;  // no wildcards or no envelopes

  for (std::size_t slot = 0; slot < in.recvs.size(); ++slot) {
    const RecvInfo& r = in.recvs[slot];
    if (!r.completed) continue;
    const bool any_src = r.post_src == mpisim::kAnySource;
    const bool any_tag = r.post_tag == mpisim::kAnyTag;
    if (!any_src && !any_tag) continue;

    RaceFinding finding;
    finding.recv_slot = slot;

    const auto members_it = in.comm_members.find(r.comm);
    if (members_it == in.comm_members.end()) continue;
    for (const int q : members_it->second) {
      const auto chan_it =
          in.channels.find(ChannelKey{r.comm, q, r.rank});
      if (chan_it == in.channels.end()) continue;
      if (!any_src && q != r.post_src) continue;
      // FIFO scan: the first send from q that was still available when r
      // posted is the only one r could have taken from this source.
      for (const SendInfo& s : chan_it->second) {
        if (!tag_compatible(r.post_tag, s.tag)) continue;
        if (s.matched && s.recv_post_idx == r.post_idx) {
          break;  // the recorded match itself — not an alternate
        }
        // Claimed by a receive this rank posted earlier? Matching is
        // decided at post time, so FIFO moves on to q's next send.
        if (s.matched && s.recv_post_idx < r.post_idx) continue;
        // Concurrency: a send that causally depends on r's completion
        // could never have matched r.
        if (in.happens_before(r.rank, r.wait_idx, q, s.event_idx)) break;
        finding.alternates.push_back(AltSender{
            q, s.seq, s.tag, s.event_idx,
            in.times[static_cast<std::size_t>(q)][s.event_idx].t});
        break;  // only the earliest eligible send per source (FIFO)
      }
    }
    if (!finding.alternates.empty()) out.push_back(std::move(finding));
  }
  return out;
}

}  // namespace mpisect::analysis
