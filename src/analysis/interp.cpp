#include "analysis/interp.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "mpisim/message.hpp"
#include "mpisim/netmodel.hpp"
#include "mpisim/progress.hpp"

namespace mpisect::analysis {

namespace {

using trace::Event;
using trace::EventKind;
using trace::TraceError;

struct MsgKey {
  int comm = 0;
  int src = 0;
  int dst = 0;
  std::uint64_t seq = 0;
  bool operator==(const MsgKey&) const = default;
};

struct MsgKeyHash {
  std::size_t operator()(const MsgKey& k) const noexcept {
    std::size_t h = static_cast<std::size_t>(k.comm) * 1000003u;
    h ^= static_cast<std::size_t>(k.src) * 10007u;
    h ^= static_cast<std::size_t>(k.dst) * 65599u;
    h ^= static_cast<std::size_t>(k.seq) + (h << 6) + (h >> 2);
    return h;
  }
};

/// Recorded-frame view of one in-flight message (single-frame mirror of
/// trace/replay.cpp's MsgState — the arithmetic must stay identical).
struct MsgState {
  double start = 0.0, wire = 0.0, avail = 0.0, post = 0.0;
  bool rend = false;
  bool have_send = false, have_post = false;
  int consumed = 0;
  // Offline extras: where the endpoints live, for HB joins and parents.
  int send_rank = -1;
  std::uint32_t send_idx = 0;
  int post_rank = -1;
  std::uint32_t post_idx = 0;
  std::size_t channel_slot = 0;  ///< index into channels[key] vector
};

struct SyncState {
  int members = 0;
  int arrived = 0;
  std::uint64_t rounds = 0;
  double max_t = 0.0;
  int max_rank = -1;  ///< member whose entry time is the running max
  std::uint32_t max_idx = 0;
  std::vector<std::uint64_t> joined;  ///< VC join of all entries
};

/// Nonblocking-collective round, keyed by (comm, generation). The post is
/// the HB source (every member's completion joins every member's post),
/// and the timing mirrors replay's recorded frame: the completion fence
/// charges ProgressModel::nbc_complete_time over the max post time.
struct NbcState {
  int members = 0;
  int arrived = 0;
  int departed = 0;
  std::uint64_t bytes = 0;
  double max_t = 0.0;
  int max_rank = -1;
  std::uint32_t max_idx = 0;
  std::vector<std::uint64_t> joined;
};

struct RankRt {
  std::size_t cursor = 0;
  double t = 0.0;
  std::vector<MsgKey> send_keys, recv_keys;
  std::vector<std::size_t> recv_slots;  ///< recvs[] index per post, in order
  bool sync_entered = false;
  std::pair<int, std::uint64_t> sync_key{0, 0};
  std::map<int, std::uint64_t> sync_ordinal;
  std::vector<std::pair<int, std::uint32_t>> stack;  ///< (comm, label)
  std::vector<std::uint64_t> vc;
  bool done = false;
};

enum class Step : std::uint8_t { Advanced, Progress, Blocked };

void join_vc(std::vector<std::uint64_t>& into,
             const std::vector<std::uint64_t>& other) {
  for (std::size_t i = 0; i < into.size(); ++i) {
    into[i] = std::max(into[i], other[i]);
  }
}

struct Engine {
  const trace::TraceFile& tf;
  const mpisim::NetworkModel& net;
  bool track_clocks = false;

  InterpResult res;
  std::vector<RankRt> ranks;
  std::unordered_map<MsgKey, MsgState, MsgKeyHash> msgs;
  std::map<std::pair<int, std::uint64_t>, SyncState> syncs;
  std::map<std::pair<int, std::uint64_t>, NbcState> nbc_rounds;
  std::map<int, std::set<int>> members_seen;

  explicit Engine(const trace::TraceFile& t)
      : tf(t), net(t.header.machine.net) {
    const std::size_t n = tf.ranks.size();
    ranks.resize(n);
    res.times.resize(n);
    res.t0.resize(n);
    for (std::size_t r = 0; r < n; ++r) res.t0[r] = tf.ranks[r].t0;
    res.final_times.assign(n, 0.0);
    scan_envelopes();
    track_clocks = res.has_wildcard && res.envelopes_recorded;
    if (track_clocks) res.clocks.resize(n);
    for (std::size_t r = 0; r < n; ++r) {
      ranks[r].t = tf.ranks[r].t0;
      ranks[r].vc.assign(n, 0);
      res.times[r].reserve(tf.ranks[r].events.size());
      if (track_clocks) res.clocks[r].reserve(tf.ranks[r].events.size());
    }
  }

  /// One pass over the raw streams: wildcard presence, envelope coverage,
  /// and communicator membership (every rank that touches a context).
  void scan_envelopes() {
    for (const auto& rs : tf.ranks) {
      for (const Event& ev : rs.events) {
        switch (ev.kind) {
          case EventKind::RecvPost:
          case EventKind::Probe:
            if (ev.post_src == Event::kNotRecorded) {
              res.envelopes_recorded = false;
            } else if (ev.post_src == mpisim::kAnySource ||
                       ev.tag == mpisim::kAnyTag) {
              res.has_wildcard = true;
            }
            members_seen[ev.comm].insert(rs.rank);
            break;
          case EventKind::SendPost:
          case EventKind::CollBegin:
          case EventKind::CommSync:
          case EventKind::NbcPost:
          case EventKind::SectionEnter:
          case EventKind::SectionExit:
            members_seen[ev.comm].insert(rs.rank);
            break;
          default:
            break;
        }
      }
    }
    for (const auto& [ctx, set] : members_seen) {
      res.comm_members[ctx] = std::vector<int>(set.begin(), set.end());
    }
  }

  [[noreturn]] void fail(int r, const Event& ev, const std::string& why) {
    throw TraceError("analysis failed at rank " + std::to_string(r) +
                     " event #" + std::to_string(ranks[r].cursor) + " (" +
                     event_kind_name(ev.kind) + "): " + why);
  }

  /// Mirror of replay's charge_gap, recorded frame only.
  void charge_gap(int r, RankRt& st, const Event& ev) {
    if (!ev.has_time) return;
    if (ev.t_before < st.t) {
      fail(r, ev,
           "recorded clock behind interpreted clock (trace/model mismatch)");
    }
    st.t = ev.t_before;
  }

  void consume(const MsgKey& key, MsgState& ms) {
    if (++ms.consumed >= 2) msgs.erase(key);
  }

  /// Commit one processed event: time, binding parent, section, VC.
  void commit(int r, RankRt& st, int parent_rank, std::uint32_t parent_idx) {
    EventInfo info;
    info.t = st.t;
    info.parent_rank = parent_rank;
    info.parent_idx = parent_idx;
    if (!st.stack.empty()) {
      info.section_comm = st.stack.back().first;
      info.section = st.stack.back().second;
    }
    res.times[static_cast<std::size_t>(r)].push_back(info);
    if (track_clocks) {
      ++st.vc[static_cast<std::size_t>(r)];
      res.clocks[static_cast<std::size_t>(r)].push_back(st.vc);
    }
  }

  Step step(int r) {
    RankRt& st = ranks[static_cast<std::size_t>(r)];
    const trace::RankStream& stream = tf.ranks[static_cast<std::size_t>(r)];
    if (st.cursor >= stream.events.size()) {
      st.done = true;
      res.final_times[static_cast<std::size_t>(r)] = st.t;
      return Step::Advanced;
    }
    const Event& ev = stream.events[st.cursor];
    const auto idx = static_cast<std::uint32_t>(st.cursor);
    int parent_rank = -1;
    std::uint32_t parent_idx = 0;
    switch (ev.kind) {
      case EventKind::SendPost: {
        charge_gap(r, st, ev);
        st.t +=
            std::max(net.cpu_overhead(r, net.send_overhead, ev.op, 0), 0.0);
        const MsgKey key{ev.comm, r, ev.peer, ev.seq};
        MsgState& ms = msgs[key];
        const auto nbytes = static_cast<std::size_t>(ev.bytes);
        ms.start = st.t;
        ms.wire = net.transfer_cost(r, ev.peer, nbytes, ev.seq);
        ms.avail = ms.start + ms.wire;
        ms.rend = nbytes > net.eager_threshold;
        ms.have_send = true;
        ms.send_rank = r;
        ms.send_idx = idx;
        st.send_keys.push_back(key);
        auto& chan = res.channels[ChannelKey{ev.comm, r, ev.peer}];
        ms.channel_slot = chan.size();
        chan.push_back(SendInfo{ev.seq, ev.tag, ev.bytes, idx, ms.rend,
                                false, 0, false, 0});
        break;
      }
      case EventKind::SendWait: {
        if (ev.op >= st.send_keys.size()) fail(r, ev, "bad send backref");
        const MsgKey key = st.send_keys[st.send_keys.size() - 1 - ev.op];
        const auto it = msgs.find(key);
        if (it == msgs.end()) {  // already fully consumed: no-op re-wait
          charge_gap(r, st, ev);
          break;
        }
        MsgState& ms = it->second;
        if (ms.rend && !ms.have_post) return Step::Blocked;
        charge_gap(r, st, ev);
        if (ms.rend) {
          const double sync = std::max(ms.start, ms.post) + ms.wire;
          if (sync > st.t && ms.post >= ms.start) {
            parent_rank = ms.post_rank;  // receiver's post gated the sync
            parent_idx = ms.post_idx;
          }
          st.t = std::max(st.t, sync);
          if (track_clocks) {
            join_vc(st.vc,
                    res.clocks[static_cast<std::size_t>(ms.post_rank)]
                              [ms.post_idx]);
          }
        }
        consume(key, ms);
        break;
      }
      case EventKind::RecvPost: {
        charge_gap(r, st, ev);
        std::size_t slot = res.recvs.size();
        RecvInfo ri;
        ri.rank = r;
        ri.comm = ev.comm;
        ri.post_idx = idx;
        ri.post_src = ev.post_src;
        ri.post_tag = ev.tag;
        ri.matched_src = ev.peer;
        ri.seq = ev.seq;
        res.recvs.push_back(ri);
        st.recv_slots.push_back(slot);
        if (ev.peer == Event::kUnmatched) {
          st.recv_keys.push_back(MsgKey{-1, 0, 0, 0});
        } else {
          const MsgKey key{ev.comm, ev.peer, r, ev.seq};
          MsgState& ms = msgs[key];
          ms.post = st.t;
          ms.have_post = true;
          ms.post_rank = r;
          ms.post_idx = idx;
          st.recv_keys.push_back(key);
        }
        break;
      }
      case EventKind::RecvWait: {
        if (ev.seq >= st.recv_keys.size()) fail(r, ev, "bad recv backref");
        const std::size_t back = st.recv_keys.size() - 1 - ev.seq;
        const MsgKey key = st.recv_keys[back];
        if (key.comm < 0) fail(r, ev, "wait on a receive that never matched");
        const auto it = msgs.find(key);
        if (it == msgs.end() || !it->second.have_send) return Step::Blocked;
        MsgState& ms = it->second;
        charge_gap(r, st, ev);
        const double del = ms.rend ? std::max(ms.start, ms.post) + ms.wire
                                   : std::max(ms.post, ms.avail);
        const bool remote_wins =
            del > st.t && (ms.rend ? ms.start >= ms.post : ms.avail >= ms.post);
        if (remote_wins) {
          parent_rank = ms.send_rank;
          parent_idx = ms.send_idx;
        }
        st.t = std::max(st.t, del);
        st.t +=
            std::max(net.cpu_overhead(r, net.recv_overhead, ev.op, 1), 0.0);
        if (track_clocks) {
          join_vc(st.vc, res.clocks[static_cast<std::size_t>(ms.send_rank)]
                                   [ms.send_idx]);
        }
        // Mark the channel-side match so match sets can see consumption.
        auto& send = res.channels[ChannelKey{key.comm, key.src, key.dst}]
                                 [ms.channel_slot];
        send.matched = true;
        send.recv_post_idx = ms.post_idx;
        send.completed = true;
        send.recv_wait_idx = idx;
        auto& ri = res.recvs[st.recv_slots[back]];
        ri.completed = true;
        ri.wait_idx = idx;
        consume(key, ms);
        break;
      }
      case EventKind::Probe: {
        const MsgKey key{ev.comm, ev.peer, r, ev.seq};
        const auto it = msgs.find(key);
        if (it == msgs.end() || !it->second.have_send) return Step::Blocked;
        const MsgState& ms = it->second;
        charge_gap(r, st, ev);
        if (ms.rend) {
          if (ms.start >= st.t) {
            parent_rank = ms.send_rank;
            parent_idx = ms.send_idx;
          }
          st.t = std::max(ms.start, st.t) + ms.wire;
        } else {
          if (ms.avail > st.t) {
            parent_rank = ms.send_rank;
            parent_idx = ms.send_idx;
          }
          st.t = std::max(st.t, ms.avail);
        }
        if (track_clocks) {
          join_vc(st.vc, res.clocks[static_cast<std::size_t>(ms.send_rank)]
                                   [ms.send_idx]);
        }
        break;
      }
      case EventKind::CollBegin: {
        charge_gap(r, st, ev);
        st.t +=
            std::max(net.cpu_overhead(r, net.send_overhead, ev.op, 2), 0.0);
        break;
      }
      case EventKind::CollEnd:
      case EventKind::Pcontrol: {
        charge_gap(r, st, ev);
        break;
      }
      case EventKind::SectionEnter: {
        charge_gap(r, st, ev);
        commit(r, st, parent_rank, parent_idx);  // outer section attributed
        st.stack.emplace_back(ev.comm, ev.label);
        ++st.cursor;
        return Step::Advanced;
      }
      case EventKind::SectionExit: {
        charge_gap(r, st, ev);
        if (st.stack.empty()) fail(r, ev, "section exit with empty stack");
        commit(r, st, parent_rank, parent_idx);  // exited section attributed
        st.stack.pop_back();
        ++st.cursor;
        return Step::Advanced;
      }
      case EventKind::CommSync: {
        if (!st.sync_entered) {
          charge_gap(r, st, ev);
          const std::uint64_t ordinal = st.sync_ordinal[ev.comm]++;
          st.sync_key = {ev.comm, ordinal};
          SyncState& sy = syncs[st.sync_key];
          sy.members = ev.peer;
          sy.rounds = ev.seq;
          if (sy.arrived == 0 || st.t > sy.max_t) {
            sy.max_t = st.t;
            sy.max_rank = r;
            sy.max_idx = idx;
          }
          if (track_clocks) {
            if (sy.joined.empty()) sy.joined.assign(ranks.size(), 0);
            join_vc(sy.joined, st.vc);
          }
          ++sy.arrived;
          st.sync_entered = true;
          if (sy.arrived < sy.members) return Step::Progress;
        }
        const SyncState& sy = syncs[st.sync_key];
        if (sy.arrived < sy.members) return Step::Blocked;
        const double rounds = static_cast<double>(sy.rounds);
        const double leave = sy.max_t + rounds * net.inter_node.latency;
        if (leave > st.t && sy.max_rank != r) {
          parent_rank = sy.max_rank;
          parent_idx = sy.max_idx;
        }
        st.t = std::max(st.t, leave);
        if (track_clocks) join_vc(st.vc, sy.joined);
        st.sync_entered = false;
        break;
      }
      case EventKind::NbcPost: {
        charge_gap(r, st, ev);
        st.t +=
            std::max(net.cpu_overhead(r, net.send_overhead, ev.op, 2), 0.0);
        NbcState& nb = nbc_rounds[{ev.comm, ev.seq}];
        nb.members = ev.peer;
        nb.bytes = std::max(nb.bytes, ev.bytes);
        if (nb.arrived == 0 || st.t > nb.max_t) {
          nb.max_t = st.t;
          nb.max_rank = r;
          nb.max_idx = idx;
        }
        if (track_clocks) {
          if (nb.joined.empty()) nb.joined.assign(ranks.size(), 0);
          join_vc(nb.joined, st.vc);
        }
        ++nb.arrived;
        break;
      }
      case EventKind::NbcComplete: {
        const auto it = nbc_rounds.find({ev.comm, ev.seq});
        if (it == nbc_rounds.end() ||
            it->second.arrived < it->second.members) {
          return Step::Blocked;  // fence stalls until the post quorum
        }
        NbcState& nb = it->second;
        charge_gap(r, st, ev);
        const double algo = net.nbc_cost(nb.members, nb.bytes);
        const double done =
            tf.header.progress.nbc_complete_time(st.t, nb.max_t, algo);
        if (done > st.t && nb.max_rank != r) {
          parent_rank = nb.max_rank;  // latest poster gated the fence
          parent_idx = nb.max_idx;
        }
        st.t = std::max(st.t, done);
        if (track_clocks) join_vc(st.vc, nb.joined);
        if (++nb.departed == nb.members) nbc_rounds.erase(it);
        break;
      }
      case EventKind::Finalize: {
        charge_gap(r, st, ev);
        if (st.t != stream.t_final) {
          fail(r, ev, "recorded final time mismatch (corrupt trace?)");
        }
        res.final_times[static_cast<std::size_t>(r)] = st.t;
        st.done = true;
        break;
      }
    }
    commit(r, st, parent_rank, parent_idx);
    ++st.cursor;
    return Step::Advanced;
  }

  void run() {
    for (;;) {
      bool any_active = false;
      bool progress = false;
      for (int r = 0; r < static_cast<int>(ranks.size()); ++r) {
        RankRt& st = ranks[static_cast<std::size_t>(r)];
        if (st.done) continue;
        any_active = true;
        for (;;) {
          const Step s = step(r);
          if (s == Step::Advanced) {
            progress = true;
            if (st.done) break;
            continue;
          }
          if (s == Step::Progress) progress = true;
          break;
        }
      }
      if (!any_active) break;
      if (!progress) {
        std::string stuck;
        for (int r = 0; r < static_cast<int>(ranks.size()); ++r) {
          const RankRt& st = ranks[static_cast<std::size_t>(r)];
          if (st.done) continue;
          if (!stuck.empty()) stuck += ", ";
          stuck += std::to_string(r) + "@" + std::to_string(st.cursor);
          if (stuck.size() > 120) break;
        }
        throw TraceError(
            "analysis dependency stall (truncated or inconsistent trace); "
            "blocked ranks: " +
            stuck);
      }
    }
  }

  void finalize() {
    res.makespan = res.final_times.empty()
                       ? 0.0
                       : -std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < res.final_times.size(); ++r) {
      if (res.final_times[r] > res.makespan) {
        res.makespan = res.final_times[r];
        res.last_rank = static_cast<int>(r);
      }
    }
  }
};

}  // namespace

bool InterpResult::happens_before(int rank_a, std::uint32_t idx_a, int rank_b,
                                  std::uint32_t idx_b) const {
  if (rank_a == rank_b) return idx_a < idx_b;
  const auto& va = clocks[static_cast<std::size_t>(rank_a)][idx_a];
  const auto& vb = clocks[static_cast<std::size_t>(rank_b)][idx_b];
  return va[static_cast<std::size_t>(rank_a)] <=
         vb[static_cast<std::size_t>(rank_a)];
}

InterpResult interpret(const trace::TraceFile& tf) {
  if (tf.ranks.size() != static_cast<std::size_t>(tf.header.nranks)) {
    throw trace::TraceError("trace rank streams do not match header count");
  }
  Engine eng(tf);
  eng.run();
  eng.finalize();
  return std::move(eng.res);
}

}  // namespace mpisect::analysis
