// ISP/MUST-style match sets for recorded receives.
//
// For every wildcard receive the recorded trace shows ONE matching — the
// one the scheduler happened to produce. The match set is the full set of
// sends that *could* have matched under MPI's semantics:
//
//   candidate q->dst send s' is an alternate for receive r iff
//     * envelope-compatible: same communicator, r's posted source is
//       ANY_SOURCE or q, r's posted tag is ANY_TAG or s'.tag (ANY_TAG
//       never matches collective-internal tags);
//     * FIFO-eligible: s' is the earliest send on its (comm, q, dst)
//       channel whose recorded matching receive did not complete
//       happens-before r's post (earlier sends were provably consumed);
//     * concurrent: r's recorded completion does not happen-before
//       s'.post (otherwise s' only exists because r matched differently).
//
// A receive whose match set holds more than the recorded sender is a
// message race: the run's outcome depended on message timing.
#pragma once

#include <vector>

#include "analysis/interp.hpp"

namespace mpisect::analysis {

/// One alternate sender in a receive's match set.
struct AltSender {
  int src = -1;             ///< world rank of the alternate sender
  std::uint64_t seq = 0;    ///< wire sequence on (comm, src, dst)
  int tag = 0;
  std::uint32_t send_idx = 0;  ///< SendPost index in src's stream
  double t_post = 0.0;         ///< recorded send-post virtual time
};

/// A wildcard receive with >1 concurrent eligible sender.
struct RaceFinding {
  std::size_t recv_slot = 0;  ///< index into InterpResult::recvs
  std::vector<AltSender> alternates;  ///< excludes the recorded sender
};

/// Compute match sets for every completed wildcard receive. Requires
/// materialized vector clocks (returns empty when the trace has none —
/// deterministic traces or pre-v3 recordings).
[[nodiscard]] std::vector<RaceFinding> find_races(const InterpResult& in);

}  // namespace mpisect::analysis
