// RGB image container, procedural test-image generation, and a PPM codec.
//
// The paper convolves a 5616x3744 three-channel photograph stored in double
// precision. We have no photograph, so make_test_image() synthesizes a
// deterministic image of the same dimensions (smooth gradients + seeded
// detail) — the convolution kernel is content-agnostic, so only the pixel
// count matters for timing while real content keeps the numerics honest
// for correctness tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpisect::apps::conv {

inline constexpr int kChannels = 3;

/// Row-major, interleaved-channel image of doubles in [0, 1].
class Image {
 public:
  Image() = default;
  Image(int width, int height);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] std::size_t pixel_count() const noexcept {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  [[nodiscard]] std::size_t value_count() const noexcept {
    return pixel_count() * kChannels;
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return value_count() * sizeof(double);
  }

  [[nodiscard]] double& at(int x, int y, int c) noexcept {
    return data_[index(x, y, c)];
  }
  [[nodiscard]] double at(int x, int y, int c) const noexcept {
    return data_[index(x, y, c)];
  }
  [[nodiscard]] double* row(int y) noexcept {
    return data_.data() + static_cast<std::size_t>(y) *
                              static_cast<std::size_t>(width_) * kChannels;
  }
  [[nodiscard]] const double* row(int y) const noexcept {
    return data_.data() + static_cast<std::size_t>(y) *
                              static_cast<std::size_t>(width_) * kChannels;
  }
  [[nodiscard]] std::size_t row_bytes() const noexcept {
    return static_cast<std::size_t>(width_) * kChannels * sizeof(double);
  }
  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  /// Mean absolute per-value difference against another image (same dims
  /// required; returns +inf otherwise). Used by correctness tests.
  [[nodiscard]] double mean_abs_diff(const Image& other) const noexcept;
  /// Order-independent checksum (sum of all values).
  [[nodiscard]] double checksum() const noexcept;

 private:
  [[nodiscard]] std::size_t index(int x, int y, int c) const noexcept {
    return (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
            static_cast<std::size_t>(x)) *
               kChannels +
           static_cast<std::size_t>(c);
  }
  int width_ = 0;
  int height_ = 0;
  std::vector<double> data_;
};

/// Deterministic procedural test image (gradients + interference pattern +
/// seeded noise) — the stand-in for the paper's photograph.
[[nodiscard]] Image make_test_image(int width, int height,
                                    std::uint64_t seed = 42);

/// Encode to binary PPM (P6, 8-bit). Values are clamped to [0,1].
[[nodiscard]] std::vector<std::uint8_t> encode_ppm(const Image& img);
/// Decode a binary PPM (P6, 8-bit). Throws std::runtime_error on a
/// malformed header.
[[nodiscard]] Image decode_ppm(const std::vector<std::uint8_t>& bytes);

}  // namespace mpisect::apps::conv
