// 1D row-block domain decomposition (paper Sec. 5.1: "scattered through a
// 1D splitting among the MPI processes"). With a 1D split, halo size per
// process is constant in p — the property that makes the paper's growing
// HALO times "surprising" and motivates section-level measurement.
#pragma once

#include <cstddef>
#include <vector>

namespace mpisect::apps::conv {

class RowDecomposition {
 public:
  /// Split `height` rows over `nranks` block-wise; earlier ranks take the
  /// remainder. Requires 0 < nranks <= height.
  RowDecomposition(int height, int nranks);

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int rows_of(int rank) const noexcept;
  [[nodiscard]] int row_start(int rank) const noexcept;
  /// Rank owning a global row.
  [[nodiscard]] int owner_of(int row) const noexcept;

  /// Neighbors for halo exchange (-1 at domain boundaries).
  [[nodiscard]] int up_neighbor(int rank) const noexcept {
    return rank > 0 ? rank - 1 : -1;
  }
  [[nodiscard]] int down_neighbor(int rank) const noexcept {
    return rank < nranks_ - 1 ? rank + 1 : -1;
  }

  /// Byte counts/displacements for scatterv/gatherv of row-major data with
  /// `row_bytes` bytes per row.
  [[nodiscard]] std::vector<std::size_t> byte_counts(
      std::size_t row_bytes) const;
  [[nodiscard]] std::vector<std::size_t> byte_displs(
      std::size_t row_bytes) const;

 private:
  int height_;
  int nranks_;
  int base_;
  int extra_;
};

/// 2D block (tile) decomposition of an image over a px x py rank grid —
/// the higher-dimensional alternative the paper's Sec. 3 discusses: halo
/// bytes per rank shrink as the perimeter/area ratio, at the price of more
/// neighbours (4 faces + 4 corners for a 3x3 stencil).
class GridDecomposition {
 public:
  /// Split width x height pixels over nranks arranged in the most square
  /// px x py grid with px * py == nranks. Requires px <= width and
  /// py <= height.
  GridDecomposition(int width, int height, int nranks);

  [[nodiscard]] int nranks() const noexcept { return px_ * py_; }
  [[nodiscard]] int px() const noexcept { return px_; }
  [[nodiscard]] int py() const noexcept { return py_; }

  struct Tile {
    int x0 = 0;
    int y0 = 0;
    int width = 0;
    int height = 0;
  };
  [[nodiscard]] Tile tile_of(int rank) const;
  [[nodiscard]] int grid_x(int rank) const noexcept { return rank % px_; }
  [[nodiscard]] int grid_y(int rank) const noexcept { return rank / px_; }
  /// Neighbour at grid offset (dx, dy), or -1 outside the grid.
  [[nodiscard]] int neighbor(int rank, int dx, int dy) const noexcept;

  /// Bytes exchanged per halo step by `rank` (faces + corners, 1-pixel
  /// halo, `pixel_bytes` per pixel).
  [[nodiscard]] std::size_t halo_bytes(int rank,
                                       std::size_t pixel_bytes) const;

  /// The most square factorization px * py = nranks with px <= py.
  static void squarest_grid(int nranks, int& px, int& py) noexcept;

 private:
  int width_;
  int height_;
  int px_;
  int py_;
};

}  // namespace mpisect::apps::conv
