#include "apps/convolution/convolution.hpp"

#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "core/sections/api.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/error.hpp"

namespace mpisect::apps::conv {
namespace {

using mpisim::Comm;
using mpisim::Ctx;
using sections::MPIX_Section_enter;
using sections::MPIX_Section_exit;

constexpr int kTagUp = 11;    ///< messages travelling towards rank-1
constexpr int kTagDown = 12;  ///< messages travelling towards rank+1

/// Section + optional Pcontrol bracket, so the same run can feed both the
/// section profiler and the IPM-style baseline.
class Phase {
 public:
  Phase(Comm& comm, const char* label, bool pcontrol)
      : comm_(comm), label_(label), pcontrol_(pcontrol) {
    MPIX_Section_enter(comm_, label_);
    if (pcontrol_) comm_.ctx().pcontrol(1, label_);
  }
  ~Phase() {
    if (pcontrol_) comm_.ctx().pcontrol(-1, label_);
    MPIX_Section_exit(comm_, label_);
  }
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

 private:
  Comm& comm_;
  const char* label_;
  bool pcontrol_;
};

}  // namespace

ConvolutionApp::ConvolutionApp(ConvolutionConfig config)
    : config_(std::move(config)) {}

void ConvolutionApp::run_rank0_io(mpisim::Ctx& ctx, bool load,
                                  Image* io_image) {
  const auto pixels = static_cast<double>(config_.width) *
                      static_cast<double>(config_.height);
  const double ppm_bytes = pixels * kChannels + 32.0;
  ctx.compute(ppm_bytes / config_.io_bandwidth);
  ctx.compute_flops(pixels * (load ? config_.decode_flops_per_pixel
                                   : config_.encode_flops_per_pixel));
  if (!config_.full_fidelity || io_image == nullptr) return;
  if (load) {
    // "Load" the photograph: generate it procedurally, then round-trip the
    // PPM codec so the decode path is genuinely exercised.
    const Image original =
        make_test_image(config_.width, config_.height, config_.image_seed);
    *io_image = decode_ppm(encode_ppm(original));
  } else if (!config_.store_path.empty()) {
    const auto bytes = encode_ppm(*io_image);
    std::ofstream out(config_.store_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
}

void ConvolutionApp::operator()(mpisim::Ctx& ctx) {
  if (config_.decomp_dims == 2) {
    run_2d(ctx);
  } else {
    run_1d(ctx);
  }
}

void ConvolutionApp::run_1d(mpisim::Ctx& ctx) {
  Comm comm = ctx.world_comm();
  const int rank = comm.rank();
  const int p = comm.size();
  const bool full = config_.full_fidelity;
  const bool pc = config_.emit_pcontrol;

  const RowDecomposition decomp(config_.height, p);
  const int my_rows = decomp.rows_of(rank);
  const std::size_t row_bytes = static_cast<std::size_t>(config_.width) *
                                kChannels * sizeof(double);
  const int up = decomp.up_neighbor(rank);
  const int down = decomp.down_neighbor(rank);

  // Local band with one halo row above (local row 0) and below (my_rows+1).
  Image local;
  Image back;
  if (full) {
    local = Image(config_.width, my_rows + 2);
    back = Image(config_.width, my_rows + 2);
  }

  // --- LOAD: sequential on rank 0, others pass through (their imbalance is
  // exactly what Fig. 3's entry metrics expose).
  Image global;
  {
    const Phase phase(comm, labels::kLoad, pc);
    if (rank == 0) run_rank0_io(ctx, /*load=*/true, &global);
  }

  // --- SCATTER: 1D row split.
  {
    const Phase phase(comm, labels::kScatter, pc);
    const auto counts = decomp.byte_counts(row_bytes);
    const auto displs = decomp.byte_displs(row_bytes);
    comm.scatterv(full && rank == 0 ? global.data() : nullptr, counts, displs,
                  full ? local.row(1) : nullptr,
                  static_cast<std::size_t>(my_rows) * row_bytes, 0);
    if (rank == 0) global = Image();  // root's copy no longer needed
  }

  // --- Time-step loop: HALO then CONVOLVE, config_.steps times.
  for (int step = 0; step < config_.steps; ++step) {
    {
      const Phase phase(comm, labels::kHalo, pc);
      std::vector<Comm::Request> sends;
      if (up >= 0) {
        sends.push_back(comm.isend(full ? local.row(1) : nullptr, row_bytes,
                                   up, kTagUp));
      }
      if (down >= 0) {
        sends.push_back(comm.isend(full ? local.row(my_rows) : nullptr,
                                   row_bytes, down, kTagDown));
      }
      if (down >= 0) {
        comm.recv(full ? local.row(my_rows + 1) : nullptr, row_bytes, down,
                  kTagUp);
      }
      if (up >= 0) {
        comm.recv(full ? local.row(0) : nullptr, row_bytes, up, kTagDown);
      }
      mpisim::waitall(sends);
      if (full) {
        // Domain boundaries: clamp semantics — replicate the edge row into
        // the missing halo so the stencil code is uniform.
        if (up < 0) {
          std::memcpy(local.row(0), local.row(1), row_bytes);
        }
        if (down < 0) {
          std::memcpy(local.row(my_rows + 1), local.row(my_rows), row_bytes);
        }
      }
    }
    {
      const Phase phase(comm, labels::kConvolve, pc);
      ctx.compute_flops(static_cast<double>(my_rows) *
                        static_cast<double>(config_.width) *
                        config_.flops_per_pixel);
      if (full) {
        apply_stencil_rows(local, back, 1, my_rows + 1, config_.kernel);
        // Refresh halo rows in the back buffer so the swap keeps them
        // consistent for the next exchange.
        std::memcpy(back.row(0), local.row(0), row_bytes);
        std::memcpy(back.row(my_rows + 1), local.row(my_rows + 1), row_bytes);
        std::swap(local, back);
      }
    }
  }

  // --- GATHER back to rank 0.
  {
    const Phase phase(comm, labels::kGather, pc);
    Image gathered;
    if (full && rank == 0) gathered = Image(config_.width, config_.height);
    const auto counts = decomp.byte_counts(row_bytes);
    const auto displs = decomp.byte_displs(row_bytes);
    comm.gatherv(full ? local.row(1) : nullptr,
                 static_cast<std::size_t>(my_rows) * row_bytes,
                 full && rank == 0 ? gathered.data() : nullptr, counts,
                 displs, 0);
    if (rank == 0 && full) *result_ = std::move(gathered);
  }

  // --- STORE: sequential on rank 0.
  {
    const Phase phase(comm, labels::kStore, pc);
    if (rank == 0) run_rank0_io(ctx, /*load=*/false, result_.get());
  }
}


// ---------------------------------------------------------------------------
// 2D (tile) decomposition — the Sec. 3 alternative: perimeter halos
// instead of full rows, exchanged with up to 8 neighbours.
// ---------------------------------------------------------------------------

namespace {

/// Tags for the eight exchange directions, indexed (dx+1) + 3*(dy+1).
constexpr int kTagGrid = 20;

/// Pack a rectangle of `img` into a contiguous buffer.
void pack_rect(const Image& img, int x0, int y0, int w, int h,
               std::vector<double>& out) {
  out.resize(static_cast<std::size_t>(w) * h * kChannels);
  std::size_t cursor = 0;
  for (int y = 0; y < h; ++y) {
    const double* row = img.row(y0 + y) + static_cast<std::size_t>(x0) * kChannels;
    std::memcpy(out.data() + cursor, row,
                static_cast<std::size_t>(w) * kChannels * sizeof(double));
    cursor += static_cast<std::size_t>(w) * kChannels;
  }
}

/// Unpack a contiguous buffer into a rectangle of `img`.
void unpack_rect(Image& img, int x0, int y0, int w, int h,
                 const std::vector<double>& in) {
  std::size_t cursor = 0;
  for (int y = 0; y < h; ++y) {
    double* row = img.row(y0 + y) + static_cast<std::size_t>(x0) * kChannels;
    std::memcpy(row, in.data() + cursor,
                static_cast<std::size_t>(w) * kChannels * sizeof(double));
    cursor += static_cast<std::size_t>(w) * kChannels;
  }
}

}  // namespace

void ConvolutionApp::run_2d(mpisim::Ctx& ctx) {
  Comm comm = ctx.world_comm();
  const int rank = comm.rank();
  const int p = comm.size();
  const bool full = config_.full_fidelity;
  const bool pc = config_.emit_pcontrol;

  const GridDecomposition grid(config_.width, config_.height, p);
  const GridDecomposition::Tile tile = grid.tile_of(rank);
  const int tw = tile.width;
  const int th = tile.height;
  const std::size_t pixel_bytes = kChannels * sizeof(double);

  // Local tile with a 1-pixel halo ring: (tw+2) x (th+2).
  Image local;
  Image back;
  if (full) {
    local = Image(tw + 2, th + 2);
    back = Image(tw + 2, th + 2);
  }

  // --- LOAD (identical to the 1D pipeline).
  Image global;
  {
    const Phase phase(comm, labels::kLoad, pc);
    if (rank == 0) run_rank0_io(ctx, /*load=*/true, &global);
  }

  // --- SCATTER: rank 0 packs and ships every tile (2D blocks are not
  // contiguous, so this is explicit distribution, as real tile codes do).
  {
    const Phase phase(comm, labels::kScatter, pc);
    if (rank == 0) {
      std::vector<Comm::Request> sends;
      std::vector<std::vector<double>> bufs(static_cast<std::size_t>(p));
      for (int r = p - 1; r >= 0; --r) {
        const auto rt = grid.tile_of(r);
        const std::size_t bytes =
            static_cast<std::size_t>(rt.width) * rt.height * pixel_bytes;
        if (r == 0) {
          if (full) {
            pack_rect(global, rt.x0, rt.y0, rt.width, rt.height,
                      bufs[0]);
            unpack_rect(local, 1, 1, tw, th, bufs[0]);
          }
          continue;
        }
        if (full) {
          pack_rect(global, rt.x0, rt.y0, rt.width, rt.height,
                    bufs[static_cast<std::size_t>(r)]);
        }
        sends.push_back(comm.isend(
            full ? bufs[static_cast<std::size_t>(r)].data() : nullptr, bytes,
            r, kTagGrid + 9));
      }
      mpisim::waitall(sends);
      global = Image();
    } else {
      const std::size_t bytes =
          static_cast<std::size_t>(tw) * th * pixel_bytes;
      std::vector<double> buf;
      if (full) buf.resize(static_cast<std::size_t>(tw) * th * kChannels);
      comm.recv(full ? buf.data() : nullptr, bytes, 0, kTagGrid + 9);
      if (full) unpack_rect(local, 1, 1, tw, th, buf);
    }
  }

  // Neighbour table and exchange buffers.
  struct Edge {
    int dx, dy;
    int peer;
    int x0, y0, w, h;      ///< interior rectangle to send
    int hx0, hy0;          ///< halo position to receive into
    std::vector<double> send_buf, recv_buf;
  };
  std::vector<Edge> edges;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const int peer = grid.neighbor(rank, dx, dy);
      if (peer < 0) continue;
      Edge e;
      e.dx = dx;
      e.dy = dy;
      e.peer = peer;
      e.w = dx == 0 ? tw : 1;
      e.h = dy == 0 ? th : 1;
      e.x0 = dx < 0 ? 1 : (dx > 0 ? tw : 1);
      e.y0 = dy < 0 ? 1 : (dy > 0 ? th : 1);
      e.hx0 = dx < 0 ? 0 : (dx > 0 ? tw + 1 : 1);
      e.hy0 = dy < 0 ? 0 : (dy > 0 ? th + 1 : 1);
      edges.push_back(std::move(e));
    }
  }
  const bool has_left = grid.neighbor(rank, -1, 0) >= 0;
  const bool has_right = grid.neighbor(rank, 1, 0) >= 0;
  const bool has_up = grid.neighbor(rank, 0, -1) >= 0;
  const bool has_down = grid.neighbor(rank, 0, 1) >= 0;

  // --- time-step loop: HALO (8-neighbour ring) then CONVOLVE.
  for (int step = 0; step < config_.steps; ++step) {
    {
      const Phase phase(comm, labels::kHalo, pc);
      std::vector<Comm::Request> sends;
      for (auto& e : edges) {
        const std::size_t bytes =
            static_cast<std::size_t>(e.w) * e.h * pixel_bytes;
        if (full) pack_rect(local, e.x0, e.y0, e.w, e.h, e.send_buf);
        sends.push_back(comm.isend(full ? e.send_buf.data() : nullptr, bytes,
                                   e.peer,
                                   kTagGrid + (e.dx + 1) + 3 * (e.dy + 1)));
      }
      for (auto& e : edges) {
        const std::size_t bytes =
            static_cast<std::size_t>(e.w) * e.h * pixel_bytes;
        if (full) {
          e.recv_buf.resize(static_cast<std::size_t>(e.w) * e.h * kChannels);
        }
        // The peer sent with ITS direction towards us: (-dx, -dy).
        comm.recv(full ? e.recv_buf.data() : nullptr, bytes, e.peer,
                  kTagGrid + (-e.dx + 1) + 3 * (-e.dy + 1));
        if (full) unpack_rect(local, e.hx0, e.hy0, e.w, e.h, e.recv_buf);
      }
      mpisim::waitall(sends);

      if (full) {
        // Clamp-fill halo sides with no neighbour (global image border).
        if (!has_up) {
          std::memcpy(local.row(0) + kChannels, local.row(1) + kChannels,
                      static_cast<std::size_t>(tw) * pixel_bytes);
        }
        if (!has_down) {
          std::memcpy(local.row(th + 1) + kChannels,
                      local.row(th) + kChannels,
                      static_cast<std::size_t>(tw) * pixel_bytes);
        }
        if (!has_left) {
          for (int y = 1; y <= th; ++y) {
            for (int c = 0; c < kChannels; ++c) {
              local.at(0, y, c) = local.at(1, y, c);
            }
          }
        }
        if (!has_right) {
          for (int y = 1; y <= th; ++y) {
            for (int c = 0; c < kChannels; ++c) {
              local.at(tw + 1, y, c) = local.at(tw, y, c);
            }
          }
        }
        // Corners without a diagonal neighbour: clamp per the global-border
        // semantics (prefer the face halo that does exist).
        struct CornerFix {
          int cx, cy;        ///< corner halo cell
          bool face_x;       ///< the horizontal-adjacent face exists
          bool face_y;       ///< the vertical-adjacent face exists
          int fx, fy;        ///< from face-y (top/bottom halo row)
          int gx, gy;        ///< from face-x (left/right halo col)
          int ix, iy;        ///< interior fallback
          bool have;         ///< diagonal neighbour handled it already
        };
        const CornerFix corners[4] = {
            {0, 0, has_left, has_up, 1, 0, 0, 1, 1, 1,
             grid.neighbor(rank, -1, -1) >= 0},
            {tw + 1, 0, has_right, has_up, tw, 0, tw + 1, 1, tw, 1,
             grid.neighbor(rank, 1, -1) >= 0},
            {0, th + 1, has_left, has_down, 1, th + 1, 0, th, 1, th,
             grid.neighbor(rank, -1, 1) >= 0},
            {tw + 1, th + 1, has_right, has_down, tw, th + 1, tw + 1, th, tw,
             th, grid.neighbor(rank, 1, 1) >= 0},
        };
        for (const auto& cf : corners) {
          if (cf.have) continue;
          int sx = cf.ix;
          int sy = cf.iy;
          if (cf.face_y) {  // use the received top/bottom halo row
            sx = cf.fx;
            sy = cf.fy;
          } else if (cf.face_x) {  // use the received left/right halo col
            sx = cf.gx;
            sy = cf.gy;
          }
          for (int c = 0; c < kChannels; ++c) {
            local.at(cf.cx, cf.cy, c) = local.at(sx, sy, c);
          }
        }
      }
    }
    {
      const Phase phase(comm, labels::kConvolve, pc);
      ctx.compute_flops(static_cast<double>(tw) * th *
                        config_.flops_per_pixel);
      if (full) {
        apply_stencil_region(local, back, 1, tw + 1, 1, th + 1,
                             config_.kernel);
        std::swap(local, back);
      }
    }
  }

  // --- GATHER: tiles return to rank 0.
  {
    const Phase phase(comm, labels::kGather, pc);
    Image gathered;
    if (full && rank == 0) gathered = Image(config_.width, config_.height);
    if (rank == 0) {
      std::vector<double> buf;
      if (full) {
        pack_rect(local, 1, 1, tw, th, buf);
        unpack_rect(gathered, tile.x0, tile.y0, tw, th, buf);
      }
      for (int r = 1; r < p; ++r) {
        const auto rt = grid.tile_of(r);
        const std::size_t bytes =
            static_cast<std::size_t>(rt.width) * rt.height * pixel_bytes;
        if (full) {
          buf.resize(static_cast<std::size_t>(rt.width) * rt.height *
                     kChannels);
        }
        comm.recv(full ? buf.data() : nullptr, bytes, r, kTagGrid + 10);
        if (full) {
          unpack_rect(gathered, rt.x0, rt.y0, rt.width, rt.height, buf);
        }
      }
      if (full) *result_ = std::move(gathered);
    } else {
      std::vector<double> buf;
      const std::size_t bytes =
          static_cast<std::size_t>(tw) * th * pixel_bytes;
      if (full) pack_rect(local, 1, 1, tw, th, buf);
      comm.send(full ? buf.data() : nullptr, bytes, 0, kTagGrid + 10);
    }
  }

  // --- STORE.
  {
    const Phase phase(comm, labels::kStore, pc);
    if (rank == 0) run_rank0_io(ctx, /*load=*/false, result_.get());
  }
}

}  // namespace mpisect::apps::conv
