#include "apps/convolution/decomp.hpp"

#include <algorithm>

#include "mpisim/error.hpp"

namespace mpisect::apps::conv {

RowDecomposition::RowDecomposition(int height, int nranks)
    : height_(height), nranks_(nranks) {
  mpisim::require(nranks > 0, mpisim::Err::Arg,
                  "decomposition needs at least one rank");
  mpisim::require(nranks <= height, mpisim::Err::Arg,
                  "more ranks than rows");
  base_ = height / nranks;
  extra_ = height % nranks;
}

int RowDecomposition::rows_of(int rank) const noexcept {
  return base_ + (rank < extra_ ? 1 : 0);
}

int RowDecomposition::row_start(int rank) const noexcept {
  const int full = rank < extra_ ? rank : extra_;
  return rank * base_ + full;
}

int RowDecomposition::owner_of(int row) const noexcept {
  // Rows [0, extra_*(base_+1)) belong to the ranks with an extra row.
  const int boundary = extra_ * (base_ + 1);
  if (row < boundary) return row / (base_ + 1);
  if (base_ == 0) return nranks_ - 1;
  return extra_ + (row - boundary) / base_;
}

std::vector<std::size_t> RowDecomposition::byte_counts(
    std::size_t row_bytes) const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    counts[static_cast<std::size_t>(r)] =
        static_cast<std::size_t>(rows_of(r)) * row_bytes;
  }
  return counts;
}

std::vector<std::size_t> RowDecomposition::byte_displs(
    std::size_t row_bytes) const {
  std::vector<std::size_t> displs(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    displs[static_cast<std::size_t>(r)] =
        static_cast<std::size_t>(row_start(r)) * row_bytes;
  }
  return displs;
}

// ---------------------------------------------------------------------------
// GridDecomposition
// ---------------------------------------------------------------------------

void GridDecomposition::squarest_grid(int nranks, int& px, int& py) noexcept {
  px = 1;
  for (int d = 1; d * d <= nranks; ++d) {
    if (nranks % d == 0) px = d;
  }
  py = nranks / px;
}

GridDecomposition::GridDecomposition(int width, int height, int nranks)
    : width_(width), height_(height) {
  mpisim::require(nranks > 0, mpisim::Err::Arg,
                  "grid decomposition needs at least one rank");
  squarest_grid(nranks, px_, py_);
  mpisim::require(px_ <= width && py_ <= height, mpisim::Err::Arg,
                  "more ranks than pixels along an axis");
}

GridDecomposition::Tile GridDecomposition::tile_of(int rank) const {
  mpisim::require(rank >= 0 && rank < nranks(), mpisim::Err::Rank,
                  "tile rank out of range");
  const int gx = grid_x(rank);
  const int gy = grid_y(rank);
  const int base_w = width_ / px_;
  const int extra_w = width_ % px_;
  const int base_h = height_ / py_;
  const int extra_h = height_ % py_;
  Tile t;
  t.width = base_w + (gx < extra_w ? 1 : 0);
  t.height = base_h + (gy < extra_h ? 1 : 0);
  t.x0 = gx * base_w + std::min(gx, extra_w);
  t.y0 = gy * base_h + std::min(gy, extra_h);
  return t;
}

int GridDecomposition::neighbor(int rank, int dx, int dy) const noexcept {
  const int gx = grid_x(rank) + dx;
  const int gy = grid_y(rank) + dy;
  if (gx < 0 || gx >= px_ || gy < 0 || gy >= py_) return -1;
  return gy * px_ + gx;
}

std::size_t GridDecomposition::halo_bytes(int rank,
                                          std::size_t pixel_bytes) const {
  const Tile t = tile_of(rank);
  std::size_t pixels = 0;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      if (neighbor(rank, dx, dy) < 0) continue;
      const std::size_t w =
          dx == 0 ? static_cast<std::size_t>(t.width) : 1u;
      const std::size_t h =
          dy == 0 ? static_cast<std::size_t>(t.height) : 1u;
      pixels += w * h;
    }
  }
  return pixels * pixel_bytes;
}

}  // namespace mpisect::apps::conv
