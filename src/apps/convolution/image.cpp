#include "apps/convolution/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "support/rng.hpp"

namespace mpisect::apps::conv {

Image::Image(int width, int height)
    : width_(width), height_(height), data_(value_count(), 0.0) {}

double Image::mean_abs_diff(const Image& other) const noexcept {
  if (width_ != other.width_ || height_ != other.height_) {
    return std::numeric_limits<double>::infinity();
  }
  if (data_.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    sum += std::fabs(data_[i] - other.data_[i]);
  }
  return sum / static_cast<double>(data_.size());
}

double Image::checksum() const noexcept {
  double sum = 0.0;
  for (const double v : data_) sum += v;
  return sum;
}

Image make_test_image(int width, int height, std::uint64_t seed) {
  Image img(width, height);
  const support::CounterRng rng(seed);
  const double fx = 12.0 / std::max(width, 1);
  const double fy = 9.0 / std::max(height, 1);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double gx = static_cast<double>(x) / std::max(width - 1, 1);
      const double gy = static_cast<double>(y) / std::max(height - 1, 1);
      const double wave =
          0.25 * std::sin(fx * x) * std::cos(fy * y);
      const std::uint64_t counter =
          static_cast<std::uint64_t>(y) * static_cast<std::uint64_t>(width) +
          static_cast<std::uint64_t>(x);
      const double noise = 0.1 * rng.uniform(0xDE7A11, counter);
      img.at(x, y, 0) = std::clamp(0.5 * gx + wave + noise, 0.0, 1.0);
      img.at(x, y, 1) = std::clamp(0.5 * gy + wave + noise, 0.0, 1.0);
      img.at(x, y, 2) = std::clamp(0.5 * (1.0 - gx) + wave + noise, 0.0, 1.0);
    }
  }
  return img;
}

std::vector<std::uint8_t> encode_ppm(const Image& img) {
  char header[64];
  const int n = std::snprintf(header, sizeof header, "P6\n%d %d\n255\n",
                              img.width(), img.height());
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(n) + img.value_count());
  out.insert(out.end(), header, header + n);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < kChannels; ++c) {
        const double v = std::clamp(img.at(x, y, c), 0.0, 1.0);
        out.push_back(static_cast<std::uint8_t>(std::lround(v * 255.0)));
      }
    }
  }
  return out;
}

Image decode_ppm(const std::vector<std::uint8_t>& bytes) {
  // Parse "P6\n<w> <h>\n<max>\n" tolerating arbitrary whitespace.
  std::size_t pos = 0;
  auto skip_space = [&] {
    while (pos < bytes.size() &&
           std::isspace(static_cast<int>(bytes[pos])) != 0) {
      ++pos;
    }
  };
  auto read_int = [&]() -> int {
    skip_space();
    int v = 0;
    bool any = false;
    while (pos < bytes.size() && bytes[pos] >= '0' && bytes[pos] <= '9') {
      v = v * 10 + (bytes[pos] - '0');
      ++pos;
      any = true;
    }
    if (!any) throw std::runtime_error("ppm: malformed integer");
    return v;
  };

  if (bytes.size() < 2 || bytes[0] != 'P' || bytes[1] != '6') {
    throw std::runtime_error("ppm: not a P6 file");
  }
  pos = 2;
  const int w = read_int();
  const int h = read_int();
  const int maxval = read_int();
  if (w <= 0 || h <= 0 || maxval != 255) {
    throw std::runtime_error("ppm: unsupported dimensions or depth");
  }
  ++pos;  // single whitespace after maxval
  const std::size_t need =
      static_cast<std::size_t>(w) * static_cast<std::size_t>(h) * kChannels;
  if (bytes.size() < pos + need) {
    throw std::runtime_error("ppm: truncated pixel data");
  }
  Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < kChannels; ++c) {
        img.at(x, y, c) = static_cast<double>(bytes[pos++]) / 255.0;
      }
    }
  }
  return img;
}

}  // namespace mpisect::apps::conv
