#include "apps/convolution/stencil.hpp"

#include <algorithm>
#include <utility>

namespace mpisect::apps::conv {

Kernel3x3 Kernel3x3::mean_filter() noexcept {
  Kernel3x3 k;
  k.w.fill(1.0 / 9.0);
  return k;
}

Kernel3x3 Kernel3x3::gaussian() noexcept {
  Kernel3x3 k;
  constexpr double kWeights[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};
  for (std::size_t i = 0; i < 9; ++i) k.w[i] = kWeights[i] / 16.0;
  return k;
}

Kernel3x3 Kernel3x3::identity() noexcept {
  Kernel3x3 k;
  k.w.fill(0.0);
  k.w[4] = 1.0;
  return k;
}

void apply_stencil_rows(const Image& src, Image& dst, int y0, int y1,
                        const Kernel3x3& kernel) noexcept {
  apply_stencil_region(src, dst, 0, src.width(), y0, y1, kernel);
}

void apply_stencil_region(const Image& src, Image& dst, int x0, int x1,
                          int y0, int y1, const Kernel3x3& kernel) noexcept {
  const int w = src.width();
  const int h = src.height();
  for (int y = std::max(y0, 0); y < std::min(y1, h); ++y) {
    for (int x = std::max(x0, 0); x < std::min(x1, w); ++x) {
      for (int c = 0; c < kChannels; ++c) {
        double acc = 0.0;
        for (int dy = -1; dy <= 1; ++dy) {
          const int yy = std::clamp(y + dy, 0, h - 1);
          for (int dx = -1; dx <= 1; ++dx) {
            const int xx = std::clamp(x + dx, 0, w - 1);
            acc += kernel.at(dx, dy) * src.at(xx, yy, c);
          }
        }
        dst.at(x, y, c) = acc;
      }
    }
  }
}

Image convolve_reference(Image img, int steps, const Kernel3x3& kernel) {
  Image back(img.width(), img.height());
  for (int s = 0; s < steps; ++s) {
    apply_stencil_rows(img, back, 0, img.height(), kernel);
    std::swap(img, back);
  }
  return img;
}

}  // namespace mpisect::apps::conv
