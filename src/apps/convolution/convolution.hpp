// The paper's convolution benchmark (Section 5.1, Figure 4).
//
// Phase pipeline, each outlined with an MPI_Section:
//   LOAD     — rank 0 loads+decodes the image (others wait)
//   SCATTER  — 1D row split scattered to all ranks (MPI_Scatterv)
//   per time-step (default 1000):
//     HALO     — ghost-row exchange with up/down neighbors
//     CONVOLVE — 3x3 stencil on the local band
//   GATHER   — image collected back on rank 0 (MPI_Gatherv)
//   STORE    — rank 0 encodes+stores the result (others wait)
//
// Two fidelities share this exact control flow (same sections, same MPI
// calls, same byte counts):
//   Full    — real pixels move and the stencil executes; results verified
//             against the serial reference (tests, examples).
//   Modeled — payloads are byte-counted only and compute is charged to the
//             virtual clock analytically (bench sweeps at paper scale:
//             5616x3744, 1000 steps, up to 456 ranks).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "apps/convolution/decomp.hpp"
#include "apps/convolution/image.hpp"
#include "apps/convolution/stencil.hpp"
#include "mpisim/runtime.hpp"

namespace mpisect::apps::conv {

struct ConvolutionConfig {
  int width = 5616;
  int height = 3744;
  int steps = 1000;
  /// Domain decomposition dimensionality: 1 = the paper's row split,
  /// 2 = square-ish tiles (Sec. 3's "higher dimension" alternative with
  /// smaller halos but more neighbours — 4 faces + 4 corners).
  int decomp_dims = 1;
  /// Full fidelity: move real pixels and execute the stencil.
  bool full_fidelity = false;
  std::uint64_t image_seed = 42;
  /// Modelled sequential I/O bandwidth for LOAD/STORE (bytes/s).
  double io_bandwidth = 2.5e8;
  double decode_flops_per_pixel = 25.0;
  double encode_flops_per_pixel = 12.0;
  double flops_per_pixel = kFlopsPerPixel;
  Kernel3x3 kernel = Kernel3x3::mean_filter();
  /// Full mode: write the result PPM here ("" = keep in memory only).
  std::string store_path;
  /// Emit MPI_Pcontrol phase markers alongside sections (for the
  /// IPM-baseline ablation).
  bool emit_pcontrol = false;
};

/// Section labels used by the benchmark (paper Sec. 5.1 list).
namespace labels {
inline constexpr const char* kLoad = "LOAD";
inline constexpr const char* kScatter = "SCATTER";
inline constexpr const char* kConvolve = "CONVOLVE";
inline constexpr const char* kHalo = "HALO";
inline constexpr const char* kGather = "GATHER";
inline constexpr const char* kStore = "STORE";
}  // namespace labels

class ConvolutionApp {
 public:
  explicit ConvolutionApp(ConvolutionConfig config);

  /// SPMD body — pass to World::run. Requires p <= height.
  void operator()(mpisim::Ctx& ctx);

  [[nodiscard]] const ConvolutionConfig& config() const noexcept {
    return config_;
  }
  /// Full mode, after run(): the gathered result on rank 0.
  [[nodiscard]] const Image& result() const noexcept { return *result_; }
  [[nodiscard]] bool has_result() const noexcept {
    return result_ != nullptr && result_->width() > 0;
  }

 private:
  void run_rank0_io(mpisim::Ctx& ctx, bool load, Image* io_image);
  void run_1d(mpisim::Ctx& ctx);
  void run_2d(mpisim::Ctx& ctx);
  ConvolutionConfig config_;
  std::shared_ptr<Image> result_ = std::make_shared<Image>();
};

}  // namespace mpisect::apps::conv
