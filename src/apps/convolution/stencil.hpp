// Stencil kernels for the convolution benchmark.
//
// The paper applies a 3x3 mean filter repeatedly ("its proximity with other
// algorithms (e.g., Lattice-Boltzmann) where spatial values are propagated
// using similar stencils"). apply_stencil_rows() convolves a row band of an
// image given the band plus one halo row on each side, which is exactly the
// unit of work a 1D-decomposed rank performs per time-step.
#pragma once

#include <array>

#include "apps/convolution/image.hpp"

namespace mpisect::apps::conv {

/// A normalized 3x3 convolution kernel.
struct Kernel3x3 {
  std::array<double, 9> w{};

  [[nodiscard]] static Kernel3x3 mean_filter() noexcept;
  [[nodiscard]] static Kernel3x3 gaussian() noexcept;   ///< binomial 1-2-1
  [[nodiscard]] static Kernel3x3 identity() noexcept;

  [[nodiscard]] double at(int dx, int dy) const noexcept {
    return w[static_cast<std::size_t>((dy + 1) * 3 + (dx + 1))];
  }
};

/// Convolve rows [y0, y1) of `src` into the same rows of `dst` (same
/// dimensions). Out-of-bounds accesses clamp to the image edge, so the
/// global border is handled by the same code on every rank. The caller
/// guarantees rows y0-1 and y1 of `src` hold valid data (interior ranks:
/// freshly exchanged halo rows; boundary ranks: clamped automatically).
void apply_stencil_rows(const Image& src, Image& dst, int y0, int y1,
                        const Kernel3x3& kernel) noexcept;

/// Convolve the rectangle [x0, x1) x [y0, y1) (clamping out-of-bounds
/// reads to the image edge). apply_stencil_rows is the full-width case;
/// the 2D-decomposed benchmark convolves only its tile interior.
void apply_stencil_region(const Image& src, Image& dst, int x0, int x1,
                          int y0, int y1, const Kernel3x3& kernel) noexcept;

/// Serial reference: convolve the whole image `steps` times with the given
/// kernel (double-buffered). Used to verify distributed results.
[[nodiscard]] Image convolve_reference(Image img, int steps,
                                       const Kernel3x3& kernel);

/// Nominal flop count per pixel per step for the 3x3 kernel (used by the
/// charge model; calibrated so the paper-size image costs ~5.2 s/step on
/// the Nehalem preset, matching the paper's ~5590 s sequential total).
inline constexpr double kFlopsPerPixel = 580.0;

}  // namespace mpisect::apps::conv
