// Geometry primitives for the mini-Lulesh proxy: hexahedral volumes and
// their exact gradients with respect to corner positions.
//
// A hex cell is decomposed into six tetrahedra fanning around the main
// diagonal (c000 -> c111); the signed tet volumes sum to the exact hex
// volume for planar-faced hexes and a consistent approximation otherwise.
// The volume gradient dV/dx_corner is assembled from the analytic tet
// gradients and drives the pressure force in IntegrateStress — exactly the
// role CalcElemVolumeDerivative plays in LULESH proper.
#pragma once

#include <array>
#include <cstddef>

namespace mpisect::apps::lulesh {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) noexcept {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  friend Vec3 operator+(Vec3 a, const Vec3& b) noexcept { return a += b; }
  friend Vec3 operator-(Vec3 a, const Vec3& b) noexcept { return a -= b; }
  friend Vec3 operator*(Vec3 a, double s) noexcept { return a *= s; }
  friend Vec3 operator*(double s, Vec3 a) noexcept { return a *= s; }
};

[[nodiscard]] inline double dot(const Vec3& a, const Vec3& b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
[[nodiscard]] inline Vec3 cross(const Vec3& a, const Vec3& b) noexcept {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

/// Hex corners in (i, j, k) bit order: index = i + 2*j + 4*k,
/// i.e. c[0]=c000, c[1]=c100, c[2]=c010, c[3]=c110, c[4]=c001, ...
using HexCorners = std::array<Vec3, 8>;

/// Signed volume of the hex (positive for a right-handed, non-inverted
/// cell such as an axis-aligned box).
[[nodiscard]] double hex_volume(const HexCorners& c) noexcept;

/// Exact gradient of hex_volume with respect to each corner position.
[[nodiscard]] std::array<Vec3, 8> hex_volume_gradient(
    const HexCorners& c) noexcept;

/// Characteristic length of a hex with volume v (cube-root metric, the
/// proxy for LULESH's CalcElemCharacteristicLength).
[[nodiscard]] double characteristic_length(double volume) noexcept;

}  // namespace mpisect::apps::lulesh
