#include "apps/lulesh/comm.hpp"

#include <array>
#include <cmath>

#include "mpisim/error.hpp"

namespace mpisect::apps::lulesh {
namespace {

/// Direction index in [0, 27): (dx+1) + 3*(dy+1) + 9*(dz+1). 13 = self.
int dir_index(int dx, int dy, int dz) noexcept {
  return (dx + 1) + 3 * (dy + 1) + 9 * (dz + 1);
}

/// Node-range [lo, hi) of one axis for a boundary set in direction d.
void axis_range(int d, int n, int& lo, int& hi) noexcept {
  if (d < 0) {
    lo = 0;
    hi = 1;
  } else if (d > 0) {
    lo = n - 1;
    hi = n;
  } else {
    lo = 0;
    hi = n;
  }
}

std::size_t node_idx(int n, int i, int j, int k) noexcept {
  return (static_cast<std::size_t>(k) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(j)) *
             static_cast<std::size_t>(n) +
         static_cast<std::size_t>(i);
}

}  // namespace

CubeDecomposition::CubeDecomposition(int nranks) {
  mpisim::require(is_cube(nranks), mpisim::Err::Arg,
                  "lulesh requires a perfect-cube rank count");
  pgrid_ = static_cast<int>(std::lround(std::cbrt(nranks)));
}

bool CubeDecomposition::is_cube(int nranks) noexcept {
  if (nranks <= 0) return false;
  const int r = static_cast<int>(std::lround(std::cbrt(nranks)));
  return r * r * r == nranks;
}

CubeDecomposition::Coords CubeDecomposition::coords_of(
    int rank) const noexcept {
  Coords c;
  c.rx = rank % pgrid_;
  c.ry = (rank / pgrid_) % pgrid_;
  c.rz = rank / (pgrid_ * pgrid_);
  return c;
}

int CubeDecomposition::rank_of(int rx, int ry, int rz) const noexcept {
  return rx + pgrid_ * (ry + pgrid_ * rz);
}

int CubeDecomposition::neighbor(int rank, int dx, int dy,
                                int dz) const noexcept {
  const Coords c = coords_of(rank);
  const int nx = c.rx + dx;
  const int ny = c.ry + dy;
  const int nz = c.rz + dz;
  if (nx < 0 || nx >= pgrid_ || ny < 0 || ny >= pgrid_ || nz < 0 ||
      nz >= pgrid_) {
    return -1;
  }
  return rank_of(nx, ny, nz);
}

int CubeDecomposition::neighbor_count(int rank) const noexcept {
  int n = 0;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        if (neighbor(rank, dx, dy, dz) >= 0) ++n;
      }
    }
  }
  return n;
}

ExchangeStats exchange_sum_nodal(mpisim::Comm& comm,
                                 const CubeDecomposition& cube,
                                 int nnode_edge, std::vector<double>* field0,
                                 std::vector<double>* field1,
                                 std::vector<double>* field2, int tag_base) {
  ExchangeStats stats;
  const int rank = comm.rank();
  const int n = nnode_edge;
  std::array<std::vector<double>*, 3> fields{field0, field1, field2};
  int nfields = 0;
  for (auto* f : fields) {
    if (f != nullptr) ++nfields;
  }
  const bool full = nfields > 0;

  struct Pending {
    int dx, dy, dz;
    int peer;
    std::size_t count;  ///< doubles per message
    std::vector<double> send_buf;
    std::vector<double> recv_buf;
    mpisim::Comm::Request send_req;
  };
  std::vector<Pending> pending;
  pending.reserve(26);

  // Snapshot + isend every boundary set (snapshots first so the sums we
  // ship are the *local* contributions, untouched by incoming adds).
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int peer = cube.neighbor(rank, dx, dy, dz);
        if (peer < 0) continue;
        int ilo, ihi, jlo, jhi, klo, khi;
        axis_range(dx, n, ilo, ihi);
        axis_range(dy, n, jlo, jhi);
        axis_range(dz, n, klo, khi);
        Pending p;
        p.dx = dx;
        p.dy = dy;
        p.dz = dz;
        p.peer = peer;
        p.count = static_cast<std::size_t>(ihi - ilo) *
                  static_cast<std::size_t>(jhi - jlo) *
                  static_cast<std::size_t>(khi - klo) *
                  static_cast<std::size_t>(full ? nfields : 3);
        if (full) {
          p.send_buf.reserve(p.count);
          for (int k = klo; k < khi; ++k) {
            for (int j = jlo; j < jhi; ++j) {
              for (int i = ilo; i < ihi; ++i) {
                const std::size_t idx = node_idx(n, i, j, k);
                for (auto* f : fields) {
                  if (f != nullptr) p.send_buf.push_back((*f)[idx]);
                }
              }
            }
          }
        }
        pending.push_back(std::move(p));
      }
    }
  }
  for (auto& p : pending) {
    const std::size_t bytes = p.count * sizeof(double);
    p.send_req =
        comm.isend(p.send_buf.empty() ? nullptr : p.send_buf.data(), bytes,
                   p.peer, tag_base + dir_index(p.dx, p.dy, p.dz));
    ++stats.messages;
    stats.bytes += bytes;
  }

  // Receive and accumulate. The message from the neighbour at my direction
  // d carries THEIR boundary set for -d — the same global nodes as MY set
  // for d — and was tagged with the sender's direction, i.e. -d.
  for (auto& p : pending) {
    const std::size_t bytes = p.count * sizeof(double);
    if (full) p.recv_buf.resize(p.count);
    comm.recv(full ? p.recv_buf.data() : nullptr, bytes, p.peer,
              tag_base + dir_index(-p.dx, -p.dy, -p.dz));
    if (full) {
      int ilo, ihi, jlo, jhi, klo, khi;
      axis_range(p.dx, n, ilo, ihi);
      axis_range(p.dy, n, jlo, jhi);
      axis_range(p.dz, n, klo, khi);
      std::size_t cursor = 0;
      for (int k = klo; k < khi; ++k) {
        for (int j = jlo; j < jhi; ++j) {
          for (int i = ilo; i < ihi; ++i) {
            const std::size_t idx = node_idx(n, i, j, k);
            for (auto* f : fields) {
              if (f != nullptr) (*f)[idx] += p.recv_buf[cursor++];
            }
          }
        }
      }
    }
  }
  for (auto& p : pending) p.send_req.wait();
  return stats;
}

ExchangeStats exchange_elem_faces(mpisim::Comm& comm,
                                  const CubeDecomposition& cube, int s,
                                  const std::vector<double>* field,
                                  int tag_base) {
  ExchangeStats stats;
  const int rank = comm.rank();
  const bool full = field != nullptr;
  const std::size_t layer =
      static_cast<std::size_t>(s) * static_cast<std::size_t>(s);
  const std::size_t bytes = layer * sizeof(double);

  constexpr int kFaces[6][3] = {{-1, 0, 0}, {1, 0, 0},  {0, -1, 0},
                                {0, 1, 0},  {0, 0, -1}, {0, 0, 1}};
  struct Pending {
    int peer;
    int dir;
    std::vector<double> send_buf;
    std::vector<double> recv_buf;
    mpisim::Comm::Request send_req;
  };
  std::vector<Pending> pending;
  for (int f = 0; f < 6; ++f) {
    const int peer =
        cube.neighbor(rank, kFaces[f][0], kFaces[f][1], kFaces[f][2]);
    if (peer < 0) continue;
    Pending p;
    p.peer = peer;
    p.dir = f;
    if (full) {
      // Pack the touching element layer (plane index 0 or s-1 on the
      // face's axis).
      p.send_buf.reserve(layer);
      const int axis = f / 2;
      const int plane = (f % 2 == 0) ? 0 : s - 1;
      for (int b = 0; b < s; ++b) {
        for (int a = 0; a < s; ++a) {
          int i = 0, j = 0, k = 0;
          if (axis == 0) {
            i = plane;
            j = a;
            k = b;
          } else if (axis == 1) {
            i = a;
            j = plane;
            k = b;
          } else {
            i = a;
            j = b;
            k = plane;
          }
          const std::size_t idx =
              (static_cast<std::size_t>(k) * static_cast<std::size_t>(s) +
               static_cast<std::size_t>(j)) *
                  static_cast<std::size_t>(s) +
              static_cast<std::size_t>(i);
          p.send_buf.push_back((*field)[idx]);
        }
      }
    }
    pending.push_back(std::move(p));
  }
  for (auto& p : pending) {
    p.send_req = comm.isend(p.send_buf.empty() ? nullptr : p.send_buf.data(),
                            bytes, p.peer, tag_base + p.dir);
    ++stats.messages;
    stats.bytes += bytes;
  }
  for (auto& p : pending) {
    if (full) p.recv_buf.resize(layer);
    // The opposite face index on the sender: pairs (0,1), (2,3), (4,5).
    const int opposite = p.dir ^ 1;
    comm.recv(full ? p.recv_buf.data() : nullptr, bytes, p.peer,
              tag_base + opposite);
  }
  for (auto& p : pending) p.send_req.wait();
  return stats;
}

}  // namespace mpisect::apps::lulesh
