#include "apps/lulesh/domain.hpp"

#include <algorithm>
#include <cmath>

namespace mpisect::apps::lulesh {

Domain::Domain(const DomainConfig& config) : cfg_(config) {
  const std::size_t nn = node_count();
  const std::size_t ne = elem_count();
  x.assign(nn, 0.0);
  y.assign(nn, 0.0);
  z.assign(nn, 0.0);
  xd.assign(nn, 0.0);
  yd.assign(nn, 0.0);
  zd.assign(nn, 0.0);
  xdd.assign(nn, 0.0);
  ydd.assign(nn, 0.0);
  zdd.assign(nn, 0.0);
  fx.assign(nn, 0.0);
  fy.assign(nn, 0.0);
  fz.assign(nn, 0.0);
  nmass.assign(nn, 0.0);
  e.assign(ne, 0.0);
  press.assign(ne, 0.0);
  q.assign(ne, 0.0);
  vol.assign(ne, 0.0);
  vol0.assign(ne, 0.0);
  delv.assign(ne, 0.0);
  elen.assign(ne, 0.0);
  emass.assign(ne, 0.0);
  initialize();
}

std::array<std::size_t, 8> Domain::elem_nodes(int i, int j,
                                              int k) const noexcept {
  return {node_index(i, j, k),         node_index(i + 1, j, k),
          node_index(i, j + 1, k),     node_index(i + 1, j + 1, k),
          node_index(i, j, k + 1),     node_index(i + 1, j, k + 1),
          node_index(i, j + 1, k + 1), node_index(i + 1, j + 1, k + 1)};
}

HexCorners Domain::corners_of(int i, int j, int k) const noexcept {
  HexCorners c;
  const auto nodes = elem_nodes(i, j, k);
  for (std::size_t n = 0; n < 8; ++n) {
    c[n] = Vec3{x[nodes[n]], y[nodes[n]], z[nodes[n]]};
  }
  return c;
}

bool Domain::on_symmetry_face(int axis) const noexcept {
  switch (axis) {
    case 0: return cfg_.rx == 0;
    case 1: return cfg_.ry == 0;
    case 2: return cfg_.rz == 0;
    default: return false;
  }
}

void Domain::initialize() {
  const int n = nnode_edge();
  // Global unit cube split into pgrid^3 rank blocks of s^3 elements.
  const double h =
      1.0 / (static_cast<double>(cfg_.pgrid) * static_cast<double>(cfg_.s));
  const double ox = static_cast<double>(cfg_.rx) * cfg_.s * h;
  const double oy = static_cast<double>(cfg_.ry) * cfg_.s * h;
  const double oz = static_cast<double>(cfg_.rz) * cfg_.s * h;
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        const std::size_t idx = node_index(i, j, k);
        x[idx] = ox + i * h;
        y[idx] = oy + j * h;
        z[idx] = oz + k * h;
      }
    }
  }
  for (int k = 0; k < s(); ++k) {
    for (int j = 0; j < s(); ++j) {
      for (int i = 0; i < s(); ++i) {
        const std::size_t idx = elem_index(i, j, k);
        const double v = hex_volume(corners_of(i, j, k));
        vol[idx] = v;
        vol0[idx] = v;
        elen[idx] = characteristic_length(v);
        emass[idx] = cfg_.rho0 * v;
      }
    }
  }
  // Nodal mass: each element spreads its mass evenly over its 8 corners.
  for (int k = 0; k < s(); ++k) {
    for (int j = 0; j < s(); ++j) {
      for (int i = 0; i < s(); ++i) {
        const double share = emass[elem_index(i, j, k)] / 8.0;
        for (const auto nidx : elem_nodes(i, j, k)) nmass[nidx] += share;
      }
    }
  }
  // NOTE: nodal masses on rank boundaries are completed by the runtime's
  // initial mass exchange (LuleshApp), since neighbouring ranks contribute
  // to shared nodes.

  // Sedov: deposit the blast energy in the element at the global origin.
  if (cfg_.rx == 0 && cfg_.ry == 0 && cfg_.rz == 0) {
    const std::size_t origin = elem_index(0, 0, 0);
    e[origin] = cfg_.e0;
    press[origin] =
        (cfg_.gamma_gas - 1.0) * e[origin] / std::max(vol[origin], 1e-300);
  }
}

double Domain::total_internal_energy() const noexcept {
  double sum = 0.0;
  for (const double v : e) sum += v;
  return sum;
}

double Domain::total_kinetic_energy() const noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < nmass.size(); ++i) {
    sum += 0.5 * nmass[i] *
           (xd[i] * xd[i] + yd[i] * yd[i] + zd[i] * zd[i]);
  }
  return sum;
}

double Domain::min_volume() const noexcept {
  double m = vol.empty() ? 0.0 : vol[0];
  for (const double v : vol) m = std::min(m, v);
  return m;
}

double Domain::max_abs_velocity() const noexcept {
  double m = 0.0;
  for (std::size_t i = 0; i < xd.size(); ++i) {
    m = std::max({m, std::fabs(xd[i]), std::fabs(yd[i]), std::fabs(zd[i])});
  }
  return m;
}

}  // namespace mpisect::apps::lulesh
