// Cube decomposition and halo exchanges for the mini-Lulesh proxy.
//
// LULESH constrains the MPI process count to a perfect cube (paper Table 7)
// and exchanges boundary nodal quantities with up to 26 neighbours (faces,
// edges, corners). exchange_sum_nodal() implements the sum-combine pattern:
// every rank snapshots its *own* contribution on each shared boundary set,
// ships it to the neighbour, and accumulates everything it receives — a
// node shared by 2/4/8 ranks ends up with the full global sum on each of
// them, with no double counting.
//
// All exchange functions work in both fidelities: passing null field
// pointers sends modelled byte counts only (bench mode).
#pragma once

#include <cstddef>
#include <vector>

#include "mpisim/comm.hpp"

namespace mpisect::apps::lulesh {

class CubeDecomposition {
 public:
  /// Requires nranks to be a perfect cube (1, 8, 27, 64, ...).
  explicit CubeDecomposition(int nranks);

  [[nodiscard]] static bool is_cube(int nranks) noexcept;

  [[nodiscard]] int pgrid() const noexcept { return pgrid_; }
  [[nodiscard]] int nranks() const noexcept { return pgrid_ * pgrid_ * pgrid_; }

  struct Coords {
    int rx = 0;
    int ry = 0;
    int rz = 0;
  };
  [[nodiscard]] Coords coords_of(int rank) const noexcept;
  [[nodiscard]] int rank_of(int rx, int ry, int rz) const noexcept;
  /// Neighbour rank at offset (dx, dy, dz) in {-1,0,1}^3, or -1 outside
  /// the cube.
  [[nodiscard]] int neighbor(int rank, int dx, int dy, int dz) const noexcept;
  /// Number of existing neighbours (up to 26).
  [[nodiscard]] int neighbor_count(int rank) const noexcept;

 private:
  int pgrid_;
};

struct ExchangeStats {
  int messages = 0;
  std::size_t bytes = 0;
};

/// Sum-combine nodal halo exchange over all existing neighbours of the
/// calling rank. fields: up to three same-sized nodal arrays (e.g. fx, fy,
/// fz), laid out on an nnode_edge^3 grid; null pointers switch to
/// modelled-bytes-only mode. tag_base reserves 27 consecutive user tags.
ExchangeStats exchange_sum_nodal(mpisim::Comm& comm,
                                 const CubeDecomposition& cube,
                                 int nnode_edge,
                                 std::vector<double>* field0,
                                 std::vector<double>* field1,
                                 std::vector<double>* field2, int tag_base);

/// Face-neighbour element-layer exchange (the proxy for LULESH's monotonic-Q
/// gradient communication): ships one element layer per touching face. The
/// received layers land in caller-provided scratch (or are modelled only).
ExchangeStats exchange_elem_faces(mpisim::Comm& comm,
                                  const CubeDecomposition& cube, int s,
                                  const std::vector<double>* field,
                                  int tag_base);

}  // namespace mpisect::apps::lulesh
