// Physics kernels of the mini-Lulesh proxy, with their charge model.
//
// Every kernel has two halves, consistent with the project-wide
// charge/execute decoupling:
//   * a real numerical body operating on a Domain (Full fidelity), and
//   * a virtual-clock charge through a MiniOMP Team, parameterized by the
//     kernel's cost (flops per element/node) and scaling character
//     (parallel fraction, memory intensity).
// Passing a null Domain runs the charge only (bench mode).
//
// The cost table is calibrated so that s=48 (110 592 elements) runs
// sequentially in the high-800s-of-seconds range on the KNL preset — the
// paper's Fig. 10 reports 882.48 s — with LagrangeElements costing ~1.45x
// LagrangeNodal, matching the paper's ratio at the inflexion point. The
// differing memory intensities are what make LagrangeElements scale better
// under OpenMP than LagrangeNodal (paper Fig. 8/9).
#pragma once

#include "apps/lulesh/domain.hpp"
#include "minomp/team.hpp"

namespace mpisect::apps::lulesh {

struct KernelCost {
  double flops_per_item = 0.0;  ///< per element (or node, as documented)
  minomp::KernelProfile profile;
};

namespace costs {
// LagrangeNodal side (per element unless noted).
inline constexpr KernelCost kIntegrateStress{1100.0, {0.985, 0.55}};
inline constexpr KernelCost kHourglass{1500.0, {0.985, 0.50}};
inline constexpr KernelCost kAcceleration{90.0, {0.99, 0.75}};  // per node
inline constexpr KernelCost kAccelerationBC{6.0, {0.95, 0.85}}; // per node
inline constexpr KernelCost kVelocity{30.0, {0.99, 0.85}};      // per node
inline constexpr KernelCost kPosition{24.0, {0.99, 0.85}};      // per node
// LagrangeElements side (per element).
inline constexpr KernelCost kKinematics{1300.0, {0.99, 0.35}};
inline constexpr KernelCost kCalcQ{900.0, {0.99, 0.40}};
inline constexpr KernelCost kEOS{1600.0, {0.995, 0.15}};
inline constexpr KernelCost kUpdateVolumes{100.0, {0.99, 0.90}};
inline constexpr KernelCost kTimeConstraints{120.0, {0.99, 0.30}};
}  // namespace costs

/// Charge one kernel's modelled time for `items` work items.
void charge_kernel(minomp::Team& team, const KernelCost& cost,
                   std::int64_t items);

/// Hydro coefficients shared by the kernels.
struct HydroParams {
  double gamma_gas = 1.4;
  double cfl = 0.15;
  double dt_max = 1e-2;
  double dt_growth = 1.05;
  double q1 = 1.5;   ///< quadratic (von Neumann) viscosity coefficient
  double q2 = 0.06;  ///< linear viscosity coefficient
  double hourglass = 0.02;  ///< velocity-damping stabilizer coefficient
  double e_min = 0.0;
  double p_min = 0.0;
};

// Each kernel: executes on `d` when non-null, always charges via `team`.

/// Zero force accumulators, then accumulate pressure+viscosity forces:
/// F_n += (p + q) * dV/dx_n over each element's corners.
void kernel_integrate_stress(Domain* d, minomp::Team& team,
                             std::int64_t elems);

/// Stabilizing velocity damping standing in for LULESH's hourglass force:
/// F_n -= hourglass * m_n * v_n / dt_ref.
void kernel_hourglass(Domain* d, minomp::Team& team, std::int64_t elems,
                      const HydroParams& hp);

/// a = F / m into the xdd/ydd/zdd accumulators.
void kernel_acceleration(Domain* d, minomp::Team& team, std::int64_t nodes);

/// Sedov symmetry planes: zero normal acceleration on global low faces.
void kernel_acceleration_bc(Domain* d, minomp::Team& team,
                            std::int64_t nodes);

/// v += a * dt.
void kernel_velocity(Domain* d, minomp::Team& team, std::int64_t nodes,
                     double dt);

/// x += v * dt.
void kernel_position(Domain* d, minomp::Team& team, std::int64_t nodes,
                     double dt);

/// New volumes from current positions; delv and characteristic length.
/// Stores the new volume in `vnew` (caller scratch, size elem_count).
void kernel_kinematics(Domain* d, minomp::Team& team, std::int64_t elems,
                       std::vector<double>* vnew);

/// von Neumann-Richtmyer artificial viscosity from the volumetric strain
/// rate (compression only).
void kernel_calc_q(Domain* d, minomp::Team& team, std::int64_t elems,
                   const std::vector<double>* vnew, double dt,
                   const HydroParams& hp);

/// Energy update de = -(p + q) dV, then ideal-gas EOS p = (gamma-1) e / v.
void kernel_eos(Domain* d, minomp::Team& team, std::int64_t elems,
                const std::vector<double>* vnew, const HydroParams& hp);

/// Commit vnew into vol.
void kernel_update_volumes(Domain* d, minomp::Team& team, std::int64_t elems,
                           const std::vector<double>* vnew);

/// Courant timestep over local elements: cfl * min(elen / soundspeed).
/// Returns a large sentinel when d is null (bench mode).
[[nodiscard]] double kernel_time_constraints(Domain* d, minomp::Team& team,
                                             std::int64_t elems,
                                             const HydroParams& hp);

}  // namespace mpisect::apps::lulesh
