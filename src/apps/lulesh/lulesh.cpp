#include "apps/lulesh/lulesh.hpp"

#include <cmath>

#include "core/sections/api.hpp"
#include "mpisim/error.hpp"

namespace mpisect::apps::lulesh {
namespace {

using mpisim::Comm;
using mpisim::Ctx;

/// Reserved user-tag blocks for the exchanges.
constexpr int kTagMass = 100;    ///< 27 tags
constexpr int kTagForce = 140;   ///< 27 tags
constexpr int kTagMonoQ = 180;   ///< 6 tags

class Phase {
 public:
  Phase(Comm& comm, const char* label, bool pcontrol)
      : comm_(comm), label_(label), pcontrol_(pcontrol) {
    sections::MPIX_Section_enter(comm_, label_);
    if (pcontrol_) comm_.ctx().pcontrol(1, label_);
  }
  ~Phase() {
    if (pcontrol_) comm_.ctx().pcontrol(-1, label_);
    sections::MPIX_Section_exit(comm_, label_);
  }
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

 private:
  Comm& comm_;
  const char* label_;
  bool pcontrol_;
};

/// Kinetic energy with every shared node counted exactly once: each node's
/// weight is 1 / (number of ranks touching it), determined by which of this
/// rank's faces have neighbours.
double owned_kinetic_energy(const Domain& d, const CubeDecomposition& cube,
                            int rank) {
  const int n = d.nnode_edge();
  const bool lo_x = cube.neighbor(rank, -1, 0, 0) >= 0;
  const bool hi_x = cube.neighbor(rank, 1, 0, 0) >= 0;
  const bool lo_y = cube.neighbor(rank, 0, -1, 0) >= 0;
  const bool hi_y = cube.neighbor(rank, 0, 1, 0) >= 0;
  const bool lo_z = cube.neighbor(rank, 0, 0, -1) >= 0;
  const bool hi_z = cube.neighbor(rank, 0, 0, 1) >= 0;
  double sum = 0.0;
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        int share = 1;
        if ((i == 0 && lo_x) || (i == n - 1 && hi_x)) share *= 2;
        if ((j == 0 && lo_y) || (j == n - 1 && hi_y)) share *= 2;
        if ((k == 0 && lo_z) || (k == n - 1 && hi_z)) share *= 2;
        const std::size_t idx = d.node_index(i, j, k);
        const double v2 = d.xd[idx] * d.xd[idx] + d.yd[idx] * d.yd[idx] +
                          d.zd[idx] * d.zd[idx];
        sum += 0.5 * d.nmass[idx] * v2 / static_cast<double>(share);
      }
    }
  }
  return sum;
}

}  // namespace

int edge_for_total_elements(long total_elements, int nranks) {
  if (!CubeDecomposition::is_cube(nranks)) return -1;
  const long per_rank = total_elements / nranks;
  if (per_rank * nranks != total_elements) return -1;
  const int s = static_cast<int>(std::lround(std::cbrt(per_rank)));
  return static_cast<long>(s) * s * s == per_rank ? s : -1;
}

LuleshApp::LuleshApp(LuleshConfig config) : config_(config) {
  config_.hydro.e_min = std::min(config_.hydro.e_min, 0.0);
}

void LuleshApp::operator()(mpisim::Ctx& ctx) {
  Comm comm = ctx.world_comm();
  const int rank = comm.rank();
  const int p = comm.size();
  const bool full = config_.full_fidelity;
  const bool pc = config_.emit_pcontrol;
  const CubeDecomposition cube(p);
  const auto coords = cube.coords_of(rank);

  std::unique_ptr<Domain> dom;
  if (full) {
    DomainConfig dc;
    dc.s = config_.s;
    dc.rx = coords.rx;
    dc.ry = coords.ry;
    dc.rz = coords.rz;
    dc.pgrid = cube.pgrid();
    dc.e0 = config_.e0;
    dc.gamma_gas = config_.hydro.gamma_gas;
    dom = std::make_unique<Domain>(dc);
  }
  Domain* d = dom.get();
  const auto elems = static_cast<std::int64_t>(config_.s) * config_.s *
                     config_.s;
  const auto n_edge = config_.s + 1;
  const auto nodes =
      static_cast<std::int64_t>(n_edge) * n_edge * n_edge;

  minomp::Team team(ctx, config_.omp_threads);
  team.set_schedule(config_.schedule);
  // Per-phase restraint (Sec. 8): distinct teams for the two Lagrange
  // phases when the caller caps them individually.
  minomp::Team nodal_team(ctx, config_.nodal_threads > 0
                                   ? config_.nodal_threads
                                   : config_.omp_threads);
  nodal_team.set_schedule(config_.schedule);
  minomp::Team elem_team(ctx, config_.element_threads > 0
                                  ? config_.element_threads
                                  : config_.omp_threads);
  elem_team.set_schedule(config_.schedule);

  // Complete nodal masses on rank boundaries (setup, inside MPI_MAIN).
  exchange_sum_nodal(comm, cube, n_edge, full ? &d->nmass : nullptr, nullptr,
                     nullptr, kTagMass);

  std::vector<double> vnew;
  double dt = 0.0;
  double next_dt_local = config_.hydro.dt_max * 1e-3;  // conservative start
  if (full) {
    // Seed the first timestep from the initial state's Courant limit.
    next_dt_local =
        kernel_time_constraints(d, team, 0, config_.hydro);
  }
  double sim_time = 0.0;

  {
    const Phase timeloop(comm, "timeloop", pc);
    for (int step = 0; step < config_.steps; ++step) {
      {
        const Phase ph(comm, "TimeIncrement", pc);
        double new_dt = 0.0;
        comm.allreduce(&next_dt_local, &new_dt, 1, mpisim::Datatype::Double,
                       mpisim::ReduceOp::Min);
        if (dt > 0.0) {
          new_dt = std::min(new_dt, dt * config_.hydro.dt_growth);
        }
        dt = std::min(new_dt, config_.hydro.dt_max);
        sim_time += dt;
      }
      const Phase leapfrog(comm, "LagrangeLeapFrog", pc);
      {
        const Phase nodal(comm, "LagrangeNodal", pc);
        {
          const Phase ph(comm, "CalcForceForNodes", pc);
          {
            const Phase ph2(comm, "IntegrateStressForElems", pc);
            kernel_integrate_stress(d, nodal_team, elems);
          }
          {
            const Phase ph2(comm, "CalcHourglassControlForElems", pc);
            kernel_hourglass(d, nodal_team, elems, config_.hydro);
          }
          {
            const Phase ph2(comm, "CommForce", pc);
            exchange_sum_nodal(comm, cube, n_edge, full ? &d->fx : nullptr,
                               full ? &d->fy : nullptr,
                               full ? &d->fz : nullptr, kTagForce);
          }
        }
        {
          const Phase ph(comm, "CalcAccelerationForNodes", pc);
          kernel_acceleration(d, nodal_team, nodes);
        }
        {
          const Phase ph(comm, "ApplyAccelerationBC", pc);
          kernel_acceleration_bc(d, nodal_team, nodes);
        }
        {
          const Phase ph(comm, "CalcVelocityForNodes", pc);
          kernel_velocity(d, nodal_team, nodes, dt);
        }
        {
          const Phase ph(comm, "CalcPositionForNodes", pc);
          kernel_position(d, nodal_team, nodes, dt);
        }
      }
      {
        const Phase elements(comm, "LagrangeElements", pc);
        {
          const Phase ph(comm, "CalcLagrangeElements", pc);
          {
            const Phase ph2(comm, "CalcKinematicsForElems", pc);
            kernel_kinematics(d, elem_team, elems, full ? &vnew : nullptr);
          }
        }
        {
          const Phase ph(comm, "CalcQForElems", pc);
          {
            const Phase ph2(comm, "CommMonoQ", pc);
            exchange_elem_faces(comm, cube, config_.s,
                                full ? &d->delv : nullptr, kTagMonoQ);
          }
          kernel_calc_q(d, elem_team, elems, full ? &vnew : nullptr, dt,
                        config_.hydro);
        }
        {
          const Phase ph(comm, "ApplyMaterialPropertiesForElems", pc);
          const Phase ph2(comm, "EvalEOSForElems", pc);
          kernel_eos(d, elem_team, elems, full ? &vnew : nullptr, config_.hydro);
        }
        {
          const Phase ph(comm, "UpdateVolumesForElems", pc);
          kernel_update_volumes(d, elem_team, elems, full ? &vnew : nullptr);
        }
      }
      {
        const Phase ph(comm, "CalcTimeConstraints", pc);
        next_dt_local =
            kernel_time_constraints(d, team, elems, config_.hydro);
      }
    }
  }

  // Global diagnostics (Full mode).
  if (full) {
    double locals[4] = {d->total_internal_energy(),
                        owned_kinetic_energy(*d, cube, rank),
                        -d->min_volume(), d->max_abs_velocity()};
    double sums[2] = {0.0, 0.0};
    comm.allreduce(locals, sums, 2, mpisim::Datatype::Double,
                   mpisim::ReduceOp::Sum);
    double maxs[2] = {0.0, 0.0};
    comm.allreduce(locals + 2, maxs, 2, mpisim::Datatype::Double,
                   mpisim::ReduceOp::Max);
    if (rank == 0) {
      result_->steps_run = config_.steps;
      result_->sim_time = sim_time;
      result_->final_dt = dt;
      result_->internal_energy = sums[0];
      result_->kinetic_energy = sums[1];
      result_->min_volume = -maxs[0];
      result_->max_velocity = maxs[1];
    }
  } else if (rank == 0) {
    result_->steps_run = config_.steps;
    result_->sim_time = sim_time;
    result_->final_dt = dt;
  }
}

}  // namespace mpisect::apps::lulesh
