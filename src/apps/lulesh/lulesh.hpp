// mini-Lulesh: an MPI+MiniOMP Lagrangian shock-hydro proxy with the
// CORAL benchmark's phase structure (paper Section 5.2).
//
// The paper instruments Lulesh with 21 MPI_Sections "in the main source
// file in order to outline main computation steps"; this proxy reproduces
// that instrumentation exactly — a nested hierarchy of 21 sections inside
// the timestep loop:
//
//   timeloop
//     TimeIncrement
//     LagrangeLeapFrog
//       LagrangeNodal
//         CalcForceForNodes
//           IntegrateStressForElems
//           CalcHourglassControlForElems
//           CommForce
//         CalcAccelerationForNodes
//         ApplyAccelerationBC
//         CalcVelocityForNodes
//         CalcPositionForNodes
//       LagrangeElements
//         CalcLagrangeElements
//           CalcKinematicsForElems
//         CalcQForElems
//           CommMonoQ
//         ApplyMaterialPropertiesForElems
//           EvalEOSForElems
//         UpdateVolumesForElems
//       CalcTimeConstraints
//
// Strong-scaling protocol per the paper's Table 7: the rank count must be
// a perfect cube and `s` is the per-rank edge so that s^3 * p stays at
// 110 592 elements for (s=48,p=1), (24,8), (16,27), (12,64). OpenMP-side
// parallelism comes from a MiniOMP team of `omp_threads` per rank; the
// sections see its effect purely through timing — the paper's headline
// demonstration ("measure OpenMP scaling solely from MPI instrumentation").
#pragma once

#include <memory>

#include "apps/lulesh/comm.hpp"
#include "apps/lulesh/domain.hpp"
#include "apps/lulesh/kernels.hpp"
#include "minomp/schedule.hpp"

namespace mpisect::apps::lulesh {

struct LuleshConfig {
  int s = 8;             ///< elements per edge per rank (LULESH -s)
  int steps = 20;        ///< timestep count
  int omp_threads = 1;   ///< MiniOMP team size per rank
  /// Per-phase parallelism restraint (paper Sec. 8 future work): when > 0,
  /// the LagrangeNodal / LagrangeElements kernels run on teams of this
  /// size instead of omp_threads — "dynamically restraining parallelism
  /// for non-scalable sections".
  int nodal_threads = 0;
  int element_threads = 0;
  bool full_fidelity = true;  ///< run the real physics
  minomp::Schedule schedule = minomp::Schedule::Static;
  HydroParams hydro;
  double e0 = 0.1;       ///< Sedov blast energy
  bool emit_pcontrol = false;
};

/// Global diagnostics, written by rank 0 after the run (Full mode).
struct LuleshResult {
  int steps_run = 0;
  double sim_time = 0.0;
  double final_dt = 0.0;
  double internal_energy = 0.0;  ///< global sum
  double kinetic_energy = 0.0;   ///< global sum (shared nodes counted once)
  double min_volume = 0.0;       ///< global min
  double max_velocity = 0.0;     ///< global max
  [[nodiscard]] double total_energy() const noexcept {
    return internal_energy + kinetic_energy;
  }
};

/// Table 7 helper: per-rank edge size keeping s^3 * p = elements, or -1 if
/// no integer s exists.
[[nodiscard]] int edge_for_total_elements(long total_elements, int nranks);

class LuleshApp {
 public:
  explicit LuleshApp(LuleshConfig config);

  /// SPMD body — pass to World::run. Rank count must be a perfect cube.
  void operator()(mpisim::Ctx& ctx);

  [[nodiscard]] const LuleshConfig& config() const noexcept { return config_; }
  [[nodiscard]] const LuleshResult& result() const noexcept {
    return *result_;
  }

 private:
  LuleshConfig config_;
  std::shared_ptr<LuleshResult> result_ = std::make_shared<LuleshResult>();
};

}  // namespace mpisect::apps::lulesh
