#include "apps/lulesh/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace mpisect::apps::lulesh {
namespace {

/// Nodes on this rank's grid lying on a global symmetry face.
bool on_face(const Domain& d, int axis, int i, int j, int k) noexcept {
  switch (axis) {
    case 0: return d.on_symmetry_face(0) && i == 0;
    case 1: return d.on_symmetry_face(1) && j == 0;
    case 2: return d.on_symmetry_face(2) && k == 0;
    default: return false;
  }
}

}  // namespace

void charge_kernel(minomp::Team& team, const KernelCost& cost,
                   std::int64_t items) {
  team.charge_loop(items, cost.flops_per_item, cost.profile);
}

void kernel_integrate_stress(Domain* d, minomp::Team& team,
                             std::int64_t elems) {
  if (d != nullptr) {
    std::fill(d->fx.begin(), d->fx.end(), 0.0);
    std::fill(d->fy.begin(), d->fy.end(), 0.0);
    std::fill(d->fz.begin(), d->fz.end(), 0.0);
    const int s = d->s();
    for (int k = 0; k < s; ++k) {
      for (int j = 0; j < s; ++j) {
        for (int i = 0; i < s; ++i) {
          const std::size_t ei = d->elem_index(i, j, k);
          const double sigma = d->press[ei] + d->q[ei];
          if (sigma == 0.0) continue;
          const HexCorners c = d->corners_of(i, j, k);
          const auto grad = hex_volume_gradient(c);
          const auto nodes = d->elem_nodes(i, j, k);
          // Internal pressure pushes the cell to expand: F_n = sigma dV/dx_n.
          for (std::size_t n = 0; n < 8; ++n) {
            d->fx[nodes[n]] += sigma * grad[n].x;
            d->fy[nodes[n]] += sigma * grad[n].y;
            d->fz[nodes[n]] += sigma * grad[n].z;
          }
        }
      }
    }
  }
  charge_kernel(team, costs::kIntegrateStress, elems);
}

namespace {

/// The four hourglass base vectors of the trilinear hex in bit order
/// (i + 2j + 4k): the shape-function products xi*eta, eta*zeta, xi*zeta,
/// xi*eta*zeta evaluated at the corners (xi = 2i-1, ...). They are
/// orthogonal to every constant and linear nodal field on the reference
/// element, so filtering along them damps only the spurious zero-energy
/// modes the single-point volume integration cannot see.
constexpr double kHgMode[4][8] = {
    // xi*eta
    {+1, -1, -1, +1, +1, -1, -1, +1},
    // eta*zeta
    {+1, +1, -1, -1, -1, -1, +1, +1},
    // xi*zeta
    {+1, -1, +1, -1, -1, +1, -1, +1},
    // xi*eta*zeta
    {-1, +1, +1, -1, +1, -1, -1, +1},
};

}  // namespace

void kernel_hourglass(Domain* d, minomp::Team& team, std::int64_t elems,
                      const HydroParams& hp) {
  if (d != nullptr) {
    // Flanagan-Belytschko-style viscous hourglass control: project nodal
    // velocities onto the hourglass modes and apply a resisting force
    // proportional to the modal rates. Rigid-body and linear velocity
    // fields are untouched (the modes sum to zero and are odd under the
    // reference coordinates); net momentum is exactly conserved.
    const int s = d->s();
    for (int k = 0; k < s; ++k) {
      for (int j = 0; j < s; ++j) {
        for (int i = 0; i < s; ++i) {
          const std::size_t ei = d->elem_index(i, j, k);
          const double v = std::max(d->vol[ei], 1e-300);
          const double rho = d->emass[ei] / v;
          const double c =
              std::sqrt(hp.gamma_gas * std::max(d->press[ei], 0.0) / rho);
          const double area = std::cbrt(v);
          const double coef = hp.hourglass * rho * (c + area) * area * area;
          const auto nodes = d->elem_nodes(i, j, k);
          double qx[4] = {};
          double qy[4] = {};
          double qz[4] = {};
          for (int m = 0; m < 4; ++m) {
            for (int n = 0; n < 8; ++n) {
              qx[m] += kHgMode[m][n] * d->xd[nodes[static_cast<std::size_t>(n)]];
              qy[m] += kHgMode[m][n] * d->yd[nodes[static_cast<std::size_t>(n)]];
              qz[m] += kHgMode[m][n] * d->zd[nodes[static_cast<std::size_t>(n)]];
            }
          }
          for (int n = 0; n < 8; ++n) {
            double fx = 0.0;
            double fy = 0.0;
            double fz = 0.0;
            for (int m = 0; m < 4; ++m) {
              fx += kHgMode[m][n] * qx[m];
              fy += kHgMode[m][n] * qy[m];
              fz += kHgMode[m][n] * qz[m];
            }
            const std::size_t ni = nodes[static_cast<std::size_t>(n)];
            d->fx[ni] -= coef * fx / 8.0;
            d->fy[ni] -= coef * fy / 8.0;
            d->fz[ni] -= coef * fz / 8.0;
          }
        }
      }
    }
  }
  charge_kernel(team, costs::kHourglass, elems);
}

void kernel_acceleration(Domain* d, minomp::Team& team, std::int64_t nodes) {
  if (d != nullptr) {
    for (std::size_t n = 0; n < d->nmass.size(); ++n) {
      const double inv_m = d->nmass[n] > 0.0 ? 1.0 / d->nmass[n] : 0.0;
      d->xdd[n] = d->fx[n] * inv_m;
      d->ydd[n] = d->fy[n] * inv_m;
      d->zdd[n] = d->fz[n] * inv_m;
    }
  }
  charge_kernel(team, costs::kAcceleration, nodes);
}

void kernel_acceleration_bc(Domain* d, minomp::Team& team,
                            std::int64_t nodes) {
  if (d != nullptr) {
    const int n = d->nnode_edge();
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          const std::size_t idx = d->node_index(i, j, k);
          if (on_face(*d, 0, i, j, k)) d->xdd[idx] = 0.0;
          if (on_face(*d, 1, i, j, k)) d->ydd[idx] = 0.0;
          if (on_face(*d, 2, i, j, k)) d->zdd[idx] = 0.0;
        }
      }
    }
  }
  charge_kernel(team, costs::kAccelerationBC, nodes);
}

void kernel_velocity(Domain* d, minomp::Team& team, std::int64_t nodes,
                     double dt) {
  if (d != nullptr) {
    for (std::size_t n = 0; n < d->xd.size(); ++n) {
      d->xd[n] += d->xdd[n] * dt;
      d->yd[n] += d->ydd[n] * dt;
      d->zd[n] += d->zdd[n] * dt;
    }
  }
  charge_kernel(team, costs::kVelocity, nodes);
}

void kernel_position(Domain* d, minomp::Team& team, std::int64_t nodes,
                     double dt) {
  if (d != nullptr) {
    for (std::size_t n = 0; n < d->x.size(); ++n) {
      d->x[n] += d->xd[n] * dt;
      d->y[n] += d->yd[n] * dt;
      d->z[n] += d->zd[n] * dt;
    }
  }
  charge_kernel(team, costs::kPosition, nodes);
}

void kernel_kinematics(Domain* d, minomp::Team& team, std::int64_t elems,
                       std::vector<double>* vnew) {
  if (d != nullptr && vnew != nullptr) {
    const int s = d->s();
    vnew->resize(d->elem_count());
    for (int k = 0; k < s; ++k) {
      for (int j = 0; j < s; ++j) {
        for (int i = 0; i < s; ++i) {
          const std::size_t ei = d->elem_index(i, j, k);
          const double v = hex_volume(d->corners_of(i, j, k));
          (*vnew)[ei] = v;
          d->delv[ei] = v - d->vol[ei];
          d->elen[ei] = characteristic_length(v);
        }
      }
    }
  }
  charge_kernel(team, costs::kKinematics, elems);
}

void kernel_calc_q(Domain* d, minomp::Team& team, std::int64_t elems,
                   const std::vector<double>* vnew, double dt,
                   const HydroParams& hp) {
  if (d != nullptr && vnew != nullptr && dt > 0.0) {
    for (std::size_t ei = 0; ei < d->elem_count(); ++ei) {
      const double v = std::max((*vnew)[ei], 1e-300);
      const double dvdot = d->delv[ei] / (v * dt);  // volumetric strain rate
      if (dvdot < 0.0) {  // compression: viscosity resists the shock
        const double rho = d->emass[ei] / v;
        const double len = d->elen[ei];
        const double c = std::sqrt(hp.gamma_gas *
                                   std::max(d->press[ei], 0.0) / rho);
        const double dl = -dvdot * len;
        d->q[ei] = rho * (hp.q1 * hp.q1 * dl * dl + hp.q2 * c * dl);
      } else {
        d->q[ei] = 0.0;
      }
    }
  }
  charge_kernel(team, costs::kCalcQ, elems);
}

void kernel_eos(Domain* d, minomp::Team& team, std::int64_t elems,
                const std::vector<double>* vnew, const HydroParams& hp) {
  if (d != nullptr && vnew != nullptr) {
    for (std::size_t ei = 0; ei < d->elem_count(); ++ei) {
      // Explicit work term: de = -(p + q) dV, then ideal-gas closure.
      d->e[ei] -= (d->press[ei] + d->q[ei]) * d->delv[ei];
      d->e[ei] = std::max(d->e[ei], hp.e_min);
      const double v = std::max((*vnew)[ei], 1e-300);
      d->press[ei] =
          std::max((hp.gamma_gas - 1.0) * d->e[ei] / v, hp.p_min);
    }
  }
  charge_kernel(team, costs::kEOS, elems);
}

void kernel_update_volumes(Domain* d, minomp::Team& team, std::int64_t elems,
                           const std::vector<double>* vnew) {
  if (d != nullptr && vnew != nullptr) {
    std::copy(vnew->begin(), vnew->end(), d->vol.begin());
  }
  charge_kernel(team, costs::kUpdateVolumes, elems);
}

double kernel_time_constraints(Domain* d, minomp::Team& team,
                               std::int64_t elems, const HydroParams& hp) {
  double dt = hp.dt_max;
  if (d != nullptr) {
    for (std::size_t ei = 0; ei < d->elem_count(); ++ei) {
      const double v = std::max(d->vol[ei], 1e-300);
      const double rho = d->emass[ei] / v;
      const double c =
          std::sqrt(hp.gamma_gas * std::max(d->press[ei], 0.0) / rho +
                    1e-30);
      dt = std::min(dt, hp.cfl * d->elen[ei] / (c + 1e-30));
    }
  }
  charge_kernel(team, costs::kTimeConstraints, elems);
  return dt;
}

}  // namespace mpisect::apps::lulesh
