// Per-rank simulation domain for the mini-Lulesh proxy.
//
// A structured block of s x s x s hexahedral elements with (s+1)^3 nodes,
// positioned inside the global unit cube by the rank's coordinates in the
// cube decomposition. Field layout follows LULESH: nodal position/velocity/
// force/mass, element energy/pressure/artificial-viscosity/volume/mass.
//
// The problem is the Sedov point-blast of the CORAL benchmark: energy is
// deposited in the element at the global origin, symmetry (mirror) boundary
// conditions hold on the three low faces of the global cube, and the shock
// expands through the octant.
#pragma once

#include <vector>

#include "apps/lulesh/mesh.hpp"

namespace mpisect::apps::lulesh {

struct DomainConfig {
  int s = 8;       ///< elements per edge on this rank (LULESH -s)
  int rx = 0;      ///< rank coordinates in the cube grid
  int ry = 0;
  int rz = 0;
  int pgrid = 1;   ///< ranks per axis (p = pgrid^3)
  double rho0 = 1.0;        ///< initial density
  double e0 = 0.1;          ///< blast energy deposited at the origin element
  double gamma_gas = 1.4;   ///< ideal-gas EOS exponent
};

class Domain {
 public:
  explicit Domain(const DomainConfig& config);

  [[nodiscard]] const DomainConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] int s() const noexcept { return cfg_.s; }
  [[nodiscard]] int nnode_edge() const noexcept { return cfg_.s + 1; }
  [[nodiscard]] std::size_t elem_count() const noexcept {
    const auto n = static_cast<std::size_t>(cfg_.s);
    return n * n * n;
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    const auto n = static_cast<std::size_t>(cfg_.s + 1);
    return n * n * n;
  }

  [[nodiscard]] std::size_t node_index(int i, int j, int k) const noexcept {
    const auto n = static_cast<std::size_t>(nnode_edge());
    return (static_cast<std::size_t>(k) * n + static_cast<std::size_t>(j)) *
               n +
           static_cast<std::size_t>(i);
  }
  [[nodiscard]] std::size_t elem_index(int i, int j, int k) const noexcept {
    const auto n = static_cast<std::size_t>(s());
    return (static_cast<std::size_t>(k) * n + static_cast<std::size_t>(j)) *
               n +
           static_cast<std::size_t>(i);
  }

  /// Node ids of element (i, j, k)'s corners in mesh.hpp bit order.
  [[nodiscard]] std::array<std::size_t, 8> elem_nodes(int i, int j,
                                                      int k) const noexcept;
  /// Current corner positions of element (i, j, k).
  [[nodiscard]] HexCorners corners_of(int i, int j, int k) const noexcept;

  /// True if this rank touches the global low face of the given axis
  /// (0 = x, 1 = y, 2 = z) — where the Sedov symmetry BCs apply.
  [[nodiscard]] bool on_symmetry_face(int axis) const noexcept;

  // --- nodal fields (size node_count) --------------------------------------
  std::vector<double> x, y, z;        ///< positions
  std::vector<double> xd, yd, zd;     ///< velocities
  std::vector<double> xdd, ydd, zdd;  ///< accelerations
  std::vector<double> fx, fy, fz;     ///< force accumulators
  std::vector<double> nmass;          ///< nodal mass

  // --- element fields (size elem_count) ------------------------------------
  std::vector<double> e;      ///< internal energy (total per element)
  std::vector<double> press;  ///< pressure
  std::vector<double> q;      ///< artificial viscosity
  std::vector<double> vol;    ///< current volume
  std::vector<double> vol0;   ///< reference volume
  std::vector<double> delv;   ///< volume change this step (vnew - vold)
  std::vector<double> elen;   ///< characteristic length
  std::vector<double> emass;  ///< element mass

  // --- diagnostics ----------------------------------------------------------
  [[nodiscard]] double total_internal_energy() const noexcept;
  [[nodiscard]] double total_kinetic_energy() const noexcept;
  [[nodiscard]] double min_volume() const noexcept;
  [[nodiscard]] double max_abs_velocity() const noexcept;

 private:
  void initialize();
  DomainConfig cfg_;
};

}  // namespace mpisect::apps::lulesh
