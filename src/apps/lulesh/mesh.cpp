#include "apps/lulesh/mesh.hpp"

#include <cmath>

namespace mpisect::apps::lulesh {
namespace {

// Six tetrahedra fanning around the main diagonal c000 -> c111. The middle
// pair of each row walks the hexagonal cycle of vertices adjacent to both
// diagonal endpoints (consecutive pairs share a hex edge), which yields a
// consistent positive orientation for right-handed cells.
constexpr int kTets[6][4] = {
    {0, 1, 3, 7}, {0, 3, 2, 7}, {0, 2, 6, 7},
    {0, 6, 4, 7}, {0, 4, 5, 7}, {0, 5, 1, 7},
};

double tet_volume(const Vec3& p0, const Vec3& p1, const Vec3& p2,
                  const Vec3& p3) noexcept {
  return dot(p1 - p0, cross(p2 - p0, p3 - p0)) / 6.0;
}

}  // namespace

double hex_volume(const HexCorners& c) noexcept {
  double v = 0.0;
  for (const auto& t : kTets) {
    v += tet_volume(c[static_cast<std::size_t>(t[0])],
                    c[static_cast<std::size_t>(t[1])],
                    c[static_cast<std::size_t>(t[2])],
                    c[static_cast<std::size_t>(t[3])]);
  }
  return v;
}

std::array<Vec3, 8> hex_volume_gradient(const HexCorners& c) noexcept {
  std::array<Vec3, 8> grad{};
  for (const auto& t : kTets) {
    const Vec3& p0 = c[static_cast<std::size_t>(t[0])];
    const Vec3& p1 = c[static_cast<std::size_t>(t[1])];
    const Vec3& p2 = c[static_cast<std::size_t>(t[2])];
    const Vec3& p3 = c[static_cast<std::size_t>(t[3])];
    const Vec3 g1 = cross(p2 - p0, p3 - p0) * (1.0 / 6.0);
    const Vec3 g2 = cross(p3 - p0, p1 - p0) * (1.0 / 6.0);
    const Vec3 g3 = cross(p1 - p0, p2 - p0) * (1.0 / 6.0);
    grad[static_cast<std::size_t>(t[1])] += g1;
    grad[static_cast<std::size_t>(t[2])] += g2;
    grad[static_cast<std::size_t>(t[3])] += g3;
    grad[static_cast<std::size_t>(t[0])] -= g1 + g2 + g3;
  }
  return grad;
}

double characteristic_length(double volume) noexcept {
  return std::cbrt(std::fabs(volume));
}

}  // namespace mpisect::apps::lulesh
