#include "minomp/team.hpp"

#include <algorithm>

namespace mpisect::minomp {
namespace {

int clamp_threads(int t) { return std::clamp(t, 1, 1024); }

/// Number of world ranks block-placed on the same node as `rank`.
int ranks_on_same_node(const mpisim::MachineModel& m, int rank,
                       int world_size) {
  const int cpn = std::max(m.net.cores_per_node, 1);
  const int node = rank / cpn;
  const int first = node * cpn;
  return std::max(1, std::min(world_size - first, cpn));
}

}  // namespace

Team::Team(mpisim::Ctx& ctx, int num_threads)
    : Team(ctx, num_threads, memory_model_for(ctx.machine())) {}

Team::Team(mpisim::Ctx& ctx, int num_threads, MemoryModel mem)
    : ctx_(ctx), threads_(clamp_threads(num_threads)), mem_(mem) {
  const auto& m = ctx_.machine();
  ranks_on_node_ = ranks_on_same_node(m, ctx_.rank(), ctx_.size());
  cores_avail_ = static_cast<double>(m.cores_per_node) /
                 static_cast<double>(ranks_on_node_);
}

void Team::charge_loop(std::int64_t n, double flops_per_iter,
                       const KernelProfile& kernel) {
  const double serial =
      ctx_.machine().compute_seconds(static_cast<double>(n) * flops_per_iter);
  charge_region(serial, kernel,
                chunk_count(schedule_, n, threads_, chunk_size_));
}

RegionCharge Team::charge_region(double serial_seconds,
                                 const KernelProfile& kernel,
                                 std::int64_t chunks_hint) {
  const RegionCharge charge =
      region_time(ctx_.machine(), mem_, kernel, serial_seconds, threads_,
                  cores_avail_, ranks_on_node_, schedule_, chunks_hint);
  const double t_before = ctx_.now();
  // Charge through Ctx::compute so the machine's compute noise applies.
  ctx_.compute(charge.total());
  if (auto& tap = ctx_.world().trace_tap().on_omp_region) {
    tap(ctx_, mpisim::TapOmpRegion{threads_, serial_seconds, charge.compute,
                                   charge.imbalance, charge.overhead,
                                   t_before});
  }
  return charge;
}

RegionCharge Team::preview_region(double serial_seconds,
                                  const KernelProfile& kernel,
                                  int threads) const {
  return region_time(ctx_.machine(), mem_, kernel, serial_seconds,
                     clamp_threads(threads), cores_avail_, ranks_on_node_,
                     schedule_, 0);
}

}  // namespace mpisect::minomp
