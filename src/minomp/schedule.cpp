#include "minomp/schedule.hpp"

#include <algorithm>
#include <cmath>

namespace mpisect::minomp {

const char* schedule_name(Schedule s) noexcept {
  switch (s) {
    case Schedule::Static: return "static";
    case Schedule::Dynamic: return "dynamic";
    case Schedule::Guided: return "guided";
  }
  return "?";
}

std::int64_t chunk_count(Schedule s, std::int64_t n, int threads,
                         std::int64_t chunk_size) noexcept {
  if (n <= 0 || threads <= 0) return 0;
  switch (s) {
    case Schedule::Static: {
      const std::int64_t chunk =
          chunk_size > 0 ? chunk_size : (n + threads - 1) / threads;
      return (n + chunk - 1) / chunk;
    }
    case Schedule::Dynamic: {
      const std::int64_t chunk = chunk_size > 0 ? chunk_size : 1;
      return (n + chunk - 1) / chunk;
    }
    case Schedule::Guided: {
      // Chunk k has size max(remaining/threads, chunk_size); count the
      // dispatches analytically: remaining shrinks geometrically by
      // (1 - 1/threads) until it reaches the minimum chunk.
      const std::int64_t min_chunk = std::max<std::int64_t>(chunk_size, 1);
      std::int64_t remaining = n;
      std::int64_t chunks = 0;
      while (remaining > 0) {
        const std::int64_t c =
            std::max<std::int64_t>(remaining / threads, min_chunk);
        remaining -= std::min(c, remaining);
        ++chunks;
      }
      return chunks;
    }
  }
  return 0;
}

double imbalance_factor(Schedule s, double static_imbalance) noexcept {
  switch (s) {
    case Schedule::Static: return static_imbalance;
    case Schedule::Dynamic: return static_imbalance * 0.25;
    case Schedule::Guided: return static_imbalance * 0.5;
  }
  return static_imbalance;
}

}  // namespace mpisect::minomp
