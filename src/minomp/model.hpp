// MiniOMP region-time model.
//
// Charges the virtual clock for a worksharing region the way a real OpenMP
// runtime spends wall time:
//
//   T(t) = W*(1-f)                                  serial part (Amdahl)
//        + W*f * [ m/C_mem(t) * contention(t)       memory-bound share
//                + (1-m)/C_cpu(t) ]                 compute-bound share
//        * oversubscription(t)
//        + imbalance(schedule) * parallel span
//        + fork/join + barrier + chunk dispatch overheads
//
// where C_cpu is the machine's SMT-aware thread capacity and C_mem saturates
// at the machine's memory-saturation level. The *increase* of region time
// past the saturation point — the paper's "inflexion point" on KNL (Fig. 10)
// — comes from the contention term plus the linear fork/join growth; it is a
// property of the model inputs, not scripted per benchmark.
#pragma once

#include "minomp/schedule.hpp"
#include "mpisim/machine.hpp"

namespace mpisect::minomp {

/// Scaling character of one kernel (how the *code region* behaves, as
/// opposed to the machine's OmpModel which is hardware).
struct KernelProfile {
  /// Fraction of the region's serial time that parallelizes (Amdahl f).
  double parallel_fraction = 1.0;
  /// Share of the parallel part bound by memory bandwidth (0 = pure
  /// compute, 1 = pure streaming).
  double mem_intensity = 0.0;
};

/// Hardware memory-saturation extension to the machine OmpModel: capacity
/// (in core-equivalents) at which the memory system saturates, and how
/// harshly extra threads degrade it. These live here (not in OmpModel) so
/// the mpisim layer stays independent of MiniOMP.
struct MemoryModel {
  double saturation_capacity = 1e9;  ///< core-equivalents; huge = no limit
  double contention = 0.0;           ///< slowdown slope past saturation
};

/// Per-machine default memory models, calibrated with the machine presets.
[[nodiscard]] MemoryModel memory_model_for(const mpisim::MachineModel& m);

struct RegionCharge {
  double compute = 0.0;    ///< parallel+serial execution span
  double imbalance = 0.0;  ///< schedule residual imbalance
  double overhead = 0.0;   ///< fork/join + barrier + dispatch
  [[nodiscard]] double total() const noexcept {
    return compute + imbalance + overhead;
  }
};

/// Compute the modelled duration of a worksharing region.
/// serial_seconds: time of the region on one thread of this machine.
/// threads: team size; cores_avail: physical cores available to this rank;
/// ranks_on_node: co-located MPI ranks (for the oversubscription term);
/// chunks: dispatch count from chunk_count().
[[nodiscard]] RegionCharge region_time(const mpisim::MachineModel& machine,
                                       const MemoryModel& mem,
                                       const KernelProfile& kernel,
                                       double serial_seconds, int threads,
                                       double cores_avail, int ranks_on_node,
                                       Schedule schedule, std::int64_t chunks);

}  // namespace mpisect::minomp
