#include "minomp/model.hpp"

#include <algorithm>
#include <cmath>

namespace mpisect::minomp {

MemoryModel memory_model_for(const mpisim::MachineModel& m) {
  MemoryModel mm;
  if (m.name == "knl") {
    // DDR-resident working set: bandwidth saturates well below the core
    // count, which is what pins the paper's inflexion near 24 threads.
    mm.saturation_capacity = 14.0;
    mm.contention = 0.55;
  } else if (m.name == "broadwell-2s") {
    mm.saturation_capacity = 26.0;
    mm.contention = 0.18;
  } else if (m.name == "nehalem-cluster") {
    mm.saturation_capacity = 6.0;
    mm.contention = 0.25;
  }
  return mm;
}

RegionCharge region_time(const mpisim::MachineModel& machine,
                         const MemoryModel& mem, const KernelProfile& kernel,
                         double serial_seconds, int threads,
                         double cores_avail, int ranks_on_node,
                         Schedule schedule, std::int64_t chunks) {
  RegionCharge charge;
  threads = std::max(threads, 1);
  const double w = std::max(serial_seconds, 0.0);
  const double f = std::clamp(kernel.parallel_fraction, 0.0, 1.0);
  const double m = std::clamp(kernel.mem_intensity, 0.0, 1.0);

  const double cap_cpu = machine.thread_capacity(threads, cores_avail);

  // Memory-bound share: the node's bandwidth budget is split between the
  // co-located ranks, so the per-rank saturation point shrinks with
  // ranks_on_node. The term is normalized to its one-thread value so the
  // baseline (t = 1) is independent of sharing — only the *thread scaling*
  // of the memory share saturates, which is what makes extra OpenMP threads
  // useless (KNL p=27) or harmful (p=64) in the paper's Fig. 9.
  const double sat = std::max(
      mem.saturation_capacity / std::max(ranks_on_node, 1), 1e-9);
  auto eff_mem = [&](double cap) {
    const double over = std::max(0.0, cap / sat - 1.0);
    return std::min(cap, sat) / (1.0 + mem.contention * over);
  };
  const double cap1 = machine.thread_capacity(1, cores_avail);
  const double mem_speedup =
      eff_mem(cap_cpu) / std::max(eff_mem(cap1), 1e-300);

  double parallel_span =
      w * f * (m / std::max(mem_speedup, 1e-9) + (1.0 - m) / cap_cpu);

  // Oversubscription: when co-located ranks' teams exceed the node's
  // hardware threads, the OS time-slices and everything stretches.
  const double hw = static_cast<double>(machine.cores_per_node) *
                    static_cast<double>(machine.hw_threads_per_core);
  const double demand =
      static_cast<double>(ranks_on_node) * static_cast<double>(threads);
  if (demand > hw && hw > 0.0) {
    parallel_span *= (demand / hw) * machine.omp.oversubscription_penalty;
  }

  charge.compute = w * (1.0 - f) + parallel_span;

  if (threads > 1) {
    const double imb = imbalance_factor(schedule, machine.omp.static_imbalance);
    charge.imbalance =
        parallel_span * imb * (1.0 - 1.0 / static_cast<double>(threads));

    double log2t = 0.0;
    for (int k = 1; k < threads; k <<= 1) log2t += 1.0;
    charge.overhead = machine.omp.fork_join_base +
                      machine.omp.fork_join_per_thread * threads +
                      machine.omp.barrier_log_cost * log2t;
    if (schedule != Schedule::Static && chunks > 0) {
      charge.overhead += machine.omp.dynamic_chunk_cost *
                         static_cast<double>(chunks) /
                         static_cast<double>(threads);
    }
  }
  return charge;
}

}  // namespace mpisect::minomp
