// Worksharing schedules for MiniOMP, mirroring OpenMP's static/dynamic/
// guided loop schedules. The schedule affects the *modelled* time (imbalance
// and dispatch overhead) while execution order stays deterministic.
#pragma once

#include <cstdint>

namespace mpisect::minomp {

enum class Schedule {
  Static,   ///< contiguous blocks, no dispatch cost, full static imbalance
  Dynamic,  ///< chunk queue: dispatch cost per chunk, reduced imbalance
  Guided,   ///< decaying chunks: intermediate cost and imbalance
};

[[nodiscard]] const char* schedule_name(Schedule s) noexcept;

/// Number of chunks a schedule dispatches for n iterations on t threads.
/// chunk_size == 0 selects the OpenMP-like default (static: one block per
/// thread; dynamic: 1 iteration; guided: remaining/t decay).
[[nodiscard]] std::int64_t chunk_count(Schedule s, std::int64_t n, int threads,
                                       std::int64_t chunk_size) noexcept;

/// Relative residual imbalance of a schedule (fraction of the parallel
/// span), given the machine's static imbalance parameter.
[[nodiscard]] double imbalance_factor(Schedule s,
                                      double static_imbalance) noexcept;

}  // namespace mpisect::minomp
