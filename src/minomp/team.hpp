// MiniOMP thread team.
//
// A Team binds an MPI rank (its Ctx/virtual clock) to a shared-memory
// thread count and executes worksharing loops with the charge/execute
// decoupling used throughout this project: loop bodies run for real (on the
// calling thread, deterministically, in iteration order) while the clock is
// charged the *modelled* parallel duration from minomp/model.hpp.
//
//   minomp::Team team(ctx, /*threads=*/16);
//   team.parallel_for(0, n, flops_per_iter, kernel_profile,
//                     [&](std::int64_t i) { x[i] = ...; });
//
// Benches that never need the data call charge_region()/parallel_for with
// a null body to skip execution entirely.
#pragma once

#include <cstdint>
#include <functional>

#include "minomp/model.hpp"
#include "minomp/schedule.hpp"
#include "mpisim/runtime.hpp"

namespace mpisect::minomp {

class Team {
 public:
  /// Create a team of `num_threads` for the calling rank. Thread counts are
  /// clamped to [1, 1024]. The memory model defaults to the machine's
  /// calibrated preset (memory_model_for).
  Team(mpisim::Ctx& ctx, int num_threads);
  Team(mpisim::Ctx& ctx, int num_threads, MemoryModel mem);

  [[nodiscard]] int num_threads() const noexcept { return threads_; }
  [[nodiscard]] double cores_available() const noexcept { return cores_avail_; }
  [[nodiscard]] int ranks_on_node() const noexcept { return ranks_on_node_; }
  [[nodiscard]] const MemoryModel& memory_model() const noexcept {
    return mem_;
  }

  void set_schedule(Schedule s, std::int64_t chunk_size = 0) noexcept {
    schedule_ = s;
    chunk_size_ = chunk_size;
  }
  [[nodiscard]] Schedule schedule() const noexcept { return schedule_; }

  /// Worksharing loop over [begin, end): executes body(i) for every i and
  /// charges the modelled parallel time for n iterations costing
  /// `flops_per_iter` each.
  template <typename Body>
  void parallel_for(std::int64_t begin, std::int64_t end,
                    double flops_per_iter, const KernelProfile& kernel,
                    Body&& body) {
    const std::int64_t n = end > begin ? end - begin : 0;
    for (std::int64_t i = begin; i < end; ++i) body(i);
    charge_loop(n, flops_per_iter, kernel);
  }

  /// Worksharing reduction: result = reduce(init, body(i) for i in range).
  template <typename T, typename Body, typename Combine>
  T parallel_reduce(std::int64_t begin, std::int64_t end,
                    double flops_per_iter, const KernelProfile& kernel,
                    T init, Combine&& combine, Body&& body) {
    T acc = init;
    for (std::int64_t i = begin; i < end; ++i) acc = combine(acc, body(i));
    charge_loop(end > begin ? end - begin : 0, flops_per_iter, kernel);
    return acc;
  }

  /// Charge a loop's modelled time without executing anything (bench mode).
  void charge_loop(std::int64_t n, double flops_per_iter,
                   const KernelProfile& kernel);

  /// Charge an arbitrary region given its serial duration in seconds.
  /// Returns the charge breakdown (compute/imbalance/overhead) for
  /// model-introspection benches.
  RegionCharge charge_region(double serial_seconds,
                             const KernelProfile& kernel,
                             std::int64_t chunks_hint = 0);

  /// Pure query: what would a region cost at `threads` without charging?
  [[nodiscard]] RegionCharge preview_region(double serial_seconds,
                                            const KernelProfile& kernel,
                                            int threads) const;

 private:
  mpisim::Ctx& ctx_;
  int threads_;
  MemoryModel mem_;
  Schedule schedule_ = Schedule::Static;
  std::int64_t chunk_size_ = 0;
  double cores_avail_ = 1.0;
  int ranks_on_node_ = 1;
};

}  // namespace mpisect::minomp
