#include "trace/recorder.hpp"

#include <algorithm>

#include "mpisim/comm.hpp"

namespace mpisect::trace {

using mpisim::CallInfo;
using mpisim::MpiCall;

namespace {

/// Collectives that charge an entry overhead and whose internal traffic
/// the taps itemize. Split/dup are captured as CommSync events instead.
bool is_traced_collective(MpiCall c) noexcept {
  switch (c) {
    case MpiCall::Barrier:
    case MpiCall::Bcast:
    case MpiCall::Reduce:
    case MpiCall::Allreduce:
    case MpiCall::Scatter:
    case MpiCall::Scatterv:
    case MpiCall::Gather:
    case MpiCall::Gatherv:
    case MpiCall::Allgather:
    case MpiCall::Alltoall:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::shared_ptr<TraceRecorder> TraceRecorder::install(mpisim::World& world,
                                                      RecorderOptions options) {
  if (auto existing = world.find_extension<TraceRecorder>()) return existing;
  auto self = std::make_shared<TraceRecorder>(world, std::move(options));
  world.attach_extension(self);
  return self;
}

TraceRecorder::TraceRecorder(mpisim::World& world, RecorderOptions options)
    : world_(&world),
      options_(std::move(options)),
      bufs_(static_cast<std::size_t>(world.size())) {
  world.tool_stack().attach(this, mpisim::hooks::kOrderRecorder);
  attached_ = true;
}

TraceRecorder::~TraceRecorder() { detach(); }

void TraceRecorder::detach() {
  if (!attached_) return;
  world_->tool_stack().detach(this);
  attached_ = false;
}

Event& TraceRecorder::push(RankBuf& b, EventKind kind, double t_before) {
  Event ev;
  ev.kind = kind;
  ev.has_time = t_before != b.last_t;
  ev.t_before = t_before;
  b.events.push_back(ev);
  return b.events.back();
}

std::uint32_t TraceRecorder::intern(const char* label) {
  const std::string name = label != nullptr ? label : "";
  const std::lock_guard lock(label_mu_);
  const auto it = label_ids_.find(name);
  if (it != label_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(label_names_.size());
  label_names_.push_back(name);
  label_ids_.emplace(name, id);
  return id;
}

void TraceRecorder::on_begin(mpisim::Ctx& ctx, const CallInfo& info) {
  RankBuf& b = buf(ctx);
  if (info.call == MpiCall::Init) {
    b.reset(ctx.now());
    return;
  }
  if (info.call == MpiCall::Finalize) {
    const double now = ctx.now();
    Event& ev = push(b, EventKind::Finalize, now);
    ev.has_time = true;  // always timestamped: anchors the footer check
    b.t_final = now;
    b.finalized = true;
    b.last_t = now;
    return;
  }
  if (is_traced_collective(info.call)) {
    Event& ev = push(b, EventKind::CollBegin, ctx.now());
    ev.comm = info.comm_context;
    ev.label = static_cast<std::uint32_t>(info.call);
    ev.peer = info.peer;
    ev.bytes = info.bytes;
    // op backpatched by the on_coll_entry tap, which fires next.
  }
}

void TraceRecorder::on_end(mpisim::Ctx& ctx, const CallInfo& info) {
  if (!is_traced_collective(info.call)) return;
  RankBuf& b = buf(ctx);
  Event& ev = push(b, EventKind::CollEnd, ctx.now());
  ev.comm = info.comm_context;
  b.last_t = ctx.now();
}

void TraceRecorder::on_section(mpisim::Ctx& ctx, mpisim::Comm& comm,
                               const char* label, bool enter) {
  RankBuf& b = buf(ctx);
  const double now = ctx.now();
  const std::uint32_t id = intern(label);
  const int context = comm.context_id();
  Event& ev = push(b, enter ? EventKind::SectionEnter : EventKind::SectionExit,
                   now);
  ev.comm = context;
  ev.label = id;
  b.last_t = now;
  if (enter) {
    b.section_stack.emplace_back(context, id, now);
  } else if (!b.section_stack.empty()) {
    const auto [c, l, t_in] = b.section_stack.back();
    b.section_stack.pop_back();
    auto& [count, inclusive] = b.totals[{c, l}];
    ++count;
    inclusive += now - t_in;
  }
}

void TraceRecorder::on_call_begin(mpisim::Ctx& ctx, const CallInfo& info) {
  on_begin(ctx, info);
}

void TraceRecorder::on_call_end(mpisim::Ctx& ctx, const CallInfo& info) {
  on_end(ctx, info);
}

void TraceRecorder::on_section_enter(mpisim::Ctx& ctx, mpisim::Comm& comm,
                                     const char* label, char* /*data*/) {
  on_section(ctx, comm, label, /*enter=*/true);
}

void TraceRecorder::on_section_leave(mpisim::Ctx& ctx, mpisim::Comm& comm,
                                     const char* label, char* /*data*/) {
  on_section(ctx, comm, label, /*enter=*/false);
}

void TraceRecorder::on_pcontrol(mpisim::Ctx& ctx, int level,
                                const char* label) {
  RankBuf& b = buf(ctx);
  const double now = ctx.now();
  Event& ev = push(b, EventKind::Pcontrol, now);
  ev.peer = level;
  ev.label = intern(label);
  b.last_t = now;
}

void TraceRecorder::on_send_post(mpisim::Ctx& ctx, const mpisim::TapSend& t) {
  RankBuf& b = buf(ctx);
  const std::uint64_t ordinal = b.send_count++;
  b.open_sends[t.token] = ordinal;
  Event& ev = push(b, EventKind::SendPost, t.t_before);
  ev.comm = t.comm_context;
  ev.peer = t.dst_world;
  ev.tag = t.tag;
  ev.bytes = t.bytes;
  ev.seq = t.seq;
  ev.op = t.op;
  b.last_t = ctx.now();
}

void TraceRecorder::on_send_wait(mpisim::Ctx& ctx,
                                 const mpisim::TapSendWait& t) {
  RankBuf& b = buf(ctx);
  const auto it = b.open_sends.find(t.token);
  if (it != b.open_sends.end()) {
    Event& ev = push(b, EventKind::SendWait, t.t_before);
    ev.op = b.send_count - 1 - it->second;
    b.open_sends.erase(it);
    b.last_t = ctx.now();
  }
}

void TraceRecorder::on_recv_post(mpisim::Ctx& ctx,
                                 const mpisim::TapRecvPost& t) {
  RankBuf& b = buf(ctx);
  const std::uint64_t ordinal = b.recv_post_count++;
  b.open_recvs[t.token] = ordinal;
  b.recv_event_index[t.token] = b.events.size();
  Event& ev = push(b, EventKind::RecvPost, ctx.now());
  ev.comm = t.comm_context;
  ev.peer = Event::kUnmatched;
  ev.post_src = t.src_posted;
  ev.tag = t.tag_posted;
  b.last_t = ctx.now();
}

void TraceRecorder::on_recv_wait(mpisim::Ctx& ctx,
                                 const mpisim::TapRecvWait& t) {
  RankBuf& b = buf(ctx);
  const auto idx = b.recv_event_index.find(t.token);
  if (idx != b.recv_event_index.end()) {
    b.events[idx->second].peer = t.src_world;
    b.events[idx->second].seq = t.seq;
    b.recv_event_index.erase(idx);
  }
  const auto it = b.open_recvs.find(t.token);
  if (it != b.open_recvs.end()) {
    Event& ev = push(b, EventKind::RecvWait, t.t_before);
    ev.seq = b.recv_post_count - 1 - it->second;
    ev.op = t.op;
    b.open_recvs.erase(it);
    b.last_t = ctx.now();
  }
}

void TraceRecorder::on_probe(mpisim::Ctx& ctx, const mpisim::TapProbe& t) {
  RankBuf& b = buf(ctx);
  Event& ev = push(b, EventKind::Probe, t.t_before);
  ev.comm = t.comm_context;
  ev.peer = t.src_world;
  ev.seq = t.seq;
  ev.post_src = t.src_posted;
  ev.tag = t.tag_posted;
  b.last_t = ctx.now();
}

void TraceRecorder::on_nbc_post(mpisim::Ctx& ctx,
                                const mpisim::TapNbcPost& t) {
  RankBuf& b = buf(ctx);
  Event& ev = push(b, EventKind::NbcPost, t.t_before);
  ev.comm = t.comm_context;
  ev.label = static_cast<std::uint32_t>(t.call);
  ev.peer = t.members;
  ev.bytes = t.bytes;
  ev.seq = t.gen;
  ev.op = t.op;
  b.last_t = ctx.now();
}

void TraceRecorder::on_nbc_complete(mpisim::Ctx& ctx,
                                    const mpisim::TapNbcComplete& t) {
  RankBuf& b = buf(ctx);
  Event& ev = push(b, EventKind::NbcComplete, t.t_before);
  ev.comm = t.comm_context;
  ev.seq = t.gen;
  b.last_t = ctx.now();
}

void TraceRecorder::on_comm_sync(mpisim::Ctx& ctx,
                                 const mpisim::TapCommSync& t) {
  RankBuf& b = buf(ctx);
  Event& ev = push(b, EventKind::CommSync, t.t_before);
  ev.comm = t.comm_context;
  ev.peer = t.members;
  ev.seq = static_cast<std::uint64_t>(t.rounds);
  b.last_t = ctx.now();
}

void TraceRecorder::on_coll_entry(mpisim::Ctx& ctx, std::uint64_t op,
                                  double t_before) {
  RankBuf& b = buf(ctx);
  if (!b.events.empty() && b.events.back().kind == EventKind::CollBegin) {
    b.events.back().op = op;
    b.events.back().has_time = t_before != b.last_t;
    b.events.back().t_before = t_before;
  }
  b.last_t = ctx.now();
}

void TraceRecorder::label_remap(std::vector<std::string>& sorted,
                                std::vector<std::uint32_t>& remap) const {
  // Remap label ids to lexicographic order: interning order depends on
  // which rank thread saw a label first, and byte-identical files for
  // same-seed runs are a determinism guarantee of the format.
  sorted = label_names_;
  std::sort(sorted.begin(), sorted.end());
  remap.resize(label_names_.size());
  for (std::size_t old = 0; old < label_names_.size(); ++old) {
    const auto it =
        std::lower_bound(sorted.begin(), sorted.end(), label_names_[old]);
    remap[old] = static_cast<std::uint32_t>(it - sorted.begin());
  }
}

RankStream TraceRecorder::build_rank(
    int r, const std::vector<std::uint32_t>& remap) const {
  const RankBuf& b = bufs_[static_cast<std::size_t>(r)];
  RankStream rs;
  rs.rank = r;
  rs.t0 = b.t0;
  rs.t_final = b.t_final;
  rs.events = b.events;
  for (Event& ev : rs.events) {
    if (ev.kind == EventKind::SectionEnter ||
        ev.kind == EventKind::SectionExit ||
        ev.kind == EventKind::Pcontrol) {
      ev.label = remap[ev.label];
    }
  }
  for (const auto& [key, val] : b.totals) {
    rs.totals.push_back(SectionTotal{key.first, remap[key.second],
                                     val.first, val.second});
  }
  std::sort(rs.totals.begin(), rs.totals.end(),
            [](const SectionTotal& a, const SectionTotal& x) {
              return a.comm != x.comm ? a.comm < x.comm : a.label < x.label;
            });
  return rs;
}

TraceFile TraceRecorder::skeleton() const {
  TraceFile tf;
  tf.header.app = options_.app;
  tf.header.seed = world_->options().seed;
  tf.header.scatter_algo =
      static_cast<std::uint8_t>(world_->options().scatter_algo);
  tf.header.gather_algo =
      static_cast<std::uint8_t>(world_->options().gather_algo);
  tf.header.start_skew_sigma = world_->options().start_skew_sigma;
  tf.header.nranks = world_->size();
  tf.header.telemetry_dt = options_.telemetry_dt;
  tf.header.progress = world_->progress();
  // Note: world machine() already carries the opportunistic entry-overhead
  // fold applied at World construction, so a recorded-model replay needs
  // no progress arithmetic on the overhead draws.
  tf.header.machine = world_->machine();

  std::vector<std::uint32_t> remap;
  label_remap(tf.labels, remap);
  tf.ranks.reserve(static_cast<std::size_t>(world_->size()));
  for (int r = 0; r < world_->size(); ++r) {
    RankStream rs = build_rank(r, remap);
    rs.events.clear();
    rs.events.shrink_to_fit();
    tf.ranks.push_back(std::move(rs));
  }
  return tf;
}

RankStream TraceRecorder::finish_rank(int r) const {
  std::vector<std::string> sorted;
  std::vector<std::uint32_t> remap;
  label_remap(sorted, remap);
  return build_rank(r, remap);
}

TraceFile TraceRecorder::finish() const {
  TraceFile tf = skeleton();
  std::vector<std::string> sorted;
  std::vector<std::uint32_t> remap;
  label_remap(sorted, remap);
  for (int r = 0; r < world_->size(); ++r) {
    tf.ranks[static_cast<std::size_t>(r)] = build_rank(r, remap);
  }
  return tf;
}

std::uint64_t TraceRecorder::total_events() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : bufs_) n += b.events.size();
  return n;
}

void TraceRecorder::save(const std::string& path) const {
  std::vector<std::string> sorted;
  std::vector<std::uint32_t> remap;
  label_remap(sorted, remap);
  const TraceFile sk = skeleton();  // header + labels; ranks unused here
  TraceStreamWriter w(path, sk.header, sk.labels, world_->size());
  for (int r = 0; r < world_->size(); ++r) {
    w.write_rank(build_rank(r, remap));
  }
  w.close();
}

}  // namespace mpisect::trace
