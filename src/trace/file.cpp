#include "trace/file.hpp"

#include <fstream>
#include <iterator>

#include "obs/counters.hpp"
#include "obs/spans.hpp"
#include "trace/event_wire.hpp"

namespace mpisect::trace {

namespace {

void encode_machine(ByteWriter& w, const mpisim::MachineModel& m) {
  w.str(m.name);
  w.varint(static_cast<std::uint64_t>(m.cores_per_node));
  w.varint(static_cast<std::uint64_t>(m.nodes));
  w.varint(static_cast<std::uint64_t>(m.hw_threads_per_core));
  w.f64(m.flops_per_core);
  for (const double y : m.smt_yield) w.f64(y);
  w.f64(m.compute_noise_sigma);
  const auto& n = m.net;
  w.f64(n.intra_node.latency);
  w.f64(n.intra_node.bandwidth);
  w.f64(n.inter_node.latency);
  w.f64(n.inter_node.bandwidth);
  w.f64(n.send_overhead);
  w.f64(n.recv_overhead);
  w.varint(n.eager_threshold);
  w.varint(static_cast<std::uint64_t>(n.cores_per_node));
  w.u8(static_cast<std::uint8_t>(n.jitter.kind));
  w.f64(n.jitter.rel_sigma);
  w.f64(n.jitter.add_sigma);
  w.f64(n.jitter.spike_prob);
  w.f64(n.jitter.spike_mean);
  w.varint(n.seed);
  w.u8(n.hierarchical_nbc ? 1 : 0);  // v5
  const auto& o = m.omp;
  w.f64(o.fork_join_base);
  w.f64(o.fork_join_per_thread);
  w.f64(o.barrier_log_cost);
  w.f64(o.static_imbalance);
  w.f64(o.dynamic_chunk_cost);
  w.f64(o.oversubscription_penalty);
}

mpisim::MachineModel decode_machine(ByteReader& r, std::uint32_t version) {
  mpisim::MachineModel m;
  m.name = r.str();
  m.cores_per_node = static_cast<int>(r.varint());
  m.nodes = static_cast<int>(r.varint());
  m.hw_threads_per_core = static_cast<int>(r.varint());
  m.flops_per_core = r.f64();
  for (double& y : m.smt_yield) y = r.f64();
  m.compute_noise_sigma = r.f64();
  auto& n = m.net;
  n.intra_node.latency = r.f64();
  n.intra_node.bandwidth = r.f64();
  n.inter_node.latency = r.f64();
  n.inter_node.bandwidth = r.f64();
  n.send_overhead = r.f64();
  n.recv_overhead = r.f64();
  n.eager_threshold = static_cast<std::size_t>(r.varint());
  n.cores_per_node = static_cast<int>(r.varint());
  const std::uint8_t jk = r.u8();
  if (jk > 2) throw TraceError("corrupt trace: bad jitter kind");
  n.jitter.kind = static_cast<mpisim::JitterModel::Kind>(jk);
  n.jitter.rel_sigma = r.f64();
  n.jitter.add_sigma = r.f64();
  n.jitter.spike_prob = r.f64();
  n.jitter.spike_mean = r.f64();
  n.seed = r.varint();
  // v5: hierarchical NBC flag; absent in older traces, which were charged
  // with the flat formula the unset default reproduces.
  if (version >= 5) n.hierarchical_nbc = r.u8() != 0;
  auto& o = m.omp;
  o.fork_join_base = r.f64();
  o.fork_join_per_thread = r.f64();
  o.barrier_log_cost = r.f64();
  o.static_imbalance = r.f64();
  o.dynamic_chunk_cost = r.f64();
  o.oversubscription_penalty = r.f64();
  return m;
}

}  // namespace

void encode_event(ByteWriter& w, const Event& ev, std::uint64_t& prev_op) {
  w.u8(static_cast<std::uint8_t>(ev.kind) |
       (ev.has_time ? std::uint8_t{0x80} : std::uint8_t{0}));
  if (ev.has_time) w.f64(ev.t_before);
  switch (ev.kind) {
    case EventKind::SendPost:
      w.varint(static_cast<std::uint64_t>(ev.comm));
      w.varint(static_cast<std::uint64_t>(ev.peer));
      w.zigzag(ev.tag);
      w.varint(ev.bytes);
      w.varint(ev.seq);
      w.varint(ev.op - prev_op);
      prev_op = ev.op;
      break;
    case EventKind::SendWait:
      w.varint(ev.op);  // backref
      break;
    case EventKind::RecvPost:
      w.varint(static_cast<std::uint64_t>(ev.comm));
      w.zigzag(ev.peer);
      w.varint(ev.seq);
      w.zigzag(ev.post_src);  // v3: posted envelope
      w.zigzag(ev.tag);
      break;
    case EventKind::RecvWait:
      w.varint(ev.seq);  // backref
      w.varint(ev.op - prev_op);
      prev_op = ev.op;
      break;
    case EventKind::Probe:
      w.varint(static_cast<std::uint64_t>(ev.comm));
      w.varint(static_cast<std::uint64_t>(ev.peer));
      w.varint(ev.seq);
      w.zigzag(ev.post_src);  // v3: posted envelope
      w.zigzag(ev.tag);
      break;
    case EventKind::CollBegin:
      w.varint(static_cast<std::uint64_t>(ev.comm));
      w.varint(ev.label);  // MpiCall
      w.zigzag(ev.peer);   // root or -1
      w.varint(ev.bytes);
      w.varint(ev.op - prev_op);
      prev_op = ev.op;
      break;
    case EventKind::CollEnd:
      break;
    case EventKind::SectionEnter:
    case EventKind::SectionExit:
      w.varint(static_cast<std::uint64_t>(ev.comm));
      w.varint(ev.label);
      break;
    case EventKind::CommSync:
      w.varint(static_cast<std::uint64_t>(ev.comm));
      w.varint(static_cast<std::uint64_t>(ev.peer));  // members
      w.varint(ev.seq);                               // rounds
      break;
    case EventKind::Pcontrol:
      w.zigzag(ev.peer);  // level
      w.varint(ev.label);
      break;
    case EventKind::Finalize:
      break;
    case EventKind::NbcPost:
      w.varint(static_cast<std::uint64_t>(ev.comm));
      w.varint(ev.label);  // MpiCall
      w.varint(static_cast<std::uint64_t>(ev.peer));  // members (quorum)
      w.varint(ev.bytes);
      w.varint(ev.seq);  // nbc generation
      w.varint(ev.op - prev_op);
      prev_op = ev.op;
      break;
    case EventKind::NbcComplete:
      w.varint(static_cast<std::uint64_t>(ev.comm));
      w.varint(ev.seq);  // nbc generation
      break;
  }
}

Event decode_event(ByteReader& r, std::uint64_t& prev_op,
                   std::uint32_t version) {
  const std::uint8_t kb = r.u8();
  const std::uint8_t raw_kind = kb & 0x7F;
  if (raw_kind >= kEventKindCount) {
    throw TraceError("corrupt trace: unknown event kind " +
                     std::to_string(raw_kind));
  }
  Event ev;
  ev.kind = static_cast<EventKind>(raw_kind);
  ev.has_time = (kb & 0x80) != 0;
  if (ev.has_time) ev.t_before = r.f64();
  switch (ev.kind) {
    case EventKind::SendPost:
      ev.comm = static_cast<int>(r.varint());
      ev.peer = static_cast<int>(r.varint());
      ev.tag = static_cast<int>(r.zigzag());
      ev.bytes = r.varint();
      ev.seq = r.varint();
      ev.op = prev_op + r.varint();
      prev_op = ev.op;
      break;
    case EventKind::SendWait:
      ev.op = r.varint();
      break;
    case EventKind::RecvPost:
      ev.comm = static_cast<int>(r.varint());
      ev.peer = static_cast<int>(r.zigzag());
      ev.seq = r.varint();
      if (version >= 3) {
        ev.post_src = static_cast<int>(r.zigzag());
        ev.tag = static_cast<int>(r.zigzag());
      }
      break;
    case EventKind::RecvWait:
      ev.seq = r.varint();
      ev.op = prev_op + r.varint();
      prev_op = ev.op;
      break;
    case EventKind::Probe:
      ev.comm = static_cast<int>(r.varint());
      ev.peer = static_cast<int>(r.varint());
      ev.seq = r.varint();
      if (version >= 3) {
        ev.post_src = static_cast<int>(r.zigzag());
        ev.tag = static_cast<int>(r.zigzag());
      }
      break;
    case EventKind::CollBegin:
      ev.comm = static_cast<int>(r.varint());
      ev.label = static_cast<std::uint32_t>(r.varint());
      ev.peer = static_cast<int>(r.zigzag());
      ev.bytes = r.varint();
      ev.op = prev_op + r.varint();
      prev_op = ev.op;
      break;
    case EventKind::CollEnd:
      break;
    case EventKind::SectionEnter:
    case EventKind::SectionExit:
      ev.comm = static_cast<int>(r.varint());
      ev.label = static_cast<std::uint32_t>(r.varint());
      break;
    case EventKind::CommSync:
      ev.comm = static_cast<int>(r.varint());
      ev.peer = static_cast<int>(r.varint());
      ev.seq = r.varint();
      break;
    case EventKind::Pcontrol:
      ev.peer = static_cast<int>(r.zigzag());
      ev.label = static_cast<std::uint32_t>(r.varint());
      break;
    case EventKind::Finalize:
      break;
    case EventKind::NbcPost:
      ev.comm = static_cast<int>(r.varint());
      ev.label = static_cast<std::uint32_t>(r.varint());
      ev.peer = static_cast<int>(r.varint());
      ev.bytes = r.varint();
      ev.seq = r.varint();
      ev.op = prev_op + r.varint();
      prev_op = ev.op;
      break;
    case EventKind::NbcComplete:
      ev.comm = static_cast<int>(r.varint());
      ev.seq = r.varint();
      break;
  }
  return ev;
}

namespace {

/// Everything that precedes the rank streams: magic, version, header,
/// machine block, label table, rank count. Shared verbatim by the
/// whole-buffer encode() and the streaming writer so the two byte streams
/// cannot diverge.
void encode_preamble(ByteWriter& w, const TraceHeader& header,
                     const std::vector<std::string>& labels,
                     std::uint64_t nranks) {
  w.u32le(kTraceMagic);
  w.u32le(kTraceVersion);
  w.str(header.app);
  w.varint(header.seed);
  w.u8(header.scatter_algo);
  w.u8(header.gather_algo);
  w.f64(header.start_skew_sigma);
  w.varint(static_cast<std::uint64_t>(header.nranks));
  w.f64(header.telemetry_dt);
  w.u8(static_cast<std::uint8_t>(header.progress.mode));
  w.f64(header.progress.entry_overhead);
  w.f64(header.progress.thread_latency);
  w.f64(header.progress.core_tax);
  encode_machine(w, header.machine);
  w.varint(labels.size());
  for (const auto& l : labels) w.str(l);
  w.varint(nranks);
}

/// One rank's stream, self-delimiting (the encoding never looks across
/// rank boundaries — prev_op delta state resets per rank — which is what
/// makes rank-at-a-time streaming byte-identical to the one-shot encode).
void encode_rank_stream(ByteWriter& w, const RankStream& rs) {
  w.varint(static_cast<std::uint64_t>(rs.rank));
  w.f64(rs.t0);
  w.f64(rs.t_final);
  w.varint(rs.events.size());
  std::uint64_t prev_op = 0;
  for (const auto& ev : rs.events) encode_event(w, ev, prev_op);
  w.varint(rs.totals.size());
  for (const auto& t : rs.totals) {
    w.varint(static_cast<std::uint64_t>(t.comm));
    w.varint(t.label);
    w.varint(t.count);
    w.f64(t.inclusive);
  }
}

}  // namespace

std::vector<std::uint8_t> TraceFile::encode() const {
  const obs::Span obs_span("trace.encode");
  ByteWriter w;
  encode_preamble(w, header, labels, ranks.size());
  for (const auto& rs : ranks) encode_rank_stream(w, rs);
  std::vector<std::uint8_t> bytes = w.take();
  // Writer accounting: the whole encode buffers in RAM before any flush.
  // Streaming paths (TraceStreamWriter) buffer one rank at a time instead;
  // the gap between the two high-water marks is the streaming win.
  auto& oc = obs::counters();
  oc.trace_encoded_bytes.fetch_add(bytes.size(), std::memory_order_relaxed);
  obs::update_max(oc.trace_buffered_bytes_hwm, bytes.size());
  return bytes;
}

TraceStreamWriter::TraceStreamWriter(const std::string& path,
                                     const TraceHeader& header,
                                     const std::vector<std::string>& labels,
                                     int nranks)
    : path_(path), expected_ranks_(nranks) {
  out_.open(path, std::ios::binary);
  if (!out_) throw TraceError("cannot open " + path + " for writing");
  ByteWriter w;
  encode_preamble(w, header, labels, static_cast<std::uint64_t>(nranks));
  write_chunk(w.take());
}

TraceStreamWriter::~TraceStreamWriter() = default;

void TraceStreamWriter::write_rank(const RankStream& rs) {
  if (closed_) throw TraceError("trace stream writer already closed");
  if (written_ >= expected_ranks_) {
    throw TraceError("trace stream writer: more ranks than declared");
  }
  ByteWriter w;
  encode_rank_stream(w, rs);
  write_chunk(w.take());
  ++written_;
}

void TraceStreamWriter::close() {
  if (closed_) return;
  closed_ = true;
  if (written_ != expected_ranks_) {
    throw TraceError("trace stream writer: wrote " +
                     std::to_string(written_) + " of " +
                     std::to_string(expected_ranks_) + " declared ranks");
  }
  out_.flush();
  if (!out_) throw TraceError("short write to " + path_);
  obs::counters().trace_flushes.fetch_add(1, std::memory_order_relaxed);
}

void TraceStreamWriter::write_chunk(const std::vector<std::uint8_t>& bytes) {
  // Per-chunk accounting: the buffered high-water mark is one chunk (the
  // preamble or one rank stream), not the whole file — the point of
  // streaming at 65k ranks.
  auto& oc = obs::counters();
  oc.trace_encoded_bytes.fetch_add(bytes.size(), std::memory_order_relaxed);
  obs::update_max(oc.trace_buffered_bytes_hwm, bytes.size());
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!out_) throw TraceError("short write to " + path_);
}

TraceFile TraceFile::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const std::uint32_t magic = r.u32le();
  if (magic == 0x5A53504D) {  // "MPSZ": the compressed container
    throw TraceError(
        "trace is a compressed .mpstz container; decode it through "
        "codec::decompress (or codec::load_trace)");
  }
  if (magic != kTraceMagic) {
    // A byte-swapped magic means the file itself is fine but was written
    // with the opposite byte order (foreign/corrupted tooling).
    const std::uint32_t swapped = ((magic & 0xFF) << 24) |
                                  ((magic & 0xFF00) << 8) |
                                  ((magic >> 8) & 0xFF00) | (magic >> 24);
    if (swapped == kTraceMagic) {
      throw TraceError("trace has opposite byte order (foreign writer?)");
    }
    throw TraceError("not an mpisect trace (bad magic)");
  }
  const std::uint32_t version = r.u32le();
  if (version < 1 || version > kTraceVersion) {
    throw TraceError("unsupported trace version " + std::to_string(version) +
                     " (expected <= " + std::to_string(kTraceVersion) + ")");
  }
  TraceFile tf;
  tf.header.app = r.str();
  tf.header.seed = r.varint();
  tf.header.scatter_algo = r.u8();
  tf.header.gather_algo = r.u8();
  tf.header.start_skew_sigma = r.f64();
  tf.header.nranks = static_cast<int>(r.varint());
  if (tf.header.nranks < 0 || tf.header.nranks > (1 << 24)) {
    throw TraceError("corrupt trace: implausible rank count");
  }
  if (version >= 2) tf.header.telemetry_dt = r.f64();
  if (version >= 4) {
    const std::uint8_t pm = r.u8();
    if (pm > 2) throw TraceError("corrupt trace: bad progress mode");
    tf.header.progress.mode = static_cast<mpisim::ProgressMode>(pm);
    tf.header.progress.entry_overhead = r.f64();
    tf.header.progress.thread_latency = r.f64();
    tf.header.progress.core_tax = r.f64();
  }
  tf.header.machine = decode_machine(r, version);
  const std::uint64_t nlabels = r.varint();
  tf.labels.reserve(static_cast<std::size_t>(nlabels));
  for (std::uint64_t i = 0; i < nlabels; ++i) tf.labels.push_back(r.str());
  const std::uint64_t nranks = r.varint();
  for (std::uint64_t i = 0; i < nranks; ++i) {
    RankStream rs;
    rs.rank = static_cast<int>(r.varint());
    rs.t0 = r.f64();
    rs.t_final = r.f64();
    const std::uint64_t nev = r.varint();
    rs.events.reserve(static_cast<std::size_t>(nev));
    std::uint64_t prev_op = 0;
    for (std::uint64_t e = 0; e < nev; ++e) {
      rs.events.push_back(decode_event(r, prev_op, version));
    }
    const std::uint64_t ntot = r.varint();
    for (std::uint64_t t = 0; t < ntot; ++t) {
      SectionTotal st;
      st.comm = static_cast<int>(r.varint());
      st.label = static_cast<std::uint32_t>(r.varint());
      st.count = r.varint();
      st.inclusive = r.f64();
      rs.totals.push_back(st);
    }
    tf.ranks.push_back(std::move(rs));
  }
  if (r.remaining() != 0) {
    throw TraceError("corrupt trace: " + std::to_string(r.remaining()) +
                     " trailing byte(s)");
  }
  return tf;
}

void TraceFile::save(const std::string& path) const {
  const obs::Span obs_span("trace.save");
  // Stream rank by rank: at no point does the whole file buffer in RAM.
  // Byte-identical to writing encode() wholesale (same helpers, in order).
  TraceStreamWriter w(path, header, labels, static_cast<int>(ranks.size()));
  for (const auto& rs : ranks) w.write_rank(rs);
  w.close();
}

TraceFile TraceFile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return decode(bytes);
}

std::uint64_t TraceFile::total_events() const noexcept {
  std::uint64_t n = 0;
  for (const auto& rs : ranks) n += rs.events.size();
  return n;
}

}  // namespace mpisect::trace
