#include "trace/report.hpp"

#include <cstdarg>
#include <cstdio>
#include <string>

#include "core/speedup/partial_bound.hpp"
#include "support/provenance.hpp"
#include "support/strings.hpp"

namespace mpisect::trace {

namespace {

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

double mean_span(const ReplaySectionStat& s) {
  return s.agg.instances > 0 ? s.agg.total_span / s.agg.instances : 0.0;
}

double bound_for(const ReplayResult& res, const ReplaySectionStat& s,
                 double t_seq) {
  (void)res;
  return speedup::partial_bound(t_seq, s.mean_per_process);
}

}  // namespace

std::string render_text(const ReplayResult& res,
                        std::optional<double> t_seq) {
  std::string out;
  out += fmt("replay: %d ranks, makespan %.6f s\n", res.nranks, res.makespan);
  out += fmt("events %llu  messages %llu  collectives %llu  bytes %llu\n\n",
             static_cast<unsigned long long>(res.events),
             static_cast<unsigned long long>(res.messages),
             static_cast<unsigned long long>(res.collectives),
             static_cast<unsigned long long>(res.bytes_sent));
  out += fmt("%-16s %4s %8s %12s %12s %12s %12s", "section", "comm", "inst",
             "mean/proc", "total", "span", "imbalance");
  if (t_seq) out += fmt(" %10s", "bound");
  out += "\n";
  for (const auto& s : res.sections) {
    out += fmt("%-16s %4d %8llu %12.6f %12.6f %12.6f %12.6f",
               s.label.c_str(), s.comm,
               static_cast<unsigned long long>(s.instances),
               s.mean_per_process, s.total_inclusive, s.agg.total_span,
               s.agg.total_imbalance);
    if (t_seq) out += fmt(" %10.3f", bound_for(res, s, *t_seq));
    out += "\n";
  }
  return out;
}

std::string render_csv(const ReplayResult& res, std::optional<double> t_seq) {
  std::string out = support::provenance_csv_comment();
  out +=
      "section,comm,ranks,instances,mean_per_process,total_inclusive,"
      "total_span,mean_span,total_imbalance,max_entry_imb,bound\n";
  for (const auto& s : res.sections) {
    out += s.label + "," + std::to_string(s.comm) + "," +
           std::to_string(s.ranks) + "," + std::to_string(s.instances) + ",";
    out += fmt("%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,", s.mean_per_process,
               s.total_inclusive, s.agg.total_span, mean_span(s),
               s.agg.total_imbalance, s.agg.max_entry_imb);
    out += t_seq ? fmt("%.9g", bound_for(res, s, *t_seq)) : "";
    out += "\n";
  }
  return out;
}

std::string render_json(const ReplayResult& res,
                        std::optional<double> t_seq) {
  std::string out = "{\n";
  out += "  \"provenance\": " + support::provenance_json() + ",\n";
  out += fmt("  \"nranks\": %d,\n  \"makespan\": %.9g,\n", res.nranks,
             res.makespan);
  out += fmt("  \"events\": %llu,\n  \"messages\": %llu,\n"
             "  \"collectives\": %llu,\n  \"bytes_sent\": %llu,\n",
             static_cast<unsigned long long>(res.events),
             static_cast<unsigned long long>(res.messages),
             static_cast<unsigned long long>(res.collectives),
             static_cast<unsigned long long>(res.bytes_sent));
  if (t_seq) out += fmt("  \"t_seq\": %.9g,\n", *t_seq);
  out += "  \"sections\": [\n";
  for (std::size_t i = 0; i < res.sections.size(); ++i) {
    const auto& s = res.sections[i];
    out += "    {\"section\": \"" + support::json_escape(s.label) + "\"";
    out += fmt(", \"comm\": %d, \"ranks\": %d, \"instances\": %llu", s.comm,
               s.ranks, static_cast<unsigned long long>(s.instances));
    out += fmt(", \"mean_per_process\": %.9g, \"total_inclusive\": %.9g",
               s.mean_per_process, s.total_inclusive);
    out += fmt(", \"total_span\": %.9g, \"total_imbalance\": %.9g",
               s.agg.total_span, s.agg.total_imbalance);
    if (t_seq) out += fmt(", \"bound\": %.9g", bound_for(res, s, *t_seq));
    out += "}";
    out += i + 1 < res.sections.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string render_chrome(const ReplayResult& res) {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& e : res.timeline) {
    const std::string name = e.label < res.labels.size()
                                 ? support::json_escape(res.labels[e.label])
                                 : "label#" + std::to_string(e.label);
    if (!first) out += ",\n";
    first = false;
    out += fmt("{\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %.3f, "
               "\"pid\": 0, \"tid\": %d}",
               name.c_str(), e.enter ? "B" : "E", e.t * 1e6, e.rank);
  }
  out += "\n]}\n";
  return out;
}

std::string sweep_csv_header() {
  return support::provenance_csv_comment() +
         "machine,latency_scale,bandwidth_scale,compute_scale,drop_rate,"
         "progress,makespan,section,comm,instances,mean_per_process,"
         "total_inclusive,total_span,total_imbalance,bound\n";
}

std::string sweep_csv_rows(const ReplayResult& res, const std::string& machine,
                           double latency_scale, double bandwidth_scale,
                           double compute_scale, double drop_rate,
                           const std::string& progress,
                           std::optional<double> t_seq) {
  std::string out;
  const std::string prefix =
      machine + "," + fmt("%.9g,%.9g,%.9g,%.9g,", latency_scale,
                          bandwidth_scale, compute_scale, drop_rate) +
      progress + fmt(",%.9g,", res.makespan);
  for (const auto& s : res.sections) {
    out += prefix + s.label + "," + std::to_string(s.comm) + "," +
           std::to_string(s.instances) + ",";
    out += fmt("%.9g,%.9g,%.9g,%.9g,", s.mean_per_process, s.total_inclusive,
               s.agg.total_span, s.agg.total_imbalance);
    out += t_seq ? fmt("%.9g", bound_for(res, s, *t_seq)) : "";
    out += "\n";
  }
  return out;
}

}  // namespace mpisect::trace
