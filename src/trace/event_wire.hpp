// Per-event wire codec shared by the .mpst container (file.cpp) and the
// .mpstz chunked compressor (codec/mpstz.cpp).
//
// The compressed container stores each chunk's events in exactly this
// encoding (before its RLE + Huffman pass), with `prev_op` reset to zero
// at every chunk boundary so chunks decode independently. Keeping one
// definition is what makes the .mpstz roundtrip bit-exact: decompression
// rebuilds Event structs, and re-encoding them through this codec
// reproduces the original .mpst byte stream.
#pragma once

#include <cstdint>

#include "trace/events.hpp"
#include "trace/wire.hpp"

namespace mpisect::trace {

/// Append `ev` to `w`. `prev_op` carries the op-id delta chain between
/// consecutive events of one stream; start it at 0 per stream (or chunk).
void encode_event(ByteWriter& w, const Event& ev, std::uint64_t& prev_op);

/// Inverse of encode_event. Throws TraceError on unknown kinds or
/// truncation. `version` is the container format version (v3 added the
/// posted envelope on RecvPost/Probe).
[[nodiscard]] Event decode_event(ByteReader& r, std::uint64_t& prev_op,
                                 std::uint32_t version);

}  // namespace mpisect::trace
