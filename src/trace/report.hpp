// Report rendering for replay results: section breakdowns (text / CSV /
// JSON), a chrome-tracing timeline export, and the Eq. 6 partial speedup
// bound table when a sequential reference time is supplied.
#pragma once

#include <optional>
#include <string>

#include "trace/replay.hpp"

namespace mpisect::trace {

/// Text table: one row per (comm, label) section with instances, mean per
/// process, span, imbalance; plus run totals and, when `t_seq` is given,
/// per-section partial speedup bounds (paper Eq. 6).
[[nodiscard]] std::string render_text(const ReplayResult& res,
                                      std::optional<double> t_seq = {});

/// CSV with one row per section (long format, sweep-friendly).
[[nodiscard]] std::string render_csv(const ReplayResult& res,
                                     std::optional<double> t_seq = {});

/// JSON object: run summary + section array.
[[nodiscard]] std::string render_json(const ReplayResult& res,
                                      std::optional<double> t_seq = {});

/// Chrome-tracing (about://tracing, Perfetto) JSON of the replayed section
/// timeline — one row per rank, B/E events per section boundary. Requires
/// ReplayOptions::timeline.
[[nodiscard]] std::string render_chrome(const ReplayResult& res);

/// Header line for sweep CSV output (matches sweep_csv_row).
[[nodiscard]] std::string sweep_csv_header();

/// One long-format CSV row per section for a sweep grid point. `progress`
/// is the progress-model spec the point replayed under (new column; the
/// canonical spelling is mpisim::ProgressModel::spec()).
[[nodiscard]] std::string sweep_csv_rows(const ReplayResult& res,
                                         const std::string& machine,
                                         double latency_scale,
                                         double bandwidth_scale,
                                         double compute_scale,
                                         double drop_rate = 0.0,
                                         const std::string& progress =
                                             "blocking-only",
                                         std::optional<double> t_seq = {});

}  // namespace mpisect::trace
