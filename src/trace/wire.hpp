// Byte-level encoding primitives for the .mpst trace format.
//
// Everything is explicitly little-endian so traces are portable across
// hosts: multi-byte integers are LEB128 varints (or fixed u32 for the
// magic/version), signed values use zigzag, and doubles are bit_cast to
// uint64 and written as 8 explicit bytes. The reader throws TraceError on
// any overrun, which doubles as the truncated-file diagnostic.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mpisect::trace {

/// All trace I/O failures (bad magic, version skew, truncation, replay
/// inconsistency) throw this; CLI tools catch it and exit with a one-line
/// diagnostic instead of aborting.
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

/// Zigzag mapping for signed values (small magnitudes -> small varints).
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t z) noexcept {
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32le(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void zigzag(std::int64_t v) { varint(zigzag_encode(v)); }
  void f64(double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    }
  }
  void str(std::string_view s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] std::uint32_t u32le() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      need(1);
      const std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    throw TraceError("corrupt trace: varint longer than 64 bits");
  }
  [[nodiscard]] std::int64_t zigzag() { return zigzag_decode(varint()); }
  [[nodiscard]] double f64() {
    need(8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return std::bit_cast<double>(bits);
  }
  [[nodiscard]] std::string str() {
    const std::uint64_t n = varint();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  void need(std::uint64_t n) const {
    if (n > data_.size() - pos_) {
      throw TraceError("truncated trace: unexpected end of file");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace mpisect::trace
