// TraceRecorder — the third PMPI-style tool (after the profiler and the
// checker), capturing a compact per-rank event stream suitable for
// offline what-if replay.
//
// Like MpiChecker it registers with the world's hooks::ToolStack, so it
// stacks with the profiler and checker in any order; unlike them it also
// observes the TraceTap events for collective-internal messages and the
// RNG keys of every modelled charge. Taps and hooks never charge virtual
// time, so recording perturbs the simulated timeline by exactly zero.
//
//   World world(16, {...});
//   sections::SectionRuntime::install(world);
//   auto rec = trace::TraceRecorder::install(world, {.app = "convolution"});
//   world.run(app);
//   rec->finish().save("run.mpst");
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mpisim/hooks.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/toolstack.hpp"
#include "trace/file.hpp"

namespace mpisect::trace {

struct RecorderOptions {
  /// Free-form provenance string stored in the trace header.
  std::string app;
  /// Legacy (ignored): tools now register with the world's ToolStack,
  /// which chains unconditionally.
  bool chain_hooks = true;
  /// Telemetry sampling interval hint stamped into the trace header
  /// (seconds of virtual time); 0 = none. Purely metadata — never set by
  /// the sampler itself, so installing telemetry leaves trace bytes
  /// untouched. Replay uses it to re-derive the sampler's timeline.
  double telemetry_dt = 0.0;
};

class TraceRecorder : public mpisim::Extension, public mpisim::hooks::Tool {
 public:
  /// Create and attach a recorder (idempotent per world).
  static std::shared_ptr<TraceRecorder> install(mpisim::World& world,
                                                RecorderOptions options = {});

  TraceRecorder(mpisim::World& world, RecorderOptions options);
  ~TraceRecorder() override;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Unregister from the world's ToolStack. Idempotent.
  void detach();

  /// Assemble the trace for the last completed run. Label ids are
  /// remapped to lexicographic order so same-seed runs produce
  /// byte-identical files regardless of thread interleaving.
  [[nodiscard]] TraceFile finish() const;

  /// Header, sorted label table and per-rank metadata (t0/t_final/section
  /// totals) of the last run with every event list EMPTY — the cheap part
  /// of finish(), and the skeleton codec::compress_stream wants.
  [[nodiscard]] TraceFile skeleton() const;
  /// One rank's full stream with labels remapped — finish() restricted to
  /// rank r. Peak memory for a whole-trace save through this is one
  /// rank's copy instead of all of them.
  [[nodiscard]] RankStream finish_rank(int r) const;
  /// Stream the last run straight to a .mpst file, one rank at a time
  /// (byte-identical to finish().save(path), without ever materializing
  /// the whole TraceFile).
  void save(const std::string& path) const;
  /// Events recorded in the last run, across all ranks (no assembly).
  [[nodiscard]] std::uint64_t total_events() const noexcept;

  // Tool interface (invoked by the world's ToolStack).
  void on_call_begin(mpisim::Ctx& ctx, const mpisim::CallInfo& info) override;
  void on_call_end(mpisim::Ctx& ctx, const mpisim::CallInfo& info) override;
  void on_section_enter(mpisim::Ctx& ctx, mpisim::Comm& comm,
                        const char* label, char* data) override;
  void on_section_leave(mpisim::Ctx& ctx, mpisim::Comm& comm,
                        const char* label, char* data) override;
  void on_pcontrol(mpisim::Ctx& ctx, int level, const char* label) override;
  void on_send_post(mpisim::Ctx& ctx, const mpisim::TapSend& t) override;
  void on_send_wait(mpisim::Ctx& ctx, const mpisim::TapSendWait& t) override;
  void on_recv_post(mpisim::Ctx& ctx, const mpisim::TapRecvPost& t) override;
  void on_recv_wait(mpisim::Ctx& ctx, const mpisim::TapRecvWait& t) override;
  void on_probe(mpisim::Ctx& ctx, const mpisim::TapProbe& t) override;
  // on_request_test is deliberately NOT overridden: a test() poll count is
  // scheduling-dependent (how often the app polled before completion), and
  // recording it would break the byte-identical-traces guarantee.
  void on_nbc_post(mpisim::Ctx& ctx, const mpisim::TapNbcPost& t) override;
  void on_nbc_complete(mpisim::Ctx& ctx,
                       const mpisim::TapNbcComplete& t) override;
  void on_comm_sync(mpisim::Ctx& ctx, const mpisim::TapCommSync& t) override;
  void on_coll_entry(mpisim::Ctx& ctx, std::uint64_t op,
                     double t_before) override;

 private:
  struct RankBuf {
    std::vector<Event> events;
    double t0 = 0.0;
    double t_final = 0.0;
    double last_t = 0.0;  ///< clock after the previous event's charges
    std::uint64_t send_count = 0;
    std::uint64_t recv_post_count = 0;
    /// Outstanding operations: token -> post ordinal.
    std::unordered_map<const void*, std::uint64_t> open_sends;
    std::unordered_map<const void*, std::uint64_t> open_recvs;
    /// token -> index of the RecvPost event awaiting match backpatch.
    std::unordered_map<const void*, std::size_t> recv_event_index;
    /// Open sections: (comm, label, t_enter).
    std::vector<std::tuple<int, std::uint32_t, double>> section_stack;
    /// (comm, label) -> (instances, inclusive seconds).
    std::map<std::pair<int, std::uint32_t>, std::pair<std::uint64_t, double>>
        totals;
    bool finalized = false;

    void reset(double now) {
      *this = RankBuf{};
      t0 = now;
      last_t = now;
    }
  };

  RankBuf& buf(const mpisim::Ctx& ctx) {
    return bufs_[static_cast<std::size_t>(ctx.rank())];
  }
  /// Append an event whose charges begin at `t_before`; sets the gap flag
  /// when the clock moved since the previous event on this rank.
  Event& push(RankBuf& b, EventKind kind, double t_before);
  std::uint32_t intern(const char* label);

  void on_begin(mpisim::Ctx& ctx, const mpisim::CallInfo& info);
  void on_end(mpisim::Ctx& ctx, const mpisim::CallInfo& info);
  void on_section(mpisim::Ctx& ctx, mpisim::Comm& comm, const char* label,
                  bool enter);
  /// Lexicographically sorted label table + old-id -> new-id remap.
  void label_remap(std::vector<std::string>& sorted,
                   std::vector<std::uint32_t>& remap) const;
  [[nodiscard]] RankStream build_rank(
      int r, const std::vector<std::uint32_t>& remap) const;

  mpisim::World* world_;
  RecorderOptions options_;
  bool attached_ = false;
  std::vector<RankBuf> bufs_;
  std::mutex label_mu_;
  std::vector<std::string> label_names_;
  std::unordered_map<std::string, std::uint32_t> label_ids_;
};

}  // namespace mpisect::trace
