// TraceRecorder — the third PMPI-style tool (after the profiler and the
// checker), capturing a compact per-rank event stream suitable for
// offline what-if replay.
//
// Like MpiChecker it chains the previous HookTable, so it stacks with the
// profiler and checker in any order; unlike them it also installs the
// World's TraceTap to observe collective-internal messages and the RNG
// keys of every modelled charge. Taps and hooks never charge virtual
// time, so recording perturbs the simulated timeline by exactly zero.
//
//   World world(16, {...});
//   sections::SectionRuntime::install(world);
//   auto rec = trace::TraceRecorder::install(world, {.app = "convolution"});
//   world.run(app);
//   rec->finish().save("run.mpst");
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mpisim/hooks.hpp"
#include "mpisim/runtime.hpp"
#include "trace/file.hpp"

namespace mpisect::trace {

struct RecorderOptions {
  /// Free-form provenance string stored in the trace header.
  std::string app;
  /// Forward events to previously installed hook/tap owners (tool
  /// stacking). Disable only in isolation tests.
  bool chain_hooks = true;
  /// Telemetry sampling interval hint stamped into the trace header
  /// (seconds of virtual time); 0 = none. Purely metadata — never set by
  /// the sampler itself, so installing telemetry leaves trace bytes
  /// untouched. Replay uses it to re-derive the sampler's timeline.
  double telemetry_dt = 0.0;
};

class TraceRecorder : public mpisim::Extension {
 public:
  /// Create and attach a recorder (idempotent per world).
  static std::shared_ptr<TraceRecorder> install(mpisim::World& world,
                                                RecorderOptions options = {});

  TraceRecorder(mpisim::World& world, RecorderOptions options);
  ~TraceRecorder() override;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Restore the previous hooks/taps. Idempotent.
  void detach();

  /// Assemble the trace for the last completed run. Label ids are
  /// remapped to lexicographic order so same-seed runs produce
  /// byte-identical files regardless of thread interleaving.
  [[nodiscard]] TraceFile finish() const;

 private:
  struct RankBuf {
    std::vector<Event> events;
    double t0 = 0.0;
    double t_final = 0.0;
    double last_t = 0.0;  ///< clock after the previous event's charges
    std::uint64_t send_count = 0;
    std::uint64_t recv_post_count = 0;
    /// Outstanding operations: token -> post ordinal.
    std::unordered_map<const void*, std::uint64_t> open_sends;
    std::unordered_map<const void*, std::uint64_t> open_recvs;
    /// token -> index of the RecvPost event awaiting match backpatch.
    std::unordered_map<const void*, std::size_t> recv_event_index;
    /// Open sections: (comm, label, t_enter).
    std::vector<std::tuple<int, std::uint32_t, double>> section_stack;
    /// (comm, label) -> (instances, inclusive seconds).
    std::map<std::pair<int, std::uint32_t>, std::pair<std::uint64_t, double>>
        totals;
    bool finalized = false;

    void reset(double now) {
      *this = RankBuf{};
      t0 = now;
      last_t = now;
    }
  };

  void install_hooks();
  RankBuf& buf(const mpisim::Ctx& ctx) {
    return bufs_[static_cast<std::size_t>(ctx.rank())];
  }
  /// Append an event whose charges begin at `t_before`; sets the gap flag
  /// when the clock moved since the previous event on this rank.
  Event& push(RankBuf& b, EventKind kind, double t_before);
  std::uint32_t intern(const char* label);

  void on_begin(mpisim::Ctx& ctx, const mpisim::CallInfo& info);
  void on_end(mpisim::Ctx& ctx, const mpisim::CallInfo& info);
  void on_section(mpisim::Ctx& ctx, mpisim::Comm& comm, const char* label,
                  bool enter);

  mpisim::World* world_;
  RecorderOptions options_;
  mpisim::HookTable prev_hooks_;
  mpisim::TraceTap prev_taps_;
  bool installed_ = false;
  std::vector<RankBuf> bufs_;
  std::mutex label_mu_;
  std::vector<std::string> label_names_;
  std::unordered_map<std::string, std::uint32_t> label_ids_;
};

}  // namespace mpisect::trace
