// The .mpst container: header, label table, per-rank event streams.
//
// Layout (all little-endian, integers LEB128 unless noted):
//
//   u32  magic "MPST"          u32  format version
//   header: app string, world seed, collective algorithms, start-skew
//           sigma, rank count, full MachineModel parameter block
//   label table: count + strings (ids are indices, lexicographic order)
//   per rank: rank, t0, t_final, event count, events, section totals
//
// The machine model travels in the header so `replay` can re-cost under
// the *recorded* model with no external input, and so `info` can print
// what the trace was captured on. Section totals per (comm, label) form a
// self-check footer: a same-model replay must reproduce them exactly.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "mpisim/machine.hpp"
#include "mpisim/progress.hpp"
#include "trace/events.hpp"
#include "trace/wire.hpp"

namespace mpisect::trace {

inline constexpr std::uint32_t kTraceMagic = 0x5453504D;  // "MPST" LE
/// v1: original layout. v2 appends the telemetry sampling interval to the
/// header; decode still accepts v1 (telemetry_dt = 0, "not recorded").
/// v3 appends the posted envelope (source world rank, tag) to RecvPost and
/// Probe events so offline analysis can recompute wildcard match sets;
/// decode still accepts v1/v2 (post_src = Event::kNotRecorded, tag = 0).
/// v4 adds the progress model the run executed under to the header and the
/// NbcPost/NbcComplete event kinds; decode still accepts v1-v3 (progress =
/// blocking-only, the only behaviour older simulators had).
/// v5 appends the network model's hierarchical_nbc flag to the machine
/// block so replay/interp recompute nonblocking-collective costs with the
/// same topology the run charged; decode still accepts v1-v4 (flag off,
/// the flat formula those runs used).
inline constexpr std::uint32_t kTraceVersion = 5;

struct TraceHeader {
  std::string app;  ///< free-form provenance (app + parameters)
  std::uint64_t seed = 0;
  std::uint8_t scatter_algo = 0;  ///< mpisim::CollAlgo
  std::uint8_t gather_algo = 0;
  double start_skew_sigma = 0.0;
  int nranks = 0;
  /// Virtual-time telemetry sampling interval the run was observed with
  /// (seconds); 0 = no interval recorded. A replay uses it to re-derive the
  /// sampler's timeline under a different machine model (v2 header field).
  double telemetry_dt = 0.0;
  /// Progress model the recorded run executed under (v4 header field;
  /// blocking-only for older traces). Note the machine block below already
  /// carries the opportunistic entry-overhead fold — replay under the
  /// recorded model needs no extra arithmetic, only the rendezvous extra
  /// and compute-factor terms this struct derives.
  mpisim::ProgressModel progress;
  mpisim::MachineModel machine;
};

/// Inclusive time this rank spent in one (comm, label) section.
struct SectionTotal {
  int comm = 0;
  std::uint32_t label = 0;
  std::uint64_t count = 0;    ///< instances entered
  double inclusive = 0.0;     ///< summed enter->exit virtual seconds
};

struct RankStream {
  int rank = 0;
  double t0 = 0.0;       ///< clock at MPI_Init (start skew)
  double t_final = 0.0;  ///< clock at MPI_Finalize
  std::vector<Event> events;
  std::vector<SectionTotal> totals;
};

struct TraceFile {
  TraceHeader header;
  std::vector<std::string> labels;  ///< id -> name, sorted lexicographically
  std::vector<RankStream> ranks;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Throws TraceError on bad magic, wrong byte order, version mismatch,
  /// truncation, or trailing garbage.
  [[nodiscard]] static TraceFile decode(std::span<const std::uint8_t> data);

  void save(const std::string& path) const;
  [[nodiscard]] static TraceFile load(const std::string& path);

  [[nodiscard]] std::uint64_t total_events() const noexcept;
};

/// Streams a .mpst file to disk rank by rank: the preamble is written at
/// construction, each write_rank() encodes and flushes one rank stream,
/// and close() verifies the declared rank count. The byte stream is
/// identical to TraceFile::encode() of the same data — the encoding is
/// self-delimiting per rank — but the buffered high-water mark is one
/// rank stream instead of the whole file, which is what makes recording
/// 65k-rank traces feasible. Throws TraceError on I/O failure, writing
/// more ranks than declared, or closing short.
class TraceStreamWriter {
 public:
  TraceStreamWriter(const std::string& path, const TraceHeader& header,
                    const std::vector<std::string>& labels, int nranks);
  ~TraceStreamWriter();
  TraceStreamWriter(const TraceStreamWriter&) = delete;
  TraceStreamWriter& operator=(const TraceStreamWriter&) = delete;

  /// Encode and write the next rank stream (ranks are positional; feed
  /// them in the order the reader should see them).
  void write_rank(const RankStream& rs);
  /// Flush and verify. Idempotent; destruction without close() performs
  /// no verification (a partial file is left behind for post-mortems).
  void close();

 private:
  void write_chunk(const std::vector<std::uint8_t>& bytes);

  std::ofstream out_;
  std::string path_;
  int expected_ranks_;
  int written_ = 0;
  bool closed_ = false;
};

}  // namespace mpisect::trace
