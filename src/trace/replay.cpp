#include "trace/replay.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "mpisim/faults/engine.hpp"
#include "mpisim/message.hpp"
#include "support/rng.hpp"

namespace mpisect::trace {

namespace {

struct MsgKey {
  int comm = 0;
  int src = 0;
  int dst = 0;
  std::uint64_t seq = 0;
  bool operator==(const MsgKey&) const = default;
  [[nodiscard]] bool null() const noexcept { return comm < 0; }
  static MsgKey none() noexcept { return MsgKey{-1, 0, 0, 0}; }
};

struct MsgKeyHash {
  std::size_t operator()(const MsgKey& k) const noexcept {
    return static_cast<std::size_t>(support::stream_id(
        static_cast<std::uint64_t>(k.comm) << 32 |
            static_cast<std::uint32_t>(k.src),
        static_cast<std::uint64_t>(k.dst), k.seq));
  }
};

/// Both frames' view of one in-flight message.
struct MsgState {
  double start_rec = 0.0, wire_rec = 0.0, avail_rec = 0.0, post_rec = 0.0;
  double start_cur = 0.0, wire_cur = 0.0, avail_cur = 0.0, post_cur = 0.0;
  bool rend_rec = false, rend_cur = false;
  bool lost_cur = false;  ///< fault plan lost this message in the cur frame
  bool have_send = false, have_post = false;
  int consumed = 0;  ///< SendWait + RecvWait; erased at 2
};

struct SyncState {
  int members = 0;
  int arrived = 0;
  std::uint64_t rounds = 0;
  double max_rec = 0.0, max_cur = 0.0;
};

/// One nonblocking-collective round, keyed by (comm, generation): posts
/// accumulate the max post time per frame, fences stall on the quorum.
struct NbcRound {
  int members = 0;
  int arrived = 0;
  int departed = 0;
  std::uint64_t bytes = 0;
  double max_rec = 0.0, max_cur = 0.0;
};

struct RankRt {
  std::size_t cursor = 0;
  double t_rec = 0.0, t_cur = 0.0;
  std::vector<MsgKey> send_keys, recv_keys;
  bool sync_entered = false;
  std::pair<int, std::uint64_t> sync_key{0, 0};
  std::map<int, std::uint64_t> sync_ordinal;  ///< per-comm CommSync counter
  std::vector<std::tuple<int, std::uint32_t, double>> stack;
  std::map<std::pair<int, std::uint32_t>, std::pair<std::uint64_t, double>>
      totals;
  std::map<std::pair<int, std::uint32_t>, long> instance_idx;
  bool done = false;
};

enum class Step { Advanced, Progress, Blocked };

struct Engine {
  const TraceFile& tf;
  const mpisim::NetworkModel& rec_net;
  const mpisim::NetworkModel& cur_net;
  ReplayOptions opt;
  ReplayResult res;

  /// Progress models of the two frames, and the derived per-frame terms:
  /// rendezvous delivery surcharge and the compute-gap rescale (recorded
  /// gaps already include the recorded model's core tax, so the what-if
  /// frame multiplies by the factor ratio).
  mpisim::ProgressModel rec_prog, cur_prog;
  double rex_rec = 0.0, rex_cur = 0.0;
  double prog_scale = 1.0;

  std::vector<RankRt> ranks;
  std::unordered_map<MsgKey, MsgState, MsgKeyHash> msgs;
  std::map<std::pair<int, std::uint64_t>, SyncState> syncs;
  std::map<std::pair<int, std::uint64_t>, NbcRound> nbc_rounds;
  std::map<std::pair<int, std::uint32_t>,
           std::vector<std::vector<sections::RankSpan>>>
      spans;
  std::unique_ptr<mpisim::faults::FaultEngine> fault_eng;

  Engine(const TraceFile& t, const mpisim::MachineModel& cur,
         const ReplayOptions& o)
      : tf(t), rec_net(t.header.machine.net), cur_net(cur.net), opt(o) {
    rec_prog = t.header.progress;
    cur_prog = opt.progress.value_or(rec_prog);
    rex_rec = rec_prog.rendezvous_extra();
    rex_cur = cur_prog.rendezvous_extra();
    prog_scale = cur_prog.compute_factor() / rec_prog.compute_factor();
    if (!opt.faults.empty()) {
      if (!opt.faults.kills.empty()) {
        throw TraceError(
            "fault plan contains kill rules, which are not replayable: the "
            "recorded skeleton assumes every rank completed");
      }
      const std::uint64_t seed =
          opt.fault_seed != 0 ? opt.fault_seed : t.header.seed;
      fault_eng = std::make_unique<mpisim::faults::FaultEngine>(
          opt.faults, seed, t.header.nranks);
    }
    ranks.resize(tf.ranks.size());
    for (std::size_t r = 0; r < tf.ranks.size(); ++r) {
      ranks[r].t_rec = tf.ranks[r].t0;
      ranks[r].t_cur = tf.ranks[r].t0;
    }
    res.nranks = tf.header.nranks;
    res.labels = tf.labels;
    res.final_times.assign(tf.ranks.size(), 0.0);
  }

  [[noreturn]] void fail(int r, const Event& ev, const std::string& why) {
    throw TraceError("replay failed at rank " + std::to_string(r) +
                     " event #" + std::to_string(ranks[r].cursor) + " (" +
                     event_kind_name(ev.kind) + "): " + why);
  }

  /// Re-charge the compute gap preceding `ev`. The recorded frame adopts
  /// the recorded absolute clock; the what-if frame adds the scaled delta
  /// (or adopts it too while in bitwise lockstep).
  void charge_gap(int r, RankRt& st, const Event& ev) {
    if (!ev.has_time) return;
    if (ev.t_before < st.t_rec) {
      fail(r, ev,
           "recorded clock behind replayed clock (trace/model mismatch)");
    }
    double scale = opt.compute_scale * prog_scale;
    if (fault_eng) scale *= fault_eng->compute_factor(r, st.t_cur);
    if (scale == 1.0 && st.t_cur == st.t_rec) {
      st.t_cur = ev.t_before;
    } else {
      st.t_cur += (ev.t_before - st.t_rec) * scale;
    }
    st.t_rec = ev.t_before;
  }

  void consume(const MsgKey& key, MsgState& ms) {
    if (++ms.consumed >= 2) msgs.erase(key);
  }

  Step step(int r) {
    RankRt& st = ranks[static_cast<std::size_t>(r)];
    const RankStream& stream = tf.ranks[static_cast<std::size_t>(r)];
    if (st.cursor >= stream.events.size()) {
      // No Finalize event recorded (aborted run): finish at current time.
      st.done = true;
      res.final_times[static_cast<std::size_t>(r)] = st.t_cur;
      return Step::Advanced;
    }
    const Event& ev = stream.events[st.cursor];
    // Stall rules charge at the rank's first event past their trigger time
    // (mirror of the live engine's fault checkpoints).
    if (fault_eng) st.t_cur += fault_eng->take_stall(r, st.t_cur);
    switch (ev.kind) {
      case EventKind::SendPost: {
        charge_gap(r, st, ev);
        st.t_rec += std::max(
            rec_net.cpu_overhead(r, rec_net.send_overhead, ev.op, 0), 0.0);
        st.t_cur += std::max(
            cur_net.cpu_overhead(r, cur_net.send_overhead, ev.op, 0), 0.0);
        const MsgKey key{ev.comm, r, ev.peer, ev.seq};
        MsgState& ms = msgs[key];
        const auto nbytes = static_cast<std::size_t>(ev.bytes);
        ms.start_rec = st.t_rec;
        ms.wire_rec = rec_net.transfer_cost(r, ev.peer, nbytes, ev.seq);
        ms.avail_rec = ms.start_rec + ms.wire_rec;
        ms.rend_rec = nbytes > rec_net.eager_threshold;
        ms.start_cur = st.t_cur;
        ms.wire_cur = cur_net.transfer_cost(r, ev.peer, nbytes, ev.seq);
        if (fault_eng) {
          const mpisim::faults::WireFate fate = fault_eng->wire_fate(
              r, ev.peer, ev.seq, st.t_cur,
              ev.tag >= mpisim::kInternalTagBase);
          ms.wire_cur = ms.wire_cur * fate.cost_factor + fate.add_latency +
                        fate.extra_delay;
          ms.lost_cur = fate.lost;
        }
        ms.avail_cur = ms.start_cur + ms.wire_cur;
        ms.rend_cur = nbytes > cur_net.eager_threshold;
        ms.have_send = true;
        st.send_keys.push_back(key);
        ++res.messages;
        res.bytes_sent += ev.bytes;
        break;
      }
      case EventKind::SendWait: {
        if (ev.op >= st.send_keys.size()) fail(r, ev, "bad send backref");
        const MsgKey key = st.send_keys[st.send_keys.size() - 1 - ev.op];
        const auto it = msgs.find(key);
        if (it == msgs.end()) {
          // Already fully consumed — wait() was a no-op re-wait.
          charge_gap(r, st, ev);
          break;
        }
        MsgState& ms = it->second;
        if (ms.rend_cur && ms.lost_cur) {
          fail(r, ev,
               "rendezvous message to rank " + std::to_string(key.dst) +
                   " seq " + std::to_string(key.seq) +
                   " lost under the fault plan (retransmit budget "
                   "exhausted); the recorded send cannot complete");
        }
        if ((ms.rend_rec || ms.rend_cur) && !ms.have_post) {
          return Step::Blocked;
        }
        charge_gap(r, st, ev);
        if (ms.rend_rec) {
          st.t_rec = std::max(st.t_rec, std::max(ms.start_rec, ms.post_rec) +
                                            ms.wire_rec + rex_rec);
        }
        if (ms.rend_cur) {
          st.t_cur = std::max(st.t_cur, std::max(ms.start_cur, ms.post_cur) +
                                            ms.wire_cur + rex_cur);
        }
        consume(key, ms);
        break;
      }
      case EventKind::RecvPost: {
        charge_gap(r, st, ev);
        if (ev.peer == Event::kUnmatched) {
          st.recv_keys.push_back(MsgKey::none());
        } else {
          const MsgKey key{ev.comm, ev.peer, r, ev.seq};
          MsgState& ms = msgs[key];
          ms.post_rec = st.t_rec;
          ms.post_cur = st.t_cur;
          ms.have_post = true;
          st.recv_keys.push_back(key);
        }
        break;
      }
      case EventKind::RecvWait: {
        if (ev.seq >= st.recv_keys.size()) fail(r, ev, "bad recv backref");
        const MsgKey key = st.recv_keys[st.recv_keys.size() - 1 - ev.seq];
        if (key.null()) fail(r, ev, "wait on a receive that never matched");
        const auto it = msgs.find(key);
        if (it == msgs.end() || !it->second.have_send) return Step::Blocked;
        MsgState& ms = it->second;
        if (ms.lost_cur) {
          fail(r, ev,
               "message from rank " + std::to_string(key.src) + " seq " +
                   std::to_string(key.seq) +
                   " lost under the fault plan (retransmit budget "
                   "exhausted); the recorded receive can never complete");
        }
        charge_gap(r, st, ev);
        const double del_rec =
            ms.rend_rec
                ? std::max(ms.start_rec, ms.post_rec) + ms.wire_rec + rex_rec
                : std::max(ms.post_rec, ms.avail_rec);
        st.t_rec = std::max(st.t_rec, del_rec);
        st.t_rec += std::max(
            rec_net.cpu_overhead(r, rec_net.recv_overhead, ev.op, 1), 0.0);
        const double del_cur =
            ms.rend_cur
                ? std::max(ms.start_cur, ms.post_cur) + ms.wire_cur + rex_cur
                : std::max(ms.post_cur, ms.avail_cur);
        st.t_cur = std::max(st.t_cur, del_cur);
        st.t_cur += std::max(
            cur_net.cpu_overhead(r, cur_net.recv_overhead, ev.op, 1), 0.0);
        consume(key, ms);
        break;
      }
      case EventKind::Probe: {
        const MsgKey key{ev.comm, ev.peer, r, ev.seq};
        const auto it = msgs.find(key);
        if (it == msgs.end() || !it->second.have_send) return Step::Blocked;
        const MsgState& ms = it->second;
        if (ms.lost_cur) {
          fail(r, ev,
               "probed message from rank " + std::to_string(key.src) +
                   " seq " + std::to_string(key.seq) +
                   " lost under the fault plan; the recorded probe can "
                   "never match");
        }
        charge_gap(r, st, ev);
        // Mirror of Channel::probe: the completion time of a hypothetical
        // receive posted at the prober's current time (rendezvous pays its
        // wire cost, eager is availability-bound).
        st.t_rec =
            ms.rend_rec
                ? std::max(ms.start_rec, st.t_rec) + ms.wire_rec + rex_rec
                : std::max(st.t_rec, ms.avail_rec);
        st.t_cur =
            ms.rend_cur
                ? std::max(ms.start_cur, st.t_cur) + ms.wire_cur + rex_cur
                : std::max(st.t_cur, ms.avail_cur);
        break;
      }
      case EventKind::CollBegin: {
        charge_gap(r, st, ev);
        st.t_rec += std::max(
            rec_net.cpu_overhead(r, rec_net.send_overhead, ev.op, 2), 0.0);
        st.t_cur += std::max(
            cur_net.cpu_overhead(r, cur_net.send_overhead, ev.op, 2), 0.0);
        ++res.collectives;
        break;
      }
      case EventKind::CollEnd:
      case EventKind::Pcontrol: {
        charge_gap(r, st, ev);
        break;
      }
      case EventKind::SectionEnter: {
        charge_gap(r, st, ev);
        st.stack.emplace_back(ev.comm, ev.label, st.t_cur);
        if (opt.timeline) {
          res.timeline.push_back(
              {st.t_cur, r, ev.comm, ev.label, true,
               static_cast<int>(st.stack.size()) - 1,
               st.instance_idx[{ev.comm, ev.label}]});
        }
        break;
      }
      case EventKind::SectionExit: {
        charge_gap(r, st, ev);
        if (st.stack.empty()) fail(r, ev, "section exit with empty stack");
        const auto [c, l, t_in] = st.stack.back();
        st.stack.pop_back();
        auto& [count, inclusive] = st.totals[{c, l}];
        ++count;
        inclusive += st.t_cur - t_in;
        const long k = st.instance_idx[{c, l}]++;
        if (opt.collect_metrics) {
          auto& per_instance = spans[{c, l}];
          if (per_instance.size() <= static_cast<std::size_t>(k)) {
            per_instance.resize(static_cast<std::size_t>(k) + 1);
          }
          per_instance[static_cast<std::size_t>(k)].push_back(
              {r, t_in, st.t_cur});
        }
        if (opt.timeline) {
          res.timeline.push_back({st.t_cur, r, c, l, false,
                                  static_cast<int>(st.stack.size()), k});
        }
        break;
      }
      case EventKind::CommSync: {
        if (!st.sync_entered) {
          charge_gap(r, st, ev);
          const std::uint64_t ordinal = st.sync_ordinal[ev.comm]++;
          st.sync_key = {ev.comm, ordinal};
          SyncState& sy = syncs[st.sync_key];
          sy.members = ev.peer;
          sy.rounds = ev.seq;
          if (sy.arrived == 0) {
            sy.max_rec = st.t_rec;
            sy.max_cur = st.t_cur;
          } else {
            sy.max_rec = std::max(sy.max_rec, st.t_rec);
            sy.max_cur = std::max(sy.max_cur, st.t_cur);
          }
          ++sy.arrived;
          st.sync_entered = true;
          if (sy.arrived < sy.members) return Step::Progress;
        }
        const SyncState& sy = syncs[st.sync_key];
        if (sy.arrived < sy.members) return Step::Blocked;
        const double rounds = static_cast<double>(sy.rounds);
        st.t_rec = std::max(
            st.t_rec, sy.max_rec + rounds * rec_net.inter_node.latency);
        st.t_cur = std::max(
            st.t_cur, sy.max_cur + rounds * cur_net.inter_node.latency);
        st.sync_entered = false;
        break;
      }
      case EventKind::Finalize: {
        charge_gap(r, st, ev);
        if (st.t_rec != stream.t_final) {
          fail(r, ev, "recorded-frame final time mismatch (corrupt trace?)");
        }
        res.final_times[static_cast<std::size_t>(r)] = st.t_cur;
        st.done = true;
        break;
      }
      case EventKind::NbcPost: {
        charge_gap(r, st, ev);
        // Entry overhead on the collective-entry jitter stream (salt 2),
        // mirroring Comm::nbc_post.
        st.t_rec += std::max(
            rec_net.cpu_overhead(r, rec_net.send_overhead, ev.op, 2), 0.0);
        st.t_cur += std::max(
            cur_net.cpu_overhead(r, cur_net.send_overhead, ev.op, 2), 0.0);
        NbcRound& round = nbc_rounds[{ev.comm, ev.seq}];
        round.members = ev.peer;
        round.bytes = std::max(round.bytes, ev.bytes);
        if (round.arrived == 0) {
          round.max_rec = st.t_rec;
          round.max_cur = st.t_cur;
        } else {
          round.max_rec = std::max(round.max_rec, st.t_rec);
          round.max_cur = std::max(round.max_cur, st.t_cur);
        }
        ++round.arrived;
        ++res.collectives;
        break;
      }
      case EventKind::NbcComplete: {
        const auto it = nbc_rounds.find({ev.comm, ev.seq});
        if (it == nbc_rounds.end() || it->second.arrived < it->second.members) {
          return Step::Blocked;  // fence stalls until the post quorum
        }
        charge_gap(r, st, ev);
        NbcRound& round = it->second;
        st.t_rec = rec_prog.nbc_complete_time(
            st.t_rec, round.max_rec,
            rec_net.nbc_cost(round.members, round.bytes));
        st.t_cur = cur_prog.nbc_complete_time(
            st.t_cur, round.max_cur,
            cur_net.nbc_cost(round.members, round.bytes));
        if (++round.departed == round.members) nbc_rounds.erase(it);
        break;
      }
    }
    ++st.cursor;
    ++res.events;
    return Step::Advanced;
  }

  void run() {
    for (;;) {
      bool any_active = false;
      bool progress = false;
      for (int r = 0; r < static_cast<int>(ranks.size()); ++r) {
        RankRt& st = ranks[static_cast<std::size_t>(r)];
        if (st.done) continue;
        any_active = true;
        for (;;) {
          const Step s = step(r);
          if (s == Step::Advanced) {
            progress = true;
            if (st.done) break;
            continue;
          }
          if (s == Step::Progress) progress = true;
          break;
        }
      }
      if (!any_active) break;
      if (!progress) {
        std::string stuck;
        for (int r = 0; r < static_cast<int>(ranks.size()); ++r) {
          const RankRt& st = ranks[static_cast<std::size_t>(r)];
          if (st.done) continue;
          if (!stuck.empty()) stuck += ", ";
          stuck += std::to_string(r) + "@" + std::to_string(st.cursor);
          if (stuck.size() > 120) break;
        }
        throw TraceError(
            "replay dependency stall (truncated or inconsistent trace); "
            "blocked ranks: " +
            stuck);
      }
    }
  }

  void finalize_result() {
    // Seed with -infinity, not 0.0: compute-rescale what-ifs can shift the
    // time base negative and a 0.0 seed would clamp the makespan.
    res.makespan = res.final_times.empty()
                       ? 0.0
                       : -std::numeric_limits<double>::infinity();
    for (const double t : res.final_times) res.makespan = std::max(res.makespan, t);

    // Per-rank totals in footer order (sorted by (comm, label)).
    res.rank_totals.resize(ranks.size());
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      for (const auto& [key, val] : ranks[r].totals) {
        res.rank_totals[r].push_back(
            SectionTotal{key.first, key.second, val.first, val.second});
      }
    }

    // Aggregate section statistics across ranks.
    std::map<std::pair<int, std::uint32_t>, ReplaySectionStat> stats;
    for (const auto& rt : res.rank_totals) {
      for (const auto& t : rt) {
        auto& s = stats[{t.comm, t.label}];
        s.comm = t.comm;
        s.label = t.label < res.labels.size()
                      ? res.labels[t.label]
                      : "label#" + std::to_string(t.label);
        ++s.ranks;
        s.instances += t.count;
        s.total_inclusive += t.inclusive;
      }
    }
    for (auto& [key, s] : stats) {
      s.mean_per_process = s.ranks > 0 ? s.total_inclusive / s.ranks : 0.0;
      if (opt.collect_metrics) {
        const auto it = spans.find(key);
        if (it != spans.end()) {
          // Ranks finish an instance in dependency order, not rank order;
          // sort so metric summation matches a rank-ordered profiler
          // bit for bit.
          for (auto& instance : it->second) {
            std::sort(instance.begin(), instance.end(),
                      [](const sections::RankSpan& a,
                         const sections::RankSpan& b) {
                        return a.rank < b.rank;
                      });
            if (!instance.empty()) {
              s.agg.add(sections::compute_metrics(instance));
            }
          }
        }
      }
      res.sections.push_back(std::move(s));
    }

    if (opt.timeline) {
      std::stable_sort(res.timeline.begin(), res.timeline.end(),
                       [](const TimelineEntry& a, const TimelineEntry& b) {
                         if (a.t != b.t) return a.t < b.t;
                         return a.rank < b.rank;
                       });
    }
  }
};

}  // namespace

mpisim::MachineModel fold_progress(mpisim::MachineModel m,
                                   const mpisim::ProgressModel& rec,
                                   const mpisim::ProgressModel& cur,
                                   bool machine_is_recorded) {
  if (machine_is_recorded && rec.mode == mpisim::ProgressMode::Opportunistic) {
    m.net.send_overhead -= rec.entry_overhead;
    m.net.recv_overhead -= rec.entry_overhead;
  }
  if (cur.mode == mpisim::ProgressMode::Opportunistic) {
    m.net.send_overhead += cur.entry_overhead;
    m.net.recv_overhead += cur.entry_overhead;
  }
  return m;
}

ReplayResult replay(const TraceFile& tf, const mpisim::MachineModel& machine,
                    const ReplayOptions& options) {
  if (tf.ranks.size() != static_cast<std::size_t>(tf.header.nranks)) {
    throw TraceError("trace rank streams do not match header rank count");
  }
  Engine eng(tf, machine, options);
  eng.run();
  eng.finalize_result();
  return std::move(eng.res);
}

VerifyResult verify_roundtrip(const TraceFile& tf) {
  const ReplayResult rr = replay(tf, tf.header.machine, {});
  for (std::size_t r = 0; r < tf.ranks.size(); ++r) {
    const RankStream& rec = tf.ranks[r];
    if (rr.final_times[r] != rec.t_final) {
      return {false, "rank " + std::to_string(r) +
                         ": final time diverged from recording"};
    }
    const auto& got = rr.rank_totals[r];
    if (got.size() != rec.totals.size()) {
      return {false, "rank " + std::to_string(r) +
                         ": section totals count mismatch"};
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      const auto& a = got[i];
      const auto& b = rec.totals[i];
      if (a.comm != b.comm || a.label != b.label || a.count != b.count ||
          a.inclusive != b.inclusive) {
        const std::string name = b.label < tf.labels.size()
                                     ? tf.labels[b.label]
                                     : std::to_string(b.label);
        return {false, "rank " + std::to_string(r) + " section " + name +
                           ": totals diverged from recording"};
      }
    }
  }
  return {true, ""};
}

}  // namespace mpisect::trace
