// Event model of the .mpst trace stream.
//
// Each rank's stream is the ordered list of everything that charged (or
// could charge) its virtual clock, carrying the *logical identifiers* of
// every deterministic jitter draw — per-edge wire sequence numbers and
// per-rank op ids — rather than the drawn costs. That is what makes the
// skeleton re-costable: a replay under a different MachineModel re-invokes
// the same keyed draws with new parameters, while a replay under the
// recorded model reproduces the original timeline bit for bit.
//
// Compute/OpenMP time between MPI events is not itemized; it is recovered
// from the recorded absolute clock value (`t_before`) stored on events
// preceded by a nonzero gap. Absolute values (not deltas) are stored
// because IEEE addition cannot round-trip `x + (y - x) == y`.
#pragma once

#include <cstdint>

namespace mpisect::trace {

enum class EventKind : std::uint8_t {
  SendPost = 0,   ///< send entered the matching engine
  SendWait,       ///< send completed locally (rendezvous sync point)
  RecvPost,       ///< receive posted
  RecvWait,       ///< receive completed (delivery sync + overhead)
  Probe,          ///< probe matched an envelope
  CollBegin,      ///< public collective entry (entry overhead op)
  CollEnd,        ///< public collective exit marker
  SectionEnter,   ///< MPIX_Section enter callback
  SectionExit,    ///< MPIX_Section leave callback
  CommSync,       ///< split/dup metadata rendezvous
  Pcontrol,       ///< MPI_Pcontrol phase marker
  Finalize,       ///< rank reached MPI_Finalize (always timestamped)
  NbcPost,        ///< nonblocking collective posted (v4)
  NbcComplete,    ///< nonblocking collective wait fence completed (v4)
};

inline constexpr int kEventKindCount =
    static_cast<int>(EventKind::NbcComplete) + 1;

[[nodiscard]] constexpr const char* event_kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::SendPost: return "send";
    case EventKind::SendWait: return "send-wait";
    case EventKind::RecvPost: return "recv-post";
    case EventKind::RecvWait: return "recv";
    case EventKind::Probe: return "probe";
    case EventKind::CollBegin: return "coll-begin";
    case EventKind::CollEnd: return "coll-end";
    case EventKind::SectionEnter: return "section-enter";
    case EventKind::SectionExit: return "section-exit";
    case EventKind::CommSync: return "comm-sync";
    case EventKind::Pcontrol: return "pcontrol";
    case EventKind::Finalize: return "finalize";
    case EventKind::NbcPost: return "nbc-post";
    case EventKind::NbcComplete: return "nbc-complete";
  }
  return "?";
}

/// One recorded event. Fields are reused across kinds (see the per-kind
/// comments); unused fields stay zero and are not encoded.
struct Event {
  EventKind kind = EventKind::SendPost;
  /// True when the rank's clock advanced between the previous event and
  /// this one (app compute, MiniOMP regions, I/O): `t_before` then holds
  /// the recorded absolute clock value just before this event's charges.
  bool has_time = false;
  double t_before = 0.0;
  int comm = 0;  ///< communicator context id
  /// SendPost: destination world rank. RecvPost: matched source world rank
  /// (backpatched at completion; kUnmatched if the receive never
  /// completed). Probe: matched source world rank. CollBegin: root comm
  /// rank or -1. CommSync: member count. Pcontrol: level.
  /// NbcPost: member count (the fence quorum replay stalls on).
  int peer = 0;
  /// RecvPost/Probe: the *posted* source world rank before matching —
  /// mpisim::kAnySource (-1) for a wildcard receive, kNotRecorded for
  /// pre-v3 traces. Offline match-set analysis needs the posted envelope,
  /// not just the matched one, to see which other sends were eligible.
  int post_src = kNotRecorded;
  /// SendPost: user tag. RecvPost/Probe (v3+): the *posted* tag
  /// (mpisim::kAnyTag = -1 for a wildcard tag; 0 in pre-v3 traces).
  int tag = 0;
  std::uint64_t bytes = 0;   ///< SendPost / CollBegin payload size
  /// SendPost/RecvPost/Probe: per-(comm,src,dst) wire sequence number.
  /// RecvWait: backref — how many receive posts ago this rank posted the
  /// matching receive. CommSync: modelled metadata exchange rounds.
  /// NbcPost/NbcComplete: the per-(comm,rank) nonblocking-collective
  /// generation pairing a post with its fence.
  std::uint64_t seq = 0;
  /// SendPost/RecvWait/CollBegin/NbcPost: the CPU-overhead op id (jitter
  /// key; delta-encoded on the wire, absolute here). SendWait: backref —
  /// how many send posts ago this rank started the matching send.
  std::uint64_t op = 0;
  /// SectionEnter/Exit/Pcontrol: interned label id.
  /// CollBegin/NbcPost: MpiCall.
  std::uint32_t label = 0;

  /// Sentinel for RecvPost::peer when the receive never completed.
  static constexpr int kUnmatched = -2;
  /// Sentinel for post_src when the trace predates format v3 and the
  /// posted envelope was not recorded (wildcard analysis unavailable).
  static constexpr int kNotRecorded = -3;
};

}  // namespace mpisect::trace
