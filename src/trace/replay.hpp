// Virtual-time what-if replay of a recorded trace.
//
// The replayer re-executes the recorded communication skeleton without the
// application: compute gaps are re-charged from the recorded clock values
// (optionally rescaled), and every message, collective entry and
// rendezvous is re-costed through a caller-chosen MachineModel using the
// *recorded* RNG keys — so the what-if machine sees the same logical
// jitter draws the original machine did, just with different parameters.
//
// Two clock frames run side by side per rank:
//   t_rec  re-simulates the recorded machine. It reproduces the recorded
//          clock exactly (bit for bit) by induction, which lets gap events
//          restore absolute recorded times and doubles as an integrity
//          check: a recorded timestamp behind t_rec means the trace and
//          its header model disagree.
//   t_cur  runs the what-if machine. When the what-if model equals the
//          recorded one (and compute_scale is 1) the frames stay in
//          lockstep and the replay is bit-identical to the original run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/sections/metrics.hpp"
#include "mpisim/faults/plan.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/progress.hpp"
#include "trace/file.hpp"

namespace mpisect::trace {

struct ReplayOptions {
  /// Multiplier applied to recorded compute gaps (e.g. 0.5 = CPU twice as
  /// fast). 1.0 keeps recorded compute time.
  double compute_scale = 1.0;
  /// Collect per-instance section metrics (Fig. 3 statistics).
  bool collect_metrics = true;
  /// Keep a merged, time-ordered section timeline (chrome export, tests).
  bool timeline = false;
  /// Fault plan re-costed onto the what-if frame: drop/delay/degrade rules
  /// perturb wire costs, slow rules scale compute gaps, stall rules charge
  /// at the first event past their trigger. Messages lost for good (retry
  /// budget exhausted) and kill rules make the recorded skeleton
  /// unsatisfiable and throw TraceError. Empty = no faults.
  mpisim::faults::FaultPlan faults = {};
  /// Seed for the plan's fault draws; 0 = the trace header's recorded
  /// seed, so a replay under the original run's plan re-draws identically.
  std::uint64_t fault_seed = 0;
  /// Progress model for the what-if frame. Unset = the trace header's own
  /// model (no change; pre-v4 traces recorded blocking-only). The caller
  /// must pass a `machine` whose overheads are already folded for this
  /// model — see fold_progress().
  std::optional<mpisim::ProgressModel> progress = std::nullopt;
};

/// Adjust a what-if machine's per-message CPU overheads for a change of
/// progress model: remove the recorded run's opportunistic entry-poll fold
/// (a recorded header machine already carries it) and apply the what-if
/// model's. `machine_is_recorded` says whether `m` came from a trace
/// header (folded for `rec`) or is a pristine preset (unfolded).
[[nodiscard]] mpisim::MachineModel fold_progress(
    mpisim::MachineModel m, const mpisim::ProgressModel& rec,
    const mpisim::ProgressModel& cur, bool machine_is_recorded);

/// Per-(comm, label) section statistics of the replayed timeline.
struct ReplaySectionStat {
  std::string label;
  int comm = 0;
  int ranks = 0;               ///< ranks that entered the section
  std::uint64_t instances = 0; ///< entries summed over ranks
  double total_inclusive = 0.0;  ///< inclusive seconds summed over ranks
  double mean_per_process = 0.0; ///< total_inclusive / ranks
  sections::AggregatedMetrics agg;  ///< Tmin/Tmax span, imbalance, ...
};

/// One section boundary in the merged timeline (sorted by (t, rank)).
struct TimelineEntry {
  double t = 0.0;
  int rank = 0;
  int comm = 0;
  std::uint32_t label = 0;
  bool enter = false;
  int depth = 0;        ///< nesting depth at the boundary
  long instance = 0;    ///< per-rank instance ordinal
};

struct ReplayResult {
  int nranks = 0;
  std::vector<double> final_times;
  double makespan = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t collectives = 0;
  std::uint64_t bytes_sent = 0;
  std::vector<std::string> labels;  ///< copied from the trace
  std::vector<ReplaySectionStat> sections;  ///< sorted by (comm, label)
  /// Per-rank (comm, label) totals in recorded footer order — compared
  /// against the trace footer by verify.
  std::vector<std::vector<SectionTotal>> rank_totals;
  std::vector<TimelineEntry> timeline;  ///< only when options.timeline
};

/// Replay `tf` under `machine`. Throws TraceError on dependency stalls
/// (truncated or internally inconsistent traces) and on integrity-check
/// failures of the recorded-model frame.
[[nodiscard]] ReplayResult replay(const TraceFile& tf,
                                  const mpisim::MachineModel& machine,
                                  const ReplayOptions& options = {});

/// Same-model, scale-1 replay with exact comparison against the recorded
/// footer (per-rank final times and section totals).
struct VerifyResult {
  bool ok = true;
  std::string detail;  ///< first mismatch, empty when ok
};
[[nodiscard]] VerifyResult verify_roundtrip(const TraceFile& tf);

}  // namespace mpisect::trace
