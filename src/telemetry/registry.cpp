#include "telemetry/registry.hpp"

#include <atomic>
#include <stdexcept>

namespace mpisect::telemetry {

namespace {

// Rank cells are single-writer (the owning rank thread) but read live by
// the render thread while ranks run; relaxed atomic_ref makes those reads
// defined without adding synchronization to the hot path (a relaxed
// load/store of an aligned double is a plain move on the targets we care
// about).
inline double cell_load(const double& v) noexcept {
  return std::atomic_ref<const double>(v).load(std::memory_order_relaxed);
}

inline void cell_store(double& v, double x) noexcept {
  std::atomic_ref<double>(v).store(x, std::memory_order_relaxed);
}

}  // namespace

Registry::Registry(int nranks) : nranks_(nranks) {
  if (nranks < 1) throw std::invalid_argument("Registry: nranks must be >= 1");
}

InstrumentId Registry::add_scalar(std::string name, Scope scope, Kind kind,
                                  std::string help, std::string unit) {
  Slot slot;
  slot.desc = {std::move(name), std::move(help), std::move(unit), kind, scope};
  if (scope == Scope::Rank) {
    slot.rank.resize(static_cast<std::size_t>(nranks_));
  } else {
    slot.process = std::make_unique<std::atomic<double>>(0.0);
  }
  const InstrumentId id = slots_.size();
  slots_.push_back(std::move(slot));
  if (scope == Scope::Rank) rank_scalars_.push_back(id);
  return id;
}

InstrumentId Registry::add_counter(std::string name, Scope scope,
                                   std::string help, std::string unit) {
  return add_scalar(std::move(name), scope, Kind::Counter, std::move(help),
                    std::move(unit));
}

InstrumentId Registry::add_gauge(std::string name, Scope scope,
                                 std::string help, std::string unit) {
  return add_scalar(std::move(name), scope, Kind::Gauge, std::move(help),
                    std::move(unit));
}

InstrumentId Registry::add_distribution(std::string name, Scope scope,
                                        double lo, double hi, int bins,
                                        std::string help, std::string unit) {
  Slot slot;
  slot.desc = {std::move(name), std::move(help), std::move(unit),
               Kind::Distribution, scope};
  if (scope == Scope::Rank) {
    slot.rank_hists.reserve(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r) {
      slot.rank_hists.emplace_back(lo, hi, bins);
    }
  } else {
    slot.process_hist = std::make_unique<support::Histogram>(lo, hi, bins);
  }
  const InstrumentId id = slots_.size();
  slots_.push_back(std::move(slot));
  return id;
}

void Registry::inc(InstrumentId id, int rank, double v) noexcept {
  Slot& s = slots_[id];
  if (s.desc.scope == Scope::Rank) {
    double& cell = s.rank[static_cast<std::size_t>(rank)].v;
    cell_store(cell, cell_load(cell) + v);  // single writer: no CAS needed
  } else {
    s.process->fetch_add(v, std::memory_order_relaxed);
  }
}

void Registry::set(InstrumentId id, int rank, double v) noexcept {
  Slot& s = slots_[id];
  if (s.desc.scope == Scope::Rank) {
    cell_store(s.rank[static_cast<std::size_t>(rank)].v, v);
  } else {
    s.process->store(v, std::memory_order_relaxed);
  }
}

void Registry::observe(InstrumentId id, int rank, double x) noexcept {
  Slot& s = slots_[id];
  if (s.desc.scope == Scope::Rank) {
    s.rank_hists[static_cast<std::size_t>(rank)].add(x);
  } else {
    const std::lock_guard lock(process_hist_mu_);
    s.process_hist->add(x);
  }
}

const InstrumentDesc& Registry::desc(InstrumentId id) const {
  return slots_.at(id).desc;
}

std::optional<InstrumentId> Registry::find(std::string_view name) const {
  for (InstrumentId id = 0; id < slots_.size(); ++id) {
    if (slots_[id].desc.name == name) return id;
  }
  return std::nullopt;
}

double Registry::value(InstrumentId id, int rank) const {
  const Slot& s = slots_.at(id);
  if (s.desc.kind == Kind::Distribution) return 0.0;
  if (s.desc.scope == Scope::Rank) {
    return cell_load(s.rank.at(static_cast<std::size_t>(rank)).v);
  }
  return s.process->load(std::memory_order_relaxed);
}

double Registry::total(InstrumentId id) const {
  const Slot& s = slots_.at(id);
  if (s.desc.kind == Kind::Distribution) return 0.0;
  if (s.desc.scope == Scope::Process) {
    return s.process->load(std::memory_order_relaxed);
  }
  double sum = 0.0;
  for (const Cell& c : s.rank) sum += cell_load(c.v);
  return sum;
}

const support::Histogram* Registry::histogram(InstrumentId id,
                                              int rank) const {
  const Slot& s = slots_.at(id);
  if (s.desc.kind != Kind::Distribution) return nullptr;
  if (s.desc.scope == Scope::Rank) {
    return &s.rank_hists.at(static_cast<std::size_t>(rank));
  }
  return s.process_hist.get();
}

void Registry::snapshot_rank(int rank, std::vector<double>& out) const {
  out.resize(rank_scalars_.size());
  for (std::size_t i = 0; i < rank_scalars_.size(); ++i) {
    out[i] = cell_load(
        slots_[rank_scalars_[i]].rank[static_cast<std::size_t>(rank)].v);
  }
}

}  // namespace mpisect::telemetry
