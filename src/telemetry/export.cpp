#include "telemetry/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "support/strings.hpp"

namespace mpisect::telemetry {
namespace {

__attribute__((format(printf, 1, 2))) std::string fmt(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

/// Shortest exact double rendering ("%.17g" round-trips; prefer the
/// shorter "%.15g" when it already does).
std::string num(double v) {
  std::string s = fmt("%.15g", v);
  if (std::strtod(s.c_str(), nullptr) != v) s = fmt("%.17g", v);
  return s;
}

std::string prom_name(std::string_view name) {
  std::string out = "mpisect_";
  for (char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

}  // namespace

std::string timeline_csv(const Timeline& tl, const support::Provenance& p) {
  std::string out = support::provenance_csv_comment(p);
  out += fmt("# dt=%s nranks=%d dropped=%" PRIu64 "\n", num(tl.dt).c_str(),
             tl.nranks, tl.dropped);
  out +=
      "interval,t_start,t_end,section,ranks,total,per_process,max_rank,"
      "min_rank,imbalance,binding,bound\n";
  for (const Window& w : tl.windows) {
    for (const SectionWindow& s : w.sections) {
      out += fmt("%" PRIu64 ",%s,%s,%s,%d,%s,%s,%s,%s,%s,%s,%s\n",
                 w.interval, num(w.t_start).c_str(), num(w.t_end).c_str(),
                 s.label.c_str(), s.ranks, num(s.total).c_str(),
                 num(s.per_process).c_str(), num(s.max_rank).c_str(),
                 num(s.min_rank).c_str(), num(s.imbalance).c_str(),
                 w.binding.c_str(), num(w.bound).c_str());
    }
  }
  return out;
}

std::string timeline_csv(const Timeline& tl) {
  return timeline_csv(tl, support::build_provenance());
}

std::string counters_csv(const Timeline& tl, const support::Provenance& p) {
  std::string out = support::provenance_csv_comment(p);
  out += fmt("# dt=%s nranks=%d\n", num(tl.dt).c_str(), tl.nranks);
  out += "interval,t_start,counter,value\n";
  for (const Window& w : tl.windows) {
    out += fmt("%" PRIu64 ",%s,mpi.seconds,%s\n", w.interval,
               num(w.t_start).c_str(), num(w.mpi_total).c_str());
    for (std::size_t i = 0; i < w.counters.size(); ++i) {
      if (w.counters[i] == 0.0) continue;
      out += fmt("%" PRIu64 ",%s,%s,%s\n", w.interval,
                 num(w.t_start).c_str(), tl.counter_names[i].c_str(),
                 num(w.counters[i]).c_str());
    }
  }
  return out;
}

std::string counters_csv(const Timeline& tl) {
  return counters_csv(tl, support::build_provenance());
}

std::string timeline_json(const Timeline& tl, const support::Provenance& p) {
  std::string out = "{\n  \"provenance\": " + support::provenance_json(p);
  out += fmt(",\n  \"dt\": %s, \"nranks\": %d, \"dropped\": %" PRIu64,
             num(tl.dt).c_str(), tl.nranks, tl.dropped);
  out += ",\n  \"binding\": \"" + support::json_escape(tl.binding) + "\"";
  out += ",\n  \"bound\": " +
         (std::isfinite(tl.bound) ? num(tl.bound) : std::string("null"));
  out += ",\n  \"section_totals\": [";
  for (std::size_t i = 0; i < tl.section_totals.size(); ++i) {
    const auto& t = tl.section_totals[i];
    out += fmt("%s\n    {\"section\": \"%s\", \"total\": %s, "
               "\"per_process\": %s, \"max_window_imbalance\": %s}",
               i ? "," : "", support::json_escape(t.label).c_str(),
               num(t.total).c_str(), num(t.per_process).c_str(),
               num(t.max_window_imbalance).c_str());
  }
  out += "\n  ],\n  \"windows\": [";
  for (std::size_t wi = 0; wi < tl.windows.size(); ++wi) {
    const Window& w = tl.windows[wi];
    out += fmt("%s\n    {\"interval\": %" PRIu64
               ", \"t_start\": %s, \"t_end\": %s, \"mpi\": %s, "
               "\"binding\": \"%s\", \"bound\": %s, \"sections\": [",
               wi ? "," : "", w.interval, num(w.t_start).c_str(),
               num(w.t_end).c_str(), num(w.mpi_total).c_str(),
               support::json_escape(w.binding).c_str(),
               std::isfinite(w.bound) ? num(w.bound).c_str() : "null");
    for (std::size_t si = 0; si < w.sections.size(); ++si) {
      const SectionWindow& s = w.sections[si];
      out += fmt("%s{\"section\": \"%s\", \"ranks\": %d, \"total\": %s, "
                 "\"per_process\": %s, \"max\": %s, \"min\": %s, "
                 "\"imbalance\": %s}",
                 si ? ", " : "", support::json_escape(s.label).c_str(),
                 s.ranks, num(s.total).c_str(), num(s.per_process).c_str(),
                 num(s.max_rank).c_str(), num(s.min_rank).c_str(),
                 num(s.imbalance).c_str());
    }
    out += "], \"counters\": {";
    bool first = true;
    for (std::size_t i = 0; i < w.counters.size(); ++i) {
      if (w.counters[i] == 0.0) continue;
      out += fmt("%s\"%s\": %s", first ? "" : ", ",
                 tl.counter_names[i].c_str(), num(w.counters[i]).c_str());
      first = false;
    }
    out += "}}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string timeline_json(const Timeline& tl) {
  return timeline_json(tl, support::build_provenance());
}

std::string chrome_counters(const Timeline& tl,
                            const support::Provenance& p) {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const char* name, double ts, const std::string& args) {
    out += fmt("%s{\"name\": \"%s\", \"ph\": \"C\", \"ts\": %.3f, "
               "\"pid\": 0, \"args\": {%s}}",
               first ? "" : ",\n", name, ts * 1e6, args.c_str());
    first = false;
  };
  for (const Window& w : tl.windows) {
    for (const SectionWindow& s : w.sections) {
      emit(("section " + s.label).c_str(), w.t_start,
           "\"seconds\": " + num(s.total));
    }
    emit("mpi", w.t_start, "\"seconds\": " + num(w.mpi_total));
    if (std::isfinite(w.bound)) {
      emit("eq6 bound", w.t_start, "\"bound\": " + num(w.bound));
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"provenance\": " +
         support::provenance_json(p) + "}}\n";
  return out;
}

std::string chrome_counters(const Timeline& tl) {
  return chrome_counters(tl, support::build_provenance());
}

std::string prometheus_text(const Registry& reg,
                            const mpisim::ExecStats* sched,
                            const support::Provenance& p) {
  std::string out = support::provenance_csv_comment(p);
  for (InstrumentId id = 0; id < reg.size(); ++id) {
    const InstrumentDesc& d = reg.desc(id);
    const std::string name = prom_name(d.name);
    out += "# HELP " + name + " " + d.help;
    if (!d.unit.empty()) out += " (" + d.unit + ")";
    out += "\n# TYPE " + name + " ";
    switch (d.kind) {
      case Kind::Counter: out += "counter\n"; break;
      case Kind::Gauge: out += "gauge\n"; break;
      case Kind::Distribution: out += "histogram\n"; break;
    }
    if (d.kind == Kind::Distribution) {
      const support::Histogram* h =
          reg.histogram(id, d.scope == Scope::Rank ? 0 : -1);
      if (d.scope == Scope::Rank) {
        // Merge rank histograms bin-wise (identical layout by creation).
        for (int b = 0, n = h->bins(); b < n; ++b) {
          long cum = 0;
          for (int r = 0; r < reg.nranks(); ++r) {
            const support::Histogram* hr = reg.histogram(id, r);
            for (int bb = 0; bb <= b; ++bb) cum += hr->bin_count(bb);
          }
          out += fmt("%s_bucket{le=\"%s\"} %ld\n", name.c_str(),
                     num(h->bin_hi(b)).c_str(), cum);
        }
        long count = 0;
        for (int r = 0; r < reg.nranks(); ++r) {
          count += reg.histogram(id, r)->count();
        }
        out += fmt("%s_count %ld\n", name.c_str(), count);
      } else {
        long cum = 0;
        for (int b = 0, n = h->bins(); b < n; ++b) {
          cum += h->bin_count(b);
          out += fmt("%s_bucket{le=\"%s\"} %ld\n", name.c_str(),
                     num(h->bin_hi(b)).c_str(), cum);
        }
        out += fmt("%s_count %ld\n", name.c_str(), h->count());
      }
      continue;
    }
    if (d.scope == Scope::Rank) {
      for (int r = 0; r < reg.nranks(); ++r) {
        out += fmt("%s{rank=\"%d\"} %s\n", name.c_str(), r,
                   num(reg.value(id, r)).c_str());
      }
    }
    out += name + " " + num(reg.total(id)) + "\n";
  }
  if (sched != nullptr) {
    out += "# HELP mpisect_sched_parks rank park operations (wall-clock "
           "scheduling, non-deterministic)\n# TYPE mpisect_sched_parks "
           "counter\n";
    out += fmt("mpisect_sched_parks %" PRIu64 "\n",
               sched->parks.load(std::memory_order_relaxed));
    out += "# TYPE mpisect_sched_wakes counter\n";
    out += fmt("mpisect_sched_wakes %" PRIu64 "\n",
               sched->wakes.load(std::memory_order_relaxed));
    out += "# TYPE mpisect_sched_switches counter\n";
    out += fmt("mpisect_sched_switches %" PRIu64 "\n",
               sched->switches.load(std::memory_order_relaxed));
    out += "# TYPE mpisect_sched_max_ready gauge\n";
    out += fmt("mpisect_sched_max_ready %" PRIu64 "\n",
               sched->max_ready.load(std::memory_order_relaxed));
    const std::uint64_t depth_samples =
        sched->ready_depth_samples.load(std::memory_order_relaxed);
    out += "# TYPE mpisect_sched_ready_depth_mean gauge\n";
    out += fmt("mpisect_sched_ready_depth_mean %.3f\n",
               depth_samples == 0
                   ? 0.0
                   : static_cast<double>(sched->ready_depth_sum.load(
                         std::memory_order_relaxed)) /
                         static_cast<double>(depth_samples));
    const std::uint64_t lat_samples =
        sched->switch_latency_samples.load(std::memory_order_relaxed);
    out += "# TYPE mpisect_sched_switch_latency_mean_ns gauge\n";
    out += fmt("mpisect_sched_switch_latency_mean_ns %.1f\n",
               lat_samples == 0
                   ? 0.0
                   : static_cast<double>(sched->switch_latency_ns.load(
                         std::memory_order_relaxed)) /
                         static_cast<double>(lat_samples));
    out += "# TYPE mpisect_sched_busy_ns counter\n";
    out += fmt("mpisect_sched_busy_ns %" PRIu64 "\n",
               sched->busy_ns.load(std::memory_order_relaxed));
    out += "# TYPE mpisect_sched_idle_ns counter\n";
    out += fmt("mpisect_sched_idle_ns %" PRIu64 "\n",
               sched->idle_ns.load(std::memory_order_relaxed));
    out += "# TYPE mpisect_sched_stack_bytes gauge\n";
    out += fmt("mpisect_sched_stack_bytes %" PRIu64 "\n",
               sched->stack_bytes.load(std::memory_order_relaxed));
  }
  return out;
}

std::string prometheus_text(const Registry& reg,
                            const mpisim::ExecStats* sched) {
  return prometheus_text(reg, sched, support::build_provenance());
}

Timeline timeline_from_csv(std::string_view csv) {
  Timeline tl;
  bool saw_header = false;
  std::map<std::uint64_t, Window> windows;
  for (std::string_view line : support::split(csv, '\n')) {
    line = support::trim(line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Recover the meta comment: "# dt=<v> nranks=<d> dropped=<u>".
      const auto fields = support::split(line.substr(1), ' ');
      for (const std::string& f : fields) {
        if (support::starts_with(f, "dt=")) {
          tl.dt = std::strtod(f.c_str() + 3, nullptr);
        } else if (support::starts_with(f, "nranks=")) {
          tl.nranks = static_cast<int>(std::strtol(f.c_str() + 7, nullptr, 10));
        } else if (support::starts_with(f, "dropped=")) {
          tl.dropped = std::strtoull(f.c_str() + 8, nullptr, 10);
        }
      }
      continue;
    }
    if (!saw_header) {
      if (!support::starts_with(line, "interval,")) {
        throw std::runtime_error(
            "timeline_from_csv: expected 'interval,...' header, got '" +
            std::string(line.substr(0, 40)) + "'");
      }
      saw_header = true;
      continue;
    }
    const auto cols = support::split(line, ',');
    if (cols.size() != 12) {
      throw std::runtime_error("timeline_from_csv: expected 12 columns, got " +
                               std::to_string(cols.size()));
    }
    const auto interval = std::strtoull(cols[0].c_str(), nullptr, 10);
    Window& w = windows[interval];
    w.interval = interval;
    w.t_start = std::strtod(cols[1].c_str(), nullptr);
    w.t_end = std::strtod(cols[2].c_str(), nullptr);
    SectionWindow s;
    s.label = cols[3];
    s.ranks = static_cast<int>(std::strtol(cols[4].c_str(), nullptr, 10));
    s.total = std::strtod(cols[5].c_str(), nullptr);
    s.per_process = std::strtod(cols[6].c_str(), nullptr);
    s.max_rank = std::strtod(cols[7].c_str(), nullptr);
    s.min_rank = std::strtod(cols[8].c_str(), nullptr);
    s.imbalance = std::strtod(cols[9].c_str(), nullptr);
    w.busy_total += s.total;
    w.sections.push_back(std::move(s));
    w.binding = cols[10];
    w.bound = std::strtod(cols[11].c_str(), nullptr);
  }
  if (!saw_header) {
    throw std::runtime_error("timeline_from_csv: no header found");
  }

  std::map<std::string, Timeline::SectionTotal> totals;
  double busy_sum = 0.0;
  double max_per_process = 0.0;
  for (auto& [interval, w] : windows) {
    (void)interval;
    for (const SectionWindow& s : w.sections) {
      auto& tot = totals[s.label];
      tot.label = s.label;
      tot.total += s.total;
      tot.per_process += s.per_process;
      tot.max_window_imbalance =
          std::max(tot.max_window_imbalance, s.imbalance);
    }
    busy_sum += w.busy_total;
    tl.windows.push_back(std::move(w));
  }
  for (auto& [label, tot] : totals) {
    // "MPI_MAIN" stays excluded from attribution, matching build defaults.
    if (label != "MPI_MAIN" && tot.per_process > max_per_process) {
      max_per_process = tot.per_process;
      tl.binding = label;
    }
    tl.section_totals.push_back(std::move(tot));
  }
  if (!tl.binding.empty() && max_per_process > 0.0) {
    tl.bound = busy_sum / max_per_process;
  }
  return tl;
}

}  // namespace mpisect::telemetry
