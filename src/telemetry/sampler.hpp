// Virtual-time interval sampler — the fourth chained PMPI-style tool.
//
// TelemetrySampler attaches to a World exactly like the profiler, checker
// and trace recorder: it registers with the world's hooks::ToolStack, so
// the tools stack in any order without hand-rolled chaining.
// It divides the virtual timeline into fixed Δt intervals and, per rank,
// accumulates into the current interval:
//   * busy seconds per section (top-of-stack attribution — exclusive
//     slices, so nested sections never double-count);
//   * seconds spent inside MPI calls;
//   * deltas of every Rank-scope registry scalar (messages, bytes,
//     eager/rendezvous split, collective entries, MiniOMP charges, ...).
//
// There is no timer: virtual time only advances at modelled charges, so
// interval boundaries are detected at hook/tap events — "while the next
// boundary is <= now, flush the window". Compute stretches between events
// are split across the windows they span when the next event arrives.
// Samples land in per-rank ring buffers (oldest evicted beyond capacity,
// eviction counted).
//
// Zero perturbation by construction: handlers never charge virtual time,
// never draw RNG, never block. Installing the sampler leaves final virtual
// times, profiler aggregates and recorded .mpst bytes bit-identical.
// Because every sampled input is a pure function of per-rank program
// order, exported time series are themselves bit-identical across
// scheduler backends and worker counts (the telemetry determinism tests
// compare bytes).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/sections/labels.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/toolstack.hpp"
#include "telemetry/registry.hpp"

namespace mpisect::telemetry {

/// Ids of the built-in instruments (all Scope::Rank unless noted).
struct StandardInstruments {
  InstrumentId msgs_sent = 0;
  InstrumentId bytes_sent = 0;
  InstrumentId msgs_eager = 0;        ///< bytes <= net.eager_threshold
  InstrumentId msgs_rendezvous = 0;
  InstrumentId recvs_posted = 0;
  InstrumentId msgs_received = 0;
  InstrumentId bytes_received = 0;
  InstrumentId probes = 0;
  InstrumentId coll_entries = 0;
  InstrumentId nbc_posted = 0;     ///< nonblocking collectives posted
  InstrumentId nbc_completed = 0;  ///< nonblocking collective fences done
  /// MPI_Test polls. Process scope: poll counts depend on scheduling
  /// (yield interleaving), so a per-rank series would break cross-backend
  /// byte determinism of the exported CSV.
  InstrumentId test_calls = 0;
  InstrumentId mpi_calls = 0;
  InstrumentId section_enters = 0;
  InstrumentId omp_regions = 0;
  InstrumentId omp_compute_s = 0;
  InstrumentId omp_imbalance_s = 0;
  InstrumentId omp_overhead_s = 0;
  /// Fault-injection counters (Scope::Rank: TapFault events fire on the
  /// owning rank in program order, so these are deterministic).
  InstrumentId fault_drops = 0;           ///< dropped wire attempts
  InstrumentId fault_lost = 0;            ///< messages lost for good
  InstrumentId fault_duplicates = 0;      ///< duplicate deliveries
  InstrumentId fault_retransmit_s = 0;    ///< retransmit delay charged
  InstrumentId fault_stalls = 0;          ///< stall events taken
  InstrumentId fault_stall_s = 0;         ///< stall seconds charged
  InstrumentId fault_kills = 0;           ///< rank kills fired
  /// Process scope: channel backlog observed at deposit/post time —
  /// wall-clock-order dependent, Prometheus/live view only.
  InstrumentId send_queue_depth = 0;
  InstrumentId recv_queue_depth = 0;
};

struct SamplerOptions {
  /// Interval width in virtual seconds. <= 0 disables window sampling
  /// (the registry still counts). The default trades resolution against
  /// overhead: ~hundreds of windows for the repo's benchmark makespans.
  double dt = 0.05;
  /// Per-rank ring capacity in samples; oldest evicted beyond it.
  std::size_t ring_capacity = 1 << 16;
  /// Attribution depth: 0 = top-of-stack (exclusive leaf slices); k > 0 =
  /// truncate attribution at stack depth k (flame-graph style), so busy
  /// time rolls up into the depth-k ancestor. MPI_MAIN sits at depth 0,
  /// so 2 reproduces the paper's phase view of Lulesh (LagrangeNodal /
  /// LagrangeElements under LagrangeLeapFrog). Either way every instant
  /// lands in exactly one section — Eq. 6's numerator stays a partition.
  int phase_depth = 0;
  /// Register the StandardInstruments set and wire the mpisim/minomp
  /// hooks that feed it.
  bool standard_instruments = true;
};

class TelemetrySampler : public mpisim::Extension,
                         public mpisim::hooks::Tool {
 public:
  /// Install (or return the already-installed sampler of) `world`.
  static std::shared_ptr<TelemetrySampler> install(mpisim::World& world,
                                                   SamplerOptions options = {});
  TelemetrySampler(mpisim::World& world, SamplerOptions options);
  ~TelemetrySampler() override;

  /// Unregister from the world's ToolStack. Idempotent.
  void detach();

  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const Registry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const StandardInstruments& instruments() const noexcept {
    return std_;
  }
  [[nodiscard]] double dt() const noexcept { return options_.dt; }
  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] const sections::LabelRegistry& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] mpisim::World& world() noexcept { return *world_; }

  /// One flushed interval of one rank. `sections` maps interned label ->
  /// busy seconds, sorted by label id (ids are interning-order; exporters
  /// must key by *name* for cross-run stability).
  struct Sample {
    std::uint64_t interval = 0;  ///< window [interval*dt, (interval+1)*dt)
    std::vector<std::pair<sections::LabelId, double>> sections;
    double mpi_seconds = 0.0;
    /// Delta of each registry rank_scalars() instrument over this window.
    std::vector<double> deltas;
  };

  /// Snapshot of one rank's ring (copy, lock held briefly — safe while the
  /// simulation is running; this is what the live view polls).
  [[nodiscard]] std::vector<Sample> samples(int rank) const;
  /// Samples evicted from `rank`'s ring so far.
  [[nodiscard]] std::uint64_t dropped(int rank) const;

  // Extension lifecycle (rank threads).
  void on_rank_init(mpisim::Ctx& ctx) override;
  void on_rank_finalize(mpisim::Ctx& ctx) override;

  // Tool interface (invoked by the world's ToolStack).
  void on_call_begin(mpisim::Ctx& ctx, const mpisim::CallInfo& info) override;
  void on_call_end(mpisim::Ctx& ctx, const mpisim::CallInfo& info) override;
  void on_section_enter(mpisim::Ctx& ctx, mpisim::Comm& comm,
                        const char* label, char* data) override;
  void on_section_leave(mpisim::Ctx& ctx, mpisim::Comm& comm,
                        const char* label, char* data) override;
  void on_send_post(mpisim::Ctx& ctx, const mpisim::TapSend& tap) override;
  void on_recv_post(mpisim::Ctx& ctx, const mpisim::TapRecvPost& tap) override;
  void on_recv_wait(mpisim::Ctx& ctx, const mpisim::TapRecvWait& tap) override;
  void on_probe(mpisim::Ctx& ctx, const mpisim::TapProbe& tap) override;
  void on_coll_entry(mpisim::Ctx& ctx, std::uint64_t op,
                     double t_before) override;
  void on_request_test(mpisim::Ctx& ctx,
                       const mpisim::TapRequestTest& tap) override;
  void on_nbc_post(mpisim::Ctx& ctx, const mpisim::TapNbcPost& tap) override;
  void on_nbc_complete(mpisim::Ctx& ctx,
                       const mpisim::TapNbcComplete& tap) override;
  void on_omp_region(mpisim::Ctx& ctx, const mpisim::TapOmpRegion& r) override;
  void on_fault(mpisim::Ctx& ctx, const mpisim::TapFault& f) override;

 private:
  struct RankState {
    double t_last = 0.0;
    std::uint64_t window = 0;
    bool active = false;
    std::vector<sections::LabelId> stack;
    int call_depth = 0;
    /// Current window's busy seconds, indexed by LabelId (flat: the hot
    /// path runs once per hook event, a map lookup there dominates the
    /// sampler's overhead). `touched` lists the nonzero ids.
    std::vector<double> busy;
    std::vector<sections::LabelId> touched;
    /// Interning takes the LabelRegistry mutex; section labels are almost
    /// always string literals, so a tiny pointer-keyed cache short-cuts
    /// the common case (same pointer => same id; misses just re-intern).
    std::vector<std::pair<const char*, sections::LabelId>> label_cache;
    double mpi_seconds = 0.0;
    std::vector<double> last_snapshot;
    std::vector<double> scratch;
    std::uint64_t dropped = 0;
    std::deque<Sample> ring;
    mutable std::mutex mu;  ///< guards ring + dropped only
  };

  [[nodiscard]] RankState& state(const mpisim::Ctx& ctx) {
    return *ranks_[static_cast<std::size_t>(ctx.rank())];
  }
  /// Attribute elapsed time up to `t`, flushing every crossed boundary.
  void advance(RankState& rs, int rank, double t);
  void attribute(RankState& rs, double d);
  void flush_window(RankState& rs, int rank);
  [[nodiscard]] sections::LabelId intern_cached(RankState& rs,
                                                const char* label);

  mpisim::World* world_;
  SamplerOptions options_;
  Registry registry_;
  StandardInstruments std_;
  sections::LabelRegistry labels_;
  std::size_t eager_threshold_ = 0;
  bool attached_ = false;
  std::vector<std::unique_ptr<RankState>> ranks_;
};

}  // namespace mpisect::telemetry
