#include "telemetry/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "mpisim/comm.hpp"
#include "support/log.hpp"

namespace mpisect::telemetry {

std::shared_ptr<TelemetrySampler> TelemetrySampler::install(
    mpisim::World& world, SamplerOptions options) {
  if (auto existing = world.find_extension<TelemetrySampler>()) {
    return existing;
  }
  auto self = std::make_shared<TelemetrySampler>(world, options);
  world.attach_extension(self);
  return self;
}

TelemetrySampler::TelemetrySampler(mpisim::World& world,
                                   SamplerOptions options)
    : world_(&world),
      options_(options),
      registry_(world.size()),
      eager_threshold_(world.machine().net.eager_threshold) {
  ranks_.reserve(static_cast<std::size_t>(world.size()));
  for (int r = 0; r < world.size(); ++r) {
    ranks_.push_back(std::make_unique<RankState>());
  }
  if (options_.standard_instruments) {
    const Scope R = Scope::Rank;
    std_.msgs_sent = registry_.add_counter("mpi.msgs_sent", R,
                                           "point-to-point and collective-"
                                           "internal messages deposited",
                                           "messages");
    std_.bytes_sent =
        registry_.add_counter("mpi.bytes_sent", R, "payload bytes deposited",
                              "bytes");
    std_.msgs_eager = registry_.add_counter(
        "mpi.msgs_eager", R, "messages at or under the eager threshold",
        "messages");
    std_.msgs_rendezvous = registry_.add_counter(
        "mpi.msgs_rendezvous", R, "messages over the eager threshold",
        "messages");
    std_.recvs_posted = registry_.add_counter("mpi.recvs_posted", R,
                                              "receives posted", "messages");
    std_.msgs_received = registry_.add_counter(
        "mpi.msgs_received", R, "receives completed", "messages");
    std_.bytes_received = registry_.add_counter(
        "mpi.bytes_received", R, "payload bytes received", "bytes");
    std_.probes =
        registry_.add_counter("mpi.probes", R, "probes that matched", "calls");
    std_.coll_entries = registry_.add_counter(
        "mpi.coll_entries", R, "collective entry overheads charged", "calls");
    std_.nbc_posted = registry_.add_counter(
        "progress.nbc_posted", R, "nonblocking collectives posted", "calls");
    std_.nbc_completed = registry_.add_counter(
        "progress.nbc_completed", R, "nonblocking collective fences completed",
        "calls");
    std_.test_calls = registry_.add_counter(
        "progress.test_calls", Scope::Process,
        "MPI_Test polls (scheduling-dependent, hence process scope)",
        "calls");
    std_.mpi_calls = registry_.add_counter(
        "mpi.calls", R, "intercepted MPI entry points", "calls");
    std_.section_enters = registry_.add_counter(
        "sections.enters", R, "MPIX_Section entries", "sections");
    std_.omp_regions = registry_.add_counter(
        "omp.regions", R, "MiniOMP worksharing regions charged", "regions");
    std_.omp_compute_s = registry_.add_counter(
        "omp.compute_seconds", R, "parallel compute charged", "seconds");
    std_.omp_imbalance_s = registry_.add_counter(
        "omp.imbalance_seconds", R, "schedule imbalance charged", "seconds");
    std_.omp_overhead_s = registry_.add_counter(
        "omp.overhead_seconds", R, "fork/join overhead charged", "seconds");
    std_.fault_drops = registry_.add_counter(
        "faults.drops", R, "injected wire-attempt drops (retransmitted)",
        "messages");
    std_.fault_lost = registry_.add_counter(
        "faults.lost", R, "messages lost after retransmit budget exhausted",
        "messages");
    std_.fault_duplicates = registry_.add_counter(
        "faults.duplicates", R, "duplicate deliveries injected", "messages");
    std_.fault_retransmit_s = registry_.add_counter(
        "faults.retransmit_seconds", R, "retransmit delay charged to wires",
        "seconds");
    std_.fault_stalls = registry_.add_counter(
        "faults.stalls", R, "rank stall events taken", "events");
    std_.fault_stall_s = registry_.add_counter(
        "faults.stall_seconds", R, "stall seconds charged", "seconds");
    std_.fault_kills = registry_.add_counter(
        "faults.kills", R, "rank kills fired by the fault plan", "events");
    std_.send_queue_depth = registry_.add_distribution(
        "channel.send_queue_depth", Scope::Process, 0.0, 64.0, 16,
        "unmatched messages in the destination channel after a deposit",
        "messages");
    std_.recv_queue_depth = registry_.add_distribution(
        "channel.recv_queue_depth", Scope::Process, 0.0, 64.0, 16,
        "unmatched posted receives after a post", "messages");
  }
  world.tool_stack().attach(this, mpisim::hooks::kOrderTelemetry);
  attached_ = true;
  MPISECT_LOG_DEBUG("telemetry: sampler installed, dt=%g ring=%zu",
                    options_.dt, options_.ring_capacity);
}

TelemetrySampler::~TelemetrySampler() { detach(); }

void TelemetrySampler::detach() {
  if (!attached_) return;
  world_->tool_stack().detach(this);
  attached_ = false;
}

void TelemetrySampler::on_section_enter(mpisim::Ctx& ctx,
                                        mpisim::Comm& /*comm*/,
                                        const char* label, char* /*data*/) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  rs.stack.push_back(intern_cached(rs, label));
  registry_.inc(std_.section_enters, ctx.rank());
}

void TelemetrySampler::on_section_leave(mpisim::Ctx& ctx,
                                        mpisim::Comm& /*comm*/,
                                        const char* /*label*/,
                                        char* /*data*/) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  if (!rs.stack.empty()) rs.stack.pop_back();
}

void TelemetrySampler::on_call_begin(mpisim::Ctx& ctx,
                                     const mpisim::CallInfo& info) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), info.t_virtual);
  ++rs.call_depth;
  registry_.inc(std_.mpi_calls, ctx.rank());
}

void TelemetrySampler::on_call_end(mpisim::Ctx& ctx,
                                   const mpisim::CallInfo& info) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), info.t_virtual);
  if (rs.call_depth > 0) --rs.call_depth;
}

void TelemetrySampler::on_send_post(mpisim::Ctx& ctx,
                                    const mpisim::TapSend& tap) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  registry_.inc(std_.msgs_sent, ctx.rank());
  registry_.inc(std_.bytes_sent, ctx.rank(), static_cast<double>(tap.bytes));
  registry_.inc(tap.bytes > eager_threshold_ ? std_.msgs_rendezvous
                                             : std_.msgs_eager,
                ctx.rank());
  registry_.observe(std_.send_queue_depth, -1,
                    static_cast<double>(tap.queue_depth));
}

void TelemetrySampler::on_recv_post(mpisim::Ctx& ctx,
                                    const mpisim::TapRecvPost& tap) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  registry_.inc(std_.recvs_posted, ctx.rank());
  registry_.observe(std_.recv_queue_depth, -1,
                    static_cast<double>(tap.queue_depth));
}

void TelemetrySampler::on_recv_wait(mpisim::Ctx& ctx,
                                    const mpisim::TapRecvWait& tap) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  registry_.inc(std_.msgs_received, ctx.rank());
  registry_.inc(std_.bytes_received, ctx.rank(),
                static_cast<double>(tap.bytes));
}

void TelemetrySampler::on_probe(mpisim::Ctx& ctx,
                                const mpisim::TapProbe& /*tap*/) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  registry_.inc(std_.probes, ctx.rank());
}

void TelemetrySampler::on_coll_entry(mpisim::Ctx& ctx, std::uint64_t /*op*/,
                                     double /*t_before*/) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  registry_.inc(std_.coll_entries, ctx.rank());
}

void TelemetrySampler::on_request_test(mpisim::Ctx& ctx,
                                       const mpisim::TapRequestTest& /*tap*/) {
  // No advance(): poll counts are scheduling-dependent, so this counter is
  // process-scoped and must stay out of the per-rank window series.
  registry_.inc(std_.test_calls, ctx.rank());
}

void TelemetrySampler::on_nbc_post(mpisim::Ctx& ctx,
                                   const mpisim::TapNbcPost& /*tap*/) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  registry_.inc(std_.nbc_posted, ctx.rank());
}

void TelemetrySampler::on_nbc_complete(mpisim::Ctx& ctx,
                                       const mpisim::TapNbcComplete& /*tap*/) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  registry_.inc(std_.nbc_completed, ctx.rank());
}

void TelemetrySampler::on_omp_region(mpisim::Ctx& ctx,
                                     const mpisim::TapOmpRegion& r) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  registry_.inc(std_.omp_regions, ctx.rank());
  registry_.inc(std_.omp_compute_s, ctx.rank(), r.compute);
  registry_.inc(std_.omp_imbalance_s, ctx.rank(), r.imbalance);
  registry_.inc(std_.omp_overhead_s, ctx.rank(), r.overhead);
}

void TelemetrySampler::on_fault(mpisim::Ctx& ctx, const mpisim::TapFault& f) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  switch (f.kind) {
    case mpisim::FaultKind::Drop:
      registry_.inc(std_.fault_drops, ctx.rank(),
                    static_cast<double>(f.attempts - 1));
      registry_.inc(std_.fault_retransmit_s, ctx.rank(), f.seconds);
      break;
    case mpisim::FaultKind::Loss:
      registry_.inc(std_.fault_lost, ctx.rank());
      registry_.inc(std_.fault_drops, ctx.rank(),
                    static_cast<double>(f.attempts - 1));
      registry_.inc(std_.fault_retransmit_s, ctx.rank(), f.seconds);
      break;
    case mpisim::FaultKind::Duplicate:
      registry_.inc(std_.fault_duplicates, ctx.rank());
      break;
    case mpisim::FaultKind::Stall:
      registry_.inc(std_.fault_stalls, ctx.rank());
      registry_.inc(std_.fault_stall_s, ctx.rank(), f.seconds);
      break;
    case mpisim::FaultKind::Kill:
      registry_.inc(std_.fault_kills, ctx.rank());
      break;
  }
}

sections::LabelId TelemetrySampler::intern_cached(RankState& rs,
                                                  const char* label) {
  for (const auto& [ptr, id] : rs.label_cache) {
    if (ptr == label) return id;
  }
  const sections::LabelId id = labels_.intern(label);
  if (rs.label_cache.size() < 16) rs.label_cache.emplace_back(label, id);
  return id;
}

void TelemetrySampler::attribute(RankState& rs, double d) {
  if (d <= 0.0) return;
  if (!rs.stack.empty()) {
    std::size_t idx = rs.stack.size() - 1;
    if (options_.phase_depth > 0) {
      idx = std::min(idx, static_cast<std::size_t>(options_.phase_depth));
    }
    const sections::LabelId id = rs.stack[idx];
    if (id >= rs.busy.size()) rs.busy.resize(id + 1, 0.0);
    if (rs.busy[id] == 0.0) rs.touched.push_back(id);
    rs.busy[id] += d;
  }
  if (rs.call_depth > 0) rs.mpi_seconds += d;
}

void TelemetrySampler::flush_window(RankState& rs, int rank) {
  Sample s;
  s.interval = rs.window;
  std::sort(rs.touched.begin(), rs.touched.end());
  s.sections.reserve(rs.touched.size());
  for (const sections::LabelId id : rs.touched) {
    s.sections.emplace_back(id, rs.busy[id]);
    rs.busy[id] = 0.0;
  }
  rs.touched.clear();
  s.mpi_seconds = rs.mpi_seconds;
  registry_.snapshot_rank(rank, rs.scratch);
  s.deltas.resize(rs.scratch.size());
  for (std::size_t i = 0; i < rs.scratch.size(); ++i) {
    s.deltas[i] = rs.scratch[i] - rs.last_snapshot[i];
  }
  rs.last_snapshot = rs.scratch;
  rs.mpi_seconds = 0.0;

  const std::lock_guard lock(rs.mu);
  rs.ring.push_back(std::move(s));
  if (rs.ring.size() > options_.ring_capacity) {
    rs.ring.pop_front();
    ++rs.dropped;
  }
}

void TelemetrySampler::advance(RankState& rs, int rank, double t) {
  if (!rs.active) return;
  if (t < rs.t_last) t = rs.t_last;  // defensive: clocks are monotone
  const double dt = options_.dt;
  if (dt <= 0.0) {
    rs.t_last = t;
    return;
  }
  while (true) {
    const double wend = static_cast<double>(rs.window + 1) * dt;
    if (t < wend) break;
    attribute(rs, wend - rs.t_last);
    rs.t_last = wend;
    flush_window(rs, rank);
    ++rs.window;
  }
  attribute(rs, t - rs.t_last);
  rs.t_last = t;
}

void TelemetrySampler::on_rank_init(mpisim::Ctx& ctx) {
  RankState& rs = state(ctx);
  rs.t_last = ctx.now();
  rs.window =
      options_.dt > 0.0
          ? static_cast<std::uint64_t>(std::floor(rs.t_last / options_.dt))
          : 0;
  rs.stack.clear();
  rs.call_depth = 0;
  rs.busy.clear();
  rs.touched.clear();
  rs.mpi_seconds = 0.0;
  registry_.snapshot_rank(ctx.rank(), rs.last_snapshot);
  {
    const std::lock_guard lock(rs.mu);
    rs.ring.clear();
    rs.dropped = 0;
  }
  rs.active = true;
}

void TelemetrySampler::on_rank_finalize(mpisim::Ctx& ctx) {
  RankState& rs = state(ctx);
  advance(rs, ctx.rank(), ctx.now());
  // Flush the trailing partial window so the series covers the whole run.
  if (options_.dt > 0.0) flush_window(rs, ctx.rank());
  rs.active = false;
}

std::vector<TelemetrySampler::Sample> TelemetrySampler::samples(
    int rank) const {
  const RankState& rs = *ranks_.at(static_cast<std::size_t>(rank));
  const std::lock_guard lock(rs.mu);
  return {rs.ring.begin(), rs.ring.end()};
}

std::uint64_t TelemetrySampler::dropped(int rank) const {
  const RankState& rs = *ranks_.at(static_cast<std::size_t>(rank));
  const std::lock_guard lock(rs.mu);
  return rs.dropped;
}

}  // namespace mpisect::telemetry
