#include "telemetry/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/speedup/partial_bound.hpp"

namespace mpisect::telemetry {
namespace {

bool excluded(const TimelineOptions& options, const std::string& label) {
  return std::find(options.exclude.begin(), options.exclude.end(), label) !=
         options.exclude.end();
}

/// Builder state: window -> section name -> per-rank busy seconds.
struct WindowAccum {
  std::map<std::string, std::map<int, double>> sections;
  double mpi_total = 0.0;
  std::vector<double> counters;
};

Timeline reduce(std::map<std::uint64_t, WindowAccum>& accum, double dt,
                int nranks, std::vector<std::string> counter_names,
                std::uint64_t dropped, const TimelineOptions& options) {
  Timeline tl;
  tl.dt = dt;
  tl.nranks = nranks;
  tl.counter_names = std::move(counter_names);
  tl.dropped = dropped;

  std::map<std::string, Timeline::SectionTotal> totals;
  for (auto& [interval, wa] : accum) {
    Window w;
    w.interval = interval;
    w.t_start = static_cast<double>(interval) * dt;
    w.t_end = w.t_start + dt;
    w.mpi_total = wa.mpi_total;
    w.counters = std::move(wa.counters);
    w.counters.resize(tl.counter_names.size(), 0.0);

    for (auto& [label, per_rank] : wa.sections) {
      SectionWindow sw;
      sw.label = label;
      sw.min_rank = std::numeric_limits<double>::infinity();
      for (const auto& [rank, seconds] : per_rank) {
        (void)rank;
        if (seconds <= 0.0) continue;
        ++sw.ranks;
        sw.total += seconds;
        sw.max_rank = std::max(sw.max_rank, seconds);
        sw.min_rank = std::min(sw.min_rank, seconds);
      }
      if (sw.ranks == 0) continue;
      sw.per_process = sw.total / nranks;
      sw.imbalance = sw.max_rank - sw.per_process;
      w.busy_total += sw.total;
      w.sections.push_back(std::move(sw));
    }
    bool counters_active = false;
    for (double c : w.counters) counters_active |= c != 0.0;
    if (w.sections.empty() && w.mpi_total <= 0.0 && !counters_active &&
        !options.keep_empty) {
      continue;
    }

    // Eq. 6, windowed: binding section = argmax mean-per-process time.
    double max_per_process = 0.0;
    for (const SectionWindow& sw : w.sections) {
      auto& tot = totals[sw.label];
      tot.label = sw.label;
      tot.total += sw.total;
      tot.per_process += sw.per_process;
      tot.max_window_imbalance =
          std::max(tot.max_window_imbalance, sw.imbalance);
      if (excluded(options, sw.label)) continue;
      if (sw.per_process > max_per_process) {
        max_per_process = sw.per_process;
        w.binding = sw.label;
      }
    }
    if (!w.binding.empty()) {
      w.bound = speedup::partial_bound(w.busy_total, max_per_process);
    }
    tl.windows.push_back(std::move(w));
  }

  double busy_sum = 0.0;
  double max_per_process = 0.0;
  for (auto& [label, tot] : totals) {
    busy_sum += tot.total;
    if (!excluded(options, label) && tot.per_process > max_per_process) {
      max_per_process = tot.per_process;
      tl.binding = label;
    }
    tl.section_totals.push_back(std::move(tot));
  }
  if (!tl.binding.empty()) {
    tl.bound = speedup::partial_bound(busy_sum, max_per_process);
  }
  return tl;
}

}  // namespace

Timeline build_timeline(const TelemetrySampler& sampler,
                        const TimelineOptions& options) {
  const Registry& reg = sampler.registry();
  std::vector<std::string> counter_names;
  counter_names.reserve(reg.rank_scalars().size());
  for (InstrumentId id : reg.rank_scalars()) {
    counter_names.push_back(reg.desc(id).name);
  }

  std::map<std::uint64_t, WindowAccum> accum;
  std::uint64_t dropped = 0;
  for (int rank = 0; rank < sampler.nranks(); ++rank) {
    dropped += sampler.dropped(rank);
    for (const TelemetrySampler::Sample& s : sampler.samples(rank)) {
      WindowAccum& wa = accum[s.interval];
      for (const auto& [label, seconds] : s.sections) {
        wa.sections[sampler.labels().name(label)][rank] += seconds;
      }
      wa.mpi_total += s.mpi_seconds;
      wa.counters.resize(counter_names.size(), 0.0);
      for (std::size_t i = 0; i < s.deltas.size() && i < wa.counters.size();
           ++i) {
        wa.counters[i] += s.deltas[i];
      }
    }
  }
  return reduce(accum, sampler.dt(), sampler.nranks(),
                std::move(counter_names), dropped, options);
}

Timeline timeline_from_replay(const trace::ReplayResult& res, double dt,
                              const TimelineOptions& options) {
  std::map<std::uint64_t, WindowAccum> accum;
  if (dt <= 0.0 || res.nranks <= 0) return {};

  struct RankCursor {
    double t_last = 0.0;
    std::uint64_t window = 0;
    std::vector<std::uint32_t> stack;
    std::map<std::uint32_t, double> busy;
  };
  std::vector<RankCursor> cursors(static_cast<std::size_t>(res.nranks));

  auto flush = [&](RankCursor& rc, int rank) {
    for (const auto& [label, seconds] : rc.busy) {
      const std::string& name = label < res.labels.size()
                                    ? res.labels[label]
                                    : "?";
      accum[rc.window].sections[name][rank] += seconds;
    }
    rc.busy.clear();
  };
  auto advance = [&](RankCursor& rc, int rank, double t) {
    if (t < rc.t_last) t = rc.t_last;
    while (true) {
      const double wend = static_cast<double>(rc.window + 1) * dt;
      if (t < wend) break;
      if (!rc.stack.empty()) rc.busy[rc.stack.back()] += wend - rc.t_last;
      rc.t_last = wend;
      flush(rc, rank);
      ++rc.window;
    }
    if (t > rc.t_last && !rc.stack.empty()) {
      rc.busy[rc.stack.back()] += t - rc.t_last;
    }
    rc.t_last = t;
  };

  for (const trace::TimelineEntry& e : res.timeline) {
    RankCursor& rc = cursors[static_cast<std::size_t>(e.rank)];
    advance(rc, e.rank, e.t);
    if (e.enter) {
      rc.stack.push_back(e.label);
    } else if (!rc.stack.empty()) {
      rc.stack.pop_back();
    }
  }
  for (int rank = 0; rank < res.nranks; ++rank) {
    RankCursor& rc = cursors[static_cast<std::size_t>(rank)];
    advance(rc, rank, res.final_times[static_cast<std::size_t>(rank)]);
    flush(rc, rank);
  }
  return reduce(accum, dt, res.nranks, {}, 0, options);
}

}  // namespace mpisect::telemetry
