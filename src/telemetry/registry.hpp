// Metrics registry — the instrument store of the telemetry layer.
//
// Design constraints (ISSUE 4):
//   * zero virtual-time perturbation: instruments never touch clocks, never
//     draw RNG, never block a rank;
//   * lock-cheap hot path: Rank-scope instruments are per-rank padded slots
//     written only by the owning rank thread (single-writer; accessed via
//     relaxed atomic_ref so the live view may read them mid-run);
//     Process-scope instruments are relaxed atomics (counters/gauges) or a
//     mutex-guarded histogram (distributions are boundary-rate, not
//     per-message-rate, so the mutex is cold);
//   * two determinism classes, explicit in the type system:
//       Scope::Rank     — bumped from hooks/taps on the owning rank, a pure
//                         function of per-rank program order. Deterministic
//                         across scheduler backends and worker counts;
//                         eligible for exported time series.
//       Scope::Process  — wall-clock-order dependent (scheduler occupancy,
//                         channel queue depths observed cross-rank). Shown
//                         in the Prometheus dump and the live view only,
//                         never in deterministic exports.
//
// Instruments are registered before World::run (registration is not
// thread-safe); bumping is. Ids are dense and stable for the registry's
// lifetime, so the sampler can snapshot "all Rank-scope scalars of rank r"
// as one indexed pass.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/histogram.hpp"

namespace mpisect::telemetry {

enum class Kind { Counter, Gauge, Distribution };
enum class Scope { Rank, Process };

using InstrumentId = std::size_t;

struct InstrumentDesc {
  std::string name;  ///< dotted lowercase, e.g. "mpi.msgs_sent"
  std::string help;
  std::string unit;  ///< "", "bytes", "seconds", "messages", ...
  Kind kind = Kind::Counter;
  Scope scope = Scope::Rank;
};

class Registry {
 public:
  explicit Registry(int nranks);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registration (pre-run, not thread-safe). Returns the dense id.
  InstrumentId add_counter(std::string name, Scope scope, std::string help,
                           std::string unit = {});
  InstrumentId add_gauge(std::string name, Scope scope, std::string help,
                         std::string unit = {});
  /// Fixed-bin distribution spanning [lo, hi] (see support::Histogram).
  InstrumentId add_distribution(std::string name, Scope scope, double lo,
                                double hi, int bins, std::string help,
                                std::string unit = {});

  // -- hot path -----------------------------------------------------------

  /// Counter increment. Rank scope: call only from the owning rank thread.
  void inc(InstrumentId id, int rank, double v = 1.0) noexcept;
  /// Gauge store (same ownership rule).
  void set(InstrumentId id, int rank, double v) noexcept;
  /// Distribution sample.
  void observe(InstrumentId id, int rank, double x) noexcept;

  // -- reads --------------------------------------------------------------

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] const InstrumentDesc& desc(InstrumentId id) const;
  [[nodiscard]] std::optional<InstrumentId> find(std::string_view name) const;

  /// Rank-scope scalar value of one rank; Process scope: pass rank = -1.
  [[nodiscard]] double value(InstrumentId id, int rank) const;
  /// Sum over rank slots (Rank scope) or the process value.
  [[nodiscard]] double total(InstrumentId id) const;
  /// Distribution histogram (nullptr if `id` is a scalar). rank = -1 for
  /// Process scope.
  [[nodiscard]] const support::Histogram* histogram(InstrumentId id,
                                                    int rank) const;

  /// Ids of every Rank-scope counter/gauge, in registration order — the
  /// column order of the sampler's per-window delta vectors.
  [[nodiscard]] const std::vector<InstrumentId>& rank_scalars()
      const noexcept {
    return rank_scalars_;
  }
  /// Values of every rank_scalars() instrument for `rank`, into `out`
  /// (resized). Used by the sampler at each interval boundary.
  void snapshot_rank(int rank, std::vector<double>& out) const;

 private:
  /// One cache line per rank slot so neighbouring ranks never false-share.
  struct alignas(64) Cell {
    double v = 0.0;
  };
  struct Slot {
    InstrumentDesc desc;
    std::vector<Cell> rank;  ///< Rank-scope scalars
    std::unique_ptr<std::atomic<double>> process;
    std::vector<support::Histogram> rank_hists;
    std::unique_ptr<support::Histogram> process_hist;
  };

  InstrumentId add_scalar(std::string name, Scope scope, Kind kind,
                          std::string help, std::string unit);

  int nranks_;
  std::vector<Slot> slots_;
  std::vector<InstrumentId> rank_scalars_;
  mutable std::mutex process_hist_mu_;  ///< guards every process histogram
};

}  // namespace mpisect::telemetry
