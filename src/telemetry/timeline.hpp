// Timeline reduction — per-interval Fig. 3 metrics and Eq. 6 attribution.
//
// The sampler yields per-rank rings of per-window section occupancy; this
// layer merges them into one cross-rank time series. Per window it derives
// the Fig. 3-flavoured statistics (total / mean-per-process / min / max /
// imbalance across ranks) and the paper's Eq. 6 speedup-bound attribution
// evaluated window-locally:
//
//   bound(w) = sum_j f_j(w) / max_i f_i(w)/p        (Eq. 6, windowed)
//
// where f_j(w) is section j's busy time summed over ranks inside window w
// (the numerator plays the role of the sequential budget: busy time that a
// perfectly parallel execution would spread over p ranks) and the binding
// section is the argmax of mean-per-process time — exactly the section
// whose bound B_i is minimal. MPI_MAIN is excluded from attribution by
// default: it is the enclosing catch-all, not a phase.
//
// Windows are keyed and sorted by section *name*, never by interned id —
// label-id assignment order depends on thread interleaving, names do not,
// so exports built from a Timeline are byte-stable across backends.
//
// timeline_from_replay() builds the same structure offline from a replayed
// .mpst section timeline (telemetry depends on trace, never the reverse),
// so a recorded run can be re-binned at any Δt without re-running the app.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "telemetry/sampler.hpp"
#include "trace/replay.hpp"

namespace mpisect::telemetry {

struct TimelineOptions {
  /// Sections excluded from binding/bound attribution (still reported in
  /// the per-window series).
  std::vector<std::string> exclude = {"MPI_MAIN"};
  /// Keep windows in which nothing happened (uniform time base).
  bool keep_empty = false;
};

/// One section's cross-rank statistics inside one window.
struct SectionWindow {
  std::string label;
  int ranks = 0;            ///< ranks with nonzero busy time in the window
  double total = 0.0;       ///< busy seconds summed over ranks
  double per_process = 0.0; ///< total / nranks (Eq. 6 denominator)
  double max_rank = 0.0;
  double min_rank = 0.0;    ///< min among *active* ranks
  double imbalance = 0.0;   ///< max_rank - per_process
};

struct Window {
  std::uint64_t interval = 0;
  double t_start = 0.0;
  double t_end = 0.0;
  std::vector<SectionWindow> sections;  ///< sorted by label name
  double busy_total = 0.0;  ///< sum over sections of total (Eq. 6 numerator)
  double mpi_total = 0.0;   ///< MPI-call seconds summed over ranks
  /// Counter deltas summed over ranks, by Timeline::counter_names order.
  std::vector<double> counters;
  /// Eq. 6 attribution: the window's binding section and its bound
  /// (empty / +inf when no non-excluded section was active).
  std::string binding;
  double bound = std::numeric_limits<double>::infinity();
};

struct Timeline {
  double dt = 0.0;
  int nranks = 0;
  std::vector<std::string> counter_names;  ///< rank-scope instrument names
  std::vector<Window> windows;             ///< sorted by interval
  std::uint64_t dropped = 0;  ///< ring evictions summed over ranks

  /// Whole-run per-section aggregation (sums over windows), name-sorted.
  struct SectionTotal {
    std::string label;
    double total = 0.0;
    double per_process = 0.0;
    double max_window_imbalance = 0.0;
  };
  std::vector<SectionTotal> section_totals;  ///< filled at build time
  /// Whole-run binding section per Eq. 6 (argmax per-process total among
  /// non-excluded sections) and its bound.
  std::string binding;
  double bound = std::numeric_limits<double>::infinity();
};

/// Reduce the sampler's per-rank rings into a cross-rank timeline.
[[nodiscard]] Timeline build_timeline(const TelemetrySampler& sampler,
                                      const TimelineOptions& options = {});

/// Re-bin a replayed trace's section timeline at interval `dt` (requires
/// replay with ReplayOptions::timeline). No counters/MPI attribution —
/// the trace skeleton carries section boundaries only.
[[nodiscard]] Timeline timeline_from_replay(const trace::ReplayResult& res,
                                            double dt,
                                            const TimelineOptions& options = {});

}  // namespace mpisect::telemetry
