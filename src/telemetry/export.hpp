// Telemetry exporters: CSV / JSON time series, chrome-trace counter
// tracks, and a Prometheus-style text dump of the registry.
//
// Every format leads with the build provenance (support::provenance):
// CSV as `# ` comment lines, JSON under a "provenance" key, chrome-trace
// under "otherData", Prometheus as leading comments. Deliberately no
// wall-clock timestamps — the determinism tests compare exported bytes
// across scheduler backends and worker counts. Rows are keyed by section
// *name* and emitted in name order (never by interned label id, whose
// assignment order is wall-clock dependent).
#pragma once

#include <string>
#include <string_view>

#include "mpisim/scheduler.hpp"
#include "support/provenance.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/timeline.hpp"

namespace mpisect::telemetry {

/// Per-(window, section) rows:
///   interval,t_start,t_end,section,ranks,total,per_process,max_rank,
///   min_rank,imbalance,binding,bound
/// preceded by provenance comments and a `# dt=... nranks=... dropped=...`
/// meta comment.
[[nodiscard]] std::string timeline_csv(const Timeline& tl,
                                       const support::Provenance& p);
[[nodiscard]] std::string timeline_csv(const Timeline& tl);

/// Per-window counter deltas (rank-scope instruments summed over ranks):
///   interval,t_start,counter,value  — plus mpi seconds as counter
///   "mpi.seconds".
[[nodiscard]] std::string counters_csv(const Timeline& tl,
                                       const support::Provenance& p);
[[nodiscard]] std::string counters_csv(const Timeline& tl);

/// Full timeline as one JSON document (windows, sections, counters,
/// section totals, overall Eq. 6 attribution).
[[nodiscard]] std::string timeline_json(const Timeline& tl,
                                        const support::Provenance& p);
[[nodiscard]] std::string timeline_json(const Timeline& tl);

/// chrome://tracing counter tracks ("ph":"C"): one track per section
/// (busy seconds per window), one for MPI seconds, one for the windowed
/// Eq. 6 bound. Load alongside the replay's duration events.
[[nodiscard]] std::string chrome_counters(const Timeline& tl,
                                          const support::Provenance& p);
[[nodiscard]] std::string chrome_counters(const Timeline& tl);

/// Prometheus text exposition of the registry's current state: scalars as
/// `mpisect_<name>{rank="r"} v` (+ an aggregate sample without the rank
/// label), distributions as cumulative histograms. `sched` adds the
/// executor's wall-clock occupancy counters (process scope) when given.
[[nodiscard]] std::string prometheus_text(const Registry& reg,
                                          const mpisim::ExecStats* sched,
                                          const support::Provenance& p);
[[nodiscard]] std::string prometheus_text(
    const Registry& reg, const mpisim::ExecStats* sched = nullptr);

/// Parse a timeline_csv() document back into a Timeline (provenance and
/// counter series are not recovered). Used by `mpisect-top --post`.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Timeline timeline_from_csv(std::string_view csv);

}  // namespace mpisect::telemetry
