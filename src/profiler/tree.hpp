// Hierarchical section-tree report.
//
// Sections nest perfectly (the runtime enforces it), so the retained
// instance spans of a keep_instances profile reconstruct into a tree — the
// profiler analogue of a call-tree, with phases instead of functions
// (paper Sec. 5.3: sections give tools "an execution state with more
// semantic than the call-stack"). Inclusive time aggregates over instances
// and averages over ranks; exclusive time subtracts direct children.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "profiler/section_profiler.hpp"

namespace mpisect::profiler {

struct TreeNode {
  std::string label;
  int depth = 0;
  long instances = 0;       ///< per-rank instance count (max over ranks)
  double inclusive = 0.0;   ///< mean over ranks of summed instance spans
  double exclusive = 0.0;   ///< inclusive minus direct children
  double share_of_parent = 1.0;  ///< inclusive / parent inclusive
  std::vector<std::unique_ptr<TreeNode>> children;  ///< ordered by time desc
};

/// Build the section tree from a keep_instances profile. Children with the
/// same label under the same parent merge (e.g. 1000 HALO instances are
/// one node with instances = 1000). Returns the forest of root sections
/// (normally just MPI_MAIN).
[[nodiscard]] std::vector<std::unique_ptr<TreeNode>> build_section_tree(
    const SectionProfiler& prof);

/// Render the tree with indentation, inclusive/exclusive seconds and the
/// percentage of the parent each node accounts for.
[[nodiscard]] std::string render_tree(
    const std::vector<std::unique_ptr<TreeNode>>& forest);

/// Find a node by " / "-joined path (e.g. "MPI_MAIN / timeloop /
/// LagrangeNodal"); nullptr if absent.
[[nodiscard]] const TreeNode* find_node(
    const std::vector<std::unique_ptr<TreeNode>>& forest,
    const std::string& path);

}  // namespace mpisect::profiler
