#include "profiler/report.hpp"

#include <algorithm>

#include "support/provenance.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace mpisect::profiler {
namespace {

double safe_pct(double part, double whole) {
  return whole > 0.0 ? part / whole * 100.0 : 0.0;
}

}  // namespace

std::string render_text(const SectionProfiler& prof) {
  support::TextTable table;
  table.set_header({"section", "ranks", "inst", "mean/proc (s)", "% main",
                    "exclusive (s)", "MPI (s)", "MPI calls"});
  table.set_align({support::TextTable::Align::Left,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right});
  const double main = prof.main_time();
  for (const auto& t : prof.totals()) {
    table.add_row({t.label, std::to_string(t.ranks_seen),
                   std::to_string(t.instances),
                   support::fmt_double(t.mean_per_process, 4),
                   support::fmt_double(safe_pct(t.mean_per_process, main), 1),
                   support::fmt_double(
                       t.ranks_seen ? t.exclusive_total / t.ranks_seen : 0.0,
                       4),
                   support::fmt_double(
                       t.ranks_seen ? t.mpi_time / t.ranks_seen : 0.0, 4),
                   std::to_string(t.mpi_calls)});
  }
  return table.render();
}

std::string render_csv(const SectionProfiler& prof) {
  std::string out = support::provenance_csv_comment();
  out +=
      "section,ranks,instances,mean_per_process,pct_main,exclusive,mpi_time,"
      "mpi_calls\n";
  const double main = prof.main_time();
  for (const auto& t : prof.totals()) {
    out += t.label + "," + std::to_string(t.ranks_seen) + "," +
           std::to_string(t.instances) + "," +
           support::fmt_auto(t.mean_per_process) + "," +
           support::fmt_auto(safe_pct(t.mean_per_process, main)) + "," +
           support::fmt_auto(
               t.ranks_seen ? t.exclusive_total / t.ranks_seen : 0.0) +
           "," +
           support::fmt_auto(t.ranks_seen ? t.mpi_time / t.ranks_seen : 0.0) +
           "," + std::to_string(t.mpi_calls) + "\n";
  }
  return out;
}

std::string render_json(const SectionProfiler& prof) {
  std::string out = "[\n";
  const auto totals = prof.totals();
  const double main = prof.main_time();
  for (std::size_t i = 0; i < totals.size(); ++i) {
    const auto& t = totals[i];
    out += "  {\"section\": \"" + support::json_escape(t.label) + "\"";
    out += ", \"ranks\": " + std::to_string(t.ranks_seen);
    out += ", \"instances\": " + std::to_string(t.instances);
    out += ", \"mean_per_process\": " + support::fmt_auto(t.mean_per_process);
    out += ", \"pct_main\": " +
           support::fmt_auto(safe_pct(t.mean_per_process, main));
    out += ", \"mpi_time\": " +
           support::fmt_auto(t.ranks_seen ? t.mpi_time / t.ranks_seen : 0.0);
    out += "}";
    if (i + 1 < totals.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::vector<ShareEntry> execution_shares(const SectionProfiler& prof) {
  std::vector<ShareEntry> shares;
  const double main = prof.main_time();
  if (main <= 0.0) return shares;
  for (const auto& t : prof.totals()) {
    if (t.label == sections::kMainSectionLabel) continue;
    const double exclusive_mean =
        t.ranks_seen ? t.exclusive_total / t.ranks_seen : 0.0;
    shares.push_back({t.label, exclusive_mean / main});
  }
  std::sort(shares.begin(), shares.end(),
            [](const ShareEntry& a, const ShareEntry& b) {
              return a.share > b.share;
            });
  return shares;
}

std::string render_chrome_trace(const SectionProfiler& prof) {
  // Complete events ("ph":"X") with microsecond timestamps; pid 0, one tid
  // per rank. Viewers nest overlapping events automatically, so the
  // section hierarchy renders as stacked boxes.
  std::string out = "[\n";
  bool first = true;
  for (int r = 0; r < prof.nranks(); ++r) {
    for (const auto& s : prof.trace(r)) {
      if (!first) out += ",\n";
      first = false;
      out += "  {\"name\": \"" + support::json_escape(prof.labels().name(s.label)) +
             "\", \"ph\": \"X\", \"pid\": 0, \"tid\": " + std::to_string(r) +
             ", \"ts\": " + support::fmt_auto(s.t_in * 1e6) +
             ", \"dur\": " + support::fmt_auto((s.t_out - s.t_in) * 1e6) +
             ", \"args\": {\"instance\": " + std::to_string(s.instance) +
             ", \"depth\": " + std::to_string(s.depth) + "}}";
    }
  }
  out += "\n]\n";
  return out;
}

std::string render_trace(const SectionProfiler& prof, int rank) {
  std::string out;
  for (const auto& s : prof.trace(rank)) {
    out += support::pad_left(support::fmt_double(s.t_in, 6), 14) + " .. " +
           support::pad_left(support::fmt_double(s.t_out, 6), 14) + "  " +
           std::string(static_cast<std::size_t>(s.depth) * 2, ' ') +
           prof.labels().name(s.label) + " #" + std::to_string(s.instance) +
           "\n";
  }
  return out;
}

}  // namespace mpisect::profiler
