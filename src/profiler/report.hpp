// Report rendering for SectionProfiler results: profile breakdowns over
// sections (text / CSV / JSON) plus the Vampir-style coarse trace view the
// paper sketches in Sec. 5.3 (merging fine-grained events per section).
#pragma once

#include <string>
#include <vector>

#include "profiler/section_profiler.hpp"

namespace mpisect::profiler {

/// Text table: one row per section, with % of MPI_MAIN, mean/process,
/// exclusive and attributed-MPI time.
[[nodiscard]] std::string render_text(const SectionProfiler& prof);

/// CSV with the same columns.
[[nodiscard]] std::string render_csv(const SectionProfiler& prof);

/// Minimal JSON array of section objects (for downstream tooling).
[[nodiscard]] std::string render_json(const SectionProfiler& prof);

/// Percentage-of-execution breakdown (Fig. 5(a) data): label -> share of
/// mean MPI_MAIN time, exclusive, for leaf sections only.
struct ShareEntry {
  std::string label;
  double share = 0.0;  ///< [0, 1]
};
[[nodiscard]] std::vector<ShareEntry> execution_shares(
    const SectionProfiler& prof);

/// Coarse trace: one line per retained section instance on `rank`
/// ("merge fine-grained trace-events per sections", Sec. 5.3).
[[nodiscard]] std::string render_trace(const SectionProfiler& prof, int rank);

/// Chrome-tracing (about://tracing, Perfetto) JSON export of the retained
/// section instances across all ranks — the "temporal trace viewer" view
/// of Sec. 5.3, with one timeline row per MPI rank and one complete-event
/// box per section instance. Requires keep_instances mode.
[[nodiscard]] std::string render_chrome_trace(const SectionProfiler& prof);

}  // namespace mpisect::profiler
