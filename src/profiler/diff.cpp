#include "profiler/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

#include "support/provenance.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace mpisect::profiler {

ProfileSnapshot ProfileSnapshot::capture(const SectionProfiler& prof,
                                         std::string name) {
  ProfileSnapshot snap;
  snap.name_ = std::move(name);
  for (const auto& t : prof.totals()) {
    SnapshotEntry e;
    e.label = t.label;
    e.instances = t.instances;
    e.ranks = t.ranks_seen;
    e.mean_per_process = t.mean_per_process;
    e.mpi_time = t.ranks_seen > 0 ? t.mpi_time / t.ranks_seen : 0.0;
    snap.entries_.push_back(std::move(e));
  }
  return snap;
}

const SnapshotEntry* ProfileSnapshot::find(std::string_view label) const {
  for (const auto& e : entries_) {
    if (e.label == label) return &e;
  }
  return nullptr;
}

std::string ProfileSnapshot::to_csv() const {
  std::string out = support::provenance_csv_comment();
  out += "section,instances,ranks,mean_per_process,mpi_time\n";
  for (const auto& e : entries_) {
    out += e.label + "," + std::to_string(e.instances) + "," +
           std::to_string(e.ranks) + "," +
           support::fmt_double(e.mean_per_process, 9) + "," +
           support::fmt_double(e.mpi_time, 9) + "\n";
  }
  return out;
}

std::optional<ProfileSnapshot> ProfileSnapshot::from_csv(std::string_view csv,
                                                         std::string name) {
  ProfileSnapshot snap;
  snap.name_ = std::move(name);
  bool header = true;
  for (const auto& line : support::split(csv, '\n')) {
    if (support::trim(line).empty()) continue;
    if (support::starts_with(support::trim(line), "#")) continue;
    if (header) {
      if (!support::starts_with(line, "section,")) return std::nullopt;
      header = false;
      continue;
    }
    const auto cells = support::split(line, ',');
    if (cells.size() != 5) return std::nullopt;
    SnapshotEntry e;
    e.label = cells[0];
    e.instances = std::strtol(cells[1].c_str(), nullptr, 10);
    e.ranks = static_cast<int>(std::strtol(cells[2].c_str(), nullptr, 10));
    e.mean_per_process = std::strtod(cells[3].c_str(), nullptr);
    e.mpi_time = std::strtod(cells[4].c_str(), nullptr);
    snap.entries_.push_back(std::move(e));
  }
  if (header) return std::nullopt;  // empty input
  return snap;
}

std::vector<SectionDelta> diff_profiles(const ProfileSnapshot& before,
                                        const ProfileSnapshot& after) {
  std::map<std::string, SectionDelta> by_label;
  for (const auto& e : before.entries()) {
    auto& d = by_label[e.label];
    d.label = e.label;
    d.before = e.mean_per_process;
    d.only_in_before = true;
  }
  for (const auto& e : after.entries()) {
    auto& d = by_label[e.label];
    d.label = e.label;
    d.after = e.mean_per_process;
    d.only_in_after = !d.only_in_before;
    d.only_in_before = false;
  }
  std::vector<SectionDelta> out;
  out.reserve(by_label.size());
  for (auto& [label, d] : by_label) {
    (void)label;
    d.abs_delta = d.after - d.before;
    d.speedup = d.after > 0.0 ? d.before / d.after : 0.0;
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(),
            [](const SectionDelta& a, const SectionDelta& b) {
              return std::fabs(a.abs_delta) > std::fabs(b.abs_delta);
            });
  return out;
}

std::string render_diff(const std::vector<SectionDelta>& deltas,
                        const std::string& before_name,
                        const std::string& after_name) {
  support::TextTable table;
  table.set_header({"section", before_name + " (s)", after_name + " (s)",
                    "delta (s)", "speedup"});
  table.set_align({support::TextTable::Align::Left,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right});
  for (const auto& d : deltas) {
    std::string speedup = d.only_in_before   ? "(removed)"
                          : d.only_in_after  ? "(new)"
                          : support::fmt_double(d.speedup, 2) + "x";
    table.add_row({d.label, support::fmt_double(d.before, 4),
                   support::fmt_double(d.after, 4),
                   support::fmt_double(d.abs_delta, 4), speedup});
  }
  return table.render();
}

}  // namespace mpisect::profiler
