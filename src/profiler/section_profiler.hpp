// A section-aware profiling tool (the paper's MALP-style consumer).
//
// SectionProfiler attaches to a World purely through the PMPI-analogue
// HookTable — it never requires application changes, demonstrating the
// paper's central claim: once the runtime standardizes MPIX_Section events,
// *any* tool can consume phase semantics for free.
//
// What it demonstrates / provides:
//   * uses the 32-byte section payload (Fig. 2) to carry its own entry
//     timestamp from enter to leave — no tool-side shadow stack needed for
//     timing;
//   * per-rank, lock-free accumulation (each rank thread owns its slot);
//   * inclusive and exclusive per-section times;
//   * attribution of MPI-call time to the enclosing section (on_call hooks),
//     so a report can say "this phase is 95% communication";
//   * optional instance retention for Fig. 3 cross-rank metrics
//     (Tmin/Tmax/imbalance) on small runs;
//   * post-run reports in text/CSV form (see profiler/report.hpp).
//
//   SectionProfiler prof(world, {.keep_instances = true});
//   world.run(app);
//   std::cout << render_text(prof.report());
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sections/labels.hpp"
#include "core/sections/metrics.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/toolstack.hpp"

namespace mpisect::profiler {

struct ProfilerOptions {
  /// Retain every (rank, instance) span for cross-rank Fig. 3 metrics.
  /// O(ranks * instances) memory — enable on small runs only.
  bool keep_instances = false;
  /// Attribute MPI-call time to the enclosing section.
  bool track_mpi_calls = true;
};

/// Per-(communicator,label) accumulation on one rank.
struct LabelStats {
  long count = 0;              ///< completed instances on this rank
  double inclusive = 0.0;      ///< sum of (t_out - t_in)
  double exclusive = 0.0;      ///< inclusive minus nested-child inclusive
  double mpi_time = 0.0;       ///< MPI-call time inside this section
  long mpi_calls = 0;
  long p2p_calls = 0;
  long collective_calls = 0;
  double min_instance = 0.0;
  double max_instance = 0.0;
};

/// One retained instance span (keep_instances mode).
struct InstanceSpan {
  std::uint32_t label = 0;
  std::uint64_t instance = 0;
  int comm_context = 0;
  double t_in = 0.0;
  double t_out = 0.0;
  int depth = 0;
};

class SectionProfiler : public mpisim::hooks::Tool {
 public:
  SectionProfiler(mpisim::World& world, ProfilerOptions options = {});
  ~SectionProfiler() override;

  SectionProfiler(const SectionProfiler&) = delete;
  SectionProfiler& operator=(const SectionProfiler&) = delete;

  /// Remove the tool from the world's stack (accumulated data survives).
  void detach();

  [[nodiscard]] const sections::LabelRegistry& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(ranks_.size());
  }

  /// Post-run: per-rank stats for (comm context, label); nullptr if never
  /// observed on that rank.
  [[nodiscard]] const LabelStats* rank_stats(int rank, int comm_context,
                                             std::string_view label) const;

  struct SectionTotals {
    std::string label;
    int comm_context = 0;
    long instances = 0;       ///< max per-rank count (collective sections:
                              ///< identical on every rank)
    int ranks_seen = 0;
    double total_time = 0.0;  ///< sum over ranks of inclusive time
    double mean_per_process = 0.0;
    double exclusive_total = 0.0;
    double mpi_time = 0.0;
    long mpi_calls = 0;
  };
  /// Aggregated totals for every observed section, outer sections first.
  [[nodiscard]] std::vector<SectionTotals> totals() const;
  /// Totals for one label on the world communicator context.
  [[nodiscard]] SectionTotals totals_for(std::string_view label) const;

  /// Mean over ranks of the MPI_MAIN inclusive time — the run's walltime
  /// as a tool would report it.
  [[nodiscard]] double main_time() const;

  /// keep_instances mode: Fig. 3 metrics of instance `k` of a label
  /// (cross-rank pairing by instance id; collective semantics guarantee
  /// the id agrees across ranks).
  [[nodiscard]] sections::InstanceMetrics instance_metrics(
      int comm_context, std::string_view label, std::uint64_t instance) const;
  /// keep_instances mode: aggregation over all instances of a label.
  [[nodiscard]] sections::AggregatedMetrics aggregated_metrics(
      int comm_context, std::string_view label) const;
  /// Number of instances retained for a label (0 in aggregate mode).
  [[nodiscard]] std::uint64_t instance_count(int comm_context,
                                             std::string_view label) const;

  /// keep_instances mode: raw per-rank trace, time-ordered per rank.
  [[nodiscard]] const std::vector<InstanceSpan>& trace(int rank) const;

  // Tool interface (invoked by the world's ToolStack).
  void on_section_enter(mpisim::Ctx& ctx, mpisim::Comm& comm,
                        const char* label, char* data) override;
  void on_section_leave(mpisim::Ctx& ctx, mpisim::Comm& comm,
                        const char* label, char* data) override;
  void on_call_begin(mpisim::Ctx& ctx, const mpisim::CallInfo& info) override;
  void on_call_end(mpisim::Ctx& ctx, const mpisim::CallInfo& info) override;

 private:
  struct OpenSection {
    std::uint32_t label = 0;
    std::uint64_t instance = 0;
    int comm_context = 0;
    double t_in = 0.0;
    double child_inclusive = 0.0;  ///< accumulated nested time
    double mpi_time = 0.0;
    long mpi_calls = 0;
    long p2p_calls = 0;
    long coll_calls = 0;
  };
  struct RankData {
    std::vector<OpenSection> stack;
    std::map<std::pair<int, std::uint32_t>, LabelStats> stats;
    std::map<std::pair<int, std::uint32_t>, std::uint64_t> occurrences;
    std::vector<InstanceSpan> spans;
    double call_begin_time = 0.0;
    int call_depth = 0;
  };

  mpisim::World* world_;
  ProfilerOptions options_;
  sections::LabelRegistry labels_;
  std::vector<RankData> ranks_;
};

}  // namespace mpisect::profiler
