// Load-balancing analysis of MPI Sections — the analysis interface the
// paper announces as future work (Sec. 8: "We are in the process of
// developing an MPI Section analysis interface describing the
// load-balancing of Sections as shown in Figure 3").
//
// For every section observed by a SectionProfiler this computes, across
// ranks:
//   * time spread (min/mean/max) and the classic imbalance percentage
//     max/mean - 1 (the share of the slowest rank's time that other ranks
//     spend waiting);
//   * the imbalance *cost*: (max - mean) * ranks — processor-seconds lost
//     at the section's implicit convergence point;
//   * a Gini coefficient of the per-rank time distribution (0 = perfectly
//     balanced, -> 1 = one rank does everything), robust when the mean is
//     dominated by one rank (e.g. the LOAD phase);
//   * the heaviest/lightest ranks, to name the culprit.
#pragma once

#include <string>
#include <vector>

#include "profiler/section_profiler.hpp"

namespace mpisect::profiler {

struct SectionBalance {
  std::string label;
  int comm_context = 0;
  int ranks = 0;
  double mean_time = 0.0;
  double min_time = 0.0;
  double max_time = 0.0;
  /// max/mean - 1; 0 for a perfectly balanced section.
  double imbalance_pct = 0.0;
  /// (max - mean) * ranks: processor-seconds wasted waiting on the slowest.
  double imbalance_cost = 0.0;
  /// Gini coefficient of per-rank inclusive times in [0, 1).
  double gini = 0.0;
  int heaviest_rank = -1;
  int lightest_rank = -1;
};

/// Compute the balance record of one section (by label, on the context the
/// profiler observed it). Returns ranks == 0 if never observed.
[[nodiscard]] SectionBalance section_balance(const SectionProfiler& prof,
                                             std::string_view label);

/// All sections, sorted by descending imbalance cost (the triage order).
[[nodiscard]] std::vector<SectionBalance> balance_report(
    const SectionProfiler& prof);

/// Render as an aligned table.
[[nodiscard]] std::string render_balance(
    const std::vector<SectionBalance>& report);

}  // namespace mpisect::profiler
