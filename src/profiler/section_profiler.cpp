#include "profiler/section_profiler.hpp"

#include <algorithm>
#include <cstring>

#include "mpisim/comm.hpp"

namespace mpisect::profiler {
namespace {

/// Tool payload carried in the section's 32-byte data slot (paper Fig. 2):
/// the tool's own synchronized timestamp, written at enter, read at leave.
struct ToolData {
  double t_in;
};
static_assert(sizeof(ToolData) <= mpisim::kSectionDataBytes,
              "tool payload must fit the 32-byte section data");

}  // namespace

SectionProfiler::SectionProfiler(mpisim::World& world, ProfilerOptions options)
    : world_(&world),
      options_(options),
      ranks_(static_cast<std::size_t>(world.size())) {
  world.tool_stack().attach(this, mpisim::hooks::kOrderProfiler);
}

SectionProfiler::~SectionProfiler() { detach(); }

void SectionProfiler::detach() {
  if (world_ == nullptr) return;
  world_->tool_stack().detach(this);
  world_ = nullptr;
}

void SectionProfiler::on_section_enter(mpisim::Ctx& ctx, mpisim::Comm& comm,
                                       const char* label, char* data) {
  auto& rd = ranks_[static_cast<std::size_t>(ctx.rank())];
  const auto id = labels_.intern(label);

  // Stamp the tool payload: this timestamp travels with the section.
  ToolData td{ctx.now()};
  std::memcpy(data, &td, sizeof td);

  OpenSection open;
  open.label = id;
  open.comm_context = comm.context_id();
  open.instance = rd.occurrences[{open.comm_context, id}]++;
  open.t_in = td.t_in;
  rd.stack.push_back(open);
}

void SectionProfiler::on_section_leave(mpisim::Ctx& ctx, mpisim::Comm& comm,
                                       const char* label, char* data) {
  auto& rd = ranks_[static_cast<std::size_t>(ctx.rank())];
  if (rd.stack.empty()) return;  // defensive: runtime enforces nesting
  (void)label;

  // Recover the enter timestamp from the 32-byte payload the runtime
  // preserved for us.
  ToolData td{};
  std::memcpy(&td, data, sizeof td);

  const OpenSection open = rd.stack.back();
  rd.stack.pop_back();
  const double t_out = ctx.now();
  const double inclusive = t_out - td.t_in;

  auto& stats = rd.stats[{open.comm_context, open.label}];
  if (stats.count == 0) {
    stats.min_instance = inclusive;
    stats.max_instance = inclusive;
  } else {
    stats.min_instance = std::min(stats.min_instance, inclusive);
    stats.max_instance = std::max(stats.max_instance, inclusive);
  }
  ++stats.count;
  stats.inclusive += inclusive;
  stats.exclusive += inclusive - open.child_inclusive;
  stats.mpi_time += open.mpi_time;
  stats.mpi_calls += open.mpi_calls;
  stats.p2p_calls += open.p2p_calls;
  stats.collective_calls += open.coll_calls;

  if (!rd.stack.empty()) {
    rd.stack.back().child_inclusive += inclusive;
  }

  if (options_.keep_instances) {
    InstanceSpan span;
    span.label = open.label;
    span.instance = open.instance;
    span.comm_context = open.comm_context;
    span.t_in = td.t_in;
    span.t_out = t_out;
    span.depth = static_cast<int>(rd.stack.size());
    rd.spans.push_back(span);
  }

  (void)comm;
}

void SectionProfiler::on_call_begin(mpisim::Ctx& ctx,
                                    const mpisim::CallInfo& info) {
  if (!options_.track_mpi_calls) return;
  if (info.call == mpisim::MpiCall::Pcontrol) return;  // phase marker, not
                                                       // communication
  auto& rd = ranks_[static_cast<std::size_t>(ctx.rank())];
  if (rd.call_depth++ == 0) rd.call_begin_time = info.t_virtual;
}

void SectionProfiler::on_call_end(mpisim::Ctx& ctx,
                                  const mpisim::CallInfo& info) {
  if (!options_.track_mpi_calls) return;
  if (info.call == mpisim::MpiCall::Pcontrol) return;
  auto& rd = ranks_[static_cast<std::size_t>(ctx.rank())];
  if (--rd.call_depth != 0) return;  // attribute only outermost calls
  if (rd.stack.empty()) return;      // outside any section (Init/Finalize)
  auto& top = rd.stack.back();
  top.mpi_time += info.t_virtual - rd.call_begin_time;
  ++top.mpi_calls;
  if (mpisim::is_point_to_point(info.call)) ++top.p2p_calls;
  if (mpisim::is_collective(info.call)) ++top.coll_calls;
}

const LabelStats* SectionProfiler::rank_stats(int rank, int comm_context,
                                              std::string_view label) const {
  const auto id = labels_.lookup(label);
  if (id == sections::kInvalidLabel) return nullptr;
  const auto& rd = ranks_.at(static_cast<std::size_t>(rank));
  const auto it = rd.stats.find({comm_context, id});
  return it == rd.stats.end() ? nullptr : &it->second;
}

std::vector<SectionProfiler::SectionTotals> SectionProfiler::totals() const {
  std::map<std::pair<int, std::uint32_t>, SectionTotals> acc;
  for (const auto& rd : ranks_) {
    for (const auto& [key, stats] : rd.stats) {
      auto& t = acc[key];
      if (t.ranks_seen == 0) {
        t.label = labels_.name(key.second);
        t.comm_context = key.first;
      }
      ++t.ranks_seen;
      t.instances = std::max(t.instances, stats.count);
      t.total_time += stats.inclusive;
      t.exclusive_total += stats.exclusive;
      t.mpi_time += stats.mpi_time;
      t.mpi_calls += stats.mpi_calls;
    }
  }
  std::vector<SectionTotals> out;
  out.reserve(acc.size());
  for (auto& [key, t] : acc) {
    (void)key;
    if (t.ranks_seen > 0) {
      t.mean_per_process = t.total_time / t.ranks_seen;
    }
    out.push_back(std::move(t));
  }
  return out;
}

SectionProfiler::SectionTotals SectionProfiler::totals_for(
    std::string_view label) const {
  SectionTotals sum;
  sum.label = std::string(label);
  for (const auto& t : totals()) {
    if (t.label != label) continue;
    sum.comm_context = t.comm_context;
    sum.instances += t.instances;
    sum.ranks_seen = std::max(sum.ranks_seen, t.ranks_seen);
    sum.total_time += t.total_time;
    sum.exclusive_total += t.exclusive_total;
    sum.mpi_time += t.mpi_time;
    sum.mpi_calls += t.mpi_calls;
  }
  if (sum.ranks_seen > 0) sum.mean_per_process = sum.total_time / sum.ranks_seen;
  return sum;
}

double SectionProfiler::main_time() const {
  const auto t = totals_for(sections::kMainSectionLabel);
  return t.mean_per_process;
}

sections::InstanceMetrics SectionProfiler::instance_metrics(
    int comm_context, std::string_view label, std::uint64_t instance) const {
  const auto id = labels_.lookup(label);
  std::vector<sections::RankSpan> spans;
  if (id == sections::kInvalidLabel) return sections::compute_metrics(spans);
  for (int r = 0; r < nranks(); ++r) {
    for (const auto& s : ranks_[static_cast<std::size_t>(r)].spans) {
      if (s.label == id && s.instance == instance &&
          s.comm_context == comm_context) {
        spans.push_back({r, s.t_in, s.t_out});
        break;
      }
    }
  }
  return sections::compute_metrics(spans);
}

sections::AggregatedMetrics SectionProfiler::aggregated_metrics(
    int comm_context, std::string_view label) const {
  sections::AggregatedMetrics agg;
  const std::uint64_t n = instance_count(comm_context, label);
  for (std::uint64_t k = 0; k < n; ++k) {
    const auto m = instance_metrics(comm_context, label, k);
    if (m.nranks > 0) agg.add(m);
  }
  return agg;
}

std::uint64_t SectionProfiler::instance_count(int comm_context,
                                              std::string_view label) const {
  const auto id = labels_.lookup(label);
  if (id == sections::kInvalidLabel) return 0;
  std::uint64_t n = 0;
  for (const auto& rd : ranks_) {
    const auto it = rd.occurrences.find({comm_context, id});
    if (it != rd.occurrences.end()) n = std::max(n, it->second);
  }
  return n;
}

const std::vector<InstanceSpan>& SectionProfiler::trace(int rank) const {
  return ranks_.at(static_cast<std::size_t>(rank)).spans;
}

}  // namespace mpisect::profiler
