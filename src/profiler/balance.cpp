#include "profiler/balance.hpp"

#include <algorithm>
#include <cmath>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace mpisect::profiler {
namespace {

/// Gini coefficient of non-negative values (0 for uniform, -> 1 for fully
/// concentrated). Uses the sorted-rank formula.
double gini_coefficient(std::vector<double> xs) {
  if (xs.size() < 2) return 0.0;
  std::sort(xs.begin(), xs.end());
  double sum = 0.0;
  double weighted = 0.0;
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum += xs[i];
    weighted += (2.0 * (static_cast<double>(i) + 1.0) - n - 1.0) * xs[i];
  }
  if (sum <= 0.0) return 0.0;
  return weighted / (n * sum);
}

SectionBalance balance_of(const SectionProfiler& prof, int comm_context,
                          const std::string& label) {
  SectionBalance b;
  b.label = label;
  b.comm_context = comm_context;
  std::vector<double> times;
  for (int r = 0; r < prof.nranks(); ++r) {
    const LabelStats* st = prof.rank_stats(r, comm_context, label);
    if (st == nullptr) continue;
    const double t = st->inclusive;
    times.push_back(t);
    if (b.ranks == 0 || t > b.max_time) {
      b.max_time = t;
      b.heaviest_rank = r;
    }
    if (b.ranks == 0 || t < b.min_time) {
      b.min_time = t;
      b.lightest_rank = r;
    }
    b.mean_time += t;
    ++b.ranks;
  }
  if (b.ranks == 0) return b;
  b.mean_time /= b.ranks;
  if (b.mean_time > 0.0) {
    b.imbalance_pct = (b.max_time / b.mean_time - 1.0) * 100.0;
  }
  b.imbalance_cost = (b.max_time - b.mean_time) * b.ranks;
  b.gini = gini_coefficient(std::move(times));
  return b;
}

}  // namespace

SectionBalance section_balance(const SectionProfiler& prof,
                               std::string_view label) {
  for (const auto& t : prof.totals()) {
    if (t.label == label) {
      return balance_of(prof, t.comm_context, t.label);
    }
  }
  return SectionBalance{std::string(label)};
}

std::vector<SectionBalance> balance_report(const SectionProfiler& prof) {
  std::vector<SectionBalance> out;
  for (const auto& t : prof.totals()) {
    out.push_back(balance_of(prof, t.comm_context, t.label));
  }
  std::sort(out.begin(), out.end(),
            [](const SectionBalance& a, const SectionBalance& b) {
              return a.imbalance_cost > b.imbalance_cost;
            });
  return out;
}

std::string render_balance(const std::vector<SectionBalance>& report) {
  support::TextTable table;
  table.set_header({"section", "ranks", "mean (s)", "max (s)", "imb %",
                    "cost (proc-s)", "gini", "heaviest"});
  table.set_align({support::TextTable::Align::Left,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right});
  for (const auto& b : report) {
    if (b.ranks == 0) continue;
    table.add_row({b.label, std::to_string(b.ranks),
                   support::fmt_double(b.mean_time, 4),
                   support::fmt_double(b.max_time, 4),
                   support::fmt_double(b.imbalance_pct, 1),
                   support::fmt_double(b.imbalance_cost, 4),
                   support::fmt_double(b.gini, 3),
                   "rank " + std::to_string(b.heaviest_rank)});
  }
  return table.render();
}

}  // namespace mpisect::profiler
