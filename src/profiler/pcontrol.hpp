// IPM-style MPI_Pcontrol phase profiling — the related-work baseline
// (paper Sec. 6): "the IPM tool provides MPI level phase outlining by
// relying on the MPI_Pcontrol function call ... as the Pcontrol semantic is
// not defined by the MPI standard, actions have to be manually encoded and
// therefore dependent from the target tool."
//
// This tool encodes the common IPM convention:
//   MPI_Pcontrol(1, "label")  -> start phase "label"
//   MPI_Pcontrol(-1, "label") -> end phase "label"
//   MPI_Pcontrol(0, ...)      -> ignored (tracing toggle in IPM)
//
// Deliberately *local*: no collective semantics, no nesting enforcement, no
// cross-rank instance identity — phases are per-rank intervals, which is
// exactly the limitation the MPI_Section proposal removes. The ablation
// bench contrasts the two on the same run.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/sections/labels.hpp"
#include "mpisim/runtime.hpp"

namespace mpisect::profiler {

class PcontrolPhases {
 public:
  explicit PcontrolPhases(mpisim::World& world);

  void detach();

  struct PhaseStats {
    long count = 0;
    double total = 0.0;  ///< summed per-rank interval durations
    long unmatched_starts = 0;
    long unmatched_ends = 0;
  };

  /// Per-rank stats for one phase label.
  [[nodiscard]] const PhaseStats* rank_phase(int rank,
                                             std::string_view label) const;
  /// Sum over ranks.
  [[nodiscard]] PhaseStats total_phase(std::string_view label) const;
  [[nodiscard]] std::vector<std::string> phase_labels() const;
  /// Total protocol misuse observed (unmatched starts/ends) — sections
  /// would have rejected these; Pcontrol silently mis-measures.
  [[nodiscard]] long protocol_errors() const;

 private:
  void on_pcontrol(mpisim::Ctx& ctx, int level, const char* label);

  struct RankData {
    std::map<std::string, double> open;  ///< label -> start time
    std::map<std::string, PhaseStats> stats;
  };

  mpisim::World* world_;
  std::vector<RankData> ranks_;
};

}  // namespace mpisect::profiler
