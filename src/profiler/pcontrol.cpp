#include "profiler/pcontrol.hpp"

namespace mpisect::profiler {

PcontrolPhases::PcontrolPhases(mpisim::World& world)
    : world_(&world), ranks_(static_cast<std::size_t>(world.size())) {
  world.hooks().on_pcontrol = [this](mpisim::Ctx& ctx, int level,
                                     const char* label) {
    on_pcontrol(ctx, level, label);
  };
}

void PcontrolPhases::detach() {
  if (world_ == nullptr) return;
  world_->hooks().on_pcontrol = nullptr;
  world_ = nullptr;
}

void PcontrolPhases::on_pcontrol(mpisim::Ctx& ctx, int level,
                                 const char* label) {
  auto& rd = ranks_[static_cast<std::size_t>(ctx.rank())];
  const std::string key = label != nullptr ? label : "(anonymous)";
  if (level > 0) {
    // IPM convention: start. A duplicate start silently restarts the
    // interval (and is counted as protocol misuse).
    auto [it, inserted] = rd.open.emplace(key, ctx.now());
    if (!inserted) {
      ++rd.stats[key].unmatched_starts;
      it->second = ctx.now();
    }
  } else if (level < 0) {
    const auto it = rd.open.find(key);
    if (it == rd.open.end()) {
      ++rd.stats[key].unmatched_ends;
      return;
    }
    auto& st = rd.stats[key];
    ++st.count;
    st.total += ctx.now() - it->second;
    rd.open.erase(it);
  }
  // level == 0: IPM uses it to toggle tracing; this tool ignores it.
}

const PcontrolPhases::PhaseStats* PcontrolPhases::rank_phase(
    int rank, std::string_view label) const {
  const auto& rd = ranks_.at(static_cast<std::size_t>(rank));
  const auto it = rd.stats.find(std::string(label));
  return it == rd.stats.end() ? nullptr : &it->second;
}

PcontrolPhases::PhaseStats PcontrolPhases::total_phase(
    std::string_view label) const {
  PhaseStats sum;
  for (const auto& rd : ranks_) {
    const auto it = rd.stats.find(std::string(label));
    if (it == rd.stats.end()) continue;
    sum.count += it->second.count;
    sum.total += it->second.total;
    sum.unmatched_starts += it->second.unmatched_starts;
    sum.unmatched_ends += it->second.unmatched_ends;
  }
  return sum;
}

std::vector<std::string> PcontrolPhases::phase_labels() const {
  std::vector<std::string> labels;
  for (const auto& rd : ranks_) {
    for (const auto& [label, st] : rd.stats) {
      (void)st;
      if (std::find(labels.begin(), labels.end(), label) == labels.end()) {
        labels.push_back(label);
      }
    }
  }
  return labels;
}

long PcontrolPhases::protocol_errors() const {
  long n = 0;
  for (const auto& rd : ranks_) {
    for (const auto& [label, st] : rd.stats) {
      (void)label;
      n += st.unmatched_starts + st.unmatched_ends;
    }
  }
  return n;
}

}  // namespace mpisect::profiler
