#include "profiler/tree.hpp"

#include <algorithm>
#include <map>

#include "support/strings.hpp"

namespace mpisect::profiler {
namespace {

/// Aggregation node keyed by label within its parent.
struct Accum {
  long max_count = 0;
  std::map<int, double> per_rank_inclusive;  ///< rank -> summed span
  std::map<int, long> per_rank_count;
  std::map<std::string, std::unique_ptr<Accum>> children;
};

std::unique_ptr<TreeNode> finalize(const std::string& label,
                                   const Accum& acc, int depth,
                                   double parent_inclusive) {
  auto node = std::make_unique<TreeNode>();
  node->label = label;
  node->depth = depth;
  double total = 0.0;
  for (const auto& [rank, t] : acc.per_rank_inclusive) {
    (void)rank;
    total += t;
  }
  node->inclusive = acc.per_rank_inclusive.empty()
                        ? 0.0
                        : total / static_cast<double>(
                                      acc.per_rank_inclusive.size());
  for (const auto& [rank, n] : acc.per_rank_count) {
    (void)rank;
    node->instances = std::max(node->instances, n);
  }
  node->share_of_parent =
      parent_inclusive > 0.0 ? node->inclusive / parent_inclusive : 1.0;

  double child_sum = 0.0;
  for (const auto& [child_label, child_acc] : acc.children) {
    node->children.push_back(
        finalize(child_label, *child_acc, depth + 1, node->inclusive));
    child_sum += node->children.back()->inclusive;
  }
  node->exclusive = std::max(node->inclusive - child_sum, 0.0);
  std::sort(node->children.begin(), node->children.end(),
            [](const auto& a, const auto& b) {
              return a->inclusive > b->inclusive;
            });
  return node;
}

void render_node(const TreeNode& node, std::string& out) {
  out += std::string(static_cast<std::size_t>(node.depth) * 2, ' ');
  out += node.label;
  out += "  [" + support::fmt_double(node.inclusive, 4) + " s inclusive, " +
         support::fmt_double(node.exclusive, 4) + " s exclusive, " +
         support::fmt_double(node.share_of_parent * 100.0, 1) +
         "% of parent, x" + std::to_string(node.instances) + "]\n";
  for (const auto& child : node.children) render_node(*child, out);
}

}  // namespace

std::vector<std::unique_ptr<TreeNode>> build_section_tree(
    const SectionProfiler& prof) {
  Accum root;
  for (int rank = 0; rank < prof.nranks(); ++rank) {
    // Replay spans in enter order (t_in ascending; at equal timestamps the
    // outer section entered first, i.e. lower depth).
    std::vector<InstanceSpan> spans = prof.trace(rank);
    std::sort(spans.begin(), spans.end(),
              [](const InstanceSpan& a, const InstanceSpan& b) {
                if (a.t_in != b.t_in) return a.t_in < b.t_in;
                return a.depth < b.depth;
              });
    std::vector<Accum*> path{&root};
    for (const auto& span : spans) {
      const int depth = span.depth;
      if (depth + 1 > static_cast<int>(path.size())) {
        // Defensive: a gap can only appear if spans were dropped.
        continue;
      }
      path.resize(static_cast<std::size_t>(depth) + 1);
      Accum* parent = path[static_cast<std::size_t>(depth)];
      const std::string label = prof.labels().name(span.label);
      auto& slot = parent->children[label];
      if (!slot) slot = std::make_unique<Accum>();
      slot->per_rank_inclusive[rank] += span.t_out - span.t_in;
      slot->per_rank_count[rank] += 1;
      path.push_back(slot.get());
    }
  }

  std::vector<std::unique_ptr<TreeNode>> forest;
  for (const auto& [label, acc] : root.children) {
    forest.push_back(finalize(label, *acc, 0, 0.0));
  }
  std::sort(forest.begin(), forest.end(), [](const auto& a, const auto& b) {
    return a->inclusive > b->inclusive;
  });
  return forest;
}

std::string render_tree(
    const std::vector<std::unique_ptr<TreeNode>>& forest) {
  std::string out;
  for (const auto& node : forest) render_node(*node, out);
  return out;
}

const TreeNode* find_node(
    const std::vector<std::unique_ptr<TreeNode>>& forest,
    const std::string& path) {
  const auto parts = support::split(path, '/');
  const std::vector<std::unique_ptr<TreeNode>>* level = &forest;
  const TreeNode* current = nullptr;
  for (const auto& raw : parts) {
    const std::string want{support::trim(raw)};
    current = nullptr;
    for (const auto& node : *level) {
      if (node->label == want) {
        current = node.get();
        break;
      }
    }
    if (current == nullptr) return nullptr;
    level = &current->children;
  }
  return current;
}

}  // namespace mpisect::profiler
