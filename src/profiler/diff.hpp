// Profile snapshots and section-wise diffing.
//
// The workflow the paper's analysis implies — run a configuration, change
// something (ranks, threads, algorithm, machine), run again, and ask *which
// phase* got faster or slower — needs profiles that outlive the profiler.
// A ProfileSnapshot is the persistent form of SectionProfiler totals
// (round-trips through CSV), and diff_profiles() aligns two snapshots by
// section label and reports per-section speedups, the biggest movers first.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "profiler/section_profiler.hpp"

namespace mpisect::profiler {

struct SnapshotEntry {
  std::string label;
  long instances = 0;
  int ranks = 0;
  double mean_per_process = 0.0;
  double mpi_time = 0.0;
};

class ProfileSnapshot {
 public:
  ProfileSnapshot() = default;
  explicit ProfileSnapshot(std::string name) : name_(std::move(name)) {}
  /// Capture the totals of a finished run.
  static ProfileSnapshot capture(const SectionProfiler& prof,
                                 std::string name = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<SnapshotEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const SnapshotEntry* find(std::string_view label) const;

  /// CSV persistence (header + one row per section).
  [[nodiscard]] std::string to_csv() const;
  /// Parse a snapshot written by to_csv(); nullopt on malformed input.
  static std::optional<ProfileSnapshot> from_csv(std::string_view csv,
                                                 std::string name = {});

  void add(SnapshotEntry entry) { entries_.push_back(std::move(entry)); }

 private:
  std::string name_;
  std::vector<SnapshotEntry> entries_;
};

/// One aligned section across the two snapshots.
struct SectionDelta {
  std::string label;
  double before = 0.0;      ///< mean/process in the baseline
  double after = 0.0;       ///< mean/process in the candidate
  double speedup = 0.0;     ///< before / after (0 when after == 0)
  double abs_delta = 0.0;   ///< after - before (negative = improvement)
  bool only_in_before = false;
  bool only_in_after = false;
};

/// Align by label and sort by |abs_delta| descending — the triage order.
[[nodiscard]] std::vector<SectionDelta> diff_profiles(
    const ProfileSnapshot& before, const ProfileSnapshot& after);

/// Render the diff as an aligned table.
[[nodiscard]] std::string render_diff(const std::vector<SectionDelta>& deltas,
                                      const std::string& before_name,
                                      const std::string& after_name);

}  // namespace mpisect::profiler
