// MSB-first bit I/O over byte buffers, for the canonical Huffman coder.
//
// Codes are appended most-significant-bit first so the canonical decoding
// loop ("accumulate bits until the value falls inside some length's code
// range") works by simple integer comparison. The reader throws
// trace::TraceError on overrun — a truncated bitstream is a corrupt
// chunk, not UB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/wire.hpp"

namespace mpisect::codec {

class BitWriter {
 public:
  /// Append the low `nbits` bits of `code`, MSB first. nbits <= 57.
  void put(std::uint64_t code, int nbits) {
    acc_ = (acc_ << nbits) | (code & ((1ull << nbits) - 1));
    fill_ += nbits;
    while (fill_ >= 8) {
      fill_ -= 8;
      out_.push_back(static_cast<std::uint8_t>(acc_ >> fill_));
    }
  }

  /// Flush the final partial byte (zero-padded). Returns the total number
  /// of meaningful bits written.
  [[nodiscard]] std::uint64_t finish() {
    const std::uint64_t nbits = 8 * out_.size() + fill_;
    if (fill_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - fill_)));
      fill_ = 0;
    }
    return nbits;
  }

  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint64_t acc_ = 0;
  int fill_ = 0;  ///< bits buffered in acc_
};

class BitReader {
 public:
  BitReader(std::span<const std::uint8_t> data, std::uint64_t nbits)
      : data_(data), nbits_(nbits) {
    if (nbits_ > 8 * data_.size()) {
      throw trace::TraceError("corrupt chunk: bit count exceeds payload");
    }
  }

  /// Read one bit, MSB first.
  [[nodiscard]] int bit() {
    if (pos_ >= nbits_) {
      throw trace::TraceError("corrupt chunk: truncated Huffman bitstream");
    }
    const std::uint64_t byte = pos_ >> 3;
    const int shift = 7 - static_cast<int>(pos_ & 7);
    ++pos_;
    return (data_[static_cast<std::size_t>(byte)] >> shift) & 1;
  }

  [[nodiscard]] std::uint64_t consumed() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::uint64_t nbits_;
  std::uint64_t pos_ = 0;
};

}  // namespace mpisect::codec
