#include "codec/huffman.hpp"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "codec/bits.hpp"
#include "trace/wire.hpp"

namespace mpisect::codec {

namespace {

/// Unconstrained Huffman depths for the nonzero frequencies, via the
/// classic two-smallest merge. Returns the max depth.
int tree_depths(const std::array<std::uint64_t, kHuffSymbols>& freq,
                std::array<std::uint8_t, kHuffSymbols>& lengths) {
  struct Node {
    std::uint64_t weight;
    int index;  ///< tie-break for determinism: symbol or node id
    int left = -1, right = -1;
    int symbol = -1;
  };
  std::vector<Node> nodes;
  const auto cmp = [&nodes](int a, int b) {
    if (nodes[static_cast<std::size_t>(a)].weight !=
        nodes[static_cast<std::size_t>(b)].weight) {
      return nodes[static_cast<std::size_t>(a)].weight >
             nodes[static_cast<std::size_t>(b)].weight;
    }
    return nodes[static_cast<std::size_t>(a)].index >
           nodes[static_cast<std::size_t>(b)].index;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
  for (int s = 0; s < kHuffSymbols; ++s) {
    if (freq[static_cast<std::size_t>(s)] == 0) continue;
    nodes.push_back({freq[static_cast<std::size_t>(s)], s, -1, -1, s});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  lengths.fill(0);
  if (nodes.empty()) return 0;
  if (nodes.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return 1;
  }
  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    nodes.push_back({nodes[static_cast<std::size_t>(a)].weight +
                         nodes[static_cast<std::size_t>(b)].weight,
                     kHuffSymbols + static_cast<int>(nodes.size()), a, b, -1});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  // Iterative depth assignment from the root.
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    if (n.symbol >= 0) {
      lengths[static_cast<std::size_t>(n.symbol)] =
          static_cast<std::uint8_t>(depth);
      max_depth = std::max(max_depth, depth);
    } else {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
  return max_depth;
}

struct Codebook {
  std::array<std::uint32_t, kHuffSymbols> code{};
  std::array<std::uint8_t, kHuffSymbols> len{};
};

/// Canonical code assignment from a length table: symbols ordered by
/// (length, value), codes increase numerically within and across lengths.
Codebook canonical_codes(const std::array<std::uint8_t, kHuffSymbols>& lengths) {
  Codebook book;
  book.len = lengths;
  std::vector<int> symbols;
  for (int s = 0; s < kHuffSymbols; ++s) {
    if (lengths[static_cast<std::size_t>(s)] > 0) symbols.push_back(s);
  }
  std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
    const auto la = lengths[static_cast<std::size_t>(a)];
    const auto lb = lengths[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });
  std::uint32_t code = 0;
  int prev_len = 0;
  for (const int s : symbols) {
    const int l = lengths[static_cast<std::size_t>(s)];
    code <<= (l - prev_len);
    book.code[static_cast<std::size_t>(s)] = code;
    ++code;
    prev_len = l;
  }
  return book;
}

}  // namespace

HuffmanEncoded huffman_encode(std::span<const std::uint8_t> raw) {
  HuffmanEncoded out;
  if (raw.empty()) return out;

  std::array<std::uint64_t, kHuffSymbols> freq{};
  for (const std::uint8_t b : raw) ++freq[b];

  // Cap depth by damping: halving frequencies flattens the tree while
  // preserving the rough shape; one pass nearly always suffices.
  while (tree_depths(freq, out.lengths) > kMaxCodeLen) {
    for (auto& f : freq) {
      if (f > 0) f = (f + 1) / 2;
    }
  }

  const Codebook book = canonical_codes(out.lengths);
  BitWriter w;
  for (const std::uint8_t b : raw) {
    w.put(book.code[b], book.len[b]);
  }
  out.nbits = w.finish();
  out.bits = w.take();
  return out;
}

std::vector<std::uint8_t> huffman_decode(
    const std::array<std::uint8_t, kHuffSymbols>& lengths,
    std::span<const std::uint8_t> bits, std::uint64_t nbits,
    std::size_t nsymbols) {
  // Per-length canonical tables: count, first code, and the symbols in
  // canonical order.
  std::array<std::uint32_t, kMaxCodeLen + 1> count{};
  std::vector<std::uint8_t> order;  ///< symbols sorted by (length, value)
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    for (int s = 0; s < kHuffSymbols; ++s) {
      if (lengths[static_cast<std::size_t>(s)] == l) {
        ++count[static_cast<std::size_t>(l)];
        order.push_back(static_cast<std::uint8_t>(s));
      }
    }
  }
  if (order.empty()) {
    if (nsymbols != 0) {
      throw trace::TraceError("corrupt chunk: empty Huffman table");
    }
    return {};
  }
  // Kraft validation: a usable table is exactly complete, except for the
  // degenerate single-symbol code {len 1} which is deliberately
  // incomplete (the lone code is "0").
  std::uint64_t kraft = 0;  // scaled by 2^kMaxCodeLen
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    kraft += static_cast<std::uint64_t>(count[static_cast<std::size_t>(l)])
             << (kMaxCodeLen - l);
  }
  const std::uint64_t full = 1ull << kMaxCodeLen;
  const bool single = order.size() == 1 && lengths[order[0]] == 1;
  if (!single && kraft != full) {
    throw trace::TraceError("corrupt chunk: invalid Huffman length table");
  }
  std::array<std::uint32_t, kMaxCodeLen + 1> first{};
  std::array<std::uint32_t, kMaxCodeLen + 1> offset{};
  std::uint32_t code = 0, idx = 0;
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    code <<= 1;
    first[static_cast<std::size_t>(l)] = code;
    offset[static_cast<std::size_t>(l)] = idx;
    code += count[static_cast<std::size_t>(l)];
    idx += count[static_cast<std::size_t>(l)];
  }

  std::vector<std::uint8_t> out;
  out.reserve(nsymbols);
  BitReader r(bits, nbits);
  while (out.size() < nsymbols) {
    std::uint32_t acc = 0;
    int len = 0;
    for (;;) {
      acc = (acc << 1) | static_cast<std::uint32_t>(r.bit());
      ++len;
      const std::uint32_t n = count[static_cast<std::size_t>(len)];
      if (n != 0 && acc >= first[static_cast<std::size_t>(len)] &&
          acc < first[static_cast<std::size_t>(len)] + n) {
        out.push_back(order[offset[static_cast<std::size_t>(len)] + acc -
                            first[static_cast<std::size_t>(len)]]);
        break;
      }
      if (len >= kMaxCodeLen) {
        throw trace::TraceError("corrupt chunk: Huffman code out of range");
      }
    }
  }
  if (r.consumed() != nbits) {
    throw trace::TraceError("corrupt chunk: trailing Huffman bits");
  }
  return out;
}

}  // namespace mpisect::codec
