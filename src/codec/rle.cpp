#include "codec/rle.hpp"

#include <algorithm>

#include "trace/wire.hpp"

namespace mpisect::codec {

std::vector<std::uint8_t> rle_encode(std::span<const std::uint8_t> raw) {
  std::vector<std::uint8_t> out;
  out.reserve(raw.size() + raw.size() / 128 + 1);
  std::size_t i = 0;
  std::size_t lit_start = 0;  ///< start of the pending literal range
  const auto flush_literals = [&](std::size_t end) {
    while (lit_start < end) {
      const std::size_t n = std::min<std::size_t>(end - lit_start, 128);
      out.push_back(static_cast<std::uint8_t>(n - 1));
      out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(lit_start),
                 raw.begin() + static_cast<std::ptrdiff_t>(lit_start + n));
      lit_start += n;
    }
  };
  while (i < raw.size()) {
    std::size_t run = 1;
    while (i + run < raw.size() && raw[i + run] == raw[i] && run < 128) ++run;
    // A run pays for itself at length 3 (2 bytes replace 3+); at length 2
    // it ties with literals, so keep literals for better Huffman stats.
    if (run >= 3) {
      flush_literals(i);
      out.push_back(static_cast<std::uint8_t>(257 - run));
      out.push_back(raw[i]);
      i += run;
      lit_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(raw.size());
  return out;
}

std::vector<std::uint8_t> rle_decode(std::span<const std::uint8_t> coded,
                                     std::size_t expected_size) {
  std::vector<std::uint8_t> out;
  out.reserve(expected_size);
  std::size_t i = 0;
  while (i < coded.size()) {
    const std::uint8_t c = coded[i++];
    if (c == 128) {
      throw trace::TraceError("corrupt chunk: reserved RLE control byte");
    }
    if (c < 128) {
      const std::size_t n = static_cast<std::size_t>(c) + 1;
      if (i + n > coded.size()) {
        throw trace::TraceError("corrupt chunk: RLE literal overruns input");
      }
      if (out.size() + n > expected_size) {
        throw trace::TraceError("corrupt chunk: RLE output exceeds raw size");
      }
      out.insert(out.end(), coded.begin() + static_cast<std::ptrdiff_t>(i),
                 coded.begin() + static_cast<std::ptrdiff_t>(i + n));
      i += n;
    } else {
      const std::size_t n = 257 - static_cast<std::size_t>(c);
      if (i >= coded.size()) {
        throw trace::TraceError("corrupt chunk: RLE run overruns input");
      }
      if (out.size() + n > expected_size) {
        throw trace::TraceError("corrupt chunk: RLE output exceeds raw size");
      }
      out.insert(out.end(), n, coded[i++]);
    }
  }
  if (out.size() != expected_size) {
    throw trace::TraceError("corrupt chunk: RLE output shorter than raw size");
  }
  return out;
}

}  // namespace mpisect::codec
